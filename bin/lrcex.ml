(* lrcex: analyze a grammar's parsing conflicts and report counterexamples,
   in the manner of the paper's CUP extension — plus a batch mode that fans
   many grammars (and their individual conflicts) out to a Domain worker
   pool, with content-addressed caching and JSON reporting. *)

let read_source = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let load_grammar path =
  match read_source path with
  | exception Sys_error msg -> Error msg
  | source -> Cfg.Spec_parser.grammar_of_string source

let make_options timeout cumulative extended engine =
  { Cex.Driver.default_options with
    Cex.Driver.per_conflict_timeout = timeout;
    cumulative_timeout = cumulative;
    extended;
    engine }

(* ------------------------------------------------------------------ *)
(* The one-grammar command (the original behavior, plus --jobs/--json). *)

(* Exit codes shared by analyze and batch: 4 when the counterexample oracle
   rejected an emitted counterexample (--validate), else 2 when conflicts
   remain, else 3 when --lint-error was given and an error-severity
   diagnostic fired. *)
let validation_failed report = Cex_validate.Oracle.n_invalid report > 0

let lint_exit ~lint_error ~has_conflicts diagnostics =
  if has_conflicts then 2
  else if
    lint_error
    && List.exists Cex_lint.Diagnostic.has_errors
         (List.filter_map Fun.id diagnostics)
  then 3
  else 0

let pp_lint_section g ppf = function
  | None -> ()
  | Some diags ->
    Fmt.pf ppf "@.[lint] %d diagnostic%s@." (List.length diags)
      (if List.length diags = 1 then "" else "s");
    List.iter (fun d -> Fmt.pf ppf "  %a@." (Cex_lint.Diagnostic.pp g) d) diags

let pp_trace_section ppf metrics =
  if metrics <> [] then
    Fmt.pf ppf "@.[trace]@.%a" Cex_session.Trace.pp_metrics metrics

let run path timeout cumulative extended engine jobs conflict_jobs json trace
    lint lint_error validate show_states show_naive classify_lr1
    show_resolved =
  match load_grammar path with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok g ->
    let options = make_options timeout cumulative extended engine in
    let session = Cex_session.Session.create g in
    let table = Cex_session.Session.table session in
    let diagnostics =
      if lint || lint_error then Some (Cex_lint.Lint.run table) else None
    in
    (* Conflict-level fan-out: --conflict-jobs wins; otherwise inherit
       --jobs; otherwise the whole machine. Reports are byte-identical at
       any value, so auto is safe. *)
    let conflict_jobs =
      if conflict_jobs > 0 then conflict_jobs
      else if jobs > 1 then jobs
      else Cex_session.Pool.default_jobs ()
    in
    let report =
      Cex.Driver.analyze_session ~options ~jobs:conflict_jobs session
    in
    let report =
      if validate then
        Cex_validate.Oracle.validate_report
          (Cex_validate.Oracle.of_session session)
          report
      else report
    in
    if json then
      Fmt.pr "%s@."
        (Cex_service.Json.to_string
           (Cex_service.Json_report.report_to_json ~name:path ?diagnostics
              report))
    else begin
      if show_states then
        Fmt.pr "%a@."
          (fun ppf () -> Automaton.Lr0.pp ppf (Automaton.Parse_table.lr0 table))
          ();
      Fmt.pr "%s" (Cex.Report.to_string report);
      if classify_lr1 then begin
        let lalr_conflicts = Automaton.Parse_table.conflicts table in
        if lalr_conflicts <> [] then begin
          let lr1 = Automaton.Lr1.build g in
          let artifacts =
            Automaton.Lr1.merging_artifacts ~lalr_conflicts
              ~lr1_conflicts:(Automaton.Lr1.conflicts lr1)
          in
          Fmt.pr
            "@.[LR(1) classification] canonical LR(1): %d states; %d of %d conflicts are LALR merging artifacts@."
            (Automaton.Lr1.n_states lr1)
            (List.length artifacts) (List.length lalr_conflicts);
          List.iter
            (fun c ->
              Fmt.pr "@.@[<v>%a@]@.This conflict disappears under canonical LR(1): factor the grammar, no ambiguity here.@."
                (Automaton.Conflict.pp g) c)
            artifacts
        end
      end;
      if show_resolved then begin
        let resolved = Automaton.Parse_table.resolved_conflicts table in
        if resolved <> [] then
          Fmt.pr
            "@.[precedence-resolved conflicts] %d shift/reduce decisions were settled silently; counterexamples for the ambiguities they resolve:@."
            (List.length resolved);
        List.iter
          (fun (c, resolution) ->
            let cr = Cex.Driver.analyze_conflict ~options session c in
            Fmt.pr "@.@[<v>%a@]@.(resolved: %s)@."
              (Cex.Report.pp_conflict_report g) cr
              (match resolution with
              | Automaton.Parse_table.Resolved_shift -> "in favour of the shift"
              | Automaton.Parse_table.Resolved_reduce ->
                "in favour of the reduction"
              | Automaton.Parse_table.Resolved_error ->
                "as a syntax error (nonassociative)"))
          resolved
      end;
      if show_naive then begin
        let lalr = Automaton.Parse_table.lalr table in
        let analysis = Automaton.Lalr.analysis lalr in
        List.iter
          (fun c ->
            match Baselines.Naive_path.find lalr c with
            | None -> ()
            | Some naive ->
              Fmt.pr "@.[naive baseline%s]@.%a@."
                (if Baselines.Naive_path.misleading analysis naive then
                   " - MISLEADING"
                 else "")
                (Baselines.Naive_path.pp g) naive)
          (Automaton.Parse_table.conflicts table)
      end;
      pp_lint_section g Fmt.stdout diagnostics;
      if trace then
        Fmt.pr "%a@?" pp_trace_section report.Cex.Driver.metrics
    end;
    if validate && validation_failed report then 4
    else
      lint_exit ~lint_error
        ~has_conflicts:(Automaton.Parse_table.conflicts table <> [])
        [ diagnostics ]

(* ------------------------------------------------------------------ *)
(* The batch command. *)

let load_batch_entries paths use_corpus =
  let file_entries =
    List.map
      (fun path ->
        match load_grammar path with
        | Ok g -> Ok (path, g)
        (* Sys_error messages already name the path; parse errors don't. *)
        | Error msg when String.starts_with ~prefix:path msg -> Error msg
        | Error msg -> Error (Fmt.str "%s: %s" path msg))
      paths
  in
  let corpus_entries =
    if not use_corpus then []
    else
      List.map
        (fun (e : Corpus.entry) -> Ok (e.Corpus.name, Corpus.grammar e))
        (Corpus.all ())
  in
  let entries, errors =
    List.partition_map
      (function Ok e -> Left e | Error msg -> Right msg)
      (file_entries @ corpus_entries)
  in
  if errors <> [] then Error (String.concat "\n" errors) else Ok entries

(* Re-verify a batch result's report through the oracle; the oracle is
   rebuilt from the report's table, so cached reports validate too. *)
let validate_batch_result (r : Cex_service.Scheduler.batch_result) =
  let oracle = Cex_validate.Oracle.create r.Cex_service.Scheduler.report.Cex.Driver.table in
  { r with
    Cex_service.Scheduler.report =
      Cex_validate.Oracle.validate_report oracle
        r.Cex_service.Scheduler.report }

(* "I/N" -> (i, n); the digest-based assignment itself is
   [Scheduler.shard_of]. *)
let parse_shard = function
  | None -> Ok None
  | Some s -> (
    match String.split_on_char '/' s with
    | [ i; n ] -> (
      match (int_of_string_opt i, int_of_string_opt n) with
      | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (Some (i, n))
      | _ ->
        Error (Fmt.str "invalid --shard %s (need 0 <= I < N)" s))
    | _ -> Error (Fmt.str "invalid --shard %s (expected I/N)" s))

(* The streaming pipeline: one minified NDJSON record per grammar the
   moment its window completes, one final summary record. Validation and
   lint run per grammar inside the emit callback, so nothing about a
   finished grammar is retained beyond its line and the running totals. *)
let run_batch_stream service ~window ~shard ~lint ~lint_error ~validate
    ~entries =
  let totals = ref Cex_service.Scheduler.zero_totals in
  let has_conflicts = ref false in
  let oracle_failed = ref false in
  let lint_failed = ref false in
  let emit (r : Cex_service.Scheduler.batch_result) =
    let r = if validate then validate_batch_result r else r in
    let report = r.Cex_service.Scheduler.report in
    let diagnostics =
      if lint || lint_error then Some (Cex_lint.Lint.run report.Cex.Driver.table)
      else None
    in
    totals := Cex_service.Scheduler.add_totals !totals r;
    if report.Cex.Driver.conflict_reports <> [] then has_conflicts := true;
    if validate && validation_failed report then oracle_failed := true;
    (match diagnostics with
    | Some diags when Cex_lint.Diagnostic.has_errors diags -> lint_failed := true
    | _ -> ());
    print_string
      (Cex_service.Json.to_string ~minify:true
         (Cex_service.Json_report.stream_grammar_to_json ?diagnostics r));
    print_newline ();
    flush stdout
  in
  let stats =
    Cex_service.Scheduler.analyze_batch_emit ~window ?shard service ~emit
      entries
  in
  print_string
    (Cex_service.Json.to_string ~minify:true
       (Cex_service.Json_report.stream_summary_to_json ?shard ~totals:!totals
          stats));
  print_newline ();
  flush stdout;
  if !oracle_failed then 4
  else if !has_conflicts then 2
  else if lint_error && !lint_failed then 3
  else 0

let run_batch paths use_corpus stress timeout cumulative extended engine jobs
    json trace lint lint_error validate cache_size repeat stream window
    shard_spec =
  match
    ( load_batch_entries paths use_corpus,
      parse_shard shard_spec )
  with
  | Error msg, _ | _, Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok [], Ok _ when stress <= 0 ->
    Fmt.epr
      "error: no grammars to analyze (pass files, --corpus or --stress N)@.";
    1
  | Ok listed, Ok shard ->
    let entries =
      Seq.append (List.to_seq listed)
        (if stress > 0 then Corpus.Stress.seq stress else Seq.empty)
    in
    let options = make_options timeout cumulative extended engine in
    let service =
      Cex_service.Scheduler.create ~options ~jobs ~cache_capacity:cache_size ()
    in
    let window =
      if window > 0 then window else Cex_service.Scheduler.default_window
    in
    if stream then
      run_batch_stream service ~window ~shard ~lint ~lint_error ~validate
        ~entries
    else begin
    let entries = List.of_seq entries in
    let results = ref [] in
    let stats = ref None in
    for _ = 1 to max 1 repeat do
      let rs, st =
        Cex_service.Scheduler.analyze_batch ~window ?shard service entries
      in
      results := rs;
      stats := Some st
    done;
    let results = !results and stats = Option.get !stats in
    let results =
      if validate then List.map validate_batch_result results else results
    in
    let diagnostics =
      List.map
        (fun (r : Cex_service.Scheduler.batch_result) ->
          if lint || lint_error then
            Some
              (Cex_lint.Lint.run
                 r.Cex_service.Scheduler.report.Cex.Driver.table)
          else None)
        results
    in
    if json then
      Fmt.pr "%s@."
        (Cex_service.Json.to_string
           (Cex_service.Json_report.batch_to_json ~stats ~lint:diagnostics
              results))
    else begin
      List.iter2
        (fun (r : Cex_service.Scheduler.batch_result) diags ->
          let report = r.Cex_service.Scheduler.report in
          Fmt.pr "%-16s %3d conflicts: %3d unifying, %3d nonunifying, %3d \
                  timed out  (%6.3fs)%s@."
            r.Cex_service.Scheduler.name
            (List.length report.Cex.Driver.conflict_reports)
            (Cex.Driver.n_unifying report)
            (Cex.Driver.n_nonunifying report)
            (Cex.Driver.n_timeout report)
            report.Cex.Driver.total_elapsed
            (if r.Cex_service.Scheduler.from_cache then "  [cached]" else "");
          if validate then begin
            let invalid = Cex_validate.Oracle.n_invalid report in
            Fmt.pr "    validation: %d valid%s@."
              (Cex_validate.Oracle.n_validated report)
              (if invalid = 0 then "" else Fmt.str ", %d INVALID" invalid);
            List.iter
              (fun (cr : Cex.Driver.conflict_report) ->
                match cr.Cex.Driver.validation with
                | Cex.Driver.Validation_failed codes ->
                  Fmt.pr "      state %d: %s@."
                    cr.Cex.Driver.conflict.Automaton.Conflict.state
                    (String.concat ", " codes)
                | _ -> ())
              (Cex_validate.Oracle.invalid_reports report)
          end;
          Option.iter
            (fun diags ->
              let g = Cex.Driver.grammar report in
              List.iter
                (fun d ->
                  Fmt.pr "    %a@." (Cex_lint.Diagnostic.pp g) d)
                diags)
            diags;
          if trace && not r.Cex_service.Scheduler.from_cache then
            Fmt.pr "%a@?" pp_trace_section report.Cex.Driver.metrics)
        results diagnostics;
      Fmt.pr "@.%a@." Cex_service.Stats.pp_summary stats
    end;
    if
      validate
      && List.exists
           (fun (r : Cex_service.Scheduler.batch_result) ->
             validation_failed r.Cex_service.Scheduler.report)
           results
    then 4
    else
      lint_exit ~lint_error
        ~has_conflicts:
          (List.exists
             (fun (r : Cex_service.Scheduler.batch_result) ->
               r.Cex_service.Scheduler.report.Cex.Driver.conflict_reports <> [])
             results)
        diagnostics
    end

(* ------------------------------------------------------------------ *)
(* The validate command: analyze, then machine-check every emitted
   counterexample through the oracle. Unlike analyze/batch it exits 0 even
   when conflicts exist — its verdict is about the counterexamples, not the
   grammar — and 4 as soon as one fails the oracle (the CI hard gate). *)

let run_validate paths use_corpus timeout cumulative extended engine jobs json
    =
  match load_batch_entries paths use_corpus with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok [] ->
    Fmt.epr "error: no grammars to validate (pass files or --corpus)@.";
    1
  | Ok entries ->
    let options = make_options timeout cumulative extended engine in
    let service = Cex_service.Scheduler.create ~options ~jobs () in
    let results, stats = Cex_service.Scheduler.analyze_batch service entries in
    let results = List.map validate_batch_result results in
    if json then
      Fmt.pr "%s@."
        (Cex_service.Json.to_string
           (Cex_service.Json_report.batch_to_json ~stats results))
    else
      List.iter
        (fun (r : Cex_service.Scheduler.batch_result) ->
          let report = r.Cex_service.Scheduler.report in
          let invalid = Cex_validate.Oracle.n_invalid report in
          Fmt.pr "%-16s %3d conflicts: %3d counterexamples valid%s@."
            r.Cex_service.Scheduler.name
            (List.length report.Cex.Driver.conflict_reports)
            (Cex_validate.Oracle.n_validated report)
            (if invalid = 0 then "" else Fmt.str ", %d INVALID" invalid);
          List.iter
            (fun (cr : Cex.Driver.conflict_report) ->
              match cr.Cex.Driver.validation with
              | Cex.Driver.Validation_failed codes ->
                Fmt.pr "    state %d, terminal %d [%s]: %s@."
                  cr.Cex.Driver.conflict.Automaton.Conflict.state
                  cr.Cex.Driver.conflict.Automaton.Conflict.terminal
                  (Cex_service.Json_report.outcome_string cr.Cex.Driver.outcome)
                  (String.concat ", " codes)
              | _ -> ())
            (Cex_validate.Oracle.invalid_reports report))
        results;
    if
      List.exists
        (fun (r : Cex_service.Scheduler.batch_result) ->
          validation_failed r.Cex_service.Scheduler.report)
        results
    then 4
    else 0

(* ------------------------------------------------------------------ *)
(* The lint command: static diagnostics only, no counterexample search. *)

let print_rule_catalog () =
  let group_name = function
    | Cex_lint.Lint.Hygiene -> "hygiene"
    | Cex_lint.Lint.Conflicts -> "conflict"
  in
  List.iter
    (fun (r : Cex_lint.Lint.rule) ->
      Fmt.pr "%-24s %-8s %-7s %s@." r.Cex_lint.Lint.code
        (group_name r.Cex_lint.Lint.group)
        (Cex_lint.Diagnostic.severity_string r.Cex_lint.Lint.default_severity)
        r.Cex_lint.Lint.doc)
    Cex_lint.Lint.rules

let run_lint paths use_corpus json enable disable show_rules =
  if show_rules then begin
    print_rule_catalog ();
    0
  end
  else
    match Cex_lint.Lint.check_codes (enable @ disable) with
    | Error msg ->
      Fmt.epr "error: %s@." msg;
      1
    | Ok () -> (
      match load_batch_entries paths use_corpus with
      | Error msg ->
        Fmt.epr "error: %s@." msg;
        1
      | Ok [] ->
        Fmt.epr "error: no grammars to lint (pass files or --corpus)@.";
        1
      | Ok entries ->
        let enable = if enable = [] then None else Some enable in
        let disable = if disable = [] then None else Some disable in
        let linted =
          List.map
            (fun (name, g) ->
              let table =
                Cex_session.Session.table (Cex_session.Session.create g)
              in
              (name, table, Cex_lint.Lint.report ?enable ?disable table))
            entries
        in
        if json then
          Fmt.pr "%s@."
            (Cex_service.Json.to_string
               (Cex_service.Json_report.lint_to_json linted))
        else begin
          List.iter
            (fun (name, table, rep) ->
              Fmt.pr "@[<v>== %s ==@,%a@]@?" name
                (Cex_lint.Lint.pp_report (Automaton.Parse_table.grammar table))
                rep)
            linted;
          let total f = List.fold_left (fun n (_, _, rep) -> n + f rep) 0 linted in
          let count sev (rep : Cex_lint.Lint.report) =
            Cex_lint.Diagnostic.count sev rep.Cex_lint.Lint.diagnostics
          in
          Fmt.pr
            "@.%d grammar%s: %d diagnostics (%d errors, %d warnings), %d \
             conflicts (%d unclassified)@."
            (List.length linted)
            (if List.length linted = 1 then "" else "s")
            (total (fun rep -> List.length rep.Cex_lint.Lint.diagnostics))
            (total (count Cex_lint.Diagnostic.Error))
            (total (count Cex_lint.Diagnostic.Warning))
            (total (fun rep -> List.length rep.Cex_lint.Lint.classifications))
            (total (fun rep ->
                 List.length
                   (List.filter
                      (fun (_, code) -> code = Cex_lint.Lint.unclassified)
                      rep.Cex_lint.Lint.classifications)))
        end;
        if
          List.exists
            (fun (_, _, (rep : Cex_lint.Lint.report)) ->
              Cex_lint.Diagnostic.has_errors rep.Cex_lint.Lint.diagnostics)
            linted
        then 2
        else 0)

(* ------------------------------------------------------------------ *)
(* The serve command: a persistent analysis daemon speaking NDJSON over a
   Unix or TCP socket, with delta-aware incremental re-analysis (see
   lib/serve). And the client command: a scripting/CI helper that replays
   request lines one at a time and prints one response line each. *)

let parse_endpoint socket tcp =
  match socket, tcp with
  | Some path, None -> Ok (`Unix path)
  | None, Some hostport -> (
    match String.rindex_opt hostport ':' with
    | None -> Error "expected HOST:PORT for --tcp"
    | Some i -> (
      let host = String.sub hostport 0 i in
      let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
      match int_of_string_opt port with
      | None -> Error (Fmt.str "invalid port %S" port)
      | Some port -> Ok (`Tcp ((if host = "" then "127.0.0.1" else host), port))))
  | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
  | None, None -> Error "one of --socket PATH or --tcp HOST:PORT is required"

let run_serve socket tcp timeout cumulative extended engine jobs cache_size
    cache_shards queue_limit =
  match parse_endpoint socket tcp with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok endpoint -> (
    let options = make_options timeout cumulative extended engine in
    let server =
      Cex_serve.Server.create ~options ~jobs ~cache_capacity:cache_size
        ~cache_shards ~queue_limit ()
    in
    (match endpoint with
    | `Unix path -> Fmt.epr "lrcex serve: listening on %s@." path
    | `Tcp (host, port) ->
      Fmt.epr "lrcex serve: listening on %s:%d@." host port);
    match Cex_serve.Server.run server endpoint with
    | () ->
      Fmt.epr "lrcex serve: drained, exiting@.";
      0
    | exception Unix.Unix_error (e, fn, arg) ->
      Fmt.epr "error: %s(%s): %s@." fn arg (Unix.error_message e);
      1)

let connect_endpoint = function
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    Unix.connect fd (Unix.ADDR_INET (addr, port));
    fd

let write_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

(* Strip volatile timings so scripted replays diff cleanly against a
   committed golden: zero every float and the cumulative counters of the
   stats operation. *)
let normalize_response ~zero_floats line =
  if not zero_floats then line
  else
    match Cex_service.Json.of_string line with
    | json ->
      Cex_service.Json.to_string ~minify:true
        (Cex_service.Json.map_floats (fun _ -> 0.0) json)
    | exception Cex_service.Json.Parse_error _ -> line

let run_client socket tcp script zero_floats =
  match parse_endpoint socket tcp with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok endpoint -> (
    let requests =
      (match script with
      | None -> In_channel.input_all stdin
      | Some path -> In_channel.with_open_text path In_channel.input_all)
      |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    match connect_endpoint endpoint with
    | exception Unix.Unix_error (e, fn, arg) ->
      Fmt.epr "error: %s(%s): %s@." fn arg (Unix.error_message e);
      1
    | fd ->
      let ic = Unix.in_channel_of_descr fd in
      let rec go = function
        | [] -> 0
        | line :: rest -> (
          write_line fd line;
          match In_channel.input_line ic with
          | None ->
            Fmt.epr "error: server closed the connection@.";
            1
          | Some response ->
            print_endline (normalize_response ~zero_floats response);
            go rest)
      in
      let code = try go requests with
        | Unix.Unix_error (e, fn, arg) ->
          Fmt.epr "error: %s(%s): %s@." fn arg (Unix.error_message e);
          1
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      code)

(* ------------------------------------------------------------------ *)

open Cmdliner

let timeout_arg =
  Arg.(
    value & opt float 5.0
    & info [ "timeout" ]
        ~doc:"Per-conflict time limit (seconds) for the unifying search.")

let cumulative_arg =
  Arg.(
    value & opt float 120.0
    & info [ "cumulative-timeout" ]
        ~doc:"Cumulative budget (seconds) after which only nonunifying \
              counterexamples are constructed. Applies per grammar.")

let extended_arg =
  Arg.(
    value & flag
    & info [ "extended-search" ]
        ~doc:"Lift the shortest-path restriction (slower, more complete).")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("product", Cex.Driver.Product);
             ("srwalk", Cex.Driver.Srwalk);
             ("race", Cex.Driver.Race) ])
        Cex.Driver.Product
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Unifying-counterexample engine: $(b,product) (the paper's \
              product-parser search), $(b,srwalk) (the SR-automaton walk), \
              or $(b,race) (run both per conflict on the worker pool under \
              one budget and keep the deterministically adjudicated winner; \
              each JSON conflict records the winning engine).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Analyze conflicts on $(docv) worker domains in parallel.")

let conflict_jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "conflict-jobs" ] ~docv:"N"
        ~doc:"Fan the conflicts of one grammar across $(docv) worker \
              domains (the intra-grammar level of the two-level scheduler; \
              reports are byte-identical at any value). 0 (the default) \
              picks automatically: $(b,--jobs) if given, otherwise every \
              core.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit a machine-readable JSON report on stdout.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print per-stage trace metrics (table build, path search, \
              product search timings and counters) after the report. With \
              $(b,--json) the same metrics are always embedded in the \
              report's $(b,metrics) object.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"Also run the static lint rules and include their diagnostics \
              in the report.")

let lint_error_arg =
  Arg.(
    value & flag
    & info [ "lint-error" ]
        ~doc:"Like $(b,--lint), and exit 3 when any error-severity \
              diagnostic fires (conflicts still exit 2).")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:"Machine-check every emitted counterexample through the \
              validation oracle (exit 4 if any check fails). Verdicts are \
              printed per conflict and embedded in the JSON \
              $(b,validation) objects.")

let path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"GRAMMAR"
        ~doc:"Grammar file in the yacc-like format ('-' for stdin).")

let analyze_term =
  let states_arg =
    Arg.(value & flag & info [ "states" ] ~doc:"Dump the LR(0) automaton first.")
  in
  let naive_arg =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:"Also print the lookahead-insensitive (PPG-style) baseline \
                counterexamples for comparison.")
  in
  let lr1_arg =
    Arg.(
      value & flag
      & info [ "lr1" ]
          ~doc:"Classify conflicts against the canonical LR(1) automaton: \
                conflicts that disappear there are LALR merging artifacts.")
  in
  let resolved_arg =
    Arg.(
      value & flag
      & info [ "resolved" ]
          ~doc:"Also analyze precedence-resolved shift/reduce decisions and \
                show the ambiguity each one silently settles.")
  in
  Term.(
    const run $ path_arg $ timeout_arg $ cumulative_arg $ extended_arg
    $ engine_arg $ jobs_arg $ conflict_jobs_arg $ json_arg $ trace_arg
    $ lint_arg
    $ lint_error_arg $ validate_arg $ states_arg $ naive_arg $ lr1_arg
    $ resolved_arg)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"analyze a single grammar (the default command)")
    analyze_term

let batch_cmd =
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"GRAMMAR"
          ~doc:"Grammar files in the yacc-like format (zero or more).")
  in
  let corpus_arg =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Also analyze every grammar of the built-in evaluation corpus \
                (the paper's Table 1).")
  in
  let cache_arg =
    Arg.(
      value & opt int 128
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Capacity (entries) of the content-addressed automaton and \
                report caches.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Run the whole batch $(docv) times against one service \
                instance (demonstrates cache hits; stats are from the last \
                run). Ignored with $(b,--stream).")
  in
  let stress_arg =
    Arg.(
      value & opt int 0
      & info [ "stress" ] ~docv:"N"
          ~doc:"Also analyze the first $(docv) grammars of the generated \
                stress tier — deterministic seeded grammars banded by size \
                and ambiguity, regenerated on demand and never stored. \
                Combine with $(b,--stream) to keep memory flat over \
                thousands of grammars.")
  in
  let stream_arg =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:"Stream results as NDJSON: one $(b,record:grammar) object \
                per line the moment a grammar's window completes, then one \
                final $(b,record:summary) line. Grammars are pulled \
                lazily and released after emission, so peak memory depends \
                on $(b,--window) and $(b,--cache-size), not batch length. \
                Implies JSON output.")
  in
  let window_arg =
    Arg.(
      value & opt int 0
      & info [ "window" ] ~docv:"N"
          ~doc:"In-flight window of the batch pipeline (grammars prepared \
                and analyzed together; default 32). Per-grammar reports \
                are byte-identical at any window size.")
  in
  let shard_arg =
    Arg.(
      value & opt (some string) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:"Analyze only the grammars whose content digest falls in \
                shard $(docv) (deterministic, process-independent). \
                Disjoint and covering across I = 0..N-1, so independent \
                invocations partition a corpus; per-shard $(b,--stream) \
                summary records merge with tools/merge_shards.")
  in
  let doc = "analyze many grammars through the batch service" in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(
      const run_batch $ paths_arg $ corpus_arg $ stress_arg $ timeout_arg
      $ cumulative_arg $ extended_arg $ engine_arg $ jobs_arg $ json_arg
      $ trace_arg $ lint_arg $ lint_error_arg $ validate_arg $ cache_arg
      $ repeat_arg $ stream_arg $ window_arg $ shard_arg)

let validate_cmd =
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"GRAMMAR"
          ~doc:"Grammar files in the yacc-like format (zero or more).")
  in
  let corpus_arg =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Also validate every grammar of the built-in evaluation \
                corpus (the paper's Table 1).")
  in
  let doc =
    "analyze grammars and machine-check every emitted counterexample \
     through the validation oracle; exits 4 when a counterexample fails a \
     check, 0 otherwise (even when conflicts exist)"
  in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(
      const run_validate $ paths_arg $ corpus_arg $ timeout_arg
      $ cumulative_arg $ extended_arg $ engine_arg $ jobs_arg $ json_arg)

let lint_cmd =
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"GRAMMAR"
          ~doc:"Grammar files in the yacc-like format (zero or more).")
  in
  let corpus_arg =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Also lint every grammar of the built-in evaluation corpus.")
  in
  let enable_arg =
    Arg.(
      value & opt_all string []
      & info [ "enable" ] ~docv:"CODE"
          ~doc:"Run only the named rules (repeatable).")
  in
  let disable_arg =
    Arg.(
      value & opt_all string []
      & info [ "disable" ] ~docv:"CODE"
          ~doc:"Skip the named rules (repeatable).")
  in
  let rules_arg =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"Print the rule catalog and exit.")
  in
  let doc =
    "run the static lint rules over grammars (no counterexample search); \
     exits 2 when an error-severity diagnostic fires"
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const run_lint $ paths_arg $ corpus_arg $ json_arg $ enable_arg
      $ disable_arg $ rules_arg)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on / connect to.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"TCP endpoint to listen on / connect to.")

let serve_cmd =
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "cache-shards" ] ~docv:"N"
          ~doc:"Number of independently locked session-cache shards.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:"Pending-request bound; beyond it requests are answered \
                with an $(b,overloaded) error immediately.")
  in
  let cache_arg =
    Arg.(
      value & opt int 128
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Total capacity (entries) of the session and report caches.")
  in
  let doc =
    "run a persistent analysis server speaking newline-delimited JSON over \
     a Unix or TCP socket, with session caching and delta-aware \
     incremental re-analysis; exits 0 after a $(b,shutdown) request drains \
     the queue"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ socket_arg $ tcp_arg $ timeout_arg $ cumulative_arg
      $ extended_arg $ engine_arg $ jobs_arg $ cache_arg $ shards_arg
      $ queue_arg)

let client_cmd =
  let script_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"NDJSON request script to replay, one request per line \
                (default: stdin).")
  in
  let zero_floats_arg =
    Arg.(
      value & flag
      & info [ "zero-floats" ]
          ~doc:"Zero every float in the responses (volatile timings), for \
                diffing against a committed golden.")
  in
  let doc =
    "replay NDJSON requests against a running server, one at a time, \
     printing one response line each; exits 0 when the transport held \
     (error responses are data, not failures), 1 on connection errors"
  in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const run_client $ socket_arg $ tcp_arg $ script_arg $ zero_floats_arg)

let cmd =
  let doc =
    "find counterexamples for LALR parsing conflicts (Isradisaikul & Myers, \
     PLDI 2015)"
  in
  Cmd.group
    (Cmd.info "lrcex" ~version:"1.1.0" ~doc)
    ~default:analyze_term
    [ analyze_cmd; batch_cmd; validate_cmd; lint_cmd; serve_cmd; client_cmd ]

(* Backward compatibility: `lrcex my.y` (no subcommand) still analyzes the
   file, as the original single-command CLI did. cmdliner groups would
   otherwise reject the unknown "command". *)
let () =
  Cex_session.Pool.tune_gc ();
  let argv = Sys.argv in
  let argv =
    if
      Array.length argv > 1
      && (argv.(1) = "-" || String.length argv.(1) = 0 || argv.(1).[0] <> '-')
      && argv.(1) <> "analyze" && argv.(1) <> "batch" && argv.(1) <> "lint"
      && argv.(1) <> "validate" && argv.(1) <> "serve" && argv.(1) <> "client"
    then
      Array.concat
        [ [| argv.(0); "analyze" |]; Array.sub argv 1 (Array.length argv - 1) ]
    else argv
  in
  exit (Cmd.eval' ~argv cmd)
