(* Regenerate the paper's Table 1 on this machine. *)

open Cmdliner

let run names with_baseline timeout cumulative quick jobs lint =
  match
    match names with
    | [] -> Ok (Corpus.all ())
    | names -> (
      try Ok (List.map Corpus.find names)
      with Invalid_argument msg -> Error msg)
  with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok entries when lint ->
    (* Static only: lint the corpus and print the summary table, skipping
       the (slow) counterexample searches entirely. *)
    Fmt.pr "%a" Evaluation.Lint_summary.pp_table
      (Evaluation.Lint_summary.run_rows entries);
    0
  | Ok entries ->
  let options =
    { Cex.Driver.default_options with
      Cex.Driver.per_conflict_timeout = (if quick then 1.0 else timeout);
      cumulative_timeout = (if quick then 20.0 else cumulative) }
  in
  Fmt.pr "%a" Evaluation.pp_header ();
  let rows =
    if jobs <= 1 then
      Evaluation.run_rows ~options ~with_baseline
        ~on_row:(fun row -> Fmt.pr "%a%!" Evaluation.pp_row row)
        entries
    else begin
      (* Parallel rows complete out of order; print once, in table order. *)
      let rows = Evaluation.run_rows ~options ~with_baseline ~jobs entries in
      List.iter (fun row -> Fmt.pr "%a%!" Evaluation.pp_row row) rows;
      rows
    end
  in
  Fmt.pr "@.";
  Evaluation.pp_effectiveness Fmt.stdout (Evaluation.effectiveness rows);
  Evaluation.pp_efficiency Fmt.stdout (Evaluation.efficiency rows);
  Evaluation.pp_scalability Fmt.stdout (Evaluation.scalability rows);
  0

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"GRAMMAR" ~doc:"Corpus grammar names (default: all).")

let baseline_arg =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Also time the CFGAnalyzer-substitute baseline.")

let timeout_arg =
  Arg.(value & opt float 5.0 & info [ "timeout" ] ~doc:"Per-conflict limit (s).")

let cumulative_arg =
  Arg.(value & opt float 120.0 & info [ "cumulative-timeout" ] ~doc:"Cumulative budget (s).")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small budgets (1 s / 20 s) for smoke runs.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Compute table rows on $(docv) worker domains in parallel.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"Print the corpus-wide lint summary instead (static, fast).")

let cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"regenerate the paper's Table 1")
    Term.(
      const run $ names_arg $ baseline_arg $ timeout_arg $ cumulative_arg
      $ quick_arg $ jobs_arg $ lint_arg)

let () = exit (Cmd.eval' cmd)
