(** Top-level driver: analyze a session's conflicts and attach a
    counterexample to each, mirroring the paper's implementation strategy
    (section 6):

    - compute the shortest lookahead-sensitive path per conflict;
    - run the product-parser search for a unifying counterexample under a
      per-conflict time limit (the paper's 5 s default);
    - fall back to a nonunifying counterexample on timeout or exhaustion;
    - after a cumulative budget (the paper's 2 minutes), skip the unifying
      search and report only nonunifying counterexamples.

    All timing flows through the session's {!Cex_session.Clock} and
    {!Cex_session.Deadline} values — no raw wall-clock reads — so timeouts
    are deterministic under a fake clock. *)

open Automaton

(** Which unifying-counterexample engine analyzes each conflict:

    - [Product]: the paper's product-parser search ({!Product_search});
    - [Srwalk]: the SR-automaton walk ({!Cex_srwalk.Walk}), Quaglia's
      conflict-first traversal of structures derived from the
      nondeterministic LR tables;
    - [Race]: both engines run every conflict (two tasks per conflict on
      the session pool, one shared cumulative budget) and the winner is
      adjudicated deterministically — see {!analyze_session}. *)
type engine = Product | Srwalk | Race

val engine_of_string : string -> engine option
val engine_to_string : engine -> string

type options = {
  per_conflict_timeout : float;  (** seconds; paper default 5.0 *)
  cumulative_timeout : float;  (** seconds; paper default 120.0 *)
  extended : bool;  (** full search (the paper's [-extendedsearch]) *)
  costs : Product_search.costs;
  max_configs : int;
      (** explored-configuration (product) / explored-node (srwalk) budget *)
  engine : engine;
}

val default_options : options

type outcome =
  | Found_unifying
  | No_unifying_exists
      (** search exhausted: under the shortest-path restriction no unifying
          counterexample exists (Table 1's "# nonunif" column) *)
  | Search_timeout  (** Table 1's "# time out" column *)
  | Skipped_search  (** cumulative budget exceeded before this conflict *)
  | Search_crashed
      (** the search raised; the exception (with backtrace) is in
          [failure]. Produced only by the batch scheduler's per-conflict
          crash conversion, never by {!analyze_conflict} itself. *)

type counterexample =
  | Unifying of Product_search.unifying
  | Nonunifying of Nonunifying.t

(** Verdict of the independent counterexample oracle ([lib/validate]); the
    type lives here so a report can carry its verdicts without the driver
    depending on the oracle. *)
type validation =
  | Not_validated  (** the oracle was not run on this conflict *)
  | Validated  (** every oracle check passed *)
  | Validation_failed of string list  (** the named checks failed *)

type conflict_report = {
  conflict : Conflict.t;
  classification : string;
      (** static conflict-pattern classification from the lint engine,
          computed once at session construction: a conflict-group rule code
          such as ["dangling-else"], or ["unclassified"] *)
  counterexample : counterexample option;
      (** [None] only if even the nonunifying construction failed *)
  outcome : outcome;
  elapsed : float;
  configs_explored : int;
  failure : string option;
      (** exception and backtrace, for {!Search_crashed} only *)
  validation : validation;
  engine : string;
      (** which engine produced this report (["product"] / ["srwalk"]);
          under {!Race}, the adjudicated winner *)
}

type report = {
  table : Parse_table.t;
  conflict_reports : conflict_report list;
  total_elapsed : float;
  metrics : Cex_session.Trace.metrics;
      (** per-stage spans and counters from the session's collector; empty
          when the session was created with an external trace sink *)
}

val analyze : ?options:options -> ?jobs:int -> Cfg.Grammar.t -> report
(** [analyze g] is [analyze_session (Cex_session.Session.create g)]. *)

val analyze_session :
  ?options:options -> ?jobs:int -> Cex_session.Session.t -> report
(** Analyze every conflict of the session under a fresh cumulative
    {!Cex_session.Deadline.budget} of [options.cumulative_timeout] seconds
    of consumed search time.

    [jobs] (default 1) is the conflict-level fan-out: with [jobs > 1] the
    conflicts are spawned as tasks across that many domains, sharing the
    single cumulative budget and the session's memoized search structures.
    Reports are collected by conflict index, so the report order — and,
    because the memoized shortest paths are deterministic, every
    non-timing field of every report — is identical at any jobs count.
    Per-task metric collectors are merged into the session's collector in
    conflict order after the join.

    Under [options.engine = Race] every conflict becomes {e two} tasks —
    one per engine — on the same pool and budget, and the per-conflict
    winner is adjudicated deterministically after the join (never by
    wall-clock arrival, which would break the any-jobs determinism): a
    structurally-valid decided report beats an undecided one; when both
    engines decide and agree, the one that explored fewer configurations
    wins, ties to product; a disagreement — one engine's bug — prefers the
    validated witness and bumps the ["race"] stage's [disagreed] counter.
    The winner's name is in each report's [engine] field and in the
    ["race"] stage's [winner_product]/[winner_srwalk] counters.

    A conflict whose search raises yields a {!Search_crashed} report (at
    any jobs count) instead of aborting the session. *)

val analyze_conflict :
  ?options:options ->
  ?skip_search:bool ->
  ?deadline:Cex_session.Deadline.t ->
  ?trace:Cex_session.Trace.sink ->
  Cex_session.Session.t ->
  Conflict.t ->
  conflict_report
(** [deadline] is the {e cumulative} budget (default
    {!Cex_session.Deadline.never}): the per-conflict deadline handed to the
    path and product searches is [deadline] clamped to
    [options.per_conflict_timeout] via {!Cex_session.Deadline.clamp}, and
    the conflict's elapsed time is {!Cex_session.Deadline.consume}d from it
    afterwards. When the budget is already exhausted (or [skip_search] is
    set) the searches are skipped entirely — no path computation — and the
    report falls back to a nonunifying counterexample with
    {!Skipped_search}.

    [trace] overrides the session's sink for this conflict's spans and
    counters (the parallel driver passes per-task collectors). Engine
    stages are namespaced through {!Cex_session.Trace.prefixed} —
    ["product.search"] / ["srwalk.search"] and
    ["product.nonunifying"] / ["srwalk.nonunifying"] — and carry an
    ["alloc_words"] counter with the [Gc.minor_words] delta of the search;
    the shared ["path_search"] stage stays unprefixed (both engines reuse
    the same memoized paths). Shortest paths are memoized on the session
    per (conflict state, reduce item, terminal): a memo hit emits no
    ["path_search"] span, so span and counter totals count distinct
    searches, not conflicts.

    Under [options.engine = Race] both engines run sequentially here and
    the adjudicated winner is returned; {!analyze_session} instead fans
    the two engines out as separate pool tasks. *)

val crashed_conflict_report :
  ?engine:string ->
  Cex_session.Session.t ->
  Conflict.t ->
  exn ->
  string ->
  conflict_report
(** [crashed_conflict_report session conflict exn backtrace]: the
    {!Search_crashed} report the scheduler substitutes for a conflict whose
    worker raised, so one poisoned conflict degrades to a per-item error
    instead of aborting the batch. *)

val grammar : report -> Cfg.Grammar.t
val n_unifying : report -> int
val n_nonunifying : report -> int

val n_timeout : report -> int
(** Searches that ran and hit the per-conflict time or configuration
    budget. Skipped searches (cumulative budget exhausted before the
    conflict was attempted) are counted by {!n_skipped}, not here. *)

val n_skipped : report -> int
val n_crashed : report -> int
