(** Top-level driver: analyze a grammar's conflicts and attach a
    counterexample to each, mirroring the paper's implementation strategy
    (section 6):

    - compute the shortest lookahead-sensitive path per conflict;
    - run the product-parser search for a unifying counterexample under a
      per-conflict time limit (the paper's 5 s default);
    - fall back to a nonunifying counterexample on timeout or exhaustion;
    - after a cumulative budget (the paper's 2 minutes), skip the unifying
      search and report only nonunifying counterexamples. *)

open Automaton

type options = {
  per_conflict_timeout : float;  (** seconds; paper default 5.0 *)
  cumulative_timeout : float;  (** seconds; paper default 120.0 *)
  extended : bool;  (** full search (the paper's [-extendedsearch]) *)
  costs : Product_search.costs;
  max_configs : int;
}

val default_options : options

type outcome =
  | Found_unifying
  | No_unifying_exists
      (** search exhausted: under the shortest-path restriction no unifying
          counterexample exists (Table 1's "# nonunif" column) *)
  | Search_timeout  (** Table 1's "# time out" column *)
  | Skipped_search  (** cumulative budget exceeded before this conflict *)

type counterexample =
  | Unifying of Product_search.unifying
  | Nonunifying of Nonunifying.t

type conflict_report = {
  conflict : Conflict.t;
  classification : string;
      (** static conflict-pattern classification from the lint engine
          ({!Cex_lint.Lint.classification}): a conflict-group rule code such
          as ["dangling-else"], or ["unclassified"] *)
  counterexample : counterexample option;
      (** [None] only if even the nonunifying construction failed *)
  outcome : outcome;
  elapsed : float;
  configs_explored : int;
}

type report = {
  table : Parse_table.t;
  conflict_reports : conflict_report list;
  total_elapsed : float;
}

val analyze : ?options:options -> Cfg.Grammar.t -> report
val analyze_table : ?options:options -> Parse_table.t -> report

val clamp_to_budget : options -> remaining:float -> options * bool
(** [clamp_to_budget options ~remaining] prepares the options for the next
    conflict given [remaining] seconds of the cumulative budget: the
    per-conflict timeout is clamped so a single slow conflict cannot
    overshoot the cumulative budget, and the returned boolean is the
    [skip_search] flag (true once the budget is exhausted). Shared by
    {!analyze_table} and the batch scheduler. *)

val analyze_conflict :
  ?options:options -> ?skip_search:bool -> Lalr.t -> Conflict.t ->
  conflict_report

val grammar : report -> Cfg.Grammar.t
val n_unifying : report -> int
val n_nonunifying : report -> int
val n_timeout : report -> int
(** Timeouts plus skipped searches: conflicts for which a nonunifying
    counterexample was reported without proof that no unifying one exists. *)
