(** Persistent min-priority queue with integer priorities and FIFO
    tie-breaking, so search orders are deterministic.

    Implemented as a monotone Dial-style bucket queue: per-priority FIFO
    buckets in an int-keyed map. Tuned for the searches' access pattern —
    small non-negative integer costs with a non-decreasing minimum — where
    only a narrow band of priorities is ever populated. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val add : 'a t -> int -> 'a -> 'a t
val pop : 'a t -> (int * 'a * 'a t) option
(** Smallest priority first; among equal priorities, insertion order. *)
