(** Mutable min-priority queue with integer priorities and FIFO
    tie-breaking — the in-place counterpart of {!Pqueue}, with the identical
    pop order (least priority first, insertion order within a priority).

    A Dial-style bucket array indexed directly by priority. Intended for the
    monotone access pattern of the searches: small non-negative costs whose
    minimum never decreases. [clear] empties the queue while keeping bucket
    capacity, so an instance can be pooled and reused across searches. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> int -> 'a -> unit
(** Raises [Invalid_argument] on a negative priority. *)

val pop : 'a t -> (int * 'a) option
(** Smallest priority first; among equal priorities, insertion order. *)

val clear : 'a t -> unit
(** Empty in place, retaining internal capacity for reuse. *)
