open Cfg
open Automaton

type costs = {
  transition : int;
  reverse_transition : int;
  production_step : int;
  duplicate_production : int;
  reduction : int;
  off_path : int;
}

(* Tuned empirically (see bench/main.ml's ablation): making production steps
   markedly dearer than transitions and reductions free orders leaf-heavy
   completions first and shrinks explored configurations by 10-30x on the
   corpus without changing any outcome. *)
let default_costs =
  { transition = 1;
    reverse_transition = 1;
    production_step = 4;
    duplicate_production = 12;
    reduction = 0;
    off_path = 4 }

(* A configuration of the outward search (paper, Fig. 8): one item sequence
   and one partial-derivation list per simulated parser copy. Invariants:

   - consecutive entries of a sequence are connected by a production step
     (same state, next item has dot 0 on a production of the symbol at the
     previous item's dot) or by a transition/goto (next item is the previous
     one advanced, in the successor state);
   - the first entries of both sequences are in the same state;
   - [derivs] holds one derivation per transition/goto edge, in order, and
     the two sides' derivation frontiers spell the same symbol string.

   Sequence entries are packed integers [(state lsl kbits) lor item_id] over
   the automaton's interned item ids: every hot comparison (duplicate
   checks, visited-set equality) is an int compare, advancing or retreating
   an item is an increment or decrement of the low bits, and each sequence
   carries its fold hash so the visited table never rehashes from scratch on
   the append-only moves. *)
type vec = {
  a : int array;  (* packed entries, in sequence order *)
  h : int;  (* cached hash: fold of [acc * 65599 + e] over [a], seed 17 *)
}

type config = {
  seq1 : vec;
  derivs1 : Derivation.t array;
  seq2 : vec;
  derivs2 : Derivation.t array;
  anchor1 : int;  (** index of the conflict item entry; -1 once reduced *)
  anchor2 : int;
  complete1 : bool;  (** stage 1 done: conflict reduce item reduced *)
  complete2 : bool;  (** stage 2 done: other conflict item's production reduced *)
  shifted_conflict : bool;
      (** the conflict terminal has been consumed by a forward transition *)
}

type stats = {
  configs_explored : int;
  elapsed : float;
}

type unifying = {
  nonterminal : int;
  form : Symbol.t list;
  deriv1 : Derivation.t;
  deriv2 : Derivation.t;
}

type outcome =
  | Unifying of unifying * stats
  | Timeout of stats
  | Exhausted of stats

(* ------------------------------------------------------------------ *)
(* Packed sequences. *)

let vec_hash a = Array.fold_left (fun acc e -> (acc * 65599) + e) 17 a

let vec_of_array a = { a; h = vec_hash a }

let vec_len v = Array.length v.a

let vec_last v = v.a.(Array.length v.a - 1)

let vec_append v e =
  let n = Array.length v.a in
  let a = Array.make (n + 1) e in
  Array.blit v.a 0 a 0 n;
  (* The fold hash extends in O(1) on appends — the common forward moves. *)
  { a; h = (v.h * 65599) + e }

let vec_prepend e v =
  let n = Array.length v.a in
  let a = Array.make (n + 1) e in
  Array.blit v.a 0 a 1 n;
  vec_of_array a

let vec_mem e v = Array.exists (fun e' -> e' = e) v.a

let vec_equal v1 v2 =
  let n1 = Array.length v1.a and n2 = Array.length v2.a in
  n1 = n2
  &&
  let rec go i = i >= n1 || (v1.a.(i) = v2.a.(i) && go (i + 1)) in
  go 0

let darr_append d x =
  let n = Array.length d in
  let a = Array.make (n + 1) x in
  Array.blit d 0 a 0 n;
  a

let darr_prepend x d =
  let n = Array.length d in
  let a = Array.make (n + 1) x in
  Array.blit d 0 a 1 n;
  a

(* ------------------------------------------------------------------ *)

module Key = struct
  type t = config

  (* One traversal per sequence, guarded by the cached lengths and hashes, so
     unequal-length sequences can never reach the elementwise loop. *)
  let equal c1 c2 =
    c1.complete1 = c2.complete1 && c1.complete2 = c2.complete2
    && c1.shifted_conflict = c2.shifted_conflict
    && c1.anchor1 = c2.anchor1 && c1.anchor2 = c2.anchor2
    && c1.seq1.h = c2.seq1.h && c1.seq2.h = c2.seq2.h
    && vec_equal c1.seq1 c2.seq1
    && vec_equal c1.seq2 c2.seq2

  let hash c =
    let h = (c.seq1.h * 65599) + c.seq2.h in
    (h * 4)
    + (if c.complete1 then 1 else 0)
    + (if c.complete2 then 2 else 0)
    + if c.shifted_conflict then 4 else 0
end

module Ktbl = Hashtbl.Make (Key)

(* ------------------------------------------------------------------ *)

type context = {
  lalr : Lalr.t;
  g : Grammar.t;
  analysis : Analysis.t;
  lr0 : Lr0.t;
  kbits : int;  (* bits of a packed entry holding the item id *)
  first_id : int array;  (* interned id of [(p, 0)] per production [p] *)
  costs : costs;
  terminal : int;  (* the conflict terminal *)
  on_path : bool array;  (* per state *)
  extended : bool;
  is_shift_reduce : bool;
  shift_dot : int option;  (* original dot of the shift item, for the marker *)
}

let pack ctx state id = (state lsl ctx.kbits) lor id
let state_of ctx e = e lsr ctx.kbits
let id_of ctx e = e land ((1 lsl ctx.kbits) - 1)

let next_of ctx e = Lr0.next_symbol_of_id ctx.lr0 (id_of ctx e)
let dot_of ctx e = (Lr0.item_of_id ctx.lr0 (id_of ctx e)).Item.dot
let is_reduce_of ctx e = Option.is_none (next_of ctx e)

let lookahead_of ctx e =
  Lalr.lookahead_of_id ctx.lalr (state_of ctx e) (id_of ctx e)

(* Can the expansion of production [p]'s right-hand side (of a
   production-step target) begin with the conflict terminal, or vanish
   entirely so that a later symbol provides it? Used to prune forward
   production steps before the conflict terminal has been consumed. The
   FIRST sets come from the per-(production, dot) memo table, not a
   recomputed walk. *)
let can_lead_to ctx p t =
  let set, nullable = Analysis.first_of_prod ctx.analysis ~prod:p ~from:0 in
  nullable || Bitset.mem set t

(* The terminal the product parser will consume next, if it is already
   determined by the other side's last item. *)
let next_terminal_hint ctx other_last =
  match next_of ctx other_last with
  | Some (Symbol.Terminal t) -> Some t
  | Some (Symbol.Nonterminal _) | None -> None

(* ------------------------------------------------------------------ *)
(* Successor moves. Each returns (cost delta, new config). *)

let forward_transition ctx cfg =
  let l1 = vec_last cfg.seq1 and l2 = vec_last cfg.seq2 in
  match next_of ctx l1, next_of ctx l2 with
  | Some z1, Some z2 when Symbol.equal z1 z2 ->
    let allowed =
      cfg.shifted_conflict
      || Symbol.equal z1 (Symbol.Terminal ctx.terminal)
    in
    if not allowed then []
    else begin
      match
        Lr0.transition ctx.lr0 (state_of ctx l1) z1,
        Lr0.transition ctx.lr0 (state_of ctx l2) z1
      with
      | Some s1', Some s2' ->
        let leaf = Derivation.leaf z1 in
        [ ( ctx.costs.transition,
            { cfg with
              seq1 = vec_append cfg.seq1 (pack ctx s1' (id_of ctx l1 + 1));
              derivs1 = darr_append cfg.derivs1 leaf;
              seq2 = vec_append cfg.seq2 (pack ctx s2' (id_of ctx l2 + 1));
              derivs2 = darr_append cfg.derivs2 leaf;
              shifted_conflict = true } ) ]
      | None, _ | _, None -> []
    end
  | _, _ -> []

let forward_production_steps ctx cfg ~side =
  let seq = if side = 1 then cfg.seq1 else cfg.seq2 in
  let l = vec_last seq in
  (* If the other side already fixes the next terminal, only expansions that
     can start with it (or vanish) are worth taking. *)
  let other_hint =
    if not cfg.shifted_conflict then Some ctx.terminal
    else
      next_terminal_hint ctx
        (vec_last (if side = 1 then cfg.seq2 else cfg.seq1))
  in
  match next_of ctx l with
  | Some (Symbol.Nonterminal nt) ->
    List.filter_map
      (fun p ->
        if
          match other_hint with
          | Some t -> not (can_lead_to ctx p t)
          | None -> false
        then None
        else begin
          let entry' = pack ctx (state_of ctx l) ctx.first_id.(p) in
          let duplicate = vec_mem entry' seq in
          let cost =
            if duplicate then ctx.costs.duplicate_production
            else ctx.costs.production_step
          in
          let cfg' =
            if side = 1 then { cfg with seq1 = vec_append cfg.seq1 entry' }
            else { cfg with seq2 = vec_append cfg.seq2 entry' }
          in
          Some (cost, cfg')
        end)
      (Grammar.productions_of ctx.g nt)
  | Some (Symbol.Terminal _) | None -> []

(* Reduction on one side (paper, Fig. 10(f)). *)
let reduction ctx cfg ~side =
  let seq, derivs, anchor =
    if side = 1 then cfg.seq1, cfg.derivs1, cfg.anchor1
    else cfg.seq2, cfg.derivs2, cfg.anchor2
  in
  let l = vec_last seq in
  if not (is_reduce_of ctx l) then []
  else begin
    let len_rhs = Lr0.rhs_length_of_id ctx.lr0 (id_of ctx l) in
    let len_seq = vec_len seq in
    if len_seq < len_rhs + 2 then []
    else begin
      (* Respect the lookahead set: if the next terminal is already
         determined, the reduce item must admit it; before the conflict
         terminal is consumed, the conflict terminal itself must be
         admissible. *)
      let la = lookahead_of ctx l in
      let other_last = vec_last (if side = 1 then cfg.seq2 else cfg.seq1) in
      let hint = next_terminal_hint ctx other_last in
      let ok =
        (match hint with Some t -> Bitset.mem la t | None -> true)
        && (cfg.shifted_conflict || Bitset.mem la ctx.terminal)
      in
      if not ok then []
      else begin
        let lhs = Lr0.lhs_of_id ctx.lr0 (id_of ctx l) in
        let keep = len_seq - len_rhs - 1 in
        let ctx_entry = seq.a.(keep - 1) in
        (match next_of ctx ctx_entry with
        | Some (Symbol.Nonterminal nt) when nt = lhs -> ()
        | _ -> assert false);
        match
          Lr0.transition ctx.lr0 (state_of ctx ctx_entry)
            (Symbol.Nonterminal lhs)
        with
        | None -> assert false
        | Some s' ->
          let prod = Item.production ctx.g (Lr0.item_of_id ctx.lr0 (id_of ctx l)) in
          let n_derivs = Array.length derivs in
          let children =
            Array.to_list (Array.sub derivs (n_derivs - len_rhs) len_rhs)
          in
          let completes_conflict = anchor >= 0 && anchor >= keep in
          let dot =
            if not completes_conflict then None
            else if side = 1 then Some len_rhs
            else
              match ctx.shift_dot with
              | Some d -> Some d
              | None -> Some len_rhs (* reduce/reduce second item *)
          in
          let node = Derivation.node ?dot ctx.g prod.Grammar.index children in
          let derivs' =
            darr_append (Array.sub derivs 0 (n_derivs - len_rhs)) node
          in
          let seq' =
            let a = Array.make (keep + 1) 0 in
            Array.blit seq.a 0 a 0 keep;
            a.(keep) <- pack ctx s' (id_of ctx ctx_entry + 1);
            vec_of_array a
          in
          let anchor' = if completes_conflict then -1 else anchor in
          let cfg' =
            if side = 1 then
              { cfg with
                seq1 = seq'; derivs1 = derivs'; anchor1 = anchor';
                complete1 = cfg.complete1 || completes_conflict }
            else
              { cfg with
                seq2 = seq'; derivs2 = derivs'; anchor2 = anchor';
                complete2 = cfg.complete2 || completes_conflict }
          in
          [ (ctx.costs.reduction, cfg') ]
      end
    end
  end

(* How a side that ends in a reduce item must be prepared before the
   reduction of Fig. 10(f) can fire. With [m] entries and a right-hand side
   of length [l]:
   - [m = l + 1]: the dot chain is complete, only the context item is
     missing: reverse production step on this side (Fig. 10(d));
   - [m < l + 1]: more symbols are needed: reverse transitions (Fig. 10(c)),
     unblocked if necessary by a reverse production step on the other side
     (Fig. 10(e));
   - [m >= l + 2]: ready, no preparation. *)
type preparation =
  | No_preparation
  | Needs_context  (* m = l + 1 *)
  | Needs_symbols  (* m < l + 1 *)

let preparation ctx seq =
  let l = vec_last seq in
  if not (is_reduce_of ctx l) then No_preparation
  else begin
    let len_rhs = Lr0.rhs_length_of_id ctx.lr0 (id_of ctx l) in
    let m = vec_len seq in
    if m >= len_rhs + 2 then No_preparation
    else if m = len_rhs + 1 then Needs_context
    else Needs_symbols
  end

(* Reverse transition (paper, Fig. 10(c)): prepend matching predecessor
   entries to both sequences. *)
let reverse_transitions ctx cfg =
  if vec_len cfg.seq1 = 0 || vec_len cfg.seq2 = 0 then []
  else begin
    let f1 = cfg.seq1.a.(0) and f2 = cfg.seq2.a.(0) in
    if dot_of ctx f1 = 0 || dot_of ctx f2 = 0 then []
    else begin
      assert (state_of ctx f1 = state_of ctx f2);
      let head_state = Lr0.state ctx.lr0 (state_of ctx f1) in
      match head_state.Lr0.accessing with
      | None -> []
      | Some z ->
        let p1 = id_of ctx f1 - 1 and p2 = id_of ctx f2 - 1 in
        List.filter_map
          (fun s0 ->
            if not (Lr0.has_item_id ctx.lr0 s0 p1 && Lr0.has_item_id ctx.lr0 s0 p2)
            then None
            else if
              (* Stage-1 lookahead condition on the first parser's item. *)
              (not cfg.complete1)
              && not
                   (Bitset.mem (Lalr.lookahead_of_id ctx.lalr s0 p1)
                      ctx.terminal)
            then None
            else begin
              let off_path = not ctx.on_path.(s0) in
              if off_path && not ctx.extended then None
              else begin
                let cost =
                  ctx.costs.reverse_transition
                  + if off_path then ctx.costs.off_path else 0
                in
                let leaf = Derivation.leaf z in
                let bump a = if a < 0 then a else a + 1 in
                Some
                  ( cost,
                    { cfg with
                      seq1 = vec_prepend (pack ctx s0 p1) cfg.seq1;
                      derivs1 = darr_prepend leaf cfg.derivs1;
                      seq2 = vec_prepend (pack ctx s0 p2) cfg.seq2;
                      derivs2 = darr_prepend leaf cfg.derivs2;
                      anchor1 = bump cfg.anchor1;
                      anchor2 = bump cfg.anchor2 } )
              end
            end)
          (Lr0.predecessors ctx.lr0 (state_of ctx f1))
    end
  end

(* Reverse production step (paper, Fig. 10(d)/(e)): prepend a context item of
   the same state to whichever sequence starts with a dot-0 item. *)
let reverse_production_steps ctx cfg ~side =
  let seq = if side = 1 then cfg.seq1 else cfg.seq2 in
  if vec_len seq = 0 then []
  else begin
    let f = seq.a.(0) in
    if dot_of ctx f <> 0 then []
    else begin
      let f_state = state_of ctx f in
      let lhs = Lr0.lhs_of_id ctx.lr0 (id_of ctx f) in
      (* Precise-lookahead pruning: while the conflict reduction is still
         pending on this side (stage 1, and stage 2 of reduce/reduce
         conflicts), the conflict terminal must be able to follow the reduced
         nonterminal in the prepended context, i.e. belong to the context
         item's followL. This is sound — the LALR lookahead used is an
         overapproximation — and prunes contexts that can never exhibit the
         conflict. *)
      let conflict_reduction_pending =
        if side = 1 then not cfg.complete1
        else (not ctx.is_shift_reduce) && not cfg.complete2
      in
      List.filter_map
        (fun (ctx_item : Item.t) ->
          let ctx_id = Lr0.item_id ctx.lr0 ctx_item in
          let follow =
            Analysis.follow_l ctx.analysis (Item.production ctx.g ctx_item)
              ~dot:ctx_item.Item.dot
              (Lalr.lookahead_of_id ctx.lalr f_state ctx_id)
          in
          if conflict_reduction_pending && not (Bitset.mem follow ctx.terminal)
          then None
          else begin
            let entry = pack ctx f_state ctx_id in
            let bump a = if a < 0 then a else a + 1 in
            let duplicate = vec_mem entry seq in
            let cost =
              if duplicate then ctx.costs.duplicate_production
              else ctx.costs.production_step
            in
            let cfg' =
              if side = 1 then
                { cfg with
                  seq1 = vec_prepend entry cfg.seq1;
                  anchor1 = bump cfg.anchor1 }
              else
                { cfg with
                  seq2 = vec_prepend entry cfg.seq2;
                  anchor2 = bump cfg.anchor2 }
            in
            Some (cost, cfg')
          end)
        (Lr0.items_with_next ctx.lr0 f_state (Symbol.Nonterminal lhs))
    end
  end

let successors ctx cfg =
  let moves = ref [] in
  let push l = moves := l @ !moves in
  push (forward_transition ctx cfg);
  push (forward_production_steps ctx cfg ~side:1);
  push (forward_production_steps ctx cfg ~side:2);
  push (reduction ctx cfg ~side:1);
  push (reduction ctx cfg ~side:2);
  let prep1 = preparation ctx cfg.seq1 and prep2 = preparation ctx cfg.seq2 in
  (match prep1 with
  | Needs_context -> push (reverse_production_steps ctx cfg ~side:1)
  | Needs_symbols | No_preparation -> ());
  (match prep2 with
  | Needs_context -> push (reverse_production_steps ctx cfg ~side:2)
  | Needs_symbols | No_preparation -> ());
  if prep1 = Needs_symbols || prep2 = Needs_symbols then begin
    assert (vec_len cfg.seq1 > 0 && vec_len cfg.seq2 > 0);
    let f1 = cfg.seq1.a.(0) and f2 = cfg.seq2.a.(0) in
    if dot_of ctx f1 > 0 && dot_of ctx f2 > 0 then
      push (reverse_transitions ctx cfg)
    else begin
      (* Unblock reverse transitions (Fig. 10(e)): undo the production step
         that created whichever front item has its dot at 0. *)
      if dot_of ctx f1 = 0 then push (reverse_production_steps ctx cfg ~side:1);
      if dot_of ctx f2 = 0 then push (reverse_production_steps ctx cfg ~side:2)
    end
  end;
  !moves

(* Success (paper, section 5.4): both sequences have become a single
   transition over the same nonterminal, and the two derivations of that
   nonterminal differ. *)
let success ctx cfg =
  if not (cfg.complete1 && cfg.complete2) then None
  else if
    vec_len cfg.seq1 <> 2 || vec_len cfg.seq2 <> 2
    || Array.length cfg.derivs1 <> 1
    || Array.length cfg.derivs2 <> 1
  then None
  else begin
    let a1 = cfg.seq1.a.(0) and a2 = cfg.seq2.a.(0) in
    let d1 = cfg.derivs1.(0) and d2 = cfg.derivs2.(0) in
    match next_of ctx a1, next_of ctx a2 with
    | Some (Symbol.Nonterminal n1), Some (Symbol.Nonterminal n2)
      when n1 = n2 && not (Derivation.equal d1 d2) ->
      Some { nonterminal = n1; form = Derivation.leaves d1; deriv1 = d1;
             deriv2 = d2 }
    | _, _ -> None
  end

(* ------------------------------------------------------------------ *)

(* Automaton-level pieces of the context that every conflict of a grammar
   shares; the driver memoizes one per session and passes it in. *)
type shared = {
  s_kbits : int;
  s_first_id : int array;
}

let shared_of_lalr lalr =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  { s_kbits =
      (let n = Lr0.n_item_ids lr0 in
       let rec go b = if 1 lsl b >= n then b else go (b + 1) in
       go 1);
    s_first_id =
      Array.init (Grammar.n_productions g) (fun p ->
          Lr0.item_id lr0 (Item.make p 0)) }

(* Per-domain scratch pool: the visited table keeps its bucket capacity
   across searches ([Ktbl.clear] does not shrink), and so does the bucket
   queue. Take-out/put-back through the DLS slot: a search that raises
   abandons the scratch, so a dirty structure is never reused. *)
type scratch = {
  visited : unit Ktbl.t;
  queue : config Bucket_queue.t;
}

let scratch_slot : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_scratch () =
  let slot = Domain.DLS.get scratch_slot in
  let s =
    match !slot with
    | Some s -> s
    | None -> { visited = Ktbl.create 4096; queue = Bucket_queue.create () }
  in
  slot := None;
  s

let put_scratch s =
  Ktbl.clear s.visited;
  Bucket_queue.clear s.queue;
  Domain.DLS.get scratch_slot := Some s

let search ?(costs = default_costs) ?(extended = false)
    ?(deadline = Cex_session.Deadline.never)
    ?(trace = Cex_session.Trace.null) ?(max_configs = 400_000) ?shared lalr
    ~(conflict : Conflict.t) ~path_states =
  let clock =
    Option.value
      (Cex_session.Deadline.clock deadline)
      ~default:Cex_session.Clock.system
  in
  let started = Cex_session.Clock.now clock in
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let on_path = Array.make (Lr0.n_states lr0) false in
  List.iter (fun s -> on_path.(s) <- true) path_states;
  let { s_kbits = kbits; s_first_id = first_id } =
    match shared with Some s -> s | None -> shared_of_lalr lalr
  in
  let ctx =
    { lalr;
      g;
      analysis = Lalr.analysis lalr;
      lr0;
      kbits;
      first_id;
      costs;
      terminal = conflict.Conflict.terminal;
      on_path;
      extended;
      is_shift_reduce = Conflict.is_shift_reduce conflict;
      shift_dot =
        (match conflict.Conflict.kind with
        | Conflict.Shift_reduce { shift_item; _ } -> Some shift_item.Item.dot
        | Conflict.Reduce_reduce _ -> None) }
  in
  let initial =
    { seq1 =
        vec_of_array
          [| pack ctx conflict.Conflict.state
               (Lr0.item_id lr0 (Conflict.reduce_item conflict)) |];
      derivs1 = [||];
      seq2 =
        vec_of_array
          [| pack ctx conflict.Conflict.state
               (Lr0.item_id lr0 (Conflict.other_item conflict)) |];
      derivs2 = [||];
      anchor1 = 0;
      anchor2 = 0;
      complete1 = false;
      complete2 = false;
      shifted_conflict = false }
  in
  let scratch = take_scratch () in
  let visited = scratch.visited in
  let queue = scratch.queue in
  Bucket_queue.add queue 0 initial;
  let explored = ref 0 in
  let pushes = ref 1 in
  let result = ref None in
  let give_up =
    (* Check the deadline on loop entry: an already-expired per-conflict
       budget must not explore a single configuration. *)
    ref (if Cex_session.Deadline.expired deadline then Some `Timeout else None)
  in
  while Option.is_none !result && Option.is_none !give_up do
    if Bucket_queue.is_empty queue then give_up := Some `Exhausted
    else if
      !explored land Cex_session.Deadline.poll_mask = 0
      && Cex_session.Deadline.expired deadline
    then give_up := Some `Timeout
    else if !explored > max_configs then give_up := Some `Timeout
    else begin
      match Bucket_queue.pop queue with
      | None -> assert false
      | Some (cost, cfg) ->
        if not (Ktbl.mem visited cfg) then begin
          Ktbl.add visited cfg ();
          incr explored;
          match success ctx cfg with
          | Some u -> result := Some u
          | None ->
            List.iter
              (fun (delta, cfg') ->
                if not (Ktbl.mem visited cfg') then begin
                  incr pushes;
                  Bucket_queue.add queue (cost + delta) cfg'
                end)
              (successors ctx cfg)
        end
    end
  done;
  put_scratch scratch;
  Cex_session.Trace.count trace "search" "configs_explored" !explored;
  Cex_session.Trace.count trace "search" "queue_pushes" !pushes;
  let stats =
    { configs_explored = !explored;
      elapsed = Cex_session.Clock.now clock -. started }
  in
  match !result, !give_up with
  | Some u, _ -> Unifying (u, stats)
  | None, Some `Timeout -> Timeout stats
  | None, Some `Exhausted -> Exhausted stats
  | None, None -> assert false
