(** Shortest lookahead-sensitive paths (paper, section 4).

    A vertex of the lookahead-sensitive graph is a triple
    [(state, item, precise lookahead set)]; edges are parser transitions
    (which preserve the precise lookahead set) and production steps (which
    refine it through {!Cfg.Analysis.follow_l}). The shortest path from
    [(start state, START item, {$})] to the conflict reduce item with the
    conflict terminal in its precise lookahead set yields the prefix of every
    valid counterexample for the conflict.

    The search is a lazy Dijkstra: vertices are materialized on demand, and —
    the paper's section-6 optimization — only [(state, item)] pairs that can
    reach the conflict item backwards are ever expanded. *)

open Cfg
open Automaton

type node = {
  state : int;
  item : Item.t;
  lookahead : Bitset.t;  (** precise lookahead set, not the LALR set *)
}

type step =
  | Transition of Symbol.t
  | Production of int  (** production chosen by a production step *)

type t = {
  nodes : node list;
  steps : step list;  (** [steps] has one fewer element than [nodes] *)
}

val find :
  ?transition_cost:int ->
  ?production_cost:int ->
  ?deadline:Cex_session.Deadline.t ->
  ?trace:Cex_session.Trace.sink ->
  ?relevant:(int -> int -> bool) ->
  Lalr.t ->
  conflict_state:int ->
  reduce_item:Item.t ->
  terminal:int ->
  t option
(** [None] if the conflict item is unreachable with the conflict terminal in
    the precise lookahead — impossible for genuine LALR conflicts but callers
    must handle it — or if [deadline] (default {!Cex_session.Deadline.never})
    expires; the Dijkstra polls it on loop entry and every
    {!Cex_session.Deadline.poll_interval} pops. Emits [relaxations] and
    [pops] counters for the ["path_search"] stage into [trace]. Default
    costs: transitions 1, production steps 0 (shortest in symbols).

    [relevant] is the backward-reachability pruning predicate over
    [(state, item id)] pairs ({!Automaton.Lr0.backward_reach}); pass the
    session-memoized one ({!Cex_session.Session.backward_reach}) to share
    the bitmap across conflicts — by default it is recomputed per call.
    It must be exactly backward reachability for the same target: the
    pruning only affects which dead-end vertices are expanded, never the
    path found. *)

val prefix_symbols : t -> Symbol.t list
(** The symbols of the transition edges: the counterexample prefix that takes
    the parser from the start state to the conflict state. *)

val states_on_path : t -> int list
(** Sorted, deduplicated states visited; the unifying search restricts
    reverse transitions to these (paper, section 6). *)

val pp : Grammar.t -> Format.formatter -> t -> unit
