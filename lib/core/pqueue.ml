(* A monotone bucket queue in the style of Dial's algorithm: entries live in
   per-priority buckets and pop always drains the least-priority bucket.
   Both searches push small non-negative integer costs whose minimum never
   decreases, so at any moment only a narrow band of priorities is populated
   and every operation touches a handful of buckets.

   The buckets are held in an int-keyed balanced map rather than a mutable
   circular array so the structure stays persistent — old versions remain
   valid, which the searches rely on for determinism under replay and the
   tests exercise directly. With the priority band a dozen entries wide, the
   map is at most a few nodes deep, so operations are effectively
   constant-time and allocate far less than the pairing heap's merge chains.

   Each bucket is a banker's queue (front list + reversed back list), which
   preserves FIFO order among equal priorities and keeps search outcomes
   deterministic without the global insertion counter the pairing heap
   needed. *)

module M = Map.Make (Int)

type 'a bucket = {
  front : 'a list;  (* pop side, oldest first *)
  back : 'a list;  (* push side, newest first *)
}

type 'a t = {
  buckets : 'a bucket M.t;  (* nonempty buckets only *)
  size : int;
}

let empty = { buckets = M.empty; size = 0 }

let is_empty q = q.size = 0
let size q = q.size

let add q priority value =
  let buckets =
    M.update priority
      (function
        | None -> Some { front = [ value ]; back = [] }
        | Some b -> Some { b with back = value :: b.back })
      q.buckets
  in
  { buckets; size = q.size + 1 }

let pop q =
  match M.min_binding_opt q.buckets with
  | None -> None
  | Some (priority, b) ->
    let value, rest =
      match b.front with
      | v :: front -> v, { b with front }
      | [] -> (
        match List.rev b.back with
        | v :: front -> v, { front; back = [] }
        | [] -> assert false (* empty buckets are removed eagerly *))
    in
    let buckets =
      match rest with
      | { front = []; back = [] } -> M.remove priority q.buckets
      | _ -> M.add priority rest q.buckets
    in
    Some (priority, value, { buckets; size = q.size - 1 })
