(** The outward product-parser search for unifying counterexamples (paper,
    section 5).

    Two copies of the parser are simulated from the conflict state outwards:
    copy 1 is forced to use the conflict reduce item, copy 2 the shift item
    (or second reduce item). Configurations pair an item sequence and a
    partial-derivation list per copy; moves are the paper's Fig. 10 edges
    (forward/reverse transitions and production steps, and reductions).
    The search is cost-ordered (cheapest configuration first) and succeeds
    when both copies have completed a derivation of the same nonterminal over
    the same symbol string — the unifying counterexample.

    By default, reverse transitions are restricted to states on the shortest
    lookahead-sensitive path (the paper's practical tradeoff, section 6);
    [extended] lifts the restriction, trading speed for completeness. *)

open Cfg
open Automaton

type costs = {
  transition : int;
  reverse_transition : int;
  production_step : int;
  duplicate_production : int;
      (** charged instead of [production_step] when the production step
          re-creates an entry already present in the sequence (the paper's
          "postpone repeated expansions") *)
  reduction : int;
  off_path : int;
      (** surcharge for reverse transitions leaving the shortest
          lookahead-sensitive path (extended search only) *)
}

val default_costs : costs

type stats = {
  configs_explored : int;
  elapsed : float;  (** seconds *)
}

type unifying = {
  nonterminal : int;  (** the ambiguous (unifying) nonterminal *)
  form : Symbol.t list;  (** the counterexample: frontier of both derivations *)
  deriv1 : Derivation.t;  (** derivation using the reduce item *)
  deriv2 : Derivation.t;  (** derivation using the shift / second reduce item *)
}

type outcome =
  | Unifying of unifying * stats
  | Timeout of stats  (** time or configuration budget exhausted *)
  | Exhausted of stats
      (** search space exhausted without success under the current
          restriction; with [extended:true] this proves no unifying
          counterexample exists through the conflict items *)

type shared
(** Automaton-level context shared by every conflict of one grammar: the
    packed-entry bit layout and the per-production initial-item ids.
    Immutable; build once per grammar with {!shared_of_lalr} (the driver
    memoizes one per session) and pass to {!search}. *)

val shared_of_lalr : Lalr.t -> shared

val search :
  ?costs:costs ->
  ?extended:bool ->
  ?deadline:Cex_session.Deadline.t ->
  ?trace:Cex_session.Trace.sink ->
  ?max_configs:int ->
  ?shared:shared ->
  Lalr.t ->
  conflict:Conflict.t ->
  path_states:int list ->
  outcome
(** [path_states] is {!Lookahead_path.states_on_path} of the conflict's
    shortest lookahead-sensitive path. The per-conflict time budget arrives
    as [deadline] (default {!Cex_session.Deadline.never}): it is checked on
    entry and polled every {!Cex_session.Deadline.poll_interval} explored
    configurations; expiry yields {!Timeout}, exactly like exceeding
    [max_configs] (default 400k). Emits [configs_explored] and
    [queue_pushes] counters for the ["search"] stage into [trace] — the
    driver namespaces the sink per engine ({!Cex_session.Trace.prefixed}),
    so the counters surface as ["product.search"].
    [stats.elapsed] is measured on the deadline's clock (the system
    monotonic clock for {!Cex_session.Deadline.never}). [shared] (default:
    rebuilt per call) must come from {!shared_of_lalr} on the same
    automaton. *)
