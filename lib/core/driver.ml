
open Automaton
module Session = Cex_session.Session
module Clock = Cex_session.Clock
module Deadline = Cex_session.Deadline
module Trace = Cex_session.Trace

type options = {
  per_conflict_timeout : float;
  cumulative_timeout : float;
  extended : bool;
  costs : Product_search.costs;
  max_configs : int;
}

let default_options =
  { per_conflict_timeout = 5.0;
    cumulative_timeout = 120.0;
    extended = false;
    costs = Product_search.default_costs;
    max_configs = 400_000 }

type outcome =
  | Found_unifying
  | No_unifying_exists
  | Search_timeout
  | Skipped_search
  | Search_crashed

type counterexample =
  | Unifying of Product_search.unifying
  | Nonunifying of Nonunifying.t

type validation =
  | Not_validated
  | Validated
  | Validation_failed of string list

type conflict_report = {
  conflict : Conflict.t;
  classification : string;
  counterexample : counterexample option;
  outcome : outcome;
  elapsed : float;
  configs_explored : int;
  failure : string option;
  validation : validation;
}

type report = {
  table : Parse_table.t;
  conflict_reports : conflict_report list;
  total_elapsed : float;
  metrics : Trace.metrics;
}

let grammar r = Parse_table.grammar r.table

let count outcome r =
  List.length (List.filter (fun cr -> cr.outcome = outcome) r.conflict_reports)

let n_unifying = count Found_unifying
let n_nonunifying = count No_unifying_exists

(* Skipped searches (budget exhausted before the conflict was even
   attempted) used to be folded into this count, inflating the "timed out"
   summary; they are now reported separately by {!n_skipped}. *)
let n_timeout = count Search_timeout
let n_skipped = count Skipped_search
let n_crashed = count Search_crashed

(* ------------------------------------------------------------------ *)

let analyze_conflict ?(options = default_options) ?(skip_search = false)
    ?(deadline = Deadline.never) session conflict =
  let clock = Session.clock session in
  let trace = Session.trace session in
  let lalr = Session.lalr session in
  let started = Clock.now clock in
  (* Static conflict classification (the lint engine's pattern match) rides
     along with every report: computed once at session construction, it costs
     no search time and lets batch users triage conflicts without reading
     each counterexample. *)
  let classification = Session.classification session conflict in
  (* The per-conflict deadline is the cumulative one clamped to the
     per-conflict timeout, so a single slow conflict cannot overshoot the
     batch budget. *)
  let per_conflict, budget_exhausted =
    Deadline.clamp deadline ~clock ~seconds:options.per_conflict_timeout
  in
  let finish report =
    let elapsed = Clock.now clock -. started in
    Deadline.consume deadline elapsed;
    { report with elapsed }
  in
  let fallback outcome configs =
    let counterexample =
      Trace.timed trace clock "nonunifying" (fun () ->
          match Nonunifying.construct lalr conflict with
          | Some nu -> Some (Nonunifying nu)
          | None -> None)
    in
    finish
      { conflict; classification; counterexample; outcome; elapsed = 0.0;
        configs_explored = configs; failure = None;
        validation = Not_validated }
  in
  if skip_search || budget_exhausted then fallback Skipped_search 0
  else
    let path =
      Trace.timed trace clock "path_search" (fun () ->
          Lookahead_path.find ~deadline:per_conflict ~trace lalr
            ~conflict_state:conflict.Conflict.state
            ~reduce_item:(Conflict.reduce_item conflict)
            ~terminal:conflict.Conflict.terminal)
    in
    match path with
    | None -> fallback Search_timeout 0
    | Some path -> (
      let path_states = Lookahead_path.states_on_path path in
      match
        Trace.timed trace clock "product_search" (fun () ->
            Product_search.search ~costs:options.costs
              ~extended:options.extended ~deadline:per_conflict ~trace
              ~max_configs:options.max_configs lalr ~conflict ~path_states)
      with
      | Product_search.Unifying (u, stats) ->
        finish
          { conflict;
            classification;
            counterexample = Some (Unifying u);
            outcome = Found_unifying;
            elapsed = 0.0;
            configs_explored = stats.Product_search.configs_explored;
            failure = None;
            validation = Not_validated }
      | Product_search.Timeout stats ->
        fallback Search_timeout stats.Product_search.configs_explored
      | Product_search.Exhausted stats ->
        fallback No_unifying_exists stats.Product_search.configs_explored)

(* A structured stand-in for a conflict whose search crashed: the worker
   pool converts the exception into this report instead of aborting the
   whole batch and losing every completed result. *)
let crashed_conflict_report session conflict exn backtrace =
  { conflict;
    classification = Session.classification session conflict;
    counterexample = None;
    outcome = Search_crashed;
    elapsed = 0.0;
    configs_explored = 0;
    failure =
      Some
        (if backtrace = "" then Printexc.to_string exn
         else Printexc.to_string exn ^ "\n" ^ backtrace);
    validation = Not_validated }

let analyze_session ?(options = default_options) session =
  let clock = Session.clock session in
  let started = Clock.now clock in
  let deadline = Deadline.budget clock options.cumulative_timeout in
  let conflict_reports =
    List.map
      (analyze_conflict ~options ~deadline session)
      (Session.conflicts session)
  in
  { table = Session.table session;
    conflict_reports;
    total_elapsed = Clock.now clock -. started;
    metrics = Session.metrics session }

let analyze ?options g = analyze_session ?options (Session.create g)
