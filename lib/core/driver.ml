
open Automaton
module Session = Cex_session.Session
module Clock = Cex_session.Clock
module Deadline = Cex_session.Deadline
module Trace = Cex_session.Trace
module Pool = Cex_session.Pool

type options = {
  per_conflict_timeout : float;
  cumulative_timeout : float;
  extended : bool;
  costs : Product_search.costs;
  max_configs : int;
}

let default_options =
  { per_conflict_timeout = 5.0;
    cumulative_timeout = 120.0;
    extended = false;
    costs = Product_search.default_costs;
    max_configs = 400_000 }

type outcome =
  | Found_unifying
  | No_unifying_exists
  | Search_timeout
  | Skipped_search
  | Search_crashed

type counterexample =
  | Unifying of Product_search.unifying
  | Nonunifying of Nonunifying.t

type validation =
  | Not_validated
  | Validated
  | Validation_failed of string list

type conflict_report = {
  conflict : Conflict.t;
  classification : string;
  counterexample : counterexample option;
  outcome : outcome;
  elapsed : float;
  configs_explored : int;
  failure : string option;
  validation : validation;
}

type report = {
  table : Parse_table.t;
  conflict_reports : conflict_report list;
  total_elapsed : float;
  metrics : Trace.metrics;
}

let grammar r = Parse_table.grammar r.table

let count outcome r =
  List.length (List.filter (fun cr -> cr.outcome = outcome) r.conflict_reports)

let n_unifying = count Found_unifying
let n_nonunifying = count No_unifying_exists

(* Skipped searches (budget exhausted before the conflict was even
   attempted) used to be folded into this count, inflating the "timed out"
   summary; they are now reported separately by {!n_skipped}. *)
let n_timeout = count Search_timeout
let n_skipped = count Skipped_search
let n_crashed = count Search_crashed

(* ------------------------------------------------------------------ *)
(* Session-owned shared search structures. Both are lazily installed in the
   session's universal store on first use and immutable-after-force (the
   path memo table grows, but each installed path is final), so every
   conflict of a session — analyzed sequentially or across domains — shares
   them. *)

type path_memo = {
  memo_lock : Mutex.t;
  (* (conflict state, reduce item id, conflict terminal) -> shortest path.
     Shift/reduce conflicts are recorded once per shift item, so a state
     with several shift items on the same terminal shares one entry. *)
  memo_tbl : (int * int * int, Lookahead_path.t) Hashtbl.t;
}

let path_memo_key : path_memo Session.Store.key = Session.Store.key ()

let shared_ctx_key : Product_search.shared Session.Store.key =
  Session.Store.key ()

let path_memo session =
  Session.shared session path_memo_key (fun () ->
      { memo_lock = Mutex.create (); memo_tbl = Hashtbl.create 16 })

let shared_ctx session =
  Session.shared session shared_ctx_key (fun () ->
      Product_search.shared_of_lalr (Session.lalr session))

(* The shortest lookahead-sensitive path for a conflict, through the session
   memo. On a miss the search runs with a buffered local collector; only the
   domain whose result is installed (first writer wins) flushes the span and
   counters into [trace], so metric totals are identical at any jobs count —
   exactly one emission per distinct key, whichever domain computed it.
   Failed searches ([None]: deadline expiry) are never memoized, so a later
   attempt under a fresh budget can still succeed. *)
let find_path ~per_conflict session trace conflict =
  let clock = Session.clock session in
  let lalr = Session.lalr session in
  let lr0 = Session.lr0 session in
  let state = conflict.Conflict.state in
  let terminal = conflict.Conflict.terminal in
  let reduce_item = Conflict.reduce_item conflict in
  let reduce_id = Lr0.item_id lr0 reduce_item in
  let key = (state, reduce_id, terminal) in
  let memo = path_memo session in
  let lookup () =
    Mutex.lock memo.memo_lock;
    let r = Hashtbl.find_opt memo.memo_tbl key in
    Mutex.unlock memo.memo_lock;
    r
  in
  match lookup () with
  | Some path -> Some path
  | None ->
    let local = Trace.collector () in
    let t0 = Clock.now clock in
    let w0 = Gc.minor_words () in
    let relevant =
      Session.backward_reach session ~state ~item_id:reduce_id
    in
    let path =
      Lookahead_path.find ~deadline:per_conflict
        ~trace:(Trace.collector_sink local) ~relevant lalr
        ~conflict_state:state ~reduce_item ~terminal
    in
    let words = int_of_float (Gc.minor_words () -. w0) in
    let seconds = Clock.now clock -. t0 in
    let emit () =
      Trace.span trace "path_search" seconds;
      Trace.count trace "path_search" "alloc_words" words;
      Trace.replay_counters trace (Trace.metrics local)
    in
    (match path with
    | None ->
      emit ();
      None
    | Some p ->
      Mutex.lock memo.memo_lock;
      let installed =
        match Hashtbl.find_opt memo.memo_tbl key with
        | Some existing -> existing
        | None ->
          Hashtbl.add memo.memo_tbl key p;
          p
      in
      Mutex.unlock memo.memo_lock;
      if installed == p then emit ();
      Some installed)

let analyze_conflict ?(options = default_options) ?(skip_search = false)
    ?(deadline = Deadline.never) ?trace session conflict =
  let clock = Session.clock session in
  let trace =
    match trace with Some sink -> sink | None -> Session.trace session
  in
  let lalr = Session.lalr session in
  let started = Clock.now clock in
  (* Static conflict classification (the lint engine's pattern match) rides
     along with every report: computed once at session construction, it costs
     no search time and lets batch users triage conflicts without reading
     each counterexample. *)
  let classification = Session.classification session conflict in
  (* The per-conflict deadline is the cumulative one clamped to the
     per-conflict timeout, so a single slow conflict cannot overshoot the
     batch budget. *)
  let per_conflict, budget_exhausted =
    Deadline.clamp deadline ~clock ~seconds:options.per_conflict_timeout
  in
  let finish report =
    let elapsed = Clock.now clock -. started in
    Deadline.consume deadline elapsed;
    { report with elapsed }
  in
  let fallback outcome configs =
    let counterexample =
      Trace.timed trace clock "nonunifying" (fun () ->
          match Nonunifying.construct lalr conflict with
          | Some nu -> Some (Nonunifying nu)
          | None -> None)
    in
    finish
      { conflict; classification; counterexample; outcome; elapsed = 0.0;
        configs_explored = configs; failure = None;
        validation = Not_validated }
  in
  if skip_search || budget_exhausted then fallback Skipped_search 0
  else
    let path = find_path ~per_conflict session trace conflict in
    match path with
    | None -> fallback Search_timeout 0
    | Some path -> (
      let path_states = Lookahead_path.states_on_path path in
      let shared = shared_ctx session in
      match
        Trace.timed_alloc trace clock "product_search" (fun () ->
            Product_search.search ~costs:options.costs
              ~extended:options.extended ~deadline:per_conflict ~trace
              ~max_configs:options.max_configs ~shared lalr ~conflict
              ~path_states)
      with
      | Product_search.Unifying (u, stats) ->
        finish
          { conflict;
            classification;
            counterexample = Some (Unifying u);
            outcome = Found_unifying;
            elapsed = 0.0;
            configs_explored = stats.Product_search.configs_explored;
            failure = None;
            validation = Not_validated }
      | Product_search.Timeout stats ->
        fallback Search_timeout stats.Product_search.configs_explored
      | Product_search.Exhausted stats ->
        fallback No_unifying_exists stats.Product_search.configs_explored)

(* A structured stand-in for a conflict whose search crashed: the worker
   pool converts the exception into this report instead of aborting the
   whole batch and losing every completed result. *)
let crashed_conflict_report session conflict exn backtrace =
  { conflict;
    classification = Session.classification session conflict;
    counterexample = None;
    outcome = Search_crashed;
    elapsed = 0.0;
    configs_explored = 0;
    failure =
      Some
        (if backtrace = "" then Printexc.to_string exn
         else Printexc.to_string exn ^ "\n" ^ backtrace);
    validation = Not_validated }

let analyze_session ?(options = default_options) ?(jobs = 1) session =
  let clock = Session.clock session in
  let started = Clock.now clock in
  let deadline = Deadline.budget clock options.cumulative_timeout in
  let conflicts = Array.of_list (Session.conflicts session) in
  let n = Array.length conflicts in
  (* Clamp like the pool will, so the per-task collector buffering below
     is only paid when domains will actually run concurrently. *)
  let jobs = Pool.clamp_jobs (min jobs (max 1 n)) in
  (* One conflict per task, results collected by conflict index, so the
     report order is the automaton order regardless of which domain ran
     what. A crash in one task degrades to a [Search_crashed] report instead
     of poisoning the whole session. *)
  let task trace i =
    let conflict = conflicts.(i) in
    try analyze_conflict ~options ~deadline ?trace session conflict
    with e ->
      crashed_conflict_report session conflict e (Printexc.get_backtrace ())
  in
  let conflict_reports =
    if jobs > 1 && Session.has_private_collector session then begin
      (* Per-task collectors, merged in conflict order after the join: the
         worker domains never contend on the session collector's lock, and
         the merged totals are independent of domain scheduling. *)
      let locals = Array.map (fun _ -> Trace.collector ()) conflicts in
      let results =
        Pool.run ~jobs n (fun i ->
            task (Some (Trace.collector_sink locals.(i))) i)
      in
      Array.iter
        (fun local -> Session.absorb_metrics session (Trace.metrics local))
        locals;
      results
    end
    else Pool.run ~jobs n (task None)
  in
  { table = Session.table session;
    conflict_reports = Array.to_list conflict_reports;
    total_elapsed = Clock.now clock -. started;
    metrics = Session.metrics session }

let analyze ?options ?jobs g = analyze_session ?options ?jobs (Session.create g)
