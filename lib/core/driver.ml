
open Automaton
module Session = Cex_session.Session
module Clock = Cex_session.Clock
module Deadline = Cex_session.Deadline
module Trace = Cex_session.Trace
module Pool = Cex_session.Pool

type engine = Product | Srwalk | Race

let engine_of_string = function
  | "product" -> Some Product
  | "srwalk" -> Some Srwalk
  | "race" -> Some Race
  | _ -> None

let engine_to_string = function
  | Product -> "product"
  | Srwalk -> "srwalk"
  | Race -> "race"

type options = {
  per_conflict_timeout : float;
  cumulative_timeout : float;
  extended : bool;
  costs : Product_search.costs;
  max_configs : int;
  engine : engine;
}

let default_options =
  { per_conflict_timeout = 5.0;
    cumulative_timeout = 120.0;
    extended = false;
    costs = Product_search.default_costs;
    max_configs = 400_000;
    engine = Product }

(* The walk takes the same cost knobs under its own vocabulary, so the CLI's
   cost options steer both engines identically. *)
let walk_costs (c : Product_search.costs) : Cex_srwalk.Walk.costs =
  { Cex_srwalk.Walk.step = c.Product_search.transition;
    rstep = c.Product_search.reverse_transition;
    expand = c.Product_search.production_step;
    re_expand = c.Product_search.duplicate_production;
    reduce = c.Product_search.reduction;
    detour = c.Product_search.off_path }

type outcome =
  | Found_unifying
  | No_unifying_exists
  | Search_timeout
  | Skipped_search
  | Search_crashed

type counterexample =
  | Unifying of Product_search.unifying
  | Nonunifying of Nonunifying.t

type validation =
  | Not_validated
  | Validated
  | Validation_failed of string list

type conflict_report = {
  conflict : Conflict.t;
  classification : string;
  counterexample : counterexample option;
  outcome : outcome;
  elapsed : float;
  configs_explored : int;
  failure : string option;
  validation : validation;
  engine : string;  (* "product" or "srwalk"; in race mode, the winner *)
}

type report = {
  table : Parse_table.t;
  conflict_reports : conflict_report list;
  total_elapsed : float;
  metrics : Trace.metrics;
}

let grammar r = Parse_table.grammar r.table

let count outcome r =
  List.length (List.filter (fun cr -> cr.outcome = outcome) r.conflict_reports)

let n_unifying = count Found_unifying
let n_nonunifying = count No_unifying_exists

(* Skipped searches (budget exhausted before the conflict was even
   attempted) used to be folded into this count, inflating the "timed out"
   summary; they are now reported separately by {!n_skipped}. *)
let n_timeout = count Search_timeout
let n_skipped = count Skipped_search
let n_crashed = count Search_crashed

(* ------------------------------------------------------------------ *)
(* Session-owned shared search structures. Both are lazily installed in the
   session's universal store on first use and immutable-after-force (the
   path memo table grows, but each installed path is final), so every
   conflict of a session — analyzed sequentially or across domains — shares
   them. *)

type path_memo = {
  memo_lock : Mutex.t;
  (* (conflict state, reduce item id, conflict terminal) -> shortest path.
     Shift/reduce conflicts are recorded once per shift item, so a state
     with several shift items on the same terminal shares one entry. *)
  memo_tbl : (int * int * int, Lookahead_path.t) Hashtbl.t;
}

let path_memo_key : path_memo Session.Store.key = Session.Store.key ()

let shared_ctx_key : Product_search.shared Session.Store.key =
  Session.Store.key ()

let path_memo session =
  Session.shared session path_memo_key (fun () ->
      { memo_lock = Mutex.create (); memo_tbl = Hashtbl.create 16 })

let shared_ctx session =
  Session.shared session shared_ctx_key (fun () ->
      Product_search.shared_of_lalr (Session.lalr session))

(* The shortest lookahead-sensitive path for a conflict, through the session
   memo. On a miss the search runs with a buffered local collector; only the
   domain whose result is installed (first writer wins) flushes the span and
   counters into [trace], so metric totals are identical at any jobs count —
   exactly one emission per distinct key, whichever domain computed it.
   Failed searches ([None]: deadline expiry) are never memoized, so a later
   attempt under a fresh budget can still succeed. *)
let find_path ~per_conflict session trace conflict =
  let clock = Session.clock session in
  let lalr = Session.lalr session in
  let lr0 = Session.lr0 session in
  let state = conflict.Conflict.state in
  let terminal = conflict.Conflict.terminal in
  let reduce_item = Conflict.reduce_item conflict in
  let reduce_id = Lr0.item_id lr0 reduce_item in
  let key = (state, reduce_id, terminal) in
  let memo = path_memo session in
  let lookup () =
    Mutex.lock memo.memo_lock;
    let r = Hashtbl.find_opt memo.memo_tbl key in
    Mutex.unlock memo.memo_lock;
    r
  in
  match lookup () with
  | Some path -> Some path
  | None ->
    let local = Trace.collector () in
    let t0 = Clock.now clock in
    let w0 = Gc.minor_words () in
    let relevant =
      Session.backward_reach session ~state ~item_id:reduce_id
    in
    let path =
      Lookahead_path.find ~deadline:per_conflict
        ~trace:(Trace.collector_sink local) ~relevant lalr
        ~conflict_state:state ~reduce_item ~terminal
    in
    let words = int_of_float (Gc.minor_words () -. w0) in
    let seconds = Clock.now clock -. t0 in
    let emit () =
      Trace.span trace "path_search" seconds;
      Trace.count trace "path_search" "alloc_words" words;
      Trace.replay_counters trace (Trace.metrics local)
    in
    (match path with
    | None ->
      emit ();
      None
    | Some p ->
      Mutex.lock memo.memo_lock;
      let installed =
        match Hashtbl.find_opt memo.memo_tbl key with
        | Some existing -> existing
        | None ->
          Hashtbl.add memo.memo_tbl key p;
          p
      in
      Mutex.unlock memo.memo_lock;
      if installed == p then emit ();
      Some installed)

(* One engine's analysis of one conflict. Engine-specific spans and counters
   go through a prefixed sink (["product."] / ["srwalk."], satellite of the
   bench JSON: per-engine medians must not collide); the shared ["path_search"]
   memo stage stays unprefixed — both engines reuse the same installed
   paths. *)
let analyze_conflict_with ?(options = default_options) ?(skip_search = false)
    ?(deadline = Deadline.never) ?trace session conflict
    (which : [ `Product | `Srwalk ]) =
  let clock = Session.clock session in
  let trace =
    match trace with Some sink -> sink | None -> Session.trace session
  in
  let engine_name =
    match which with `Product -> "product" | `Srwalk -> "srwalk"
  in
  let etrace = Trace.prefixed (engine_name ^ ".") trace in
  let lalr = Session.lalr session in
  let started = Clock.now clock in
  (* Static conflict classification (the lint engine's pattern match) rides
     along with every report: computed once at session construction, it costs
     no search time and lets batch users triage conflicts without reading
     each counterexample. *)
  let classification = Session.classification session conflict in
  (* The per-conflict deadline is the cumulative one clamped to the
     per-conflict timeout, so a single slow conflict cannot overshoot the
     batch budget. *)
  let per_conflict, budget_exhausted =
    Deadline.clamp deadline ~clock ~seconds:options.per_conflict_timeout
  in
  let finish report =
    let elapsed = Clock.now clock -. started in
    Deadline.consume deadline elapsed;
    { report with elapsed }
  in
  let fallback outcome configs =
    let counterexample =
      Trace.timed etrace clock "nonunifying" (fun () ->
          match Nonunifying.construct lalr conflict with
          | Some nu -> Some (Nonunifying nu)
          | None -> None)
    in
    finish
      { conflict; classification; counterexample; outcome; elapsed = 0.0;
        configs_explored = configs; failure = None;
        validation = Not_validated; engine = engine_name }
  in
  let found u configs =
    finish
      { conflict;
        classification;
        counterexample = Some (Unifying u);
        outcome = Found_unifying;
        elapsed = 0.0;
        configs_explored = configs;
        failure = None;
        validation = Not_validated;
        engine = engine_name }
  in
  if skip_search || budget_exhausted then fallback Skipped_search 0
  else
    let path = find_path ~per_conflict session trace conflict in
    match path with
    | None -> fallback Search_timeout 0
    | Some path -> (
      let path_states = Lookahead_path.states_on_path path in
      match which with
      | `Product -> (
        let shared = shared_ctx session in
        match
          Trace.timed_alloc etrace clock "search" (fun () ->
              Product_search.search ~costs:options.costs
                ~extended:options.extended ~deadline:per_conflict
                ~trace:etrace ~max_configs:options.max_configs ~shared lalr
                ~conflict ~path_states)
        with
        | Product_search.Unifying (u, stats) ->
          found u stats.Product_search.configs_explored
        | Product_search.Timeout stats ->
          fallback Search_timeout stats.Product_search.configs_explored
        | Product_search.Exhausted stats ->
          fallback No_unifying_exists stats.Product_search.configs_explored)
      | `Srwalk -> (
        let sr = Cex_srwalk.Sr_automaton.of_session session in
        match
          Trace.timed_alloc etrace clock "search" (fun () ->
              Cex_srwalk.Walk.search ~costs:(walk_costs options.costs)
                ~extended:options.extended ~deadline:per_conflict
                ~trace:etrace ~max_nodes:options.max_configs sr ~conflict
                ~path_states)
        with
        | Cex_srwalk.Walk.Ambiguous (a, stats) ->
          (* Translate the walk's witness into the product search's
             counterexample type: field-for-field the same shape, so the
             oracle and every report layer validate it unchanged. *)
          found
            { Product_search.nonterminal = a.Cex_srwalk.Walk.nonterminal;
              form = a.Cex_srwalk.Walk.sentential_form;
              deriv1 = a.Cex_srwalk.Walk.deriv1;
              deriv2 = a.Cex_srwalk.Walk.deriv2 }
            stats.Cex_srwalk.Walk.nodes_explored
        | Cex_srwalk.Walk.Timeout stats ->
          fallback Search_timeout stats.Cex_srwalk.Walk.nodes_explored
        | Cex_srwalk.Walk.Exhausted stats ->
          fallback No_unifying_exists stats.Cex_srwalk.Walk.nodes_explored))

(* ------------------------------------------------------------------ *)
(* Race adjudication. Both engines analyzed the conflict under the shared
   budget; pick one report deterministically — never by wall-clock arrival,
   which would break the byte-identical-at-any-jobs invariant:

   - a decided report (unifying found / exhaustion proven) whose
     counterexample passes the in-driver structural check beats an
     undecided one;
   - both decided and agreeing: the cheaper engine (fewer explored
     configurations) wins, ties to product;
   - both decided but disagreeing — one engine's bug, by construction —
     the validated witness beats the exhaustion claim, and the ["race"]
     stage's [disagreed] counter records the event for the fuzzer and CI.

   The full Earley oracle still runs downstream ([lib/validate]); the
   structural check here is the driver-local subset (well-formed
   derivations, same root, same frontier) that needs no oracle
   dependency. *)

let structurally_valid g (u : Product_search.unifying) =
  let root_ok d =
    match Cfg.Derivation.root_symbol d with
    | Cfg.Symbol.Nonterminal nt -> nt = u.Product_search.nonterminal
    | Cfg.Symbol.Terminal _ -> false
  in
  Cfg.Derivation.validate g u.Product_search.deriv1
  && Cfg.Derivation.validate g u.Product_search.deriv2
  && root_ok u.Product_search.deriv1
  && root_ok u.Product_search.deriv2
  && (not
        (Cfg.Derivation.equal u.Product_search.deriv1 u.Product_search.deriv2))
  && List.equal Cfg.Symbol.equal
       (Cfg.Derivation.leaves u.Product_search.deriv1)
       (Cfg.Derivation.leaves u.Product_search.deriv2)

let report_structurally_valid g r =
  match r.counterexample with
  | Some (Unifying u) -> structurally_valid g u
  | Some (Nonunifying _) | None -> true

let decided r =
  match r.outcome with
  | Found_unifying | No_unifying_exists -> true
  | Search_timeout | Skipped_search | Search_crashed -> false

let adjudicate trace g rp rs =
  let win r =
    Trace.count trace "race" ("winner_" ^ r.engine) 1;
    r
  in
  if decided rp && decided rs then
    Trace.count trace "race"
      (if rp.outcome = rs.outcome then "agreed" else "disagreed")
      1;
  let dp = decided rp && report_structurally_valid g rp in
  let ds = decided rs && report_structurally_valid g rs in
  if dp && ds then
    if rp.outcome = rs.outcome then
      match rp.outcome with
      | Found_unifying when rs.configs_explored < rp.configs_explored ->
        win rs
      | _ -> win rp
    else if rp.outcome = Found_unifying then win rp
    else win rs
  else if dp then win rp
  else if ds then win rs
  else win rp

let analyze_conflict ?(options = default_options) ?skip_search ?deadline
    ?trace session conflict =
  match options.engine with
  | Product ->
    analyze_conflict_with ~options ?skip_search ?deadline ?trace session
      conflict `Product
  | Srwalk ->
    analyze_conflict_with ~options ?skip_search ?deadline ?trace session
      conflict `Srwalk
  | Race ->
    let rp =
      analyze_conflict_with ~options ?skip_search ?deadline ?trace session
        conflict `Product
    in
    let rs =
      analyze_conflict_with ~options ?skip_search ?deadline ?trace session
        conflict `Srwalk
    in
    let sink =
      match trace with Some s -> s | None -> Session.trace session
    in
    adjudicate sink (Session.grammar session) rp rs

(* A structured stand-in for a conflict whose search crashed: the worker
   pool converts the exception into this report instead of aborting the
   whole batch and losing every completed result. *)
let crashed_conflict_report ?(engine = "product") session conflict exn
    backtrace =
  { conflict;
    classification = Session.classification session conflict;
    counterexample = None;
    outcome = Search_crashed;
    elapsed = 0.0;
    configs_explored = 0;
    failure =
      Some
        (if backtrace = "" then Printexc.to_string exn
         else Printexc.to_string exn ^ "\n" ^ backtrace);
    validation = Not_validated;
    engine }

let analyze_session ?(options = default_options) ?(jobs = 1) session =
  let clock = Session.clock session in
  let started = Clock.now clock in
  let deadline = Deadline.budget clock options.cumulative_timeout in
  let conflicts = Array.of_list (Session.conflicts session) in
  let n = Array.length conflicts in
  (* In race mode every conflict becomes two tasks — one per engine — on
     the same pool under the same cumulative budget; the winners are
     adjudicated deterministically in conflict order after the join. *)
  let n_tasks = match options.engine with Race -> 2 * n | _ -> n in
  (* Clamp like the pool will, so the per-task collector buffering below
     is only paid when domains will actually run concurrently. *)
  let jobs = Pool.clamp_jobs (min jobs (max 1 n_tasks)) in
  (* One conflict (or conflict x engine) per task, results collected by
     task index, so the report order is the automaton order regardless of
     which domain ran what. A crash in one task degrades to a
     [Search_crashed] report instead of poisoning the whole session. *)
  let task trace k =
    let conflict, which =
      match options.engine with
      | Race -> conflicts.(k lsr 1), (if k land 1 = 0 then `Product else `Srwalk)
      | Product -> conflicts.(k), `Product
      | Srwalk -> conflicts.(k), `Srwalk
    in
    try analyze_conflict_with ~options ~deadline ?trace session conflict which
    with e ->
      crashed_conflict_report
        ~engine:(match which with `Product -> "product" | `Srwalk -> "srwalk")
        session conflict e (Printexc.get_backtrace ())
  in
  let results =
    if jobs > 1 && Session.has_private_collector session then begin
      (* Per-task collectors, merged in task order after the join: the
         worker domains never contend on the session collector's lock, and
         the merged totals are independent of domain scheduling. *)
      let locals = Array.init n_tasks (fun _ -> Trace.collector ()) in
      let results =
        Pool.run ~jobs n_tasks (fun k ->
            task (Some (Trace.collector_sink locals.(k))) k)
      in
      Array.iter
        (fun local -> Session.absorb_metrics session (Trace.metrics local))
        locals;
      results
    end
    else Pool.run ~jobs n_tasks (task None)
  in
  let conflict_reports =
    match options.engine with
    | Product | Srwalk -> Array.to_list results
    | Race ->
      let sink = Session.trace session in
      let g = Session.grammar session in
      List.init n (fun i ->
          adjudicate sink g results.(2 * i) results.((2 * i) + 1))
  in
  { table = Session.table session;
    conflict_reports;
    total_elapsed = Clock.now clock -. started;
    metrics = Session.metrics session }

let analyze ?options ?jobs g = analyze_session ?options ?jobs (Session.create g)
