
open Automaton

type options = {
  per_conflict_timeout : float;
  cumulative_timeout : float;
  extended : bool;
  costs : Product_search.costs;
  max_configs : int;
}

let default_options =
  { per_conflict_timeout = 5.0;
    cumulative_timeout = 120.0;
    extended = false;
    costs = Product_search.default_costs;
    max_configs = 400_000 }

type outcome =
  | Found_unifying
  | No_unifying_exists
  | Search_timeout
  | Skipped_search

type counterexample =
  | Unifying of Product_search.unifying
  | Nonunifying of Nonunifying.t

type conflict_report = {
  conflict : Conflict.t;
  classification : string;
  counterexample : counterexample option;
  outcome : outcome;
  elapsed : float;
  configs_explored : int;
}

type report = {
  table : Parse_table.t;
  conflict_reports : conflict_report list;
  total_elapsed : float;
}

let grammar r = Parse_table.grammar r.table

let count outcome r =
  List.length (List.filter (fun cr -> cr.outcome = outcome) r.conflict_reports)

let n_unifying = count Found_unifying
let n_nonunifying = count No_unifying_exists
let n_timeout r = count Search_timeout r + count Skipped_search r

(* ------------------------------------------------------------------ *)

let analyze_conflict ?(options = default_options) ?(skip_search = false) lalr
    conflict =
  let started = Unix.gettimeofday () in
  (* Static conflict classification (the lint engine's pattern match) rides
     along with every report: it costs no search time and lets batch users
     triage conflicts without reading each counterexample. *)
  let classification = Cex_lint.Lint.classification lalr conflict in
  let path =
    Lookahead_path.find lalr ~conflict_state:conflict.Conflict.state
      ~reduce_item:(Conflict.reduce_item conflict)
      ~terminal:conflict.Conflict.terminal
  in
  let fallback outcome configs =
    let counterexample =
      match Nonunifying.construct lalr conflict with
      | Some nu -> Some (Nonunifying nu)
      | None -> None
    in
    { conflict; classification; counterexample; outcome;
      elapsed = Unix.gettimeofday () -. started;
      configs_explored = configs }
  in
  match path with
  | None -> fallback Search_timeout 0
  | Some path when skip_search -> (
    ignore path;
    fallback Skipped_search 0)
  | Some path -> (
    let path_states = Lookahead_path.states_on_path path in
    match
      Product_search.search ~costs:options.costs ~extended:options.extended
        ~time_limit:options.per_conflict_timeout
        ~max_configs:options.max_configs lalr ~conflict ~path_states
    with
    | Product_search.Unifying (u, stats) ->
      { conflict;
        classification;
        counterexample = Some (Unifying u);
        outcome = Found_unifying;
        elapsed = Unix.gettimeofday () -. started;
        configs_explored = stats.Product_search.configs_explored }
    | Product_search.Timeout stats ->
      fallback Search_timeout stats.Product_search.configs_explored
    | Product_search.Exhausted stats ->
      fallback No_unifying_exists stats.Product_search.configs_explored)

let clamp_to_budget options ~remaining =
  if remaining <= 0.0 then (options, true)
  else
    ( { options with
        per_conflict_timeout = Float.min options.per_conflict_timeout remaining },
      false )

let analyze_table ?(options = default_options) table =
  let started = Unix.gettimeofday () in
  let lalr = Parse_table.lalr table in
  let conflict_reports =
    List.map
      (fun conflict ->
        let remaining =
          options.cumulative_timeout -. (Unix.gettimeofday () -. started)
        in
        let options, skip_search = clamp_to_budget options ~remaining in
        analyze_conflict ~options ~skip_search lalr conflict)
      (Parse_table.conflicts table)
  in
  { table; conflict_reports;
    total_elapsed = Unix.gettimeofday () -. started }

let analyze ?options g = analyze_table ?options (Parse_table.build g)
