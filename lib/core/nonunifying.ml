open Cfg
open Automaton

type t = {
  conflict : Conflict.t;
  path : Lookahead_path.t;
  prefix : Symbol.t list;
  reduce_continuation : Symbol.t list;
  other_continuation : Symbol.t list;
  deriv1 : Derivation.t option;
  deriv2 : Derivation.t option;
}

(* ------------------------------------------------------------------ *)
(* Frame stacks. Walking a lookahead-sensitive path, a production step opens
   a frame (an item whose dot sits on the nonterminal being expanded);
   transitions advance the innermost frame. The suffix of symbols still to be
   parsed after the conflict point is the concatenation, innermost first, of
   each open frame's right-hand side beyond the dot. *)

let continuation_of_frames g frames =
  (* [frames] lists open context frames, innermost first; skip the symbol at
     the dot itself (it is the nonterminal being expanded). *)
  List.concat_map
    (fun (item : Item.t) ->
      let rhs = (Item.production g item).Grammar.rhs in
      Array.to_list (Array.sub rhs (item.Item.dot + 1)
                       (Array.length rhs - item.Item.dot - 1)))
    frames

(* Open frames of the shortest lookahead-sensitive path, innermost first,
   excluding the innermost frame itself (the conflict reduce item, whose dot
   is at the end). *)
let reduce_side_frames path =
  let rec walk stack nodes steps =
    match nodes, steps with
    | _, [] -> stack
    | _node :: nodes', step :: steps' ->
      let stack =
        match step with
        | Lookahead_path.Transition _ -> (
          match stack with
          | top :: rest -> Item.advance top :: rest
          | [] -> assert false)
        | Lookahead_path.Production p -> Item.make p 0 :: stack
      in
      walk stack nodes' steps'
    | [], _ :: _ -> assert false
  in
  match path.Lookahead_path.nodes with
  | first :: rest -> (
    match walk [ first.Lookahead_path.item ] rest path.Lookahead_path.steps with
    | _conflict_item :: outer -> outer
    | [] -> assert false)
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Expanding a continuation so that it starts with the conflict terminal
   (paper section 4: "the conflict terminal must immediately follow the
   dot"). Minimizes total expansion cost using the analysis witnesses. *)

let expand_to_start_with analysis terminal continuation =
  let rec go = function
    | [] -> if terminal = 0 then Some (0, []) else None
    | Symbol.Terminal t :: rest ->
      if t = terminal then Some (0, Symbol.Terminal t :: rest) else None
    | Symbol.Nonterminal nt :: rest ->
      let via_front =
        match Analysis.front_cost analysis nt terminal with
        | None -> None
        | Some cost -> (
          match Analysis.expand_front analysis nt terminal with
          | Some form -> Some (cost, form @ rest)
          | None -> None)
      in
      let via_null =
        match Analysis.null_cost analysis nt with
        | None -> None
        | Some cost -> (
          match go rest with
          | Some (cost', form) -> Some (cost + cost', form)
          | None -> None)
      in
      (match via_front, via_null with
      | None, o | o, None -> o
      | Some (c1, _), Some (c2, _) ->
        if c1 <= c2 then via_front else via_null)
  in
  match go continuation with
  | Some (_, form) -> Some form
  | None -> None

(* Like {!expand_to_start_with}, but over (frame_index, symbol) pairs and
   producing one derivation per symbol (epsilon nodes for vanished
   nonterminals, front-expansion trees for the one providing the conflict
   terminal, leaves beyond it), so that per-frame children can be rebuilt. *)
let expand_tagged analysis terminal tagged =
  let leaves rest =
    List.map (fun (j, sym) -> (j, Derivation.leaf sym)) rest
  in
  let rec go = function
    | [] -> if terminal = 0 then Some (0, []) else None
    | (i, (Symbol.Terminal t as sym)) :: rest ->
      if t = terminal then Some (0, (i, Derivation.leaf sym) :: leaves rest)
      else None
    | (i, Symbol.Nonterminal nt) :: rest ->
      let via_front =
        match Analysis.front_cost analysis nt terminal with
        | None -> None
        | Some cost -> (
          match Analysis.front_derivation analysis nt terminal with
          | Some d -> Some (cost, (i, d) :: leaves rest)
          | None -> None)
      in
      let via_null =
        match Analysis.null_cost analysis nt with
        | None -> None
        | Some cost -> (
          match go rest with
          | Some (cost', derivs) ->
            Some (cost + cost', (i, Analysis.epsilon_derivation analysis nt) :: derivs)
          | None -> None)
      in
      (match via_front, via_null with
      | None, o | o, None -> o
      | Some (c1, _), Some (c2, _) -> if c1 <= c2 then via_front else via_null)
  in
  Option.map snd (go tagged)

(* Assemble the full derivation tree for one side: the conflict node at the
   centre, wrapped by the open frames (innermost first), whose pre-dot
   symbols are unexpanded leaves and whose post-dot symbols carry the
   expansion derivations computed by {!expand_tagged}. *)
let assemble_derivation g analysis ~terminal ~frames ~conflict_node =
  let tagged =
    List.concat
      (List.mapi
         (fun k (item : Item.t) ->
           let rhs = (Item.production g item).Grammar.rhs in
           List.init
             (Array.length rhs - item.Item.dot - 1)
             (fun j -> (k, rhs.(item.Item.dot + 1 + j))))
         frames)
  in
  let expansion =
    match expand_tagged analysis terminal tagged with
    | Some derivs -> derivs
    | None ->
      (* Fallback (see the unconstrained backward walk): plain leaves. *)
      List.map (fun (k, sym) -> (k, Derivation.leaf sym)) tagged
  in
  let tree = ref conflict_node in
  List.iteri
    (fun k (item : Item.t) ->
      let prod = Item.production g item in
      let before =
        List.init item.Item.dot (fun j -> Derivation.leaf prod.Grammar.rhs.(j))
      in
      let after = List.filter_map
          (fun (k', d) -> if k' = k then Some d else None)
          expansion
      in
      tree := Derivation.node g prod.Grammar.index (before @ (!tree :: after)))
    frames;
  !tree

(* ------------------------------------------------------------------ *)
(* Backward walk for the other conflict item (paper, Fig. 5(b)): find a
   derivation of the other item that follows the same transition skeleton as
   the shortest lookahead-sensitive path, by searching backwards with reverse
   transitions and reverse production steps. Returns the open frames,
   innermost first (excluding the conflict item itself). *)

let skeleton path =
  (* States at transition boundaries, plus the transition symbols. *)
  let rec go states nodes steps =
    match nodes, steps with
    | node :: _, [] -> List.rev (node.Lookahead_path.state :: states)
    | node :: nodes', step :: steps' -> (
      match step with
      | Lookahead_path.Transition _ ->
        go (node.Lookahead_path.state :: states) nodes' steps'
      | Lookahead_path.Production _ -> go states nodes' steps')
    | [], _ -> assert false
  in
  go [] path.Lookahead_path.nodes path.Lookahead_path.steps

(* The backward walk tracks, per search state, whether the frames collected
   so far can already produce the conflict terminal immediately after the
   conflict point ([satisfied]). A context frame whose suffix can neither
   begin with the conflict terminal nor vanish is pruned — without this, a
   reduce/reduce conflict's second item could be given a derivation context
   that the conflict terminal can never follow. *)
let other_side_frames ?(require_terminal = true) lalr path ~conflict_state
    ~other_item ~terminal =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let analysis = Lalr.analysis lalr in
  let states = Array.of_list (skeleton path) in
  let m = Array.length states - 1 in
  assert (states.(m) = conflict_state);
  (* For shift items the terminal comes from the item's own remainder, so
     the continuation is unconstrained; encode that as already satisfied. *)
  let init_satisfied =
    match Item.next_symbol g other_item with
    | Some (Symbol.Terminal t) -> t = terminal
    | Some (Symbol.Nonterminal _) -> false
    | None -> false
  in
  let suffix_class (item : Item.t) =
    (* Can the suffix after the dot nonterminal begin with the conflict
       terminal / is it nullable? Served by the per-(production, dot) FIRST
       memo table. *)
    let set, nullable =
      Analysis.first_of_prod analysis
        ~prod:(Item.production g item).Grammar.index
        ~from:(item.Item.dot + 1)
    in
    (Bitset.mem set terminal, nullable)
  in
  let parents : (int * Item.t * bool, (int * Item.t * bool) option) Hashtbl.t =
    Hashtbl.create 64
  in
  let queue = Queue.create () in
  let visit key parent =
    if not (Hashtbl.mem parents key) then begin
      Hashtbl.add parents key parent;
      Queue.add key queue
    end
  in
  visit (m, other_item, init_satisfied) None;
  let is_goal (pos, item, satisfied) =
    pos = 0 && Item.equal item Item.start
    && (satisfied || terminal = 0 || not require_terminal)
  in
  let goal = ref None in
  while Option.is_none !goal && not (Queue.is_empty queue) do
    let ((pos, item, satisfied) as key) = Queue.pop queue in
    if is_goal key then goal := Some key
    else if item.Item.dot > 0 then begin
      if pos > 0 then begin
        let prev = Item.retreat item in
        if Lr0.has_item (Lr0.state lr0 states.(pos - 1)) prev then
          visit (pos - 1, prev, satisfied) (Some key)
      end
    end
    else begin
      let lhs = (Item.production g item).Grammar.lhs in
      List.iter
        (fun ctx ->
          let starts, nullable = suffix_class ctx in
          let satisfied' = satisfied || starts in
          (* Prune contexts behind which the conflict terminal can never
             appear at the conflict point. *)
          if satisfied || starts || nullable || not require_terminal then
            visit (pos, ctx, satisfied') (Some key))
        (Lr0.items_with_next lr0 states.(pos) (Symbol.Nonterminal lhs))
    end
  done;
  match !goal with
  | None -> None
  | Some goal ->
    (* Follow parents from the goal back to the other item: this enumerates
       the forward chain from START to the conflict item. Open frames are the
       context items of the production steps (edges that kept the position
       and increased the dot of the context). *)
    let rec collect key frames =
      match Hashtbl.find parents key with
      | None -> frames
      | Some next ->
        let _, item, _ = key in
        let _, next_item, _ = next in
        let frames =
          (* Edge key -> next in the backward search was a reverse production
             step iff positions match and [next] is the dot-0 item created by
             the step; forward, [key]'s item steps into [next]'s production. *)
          if next_item.Item.dot = 0 && (fun (p, _, _) -> p) key = (fun (p, _, _) -> p) next
          then item :: frames
          else frames
        in
        collect next frames
    in
    (* [collect] walks goal -> ... -> other_item following parent pointers
       (which point towards the other item); contexts encountered later are
       consed later, so the result is already innermost-first. *)
    Some (collect goal [])

(* ------------------------------------------------------------------ *)

let construct lalr (conflict : Conflict.t) =
  let g = Lalr.grammar lalr in
  let analysis = Lalr.analysis lalr in
  let reduce_item = Conflict.reduce_item conflict in
  match
    Lookahead_path.find lalr ~conflict_state:conflict.Conflict.state
      ~reduce_item ~terminal:conflict.Conflict.terminal
  with
  | None -> None
  | Some path ->
    let prefix = Lookahead_path.prefix_symbols path in
    let reduce_continuation =
      match
        expand_to_start_with analysis conflict.Conflict.terminal
          (continuation_of_frames g (reduce_side_frames path))
      with
      | Some form -> form
      | None ->
        (* The precise lookahead of the path's last vertex contains the
           conflict terminal, so an expansion must exist. *)
        assert false
    in
    let other_item = Conflict.other_item conflict in
    let frames_result =
      match
        other_side_frames lalr path ~conflict_state:conflict.Conflict.state
          ~other_item ~terminal:conflict.Conflict.terminal
      with
      | Some frames -> Some frames
      | None ->
        (* LALR merging can admit the conflict terminal only through contexts
           off this skeleton; fall back to an unconstrained walk so that a
           (weaker) counterexample is still reported. *)
        other_side_frames ~require_terminal:false lalr path
          ~conflict_state:conflict.Conflict.state ~other_item
          ~terminal:conflict.Conflict.terminal
    in
    let other_continuation =
      match frames_result with
      | None -> None
      | Some frames -> (
        let outer = continuation_of_frames g frames in
        match conflict.Conflict.kind with
        | Conflict.Shift_reduce _ ->
          (* After the dot: the conflict terminal, the rest of the shift
             item's right-hand side, then the outer frames' suffixes. *)
          let rhs = (Item.production g other_item).Grammar.rhs in
          let after_dot =
            Array.to_list
              (Array.sub rhs other_item.Item.dot
                 (Array.length rhs - other_item.Item.dot))
          in
          Some (after_dot @ outer)
        | Conflict.Reduce_reduce _ -> (
          match
            expand_to_start_with analysis conflict.Conflict.terminal outer
          with
          | Some form -> Some form
          | None ->
            (* Fallback walk: show the raw continuation even though the
               conflict terminal cannot head it along this skeleton. *)
            Some outer))
    in
    match other_continuation with
    | None -> None
    | Some other_continuation ->
      (* Derivation trees for both sides. *)
      let reduce_frames = reduce_side_frames path in
      let reduce_item_prod = Item.production g reduce_item in
      let conflict_node1 =
        Derivation.node ~dot:(Array.length reduce_item_prod.Grammar.rhs) g
          reduce_item_prod.Grammar.index
          (Array.to_list (Array.map Derivation.leaf reduce_item_prod.Grammar.rhs))
      in
      let deriv1 =
        Some
          (assemble_derivation g analysis ~terminal:conflict.Conflict.terminal
             ~frames:reduce_frames ~conflict_node:conflict_node1)
      in
      let deriv2 =
        match frames_result with
        | None -> None
        | Some frames ->
          let other_prod = Item.production g other_item in
          let conflict_node2 =
            Derivation.node ~dot:other_item.Item.dot g
              other_prod.Grammar.index
              (Array.to_list (Array.map Derivation.leaf other_prod.Grammar.rhs))
          in
          let terminal2 =
            (* For a shift item the conflict terminal comes from the item's
               own remainder; the frames' suffixes are unconstrained, which
               expand_tagged encodes as terminal 0 with a nullable... they are
               emitted as plain leaves via the fallback below when not
               expandable. For reduce/reduce, the expansion applies. *)
            if Conflict.is_shift_reduce conflict then None
            else Some conflict.Conflict.terminal
          in
          (match terminal2 with
          | Some t ->
            Some
              (assemble_derivation g analysis ~terminal:t ~frames
                 ~conflict_node:conflict_node2)
          | None ->
            (* Shift side: frames' suffixes stay as leaves. *)
            let tree = ref conflict_node2 in
            List.iter
              (fun (item : Item.t) ->
                let prod = Item.production g item in
                let before =
                  List.init item.Item.dot (fun j ->
                      Derivation.leaf prod.Grammar.rhs.(j))
                in
                let after =
                  List.init
                    (Array.length prod.Grammar.rhs - item.Item.dot - 1)
                    (fun j ->
                      Derivation.leaf prod.Grammar.rhs.(item.Item.dot + 1 + j))
                in
                tree :=
                  Derivation.node g prod.Grammar.index
                    (before @ (!tree :: after)))
              frames;
            Some !tree)
      in
      Some
        { conflict; path; prefix; reduce_continuation; other_continuation;
          deriv1; deriv2 }

(* Unwrap the START wrapper for display. *)
let display_derivation d =
  match d with
  | Derivation.Node { prod = 0; children = [ child ]; _ } -> child
  | Derivation.Node _ | Derivation.Leaf _ -> d

let pp g ppf t =
  let dot = Derivation.dot_marker in
  let form ppf symbols =
    if symbols = [] then Fmt.string ppf "(end of input)"
    else Grammar.pp_symbols g ppf symbols
  in
  Fmt.pf ppf "@[<v>Example (using reduction):@,  %a %s %a@,"
    (Grammar.pp_symbols g) t.prefix dot form t.reduce_continuation;
  (match t.deriv1 with
  | Some d ->
    Fmt.pf ppf "Derivation:@,  %a@," (Derivation.pp g) (display_derivation d)
  | None -> ());
  Fmt.pf ppf "Example (using %s):@,  %a %s %a"
    (if Conflict.is_shift_reduce t.conflict then "shift" else "second reduction")
    (Grammar.pp_symbols g) t.prefix dot form t.other_continuation;
  (match t.deriv2 with
  | Some d ->
    Fmt.pf ppf "@,Derivation:@,  %a" (Derivation.pp g) (display_derivation d)
  | None -> ());
  Fmt.pf ppf "@]" 
