open Cfg
open Automaton

type node = {
  state : int;
  item : Item.t;
  lookahead : Bitset.t;
}

type step =
  | Transition of Symbol.t
  | Production of int

type t = {
  nodes : node list;  (** visited vertices, start first *)
  steps : step list;  (** length [List.length nodes - 1] *)
}

let prefix_symbols path =
  List.filter_map
    (function
      | Transition sym -> Some sym
      | Production _ -> None)
    path.steps

let states_on_path path =
  List.sort_uniq Int.compare (List.map (fun n -> n.state) path.nodes)

let pp g ppf path =
  let rec go nodes steps =
    match nodes, steps with
    | [], _ -> ()
    | node :: nodes', steps ->
      Fmt.pf ppf "(%d, %a, %a)@." node.state (Item.pp g) node.item
        (Bitset.pp ~name:(Grammar.terminal_name g))
        node.lookahead;
      (match steps with
      | [] -> ()
      | step :: steps' ->
        (match step with
        | Transition sym -> Fmt.pf ppf "  --%s-->@." (Grammar.symbol_name g sym)
        | Production p ->
          Fmt.pf ppf "  --[prod %a]-->@." (Grammar.pp_production g)
            (Grammar.production g p));
        go nodes' steps')
  in
  go path.nodes path.steps

(* ------------------------------------------------------------------ *)

(* Backward reachability over (state, item) pairs, ignoring lookaheads: which
   vertices can reach the conflict item at all? This is the paper's section-6
   optimization: the forward Dijkstra then never expands vertices that cannot
   reach the target.

   Vertices are the packed integers [state * n_item_ids + item_id] over the
   automaton's interned item ids, so the visited set is a flat bitmap and the
   worklist a queue of ints — no structural hashing anywhere. *)
let backward_reachable_ids lalr ~conflict_state ~target_item =
  let lr0 = Lalr.lr0 lalr in
  let n_ids = Lr0.n_item_ids lr0 in
  let reach =
    Bytes.make ((Lr0.n_states lr0 * n_ids + 7) lsr 3) '\000'
  in
  let mem key =
    Char.code (Bytes.unsafe_get reach (key lsr 3)) land (1 lsl (key land 7))
    <> 0
  in
  let set key =
    Bytes.unsafe_set reach (key lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get reach (key lsr 3))
         lor (1 lsl (key land 7))))
  in
  let queue = Queue.create () in
  let visit state id =
    let key = (state * n_ids) + id in
    if not (mem key) then begin
      set key;
      Queue.add key queue
    end
  in
  visit conflict_state (Lr0.item_id lr0 target_item);
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    let state = key / n_ids and id = key mod n_ids in
    let item = Lr0.item_of_id lr0 id in
    (* Reverse transition: the dot moved over the accessing symbol. An
       advanced item's id is its predecessor's plus one, so retreating is a
       decrement. *)
    if item.Item.dot > 0 then
      List.iter
        (fun pred -> if Lr0.has_item_id lr0 pred (id - 1) then visit pred (id - 1))
        (Lr0.predecessors lr0 state)
    else begin
      (* Reverse production step: any item of the same state with this item's
         left-hand side after the dot. *)
      let lhs = Lr0.lhs_of_id lr0 id in
      List.iter
        (fun (ctx : Item.t) -> visit state (Lr0.item_id lr0 ctx))
        (Lr0.items_with_next lr0 state (Symbol.Nonterminal lhs))
    end
  done;
  fun state id -> mem ((state * n_ids) + id)

type search_entry = {
  state : int;
  id : int;  (* interned item id *)
  lookahead : Bitset.t;
  parent : (search_entry * step) option;
}

(* Shortest lookahead-sensitive path (paper section 4) from the start item
   with precise lookahead {$} to the conflict reduce item with the conflict
   terminal in its precise lookahead set. Transitions cost [transition_cost],
   production steps [production_cost].

   The visited set is a flat array over packed (state, item id) keys holding
   the lookahead sets already expanded for that pair — an int-indexed
   replacement for the old polymorphic-hash vertex table. *)
let find ?(transition_cost = 1) ?(production_cost = 0)
    ?(deadline = Cex_session.Deadline.never) ?(trace = Cex_session.Trace.null)
    lalr ~conflict_state ~reduce_item ~terminal =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let analysis = Lalr.analysis lalr in
  let n_ids = Lr0.n_item_ids lr0 in
  let relevant =
    backward_reachable_ids lalr ~conflict_state ~target_item:reduce_item
  in
  let visited : Bitset.t list array =
    Array.make (Lr0.n_states lr0 * n_ids) []
  in
  let target_id = Lr0.item_id lr0 reduce_item in
  let start =
    { state = Lr0.start_state;
      id = Lr0.item_id lr0 Item.start;
      lookahead = Bitset.singleton 0;
      parent = None }
  in
  let queue = ref (Pqueue.add Pqueue.empty 0 start) in
  let result = ref None in
  let pops = ref 0 in
  let relaxations = ref 0 in
  let timed_out = ref (Cex_session.Deadline.expired deadline) in
  let push cost entry =
    incr relaxations;
    queue := Pqueue.add !queue cost entry
  in
  while
    Option.is_none !result && (not !timed_out)
    && not (Pqueue.is_empty !queue)
  do
    if
      !pops land Cex_session.Deadline.poll_mask = 0 && !pops > 0
      && Cex_session.Deadline.expired deadline
    then timed_out := true
    else
    match Pqueue.pop !queue with
    | None -> assert false
    | Some (cost, entry, rest) ->
      queue := rest;
      incr pops;
      let { state; id; lookahead; _ } = entry in
      let key = (state * n_ids) + id in
      if
        not (List.exists (fun la -> Bitset.equal la lookahead) visited.(key))
      then begin
        visited.(key) <- lookahead :: visited.(key);
        if state = conflict_state && id = target_id
           && Bitset.mem lookahead terminal
        then result := Some entry
        else begin
          (* Transition edge. *)
          (match Lr0.next_symbol_of_id lr0 id with
          | None -> ()
          | Some sym -> (
            match Lr0.transition lr0 state sym with
            | None -> ()
            | Some state' ->
              if relevant state' (id + 1) then
                push (cost + transition_cost)
                  { state = state'; id = id + 1; lookahead;
                    parent = Some (entry, Transition sym) }));
          (* Production step edges. *)
          match Lr0.next_symbol_of_id lr0 id with
          | Some (Symbol.Nonterminal nt) ->
            let item = Lr0.item_of_id lr0 id in
            let follow =
              Analysis.follow_l analysis (Item.production g item)
                ~dot:item.Item.dot lookahead
            in
            List.iter
              (fun p ->
                let id' = Lr0.item_id lr0 (Item.make p 0) in
                if relevant state id' then
                  push (cost + production_cost)
                    { state; id = id'; lookahead = follow;
                      parent = Some (entry, Production p) })
              (Grammar.productions_of g nt)
          | Some (Symbol.Terminal _) | None -> ()
        end
      end
  done;
  Cex_session.Trace.count trace "path_search" "relaxations" !relaxations;
  Cex_session.Trace.count trace "path_search" "pops" !pops;
  match !result with
  | None -> None
  | Some entry ->
    let rec unwind entry nodes steps =
      let node =
        { state = entry.state;
          item = Lr0.item_of_id lr0 entry.id;
          lookahead = entry.lookahead }
      in
      match entry.parent with
      | None -> node :: nodes, steps
      | Some (parent, step) -> unwind parent (node :: nodes) (step :: steps)
    in
    let nodes, steps = unwind entry [] [] in
    Some { nodes; steps }
