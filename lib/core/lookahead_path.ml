open Cfg
open Automaton

type node = {
  state : int;
  item : Item.t;
  lookahead : Bitset.t;
}

type step =
  | Transition of Symbol.t
  | Production of int

type t = {
  nodes : node list;  (** visited vertices, start first *)
  steps : step list;  (** length [List.length nodes - 1] *)
}

let prefix_symbols path =
  List.filter_map
    (function
      | Transition sym -> Some sym
      | Production _ -> None)
    path.steps

let states_on_path path =
  List.sort_uniq Int.compare (List.map (fun n -> n.state) path.nodes)

let pp g ppf path =
  let rec go nodes steps =
    match nodes, steps with
    | [], _ -> ()
    | node :: nodes', steps ->
      Fmt.pf ppf "(%d, %a, %a)@." node.state (Item.pp g) node.item
        (Bitset.pp ~name:(Grammar.terminal_name g))
        node.lookahead;
      (match steps with
      | [] -> ()
      | step :: steps' ->
        (match step with
        | Transition sym -> Fmt.pf ppf "  --%s-->@." (Grammar.symbol_name g sym)
        | Production p ->
          Fmt.pf ppf "  --[prod %a]-->@." (Grammar.pp_production g)
            (Grammar.production g p));
        go nodes' steps')
  in
  go path.nodes path.steps

(* ------------------------------------------------------------------ *)

(* Backward reachability (the paper's section-6 pruning: the forward
   Dijkstra never expands vertices that cannot reach the target) now lives
   in [Lr0.backward_reach], where the bitmap depends only on the automaton;
   the driver memoizes it per session via [Session.backward_reach] and
   passes it in as [?relevant]. Standalone callers fall back to computing
   it here per call. *)
let backward_reachable_ids lalr ~conflict_state ~target_item =
  let lr0 = Lalr.lr0 lalr in
  let reach =
    Lr0.backward_reach lr0 ~state:conflict_state
      ~item_id:(Lr0.item_id lr0 target_item)
  in
  fun state id -> Lr0.reach_mem lr0 reach state id

type search_entry = {
  state : int;
  id : int;  (* interned item id *)
  lookahead : Bitset.t;
  parent : (search_entry * step) option;
}

(* Per-domain scratch pool. The visited array is sized by the automaton and
   zeroed between searches by replaying the touched keys (bounded by the
   pops of the previous search, not the array size); the bucket queue keeps
   its bucket capacity across searches. Take-out/put-back through the DLS
   slot: a search that raises abandons the scratch (slot left [None]), so a
   dirty structure is never reused. *)
type scratch = {
  mutable visited : Bitset.t list array;
  mutable touched : int list;
  queue : search_entry Bucket_queue.t;
}

let scratch_slot : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_scratch ~size =
  let slot = Domain.DLS.get scratch_slot in
  let s =
    match !slot with
    | Some s -> s
    | None -> { visited = [||]; touched = []; queue = Bucket_queue.create () }
  in
  slot := None;
  if Array.length s.visited <> size then begin
    s.visited <- Array.make size [];
    s.touched <- []
  end;
  s

let put_scratch s =
  List.iter (fun key -> s.visited.(key) <- []) s.touched;
  s.touched <- [];
  Bucket_queue.clear s.queue;
  Domain.DLS.get scratch_slot := Some s

(* Shortest lookahead-sensitive path (paper section 4) from the start item
   with precise lookahead {$} to the conflict reduce item with the conflict
   terminal in its precise lookahead set. Transitions cost [transition_cost],
   production steps [production_cost].

   The visited set is a flat array over packed (state, item id) keys holding
   the lookahead sets already expanded for that pair — an int-indexed
   replacement for the old polymorphic-hash vertex table. *)
let find ?(transition_cost = 1) ?(production_cost = 0)
    ?(deadline = Cex_session.Deadline.never) ?(trace = Cex_session.Trace.null)
    ?relevant lalr ~conflict_state ~reduce_item ~terminal =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let analysis = Lalr.analysis lalr in
  let n_ids = Lr0.n_item_ids lr0 in
  let relevant =
    match relevant with
    | Some f -> f
    | None ->
      backward_reachable_ids lalr ~conflict_state ~target_item:reduce_item
  in
  let scratch = take_scratch ~size:(Lr0.n_states lr0 * n_ids) in
  let visited = scratch.visited in
  let target_id = Lr0.item_id lr0 reduce_item in
  let start =
    { state = Lr0.start_state;
      id = Lr0.item_id lr0 Item.start;
      lookahead = Bitset.singleton 0;
      parent = None }
  in
  let queue = scratch.queue in
  Bucket_queue.add queue 0 start;
  let result = ref None in
  let pops = ref 0 in
  let relaxations = ref 0 in
  let timed_out = ref (Cex_session.Deadline.expired deadline) in
  let push cost entry =
    incr relaxations;
    Bucket_queue.add queue cost entry
  in
  while
    Option.is_none !result && (not !timed_out)
    && not (Bucket_queue.is_empty queue)
  do
    if
      !pops land Cex_session.Deadline.poll_mask = 0 && !pops > 0
      && Cex_session.Deadline.expired deadline
    then timed_out := true
    else
    match Bucket_queue.pop queue with
    | None -> assert false
    | Some (cost, entry) ->
      incr pops;
      let { state; id; lookahead; _ } = entry in
      let key = (state * n_ids) + id in
      let prev = visited.(key) in
      if not (List.exists (fun la -> Bitset.equal la lookahead) prev) then begin
        if prev == [] then scratch.touched <- key :: scratch.touched;
        visited.(key) <- lookahead :: prev;
        if state = conflict_state && id = target_id
           && Bitset.mem lookahead terminal
        then result := Some entry
        else begin
          (* Transition edge. *)
          (match Lr0.next_symbol_of_id lr0 id with
          | None -> ()
          | Some sym -> (
            match Lr0.transition lr0 state sym with
            | None -> ()
            | Some state' ->
              if relevant state' (id + 1) then
                push (cost + transition_cost)
                  { state = state'; id = id + 1; lookahead;
                    parent = Some (entry, Transition sym) }));
          (* Production step edges. *)
          match Lr0.next_symbol_of_id lr0 id with
          | Some (Symbol.Nonterminal nt) ->
            let item = Lr0.item_of_id lr0 id in
            let follow =
              Analysis.follow_l analysis (Item.production g item)
                ~dot:item.Item.dot lookahead
            in
            List.iter
              (fun p ->
                let id' = Lr0.item_id lr0 (Item.make p 0) in
                if relevant state id' then
                  push (cost + production_cost)
                    { state; id = id'; lookahead = follow;
                      parent = Some (entry, Production p) })
              (Grammar.productions_of g nt)
          | Some (Symbol.Terminal _) | None -> ()
        end
      end
  done;
  put_scratch scratch;
  Cex_session.Trace.count trace "path_search" "relaxations" !relaxations;
  Cex_session.Trace.count trace "path_search" "pops" !pops;
  match !result with
  | None -> None
  | Some entry ->
    let rec unwind entry nodes steps =
      let node =
        { state = entry.state;
          item = Lr0.item_of_id lr0 entry.id;
          lookahead = entry.lookahead }
      in
      match entry.parent with
      | None -> node :: nodes, steps
      | Some (parent, step) -> unwind parent (node :: nodes) (step :: steps)
    in
    let nodes, steps = unwind entry [] [] in
    Some { nodes; steps }
