open Cfg
open Automaton

(* CUP prefixes its conflict messages this way; we keep the format of the
   paper's Fig. 11. *)
let pp_conflict_header g ppf (c : Conflict.t) =
  match c.Conflict.kind with
  | Conflict.Shift_reduce { shift_item; reduce_item } ->
    Fmt.pf ppf
      "Warning : *** Shift/Reduce conflict found in state #%d@,\
       between reduction on %a@,\
       and shift on %a@,\
       under symbol %s"
      c.Conflict.state (Item.pp g) reduce_item (Item.pp g) shift_item
      (Grammar.terminal_name g c.Conflict.terminal)
  | Conflict.Reduce_reduce { reduce1; reduce2; terminals } ->
    Fmt.pf ppf
      "Warning : *** Reduce/Reduce conflict found in state #%d@,\
       between reduction on %a@,\
       and reduction on %a@,\
       under symbols %a"
      c.Conflict.state (Item.pp g) reduce1 (Item.pp g) reduce2
      (Bitset.pp ~name:(Grammar.terminal_name g))
      terminals

let other_action_label (c : Conflict.t) =
  if Conflict.is_shift_reduce c then "shift" else "second reduction"

let pp_unifying g ~label ppf (u : Product_search.unifying) =
  Fmt.pf ppf
    "Ambiguity detected for nonterminal %s@,\
     Example: %a@,\
     Derivation using reduction:@,\
    \  %a@,\
     Derivation using %s:@,\
    \  %a"
    (Grammar.nonterminal_name g u.Product_search.nonterminal)
    (Derivation.pp_frontier_with_dot g)
    u.Product_search.deriv1 (Derivation.pp g) u.Product_search.deriv1 label
    (Derivation.pp g) u.Product_search.deriv2

let pp_counterexample g ~label ppf = function
  | Driver.Unifying u -> pp_unifying g ~label ppf u
  | Driver.Nonunifying nu ->
    Fmt.pf ppf "No unifying counterexample found within limits@,%a"
      (Nonunifying.pp g) nu

let pp_conflict_report g ppf (cr : Driver.conflict_report) =
  Fmt.pf ppf "@[<v>%a@," (pp_conflict_header g) cr.Driver.conflict;
  (match cr.Driver.counterexample with
  | Some c ->
    pp_counterexample g ~label:(other_action_label cr.Driver.conflict) ppf c
  | None -> Fmt.string ppf "No counterexample could be constructed");
  (match cr.Driver.failure with
  | Some failure -> Fmt.pf ppf "@,Search crashed: %s" failure
  | None -> ());
  (match cr.Driver.validation with
  | Driver.Not_validated -> ()
  | Driver.Validated -> Fmt.pf ppf "@,Validation: ok"
  | Driver.Validation_failed checks ->
    Fmt.pf ppf "@,Validation: FAILED (%a)"
      (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
      checks);
  Fmt.pf ppf "@]"

let pp_report ppf (r : Driver.report) =
  let g = Driver.grammar r in
  let n = List.length r.Driver.conflict_reports in
  if n = 0 then Fmt.pf ppf "No conflicts: the grammar is LALR(1).@."
  else begin
    Fmt.pf ppf "%d conflict%s found.@.@." n (if n = 1 then "" else "s");
    List.iter
      (fun cr -> Fmt.pf ppf "%a@.@." (pp_conflict_report g) cr)
      r.Driver.conflict_reports;
    Fmt.pf ppf
      "Summary: %d unifying, %d provably-nonunifying, %d timed out, %d \
       skipped%s; %.3fs total.@."
      (Driver.n_unifying r) (Driver.n_nonunifying r) (Driver.n_timeout r)
      (Driver.n_skipped r)
      (let crashed = Driver.n_crashed r in
       if crashed = 0 then "" else Fmt.str ", %d crashed" crashed)
      r.Driver.total_elapsed;
    let validated, invalid =
      List.fold_left
        (fun (ok, bad) cr ->
          match cr.Driver.validation with
          | Driver.Validated -> (ok + 1, bad)
          | Driver.Validation_failed _ -> (ok, bad + 1)
          | Driver.Not_validated -> (ok, bad))
        (0, 0) r.Driver.conflict_reports
    in
    if validated + invalid > 0 then
      Fmt.pf ppf "Validation: %d of %d counterexamples valid%s.@." validated
        (validated + invalid)
        (if invalid = 0 then "" else Fmt.str ", %d INVALID" invalid)
  end

let to_string r = Fmt.str "%a" pp_report r
