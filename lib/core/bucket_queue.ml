(* The mutable counterpart of [Pqueue]: same Dial-style monotone bucket
   queue, same pop order (least priority first, FIFO within a priority), but
   buckets live in a flat array of stdlib [Queue]s instead of a persistent
   map. The searches pop every entry they push, so persistence buys nothing
   there, while the map's rebalancing and the banker's-queue reversals were
   the largest remaining allocation churn in the search loops.

   The array is indexed directly by priority. Both searches use small
   non-negative integer costs with a non-decreasing minimum, so [min_prio]
   only ever moves forward between pops and [pop] amortizes to O(1). The
   structure is reusable: [clear] empties every bucket in place while keeping
   their capacity, which the per-domain scratch pools rely on. *)

type 'a t = {
  mutable buckets : 'a Queue.t array;
  mutable min_prio : int;  (* no nonempty bucket below this index *)
  mutable size : int;
}

let create () = { buckets = [||]; min_prio = 0; size = 0 }

let is_empty q = q.size = 0
let size q = q.size

let grow q priority =
  let n = Array.length q.buckets in
  let n' = max 16 (max (priority + 1) (2 * n)) in
  let bigger = Array.init n' (fun i -> if i < n then q.buckets.(i) else Queue.create ()) in
  q.buckets <- bigger

let add q priority value =
  if priority < 0 then invalid_arg "Bucket_queue.add: negative priority";
  if priority >= Array.length q.buckets then grow q priority;
  Queue.push value q.buckets.(priority);
  if q.size = 0 || priority < q.min_prio then q.min_prio <- priority;
  q.size <- q.size + 1

let pop q =
  if q.size = 0 then None
  else begin
    while Queue.is_empty q.buckets.(q.min_prio) do
      q.min_prio <- q.min_prio + 1
    done;
    let value = Queue.pop q.buckets.(q.min_prio) in
    q.size <- q.size - 1;
    Some (q.min_prio, value)
  end

let clear q =
  if q.size > 0 then
    Array.iter Queue.clear q.buckets;
  q.min_prio <- 0;
  q.size <- 0
