open Cfg

(* Deterministic differential fuzzer: random small grammars are pushed
   through the full pipeline (session -> driver -> oracle) and the verdicts
   are cross-checked against the exhaustive baselines. Everything is driven
   by [Random.State.make [| seed |]] and by configuration budgets, never by
   wall-clock reads, so a seed reproduces bit-identically. *)

type engines = Product_only | Both

type config = {
  max_terminals : int;
  max_nonterminals : int;
  max_alts : int;  (** alternatives per nonterminal *)
  max_rhs : int;  (** symbols per alternative *)
  max_configs : int;  (** product-search budget (replaces wall-clock) *)
  baseline_bound : int;  (** sentence-length bound for the baselines *)
  baseline_max_forms : int;
  shrink_attempts : int;
  engines : engines;  (** [Both] cross-checks product against srwalk *)
}

let default_config =
  { max_terminals = 4;
    max_nonterminals = 4;
    max_alts = 3;
    max_rhs = 4;
    max_configs = 20_000;
    baseline_bound = 8;
    baseline_max_forms = 200_000;
    shrink_attempts = 200;
    engines = Both }

(* ------------------------------------------------------------------ *)
(* Grammar generation *)

let terminal_names = [| "a"; "b"; "c"; "d"; "e"; "f" |]

let nonterminal_name i = Printf.sprintf "N%d" i

let gen_spec config rng =
  let n_terminals = 2 + Random.State.int rng (config.max_terminals - 1) in
  let n_nonterminals = 2 + Random.State.int rng (config.max_nonterminals - 1) in
  let gen_terminal () = terminal_names.(Random.State.int rng n_terminals) in
  let gen_symbol () =
    (* bias toward terminals so most grammars have finite languages *)
    if Random.State.int rng 10 < 6 then gen_terminal ()
    else nonterminal_name (Random.State.int rng n_nonterminals)
  in
  let gen_alt ~terminals_only =
    let len = Random.State.int rng (config.max_rhs + 1) in
    Spec_ast.alt
      (List.init len (fun _ ->
           if terminals_only then gen_terminal () else gen_symbol ()))
  in
  let gen_rule i =
    let n_alts = 1 + Random.State.int rng config.max_alts in
    (* the first alternative is all-terminal, so every nonterminal is
       productive by construction (the pipeline assumes productivity) *)
    Spec_ast.rule (nonterminal_name i)
      (List.init n_alts (fun a -> gen_alt ~terminals_only:(a = 0)))
  in
  Spec_ast.make ~start:(nonterminal_name 0)
    (List.init n_nonterminals gen_rule)

(* Render a spec back to the textual format, for reproduction reports. *)
let render_spec (spec : Spec_ast.t) =
  let buf = Buffer.create 256 in
  (match spec.Spec_ast.start with
  | Some s -> Buffer.add_string buf (Printf.sprintf "%%start %s\n" s)
  | None -> ());
  List.iter
    (fun (r : Spec_ast.rule) ->
      Buffer.add_string buf r.Spec_ast.lhs;
      List.iteri
        (fun i (a : Spec_ast.alt) ->
          Buffer.add_string buf (if i = 0 then " : " else " | ");
          Buffer.add_string buf
            (if a.Spec_ast.symbols = [] then "/* empty */"
             else String.concat " " a.Spec_ast.symbols))
        r.Spec_ast.alts;
      Buffer.add_string buf " ;\n")
    spec.Spec_ast.rules;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* One grammar through the pipeline, cross-checked. *)

type verdict = {
  conflicts : int;
  unifying : int;
  nonunifying : int;
  timeouts : int;
  problems : string list;  (** empty = the pipeline survived all checks *)
}

let driver_options config =
  { Cex.Driver.default_options with
    Cex.Driver.per_conflict_timeout = 3600.0;
    cumulative_timeout = 3600.0;
    max_configs = config.max_configs }

let outcome_string = function
  | Cex.Driver.Found_unifying -> "found_unifying"
  | Cex.Driver.No_unifying_exists -> "no_unifying_exists"
  | Cex.Driver.Search_timeout -> "search_timeout"
  | Cex.Driver.Skipped_search -> "skipped_search"
  | Cex.Driver.Search_crashed -> "search_crashed"

let check_grammar config grammar =
  let session = Cex_session.Session.create grammar in
  let report =
    Cex.Driver.analyze_session ~options:(driver_options config) session
  in
  let oracle = Oracle.of_session session in
  let report = Oracle.validate_report oracle report in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* 1. Every emitted counterexample must satisfy the oracle. *)
  List.iter
    (fun (cr : Cex.Driver.conflict_report) ->
      match cr.Cex.Driver.validation with
      | Cex.Driver.Validation_failed codes ->
        problem "oracle rejected state %d terminal %d: %s"
          cr.Cex.Driver.conflict.Automaton.Conflict.state
          cr.Cex.Driver.conflict.Automaton.Conflict.terminal
          (String.concat ", " codes)
      | Cex.Driver.Validated | Cex.Driver.Not_validated -> ())
    report.Cex.Driver.conflict_reports;
  let conflicts = List.length report.Cex.Driver.conflict_reports in
  (* 2. A conflict-free table means the grammar is LALR(1), hence
     unambiguous: the bounded checker must agree up to its bound. *)
  (if conflicts = 0 then
     let result =
       Baselines.Bounded_checker.check ~max_bound:config.baseline_bound
         ~time_limit:3600.0 grammar
     in
     match result.Baselines.Bounded_checker.ambiguous with
     | Some (nt, phrase) ->
       problem
         "grammar is LALR(1) yet the bounded checker derives %s ambiguously \
          from nonterminal %d"
         (String.concat " " (List.map string_of_int phrase))
         nt
     | None -> ());
  (* 3. A unifying counterexample claims real ambiguity from its
     nonterminal: brute force from that nonterminal must reproduce it
     within the sentential form's minimal expansion length. *)
  let analysis = Cex_session.Session.analysis session in
  List.iter
    (fun (cr : Cex.Driver.conflict_report) ->
      match cr.Cex.Driver.counterexample with
      | Some (Cex.Driver.Unifying u) -> (
        match
          Cfg.Analysis.min_length_of_form analysis u.Cex.Product_search.form
        with
        | None -> problem "unifying form contains an unproductive symbol"
        | Some min_len ->
          let result =
            Baselines.Brute_force.search ~max_length:min_len
              ~max_forms:config.baseline_max_forms ~time_limit:3600.0
              ~start_nonterminal:(Some u.Cex.Product_search.nonterminal)
              grammar
          in
          if result.Baselines.Brute_force.ambiguous = None
             && result.Baselines.Brute_force.exhausted then
            problem
              "brute force (length <= %d, exhausted) refutes the unifying \
               counterexample from nonterminal %d"
              min_len u.Cex.Product_search.nonterminal)
      | Some (Cex.Driver.Nonunifying _) | None -> ())
    report.Cex.Driver.conflict_reports;
  (* 4. Differential: the SR-automaton walk must reach the same verdict as
     the product search on every conflict, and its counterexamples must
     satisfy the oracle too. Budgets are config counts, so both runs are
     deterministic and the comparison is machine-independent. *)
  (if config.engines = Both && conflicts > 0 then
     let sr_options =
       { (driver_options config) with Cex.Driver.engine = Cex.Driver.Srwalk }
     in
     let sr_report =
       Cex.Driver.analyze_session ~options:sr_options session
     in
     let sr_report = Oracle.validate_report oracle sr_report in
     List.iter2
       (fun (p : Cex.Driver.conflict_report)
            (s : Cex.Driver.conflict_report) ->
         (match s.Cex.Driver.validation with
         | Cex.Driver.Validation_failed codes ->
           problem "oracle rejected srwalk state %d terminal %d: %s"
             s.Cex.Driver.conflict.Automaton.Conflict.state
             s.Cex.Driver.conflict.Automaton.Conflict.terminal
             (String.concat ", " codes)
         | Cex.Driver.Validated | Cex.Driver.Not_validated -> ());
         if p.Cex.Driver.outcome <> s.Cex.Driver.outcome then
           problem
             "engine divergence at state %d terminal %d: product %s vs \
              srwalk %s"
             p.Cex.Driver.conflict.Automaton.Conflict.state
             p.Cex.Driver.conflict.Automaton.Conflict.terminal
             (outcome_string p.Cex.Driver.outcome)
             (outcome_string s.Cex.Driver.outcome))
       report.Cex.Driver.conflict_reports sr_report.Cex.Driver.conflict_reports);
  { conflicts;
    unifying = Cex.Driver.n_unifying report;
    nonunifying = Cex.Driver.n_nonunifying report;
    timeouts = Cex.Driver.n_timeout report;
    problems = List.rev !problems }

let check_spec config spec =
  match Grammar.of_spec spec with
  | Error reason ->
    { conflicts = 0;
      unifying = 0;
      nonunifying = 0;
      timeouts = 0;
      problems = [ Printf.sprintf "generated spec failed to elaborate: %s" reason ] }
  | Ok grammar -> check_grammar config grammar

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily remove alternatives / truncate right-hand sides /
   drop whole rules while the failure persists. *)

let spec_size (spec : Spec_ast.t) =
  List.fold_left
    (fun acc (r : Spec_ast.rule) ->
      List.fold_left
        (fun acc (a : Spec_ast.alt) -> acc + 1 + List.length a.Spec_ast.symbols)
        acc r.Spec_ast.alts)
    0 spec.Spec_ast.rules

let remove_nth n xs = List.filteri (fun i _ -> i <> n) xs

(* All one-step simplifications of a spec, smallest-step first. *)
let shrink_candidates (spec : Spec_ast.t) =
  let with_rules rules = { spec with Spec_ast.rules } in
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  List.iteri
    (fun ri (r : Spec_ast.rule) ->
      (* drop a whole rule (never the start rule) *)
      if Some r.Spec_ast.lhs <> spec.Spec_ast.start then
        add (with_rules (remove_nth ri spec.Spec_ast.rules));
      List.iteri
        (fun ai (a : Spec_ast.alt) ->
          (* drop one alternative, keeping the rule nonempty *)
          if List.length r.Spec_ast.alts > 1 then
            add
              (with_rules
                 (List.mapi
                    (fun i rr ->
                      if i = ri then
                        { rr with
                          Spec_ast.alts = remove_nth ai rr.Spec_ast.alts }
                      else rr)
                    spec.Spec_ast.rules));
          (* drop one symbol of one alternative *)
          List.iteri
            (fun si _ ->
              add
                (with_rules
                   (List.mapi
                      (fun i rr ->
                        if i = ri then
                          { rr with
                            Spec_ast.alts =
                              List.mapi
                                (fun j aa ->
                                  if j = ai then
                                    Spec_ast.alt ?prec_tag:aa.Spec_ast.prec_tag
                                      (remove_nth si aa.Spec_ast.symbols)
                                  else aa)
                                rr.Spec_ast.alts }
                        else rr)
                      spec.Spec_ast.rules)))
            a.Spec_ast.symbols)
        r.Spec_ast.alts)
    spec.Spec_ast.rules;
  List.sort (fun a b -> compare (spec_size a) (spec_size b)) !candidates

let shrink config spec =
  let still_failing s = (check_spec config s).problems <> [] in
  let budget = ref config.shrink_attempts in
  let rec go spec =
    let rec try_candidates = function
      | [] -> spec
      | candidate :: rest ->
        if !budget <= 0 then spec
        else begin
          decr budget;
          if still_failing candidate then go candidate
          else try_candidates rest
        end
    in
    try_candidates (shrink_candidates spec)
  in
  go spec

(* ------------------------------------------------------------------ *)
(* Seed-level driver *)

type failure = {
  seed : int;
  source : string;  (** the shrunk failing grammar, spec format *)
  problems : string list;  (** problems of the shrunk grammar *)
}

type outcome = {
  seed : int;
  verdict : verdict;
  failure : failure option;
}

let run_seed ?(config = default_config) seed =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let spec = gen_spec config rng in
  let verdict = check_spec config spec in
  let failure =
    if verdict.problems = [] then None
    else begin
      let shrunk = shrink config spec in
      let shrunk_verdict = check_spec config shrunk in
      (* shrinking preserves failure, but report the original problems if a
         shrink-budget race ever loses them *)
      let problems =
        if shrunk_verdict.problems = [] then verdict.problems
        else shrunk_verdict.problems
      in
      Some { seed; source = render_spec shrunk; problems }
    end
  in
  { seed; verdict; failure }

type summary = {
  seeds : int;
  grammars_with_conflicts : int;
  total_conflicts : int;
  total_unifying : int;
  total_nonunifying : int;
  total_timeouts : int;
  failures : failure list;
}

let summarize outcomes =
  List.fold_left
    (fun acc o ->
      { seeds = acc.seeds + 1;
        grammars_with_conflicts =
          (acc.grammars_with_conflicts
          + if o.verdict.conflicts > 0 then 1 else 0);
        total_conflicts = acc.total_conflicts + o.verdict.conflicts;
        total_unifying = acc.total_unifying + o.verdict.unifying;
        total_nonunifying = acc.total_nonunifying + o.verdict.nonunifying;
        total_timeouts = acc.total_timeouts + o.verdict.timeouts;
        failures =
          (match o.failure with
          | Some f -> f :: acc.failures
          | None -> acc.failures) })
    { seeds = 0;
      grammars_with_conflicts = 0;
      total_conflicts = 0;
      total_unifying = 0;
      total_nonunifying = 0;
      total_timeouts = 0;
      failures = [] }
    outcomes

let run ?(config = default_config) seeds =
  summarize (List.map (run_seed ~config) seeds)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d seeds: %d grammars with conflicts, %d conflicts (%d unifying, \
     %d nonunifying, %d timeouts), %d failures@]"
    s.seeds s.grammars_with_conflicts s.total_conflicts s.total_unifying
    s.total_nonunifying s.total_timeouts
    (List.length s.failures)

let pp_failure ppf (f : failure) =
  Format.fprintf ppf "@[<v>seed %d:@,%s@,shrunk grammar:@,%s@]" f.seed
    (String.concat "; " f.problems)
    f.source
