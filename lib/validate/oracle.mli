(** Machine-checking oracle for emitted counterexamples.

    The search engine ({!Cex.Driver}) produces counterexamples; this module
    independently re-verifies them against the grammar, the LALR automaton
    and an Earley-style chart parser, so a bug anywhere in the construction
    pipeline surfaces as a {!Cex.Driver.Validation_failed} verdict instead
    of a silently wrong report.

    For a unifying counterexample the oracle checks that both derivation
    trees are valid w.r.t. the grammar ([deriv1-invalid], [deriv2-invalid]),
    that both are rooted at the unifying nonterminal ([root-mismatch]), that
    both have the claimed sentential form as frontier, dot marker excluded
    ([frontier-mismatch]), that the trees are structurally distinct
    ([derivations-identical]), and that the chart parser independently
    counts at least two derivations of the form from that nonterminal
    ([not-ambiguous]).

    For a nonunifying counterexample it replays the LALR automaton over the
    shared prefix and requires it to end in the conflict state
    ([prefix-unreplayable]), requires the conflict terminal to be the next
    symbol of the reduce continuation — or end-of-input for conflicts on the
    EOF lookahead ([conflict-terminal-not-next]) — and requires both
    sentential forms to be derivable from the start symbol
    ([reduce-form-not-derivable], [other-form-not-derivable]). When the
    report also carries full derivation trees they are validated and matched
    against the forms ([deriv{1,2}-invalid], [-root-mismatch],
    [-frontier-mismatch]).

    The bracketed names are the stable failure codes reported in
    {!Cex.Driver.Validation_failed}, the text report and the JSON
    ["validation"] object. *)

type t
(** An oracle for one grammar/parse-table pair. Construction builds the
    Earley chart parser once; individual checks reuse it. *)

val create : ?clock:Cex_session.Clock.t -> Automaton.Parse_table.t -> t
(** [clock] times the oracle's trace spans (defaults to
    {!Cex_session.Clock.system}). *)

val of_session : Cex_session.Session.t -> t
(** Oracle over the session's table, sharing the session's clock. *)

val metrics : t -> Cex_session.Trace.metrics
(** Everything recorded so far under the ["validate"] stage: one span per
    checked report plus ["unifying"]/["nonunifying"]/["failed"] counters. *)

val check_unifying : t -> Cex.Product_search.unifying -> string list
val check_nonunifying : t -> Cex.Nonunifying.t -> string list
(** Failure codes of the checks that did not hold; [[]] means valid. *)

val verdict : t -> Cex.Driver.counterexample -> Cex.Driver.validation
(** Never {!Cex.Driver.Not_validated}. *)

val validate_conflict_report :
  t -> Cex.Driver.conflict_report -> Cex.Driver.conflict_report
(** Fills the [validation] field. A report with no counterexample is
    [Validation_failed ["no-counterexample"]] — every non-crashed outcome
    promises at least a nonunifying counterexample — except
    {!Cex.Driver.Search_crashed} reports, which stay [Not_validated]. *)

val validate_report : t -> Cex.Driver.report -> Cex.Driver.report
(** {!validate_conflict_report} over every conflict, with the oracle's
    ["validate"] stage merged into the report's metrics. *)

val n_validated : Cex.Driver.report -> int
val n_invalid : Cex.Driver.report -> int
val invalid_reports : Cex.Driver.report -> Cex.Driver.conflict_report list
(** Verdict counts/selection over a (validated) report. *)
