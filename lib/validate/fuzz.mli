(** Deterministic random-grammar differential fuzzer.

    Each seed deterministically generates a small random grammar
    ([Random.State.make], never [Random.self_init]) and pushes it through
    the full pipeline — {!Cex_session.Session}, {!Cex.Driver}, the
    {!Oracle} — then cross-checks the verdicts:

    - every emitted counterexample must pass the oracle;
    - a conflict-free (hence LALR(1), hence unambiguous) grammar must be
      found unambiguous by {!Baselines.Bounded_checker} up to the length bound;
    - every unifying counterexample's ambiguity must be reproduced by
      {!Baselines.Brute_force} from the unifying nonterminal within the form's
      minimal expansion length;
    - with [engines = Both] (the default), every conflict is also analyzed
      by the SR-automaton walk ({!Cex_srwalk.Walk}); a differing verdict, or
      a srwalk counterexample the oracle rejects, is a failure.

    Search budgets are configuration counts, not wall-clock seconds, so a
    seed's outcome is machine-independent. Failing grammars are greedily
    shrunk before being reported. *)

type engines = Product_only | Both

type config = {
  max_terminals : int;
  max_nonterminals : int;
  max_alts : int;  (** alternatives per nonterminal *)
  max_rhs : int;  (** symbols per alternative *)
  max_configs : int;  (** product-search budget (replaces wall-clock) *)
  baseline_bound : int;  (** sentence-length bound for the baselines *)
  baseline_max_forms : int;
  shrink_attempts : int;
  engines : engines;  (** [Both] cross-checks product against srwalk *)
}

val default_config : config

val gen_spec : config -> Random.State.t -> Cfg.Spec_ast.t
(** Every nonterminal's first alternative is all-terminal, so generated
    grammars are productive by construction. *)

val render_spec : Cfg.Spec_ast.t -> string
(** Back to the {!Cfg.Spec_parser} textual format, for reproduction. *)

type verdict = {
  conflicts : int;
  unifying : int;
  nonunifying : int;
  timeouts : int;
  problems : string list;  (** empty = the pipeline survived all checks *)
}

val check_grammar : config -> Cfg.Grammar.t -> verdict
val check_spec : config -> Cfg.Spec_ast.t -> verdict

val shrink : config -> Cfg.Spec_ast.t -> Cfg.Spec_ast.t
(** Greedy fixpoint of rule/alternative/symbol removals that keep
    {!check_spec} failing, bounded by [shrink_attempts] re-checks. *)

type failure = {
  seed : int;
  source : string;  (** the shrunk failing grammar, spec format *)
  problems : string list;  (** problems of the shrunk grammar *)
}

type outcome = {
  seed : int;
  verdict : verdict;
  failure : failure option;
}

val run_seed : ?config:config -> int -> outcome

type summary = {
  seeds : int;
  grammars_with_conflicts : int;
  total_conflicts : int;
  total_unifying : int;
  total_nonunifying : int;
  total_timeouts : int;
  failures : failure list;
}

val summarize : outcome list -> summary
val run : ?config:config -> int list -> summary

val pp_summary : Format.formatter -> summary -> unit
val pp_failure : Format.formatter -> failure -> unit
