open Cfg
open Automaton
module Session = Cex_session.Session
module Clock = Cex_session.Clock
module Trace = Cex_session.Trace

type t = {
  table : Parse_table.t;
  grammar : Grammar.t;
  earley : Earley.t;
  clock : Clock.t;
  collector : Trace.collector;
  sink : Trace.sink;
  derives_memo : (Symbol.t * Symbol.t list, bool) Hashtbl.t;
      (** conflicts in one state share prefixes and continuations, so a
          batch-sized report replays the same sentential forms over and
          over; one chart per distinct form, not per conflict *)
  ambiguous_memo : (Symbol.t * Symbol.t list, bool) Hashtbl.t;
}

let create ?(clock = Clock.system) table =
  let collector = Trace.collector () in
  { table;
    grammar = Parse_table.grammar table;
    earley = Earley.make (Parse_table.grammar table);
    clock;
    collector;
    sink = Trace.collector_sink collector;
    derives_memo = Hashtbl.create 64;
    ambiguous_memo = Hashtbl.create 16 }

let memoized table f key =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.add table key v;
    v

let derives t ~start form =
  memoized t.derives_memo
    (fun () -> Earley.derives t.earley ~start form)
    (start, form)

let ambiguous_from t ~start form =
  memoized t.ambiguous_memo
    (fun () -> Earley.ambiguous_from t.earley ~start form)
    (start, form)

let of_session session =
  create ~clock:(Session.clock session) (Session.table session)

let metrics t = Trace.metrics t.collector

(* ------------------------------------------------------------------ *)
(* Check combinators: a check is a named predicate; the verdict is the list
   of names that failed, so a report can say precisely which soundness
   property a bad counterexample violates. *)

let run_checks checks =
  List.filter_map (fun (name, ok) -> if ok () then None else Some name) checks

let symbols_equal = List.equal Symbol.equal

(* ------------------------------------------------------------------ *)
(* Unifying counterexamples (paper section 5): two structurally distinct
   derivations of one sentential form from one nonterminal. *)

let check_unifying t (u : Cex.Product_search.unifying) =
  let g = t.grammar in
  let root = Symbol.Nonterminal u.Cex.Product_search.nonterminal in
  let d1 = u.Cex.Product_search.deriv1
  and d2 = u.Cex.Product_search.deriv2 in
  let form = u.Cex.Product_search.form in
  run_checks
    [ ("deriv1-invalid", fun () -> Derivation.validate g d1);
      ("deriv2-invalid", fun () -> Derivation.validate g d2);
      ( "root-mismatch",
        fun () ->
          Symbol.equal (Derivation.root_symbol d1) root
          && Symbol.equal (Derivation.root_symbol d2) root );
      ( "frontier-mismatch",
        fun () ->
          (* The frontier ignores the dot marker: the paper's [•] is
             display-only and must not affect the sentential form. *)
          symbols_equal (Derivation.leaves d1) form
          && symbols_equal (Derivation.leaves d2) form );
      ( "derivations-identical",
        fun () -> not (Derivation.equal d1 d2) );
      ( "not-ambiguous",
        fun () ->
          (* Independent confirmation by the Earley-style chart counter:
             the form must admit >= 2 rooted derivations from the unifying
             nonterminal, whatever the two exhibited trees look like. *)
          ambiguous_from t ~start:root form ) ]

(* ------------------------------------------------------------------ *)
(* Nonunifying counterexamples (paper section 4): two derivable sentential
   forms sharing the prefix up to the conflict point, with the conflict
   terminal as the next symbol. *)

let replay_prefix t prefix =
  let lr0 = Parse_table.lr0 t.table in
  let rec go state = function
    | [] -> Some state
    | sym :: rest -> (
      match Lr0.transition lr0 state sym with
      | Some next -> go next rest
      | None -> None)
  in
  go Lr0.start_state prefix

let start_symbol = Symbol.Nonterminal 0 (* the augmented START *)

let check_nonunifying t (nu : Cex.Nonunifying.t) =
  let g = t.grammar in
  let conflict = nu.Cex.Nonunifying.conflict in
  let prefix = nu.Cex.Nonunifying.prefix in
  let reduce_form = prefix @ nu.Cex.Nonunifying.reduce_continuation in
  let other_form = prefix @ nu.Cex.Nonunifying.other_continuation in
  let deriv_ok label deriv expected_frontier =
    match deriv with
    | None -> []  (* absent trees are legal; the forms carry the witness *)
    | Some d ->
      run_checks
        [ (label ^ "-invalid", fun () -> Derivation.validate g d);
          ( label ^ "-root-mismatch",
            fun () -> Symbol.equal (Derivation.root_symbol d) start_symbol );
          ( label ^ "-frontier-mismatch",
            fun () -> symbols_equal (Derivation.leaves d) expected_frontier )
        ]
  in
  run_checks
    [ ( "prefix-unreplayable",
        fun () ->
          (* The shared prefix must drive the automaton from the start
             state into the conflict state: that is what makes the two
             forms exhibit this conflict rather than some other one. *)
          replay_prefix t prefix = Some conflict.Conflict.state );
      ( "conflict-terminal-not-next",
        fun () ->
          match nu.Cex.Nonunifying.reduce_continuation with
          | Symbol.Terminal head :: _ -> head = conflict.Conflict.terminal
          | [] -> conflict.Conflict.terminal = 0
          | Symbol.Nonterminal _ :: _ -> false );
      ( "reduce-form-not-derivable",
        fun () -> derives t ~start:start_symbol reduce_form );
      ( "other-form-not-derivable",
        fun () -> derives t ~start:start_symbol other_form ) ]
  @ deriv_ok "deriv1" nu.Cex.Nonunifying.deriv1 reduce_form
  @ deriv_ok "deriv2" nu.Cex.Nonunifying.deriv2 other_form

(* ------------------------------------------------------------------ *)

let verdict_of_failures = function
  | [] -> Cex.Driver.Validated
  | failures -> Cex.Driver.Validation_failed failures

let verdict t = function
  | Cex.Driver.Unifying u -> verdict_of_failures (check_unifying t u)
  | Cex.Driver.Nonunifying nu -> verdict_of_failures (check_nonunifying t nu)

let validate_conflict_report t (cr : Cex.Driver.conflict_report) =
  Trace.timed t.sink t.clock "validate" (fun () ->
      let validation =
        match cr.Cex.Driver.counterexample with
        | Some (Cex.Driver.Unifying _ as cex) ->
          Trace.count t.sink "validate" "unifying" 1;
          verdict t cex
        | Some (Cex.Driver.Nonunifying _ as cex) ->
          Trace.count t.sink "validate" "nonunifying" 1;
          verdict t cex
        | None ->
          (* A crashed search legitimately has nothing to check; any other
             outcome promised (at least) a nonunifying counterexample. *)
          if cr.Cex.Driver.outcome = Cex.Driver.Search_crashed then
            Cex.Driver.Not_validated
          else Cex.Driver.Validation_failed [ "no-counterexample" ]
      in
      (match validation with
      | Cex.Driver.Validation_failed _ -> Trace.count t.sink "validate" "failed" 1
      | Cex.Driver.Validated | Cex.Driver.Not_validated -> ());
      { cr with Cex.Driver.validation })

let merge_metrics a b =
  List.sort (fun (s1, _) (s2, _) -> compare s1 s2) (a @ b)

let validate_report t (r : Cex.Driver.report) =
  let conflict_reports =
    List.map (validate_conflict_report t) r.Cex.Driver.conflict_reports
  in
  { r with
    Cex.Driver.conflict_reports;
    metrics = merge_metrics r.Cex.Driver.metrics (metrics t) }

(* ------------------------------------------------------------------ *)

let count p (r : Cex.Driver.report) =
  List.length (List.filter p r.Cex.Driver.conflict_reports)

let n_validated =
  count (fun cr -> cr.Cex.Driver.validation = Cex.Driver.Validated)

let n_invalid =
  count (fun cr ->
      match cr.Cex.Driver.validation with
      | Cex.Driver.Validation_failed _ -> true
      | Cex.Driver.Validated | Cex.Driver.Not_validated -> false)

let invalid_reports (r : Cex.Driver.report) =
  List.filter
    (fun cr ->
      match cr.Cex.Driver.validation with
      | Cex.Driver.Validation_failed _ -> true
      | Cex.Driver.Validated | Cex.Driver.Not_validated -> false)
    r.Cex.Driver.conflict_reports
