open Cfg

(* Items are interned into a dense id space at build time: the id of
   [(prod, dot)] is [offsets.(prod) + dot], where [offsets] is the prefix sum
   of [rhs_length + 1] over productions. Ids are monotone in the
   [(prod, dot)] lexicographic order, so a state's [items] array (sorted by
   [Item.compare]) is also sorted by id. Every hot structure of the searches
   keys on these ids instead of structural item records. *)

type state = {
  id : int;
  items : Item.t array;
  item_ids : int array;  (* global id per item, ascending *)
  id_words : int array;  (* membership bitmap over global ids *)
  id_rank : int array;  (* ids below each bitmap word: rank/select index *)
  offsets : int array;  (* shared interning table, one cell per production *)
  accessing : Symbol.t option;
  goto_terminal : int array;
  goto_nonterminal : int array;
  with_next_terminal : Item.t list array;  (* items by next terminal *)
  with_next_nonterminal : Item.t list array;
  mutable predecessors : int list;
}

type t = {
  grammar : Grammar.t;
  states : state array;
  offsets : int array;
  n_item_ids : int;
  id_item : Item.t array;  (* id -> item *)
  id_next : Symbol.t option array;  (* id -> symbol after the dot *)
  id_lhs : int array;  (* id -> production's left-hand side *)
  id_rhs_len : int array;  (* id -> production's right-hand-side length *)
}

let grammar a = a.grammar
let n_states a = Array.length a.states
let state a i = a.states.(i)
let start_state = 0

let n_item_ids a = a.n_item_ids
let item_id a (item : Item.t) = a.offsets.(item.Item.prod) + item.Item.dot
let item_of_id a id = a.id_item.(id)
let next_symbol_of_id a id = a.id_next.(id)
let lhs_of_id a id = a.id_lhs.(id)
let rhs_length_of_id a id = a.id_rhs_len.(id)

(* Item membership and position, via a rank/select bitmap per state: a dense
   [int array] per state over the whole id space would cost
   [n_states * n_item_ids] words (tens of megabytes on big grammars, and most
   of [build]'s time just zeroing it); the bitmap plus per-word rank prefix
   is a small fraction of the size with both queries still constant-time.
   Chunks are 32 bits — not the native word — so the index split compiles to
   a shift and a mask instead of a division by 63, which is what the search
   inner loops would otherwise pay on every membership probe. *)

let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let local_index_of_id a s id =
  let st = a.states.(s) in
  let word = st.id_words.(id lsr 5) in
  let bit = 1 lsl (id land 31) in
  if word land bit = 0 then -1
  else st.id_rank.(id lsr 5) + popcount (word land (bit - 1))

let has_item_id a s id =
  let st = a.states.(s) in
  st.id_words.(id lsr 5) land (1 lsl (id land 31)) <> 0

let transition a s sym =
  let st = a.states.(s) in
  let target =
    match sym with
    | Symbol.Terminal t -> st.goto_terminal.(t)
    | Symbol.Nonterminal nt -> st.goto_nonterminal.(nt)
  in
  if target < 0 then None else Some target

let item_index (st : state) (item : Item.t) =
  let id = st.offsets.(item.Item.prod) + item.Item.dot in
  let w = id lsr 5 in
  if id < 0 || w >= Array.length st.id_words then None
  else
    let word = st.id_words.(w) in
    let bit = 1 lsl (id land 31) in
    if word land bit = 0 then None
    else Some (st.id_rank.(w) + popcount (word land (bit - 1)))

let has_item st item = item_index st item <> None

let items_with_next a s sym =
  let st = a.states.(s) in
  match sym with
  | Symbol.Terminal t -> st.with_next_terminal.(t)
  | Symbol.Nonterminal nt -> st.with_next_nonterminal.(nt)

let reduce_items a s =
  let st = a.states.(s) in
  Array.to_list st.items
  |> List.filter (fun item -> Item.is_reduce a.grammar item)

(* The interning table: one dense id per (production, dot) pair. *)
let build_offsets g =
  let n_p = Grammar.n_productions g in
  let offsets = Array.make n_p 0 in
  let total = ref 0 in
  for p = 0 to n_p - 1 do
    offsets.(p) <- !total;
    total := !total + Array.length (Grammar.production g p).Grammar.rhs + 1
  done;
  offsets, !total

let build g =
  let n_t = Grammar.n_terminals g in
  let n_nt = Grammar.n_nonterminals g in
  let offsets, n_item_ids = build_offsets g in
  let id_item =
    Array.init n_item_ids (fun _ -> Item.start)
  in
  let id_next = Array.make n_item_ids None in
  let id_lhs = Array.make n_item_ids 0 in
  let id_rhs_len = Array.make n_item_ids 0 in
  for p = 0 to Grammar.n_productions g - 1 do
    let prod = Grammar.production g p in
    let len = Array.length prod.Grammar.rhs in
    for dot = 0 to len do
      let item = Item.make p dot in
      let id = offsets.(p) + dot in
      id_item.(id) <- item;
      id_next.(id) <- (if dot < len then Some prod.Grammar.rhs.(dot) else None);
      id_lhs.(id) <- prod.Grammar.lhs;
      id_rhs_len.(id) <- len
    done
  done;
  let states : state array ref = ref [||] in
  let count = ref 0 in
  (* Everything below works on interned ids: kernels are sorted id lists
     (ids are bijective with items and monotone in [Item.compare] order, so
     the keying is equivalent to the old structural one, minus the
     structural hashing), closures mark a shared byte map instead of a
     per-call item hashtable, and next-symbol lookups are [id_next] reads. *)
  let by_kernel : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let pending = Queue.create () in
  let nwords = max 1 ((n_item_ids + 31) lsr 5) in
  (* Closure scratch, reused across states and reset via the result list. *)
  let closure_seen = Bytes.make n_item_ids '\000' in
  let closure kernel_ids =
    let result = ref [] in
    let rec add gid =
      if Bytes.unsafe_get closure_seen gid = '\000' then begin
        Bytes.unsafe_set closure_seen gid '\001';
        result := gid :: !result;
        match id_next.(gid) with
        | Some (Symbol.Nonterminal nt) ->
          List.iter (fun p -> add offsets.(p)) (Grammar.productions_of g nt)
        | Some (Symbol.Terminal _) | None -> ()
      end
    in
    List.iter add kernel_ids;
    let ids = !result in
    List.iter (fun gid -> Bytes.unsafe_set closure_seen gid '\000') ids;
    let item_ids = Array.of_list ids in
    Array.sort (fun (a : int) b -> compare a b) item_ids;
    item_ids
  in
  let intern kernel_ids accessing =
    let kernel_ids = List.sort_uniq (fun (a : int) b -> compare a b) kernel_ids in
    match Hashtbl.find_opt by_kernel kernel_ids with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add by_kernel kernel_ids id;
      let item_ids = closure kernel_ids in
      let n_items = Array.length item_ids in
      let items = Array.map (fun gid -> id_item.(gid)) item_ids in
      let id_words = Array.make nwords 0 in
      Array.iter
        (fun gid ->
          let w = gid lsr 5 in
          id_words.(w) <- id_words.(w) lor (1 lsl (gid land 31)))
        item_ids;
      let id_rank = Array.make nwords 0 in
      let rank = ref 0 in
      for w = 0 to nwords - 1 do
        id_rank.(w) <- !rank;
        rank := !rank + popcount id_words.(w)
      done;
      let with_next_terminal = Array.make n_t [] in
      let with_next_nonterminal = Array.make n_nt [] in
      (* Consed in reverse so each bucket lists items in [items] order, the
         order the old linear filter produced. *)
      for l = n_items - 1 downto 0 do
        match id_next.(item_ids.(l)) with
        | None -> ()
        | Some (Symbol.Terminal t) ->
          with_next_terminal.(t) <- items.(l) :: with_next_terminal.(t)
        | Some (Symbol.Nonterminal nt) ->
          with_next_nonterminal.(nt) <- items.(l) :: with_next_nonterminal.(nt)
      done;
      let st =
        { id;
          items;
          item_ids;
          id_words;
          id_rank;
          offsets;
          accessing;
          goto_terminal = Array.make n_t (-1);
          goto_nonterminal = Array.make n_nt (-1);
          with_next_terminal;
          with_next_nonterminal;
          predecessors = [] }
      in
      if Array.length !states <= id then begin
        let bigger =
          Array.make (max 16 (2 * (id + 1))) st
        in
        Array.blit !states 0 bigger 0 (Array.length !states);
        states := bigger
      end;
      !states.(id) <- st;
      Queue.add id pending;
      id
  in
  let (_ : int) = intern [ offsets.(0) ] None in
  (* First-seen-symbol scratch for the transition grouping, reused across
     states. The enumeration order of the symbols below is the first
     occurrence over the state's sorted [items] — it decides the successor
     interning order and hence the state numbering, which downstream goldens
     pin, so it must match the old hashtable walk exactly. *)
  let seen_t = Array.make n_t false in
  let seen_nt = Array.make n_nt false in
  while not (Queue.is_empty pending) do
    let id = Queue.pop pending in
    let st = !states.(id) in
    let order = ref [] in
    Array.iter
      (fun gid ->
        match id_next.(gid) with
        | None -> ()
        | Some (Symbol.Terminal t) when not seen_t.(t) ->
          seen_t.(t) <- true;
          order := Symbol.Terminal t :: !order
        | Some (Symbol.Nonterminal nt) when not seen_nt.(nt) ->
          seen_nt.(nt) <- true;
          order := Symbol.Nonterminal nt :: !order
        | Some _ -> ())
      st.item_ids;
    List.iter
      (fun sym ->
        (* The source bucket was built by [intern]; advancing an item adds
           one to its id. *)
        let sources =
          match sym with
          | Symbol.Terminal t ->
            seen_t.(t) <- false;
            st.with_next_terminal.(t)
          | Symbol.Nonterminal nt ->
            seen_nt.(nt) <- false;
            st.with_next_nonterminal.(nt)
        in
        let kernel_ids =
          List.map
            (fun (i : Item.t) -> offsets.(i.Item.prod) + i.Item.dot + 1)
            sources
        in
        let target = intern kernel_ids (Some sym) in
        (match sym with
        | Symbol.Terminal t -> st.goto_terminal.(t) <- target
        | Symbol.Nonterminal nt -> st.goto_nonterminal.(nt) <- target);
        let tgt = !states.(target) in
        if not (List.mem id tgt.predecessors) then
          tgt.predecessors <- id :: tgt.predecessors)
      (List.rev !order)
  done;
  { grammar = g;
    states = Array.sub !states 0 !count;
    offsets;
    n_item_ids;
    id_item;
    id_next;
    id_lhs;
    id_rhs_len }

let predecessors a s = a.states.(s).predecessors

(* Backward reachability over (state, item) pairs, ignoring lookaheads: which
   vertices can reach the target item at all? This is the paper's section-6
   pruning for the lookahead-sensitive shortest-path search. The bitmap
   depends only on the automaton and the target, so callers (the analysis
   session) memoize it per (state, item id) and share it across every
   conflict of the same reduce item.

   Vertices are the packed integers [state * n_item_ids + item_id] over the
   interned item ids, so the visited set is a flat bitmap and the worklist a
   queue of ints — no structural hashing anywhere. *)
let backward_reach a ~state:target_state ~item_id:target_id =
  let n_ids = a.n_item_ids in
  let reach = Bytes.make ((n_states a * n_ids + 7) lsr 3) '\000' in
  let mem key =
    Char.code (Bytes.unsafe_get reach (key lsr 3)) land (1 lsl (key land 7))
    <> 0
  in
  let set key =
    Bytes.unsafe_set reach (key lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get reach (key lsr 3))
         lor (1 lsl (key land 7))))
  in
  let queue = Queue.create () in
  let visit state id =
    let key = (state * n_ids) + id in
    if not (mem key) then begin
      set key;
      Queue.add key queue
    end
  in
  visit target_state target_id;
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    let state = key / n_ids and id = key mod n_ids in
    let item = item_of_id a id in
    (* Reverse transition: the dot moved over the accessing symbol. An
       advanced item's id is its predecessor's plus one, so retreating is a
       decrement. *)
    if item.Item.dot > 0 then
      List.iter
        (fun pred -> if has_item_id a pred (id - 1) then visit pred (id - 1))
        (predecessors a state)
    else begin
      (* Reverse production step: any item of the same state with this item's
         left-hand side after the dot. *)
      let lhs = lhs_of_id a id in
      List.iter
        (fun (ctx : Item.t) -> visit state (item_id a ctx))
        (items_with_next a state (Symbol.Nonterminal lhs))
    end
  done;
  reach

(* Forward reachability over the same packed (state, item) vertex space:
   which vertices does the start item reach via forward transitions (advance
   the dot into the successor state) and closure steps (expand the
   nonterminal after the dot into its productions' initial items)? This is
   the SR-automaton's reachable region; the srwalk engine and the
   [sr-unreachable-conflict] lint both query it, so it lives here beside
   [backward_reach] and shares its bitmap layout and [reach_mem]. *)
let forward_reach a =
  let n_ids = a.n_item_ids in
  let reach = Bytes.make ((n_states a * n_ids + 7) lsr 3) '\000' in
  let mem key =
    Char.code (Bytes.unsafe_get reach (key lsr 3)) land (1 lsl (key land 7))
    <> 0
  in
  let set key =
    Bytes.unsafe_set reach (key lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get reach (key lsr 3))
         lor (1 lsl (key land 7))))
  in
  let queue = Queue.create () in
  let visit state id =
    let key = (state * n_ids) + id in
    if not (mem key) then begin
      set key;
      Queue.add key queue
    end
  in
  visit start_state a.offsets.(0);
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    let state = key / n_ids and id = key mod n_ids in
    match a.id_next.(id) with
    | None -> ()
    | Some sym ->
      (match transition a state sym with
      | Some target -> visit target (id + 1)
      | None -> ());
      (match sym with
      | Symbol.Nonterminal nt ->
        List.iter
          (fun p -> visit state a.offsets.(p))
          (Grammar.productions_of a.grammar nt)
      | Symbol.Terminal _ -> ())
  done;
  reach

let reach_mem a reach state id =
  let key = (state * a.n_item_ids) + id in
  Char.code (Bytes.unsafe_get reach (key lsr 3)) land (1 lsl (key land 7)) <> 0

let kernel_items a s =
  let st = a.states.(s) in
  Array.to_list st.items
  |> List.filter (fun item ->
         (not (Item.is_initial item)) || Item.equal item Item.start)

let pp_state a ppf s =
  let st = a.states.(s) in
  Fmt.pf ppf "State %d:@." s;
  Array.iter (fun item -> Fmt.pf ppf "  %a@." (Item.pp a.grammar) item) st.items

let pp ppf a =
  for s = 0 to n_states a - 1 do
    pp_state a ppf s
  done
