open Cfg

(* Items are interned into a dense id space at build time: the id of
   [(prod, dot)] is [offsets.(prod) + dot], where [offsets] is the prefix sum
   of [rhs_length + 1] over productions. Ids are monotone in the
   [(prod, dot)] lexicographic order, so a state's [items] array (sorted by
   [Item.compare]) is also sorted by id. Every hot structure of the searches
   keys on these ids instead of structural item records. *)

type state = {
  id : int;
  items : Item.t array;
  item_ids : int array;  (* global id per item, ascending *)
  local_of_id : int array;  (* global id -> index into [items]; -1 = absent *)
  offsets : int array;  (* shared interning table, one cell per production *)
  accessing : Symbol.t option;
  goto_terminal : int array;
  goto_nonterminal : int array;
  with_next_terminal : Item.t list array;  (* items by next terminal *)
  with_next_nonterminal : Item.t list array;
  mutable predecessors : int list;
}

type t = {
  grammar : Grammar.t;
  states : state array;
  offsets : int array;
  n_item_ids : int;
  id_item : Item.t array;  (* id -> item *)
  id_next : Symbol.t option array;  (* id -> symbol after the dot *)
  id_lhs : int array;  (* id -> production's left-hand side *)
  id_rhs_len : int array;  (* id -> production's right-hand-side length *)
}

let grammar a = a.grammar
let n_states a = Array.length a.states
let state a i = a.states.(i)
let start_state = 0

let n_item_ids a = a.n_item_ids
let item_id a (item : Item.t) = a.offsets.(item.Item.prod) + item.Item.dot
let item_of_id a id = a.id_item.(id)
let next_symbol_of_id a id = a.id_next.(id)
let lhs_of_id a id = a.id_lhs.(id)
let rhs_length_of_id a id = a.id_rhs_len.(id)

let local_index_of_id a s id =
  let l = a.states.(s).local_of_id.(id) in
  l

let has_item_id a s id = a.states.(s).local_of_id.(id) >= 0

let transition a s sym =
  let st = a.states.(s) in
  let target =
    match sym with
    | Symbol.Terminal t -> st.goto_terminal.(t)
    | Symbol.Nonterminal nt -> st.goto_nonterminal.(nt)
  in
  if target < 0 then None else Some target

let item_index (st : state) (item : Item.t) =
  let id = st.offsets.(item.Item.prod) + item.Item.dot in
  if id < 0 || id >= Array.length st.local_of_id then None
  else
    let l = st.local_of_id.(id) in
    if l < 0 then None else Some l

let has_item st item = item_index st item <> None

let items_with_next a s sym =
  let st = a.states.(s) in
  match sym with
  | Symbol.Terminal t -> st.with_next_terminal.(t)
  | Symbol.Nonterminal nt -> st.with_next_nonterminal.(nt)

let reduce_items a s =
  let st = a.states.(s) in
  Array.to_list st.items
  |> List.filter (fun item -> Item.is_reduce a.grammar item)

(* Closure of a kernel: add the initial item of every production of a
   nonterminal that appears after a dot, transitively. *)
let closure g kernel =
  let seen : (Item.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let result = ref [] in
  let rec add item =
    if not (Hashtbl.mem seen item) then begin
      Hashtbl.add seen item ();
      result := item :: !result;
      match Item.next_symbol g item with
      | Some (Symbol.Nonterminal nt) ->
        List.iter (fun p -> add (Item.make p 0)) (Grammar.productions_of g nt)
      | Some (Symbol.Terminal _) | None -> ()
    end
  in
  List.iter add kernel;
  let items = Array.of_list !result in
  Array.sort Item.compare items;
  items

(* The interning table: one dense id per (production, dot) pair. *)
let build_offsets g =
  let n_p = Grammar.n_productions g in
  let offsets = Array.make n_p 0 in
  let total = ref 0 in
  for p = 0 to n_p - 1 do
    offsets.(p) <- !total;
    total := !total + Array.length (Grammar.production g p).Grammar.rhs + 1
  done;
  offsets, !total

let build g =
  let n_t = Grammar.n_terminals g in
  let n_nt = Grammar.n_nonterminals g in
  let offsets, n_item_ids = build_offsets g in
  let id_item =
    Array.init n_item_ids (fun _ -> Item.start)
  in
  let id_next = Array.make n_item_ids None in
  let id_lhs = Array.make n_item_ids 0 in
  let id_rhs_len = Array.make n_item_ids 0 in
  for p = 0 to Grammar.n_productions g - 1 do
    let prod = Grammar.production g p in
    let len = Array.length prod.Grammar.rhs in
    for dot = 0 to len do
      let item = Item.make p dot in
      let id = offsets.(p) + dot in
      id_item.(id) <- item;
      id_next.(id) <- (if dot < len then Some prod.Grammar.rhs.(dot) else None);
      id_lhs.(id) <- prod.Grammar.lhs;
      id_rhs_len.(id) <- len
    done
  done;
  let states : state array ref = ref [||] in
  let count = ref 0 in
  let by_kernel : (Item.t list, int) Hashtbl.t = Hashtbl.create 64 in
  let pending = Queue.create () in
  let intern kernel accessing =
    let kernel = List.sort Item.compare kernel in
    match Hashtbl.find_opt by_kernel kernel with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add by_kernel kernel id;
      let items = closure g kernel in
      let n_items = Array.length items in
      let item_ids =
        Array.map (fun (i : Item.t) -> offsets.(i.Item.prod) + i.Item.dot) items
      in
      let local_of_id = Array.make n_item_ids (-1) in
      Array.iteri (fun l gid -> local_of_id.(gid) <- l) item_ids;
      let with_next_terminal = Array.make n_t [] in
      let with_next_nonterminal = Array.make n_nt [] in
      (* Consed in reverse so each bucket lists items in [items] order, the
         order the old linear filter produced. *)
      for l = n_items - 1 downto 0 do
        match id_next.(item_ids.(l)) with
        | None -> ()
        | Some (Symbol.Terminal t) ->
          with_next_terminal.(t) <- items.(l) :: with_next_terminal.(t)
        | Some (Symbol.Nonterminal nt) ->
          with_next_nonterminal.(nt) <- items.(l) :: with_next_nonterminal.(nt)
      done;
      let st =
        { id;
          items;
          item_ids;
          local_of_id;
          offsets;
          accessing;
          goto_terminal = Array.make n_t (-1);
          goto_nonterminal = Array.make n_nt (-1);
          with_next_terminal;
          with_next_nonterminal;
          predecessors = [] }
      in
      if Array.length !states <= id then begin
        let bigger =
          Array.make (max 16 (2 * (id + 1))) st
        in
        Array.blit !states 0 bigger 0 (Array.length !states);
        states := bigger
      end;
      !states.(id) <- st;
      Queue.add id pending;
      id
  in
  let (_ : int) = intern [ Item.start ] None in
  while not (Queue.is_empty pending) do
    let id = Queue.pop pending in
    let st = !states.(id) in
    (* Group items by their next symbol. *)
    let by_symbol : (Symbol.t, Item.t list ref) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    Array.iter
      (fun item ->
        match Item.next_symbol g item with
        | None -> ()
        | Some sym -> (
          match Hashtbl.find_opt by_symbol sym with
          | Some l -> l := item :: !l
          | None ->
            Hashtbl.add by_symbol sym (ref [ item ]);
            order := sym :: !order))
      st.items;
    List.iter
      (fun sym ->
        let sources = !(Hashtbl.find by_symbol sym) in
        let kernel = List.map Item.advance sources in
        let target = intern kernel (Some sym) in
        (match sym with
        | Symbol.Terminal t -> st.goto_terminal.(t) <- target
        | Symbol.Nonterminal nt -> st.goto_nonterminal.(nt) <- target);
        let tgt = !states.(target) in
        if not (List.mem id tgt.predecessors) then
          tgt.predecessors <- id :: tgt.predecessors)
      (List.rev !order)
  done;
  { grammar = g;
    states = Array.sub !states 0 !count;
    offsets;
    n_item_ids;
    id_item;
    id_next;
    id_lhs;
    id_rhs_len }

let predecessors a s = a.states.(s).predecessors

let kernel_items a s =
  let st = a.states.(s) in
  Array.to_list st.items
  |> List.filter (fun item ->
         (not (Item.is_initial item)) || Item.equal item Item.start)

let pp_state a ppf s =
  let st = a.states.(s) in
  Fmt.pf ppf "State %d:@." s;
  Array.iter (fun item -> Fmt.pf ppf "  %a@." (Item.pp a.grammar) item) st.items

let pp ppf a =
  for s = 0 to n_states a - 1 do
    pp_state a ppf s
  done
