open Cfg

type reason =
  | Unexpected_token
  | Invalid_token
  | Table_defect of string

type error = {
  position : int;
  state : int;
  terminal : int;
  reason : reason;
}

let pp_error g ppf e =
  match e.reason with
  | Unexpected_token ->
    Fmt.pf ppf "syntax error at input position %d (state %d, next symbol %s)"
      e.position e.state (Grammar.terminal_name g e.terminal)
  | Invalid_token ->
    Fmt.pf ppf
      "invalid token at input position %d: terminal index %d is %s"
      e.position e.terminal
      (if e.terminal = 0 then "the end-of-input marker $"
       else "out of range")
  | Table_defect msg ->
    Fmt.pf ppf
      "defective parse table at input position %d (state %d, next symbol \
       %s): %s"
      e.position e.state (Grammar.terminal_name g e.terminal) msg

(* A classic table-driven LR driver. The stacks hold states and the
   derivations of the symbols shifted/reduced so far; on acceptance the single
   remaining derivation is the parse tree of the start symbol.

   End of input is explicit: the input is given without the final [$], and
   the driver feeds the grammar's EOF terminal (index 0) once the list is
   empty. An input containing the EOF terminal itself, or any out-of-range
   index, is rejected up front with [Invalid_token] rather than silently
   treated as end of input. Structural defects of the table — a missing
   goto, a reduction popping past the bottom of the stack, acceptance with a
   malformed stack — are reported as [Table_defect] errors instead of
   [assert false], so replaying a degenerate table (as the validation
   oracle and the fuzzer do) cannot kill the process. *)
let parse table input =
  let g = Parse_table.grammar table in
  let eof = 0 in
  let rec check_input position = function
    | [] -> None
    | t :: rest ->
      if t = eof || t < 0 || t >= Grammar.n_terminals g then
        Some
          { position; state = Lr0.start_state; terminal = t;
            reason = Invalid_token }
      else check_input (position + 1) rest
  in
  match check_input 0 input with
  | Some e -> Result.Error e
  | None ->
    let rec drive states derivs input position =
      let state = match states with s :: _ -> s | [] -> assert false in
      let terminal, rest, position' =
        match input with
        | [] -> eof, [], position
        | t :: rest -> t, rest, position + 1
      in
      let defect msg =
        Result.Error { position; state; terminal; reason = Table_defect msg }
      in
      match Parse_table.action table state terminal with
      | Parse_table.Shift target ->
        drive (target :: states)
          (Derivation.leaf (Symbol.Terminal terminal) :: derivs)
          rest position'
      | Parse_table.Reduce prod ->
        let p = Grammar.production g prod in
        let n = Array.length p.Grammar.rhs in
        let rec pop k states derivs children =
          if k = 0 then Some (states, derivs, children)
          else
            match states, derivs with
            | _ :: (_ :: _ as states'), d :: derivs' ->
              pop (k - 1) states' derivs' (d :: children)
            | _, _ -> None
        in
        (match pop n states derivs [] with
        | None ->
          defect
            (Fmt.str "reduction by %a pops past the bottom of the stack"
               (Grammar.pp_production g) p)
        | Some (states, derivs, children) -> (
          let node = Derivation.node g prod children in
          let state' = match states with s :: _ -> s | [] -> assert false in
          match Parse_table.goto table state' p.Grammar.lhs with
          | Some target -> drive (target :: states) (node :: derivs) input position
          | None ->
            defect
              (Fmt.str "state %d has no goto on %s" state'
                 (Grammar.nonterminal_name g p.Grammar.lhs))))
      | Parse_table.Accept -> (
        match derivs with
        | [ d ] -> Ok d
        | _ ->
          defect
            (Fmt.str "acceptance with %d derivations on the stack"
               (List.length derivs)))
      | Parse_table.Error ->
        Result.Error { position; state; terminal; reason = Unexpected_token }
    in
    drive [ Lr0.start_state ] [] input 0

let parse_names table names =
  let g = Parse_table.grammar table in
  let resolve name =
    match Grammar.find_terminal g name with
    | Some t -> t
    | None -> invalid_arg (Fmt.str "Runner.parse_names: unknown terminal %s" name)
  in
  parse table (List.map resolve names)

let accepts table input =
  match parse table input with
  | Ok _ -> true
  | Result.Error _ -> false
