open Cfg

type kind =
  | Shift_reduce of {
      shift_item : Item.t;
      reduce_item : Item.t;
    }
  | Reduce_reduce of {
      reduce1 : Item.t;
      reduce2 : Item.t;
      terminals : Bitset.t;
    }

type t = {
  state : int;
  terminal : int;
  kind : kind;
}

let reduce_item c =
  match c.kind with
  | Shift_reduce { reduce_item; _ } -> reduce_item
  | Reduce_reduce { reduce1; _ } -> reduce1

let other_item c =
  match c.kind with
  | Shift_reduce { shift_item; _ } -> shift_item
  | Reduce_reduce { reduce2; _ } -> reduce2

let shift_item c =
  match c.kind with
  | Shift_reduce { shift_item; _ } -> Some shift_item
  | Reduce_reduce _ -> None

let is_shift_reduce c =
  match c.kind with
  | Shift_reduce _ -> true
  | Reduce_reduce _ -> false

let pp g ppf c =
  match c.kind with
  | Shift_reduce { shift_item; reduce_item } ->
    Fmt.pf ppf
      "Shift/Reduce conflict found in state #%d@,\
      \  between reduction on %a@,\
      \  and shift on %a@,\
      \  under symbol %s"
      c.state (Item.pp g) reduce_item (Item.pp g) shift_item
      (Grammar.terminal_name g c.terminal)
  | Reduce_reduce { reduce1; reduce2; terminals } ->
    Fmt.pf ppf
      "Reduce/Reduce conflict found in state #%d@,\
      \  between reduction on %a@,\
      \  and reduction on %a@,\
      \  under symbols %a"
      c.state (Item.pp g) reduce1 (Item.pp g) reduce2
      (Bitset.pp ~name:(Grammar.terminal_name g))
      terminals

let to_string g c = Fmt.str "@[<v>%a@]" (pp g) c
