(** Table-driven LR parser: runs a {!Parse_table.t} on a terminal string and
    produces the derivation (parse tree) of the start symbol.

    Unresolved conflicts follow the table's defaults (shift over reduce,
    earlier production over later), so the runner is deterministic even for
    conflicted grammars.

    The driver never asserts: every failure mode — a plain syntax error, an
    invalid input token, or a structurally defective table (missing goto,
    underflowing reduction) — comes back as a {!error}. This matters to the
    validation oracle and the fuzzer, which replay automata for arbitrary
    generated grammars. *)

open Cfg

type reason =
  | Unexpected_token  (** the action table has no action: a syntax error *)
  | Invalid_token
      (** the input contains the EOF terminal (index 0) or an out-of-range
          terminal index; end of input is explicit (the input is given
          without the final [$]), so the EOF marker may not appear inside
          the input itself *)
  | Table_defect of string
      (** the table is structurally defective: a reduction popped past the
          bottom of the stack, a goto entry is missing, or acceptance was
          reached with a malformed stack *)

type error = {
  position : int;  (** number of terminals consumed before the error *)
  state : int;
  terminal : int;  (** offending terminal (0 = end of input) *)
  reason : reason;
}

val pp_error : Grammar.t -> Format.formatter -> error -> unit

val parse : Parse_table.t -> int list -> (Derivation.t, error) result
(** Parse a sentence given as terminal indices (without the final [$]). *)

val parse_names : Parse_table.t -> string list -> (Derivation.t, error) result
(** Convenience wrapper resolving terminal names.
    @raise Invalid_argument on unknown terminal names. *)

val accepts : Parse_table.t -> int list -> bool
