(** LALR(1) lookahead sets for {e every} item of every LR(0) state.

    Stock LALR generators keep lookaheads only for kernel items; the paper's
    algorithms need them for closure items too (e.g. the lookahead condition
    on reverse transitions, Fig. 10(c)), so we compute the full table. The
    computation is a least-fixpoint of lookahead flow along transitions and
    production steps, which coincides with the classical LALR(1) sets. *)

open Cfg

type t

val build : ?analysis:Analysis.t -> Lr0.t -> t
(** [analysis] may be supplied to share a precomputed {!Cfg.Analysis.t}. *)

val lr0 : t -> Lr0.t
val analysis : t -> Analysis.t
val grammar : t -> Grammar.t

val lookahead : t -> int -> int -> Bitset.t
(** [lookahead a state item_idx]: lookahead set by item position (index into
    [(Lr0.state lr0 state).items]). *)

val lookahead_item : t -> int -> Item.t -> Bitset.t
(** @raise Invalid_argument if the item is not in the state. *)

val lookahead_of_id : t -> int -> int -> Bitset.t
(** [lookahead_of_id a state id]: like {!lookahead_item}, keyed by the
    interned item id ({!Lr0.item_id}); constant time.
    @raise Invalid_argument if the item is not in the state. *)

val pp_state : t -> Format.formatter -> int -> unit
