(** Canonical LR(0) automaton.

    Each state is the closure of its kernel item set. As in every LR
    automaton, all edges into a state carry the same symbol, recorded as the
    state's [accessing] symbol; consequently reverse transitions from a state
    are exactly its [predecessors].

    Items are interned into a dense integer id space at build time (the id of
    [(prod, dot)] is the prefix-sum offset of [prod] plus [dot]), and every
    state carries index tables keyed by these ids: constant-time membership
    ([has_item_id]), constant-time item position ([local_index_of_id]), and
    precomputed per-symbol item buckets ([items_with_next]). The searches in
    [lib/core] key their hot structures on these ids. *)

open Cfg

type state = private {
  id : int;
  items : Item.t array;  (** kernel and closure items, sorted *)
  item_ids : int array;  (** interned id per item, ascending (same order) *)
  id_words : int array;  (** membership bitmap over the interned id space *)
  id_rank : int array;
      (** ids present below each word of [id_words]: with a popcount this
          answers [local_index_of_id] in constant time at 1/32 the footprint
          of a dense id-to-index array per state *)
  offsets : int array;  (** shared interning table (id of [(p, 0)] per [p]) *)
  accessing : Symbol.t option;  (** [None] only for the start state *)
  goto_terminal : int array;  (** successor per terminal; -1 = none *)
  goto_nonterminal : int array;  (** successor per nonterminal; -1 = none *)
  with_next_terminal : Item.t list array;
      (** items whose next symbol is the given terminal, in [items] order *)
  with_next_nonterminal : Item.t list array;
  mutable predecessors : int list;
}

type t

val build : Grammar.t -> t
val grammar : t -> Grammar.t
val n_states : t -> int
val state : t -> int -> state

val start_state : int
(** Always 0. *)

val transition : t -> int -> Symbol.t -> int option
val predecessors : t -> int -> int list

(** {2 Interned item ids} *)

val n_item_ids : t -> int
(** Size of the id space: one id per [(production, dot)] pair. *)

val item_id : t -> Item.t -> int
(** Dense id of an item; the inverse of {!item_of_id}. The id of an advanced
    item is the item's id plus one. *)

val item_of_id : t -> int -> Item.t
val next_symbol_of_id : t -> int -> Symbol.t option
val lhs_of_id : t -> int -> int
(** Left-hand-side nonterminal of the item's production. *)

val rhs_length_of_id : t -> int -> int

val local_index_of_id : t -> int -> int -> int
(** [local_index_of_id a state id]: position of the item within the state's
    [items] array, or -1 when absent. *)

val has_item_id : t -> int -> int -> bool

(** {2 Structural item lookups} *)

val item_index : state -> Item.t -> int option
(** Position of the item within the state's sorted [items] array. *)

val has_item : state -> Item.t -> bool

val items_with_next : t -> int -> Symbol.t -> Item.t list
(** Items of the state whose next symbol (after the dot) is the given symbol;
    used for shift items and for reverse production steps. Precomputed at
    build time. *)

val reduce_items : t -> int -> Item.t list

(** {2 Backward reachability} *)

val backward_reach : t -> state:int -> item_id:int -> Bytes.t
(** Bitmap over packed [(state, item id)] vertices: which vertices can reach
    the target item in the target state via reverse transitions (retreat the
    dot into a predecessor state) and reverse production steps (jump to an
    item of the same state whose next symbol derives this item's left-hand
    side)? Depends only on the automaton, so the bitmap is shareable across
    every conflict on the same reduce item; query it with {!reach_mem}. *)

val forward_reach : t -> Bytes.t
(** Bitmap over the same packed [(state, item id)] vertices: which vertices
    does the start item reach via forward transitions (advance the dot into
    the successor state) and closure steps (expand the nonterminal after the
    dot into its productions' initial items)? This is the SR-automaton's
    reachable region — the srwalk engine and the [sr-unreachable-conflict]
    lint rule both query it. Query with {!reach_mem}. *)

val reach_mem : t -> Bytes.t -> int -> int -> bool
(** [reach_mem a reach state id]: membership test against a
    {!backward_reach} or {!forward_reach} bitmap. *)

val kernel_items : t -> int -> Item.t list
(** Items with the dot not at the start, plus the start item in state 0. *)

val pp_state : t -> Format.formatter -> int -> unit
val pp : Format.formatter -> t -> unit
