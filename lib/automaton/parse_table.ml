open Cfg

type action =
  | Shift of int
  | Reduce of int
  | Accept
  | Error

type resolution =
  | Resolved_shift
  | Resolved_reduce
  | Resolved_error

type t = {
  lalr : Lalr.t;
  actions : action array array;
  conflicts : Conflict.t list;
  resolved_conflicts : (Conflict.t * resolution) list;
  precedence_resolved : int;
}

let lalr t = t.lalr
let lr0 t = Lalr.lr0 t.lalr
let grammar t = Lalr.grammar t.lalr
let conflicts t = t.conflicts
let resolved_conflicts t = t.resolved_conflicts
let precedence_resolved t = t.precedence_resolved
let action t s term = t.actions.(s).(term)

let goto t s nt =
  let st = Lr0.state (lr0 t) s in
  let target = st.Lr0.goto_nonterminal.(nt) in
  if target < 0 then None else Some target

(* yacc-style shift/reduce resolution: compare the production's precedence
   with the terminal's. Returns [None] when either side has no declared
   precedence (the conflict is then reported, and shifting wins by default). *)
let resolve_shift_reduce g ~reduce_prod ~terminal =
  match Grammar.production_prec g (Grammar.production g reduce_prod),
        Grammar.terminal_prec g terminal
  with
  | None, _ | _, None -> None
  | Some (prod_level, _), Some (term_level, assoc) ->
    if prod_level > term_level then Some (Reduce reduce_prod)
    else if prod_level < term_level then Some (Shift (-1) (* placeholder *))
    else
      match assoc with
      | Grammar.Left -> Some (Reduce reduce_prod)
      | Grammar.Right -> Some (Shift (-1))
      | Grammar.Nonassoc -> Some Error

let build_from lalr =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let n_t = Grammar.n_terminals g in
  let conflicts = ref [] in
  let resolved_conflicts = ref [] in
  let precedence_resolved = ref 0 in
  let actions =
    Array.init (Lr0.n_states lr0) (fun s ->
        let st = Lr0.state lr0 s in
        let row = Array.make n_t Error in
        (* Shift actions from terminal transitions. *)
        Array.iteri
          (fun term target -> if target >= 0 then row.(term) <- Shift target)
          st.Lr0.goto_terminal;
        (* Reduce items with their LALR lookaheads, in production order. *)
        let reduces =
          Array.to_list st.Lr0.items
          |> List.filter (fun item -> Item.is_reduce g item)
          |> List.map (fun item -> item, Lalr.lookahead_item lalr s item)
        in
        (* Reduce/reduce conflict pairs (never resolved by precedence). *)
        let rec rr_pairs = function
          | [] -> ()
          | (item1, la1) :: rest ->
            List.iter
              (fun (item2, la2) ->
                let inter = Bitset.inter la1 la2 in
                if not (Bitset.is_empty inter) then
                  let terminal =
                    match Bitset.choose inter with
                    | Some t -> t
                    | None -> assert false
                  in
                  conflicts :=
                    Conflict.
                      { state = s; terminal;
                        kind =
                          Reduce_reduce
                            { reduce1 = item1; reduce2 = item2;
                              terminals = inter } }
                    :: !conflicts)
              rest;
            rr_pairs rest
        in
        rr_pairs reduces;
        (* Install reduce actions terminal by terminal. *)
        List.iter
          (fun (item, la) ->
            let prod = item.Item.prod in
            Bitset.iter
              (fun term ->
                match row.(term) with
                | Error ->
                  row.(term) <- if prod = 0 then Accept else Reduce prod
                | Reduce prod' ->
                  (* reduce/reduce: earlier production wins (conflict already
                     recorded pairwise above). *)
                  if prod < prod' then row.(term) <- Reduce prod
                | Accept -> ()
                | Shift target -> (
                  if prod = 0 then ()
                  else
                    let record_resolved resolution =
                      incr precedence_resolved;
                      List.iter
                        (fun si ->
                          resolved_conflicts :=
                            ( Conflict.
                                { state = s; terminal = term;
                                  kind =
                                    Shift_reduce
                                      { shift_item = si; reduce_item = item } },
                              resolution )
                            :: !resolved_conflicts)
                        (Lr0.items_with_next lr0 s (Symbol.Terminal term))
                    in
                    match resolve_shift_reduce g ~reduce_prod:prod ~terminal:term with
                    | Some (Reduce _) ->
                      record_resolved Resolved_reduce;
                      row.(term) <- Reduce prod
                    | Some (Shift _) -> record_resolved Resolved_shift
                    | Some Error ->
                      record_resolved Resolved_error;
                      row.(term) <- Error
                    | Some Accept -> assert false
                    | None ->
                      (* Unresolved: record one conflict per shift item with
                         this next terminal; shift wins by default. *)
                      List.iter
                        (fun si ->
                          conflicts :=
                            Conflict.
                              { state = s; terminal = term;
                                kind =
                                  Shift_reduce
                                    { shift_item = si; reduce_item = item } }
                            :: !conflicts)
                        (Lr0.items_with_next lr0 s (Symbol.Terminal term));
                      ignore target))
              la)
          reduces;
        row)
  in
  { lalr; actions;
    conflicts = List.rev !conflicts;
    resolved_conflicts = List.rev !resolved_conflicts;
    precedence_resolved = !precedence_resolved }

let build ?analysis g = build_from (Lalr.build ?analysis (Lr0.build g))

let pp_action g ppf = function
  | Shift s -> Fmt.pf ppf "shift %d" s
  | Reduce p -> Fmt.pf ppf "reduce %a" (Grammar.pp_production g) (Grammar.production g p)
  | Accept -> Fmt.string ppf "accept"
  | Error -> Fmt.string ppf "error"

let pp ppf t =
  let g = grammar t in
  Array.iteri
    (fun s row ->
      Fmt.pf ppf "State %d:@." s;
      Array.iteri
        (fun term act ->
          match act with
          | Error -> ()
          | _ ->
            Fmt.pf ppf "  on %s: %a@." (Grammar.terminal_name g term)
              (pp_action g) act)
        row)
    t.actions
