open Cfg

type t = {
  lr0 : Lr0.t;
  analysis : Analysis.t;
  lookaheads : Bitset.t array array;
}

let lr0 a = a.lr0
let analysis a = a.analysis
let grammar a = Lr0.grammar a.lr0

(* LALR(1) lookahead sets for every item of every state, computed as the
   least fixpoint of lookahead flow over the automaton:

   - along a transition, the lookahead set is carried unchanged to the
     advanced item in the successor state;
   - along a production step within a state, the item [A -> alpha . C beta]
     with lookahead L contributes followL = FIRST(beta) (plus L when beta is
     nullable) to every initial item [C -> . gamma] of the same state.

   Merging contexts per (state, item) with set union is exactly the LALR(1)
   approximation; this is the per-(state, item) quotient of the paper's
   lookahead-sensitive graph. *)
let build ?analysis lr0 =
  let g = Lr0.grammar lr0 in
  let analysis =
    match analysis with
    | Some a -> a
    | None -> Analysis.make g
  in
  let lookaheads =
    Array.init (Lr0.n_states lr0) (fun s ->
        Array.make (Array.length (Lr0.state lr0 s).Lr0.items) Bitset.empty)
  in
  let queue = Queue.create () in
  let on_queue =
    Array.init (Lr0.n_states lr0) (fun s ->
        Array.make (Array.length (Lr0.state lr0 s).Lr0.items) false)
  in
  let push s idx =
    if not on_queue.(s).(idx) then begin
      on_queue.(s).(idx) <- true;
      Queue.add (s, idx) queue
    end
  in
  let union_into s idx extra =
    let current = lookaheads.(s).(idx) in
    let bigger = Bitset.union current extra in
    if not (Bitset.equal bigger current) then begin
      lookaheads.(s).(idx) <- bigger;
      push s idx
    end
  in
  let start_idx =
    match Lr0.item_index (Lr0.state lr0 Lr0.start_state) Item.start with
    | Some idx -> idx
    | None -> assert false
  in
  union_into Lr0.start_state start_idx (Bitset.singleton 0);
  while not (Queue.is_empty queue) do
    let s, idx = Queue.pop queue in
    on_queue.(s).(idx) <- false;
    let st = Lr0.state lr0 s in
    let item = st.Lr0.items.(idx) in
    let la = lookaheads.(s).(idx) in
    match Item.next_symbol g item with
    | None -> ()
    | Some sym ->
      (match Lr0.transition lr0 s sym with
      | None -> assert false
      | Some s' ->
        let st' = Lr0.state lr0 s' in
        (match Lr0.item_index st' (Item.advance item) with
        | Some idx' -> union_into s' idx' la
        | None -> assert false));
      (match sym with
      | Symbol.Terminal _ -> ()
      | Symbol.Nonterminal nt ->
        let prod = Item.production g item in
        let follow = Analysis.follow_l analysis prod ~dot:item.Item.dot la in
        List.iter
          (fun p ->
            match Lr0.item_index st (Item.make p 0) with
            | Some idx' -> union_into s idx' follow
            | None -> assert false)
          (Grammar.productions_of g nt))
  done;
  { lr0; analysis; lookaheads }

let lookahead a s idx = a.lookaheads.(s).(idx)

let lookahead_item a s item =
  match Lr0.item_index (Lr0.state a.lr0 s) item with
  | Some idx -> a.lookaheads.(s).(idx)
  | None -> invalid_arg "Lalr.lookahead_item: item not in state"

let lookahead_of_id a s id =
  let l = Lr0.local_index_of_id a.lr0 s id in
  if l < 0 then invalid_arg "Lalr.lookahead_of_id: item not in state"
  else a.lookaheads.(s).(l)

let pp_state a ppf s =
  let g = grammar a in
  let st = Lr0.state a.lr0 s in
  Fmt.pf ppf "State %d:@." s;
  Array.iteri
    (fun idx item ->
      Fmt.pf ppf "  %a  %a@." (Item.pp g) item
        (Bitset.pp ~name:(Grammar.terminal_name g))
        a.lookaheads.(s).(idx))
    st.Lr0.items
