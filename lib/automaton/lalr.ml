open Cfg

type t = {
  lr0 : Lr0.t;
  analysis : Analysis.t;
  lookaheads : Bitset.t array array;
}

let lr0 a = a.lr0
let analysis a = a.analysis
let grammar a = Lr0.grammar a.lr0

(* LALR(1) lookahead sets for every item of every state, computed as the
   least fixpoint of lookahead flow over the automaton:

   - along a transition, the lookahead set is carried unchanged to the
     advanced item in the successor state;
   - along a production step within a state, the item [A -> alpha . C beta]
     with lookahead L contributes followL = FIRST(beta) (plus L when beta is
     nullable) to every initial item [C -> . gamma] of the same state.

   Merging contexts per (state, item) with set union is exactly the LALR(1)
   approximation; this is the per-(state, item) quotient of the paper's
   lookahead-sensitive graph.

   The iteration state lives in flat per-state integer rows (one
   [Bitset.words]-wide slice per item) ORed in place, so a fixpoint step
   allocates nothing: the old set-per-cell version paid a [Bitset.union]
   plus [Bitset.equal] allocation and scan on every edge, which dominated
   the automaton construction on big grammars. Each production edge also
   splits [followL] into its static part — the memoized
   [Analysis.first_of_prod] of the suffix — and a conditional copy of the
   source row when the suffix is nullable, instead of rebuilding the union
   per visit. The least fixpoint is the same; only its representation
   during iteration differs, and the rows are frozen back to canonical
   [Bitset.t]s at the end. *)
let build ?analysis lr0 =
  let g = Lr0.grammar lr0 in
  let analysis =
    match analysis with
    | Some a -> a
    | None -> Analysis.make g
  in
  let n_states = Lr0.n_states lr0 in
  let n_items s = Array.length (Lr0.state lr0 s).Lr0.items in
  let width = Bitset.words ~capacity:(Grammar.n_terminals g) in
  (* Items are numbered globally ([base.(s) + local index]) so the whole
     iteration state is three flat allocations, not three per state. *)
  let base = Array.make (n_states + 1) 0 in
  for s = 0 to n_states - 1 do
    base.(s + 1) <- base.(s) + n_items s
  done;
  let total = base.(n_states) in
  let state_of = Array.make (max 1 total) 0 in
  for s = 0 to n_states - 1 do
    for gi = base.(s) to base.(s + 1) - 1 do
      state_of.(gi) <- s
    done
  done;
  let rows = Array.make (max 1 (total * width)) 0 in
  let queue = Queue.create () in
  let on_queue = Bytes.make (max 1 total) '\000' in
  let push gi =
    if Bytes.unsafe_get on_queue gi = '\000' then begin
      Bytes.unsafe_set on_queue gi '\001';
      Queue.add gi queue
    end
  in
  (* OR one [width]-word row into another, in place; source and destination
     may coincide (a left-recursive initial item feeds itself — the OR is
     then a no-op, which is correct). *)
  let or_row soff doff =
    let changed = ref false in
    for w = 0 to width - 1 do
      let v = rows.(doff + w) lor rows.(soff + w) in
      if v <> rows.(doff + w) then begin
        rows.(doff + w) <- v;
        changed := true
      end
    done;
    !changed
  in
  let start_idx =
    match Lr0.item_index (Lr0.state lr0 Lr0.start_state) Item.start with
    | Some idx -> idx
    | None -> assert false
  in
  (* Initial item id per production, so the inner loop below allocates no
     item records. *)
  let init_id =
    Array.init (Grammar.n_productions g) (fun p ->
        Lr0.item_id lr0 (Item.make p 0))
  in
  (* The static FIRST part of a production edge does not depend on the
     source lookaheads, so it is applied exactly once per source item; a
     re-pop of an item whose suffix is non-nullable then skips the whole
     production fan-out. *)
  let static_done = Bytes.make (max 1 total) '\000' in
  (* Seed: EOF (terminal 0) follows the start item. *)
  rows.((base.(Lr0.start_state) + start_idx) * width) <- 1;
  push (base.(Lr0.start_state) + start_idx);
  while not (Queue.is_empty queue) do
    let gi = Queue.pop queue in
    let s = state_of.(gi) in
    let idx = gi - base.(s) in
    Bytes.unsafe_set on_queue gi '\000';
    let st = Lr0.state lr0 s in
    let gid = st.Lr0.item_ids.(idx) in
    match Lr0.next_symbol_of_id lr0 gid with
    | None -> ()
    | Some sym ->
      (match Lr0.transition lr0 s sym with
      | None -> assert false
      | Some s' ->
        (* The advanced item's id is this item's plus one. *)
        let idx' = Lr0.local_index_of_id lr0 s' (gid + 1) in
        assert (idx' >= 0);
        let gi' = base.(s') + idx' in
        if or_row (gi * width) (gi' * width) then push gi');
      (match sym with
      | Symbol.Terminal _ -> ()
      | Symbol.Nonterminal nt ->
        let item = st.Lr0.items.(idx) in
        let first, nullable =
          Analysis.first_of_prod analysis ~prod:item.Item.prod
            ~from:(item.Item.dot + 1)
        in
        let fresh = Bytes.get static_done gi = '\000' in
        if fresh then Bytes.set static_done gi '\001';
        if fresh || nullable then
          List.iter
            (fun p ->
              let idx' = Lr0.local_index_of_id lr0 s init_id.(p) in
              assert (idx' >= 0);
              let gi' = base.(s) + idx' in
              let from_first =
                fresh && Bitset.blit_or first rows (gi' * width) width
              in
              let from_la = nullable && or_row (gi * width) (gi' * width) in
              if from_first || from_la then push gi')
            (Grammar.productions_of g nt))
  done;
  let lookaheads =
    Array.init n_states (fun s ->
        Array.init (n_items s) (fun idx ->
            Bitset.of_words rows ((base.(s) + idx) * width) width))
  in
  { lr0; analysis; lookaheads }

let lookahead a s idx = a.lookaheads.(s).(idx)

let lookahead_item a s item =
  match Lr0.item_index (Lr0.state a.lr0 s) item with
  | Some idx -> a.lookaheads.(s).(idx)
  | None -> invalid_arg "Lalr.lookahead_item: item not in state"

let lookahead_of_id a s id =
  let l = Lr0.local_index_of_id a.lr0 s id in
  if l < 0 then invalid_arg "Lalr.lookahead_of_id: item not in state"
  else a.lookaheads.(s).(l)

let pp_state a ppf s =
  let g = grammar a in
  let st = Lr0.state a.lr0 s in
  Fmt.pf ppf "State %d:@." s;
  Array.iteri
    (fun idx item ->
      Fmt.pf ppf "  %a  %a@." (Item.pp g) item
        (Bitset.pp ~name:(Grammar.terminal_name g))
        a.lookaheads.(s).(idx))
    st.Lr0.items
