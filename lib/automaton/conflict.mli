(** Parsing conflicts surviving precedence resolution.

    Conflicts are counted per item pair, matching the paper's convention
    (e.g. Fig. 7's single state yields two shift/reduce conflicts, one per
    shift item). For a shift/reduce conflict the conflict terminal is the
    shift item's next symbol; for reduce/reduce, the full lookahead
    intersection is recorded and [terminal] is its smallest element. *)

open Cfg

type kind =
  | Shift_reduce of {
      shift_item : Item.t;
      reduce_item : Item.t;
    }
  | Reduce_reduce of {
      reduce1 : Item.t;
      reduce2 : Item.t;
      terminals : Bitset.t;  (** lookahead intersection *)
    }

type t = {
  state : int;
  terminal : int;  (** the conflict symbol *)
  kind : kind;
}

val reduce_item : t -> Item.t
(** The (first) reduce item — the one the counterexample search must complete
    in stage 1. *)

val other_item : t -> Item.t
(** The shift item, or the second reduce item. *)

val shift_item : t -> Item.t option
(** The shift item of a shift/reduce conflict; [None] for reduce/reduce. *)

val is_shift_reduce : t -> bool
val pp : Grammar.t -> Format.formatter -> t -> unit
val to_string : Grammar.t -> t -> string
