open Automaton
module Scheduler = Cex_service.Scheduler
module Cache = Cex_service.Cache
module Session = Cex_session.Session
module Delta = Cex_session.Delta
module Clock = Cex_session.Clock
module Deadline = Cex_session.Deadline
module Trace = Cex_session.Trace
module Oracle = Cex_validate.Oracle
module Stats = Cex_service.Stats

type t = {
  scheduler : Scheduler.t;
  lock : Mutex.t;
  fingerprints : (string, Delta.fingerprint) Hashtbl.t;  (* by digest *)
}

let create scheduler =
  { scheduler; lock = Mutex.create (); fingerprints = Hashtbl.create 64 }

let scheduler t = t.scheduler

type reuse = {
  base_digest : string;
  similarity : float;
  seeded_nonterminals : int;
  total_nonterminals : int;
  reused_conflicts : int;
  searched_conflicts : int;
}

type served =
  | Report_cache
  | Session_cache
  | Delta of reuse
  | Cold

let served_string = function
  | Report_cache -> "report_cache"
  | Session_cache -> "session_cache"
  | Delta _ -> "delta"
  | Cold -> "cold"

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let fingerprint_of t digest g =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.fingerprints digest with
      | Some fp -> fp
      | None ->
        (* The memo only ever holds fingerprints of cached sessions plus the
           request in flight; reset if a long-lived server outgrows that. *)
        if Hashtbl.length t.fingerprints > 1024 then
          Hashtbl.reset t.fingerprints;
        let fp = Delta.fingerprint g in
        Hashtbl.add t.fingerprints digest fp;
        fp)

(* ------------------------------------------------------------------ *)
(* Conflict signatures: identify a conflict across automaton rebuilds by
   what it means (kind, lookahead terminal, the two items' text), never by
   state number. *)

let conflict_signature g (c : Conflict.t) =
  let item i = Fmt.str "%a" (Item.pp g) i in
  Fmt.str "%s|%s|%s|%s"
    (if Conflict.is_shift_reduce c then "sr" else "rr")
    (Cfg.Grammar.terminal_name g c.Conflict.terminal)
    (item (Conflict.reduce_item c))
    (item (Conflict.other_item c))

exception Unmappable

let remap_derivation g remap deriv =
  let remap_prod p =
    match remap p with Some q -> q | None -> raise Unmappable
  in
  let rec go = function
    | Cfg.Derivation.Leaf s -> Cfg.Derivation.leaf s
    | Cfg.Derivation.Node { prod; children; dot; _ } ->
      Cfg.Derivation.node ?dot g (remap_prod prod) (List.map go children)
  in
  go deriv

(* Try to carry a base conflict's unifying counterexample over to the new
   session: remap its derivations to the new production numbering and accept
   only if the independent oracle validates it against the new grammar. *)
let reuse_counterexample ~oracle ~remap session (new_conflict : Conflict.t)
    (base_cr : Cex.Driver.conflict_report) =
  match base_cr.Cex.Driver.outcome, base_cr.Cex.Driver.counterexample with
  | Cex.Driver.Found_unifying, Some (Cex.Driver.Unifying u) -> (
    let g = Session.grammar session in
    match
      let deriv1 = remap_derivation g remap u.Cex.Product_search.deriv1 in
      let deriv2 = remap_derivation g remap u.Cex.Product_search.deriv2 in
      { u with Cex.Product_search.deriv1; deriv2 }
    with
    | exception _ -> None
    | u' -> (
      match Oracle.check_unifying (Lazy.force oracle) u' with
      | [] ->
        Some
          { Cex.Driver.conflict = new_conflict;
            classification = Session.classification session new_conflict;
            counterexample = Some (Cex.Driver.Unifying u');
            outcome = Cex.Driver.Found_unifying;
            elapsed = 0.0;
            configs_explored = 0;
            failure = None;
            validation = Cex.Driver.Validated;
            engine = base_cr.Cex.Driver.engine }
      | _failures -> None))
  | _ -> None

(* Mirror of the scheduler's per-conflict crash isolation. *)
let protected_conflict ~options ~deadline session conflict =
  try Cex.Driver.analyze_conflict ~options ~deadline session conflict
  with e ->
    let backtrace = Printexc.get_backtrace () in
    Cex.Driver.crashed_conflict_report session conflict e backtrace

(* ------------------------------------------------------------------ *)

(* Conflict tasks actually dispatched to the search fan-out: report-cache
   hits and delta-reused conflicts cost none, so the server's
   [conflict_tasks] stat is the work the caches and the delta path saved
   it from. *)
let note_tasks stats n =
  match stats with Some st -> Stats.add_conflict_tasks st n | None -> ()

let analyze_hot ~options ~jobs ?stats t session digest served =
  note_tasks stats (List.length (Session.conflicts session));
  let report = Scheduler.analyze_session ~options ~jobs session in
  Scheduler.store_report t.scheduler digest report;
  (report, digest, served)

(* Pick the most production-similar cached session as a reuse base.
   Candidates below half similarity are not worth diffing: the warm start
   would reseed almost nothing. *)
let best_base t next_fp =
  Scheduler.fold_sessions
    (fun digest session best ->
      let fp = fingerprint_of t digest (Session.grammar session) in
      let s = Delta.similarity fp next_fp in
      match best with
      | Some (_, _, _, s') when s' >= s -> best
      | _ when s >= 0.5 -> Some (digest, session, fp, s)
      | _ -> best)
    t.scheduler None

let analyze_delta ~options ~jobs ?stats t g digest ~base_digest ~base_session
    ~similarity ~diff ~warm =
  let clock = Scheduler.clock t.scheduler in
  let t0 = Clock.now clock in
  (* The warm start is an optimization on top of the delta path, not a
     precondition: on a fully cyclic grammar an edit invalidates every
     nonterminal's fixpoints, yet the (much more expensive) conflict
     searches below can still be skipped for unchanged item pairs. *)
  let session, seeded_nonterminals =
    match warm with
    | Some (analysis, (wstats : Cfg.Analysis.warm_stats)) ->
      ( Session.create ~clock ~analysis g,
        wstats.Cfg.Analysis.seeded_nonterminals )
    | None -> (Session.create ~clock g, 0)
  in
  let total_nonterminals = diff.Delta.total_nonterminals in
  let trace = Session.trace session in
  Trace.span trace "delta" (Clock.now clock -. t0);
  Trace.count trace "delta" "seeded_nonterminals" seeded_nonterminals;
  Trace.count trace "delta" "total_nonterminals" total_nonterminals;
  (* Index the base report's conflicts by signature; first match wins and is
     consumed, so duplicated signatures cannot fan one counterexample out to
     several conflicts. *)
  let base_index = Hashtbl.create 16 in
  (match Scheduler.find_report t.scheduler base_digest with
  | Some base_report ->
    let base_g = Session.grammar base_session in
    List.iter
      (fun (cr : Cex.Driver.conflict_report) ->
        let s = conflict_signature base_g cr.Cex.Driver.conflict in
        if not (Hashtbl.mem base_index s) then Hashtbl.add base_index s cr)
      base_report.Cex.Driver.conflict_reports
  | None -> ());
  let oracle = lazy (Oracle.of_session session) in
  let remap = diff.Delta.remap_production in
  let conflicts = Array.of_list (Session.conflicts session) in
  let reused =
    Array.map
      (fun conflict ->
        let s = conflict_signature g conflict in
        match Hashtbl.find_opt base_index s with
        | Some base_cr -> (
          match
            reuse_counterexample ~oracle ~remap session conflict base_cr
          with
          | Some cr ->
            Hashtbl.remove base_index s;
            Some cr
          | None -> None)
        | None -> None)
      conflicts
  in
  let deadline =
    Deadline.budget clock options.Cex.Driver.cumulative_timeout
  in
  let fresh_jobs =
    Array.to_list
      (Array.mapi
         (fun i conflict ->
           match reused.(i) with Some _ -> None | None -> Some (i, conflict))
         conflicts)
    |> List.filter_map Fun.id
  in
  note_tasks stats (List.length fresh_jobs);
  let fresh_crs =
    Scheduler.map ~jobs
      (fun (i, conflict) ->
        (i, protected_conflict ~options ~deadline session conflict))
      fresh_jobs
  in
  let crs =
    Array.mapi
      (fun i reused_cr ->
        match reused_cr with
        | Some cr -> cr
        | None -> List.assoc i fresh_crs)
      reused
  in
  let n_reused =
    Array.fold_left
      (fun n r -> if Option.is_some r then n + 1 else n)
      0 reused
  in
  Trace.count trace "delta" "reused_conflicts" n_reused;
  Trace.count trace "delta" "searched_conflicts" (List.length fresh_jobs);
  let report =
    { Cex.Driver.table = Session.table session;
      conflict_reports = Array.to_list crs;
      total_elapsed = Clock.now clock -. t0;
      metrics = Session.metrics session }
  in
  Scheduler.store_session t.scheduler digest session;
  Scheduler.store_report t.scheduler digest report;
  ( report,
    digest,
    Delta
      { base_digest;
        similarity;
        seeded_nonterminals;
        total_nonterminals;
        reused_conflicts = n_reused;
        searched_conflicts = List.length fresh_jobs } )

let analyze_cold ~options ~jobs ?stats t g digest =
  let clock = Scheduler.clock t.scheduler in
  let session = Session.create ~clock g in
  Scheduler.store_session t.scheduler digest session;
  analyze_hot ~options ~jobs ?stats t session digest Cold

let analyze t ?options ?jobs ?(incremental = true) ?stats g =
  let options =
    Option.value ~default:(Scheduler.options t.scheduler) options
  in
  let jobs = Option.value ~default:(Scheduler.jobs t.scheduler) jobs in
  let digest = Cache.digest g in
  match Scheduler.find_report t.scheduler digest with
  | Some report -> (report, digest, Report_cache)
  | None -> (
    match Scheduler.find_session t.scheduler digest with
    | Some session ->
      Trace.count (Session.trace session) "session" "cache_hits" 1;
      analyze_hot ~options ~jobs ?stats t session digest Session_cache
    | None ->
      if not incremental then analyze_cold ~options ~jobs ?stats t g digest
      else begin
        let next_fp = fingerprint_of t digest g in
        match best_base t next_fp with
        | None -> analyze_cold ~options ~jobs ?stats t g digest
        | Some (base_digest, base_session, base_fp, similarity) ->
          let diff = Delta.diff ~base:base_fp ~next:next_fp in
          if not diff.Delta.compatible then
            analyze_cold ~options ~jobs ?stats t g digest
          else
            let warm =
              Delta.warm_analysis ~base:(Session.analysis base_session) ~diff
                g
            in
            analyze_delta ~options ~jobs ?stats t g digest ~base_digest
              ~base_session ~similarity ~diff ~warm
      end)
