(** Delta-aware analysis on top of the batch scheduler's caches.

    Every grammar that reaches the server goes through {!analyze}, which
    picks the cheapest sound path to a full {!Cex.Driver.report}:

    + {e report cache hit} — the digest already has a finished report;
    + {e session cache hit} — the session (automaton, table, conflicts) is
      hot, only the conflict searches run;
    + {e delta reuse} — no exact match, but a cached session's grammar is
      production-level similar ({!Cex_session.Delta}): conflicts whose item
      pair is textually unchanged reuse the base's {e unifying}
      counterexamples after the independent oracle re-validates them against
      the {e new} session, and — when any nonterminal's forward production
      subgraph survives the edit — the static analysis is warm-started from
      the base's fixpoints (on a fully cyclic grammar nothing survives, but
      the conflict reuse above still applies);
    + {e cold} — build everything from scratch.

    Reuse invariants (also documented in DESIGN.md §14):

    - only [Found_unifying] outcomes are reused — a unifying counterexample
      is a positive certificate the oracle can re-check in isolation.
      Universal claims ([No_unifying_exists]) and budget artifacts
      ([Search_timeout], [Skipped_search], [Search_crashed]) are always
      re-searched;
    - every reused counterexample is re-validated by {!Cex_validate.Oracle}
      {e in the new session} before it is accepted; an oracle failure falls
      back to a fresh search for that conflict;
    - conflicts are matched by (kind, terminal name, item texts), never by
      state number, so automaton renumbering cannot smuggle a counterexample
      onto the wrong conflict. *)

type t

val create : Cex_service.Scheduler.t -> t
(** Share the scheduler's session/report caches and clock. *)

val scheduler : t -> Cex_service.Scheduler.t

type reuse = {
  base_digest : string;  (** content address of the session reused from *)
  similarity : float;  (** {!Cex_session.Delta.similarity} to the base *)
  seeded_nonterminals : int;
  total_nonterminals : int;
  reused_conflicts : int;
  searched_conflicts : int;
}

type served =
  | Report_cache  (** finished report returned as-is *)
  | Session_cache  (** hot session, fresh conflict searches *)
  | Delta of reuse  (** warm analysis seeded from a similar session *)
  | Cold

val served_string : served -> string
(** ["report_cache"], ["session_cache"], ["delta"], ["cold"]. *)

val analyze :
  t ->
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?incremental:bool ->
  ?stats:Cex_service.Stats.t ->
  Cfg.Grammar.t ->
  Cex.Driver.report * string * served
(** Analyze one grammar, returning the report, its digest and how it was
    served. [incremental:false] (default [true]) disables the delta path —
    the exact-digest caches still apply. The session's trace collector
    receives a ["delta"] stage (warm-start span plus
    [seeded_nonterminals] / [reused_conflicts] / [searched_conflicts]
    counters) on the delta path, so the reuse ratio is visible in the
    report's [metrics]. [stats], when given, records the conflict search
    tasks actually dispatched — cache hits and delta-reused conflicts cost
    no task, so the server's [conflict_tasks] counter measures work saved
    by reuse against the [conflicts] it answered for. *)
