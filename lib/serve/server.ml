module Json = Cex_service.Json
module Json_report = Cex_service.Json_report
module Scheduler = Cex_service.Scheduler
module Stats = Cex_service.Stats
module Session = Cex_session.Session
module Clock = Cex_session.Clock

type t = {
  incr : Incremental.t;
  stats : Stats.t;
  clock : Clock.t;
  jobs : int;
  queue_limit : int;
  mutable draining : bool;
}

let create ?options ?jobs ?(cache_capacity = 128) ?(cache_shards = 4)
    ?(queue_limit = 64) ?(clock = Clock.system) () =
  let scheduler =
    Scheduler.create ?options ?jobs ~cache_capacity ~cache_shards ~clock ()
  in
  { incr = Incremental.create scheduler;
    stats = Stats.create ~clock ~jobs:(Scheduler.jobs scheduler) ();
    clock;
    jobs = Scheduler.jobs scheduler;
    queue_limit = max 1 queue_limit;
    draining = false }

let scheduler t = Incremental.scheduler t.incr
let draining t = t.draining

let stats_json t =
  let sched = scheduler t in
  Json_report.stats_to_json
    (Stats.finish t.stats
       ~session_cache:(Scheduler.session_cache_counters sched)
       ~session_shards:(Scheduler.session_shard_counters sched)
       ~report_cache:(Scheduler.report_cache_counters sched))

(* ------------------------------------------------------------------ *)
(* The cross-check normal form: drop per-run noise (timings, search-effort
   counters, oracle verdicts — the delta path validates reused
   counterexamples, the cold path does not run the oracle at all) and zero
   any remaining float, leaving exactly the semantic content two runs must
   agree on: conflict identity, classification, outcome, counterexample. *)
let rec cross_check_normal_form = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           match k with
           | "elapsed" | "configs_explored" | "validation" -> None
           | _ -> Some (k, cross_check_normal_form v))
         fields)
  | Json.List xs -> Json.List (List.map cross_check_normal_form xs)
  | Json.Float _ -> Json.Float 0.0
  | j -> j

let conflicts_json report =
  match Json.member "conflicts" (Json_report.report_to_json report) with
  | Some j -> cross_check_normal_form j
  | None -> Json.Null

let cross_check t ~options report g =
  let fresh = Session.create ~clock:t.clock g in
  let cold_report = Scheduler.analyze_session ~options ~jobs:t.jobs fresh in
  let a = conflicts_json report and b = conflicts_json cold_report in
  let equal = String.equal (Json.to_string ~minify:true a) (Json.to_string ~minify:true b) in
  Json.Obj
    (("equal", Json.Bool equal)
    ::
    (if equal then []
     else [ ("incremental", a); ("from_scratch", b) ]))

let reuse_json (r : Incremental.reuse) =
  Json.Obj
    [ ("base_digest", Json.String r.Incremental.base_digest);
      ("similarity", Json.Float r.Incremental.similarity);
      ("seeded_nonterminals", Json.Int r.Incremental.seeded_nonterminals);
      ("total_nonterminals", Json.Int r.Incremental.total_nonterminals);
      ("reused_conflicts", Json.Int r.Incremental.reused_conflicts);
      ("searched_conflicts", Json.Int r.Incremental.searched_conflicts) ]

let handle_analyze t (a : Protocol.analyze) =
  if t.draining then
    Protocol.error ~id:a.Protocol.id Protocol.Shutting_down
      "server is draining; no new work accepted"
  else
    match Cfg.Spec_parser.grammar_of_string a.Protocol.spec with
    | Error msg -> Protocol.error ~id:a.Protocol.id Protocol.Parse_error msg
    | Ok g ->
      let defaults = Scheduler.options (scheduler t) in
      let options =
        { defaults with
          Cex.Driver.per_conflict_timeout =
            Option.value ~default:defaults.Cex.Driver.per_conflict_timeout
              a.Protocol.per_conflict_timeout;
          cumulative_timeout =
            Option.value ~default:defaults.Cex.Driver.cumulative_timeout
              a.Protocol.cumulative_timeout }
      in
      Stats.add_grammars t.stats 1;
      let report, digest, served =
        Incremental.analyze t.incr ~options ~jobs:t.jobs
          ~incremental:a.Protocol.incremental ~stats:t.stats g
      in
      Stats.add_conflicts t.stats
        (List.length report.Cex.Driver.conflict_reports);
      let check =
        if a.Protocol.cross_check then
          [ ("cross_check", cross_check t ~options report g) ]
        else []
      in
      let reuse =
        match served with
        | Incremental.Delta r -> [ ("reuse", reuse_json r) ]
        | _ -> []
      in
      Protocol.ok ~id:a.Protocol.id
        (("digest", Json.String digest)
        :: ("served", Json.String (Incremental.served_string served))
        :: (reuse
           @ check
           @ [ ( "result",
                 Json_report.report_to_json ~name:a.Protocol.name ~digest
                   ~from_cache:(served = Incremental.Report_cache)
                   report ) ]))

let handle_request t req =
  try
    match req with
    | Protocol.Analyze a -> handle_analyze t a
    | Protocol.Stats id -> Protocol.ok ~id [ ("stats", stats_json t) ]
    | Protocol.Ping id -> Protocol.ok ~id [ ("pong", Json.Bool true) ]
    | Protocol.Shutdown id ->
      t.draining <- true;
      Protocol.ok ~id [ ("draining", Json.Bool true) ]
  with e ->
    Protocol.error ~id:(Protocol.request_id req) Protocol.Internal_error
      (Printexc.to_string e)

let handle_line t line =
  match Protocol.parse_request line with
  | Error (id, code, msg) -> Protocol.error ?id code msg
  | Ok req -> handle_request t req

(* ------------------------------------------------------------------ *)
(* Connection loop. *)

type conn = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  mutable closed : bool;
}

let write_all conn s =
  if not conn.closed then
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write conn.fd b off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          conn.closed <- true
    in
    try go 0
    with Unix.Unix_error _ -> conn.closed <- true

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end
  else try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Split the complete lines out of a connection's read buffer. *)
let take_lines conn =
  let data = Buffer.contents conn.pending in
  Buffer.clear conn.pending;
  let rec go acc start =
    match String.index_from_opt data start '\n' with
    | Some nl ->
      go (String.sub data start (nl - start) :: acc) (nl + 1)
    | None ->
      Buffer.add_substring conn.pending data start
        (String.length data - start);
      List.rev acc
  in
  go [] 0

let read_chunk =
  let size = 65536 in
  fun conn ->
    let buf = Bytes.create size in
    match Unix.read conn.fd buf 0 size with
    | 0 ->
      (* EOF: a trailing unterminated line still counts as a request. *)
      let leftovers = take_lines conn in
      let last = Buffer.contents conn.pending in
      Buffer.clear conn.pending;
      conn.closed <- true;
      if String.length last > 0 then leftovers @ [ last ] else leftovers
    | n ->
      Buffer.add_subbytes conn.pending buf 0 n;
      take_lines conn
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      conn.closed <- true;
      []

let serve_loop t ?listener conns_in =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  let conns = ref (List.map (fun fd -> { fd; pending = Buffer.create 256; closed = false }) conns_in) in
  let queue : (float * conn * string) Queue.t = Queue.create () in
  let listener_open = ref (Option.is_some listener) in
  let stop = ref false in
  while not !stop do
    (* 1. Wait for input. *)
    let read_fds =
      (if !listener_open && not t.draining then Option.to_list listener
       else [])
      @ List.filter_map
          (fun c -> if c.closed then None else Some c.fd)
          !conns
    in
    if read_fds = [] && Queue.is_empty queue then stop := true
    else begin
      let readable, _, _ =
        if Queue.is_empty queue then
          try Unix.select read_fds [] [] 0.5
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        else ([], [], [])
        (* queued work first; poll for new input on the next pass *)
      in
      (* 2. Accept and read. *)
      List.iter
        (fun fd ->
          match listener with
          | Some l when fd = l ->
            (match Unix.accept l with
            | client, _ ->
              conns :=
                { fd = client; pending = Buffer.create 256; closed = false }
                :: !conns
            | exception Unix.Unix_error _ -> ())
          | _ -> (
            match List.find_opt (fun c -> c.fd = fd) !conns with
            | None -> ()
            | Some conn ->
              let lines = read_chunk conn in
              List.iter
                (fun line ->
                  if String.trim line <> "" then
                    if Queue.length queue >= t.queue_limit then
                      let id =
                        match Protocol.parse_request line with
                        | Ok req -> Some (Protocol.request_id req)
                        | Error (id, _, _) -> id
                      in
                      write_all conn
                        (Protocol.to_line
                           (Protocol.error ?id Protocol.Overloaded
                              "request queue is full"))
                    else begin
                      Queue.add (Clock.now t.clock, conn, line) queue;
                      Stats.note_queue_depth t.stats (Queue.length queue)
                    end)
                lines))
        readable;
      (* 3. Serve the queue in arrival order. *)
      while not (Queue.is_empty queue) do
        let enqueued, conn, line = Queue.pop queue in
        Stats.add_stage t.stats "queue_wait" (Clock.now t.clock -. enqueued);
        let response = handle_line t line in
        write_all conn (Protocol.to_line response)
      done;
      (* 4. Drop closed connections; finish a drain. *)
      conns := List.filter (fun c -> not c.closed) !conns;
      if t.draining then begin
        List.iter close_conn !conns;
        conns := [];
        stop := true
      end
      else if !conns = [] && not !listener_open then stop := true
    end
  done;
  List.iter close_conn !conns

let serve_connections t fds = serve_loop t fds

let run t endpoint =
  let listener, cleanup =
    match endpoint with
    | `Unix path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      (fd, fun () -> ())
  in
  Unix.listen listener 64;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      cleanup ())
    (fun () -> serve_loop t ~listener [])
