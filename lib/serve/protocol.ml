module Json = Cex_service.Json

type analyze = {
  id : string;
  name : string;
  spec : string;
  per_conflict_timeout : float option;
  cumulative_timeout : float option;
  incremental : bool;
  cross_check : bool;
}

type request =
  | Analyze of analyze
  | Stats of string
  | Ping of string
  | Shutdown of string

let request_id = function
  | Analyze a -> a.id
  | Stats id | Ping id | Shutdown id -> id

type error_code =
  | Bad_json
  | Bad_request
  | Parse_error
  | Overloaded
  | Shutting_down
  | Internal_error

let error_code_string = function
  | Bad_json -> "bad-json"
  | Bad_request -> "bad-request"
  | Parse_error -> "parse-error"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting-down"
  | Internal_error -> "internal-error"

let string_field json field =
  match Json.member field json with
  | Some (Json.String s) -> Some s
  | _ -> None

let float_field json field =
  match Json.member field json with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

let bool_field ~default json field =
  match Json.member field json with
  | Some (Json.Bool b) -> b
  | _ -> default

let parse_request line =
  match Json.of_string_opt line with
  | None -> Error (None, Bad_json, "request line is not valid JSON")
  | Some (Json.Obj _ as json) -> (
    let id = string_field json "id" in
    let bad message = Error (id, Bad_request, message) in
    match string_field json "op" with
    | None -> bad "missing or non-string \"op\" field"
    | Some op -> (
      match id with
      | None -> bad "missing or non-string \"id\" field"
      | Some id -> (
        match op with
        | "analyze" -> (
          match string_field json "spec" with
          | None -> bad "analyze requires a string \"spec\" field"
          | Some spec ->
            Ok
              (Analyze
                 { id;
                   name =
                     Option.value ~default:"grammar"
                       (string_field json "name");
                   spec;
                   per_conflict_timeout = float_field json "timeout";
                   cumulative_timeout = float_field json "cumulative_timeout";
                   incremental = bool_field ~default:true json "incremental";
                   cross_check = bool_field ~default:false json "cross_check"
                 }))
        | "stats" -> Ok (Stats id)
        | "ping" -> Ok (Ping id)
        | "shutdown" -> Ok (Shutdown id)
        | op -> bad (Fmt.str "unknown op %S" op))))
  | Some _ -> Error (None, Bad_json, "request line is not a JSON object")

let ok ~id fields =
  Json.Obj (("id", Json.String id) :: ("ok", Json.Bool true) :: fields)

let error ?id code message =
  Json.Obj
    [ ("id", match id with Some id -> Json.String id | None -> Json.Null);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("code", Json.String (error_code_string code));
            ("message", Json.String message) ] ) ]

let to_line json = Json.to_string ~minify:true json ^ "\n"
