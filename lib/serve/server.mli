(** The analysis daemon: a select-multiplexed connection loop feeding the
    {!Incremental} engine one request at a time.

    Concurrency model: many clients, one dispatcher. Each analyze request
    already fans its conflict searches out across the scheduler's domain
    pool, so the server runs requests sequentially and multiplexes {e I/O}
    instead — a bounded request queue with per-request queue-wait timing,
    [overloaded] responses once the queue is full, and a graceful drain on
    [shutdown] (in-flight and already-queued work completes, new work is
    refused with [shutting-down], then the loop exits).

    Fault containment mirrors the batch scheduler: a malformed line, an
    unparseable spec or an exception inside one analysis produces a
    structured error response for that request only; the loop and the other
    connections keep going. *)

type t

val create :
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?queue_limit:int ->
  ?clock:Cex_session.Clock.t ->
  unit ->
  t
(** Defaults: the scheduler's option/job defaults, cache capacity 128 over
    [cache_shards] (default 4) shards, [queue_limit] 64 pending requests,
    monotonic system clock. *)

val scheduler : t -> Cex_service.Scheduler.t
val draining : t -> bool

val handle_request : t -> Protocol.request -> Cex_service.Json.t
(** Process one parsed request synchronously (no queueing) and return its
    response. Never raises: analysis exceptions become [internal-error]
    responses. *)

val handle_line : t -> string -> Cex_service.Json.t
(** {!Protocol.parse_request} + {!handle_request}; malformed lines become
    [bad-json] / [bad-request] responses. *)

val stats_json : t -> Cex_service.Json.t
(** The [stats] operation's payload: scheduler throughput, stage timings
    (including cumulative ["queue_wait"]), and per-shard session-cache
    counters. *)

val serve_connections : t -> Unix.file_descr list -> unit
(** Drive an already-connected set of stream sockets to completion: read
    NDJSON requests, answer in arrival order, stop when every connection
    has closed or a drain completes. This is the in-process entry point
    used by the tests (over socketpairs) and by {!run}. *)

val run : t -> [ `Unix of string | `Tcp of string * int ] -> unit
(** Bind, listen and serve until a [shutdown] request drains the loop.
    [`Unix path] unlinks a stale socket file first and removes it on exit. *)
