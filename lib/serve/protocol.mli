(** The analysis server's wire protocol: newline-delimited JSON.

    Each request is one line holding one JSON object; each response is one
    line holding one JSON object. Requests carry a client-chosen ["id"]
    echoed verbatim in the response, so clients may correlate without
    assuming ordering. A response is either

    {v
    {"id": ..., "ok": true, ...operation fields...}
    {"id": ..., "ok": false, "error": {"code": ..., "message": ...}}
    v}

    Error codes are {e stable}: scripts and the CI smoke gate match on them.
    Malformed input never terminates the connection — a line that is not
    JSON, not an object, or not a known operation produces an ["ok": false]
    response (with ["id": null] when no id could be recovered) and the
    connection keeps reading. *)

type analyze = {
  id : string;
  name : string;  (** label echoed into the report; default ["grammar"] *)
  spec : string;  (** grammar text in the {!Cfg.Spec_parser} dialect *)
  per_conflict_timeout : float option;
  cumulative_timeout : float option;
  incremental : bool;  (** allow delta reuse from a cached session; default true *)
  cross_check : bool;
      (** also run the from-scratch analysis and embed an equality verdict;
          default false *)
}

type request =
  | Analyze of analyze
  | Stats of string  (** id *)
  | Ping of string  (** id *)
  | Shutdown of string  (** id: stop accepting work, drain, exit *)

val request_id : request -> string

type error_code =
  | Bad_json  (** the line is not a JSON object *)
  | Bad_request  (** unknown op / missing or ill-typed field *)
  | Parse_error  (** the spec does not parse or elaborate *)
  | Overloaded  (** request queue full; retry later *)
  | Shutting_down  (** server is draining; no new work accepted *)
  | Internal_error  (** analysis raised; detail in the message *)

val error_code_string : error_code -> string
(** The stable wire name: ["bad-json"], ["bad-request"], ["parse-error"],
    ["overloaded"], ["shutting-down"], ["internal-error"]. *)

val parse_request :
  string -> (request, string option * error_code * string) result
(** Parse one request line. [Error (id, code, message)] carries the
    request's id when one could be recovered from the malformed object. *)

val ok : id:string -> (string * Cex_service.Json.t) list -> Cex_service.Json.t
val error : ?id:string -> error_code -> string -> Cex_service.Json.t

val to_line : Cex_service.Json.t -> string
(** Minified, newline-terminated. *)
