open Cfg
open Automaton
module Session = Cex_session.Session

type t = {
  lalr : Lalr.t;
  lr0 : Lr0.t;
  g : Grammar.t;
  analysis : Analysis.t;
  kbits : int;
  first_id : int array;
  next_code : int array;
  dot : int array;
  prod : int array;
  lhs : int array;
  rhs_len : int array;
  exp_prods : int array array;
  region : Bytes.t;
}

let of_lalr lalr =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let n_ids = Lr0.n_item_ids lr0 in
  let kbits =
    let rec go b = if 1 lsl b >= n_ids then b else go (b + 1) in
    go 1
  in
  let first_id =
    Array.init (Grammar.n_productions g) (fun p ->
        Lr0.item_id lr0 (Item.make p 0))
  in
  let next_code = Array.make n_ids (-1) in
  let dot = Array.make n_ids 0 in
  let prod = Array.make n_ids 0 in
  let lhs = Array.make n_ids 0 in
  let rhs_len = Array.make n_ids 0 in
  let exp_prods = Array.make n_ids [||] in
  for id = 0 to n_ids - 1 do
    let item = Lr0.item_of_id lr0 id in
    dot.(id) <- item.Item.dot;
    prod.(id) <- item.Item.prod;
    lhs.(id) <- Lr0.lhs_of_id lr0 id;
    rhs_len.(id) <- Lr0.rhs_length_of_id lr0 id;
    match Lr0.next_symbol_of_id lr0 id with
    | None -> next_code.(id) <- -1
    | Some (Symbol.Terminal t) -> next_code.(id) <- 2 * t
    | Some (Symbol.Nonterminal nt) ->
      next_code.(id) <- (2 * nt) + 1;
      exp_prods.(id) <- Array.of_list (Grammar.productions_of g nt)
  done;
  { lalr;
    lr0;
    g;
    analysis = Lalr.analysis lalr;
    kbits;
    first_id;
    next_code;
    dot;
    prod;
    lhs;
    rhs_len;
    exp_prods;
    region = Lr0.forward_reach lr0 }

(* Memoized per session: the build walks the whole id space and the
   forward-reachability BFS touches every automaton edge, so it runs once
   under the cell lock and every conflict (on any domain) reuses it. *)
type cell = {
  lock : Mutex.t;
  mutable built : t option;
}

let cell_key : cell Session.Store.key = Session.Store.key ()

let of_session session =
  let cell =
    Session.shared session cell_key (fun () ->
        { lock = Mutex.create (); built = None })
  in
  Mutex.lock cell.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cell.lock)
    (fun () ->
      match cell.built with
      | Some sr -> sr
      | None ->
        let sr = of_lalr (Session.lalr session) in
        cell.built <- Some sr;
        sr)

let pack sr state id = (state lsl sr.kbits) lor id
let state_of sr v = v lsr sr.kbits
let id_of sr v = v land ((1 lsl sr.kbits) - 1)
let in_region sr state id = Lr0.reach_mem sr.lr0 sr.region state id
