(** The conflict-first SR-automaton walk for ambiguity witnesses.

    Two walkers start on the SR-automaton at the conflict vertex pair — one
    on the reduce item, one on the shift (or second reduce) item — and move
    in lockstep over the nondeterministic tables: shift steps consume the
    same symbol on both stacks, expansion steps open a production below a
    nonterminal, reduction steps close one, and the two retreat moves grow
    the shared left context. The walk succeeds when both stacks have
    collapsed to a single edge over the same nonterminal with two distinct
    derivation trees — an ambiguity witness through the conflict.

    The move semantics, cost discipline and prunings deliberately coincide
    with [Product_search] (same admissible moves, same lookahead and FIRST
    prunings, same shortest-path restriction via [path_states], identical
    exploration order): the two engines decide every conflict identically,
    which is what makes their agreement a meaningful differential check of
    two independent implementations — persistent cons-cell stacks against
    packed arrays, a ring-bucket frontier against the Dial queue, a
    different visited table. A divergence is a bug in one of them, caught
    for free by the fuzzer and the corpus agreement gate. *)

open Cfg
open Automaton

type costs = {
  step : int;  (** lockstep shift/goto over one symbol *)
  rstep : int;  (** retreat over the accessing symbol *)
  expand : int;  (** open a production (expansion edge) *)
  re_expand : int;  (** re-open a production already on the stack *)
  reduce : int;  (** close a production *)
  detour : int;  (** surcharge for retreating off the shortest path *)
}

val default_costs : costs

type stats = {
  nodes_explored : int;
  elapsed : float;  (** seconds, on the deadline's clock *)
}

type ambiguity = {
  nonterminal : int;  (** the ambiguous nonterminal *)
  sentential_form : Symbol.t list;  (** frontier shared by both derivations *)
  deriv1 : Derivation.t;  (** derivation completing the reduce item *)
  deriv2 : Derivation.t;  (** derivation completing the other conflict item *)
}

type outcome =
  | Ambiguous of ambiguity * stats
  | Timeout of stats  (** wall deadline or node budget exhausted *)
  | Exhausted of stats
      (** walk space exhausted under the shortest-path restriction (or, with
          [extended:true], outright) without a witness *)

val search :
  ?costs:costs ->
  ?extended:bool ->
  ?deadline:Cex_session.Deadline.t ->
  ?trace:Cex_session.Trace.sink ->
  ?max_nodes:int ->
  Sr_automaton.t ->
  conflict:Conflict.t ->
  path_states:int list ->
  outcome
(** Walk outward from [conflict]. [path_states] is the conflict's shortest
    lookahead-sensitive path ({!Cex.Lookahead_path.states_on_path} upstream);
    retreats leave it only under [extended], at [detour] surcharge. The
    deadline is checked on entry and polled every
    {!Cex_session.Deadline.poll_interval} nodes; expiry or exceeding
    [max_nodes] (default 400k) yields {!Timeout}. Emits [nodes_explored]
    and [queue_pushes] counters for the ["search"] stage into [trace] —
    callers namespace the sink ({!Cex_session.Trace.prefixed}) to keep
    engines apart. *)
