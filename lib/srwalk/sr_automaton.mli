(** SR-automaton structures for the conflict-first ambiguity walk
    (Quaglia, "Walking on SR-automata to detect grammar ambiguity").

    The SR-automaton is a view of the nondeterministic LR tables: vertices
    are the [(state, interned item id)] pairs of the session's LR(0)
    automaton, shift/goto edges advance an item into the successor state,
    and expansion edges step from an item with a nonterminal after the dot
    to the initial items of that nonterminal's productions. Nothing is
    re-derived from the grammar: every array below is a flat re-indexing of
    the session's existing [Lr0]/[Lalr] artifacts over the same interned id
    space, plus the forward-reachable region bitmap
    ({!Automaton.Lr0.forward_reach}) that delimits the automaton's live
    vertices.

    One structure is memoized per session ({!of_session}); every conflict
    walked through the session shares it. *)

open Cfg
open Automaton

type t = private {
  lalr : Lalr.t;
  lr0 : Lr0.t;
  g : Grammar.t;
  analysis : Analysis.t;
  kbits : int;  (** bits of a packed vertex holding the item id *)
  first_id : int array;  (** production -> id of its initial item *)
  next_code : int array;
      (** item id -> encoded symbol after the dot: -1 for a reduce item,
          [2t] for terminal [t], [2nt + 1] for nonterminal [nt] *)
  dot : int array;  (** item id -> dot position *)
  prod : int array;  (** item id -> production index *)
  lhs : int array;  (** item id -> production's left-hand side *)
  rhs_len : int array;  (** item id -> production's right-hand-side length *)
  exp_prods : int array array;
      (** item id -> expansion edges: the productions of the nonterminal
          after the dot ([[||]] when the next symbol is a terminal or the
          item is a reduce item) *)
  region : Bytes.t;  (** forward-reachable [(state, id)] vertices *)
}

val of_session : Cex_session.Session.t -> t
(** The session's SR-automaton, built on first use and memoized in the
    session store (mutex-guarded, so concurrent domains share one build). *)

val of_lalr : Lalr.t -> t
(** Session-free construction for tests and tools. *)

(** {2 Packed vertices} *)

val pack : t -> int -> int -> int
(** [pack sr state id]: the packed vertex [(state lsl kbits) lor id]. *)

val state_of : t -> int -> int
val id_of : t -> int -> int

val in_region : t -> int -> int -> bool
(** [in_region sr state id]: is the vertex forward-reachable from the start
    item? False only on defective tables — the [sr-unreachable-conflict]
    lint condition. *)
