open Cfg
open Automaton
module Deadline = Cex_session.Deadline
module Clock = Cex_session.Clock
module Trace = Cex_session.Trace

type costs = {
  step : int;
  rstep : int;
  expand : int;
  re_expand : int;
  reduce : int;
  detour : int;
}

(* The same empirical weights as the product search's [default_costs] (the
   bench ablation applies unchanged: the move graphs are identical), under
   the walk's own vocabulary. Keeping the values equal is load-bearing — it
   is what makes the two engines explore in the same order and hence decide
   budget-capped conflicts identically. *)
let default_costs =
  { step = 1; rstep = 1; expand = 4; re_expand = 12; reduce = 0; detour = 4 }

type stats = {
  nodes_explored : int;
  elapsed : float;
}

type ambiguity = {
  nonterminal : int;
  sentential_form : Symbol.t list;
  deriv1 : Derivation.t;
  deriv2 : Derivation.t;
}

type outcome =
  | Ambiguous of ambiguity * stats
  | Timeout of stats
  | Exhausted of stats

(* ------------------------------------------------------------------ *)
(* Persistent walker stacks: immutable cons cells with the element count and
   a left-fold hash cached per cell. The top of the stack is the head cell
   (the walker's newest vertex); the forward moves — push, pop — are O(1)
   and extend the hash incrementally, while the retreat moves rebuild the
   spine to grow the stack at the bottom. Structure sharing does the rest:
   expanding one node into twelve successors shares every unchanged cell,
   where the product search copies its packed arrays. *)

type stack =
  | Nil
  | Cell of { e : int; below : stack; len : int; h : int }

let s_len = function Nil -> 0 | Cell c -> c.len
let s_hash = function Nil -> 17 | Cell c -> c.h

let s_push st e =
  Cell { e; below = st; len = s_len st + 1; h = (s_hash st * 65599) + e }

let s_top = function Nil -> invalid_arg "Walk.s_top" | Cell c -> c.e

let rec s_bottom = function
  | Nil -> invalid_arg "Walk.s_bottom"
  | Cell { e; below = Nil; _ } -> e
  | Cell c -> s_bottom c.below

let rec s_mem e = function
  | Nil -> false
  | Cell c -> c.e = e || s_mem e c.below

let rec s_drop k st =
  if k = 0 then st
  else
    match st with
    | Nil -> invalid_arg "Walk.s_drop"
    | Cell c -> s_drop (k - 1) c.below

(* Grow the stack at the bottom: rebuild the spine above the new cell. *)
let s_grow e st =
  let rec rebuild = function
    | Nil -> s_push Nil e
    | Cell c -> s_push (rebuild c.below) c.e
  in
  rebuild st

let s_equal s1 s2 =
  let rec go s1 s2 =
    match s1, s2 with
    | Nil, Nil -> true
    | Cell c1, Cell c2 -> c1.e = c2.e && go c1.below c2.below
    | Nil, Cell _ | Cell _, Nil -> false
  in
  s_len s1 = s_len s2 && go s1 s2

(* Partial-derivation lists, newest tree at the head, with a cached count. *)
type derivs = {
  ds : Derivation.t list;
  n : int;
}

let d_empty = { ds = []; n = 0 }
let d_push dv x = { ds = x :: dv.ds; n = dv.n + 1 }
let d_grow x dv = { ds = dv.ds @ [ x ]; n = dv.n + 1 }

(* The newest [k] trees in sequence (oldest-first) order. *)
let d_newest dv k =
  let rec take acc k = function
    | _ when k = 0 -> acc
    | [] -> invalid_arg "Walk.d_newest"
    | x :: rest -> take (x :: acc) (k - 1) rest
  in
  take [] k dv.ds

let d_drop dv k =
  let rec drop k ds =
    if k = 0 then ds
    else match ds with [] -> invalid_arg "Walk.d_drop" | _ :: r -> drop (k - 1) r
  in
  { ds = drop k dv.ds; n = dv.n - k }

(* ------------------------------------------------------------------ *)

(* A walk node: one stack and one partial-derivation list per walker, plus
   the completion state. Anchors index the conflict item's cell from the
   bottom of the stack (-1 once its production has been closed), exactly the
   product search's convention, so the two engines' states correspond
   one-to-one. *)
type node = {
  stk1 : stack;
  dv1 : derivs;
  stk2 : stack;
  dv2 : derivs;
  anchor1 : int;
  anchor2 : int;
  complete1 : bool;
  complete2 : bool;
  consumed : bool;  (* the conflict terminal has been shifted *)
}

module Key = struct
  type t = node

  let equal n1 n2 =
    n1.complete1 = n2.complete1 && n1.complete2 = n2.complete2
    && n1.consumed = n2.consumed
    && n1.anchor1 = n2.anchor1 && n1.anchor2 = n2.anchor2
    && s_hash n1.stk1 = s_hash n2.stk1
    && s_hash n1.stk2 = s_hash n2.stk2
    && s_equal n1.stk1 n2.stk1
    && s_equal n1.stk2 n2.stk2

  let hash n =
    let h = (s_hash n.stk1 * 65599) + s_hash n.stk2 in
    (h * 4)
    + (if n.complete1 then 1 else 0)
    + (if n.complete2 then 2 else 0)
    + if n.consumed then 4 else 0
end

module Ktbl = Hashtbl.Make (Key)

(* ------------------------------------------------------------------ *)
(* Monotone ring-bucket frontier: an array of FIFO buckets indexed directly
   by cost, scanned by a cursor that only moves forward (every successor
   costs at least its parent, so the minimum never decreases). Two-list
   queues per bucket keep insertion order — the tie-breaking the product
   search's Dial queue uses, and therefore the same exploration order. *)
module Rbq = struct
  type 'a bucket = {
    mutable front : 'a list;
    mutable back : 'a list;
  }

  type 'a t = {
    mutable buckets : 'a bucket array;
    mutable cursor : int;
    mutable size : int;
  }

  let fresh_bucket () = { front = []; back = [] }

  let create () =
    { buckets = Array.init 16 (fun _ -> fresh_bucket ());
      cursor = 0;
      size = 0 }

  let is_empty q = q.size = 0

  let ensure q prio =
    let n = Array.length q.buckets in
    if prio >= n then begin
      let bigger =
        Array.init (max (prio + 1) (2 * n)) (fun i ->
            if i < n then q.buckets.(i) else fresh_bucket ())
      in
      q.buckets <- bigger
    end

  let add q prio x =
    if prio < 0 then invalid_arg "Walk.Rbq.add";
    ensure q prio;
    let b = q.buckets.(prio) in
    b.back <- x :: b.back;
    q.size <- q.size + 1;
    if prio < q.cursor then q.cursor <- prio

  let pop q =
    if q.size = 0 then None
    else begin
      while
        let b = q.buckets.(q.cursor) in
        b.front == [] && b.back == []
      do
        q.cursor <- q.cursor + 1
      done;
      let b = q.buckets.(q.cursor) in
      (match b.front with
      | [] ->
        b.front <- List.rev b.back;
        b.back <- []
      | _ :: _ -> ());
      match b.front with
      | [] -> assert false
      | x :: rest ->
        b.front <- rest;
        q.size <- q.size - 1;
        Some (q.cursor, x)
    end
end

(* ------------------------------------------------------------------ *)

(* Per-conflict walk context over the shared SR-automaton. *)
type ctx = {
  sr : Sr_automaton.t;
  costs : costs;
  terminal : int;
  terminal_code : int;  (* [2 * terminal], the shift-step code *)
  on_path : bool array;
  extended : bool;
  is_shift_reduce : bool;
  shift_dot : int option;
}

let id_of ctx v = Sr_automaton.id_of ctx.sr v
let state_of ctx v = Sr_automaton.state_of ctx.sr v
let pack ctx s id = Sr_automaton.pack ctx.sr s id
let code_of ctx v = ctx.sr.Sr_automaton.next_code.(id_of ctx v)
let dot_of ctx v = ctx.sr.Sr_automaton.dot.(id_of ctx v)

let lookahead_of ctx v =
  Lalr.lookahead_of_id ctx.sr.Sr_automaton.lalr (state_of ctx v) (id_of ctx v)

(* The terminal the lockstep walk must produce next, if the other walker's
   top already determines it. *)
let hint_of ctx other_top =
  let c = code_of ctx other_top in
  if c >= 0 && c land 1 = 0 then Some (c lsr 1) else None

(* Can an expansion of production [p] start with terminal [t], or vanish? *)
let can_start_with ctx p t =
  let set, nullable =
    Analysis.first_of_prod ctx.sr.Sr_automaton.analysis ~prod:p ~from:0
  in
  nullable || Bitset.mem set t

(* ------------------------------------------------------------------ *)
(* Moves. Each returns (cost delta, successor node), accumulated in the
   same order as the product search's successor list so the two frontiers
   pop identically. *)

(* Lockstep shift/goto: both walkers' tops face the same symbol. *)
let shift_step ctx nd =
  let t1 = s_top nd.stk1 and t2 = s_top nd.stk2 in
  let c1 = code_of ctx t1 and c2 = code_of ctx t2 in
  if c1 < 0 || c1 <> c2 then []
  else begin
    let allowed = nd.consumed || c1 = ctx.terminal_code in
    if not allowed then []
    else begin
      let sym =
        if c1 land 1 = 0 then Symbol.Terminal (c1 lsr 1)
        else Symbol.Nonterminal (c1 lsr 1)
      in
      match
        Lr0.transition ctx.sr.Sr_automaton.lr0 (state_of ctx t1) sym,
        Lr0.transition ctx.sr.Sr_automaton.lr0 (state_of ctx t2) sym
      with
      | Some s1', Some s2' ->
        let leaf = Derivation.leaf sym in
        [ ( ctx.costs.step,
            { nd with
              stk1 = s_push nd.stk1 (pack ctx s1' (id_of ctx t1 + 1));
              dv1 = d_push nd.dv1 leaf;
              stk2 = s_push nd.stk2 (pack ctx s2' (id_of ctx t2 + 1));
              dv2 = d_push nd.dv2 leaf;
              consumed = true } ) ]
      | None, _ | _, None -> []
    end
  end

(* Expansion edge: open a production under the nonterminal at one top. *)
let expand_steps ctx nd ~side =
  let stk = if side = 1 then nd.stk1 else nd.stk2 in
  let l = s_top stk in
  let c = code_of ctx l in
  if c < 0 || c land 1 = 0 then []
  else begin
    let hint =
      if not nd.consumed then Some ctx.terminal
      else hint_of ctx (s_top (if side = 1 then nd.stk2 else nd.stk1))
    in
    let prods = ctx.sr.Sr_automaton.exp_prods.(id_of ctx l) in
    let moves = ref [] in
    for k = Array.length prods - 1 downto 0 do
      let p = prods.(k) in
      let pruned =
        match hint with
        | Some t -> not (can_start_with ctx p t)
        | None -> false
      in
      if not pruned then begin
        let entry =
          pack ctx (state_of ctx l) ctx.sr.Sr_automaton.first_id.(p)
        in
        let cost =
          if s_mem entry stk then ctx.costs.re_expand else ctx.costs.expand
        in
        let nd' =
          if side = 1 then { nd with stk1 = s_push nd.stk1 entry }
          else { nd with stk2 = s_push nd.stk2 entry }
        in
        moves := (cost, nd') :: !moves
      end
    done;
    !moves
  end

(* Close a production on one side: pop its right-hand side, advance the
   context cell over the reduced nonterminal, and build the tree node. *)
let reduce_steps ctx nd ~side =
  let stk, dv, anchor =
    if side = 1 then nd.stk1, nd.dv1, nd.anchor1
    else nd.stk2, nd.dv2, nd.anchor2
  in
  let l = s_top stk in
  if code_of ctx l >= 0 then []
  else begin
    let lid = id_of ctx l in
    let len_rhs = ctx.sr.Sr_automaton.rhs_len.(lid) in
    let m = s_len stk in
    if m < len_rhs + 2 then []
    else begin
      (* Lookahead admissibility: the determined next terminal (or, before
         the conflict terminal is consumed, the conflict terminal itself)
         must be in the reduce item's lookahead. *)
      let la = lookahead_of ctx l in
      let other_top = s_top (if side = 1 then nd.stk2 else nd.stk1) in
      let ok =
        (match hint_of ctx other_top with
        | Some t -> Bitset.mem la t
        | None -> true)
        && (nd.consumed || Bitset.mem la ctx.terminal)
      in
      if not ok then []
      else begin
        let lhs = ctx.sr.Sr_automaton.lhs.(lid) in
        let keep = m - len_rhs - 1 in
        (* Dropping the production's cells leaves the context cell — the
           item whose dot faces the reduced nonterminal — on top. *)
        let rest = s_drop (len_rhs + 1) stk in
        let ctx_entry = s_top rest in
        match
          Lr0.transition ctx.sr.Sr_automaton.lr0 (state_of ctx ctx_entry)
            (Symbol.Nonterminal lhs)
        with
        | None -> assert false
        | Some s' ->
          let children = d_newest dv len_rhs in
          let completes_conflict = anchor >= 0 && anchor >= keep in
          let dot =
            if not completes_conflict then None
            else if side = 1 then Some len_rhs
            else
              match ctx.shift_dot with
              | Some d -> Some d
              | None -> Some len_rhs
          in
          let tree =
            Derivation.node ?dot ctx.sr.Sr_automaton.g
              ctx.sr.Sr_automaton.prod.(lid) children
          in
          let dv' = d_push (d_drop dv len_rhs) tree in
          let stk' = s_push rest (pack ctx s' (id_of ctx ctx_entry + 1)) in
          let anchor' = if completes_conflict then -1 else anchor in
          let nd' =
            if side = 1 then
              { nd with
                stk1 = stk'; dv1 = dv'; anchor1 = anchor';
                complete1 = nd.complete1 || completes_conflict }
            else
              { nd with
                stk2 = stk'; dv2 = dv'; anchor2 = anchor';
                complete2 = nd.complete2 || completes_conflict }
          in
          [ (ctx.costs.reduce, nd') ]
      end
    end
  end

(* How a side ending in a reduce item must be prepared before the reduction
   can close: with [m] cells and a right-hand side of length [l],
   [m = l + 1] needs only the context cell (a context step on this side)
   and [m < l + 1] needs more symbols (retreats, unblocked by a context
   step on whichever side sits at dot 0). *)
type preparation =
  | Ready
  | Needs_context
  | Needs_symbols

let preparation ctx stk =
  let l = s_top stk in
  if code_of ctx l >= 0 then Ready
  else begin
    let len_rhs = ctx.sr.Sr_automaton.rhs_len.(id_of ctx l) in
    let m = s_len stk in
    if m >= len_rhs + 2 then Ready
    else if m = len_rhs + 1 then Needs_context
    else Needs_symbols
  end

(* Retreat: grow both stacks at the bottom over the accessing symbol, into a
   common predecessor state holding both retreated items. *)
let retreats ctx nd =
  if s_len nd.stk1 = 0 || s_len nd.stk2 = 0 then []
  else begin
    let f1 = s_bottom nd.stk1 and f2 = s_bottom nd.stk2 in
    if dot_of ctx f1 = 0 || dot_of ctx f2 = 0 then []
    else begin
      let lr0 = ctx.sr.Sr_automaton.lr0 in
      let head_state = Lr0.state lr0 (state_of ctx f1) in
      match head_state.Lr0.accessing with
      | None -> []
      | Some z ->
        let p1 = id_of ctx f1 - 1 and p2 = id_of ctx f2 - 1 in
        List.filter_map
          (fun s0 ->
            if
              not
                (Lr0.has_item_id lr0 s0 p1 && Lr0.has_item_id lr0 s0 p2
                (* The SR-automaton's live region: a vertex the start item
                   cannot reach can never occur in a parse, so retreating
                   into it is wasted work. On a well-formed table every
                   state item is in the region — the prune only bites on
                   the defective tables the lint rule flags. *)
                && Sr_automaton.in_region ctx.sr s0 p1)
            then None
            else if
              (not nd.complete1)
              && not
                   (Bitset.mem
                      (Lalr.lookahead_of_id ctx.sr.Sr_automaton.lalr s0 p1)
                      ctx.terminal)
            then None
            else begin
              let off_path = not ctx.on_path.(s0) in
              if off_path && not ctx.extended then None
              else begin
                let cost =
                  ctx.costs.rstep + if off_path then ctx.costs.detour else 0
                in
                let leaf = Derivation.leaf z in
                let bump a = if a < 0 then a else a + 1 in
                Some
                  ( cost,
                    { nd with
                      stk1 = s_grow (pack ctx s0 p1) nd.stk1;
                      dv1 = d_grow leaf nd.dv1;
                      stk2 = s_grow (pack ctx s0 p2) nd.stk2;
                      dv2 = d_grow leaf nd.dv2;
                      anchor1 = bump nd.anchor1;
                      anchor2 = bump nd.anchor2 } )
              end
            end)
          (Lr0.predecessors lr0 (state_of ctx f1))
    end
  end

(* Context step: grow one stack at the bottom with an item of the same state
   whose dot faces the bottom item's left-hand side. *)
let context_steps ctx nd ~side =
  let stk = if side = 1 then nd.stk1 else nd.stk2 in
  if s_len stk = 0 then []
  else begin
    let f = s_bottom stk in
    if dot_of ctx f <> 0 then []
    else begin
      let lr0 = ctx.sr.Sr_automaton.lr0 in
      let f_state = state_of ctx f in
      let lhs = ctx.sr.Sr_automaton.lhs.(id_of ctx f) in
      (* While the conflict reduction is still pending on this side, the
         conflict terminal must be able to follow the reduced nonterminal in
         the grown context (its followL) — the same sound pruning as the
         product search. *)
      let conflict_reduction_pending =
        if side = 1 then not nd.complete1
        else (not ctx.is_shift_reduce) && not nd.complete2
      in
      List.filter_map
        (fun (ctx_item : Item.t) ->
          let ctx_id = Lr0.item_id lr0 ctx_item in
          let follow =
            Analysis.follow_l ctx.sr.Sr_automaton.analysis
              (Grammar.production ctx.sr.Sr_automaton.g
                 ctx.sr.Sr_automaton.prod.(ctx_id))
              ~dot:ctx_item.Item.dot
              (Lalr.lookahead_of_id ctx.sr.Sr_automaton.lalr f_state ctx_id)
          in
          if
            conflict_reduction_pending
            && not (Bitset.mem follow ctx.terminal)
          then None
          else begin
            let entry = pack ctx f_state ctx_id in
            let bump a = if a < 0 then a else a + 1 in
            let cost =
              if s_mem entry stk then ctx.costs.re_expand
              else ctx.costs.expand
            in
            let nd' =
              if side = 1 then
                { nd with stk1 = s_grow entry nd.stk1;
                  anchor1 = bump nd.anchor1 }
              else
                { nd with stk2 = s_grow entry nd.stk2;
                  anchor2 = bump nd.anchor2 }
            in
            Some (cost, nd')
          end)
        (Lr0.items_with_next lr0 f_state (Symbol.Nonterminal lhs))
    end
  end

let successors ctx nd =
  let moves = ref [] in
  let push l = moves := l @ !moves in
  push (shift_step ctx nd);
  push (expand_steps ctx nd ~side:1);
  push (expand_steps ctx nd ~side:2);
  push (reduce_steps ctx nd ~side:1);
  push (reduce_steps ctx nd ~side:2);
  let prep1 = preparation ctx nd.stk1 and prep2 = preparation ctx nd.stk2 in
  (match prep1 with
  | Needs_context -> push (context_steps ctx nd ~side:1)
  | Needs_symbols | Ready -> ());
  (match prep2 with
  | Needs_context -> push (context_steps ctx nd ~side:2)
  | Needs_symbols | Ready -> ());
  if prep1 = Needs_symbols || prep2 = Needs_symbols then begin
    let f1 = s_bottom nd.stk1 and f2 = s_bottom nd.stk2 in
    if dot_of ctx f1 > 0 && dot_of ctx f2 > 0 then push (retreats ctx nd)
    else begin
      if dot_of ctx f1 = 0 then push (context_steps ctx nd ~side:1);
      if dot_of ctx f2 = 0 then push (context_steps ctx nd ~side:2)
    end
  end;
  !moves

(* Success: both stacks have collapsed to one edge over the same
   nonterminal, carrying two distinct trees. *)
let success ctx nd =
  if not (nd.complete1 && nd.complete2) then None
  else if
    s_len nd.stk1 <> 2 || s_len nd.stk2 <> 2 || nd.dv1.n <> 1 || nd.dv2.n <> 1
  then None
  else begin
    let a1 = s_bottom nd.stk1 and a2 = s_bottom nd.stk2 in
    let c1 = code_of ctx a1 and c2 = code_of ctx a2 in
    if c1 < 0 || c1 land 1 = 0 || c1 <> c2 then None
    else begin
      let d1 = List.hd nd.dv1.ds and d2 = List.hd nd.dv2.ds in
      if Derivation.equal d1 d2 then None
      else
        Some
          { nonterminal = c1 lsr 1;
            sentential_form = Derivation.leaves d1;
            deriv1 = d1;
            deriv2 = d2 }
    end
  end

(* ------------------------------------------------------------------ *)

let search ?(costs = default_costs) ?(extended = false)
    ?(deadline = Deadline.never) ?(trace = Trace.null) ?(max_nodes = 400_000)
    sr ~(conflict : Conflict.t) ~path_states =
  let clock =
    Option.value (Deadline.clock deadline) ~default:Clock.system
  in
  let started = Clock.now clock in
  let lr0 = sr.Sr_automaton.lr0 in
  let on_path = Array.make (Lr0.n_states lr0) false in
  List.iter (fun s -> on_path.(s) <- true) path_states;
  let ctx =
    { sr;
      costs;
      terminal = conflict.Conflict.terminal;
      terminal_code = 2 * conflict.Conflict.terminal;
      on_path;
      extended;
      is_shift_reduce = Conflict.is_shift_reduce conflict;
      shift_dot =
        (match conflict.Conflict.kind with
        | Conflict.Shift_reduce { shift_item; _ } -> Some shift_item.Item.dot
        | Conflict.Reduce_reduce _ -> None) }
  in
  let start_vertex item =
    pack ctx conflict.Conflict.state (Lr0.item_id lr0 item)
  in
  let initial =
    { stk1 = s_push Nil (start_vertex (Conflict.reduce_item conflict));
      dv1 = d_empty;
      stk2 = s_push Nil (start_vertex (Conflict.other_item conflict));
      dv2 = d_empty;
      anchor1 = 0;
      anchor2 = 0;
      complete1 = false;
      complete2 = false;
      consumed = false }
  in
  let visited = Ktbl.create 4096 in
  let queue = Rbq.create () in
  Rbq.add queue 0 initial;
  let explored = ref 0 in
  let pushes = ref 1 in
  let result = ref None in
  let give_up =
    ref (if Deadline.expired deadline then Some `Timeout else None)
  in
  while Option.is_none !result && Option.is_none !give_up do
    if Rbq.is_empty queue then give_up := Some `Exhausted
    else if
      !explored land Deadline.poll_mask = 0 && Deadline.expired deadline
    then give_up := Some `Timeout
    else if !explored > max_nodes then give_up := Some `Timeout
    else begin
      match Rbq.pop queue with
      | None -> assert false
      | Some (cost, nd) ->
        if not (Ktbl.mem visited nd) then begin
          Ktbl.add visited nd ();
          incr explored;
          match success ctx nd with
          | Some a -> result := Some a
          | None ->
            List.iter
              (fun (delta, nd') ->
                if not (Ktbl.mem visited nd') then begin
                  incr pushes;
                  Rbq.add queue (cost + delta) nd'
                end)
              (successors ctx nd)
        end
    end
  done;
  Trace.count trace "search" "nodes_explored" !explored;
  Trace.count trace "search" "queue_pushes" !pushes;
  let stats =
    { nodes_explored = !explored; elapsed = Clock.now clock -. started }
  in
  match !result, !give_up with
  | Some a, _ -> Ambiguous (a, stats)
  | None, Some `Timeout -> Timeout stats
  | None, Some `Exhausted -> Exhausted stats
  | None, None -> assert false
