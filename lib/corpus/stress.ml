open Cfg

(* The stress tier: grammar [i] is a pure function of [i] via a fixed RNG
   seed, so the ~10k-grammar corpus is never committed as text and every
   process regenerates it byte-identically. The generation recipe mirrors
   the differential fuzzer's (lib/validate/fuzz.ml): the first alternative
   of every nonterminal is all-terminal, making every nonterminal
   productive by construction, which the analysis pipeline assumes. The
   generator is duplicated rather than shared because the corpus library
   deliberately sits below cex_validate in the dependency order (the
   fuzzer analyses corpus grammars). *)

type band = {
  band_name : string;
  min_nonterminals : int;
  max_nonterminals : int;
  max_alts : int;
  max_rhs : int;
  ambiguous_core : bool;
}

let bands =
  [ { band_name = "small";
      min_nonterminals = 2;
      max_nonterminals = 4;
      max_alts = 3;
      max_rhs = 4;
      ambiguous_core = false };
    { band_name = "medium";
      min_nonterminals = 5;
      max_nonterminals = 9;
      max_alts = 3;
      max_rhs = 5;
      ambiguous_core = false };
    { band_name = "large";
      min_nonterminals = 10;
      max_nonterminals = 16;
      max_alts = 4;
      max_rhs = 6;
      ambiguous_core = false };
    { band_name = "ambiguous";
      min_nonterminals = 3;
      max_nonterminals = 7;
      max_alts = 3;
      max_rhs = 4;
      ambiguous_core = true } ]

let n_bands = List.length bands

let default_size = 10_000

let band_of i = List.nth bands (abs i mod n_bands)

let name i = Printf.sprintf "stress-%s-%d" (band_of i).band_name i

let terminal_names = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |]

let nonterminal_name i = Printf.sprintf "N%d" i

let gen_spec band rng =
  let n_terminals = 2 + Random.State.int rng (Array.length terminal_names - 1) in
  let n_nonterminals =
    band.min_nonterminals
    + Random.State.int rng (band.max_nonterminals - band.min_nonterminals + 1)
  in
  let gen_terminal () = terminal_names.(Random.State.int rng n_terminals) in
  let gen_symbol () =
    (* bias toward terminals so most grammars have finite languages *)
    if Random.State.int rng 10 < 6 then gen_terminal ()
    else nonterminal_name (Random.State.int rng n_nonterminals)
  in
  let gen_alt ~terminals_only =
    let len = Random.State.int rng (band.max_rhs + 1) in
    Spec_ast.alt
      (List.init len (fun _ ->
           if terminals_only then gen_terminal () else gen_symbol ()))
  in
  let gen_rule i =
    let n_alts = 1 + Random.State.int rng band.max_alts in
    (* the first alternative is all-terminal: productive by construction *)
    Spec_ast.rule (nonterminal_name i)
      (List.init n_alts (fun a -> gen_alt ~terminals_only:(a = 0)))
  in
  let rules = List.init n_nonterminals gen_rule in
  let rules =
    if not band.ambiguous_core then rules
    else
      (* Classic ambiguous binary-operator core: the start rule becomes
         [N0 : t | N0 op N0 | <generated alternatives referencing N0>], the
         textbook dangling-operator ambiguity, so this band always carries
         shift/reduce conflicts with unifying counterexamples. *)
      match rules with
      | start :: rest ->
        let t = gen_terminal () in
        let op = gen_terminal () in
        let core =
          [ Spec_ast.alt [ t ];
            Spec_ast.alt [ nonterminal_name 0; op; nonterminal_name 0 ] ]
        in
        [ Spec_ast.rule start.Spec_ast.lhs (core @ start.Spec_ast.alts) ]
        @ rest
      | [] -> rules
  in
  Spec_ast.make ~start:(nonterminal_name 0) rules

let render_spec (spec : Spec_ast.t) =
  let buf = Buffer.create 256 in
  (match spec.Spec_ast.start with
  | Some s -> Buffer.add_string buf (Printf.sprintf "%%start %s\n" s)
  | None -> ());
  List.iter
    (fun (r : Spec_ast.rule) ->
      Buffer.add_string buf r.Spec_ast.lhs;
      List.iteri
        (fun i (a : Spec_ast.alt) ->
          Buffer.add_string buf (if i = 0 then " : " else " | ");
          Buffer.add_string buf
            (if a.Spec_ast.symbols = [] then "/* empty */"
             else String.concat " " a.Spec_ast.symbols))
        r.Spec_ast.alts;
      Buffer.add_string buf " ;\n")
    spec.Spec_ast.rules;
  Buffer.contents buf

(* A generated spec can still fail elaboration (e.g. duplicate productions
   collapse a rule); retry with a derived sub-seed so [entry] is total.
   Retries are part of the fixed recipe — the same [i] replays the same
   attempt chain everywhere. *)
let rec spec_of ~attempt i =
  if attempt > 100 then
    invalid_arg
      (Printf.sprintf "Stress.entry: grammar %d failed to elaborate after \
                       100 attempts"
         i)
  else
    let rng = Random.State.make [| 0x57e5; i; attempt |] in
    let spec = gen_spec (band_of i) rng in
    match Grammar.of_spec spec with
    | Ok grammar -> (spec, grammar)
    | Error _ -> spec_of ~attempt:(attempt + 1) i

let source i = render_spec (fst (spec_of ~attempt:0 i))

let entry i = (name i, snd (spec_of ~attempt:0 i))

let seq ?(offset = 0) n =
  Seq.init n (fun k -> k) |> Seq.map (fun k -> entry (offset + k))
