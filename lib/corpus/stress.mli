(** The stress tier: an unbounded, deterministic corpus of productive-by-
    construction grammars generated from fixed seeds — never committed as
    text. Grammar [i] is a pure function of [i], so every process (CI
    shards, the soak gate, the bench harness) sees byte-identical grammars
    without shipping ~10k files.

    Entries are banded round-robin by {e automaton size} and {e ambiguity}:
    following "On LR(k)-parsers of polynomial size", LR table growth — not
    conflict count — dominates worst-case analysis cost, so the bands hold
    nonterminal/production counts (hence LR(0) state counts) in distinct
    ranges, and one band forces a classic ambiguous binary-operator core so
    conflict-heavy grammars are always represented.

    The generator mirrors the differential fuzzer's
    ({!Cex_validate.Fuzz}): every nonterminal's first alternative is
    all-terminal, so every nonterminal is productive by construction (the
    analysis pipeline assumes productivity). Seeds that still fail to
    elaborate (e.g. duplicate productions after generation) deterministically
    retry with a derived sub-seed, so {!entry} is total. *)

type band = {
  band_name : string;
  min_nonterminals : int;
  max_nonterminals : int;
  max_alts : int;  (** alternatives per nonterminal *)
  max_rhs : int;  (** symbols per alternative *)
  ambiguous_core : bool;
      (** force an [E ::= E op E | ...] rule, guaranteeing conflicts *)
}

val bands : band list
(** The four bands, in round-robin order: [small], [medium], [large],
    [ambiguous]. *)

val default_size : int
(** The nominal stress-tier size, 10_000 grammars. *)

val band_of : int -> band
(** The band of stress grammar [i] ([i mod List.length bands]). *)

val name : int -> string
(** ["stress-<band>-<i>"]. *)

val source : int -> string
(** The grammar in the {!Cfg.Spec_parser} textual format (for reproducing
    a failure outside the generator). *)

val entry : int -> string * Cfg.Grammar.t
(** [(name i, grammar i)]. Deterministic: two calls — in any process, on
    any machine — yield structurally identical grammars with equal content
    digests. *)

val seq : ?offset:int -> int -> (string * Cfg.Grammar.t) Seq.t
(** [seq ~offset n] is the lazy sequence of entries [offset] to
    [offset + n - 1]; grammars are generated on demand as the sequence is
    consumed, so a bounded-window consumer never holds more than its
    window. *)
