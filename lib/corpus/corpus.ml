(* [corpus.ml] is the library's main module; re-export the per-family grammar
   source modules so they stay visible to library users. *)
module Paper_grammars = Paper_grammars
module Ours_grammars = Ours_grammars
module Stack_grammars = Stack_grammars
module Sql_grammars = Sql_grammars
module Pascal_grammars = Pascal_grammars
module C_grammars = C_grammars
module Java_grammars = Java_grammars
module Stress = Stress

type category =
  | Ours
  | Stack
  | Bv10

type entry = {
  name : string;
  category : category;
  source : string;
  ambiguous : bool;
  paper_conflicts : int option;
  paper_unifying : int option;
  paper_nonunifying : int option;
  paper_timeouts : int option;
  paper_nonterms : int option;
  paper_prods : int option;
  paper_states : int option;
  paper_baseline_seconds : float option;
}

let entry ?conflicts ?unifying ?nonunifying ?timeouts ?nonterms ?prods ?states
    ?baseline ~ambiguous category name source =
  { name; category; source; ambiguous;
    paper_conflicts = conflicts;
    paper_unifying = unifying;
    paper_nonunifying = nonunifying;
    paper_timeouts = timeouts;
    paper_nonterms = nonterms;
    paper_prods = prods;
    paper_states = states;
    paper_baseline_seconds = baseline }

let grammar e = Cfg.Spec_parser.grammar_of_string_exn e.source

let ours =
  [ entry Ours "figure1" Paper_grammars.figure1 ~ambiguous:true ~conflicts:3
      ~unifying:3 ~nonunifying:0 ~timeouts:0 ~nonterms:3 ~prods:9 ~states:24;
    entry Ours "figure3" Paper_grammars.figure3 ~ambiguous:false ~conflicts:1
      ~unifying:0 ~nonunifying:1 ~timeouts:0 ~nonterms:4 ~prods:7 ~states:10;
    entry Ours "figure7" Paper_grammars.figure7 ~ambiguous:true ~conflicts:2
      ~unifying:2 ~nonunifying:0 ~timeouts:0 ~nonterms:4 ~prods:10 ~states:16;
    entry Ours "ambfailed01" Ours_grammars.ambfailed01 ~ambiguous:true
      ~conflicts:1 ~unifying:0 ~nonunifying:1 ~timeouts:0 ~nonterms:6 ~prods:10
      ~states:17;
    entry Ours "abcd" Ours_grammars.abcd ~ambiguous:true ~conflicts:3
      ~unifying:3 ~nonunifying:0 ~timeouts:0 ~nonterms:5 ~prods:11 ~states:22;
    entry Ours "simp2" Ours_grammars.simp2 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:10 ~prods:41 ~states:70;
    entry Ours "xi" Ours_grammars.xi ~ambiguous:true ~conflicts:6 ~unifying:6
      ~nonunifying:0 ~timeouts:0 ~nonterms:16 ~prods:41 ~states:82;
    entry Ours "eqn" Ours_grammars.eqn ~ambiguous:true ~conflicts:1 ~unifying:1
      ~nonunifying:0 ~timeouts:0 ~nonterms:14 ~prods:67 ~states:133
  ]

let stack =
  [ entry Stack "stackexc01" Stack_grammars.stackexc01 ~ambiguous:true
      ~conflicts:3 ~unifying:3 ~nonunifying:0 ~timeouts:0 ~nonterms:2 ~prods:7
      ~states:13;
    entry Stack "stackexc02" Stack_grammars.stackexc02 ~ambiguous:false
      ~conflicts:1 ~unifying:0 ~nonunifying:1 ~timeouts:0 ~nonterms:6 ~prods:11
      ~states:15;
    entry Stack "stackovf01" Stack_grammars.stackovf01 ~ambiguous:false
      ~conflicts:1 ~unifying:0 ~nonunifying:1 ~timeouts:0 ~nonterms:2 ~prods:5
      ~states:9;
    entry Stack "stackovf02" Stack_grammars.stackovf02 ~ambiguous:true
      ~conflicts:4 ~unifying:4 ~nonunifying:0 ~timeouts:0 ~nonterms:2 ~prods:5
      ~states:9;
    entry Stack "stackovf03" Stack_grammars.stackovf03 ~ambiguous:true
      ~conflicts:1 ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:2 ~prods:6
      ~states:10;
    entry Stack "stackovf04" Stack_grammars.stackovf04 ~ambiguous:false
      ~conflicts:1 ~unifying:0 ~nonunifying:1 ~timeouts:0 ~nonterms:5 ~prods:9
      ~states:13;
    entry Stack "stackovf05" Stack_grammars.stackovf05 ~ambiguous:true
      ~conflicts:1 ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:5 ~prods:10
      ~states:14;
    entry Stack "stackovf06" Stack_grammars.stackovf06 ~ambiguous:false
      ~conflicts:2 ~unifying:0 ~nonunifying:2 ~timeouts:0 ~nonterms:6 ~prods:10
      ~states:15;
    entry Stack "stackovf07" Stack_grammars.stackovf07 ~ambiguous:true
      ~conflicts:3 ~unifying:3 ~nonunifying:0 ~timeouts:0 ~nonterms:7 ~prods:12
      ~states:17;
    entry Stack "stackovf08" Stack_grammars.stackovf08 ~ambiguous:false
      ~conflicts:8 ~unifying:0 ~nonunifying:8 ~timeouts:0 ~nonterms:3 ~prods:13
      ~states:21;
    entry Stack "stackovf09" Stack_grammars.stackovf09 ~ambiguous:false
      ~conflicts:1 ~unifying:0 ~nonunifying:1 ~timeouts:0 ~nonterms:6 ~prods:12
      ~states:27;
    entry Stack "stackovf10" Stack_grammars.stackovf10 ~ambiguous:true
      ~conflicts:19 ~unifying:19 ~nonunifying:0 ~timeouts:0 ~nonterms:9
      ~prods:20 ~states:53
  ]

let bv10 =
  [ entry Bv10 "SQL.1" Sql_grammars.sql1 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:8 ~prods:23 ~states:46
      ~baseline:1.8;
    entry Bv10 "SQL.2" Sql_grammars.sql2 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:29 ~prods:81 ~states:151
      ~baseline:0.1;
    entry Bv10 "SQL.3" Sql_grammars.sql3 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:29 ~prods:81 ~states:149
      ~baseline:0.1;
    entry Bv10 "SQL.4" Sql_grammars.sql4 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:29 ~prods:81 ~states:151
      ~baseline:0.0;
    entry Bv10 "SQL.5" Sql_grammars.sql5 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:29 ~prods:81 ~states:151
      ~baseline:0.4;
    entry Bv10 "Pascal.1" Pascal_grammars.pascal1 ~ambiguous:true ~conflicts:3
      ~unifying:2 ~nonunifying:0 ~timeouts:1 ~nonterms:79 ~prods:177
      ~states:323 ~baseline:0.3;
    entry Bv10 "Pascal.2" Pascal_grammars.pascal2 ~ambiguous:true ~conflicts:5
      ~unifying:5 ~nonunifying:0 ~timeouts:0 ~nonterms:79 ~prods:177
      ~states:324 ~baseline:0.1;
    entry Bv10 "Pascal.3" Pascal_grammars.pascal3 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:79 ~prods:177
      ~states:321 ~baseline:1.2;
    entry Bv10 "Pascal.4" Pascal_grammars.pascal4 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:79 ~prods:177
      ~states:322 ~baseline:0.3;
    entry Bv10 "Pascal.5" Pascal_grammars.pascal5 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:79 ~prods:177
      ~states:322 ~baseline:0.3;
    entry Bv10 "C.1" C_grammars.c1 ~ambiguous:true ~conflicts:1 ~unifying:1
      ~nonunifying:0 ~timeouts:0 ~nonterms:64 ~prods:214 ~states:369
      ~baseline:1.3;
    entry Bv10 "C.2" C_grammars.c2 ~ambiguous:true ~conflicts:1 ~unifying:1
      ~nonunifying:0 ~timeouts:0 ~nonterms:64 ~prods:214 ~states:368
      ~baseline:3996.0;
    entry Bv10 "C.3" C_grammars.c3 ~ambiguous:true ~conflicts:4 ~unifying:4
      ~nonunifying:0 ~timeouts:0 ~nonterms:64 ~prods:214 ~states:368
      ~baseline:0.5;
    entry Bv10 "C.4" C_grammars.c4 ~ambiguous:true ~conflicts:1 ~unifying:0
      ~nonunifying:0 ~timeouts:1 ~nonterms:64 ~prods:214 ~states:369
      ~baseline:1.3;
    entry Bv10 "C.5" C_grammars.c5 ~ambiguous:true ~conflicts:1 ~unifying:1
      ~nonunifying:0 ~timeouts:0 ~nonterms:64 ~prods:214 ~states:370
      ~baseline:4.9;
    entry Bv10 "Java.1" Java_grammars.java1 ~ambiguous:true ~conflicts:1
      ~unifying:1 ~nonunifying:0 ~timeouts:0 ~nonterms:152 ~prods:351
      ~states:607 ~baseline:32.4;
    entry Bv10 "Java.2" Java_grammars.java2 ~ambiguous:true ~conflicts:1133
      ~unifying:141 ~nonunifying:0 ~timeouts:992 ~nonterms:152 ~prods:351
      ~states:606 ~baseline:0.4;
    entry Bv10 "Java.3" Java_grammars.java3 ~ambiguous:true ~conflicts:2
      ~unifying:2 ~nonunifying:0 ~timeouts:0 ~nonterms:152 ~prods:351
      ~states:608 ~baseline:35.1;
    entry Bv10 "Java.4" Java_grammars.java4 ~ambiguous:true ~conflicts:14
      ~unifying:6 ~nonunifying:2 ~timeouts:6 ~nonterms:152 ~prods:351
      ~states:608 ~baseline:6.5;
    entry Bv10 "Java.5" Java_grammars.java5 ~ambiguous:true ~conflicts:3
      ~unifying:3 ~nonunifying:0 ~timeouts:0 ~nonterms:152 ~prods:351
      ~states:607 ~baseline:3.3 ]

let java_ext =
  [ entry Ours "java-ext1" Java_grammars.java_ext1 ~ambiguous:true ~conflicts:2
      ~unifying:0 ~nonunifying:0 ~timeouts:2 ~nonterms:185 ~prods:445
      ~states:767;
    entry Ours "java-ext2" Java_grammars.java_ext2 ~ambiguous:true ~conflicts:1
      ~unifying:0 ~nonunifying:0 ~timeouts:1 ~nonterms:234 ~prods:599
      ~states:1255 ]

let all () = ours @ java_ext @ stack @ bv10

let sql_base = Sql_grammars.base

let find name =
  match List.find_opt (fun e -> String.equal e.name name) (all ()) with
  | Some e -> e
  | None -> invalid_arg (Fmt.str "Corpus.find: unknown grammar %s" name)
