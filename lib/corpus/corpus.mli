(** The evaluation corpus: every grammar of the paper's Table 1, reconstructed
    (see DESIGN.md for provenance). Each entry carries the paper's reported
    numbers as metadata for side-by-side comparison. *)

module Paper_grammars = Paper_grammars
module Ours_grammars = Ours_grammars
module Stack_grammars = Stack_grammars
module Sql_grammars = Sql_grammars
module Pascal_grammars = Pascal_grammars
module C_grammars = C_grammars
module Java_grammars = Java_grammars

module Stress = Stress
(** The deterministic generated stress tier ([lrcex batch --stress]). *)

type category =
  | Ours  (** the paper's own grammars (Table 1, first block) *)
  | Stack  (** StackOverflow / StackExchange reconstructions *)
  | Bv10  (** SQL / Pascal / C / Java with injected conflicts *)

type entry = {
  name : string;
  category : category;
  source : string;  (** the grammar, in the {!Cfg.Spec_parser} format *)
  ambiguous : bool;  (** ground truth *)
  paper_conflicts : int option;
  paper_unifying : int option;
  paper_nonunifying : int option;
  paper_timeouts : int option;
  paper_nonterms : int option;
  paper_prods : int option;
  paper_states : int option;
  paper_baseline_seconds : float option;
      (** CFGAnalyzer-variant time from Table 1's parenthesized column *)
}

val all : unit -> entry list

val find : string -> entry
(** @raise Invalid_argument on unknown names. *)

val grammar : entry -> Cfg.Grammar.t
(** Parse the entry's source (trusted; raises only on library bugs). *)

val sql_base : string
(** The conflict-free SQL base grammar (exposed for the examples). *)
