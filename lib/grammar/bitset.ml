type t = { bits : int array }

let bits_per_word = Sys.int_size

let word_count capacity = (capacity + bits_per_word - 1) / bits_per_word

let create ~capacity = { bits = Array.make (max 1 (word_count capacity)) 0 }

let empty = { bits = [||] }

let length_words s = Array.length s.bits

let mem s i =
  let w = i / bits_per_word in
  w < length_words s && s.bits.(w) land (1 lsl (i mod bits_per_word)) <> 0

let ensure s words =
  if length_words s >= words then Array.copy s.bits
  else begin
    let bits = Array.make words 0 in
    Array.blit s.bits 0 bits 0 (length_words s);
    bits
  end

let add s i =
  if mem s i then s
  else begin
    let w = i / bits_per_word in
    let bits = ensure s (w + 1) in
    bits.(w) <- bits.(w) lor (1 lsl (i mod bits_per_word));
    { bits }
  end

let singleton i = add empty i

let of_list is = List.fold_left add empty is

let remove s i =
  if not (mem s i) then s
  else begin
    let bits = Array.copy s.bits in
    let w = i / bits_per_word in
    bits.(w) <- bits.(w) land lnot (1 lsl (i mod bits_per_word));
    { bits }
  end

let union a b =
  let big, small = if length_words a >= length_words b then a, b else b, a in
  (* Avoid allocation when [small] adds nothing; common in fixpoints. *)
  let adds_nothing =
    let rec check w =
      w >= length_words small
      || (small.bits.(w) lor big.bits.(w) = big.bits.(w) && check (w + 1))
    in
    check 0
  in
  if adds_nothing then big
  else begin
    let bits = Array.copy big.bits in
    for w = 0 to length_words small - 1 do
      bits.(w) <- bits.(w) lor small.bits.(w)
    done;
    { bits }
  end

let inter a b =
  let words = min (length_words a) (length_words b) in
  let bits = Array.make (max 1 words) 0 in
  for w = 0 to words - 1 do
    bits.(w) <- a.bits.(w) land b.bits.(w)
  done;
  { bits }

let is_empty s =
  let rec go w = w >= length_words s || (s.bits.(w) = 0 && go (w + 1)) in
  go 0

let disjoint a b = is_empty (inter a b)

let subset a b =
  let rec go w =
    w >= length_words a
    || (a.bits.(w) land lnot (if w < length_words b then b.bits.(w) else 0) = 0
        && go (w + 1))
  in
  go 0

let equal a b = subset a b && subset b a

let compare a b =
  (* Compare as (possibly zero-padded) word sequences, most significant last. *)
  let words = max (length_words a) (length_words b) in
  let word s w = if w < length_words s then s.bits.(w) else 0 in
  let rec go w =
    if w < 0 then 0
    else
      let c = Int.compare (word a w) (word b w) in
      if c <> 0 then c else go (w - 1)
  in
  go (words - 1)

let fold f s init =
  let acc = ref init in
  for w = 0 to length_words s - 1 do
    let word = s.bits.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then acc := f (w * bits_per_word + b) !acc
      done
  done;
  !acc

let iter f s = fold (fun i () -> f i) s ()

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let cardinal s = fold (fun _ n -> n + 1) s 0

let exists p s = fold (fun i found -> found || p i) s false

let choose s =
  let rec go w =
    if w >= length_words s then None
    else if s.bits.(w) = 0 then go (w + 1)
    else
      let rec bit b =
        if s.bits.(w) land (1 lsl b) <> 0 then Some ((w * bits_per_word) + b)
        else bit (b + 1)
      in
      bit 0
  in
  go 0

(* Word-level views for external fixpoint accumulators (see the .mli):
   rows of [words ~capacity] ints ORed in place, frozen back to sets. *)

let words ~capacity = max 1 (word_count capacity)

let blit_or s dst off width =
  let changed = ref false in
  let n = min (length_words s) width in
  for w = 0 to n - 1 do
    let sw = s.bits.(w) in
    if sw <> 0 then begin
      let v = dst.(off + w) lor sw in
      if v <> dst.(off + w) then begin
        dst.(off + w) <- v;
        changed := true
      end
    end
  done;
  !changed

let of_words src off width =
  let n = ref width in
  while !n > 0 && src.(off + !n - 1) = 0 do
    decr n
  done;
  if !n = 0 then empty else { bits = Array.sub src off !n }

let hash s =
  let h = ref 0 in
  for w = 0 to length_words s - 1 do
    if s.bits.(w) <> 0 then h := (!h * 31) + (s.bits.(w) lxor w)
  done;
  !h

let pp ?(name = string_of_int) ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) (List.map name (elements s))
