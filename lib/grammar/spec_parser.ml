exception Error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type state = {
  mutable input : Spec_lexer.lexeme list;
}

let peek st =
  match st.input with
  | lexeme :: _ -> lexeme
  | [] -> errorf "unexpected end of token stream"

let advance st =
  match st.input with
  | _ :: rest -> st.input <- rest
  | [] -> ()

let expect st token =
  let lexeme = peek st in
  if lexeme.token = token then advance st
  else
    errorf "line %d: expected %s but found %s" lexeme.line
      (Spec_lexer.token_to_string token)
      (Spec_lexer.token_to_string lexeme.token)

let symbol_name st =
  let lexeme = peek st in
  match lexeme.token with
  | Spec_lexer.Ident name | Spec_lexer.Lit name ->
    advance st;
    Some name
  | Spec_lexer.Colon | Spec_lexer.Bar | Spec_lexer.Semi
  | Spec_lexer.Directive _ | Spec_lexer.Eof ->
    None

(* Directive argument lists are line-scoped, so that a rule may follow a
   declaration without a separator: symbols on later lines belong to whatever
   comes next. *)
let rec symbol_names_on_line st line acc =
  let lexeme = peek st in
  if lexeme.Spec_lexer.line <> line then List.rev acc
  else
    match symbol_name st with
    | Some name -> symbol_names_on_line st line (name :: acc)
    | None -> List.rev acc

let parse_alt st =
  let rec go symbols prec_tag =
    let lexeme = peek st in
    match lexeme.token with
    | Spec_lexer.Ident name | Spec_lexer.Lit name ->
      advance st;
      if prec_tag <> None then
        errorf "line %d: symbols after %%prec tag" lexeme.line;
      go (name :: symbols) prec_tag
    | Spec_lexer.Directive "prec" ->
      advance st;
      if prec_tag <> None then errorf "line %d: duplicate %%prec" lexeme.line;
      (match symbol_name st with
      | Some tag -> go symbols (Some tag)
      | None -> errorf "line %d: expected a terminal after %%prec" lexeme.line)
    | Spec_lexer.Bar | Spec_lexer.Semi ->
      Spec_ast.{ symbols = List.rev symbols; prec_tag }
    | Spec_lexer.Colon | Spec_lexer.Directive _ | Spec_lexer.Eof ->
      errorf "line %d: unexpected %s in production" lexeme.line
        (Spec_lexer.token_to_string lexeme.token)
  in
  go [] None

let parse_rule st lhs =
  expect st Spec_lexer.Colon;
  let rec alts acc =
    let alt = parse_alt st in
    let lexeme = peek st in
    match lexeme.token with
    | Spec_lexer.Bar ->
      advance st;
      alts (alt :: acc)
    | Spec_lexer.Semi ->
      advance st;
      List.rev (alt :: acc)
    | Spec_lexer.Ident _ | Spec_lexer.Lit _ | Spec_lexer.Colon
    | Spec_lexer.Directive _ | Spec_lexer.Eof ->
      errorf "line %d: expected | or ; after production" lexeme.line
  in
  Spec_ast.{ lhs; alts = alts [] }

let parse source =
  let st = { input = Spec_lexer.tokenize source } in
  (* Accumulators are kept reversed and reversed once at the end; appending
     with [@] per declaration line would be quadratic in the number of
     [%token] lines (it rewalks the whole accumulated list each time). *)
  let tokens = ref [] in
  let prec_levels = ref [] in
  let start = ref None in
  let rules = ref [] in
  let rec go () =
    let lexeme = peek st in
    match lexeme.token with
    | Spec_lexer.Eof -> ()
    | Spec_lexer.Directive "token" | Spec_lexer.Directive "term" ->
      advance st;
      tokens :=
        List.rev_append
          (symbol_names_on_line st lexeme.Spec_lexer.line [])
          !tokens;
      go ()
    | Spec_lexer.Directive "start" ->
      advance st;
      (match symbol_name st with
      | Some name ->
        if !start <> None then errorf "line %d: duplicate %%start" lexeme.line;
        start := Some name
      | None -> errorf "line %d: expected a symbol after %%start" lexeme.line);
      go ()
    | Spec_lexer.Directive (("left" | "right" | "nonassoc") as d) ->
      advance st;
      let assoc =
        match d with
        | "left" -> Spec_ast.Left
        | "right" -> Spec_ast.Right
        | _ -> Spec_ast.Nonassoc
      in
      let names = symbol_names_on_line st lexeme.Spec_lexer.line [] in
      if names = [] then
        errorf "line %d: expected terminals after %%%s" lexeme.line d;
      prec_levels := (assoc, names) :: !prec_levels;
      go ()
    | Spec_lexer.Directive d ->
      errorf "line %d: unknown directive %%%s" lexeme.line d
    | Spec_lexer.Ident lhs ->
      advance st;
      rules := parse_rule st lhs :: !rules;
      go ()
    | Spec_lexer.Lit _ | Spec_lexer.Colon | Spec_lexer.Bar | Spec_lexer.Semi ->
      errorf "line %d: expected a rule or directive, found %s" lexeme.line
        (Spec_lexer.token_to_string lexeme.token)
  in
  go ();
  Spec_ast.
    { tokens = List.rev !tokens;
      prec_levels = List.rev !prec_levels;
      start = !start;
      rules = List.rev !rules }

let parse_result source =
  match parse source with
  | spec -> Ok spec
  | exception Error msg | exception Spec_lexer.Error msg -> Error msg

let grammar_of_string source =
  match parse_result source with
  | Error _ as e -> e
  | Ok spec -> Grammar.of_spec spec

let grammar_of_string_exn source =
  match grammar_of_string source with
  | Ok g -> g
  | Error msg -> errorf "%s" msg
