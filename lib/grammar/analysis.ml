let infinity_cost = max_int / 4

type t = {
  grammar : Grammar.t;
  nullable : bool array;
  null_cost : int array;
  null_witness : int option array;
  first : Bitset.t array;
  min_yield : int array;
  min_yield_witness : int option array;
  min_length : int array;
  reachable : bool array;
  cyclic : bool array;
  front_cost : int array array;  (* [nt].[t] *)
  front_witness : front option array array;
  suffix_first : (Bitset.t * bool) array array;
      (* [prod].[pos]: FIRST of the right-hand-side suffix starting at [pos]
         and whether it is nullable, memoized for the search hot paths *)
}

and front = {
  front_prod : int;
  front_skip : int;  (** leading nullable nonterminals derived to epsilon *)
  front_via : via;
}

and via =
  | Direct  (** the symbol at [front_skip] is the wanted terminal *)
  | Through of int  (** recurse into the nonterminal at [front_skip] *)

let grammar a = a.grammar
let nullable a nt = a.nullable.(nt)
let first a nt = a.first.(nt)
let reachable a nt = a.reachable.(nt)
let cyclic a nt = a.cyclic.(nt)
let productive a nt = a.min_yield.(nt) < infinity_cost
let min_yield a nt = if productive a nt then Some a.min_yield.(nt) else None

let min_length a nt =
  if a.min_length.(nt) >= infinity_cost then None else Some a.min_length.(nt)

let min_length_of_form a form =
  List.fold_left
    (fun acc sym ->
      match acc, sym with
      | None, _ -> None
      | Some n, Symbol.Terminal _ -> Some (n + 1)
      | Some n, Symbol.Nonterminal nt -> (
        match min_length a nt with
        | None -> None
        | Some m -> Some (n + m)))
    (Some 0) form

let nullable_symbol a = function
  | Symbol.Terminal _ -> false
  | Symbol.Nonterminal nt -> a.nullable.(nt)

(* FIRST of the suffix [rhs.(from) ... rhs.(n-1)], plus whether the whole
   suffix is nullable. *)
let first_of_seq a rhs ~from =
  let n = Array.length rhs in
  let rec go i acc =
    if i >= n then acc, true
    else
      match rhs.(i) with
      | Symbol.Terminal t -> Bitset.add acc t, false
      | Symbol.Nonterminal nt ->
        let acc = Bitset.union acc a.first.(nt) in
        if a.nullable.(nt) then go (i + 1) acc else acc, false
  in
  go from Bitset.empty

(* Memoized {!first_of_seq} for production right-hand sides: both searches
   interrogate suffix FIRST sets inside their inner loops, so recomputing the
   walk per query is pure waste. The table is filled once in {!make}. *)
let first_of_prod a ~prod ~from =
  let row = a.suffix_first.(prod) in
  if from >= Array.length row then Bitset.empty, true else row.(from)

(* The paper's precise follow set: followL for the production step taken from
   an item [lhs -> X1 ... Xk . X_{k+1} ...] with precise lookahead set [l].
   [dot] is the dot position k (so the symbol being expanded is rhs.(dot)). *)
let follow_l a (p : Grammar.production) ~dot l =
  let rest, rest_nullable = first_of_prod a ~prod:p.Grammar.index ~from:(dot + 1) in
  if rest_nullable then Bitset.union rest l else rest

(* ------------------------------------------------------------------ *)
(* Fixpoint computations. *)

(* Each fixpoint below is split into a [fix_*] loop over caller-provided
   arrays and a [compute_*] wrapper that starts from bottom. The loops are
   monotone (sets grow, costs shrink) and only update on strict improvement,
   so {!make_warm} can seed the arrays with the exact fixpoint values of a
   previous grammar's unaffected nonterminals: exact seeds are stable under
   iteration, and the loops converge in one verification pass plus however
   many passes the affected region needs. *)

let fix_nullable g nullable =
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to Grammar.n_productions g - 1 do
      let prod = Grammar.production g p in
      if not nullable.(prod.Grammar.lhs) then begin
        let all_nullable =
          Array.for_all
            (function
              | Symbol.Terminal _ -> false
              | Symbol.Nonterminal nt -> nullable.(nt))
            prod.Grammar.rhs
        in
        if all_nullable then begin
          nullable.(prod.Grammar.lhs) <- true;
          changed := true
        end
      end
    done
  done

let compute_nullable g =
  let nullable = Array.make (Grammar.n_nonterminals g) false in
  fix_nullable g nullable;
  nullable

(* Minimal-step epsilon derivations: null_cost.(nt) is the least number of
   production applications needed to derive the empty string. *)
let fix_null_witness g nullable null_cost null_witness =
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to Grammar.n_productions g - 1 do
      let prod = Grammar.production g p in
      if nullable.(prod.Grammar.lhs) then begin
        let cost =
          Array.fold_left
            (fun acc sym ->
              match sym with
              | Symbol.Terminal _ -> infinity_cost
              | Symbol.Nonterminal nt ->
                if acc >= infinity_cost || null_cost.(nt) >= infinity_cost then
                  infinity_cost
                else acc + null_cost.(nt))
            1 prod.Grammar.rhs
        in
        if cost < null_cost.(prod.Grammar.lhs) then begin
          null_cost.(prod.Grammar.lhs) <- cost;
          null_witness.(prod.Grammar.lhs) <- Some p;
          changed := true
        end
      end
    done
  done

let compute_null_witness g nullable =
  let n_nt = Grammar.n_nonterminals g in
  let null_cost = Array.make n_nt infinity_cost in
  let null_witness = Array.make n_nt None in
  fix_null_witness g nullable null_cost null_witness;
  null_cost, null_witness

let fix_first g nullable first =
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to Grammar.n_productions g - 1 do
      let prod = Grammar.production g p in
      let lhs = prod.Grammar.lhs in
      let rec add i =
        if i < Array.length prod.Grammar.rhs then
          match prod.Grammar.rhs.(i) with
          | Symbol.Terminal t ->
            if not (Bitset.mem first.(lhs) t) then begin
              first.(lhs) <- Bitset.add first.(lhs) t;
              changed := true
            end
          | Symbol.Nonterminal nt ->
            let union = Bitset.union first.(lhs) first.(nt) in
            if not (Bitset.equal union first.(lhs)) then begin
              first.(lhs) <- union;
              changed := true
            end;
            if nullable.(nt) then add (i + 1)
      in
      add 0
    done
  done

let compute_first g nullable =
  let first = Array.make (Grammar.n_nonterminals g) Bitset.empty in
  fix_first g nullable first;
  first

let fix_min_yield g min_yield min_yield_witness =
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to Grammar.n_productions g - 1 do
      let prod = Grammar.production g p in
      (* Starting from 1 (not 0) makes the cost strictly decrease along
         witness edges, so reconstruction cannot cycle through zero-yield
         nonterminals. *)
      let cost =
        Array.fold_left
          (fun acc sym ->
            if acc >= infinity_cost then infinity_cost
            else
              match sym with
              | Symbol.Terminal _ -> acc + 1
              | Symbol.Nonterminal nt ->
                if min_yield.(nt) >= infinity_cost then infinity_cost
                else acc + min_yield.(nt))
          1 prod.Grammar.rhs
      in
      if cost < min_yield.(prod.Grammar.lhs) then begin
        min_yield.(prod.Grammar.lhs) <- cost;
        min_yield_witness.(prod.Grammar.lhs) <- Some prod.Grammar.index;
        changed := true
      end
    done
  done

let compute_min_yield g =
  let n_nt = Grammar.n_nonterminals g in
  let min_yield = Array.make n_nt infinity_cost in
  let min_yield_witness = Array.make n_nt None in
  fix_min_yield g min_yield min_yield_witness;
  min_yield, min_yield_witness

(* Pure minimal terminal-sentence length (no production-application cost);
   used by enumeration baselines to prune sentential forms. *)
let fix_min_length g min_length =
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to Grammar.n_productions g - 1 do
      let prod = Grammar.production g p in
      let cost =
        Array.fold_left
          (fun acc sym ->
            if acc >= infinity_cost then infinity_cost
            else
              match sym with
              | Symbol.Terminal _ -> acc + 1
              | Symbol.Nonterminal nt ->
                if min_length.(nt) >= infinity_cost then infinity_cost
                else acc + min_length.(nt))
          0 prod.Grammar.rhs
      in
      if cost < min_length.(prod.Grammar.lhs) then begin
        min_length.(prod.Grammar.lhs) <- cost;
        changed := true
      end
    done
  done

let compute_min_length g =
  let min_length = Array.make (Grammar.n_nonterminals g) infinity_cost in
  fix_min_length g min_length;
  min_length

let compute_reachable g =
  let n_nt = Grammar.n_nonterminals g in
  let reachable = Array.make n_nt false in
  let rec visit nt =
    if not reachable.(nt) then begin
      reachable.(nt) <- true;
      List.iter
        (fun p ->
          let prod = Grammar.production g p in
          Array.iter
            (function
              | Symbol.Terminal _ -> ()
              | Symbol.Nonterminal nt' -> visit nt')
            prod.Grammar.rhs)
        (Grammar.productions_of g nt)
    end
  in
  visit 0;
  reachable

(* Derivation cycles A =>+ A: there is an edge A -> B when some production
   A ::= alpha B beta has every other right-hand-side symbol nullable (so the
   step rederives a lone nonterminal up to epsilon siblings). A nonterminal
   on a cycle of such edges derives itself, which gives some sentences
   unboundedly many parse trees. *)
let compute_cyclic g nullable =
  let n_nt = Grammar.n_nonterminals g in
  let reaches = Array.make n_nt Bitset.empty in
  let nullable_sym = function
    | Symbol.Terminal _ -> false
    | Symbol.Nonterminal nt -> nullable.(nt)
  in
  for p = 0 to Grammar.n_productions g - 1 do
    let prod = Grammar.production g p in
    let rhs = prod.Grammar.rhs in
    let n_not_nullable =
      Array.fold_left
        (fun n s -> if nullable_sym s then n else n + 1)
        0 rhs
    in
    Array.iter
      (fun s ->
        match s with
        | Symbol.Terminal _ -> ()
        | Symbol.Nonterminal b ->
          (* Every sibling of [b] must be nullable: either all symbols are, or
             [b] itself is the single non-nullable one. *)
          if n_not_nullable = 0 || (n_not_nullable = 1 && not nullable.(b))
          then
            reaches.(prod.Grammar.lhs) <-
              Bitset.add reaches.(prod.Grammar.lhs) b)
      rhs
  done;
  (* Transitive closure by fixpoint; nonterminal counts are small. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n_nt - 1 do
      let acc =
        Bitset.fold
          (fun b acc -> Bitset.union acc reaches.(b))
          reaches.(a) reaches.(a)
      in
      if not (Bitset.equal acc reaches.(a)) then begin
        reaches.(a) <- acc;
        changed := true
      end
    done
  done;
  Array.init n_nt (fun a -> Bitset.mem reaches.(a) a)

(* front_cost.(nt).(t): least total cost of a leftmost expansion
   nt =>* t . delta, where applying a production costs 1 and deriving a
   leading nonterminal to epsilon costs its null_cost. *)
let fix_front g nullable null_cost front_cost front_witness =
  let n_t = Grammar.n_terminals g in
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to Grammar.n_productions g - 1 do
      let prod = Grammar.production g p in
      let lhs = prod.Grammar.lhs in
      let rhs = prod.Grammar.rhs in
      let skip_cost = ref 1 in
      (try
         for j = 0 to Array.length rhs - 1 do
           (match rhs.(j) with
           | Symbol.Terminal t ->
             if !skip_cost + 1 < front_cost.(lhs).(t) then begin
               front_cost.(lhs).(t) <- !skip_cost + 1;
               front_witness.(lhs).(t) <-
                 Some { front_prod = p; front_skip = j; front_via = Direct };
               changed := true
             end
           | Symbol.Nonterminal nt ->
             for t = 0 to n_t - 1 do
               if front_cost.(nt).(t) < infinity_cost then begin
                 let cost = !skip_cost + front_cost.(nt).(t) in
                 if cost < front_cost.(lhs).(t) then begin
                   front_cost.(lhs).(t) <- cost;
                   front_witness.(lhs).(t) <-
                     Some
                       { front_prod = p; front_skip = j;
                         front_via = Through nt };
                   changed := true
                 end
               end
             done);
           (* To move past position j, symbol j must derive epsilon. *)
           match rhs.(j) with
           | Symbol.Terminal _ -> raise Exit
           | Symbol.Nonterminal nt ->
             if nullable.(nt) then skip_cost := !skip_cost + null_cost.(nt)
             else raise Exit
         done
       with Exit -> ())
    done
  done

let compute_front g nullable null_cost =
  let n_nt = Grammar.n_nonterminals g in
  let n_t = Grammar.n_terminals g in
  let front_cost = Array.init n_nt (fun _ -> Array.make n_t infinity_cost) in
  let front_witness = Array.init n_nt (fun _ -> Array.make n_t None) in
  fix_front g nullable null_cost front_cost front_witness;
  front_cost, front_witness

let make g =
  let nullable = compute_nullable g in
  let null_cost, null_witness = compute_null_witness g nullable in
  let first = compute_first g nullable in
  let min_yield, min_yield_witness = compute_min_yield g in
  let min_length = compute_min_length g in
  let reachable = compute_reachable g in
  let cyclic = compute_cyclic g nullable in
  let front_cost, front_witness = compute_front g nullable null_cost in
  let a =
    { grammar = g; nullable; null_cost; null_witness; first; min_yield;
      min_yield_witness; min_length; reachable; cyclic; front_cost;
      front_witness; suffix_first = [||] }
  in
  let suffix_first =
    Array.init (Grammar.n_productions g) (fun p ->
        let rhs = (Grammar.production g p).Grammar.rhs in
        Array.init (Array.length rhs + 1) (fun pos ->
            first_of_seq a rhs ~from:pos))
  in
  { a with suffix_first }

(* ------------------------------------------------------------------ *)
(* Warm construction: seed the fixpoints from a symbol-compatible base
   analysis. A nonterminal certified [unchanged] by the caller has a
   textually identical forward production subgraph in both grammars, so its
   nullable/FIRST/cost attributes are already at their new-grammar fixpoint
   values; copying them (with witness production indices remapped) leaves
   the monotone loops nothing to do for it. Affected nonterminals start from
   bottom as in {!make}. Reachability (a global property of the start
   symbol, not of the nonterminal's own subgraph), cyclicity and the
   per-production suffix-FIRST memo are recomputed outright — they are the
   cheap passes. *)

type warm_stats = {
  seeded_nonterminals : int;
  total_nonterminals : int;
}

exception Unmappable

let make_warm ~base ~unchanged ~remap_production g =
  let n_nt = Grammar.n_nonterminals g in
  let n_t = Grammar.n_terminals g in
  if
    Array.length unchanged <> n_nt
    || Grammar.n_nonterminals base.grammar <> n_nt
    || Grammar.n_terminals base.grammar <> n_t
  then invalid_arg "Analysis.make_warm: grammars are not symbol-compatible";
  let nullable = Array.make n_nt false in
  let null_cost = Array.make n_nt infinity_cost in
  let null_witness = Array.make n_nt None in
  let first = Array.make n_nt Bitset.empty in
  let min_yield = Array.make n_nt infinity_cost in
  let min_yield_witness = Array.make n_nt None in
  let min_length = Array.make n_nt infinity_cost in
  let front_cost = Array.init n_nt (fun _ -> Array.make n_t infinity_cost) in
  let front_witness = Array.init n_nt (fun _ -> Array.make n_t None) in
  let seeded = ref 0 in
  let remap p =
    match remap_production p with Some q -> q | None -> raise Unmappable
  in
  let seed_nt nt =
    (* All-or-nothing per nonterminal, and no mutation before every remap
       has succeeded: a witness production of a certified-unchanged
       nonterminal lives in its unchanged subgraph, so a remap miss means
       the certificate was wrong — recompute that nonterminal from bottom
       instead of seeding it half-right. *)
    try
      let nw = Option.map remap base.null_witness.(nt) in
      let yw = Option.map remap base.min_yield_witness.(nt) in
      let fw =
        Array.map
          (Option.map (fun w -> { w with front_prod = remap w.front_prod }))
          base.front_witness.(nt)
      in
      nullable.(nt) <- base.nullable.(nt);
      null_cost.(nt) <- base.null_cost.(nt);
      null_witness.(nt) <- nw;
      first.(nt) <- base.first.(nt);
      min_yield.(nt) <- base.min_yield.(nt);
      min_yield_witness.(nt) <- yw;
      min_length.(nt) <- base.min_length.(nt);
      front_cost.(nt) <- Array.copy base.front_cost.(nt);
      front_witness.(nt) <- fw;
      incr seeded
    with Unmappable -> ()
  in
  for nt = 0 to n_nt - 1 do
    if unchanged.(nt) then seed_nt nt
  done;
  fix_nullable g nullable;
  fix_null_witness g nullable null_cost null_witness;
  fix_first g nullable first;
  fix_min_yield g min_yield min_yield_witness;
  fix_min_length g min_length;
  let reachable = compute_reachable g in
  let cyclic = compute_cyclic g nullable in
  fix_front g nullable null_cost front_cost front_witness;
  let a =
    { grammar = g; nullable; null_cost; null_witness; first; min_yield;
      min_yield_witness; min_length; reachable; cyclic; front_cost;
      front_witness; suffix_first = [||] }
  in
  let suffix_first =
    Array.init (Grammar.n_productions g) (fun p ->
        let rhs = (Grammar.production g p).Grammar.rhs in
        Array.init (Array.length rhs + 1) (fun pos ->
            first_of_seq a rhs ~from:pos))
  in
  ( { a with suffix_first },
    { seeded_nonterminals = !seeded; total_nonterminals = n_nt } )

(* ------------------------------------------------------------------ *)
(* Witness reconstruction. *)

let rec epsilon_derivation a nt =
  match a.null_witness.(nt) with
  | None -> invalid_arg "Analysis.epsilon_derivation: not nullable"
  | Some p ->
    let prod = Grammar.production a.grammar p in
    let children =
      Array.to_list
        (Array.map
           (function
             | Symbol.Terminal _ -> assert false
             | Symbol.Nonterminal nt' -> epsilon_derivation a nt')
           prod.Grammar.rhs)
    in
    Derivation.node a.grammar p children

let rec front_derivation a nt t =
  match a.front_witness.(nt).(t) with
  | None -> None
  | Some w ->
    let prod = Grammar.production a.grammar w.front_prod in
    let rhs = prod.Grammar.rhs in
    let children =
      List.init (Array.length rhs) (fun j ->
          if j < w.front_skip then
            match rhs.(j) with
            | Symbol.Terminal _ -> assert false
            | Symbol.Nonterminal nt' -> epsilon_derivation a nt'
          else if j = w.front_skip then
            match w.front_via with
            | Direct -> Derivation.leaf rhs.(j)
            | Through nt' -> (
              match front_derivation a nt' t with
              | Some d -> d
              | None -> assert false)
          else Derivation.leaf rhs.(j))
    in
    Some (Derivation.node a.grammar w.front_prod children)

let expand_front a nt t =
  match front_derivation a nt t with
  | None -> None
  | Some d -> Some (Derivation.leaves d)

let front_cost a nt t =
  let c = a.front_cost.(nt).(t) in
  if c >= infinity_cost then None else Some c

let null_cost a nt =
  let c = a.null_cost.(nt) in
  if c >= infinity_cost then None else Some c

let can_begin_with a sym t =
  match sym with
  | Symbol.Terminal t' -> t = t'
  | Symbol.Nonterminal nt -> Bitset.mem a.first.(nt) t

let rec min_sentence_of_symbol a sym =
  match sym with
  | Symbol.Terminal t -> [ t ]
  | Symbol.Nonterminal nt -> (
    match a.min_yield_witness.(nt) with
    | None -> invalid_arg "Analysis.min_sentence: nonproductive nonterminal"
    | Some p ->
      let prod = Grammar.production a.grammar p in
      List.concat_map (min_sentence_of_symbol a) (Array.to_list prod.Grammar.rhs))

let min_sentence a symbols = List.concat_map (min_sentence_of_symbol a) symbols
