(** Static grammar analyses: nullability, FIRST sets, the paper's precise
    follow sets, reachability/productivity, and minimal-expansion witnesses
    used to complete counterexamples compactly. *)

type t

val make : Grammar.t -> t
val grammar : t -> Grammar.t

type warm_stats = {
  seeded_nonterminals : int;  (** nonterminals seeded from the base *)
  total_nonterminals : int;
}

val make_warm :
  base:t ->
  unchanged:bool array ->
  remap_production:(int -> int option) ->
  Grammar.t ->
  t * warm_stats
(** [make_warm ~base ~unchanged ~remap_production g] builds the analysis of
    [g] by seeding the fixpoint iterations with [base]'s values for every
    nonterminal [nt] with [unchanged.(nt)]. The caller certifies that [g]
    and [base]'s grammar have identical symbol tables (same terminal and
    nonterminal names in the same index order) and that each unchanged
    nonterminal's entire forward production subgraph — every production
    reachable from it through right-hand-side nonterminals — is textually
    identical in both grammars; [remap_production] translates a base
    production index inside that subgraph to the corresponding index in [g].
    Seeding with exact fixpoint values and bottom elsewhere preserves the
    least fixpoint, so the result equals {!make}[ g]; only the iteration
    count shrinks. A nonterminal whose witness fails to remap is silently
    recomputed from bottom. *)

val nullable : t -> int -> bool
(** Can this nonterminal derive the empty string? *)

val nullable_symbol : t -> Symbol.t -> bool

val first : t -> int -> Bitset.t
(** Terminals that can begin a derivation of the nonterminal. *)

val first_of_seq : t -> Symbol.t array -> from:int -> Bitset.t * bool
(** FIRST of the suffix starting at [from], and whether the suffix is
    nullable. *)

val first_of_prod : t -> prod:int -> from:int -> Bitset.t * bool
(** Memoized {!first_of_seq} over the production's right-hand side: the table
    is precomputed once per grammar, so the search hot paths pay an array
    read instead of a FIRST-set walk. *)

val follow_l : t -> Grammar.production -> dot:int -> Bitset.t -> Bitset.t
(** The paper's precise follow set [followL] (section 4): terminals that can
    actually follow the nonterminal at position [dot] of the production when
    the item's precise lookahead set is the last argument. *)

val reachable : t -> int -> bool
(** Reachable from the augmented start symbol. *)

val productive : t -> int -> bool
(** Derives at least one (possibly empty) terminal string. *)

val cyclic : t -> int -> bool
(** Is the nonterminal on a derivation cycle [A =>+ A] (a chain of
    productions that rederives the nonterminal with every sibling symbol
    nullable)? Cyclic nonterminals give some sentences unboundedly many
    parse trees, and the unifying counterexample search may fail to
    terminate inside them. *)

val min_yield : t -> int -> int option
(** Cost of the cheapest sentence derivable from the nonterminal (number of
    terminals plus production applications); [None] if nonproductive. *)

val min_length : t -> int -> int option
(** Length of the shortest terminal sentence derivable from the nonterminal;
    [None] if nonproductive. *)

val min_length_of_form : t -> Symbol.t list -> int option
(** Shortest terminal sentence length derivable from a sentential form. *)

val epsilon_derivation : t -> int -> Derivation.t
(** A minimal derivation of the empty string.
    @raise Invalid_argument if the nonterminal is not nullable. *)

val front_derivation : t -> int -> int -> Derivation.t option
(** [front_derivation a nt t] is a minimal derivation witnessing
    [nt =>* t delta] for some symbol string [delta] (kept as unexpanded
    leaves), or [None] if [t] is not in [FIRST nt]. *)

val expand_front : t -> int -> int -> Symbol.t list option
(** Frontier of {!front_derivation}: a sentential form beginning with the
    requested terminal. *)

val front_cost : t -> int -> int -> int option
(** Cost of the witness returned by {!front_derivation} (production
    applications plus epsilon-derivation steps); [None] if absent. *)

val null_cost : t -> int -> int option
(** Cost of the minimal epsilon derivation; [None] if not nullable. *)

val can_begin_with : t -> Symbol.t -> int -> bool
(** Can a derivation of the symbol begin with the given terminal? *)

val min_sentence : t -> Symbol.t list -> int list
(** A short terminal sentence derivable from the sentential form.
    @raise Invalid_argument on nonproductive nonterminals. *)
