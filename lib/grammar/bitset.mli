(** Immutable sets of small nonnegative integers, used for terminal
    (lookahead) sets throughout the library.

    Values are persistent: all operations return fresh sets and never mutate
    their arguments. Representation is canonical up to trailing zero words, and
    all observers treat missing high words as zeros, so structural sharing is
    safe. *)

type t

val empty : t

val create : capacity:int -> t
(** [create ~capacity] is an empty set preallocated for elements
    [< capacity]. Purely an allocation hint. *)

val singleton : int -> t
val of_list : int list -> t
val add : t -> int -> t
val remove : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val is_empty : t -> bool
val disjoint : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val elements : t -> int list
(** Elements in increasing order. *)

val cardinal : t -> int
val exists : (int -> bool) -> t -> bool
val choose : t -> int option
(** Smallest element, if any. *)

(** {2 Word-level accumulator views}

    Fixpoint engines (the LALR lookahead computation) keep their iteration
    state as flat [int array] rows of {!words} machine words per set and OR
    into them in place — no allocation per edge — then freeze each row back
    to a set with {!of_words}. The word layout matches the internal
    representation: bit [i] lives in word [i / word_size]. *)

val words : capacity:int -> int
(** Row width in words for sets over elements [< capacity]. *)

val blit_or : t -> int array -> int -> int -> bool
(** [blit_or s dst off width] ORs the words of [s] into
    [dst.(off) .. dst.(off + width - 1)], returning [true] iff any word
    changed. Elements of [s] at or beyond [width * word_size] are ignored;
    callers must size rows with {!words} over a capacity no smaller than the
    sets they accumulate. *)

val of_words : int array -> int -> int -> t
(** [of_words src off width] is the set whose words are
    [src.(off) .. src.(off + width - 1)], copied (later mutation of [src] is
    not observed) and trimmed to canonical form. *)

val hash : t -> int
val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
(** Print as [{a, b, c}], mapping elements through [name]. *)
