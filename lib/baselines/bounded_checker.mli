(** CFGAnalyzer-style incremental bounded ambiguity detection: for growing
    length bounds, decide whether {e any} reachable nonterminal derives some
    phrase ambiguously, stopping at the first witness. See DESIGN.md for the
    substitution rationale (enumeration instead of SAT). *)

open Cfg

type result = {
  ambiguous : (int * int list) option;
      (** (nonterminal, phrase): the first ambiguity witness found *)
  bound_reached : int;  (** last length bound attempted *)
  elapsed : float;
}

val check :
  ?clock:Cex_session.Clock.t ->
  ?max_bound:int ->
  ?time_limit:float ->
  ?deadline:Cex_session.Deadline.t ->
  Grammar.t ->
  result
(** A single {!Cex_session.Deadline.t} (an explicit [deadline], or
    [time_limit] seconds — default 30 — on [clock]) bounds the whole check
    and is shared with every inner {!Brute_force.search} run. *)
