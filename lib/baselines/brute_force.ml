open Cfg

(* The AMBER / DMS baseline: enumerate leftmost derivations breadth-first
   from the start symbol and flag the first terminal sentence produced by two
   distinct leftmost derivations. Distinct leftmost derivations are in
   bijection with distinct parse trees, so a duplicate is an ambiguity
   witness. This is accurate but, as the paper notes, "prohibitively slow":
   it starts from the start symbol and explores the whole language. *)

type result = {
  ambiguous : (int list) option;  (** first duplicated sentence (terminals) *)
  sentences : int;  (** completed sentences enumerated *)
  forms_explored : int;
  elapsed : float;
  exhausted : bool;  (** search space up to the length bound fully covered *)
}

let search ?(clock = Cex_session.Clock.system) ?(max_length = 12)
    ?(max_forms = 2_000_000) ?(time_limit = 30.0) ?deadline
    ?(start_nonterminal = None) g =
  let deadline =
    match deadline with
    | Some d -> d
    | None -> Cex_session.Deadline.after clock time_limit
  in
  let started = Cex_session.Clock.now clock in
  let analysis = Analysis.make g in
  let start =
    match start_nonterminal with
    | Some nt -> nt
    | None -> Grammar.start g
  in
  let seen : (int list, unit) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  (* Each queue element: (terminal prefix rev, remaining sentential form). *)
  Queue.add ([], [ Symbol.Nonterminal start ]) queue;
  let sentences = ref 0 in
  let forms = ref 0 in
  let duplicate = ref None in
  (* Check the deadline on loop entry, then poll it every
     [Deadline.poll_interval] forms — the shared polling constant, so the
     overshoot past an expired deadline is bounded identically across every
     search loop in the system. *)
  let timed_out = ref (Cex_session.Deadline.expired deadline) in
  while
    !duplicate = None && (not !timed_out) && not (Queue.is_empty queue)
  do
    if
      !forms land Cex_session.Deadline.poll_mask = 0
      && Cex_session.Deadline.expired deadline
    then timed_out := true
    else begin
      let prefix_rev, form = Queue.pop queue in
      incr forms;
      if !forms > max_forms then timed_out := true
      else begin
        match form with
        | [] ->
          let sentence = List.rev prefix_rev in
          incr sentences;
          if Hashtbl.mem seen sentence then duplicate := Some sentence
          else Hashtbl.add seen sentence ()
        | Symbol.Terminal t :: rest ->
          Queue.add (t :: prefix_rev, rest) queue
        | Symbol.Nonterminal nt :: rest ->
          List.iter
            (fun p ->
              let rhs =
                Array.to_list (Grammar.production g p).Grammar.rhs
              in
              let form' = rhs @ rest in
              (* Prune forms that cannot fit in the length bound. *)
              match Analysis.min_length_of_form analysis form' with
              | None -> ()
              | Some remaining ->
                if List.length prefix_rev + remaining <= max_length then
                  Queue.add (prefix_rev, form') queue)
            (Grammar.productions_of g nt)
      end
    end
  done;
  { ambiguous = !duplicate;
    sentences = !sentences;
    forms_explored = !forms;
    elapsed = Cex_session.Clock.now clock -. started;
    exhausted = (not !timed_out) && !duplicate = None }
