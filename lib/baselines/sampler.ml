open Cfg

(* The SinBAD baseline (Vasudevan & Tratt 2013): detect ambiguity by
   repeatedly sampling random derivations from the start symbol and checking
   whether the sampled sentence parses in more than one way. Fast when
   ambiguous sentences are dense; useless on unambiguous grammars; and — the
   paper's criticism — reported witnesses start at the start symbol, so they
   do not identify the ambiguous nonterminal. *)

type result = {
  ambiguous : int list option;  (** a sampled ambiguous sentence *)
  samples : int;
  elapsed : float;
}

(* Sample a sentence by expanding the leftmost nonterminal with a random
   production, biased towards short completions once [size_budget] runs out
   so that generation terminates. *)
let sample_sentence rng g analysis ~max_len =
  let rec expand acc form budget =
    match form with
    | [] -> Some (List.rev acc)
    | Symbol.Terminal t :: rest ->
      if List.length acc >= max_len then None
      else expand (t :: acc) rest budget
    | Symbol.Nonterminal nt :: rest ->
      let prods = Grammar.productions_of g nt in
      let viable =
        List.filter
          (fun p ->
            Array.for_all
              (fun sym ->
                match sym with
                | Symbol.Terminal _ -> true
                | Symbol.Nonterminal n -> Analysis.productive analysis n)
              (Grammar.production g p).Grammar.rhs)
          prods
      in
      if viable = [] then None
      else begin
        let pick =
          if budget > 0 then List.nth viable (Random.State.int rng (List.length viable))
          else begin
            (* Budget exhausted: take a production with minimal yield. *)
            let cost p =
              Array.fold_left
                (fun acc sym ->
                  match sym with
                  | Symbol.Terminal _ -> acc + 1
                  | Symbol.Nonterminal n -> (
                    match Analysis.min_length analysis n with
                    | Some m -> acc + m
                    | None -> acc + 1000))
                0
                (Grammar.production g p).Grammar.rhs
            in
            List.fold_left
              (fun best p -> if cost p < cost best then p else best)
              (List.hd viable) (List.tl viable)
          end
        in
        let rhs = Array.to_list (Grammar.production g pick).Grammar.rhs in
        expand acc (rhs @ rest) (budget - 1)
      end
  in
  expand [] [ Symbol.Nonterminal (Grammar.start g) ] (max_len * 2)

let search ?(clock = Cex_session.Clock.system) ?(max_samples = 2000)
    ?(max_len = 25) ?(time_limit = 10.0) ?deadline ?(seed = 42) g =
  let deadline =
    match deadline with
    | Some d -> d
    | None -> Cex_session.Deadline.after clock time_limit
  in
  let started = Cex_session.Clock.now clock in
  let analysis = Analysis.make g in
  let earley = Earley.make g in
  let rng = Random.State.make [| seed |] in
  let start = Symbol.Nonterminal (Grammar.start g) in
  let found = ref None in
  let samples = ref 0 in
  while
    !found = None && !samples < max_samples
    && not (Cex_session.Deadline.expired deadline)
  do
    incr samples;
    match sample_sentence rng g analysis ~max_len with
    | None -> ()
    | Some sentence ->
      (* Ambiguity checking is the expensive part; keep sentences short. *)
      if
        List.length sentence <= max_len
        && Earley.ambiguous_from earley ~start
             (List.map (fun t -> Symbol.Terminal t) sentence)
      then found := Some sentence
  done;
  { ambiguous = !found;
    samples = !samples;
    elapsed = Cex_session.Clock.now clock -. started }
