(** SinBAD-style random ambiguity sampling (paper, section 8): expand random
    derivations from the start symbol and test each sampled sentence for
    multiple parses. *)

open Cfg

type result = {
  ambiguous : int list option;  (** a sampled ambiguous sentence (terminals) *)
  samples : int;
  elapsed : float;
}

val search :
  ?clock:Cex_session.Clock.t ->
  ?max_samples:int ->
  ?max_len:int ->
  ?time_limit:float ->
  ?deadline:Cex_session.Deadline.t ->
  ?seed:int ->
  Grammar.t ->
  result
(** Defaults: 2000 samples, sentences up to 25 terminals, 10 s on the
    monotonic system clock; an explicit [deadline] overrides
    [time_limit]. *)
