(** The AMBER / DMS baseline: breadth-first enumeration of leftmost
    derivations with duplicate-sentence detection. Accurate but exponential;
    included for the paper's efficiency comparison (section 7.3 and related
    work). *)

open Cfg

type result = {
  ambiguous : int list option;
      (** the first sentence (terminal indices) derived by two distinct
          leftmost derivations, if one was found *)
  sentences : int;
  forms_explored : int;
  elapsed : float;
  exhausted : bool;
      (** the space up to [max_length] was fully explored (so the grammar is
          unambiguous for sentences within the bound) *)
}

val search :
  ?clock:Cex_session.Clock.t ->
  ?max_length:int ->
  ?max_forms:int ->
  ?time_limit:float ->
  ?deadline:Cex_session.Deadline.t ->
  ?start_nonterminal:int option ->
  Grammar.t ->
  result
(** Defaults: sentences up to 12 terminals, 2M sentential forms, 30 s on
    the monotonic system clock. An explicit [deadline] overrides
    [time_limit] entirely (used by {!Bounded_checker} to share one budget
    across bounds); it is checked on entry and polled every
    {!Cex_session.Deadline.poll_interval} forms. *)
