open Cfg

(* CFGAnalyzer substitute (see DESIGN.md): the real tool encodes "some
   nonterminal derives an ambiguous phrase of length <= k" into SAT and
   increments k until satisfiable. With no SAT solver available offline, we
   decide the same per-bound question by exhaustive enumeration with
   duplicate detection, re-checked from scratch for each k exactly as the
   incremental SAT encoding re-solves per bound. The two properties the
   paper's comparison rests on are preserved: the tool searches globally
   (per grammar, not per conflict), and it stops at the first ambiguous
   phrase found. Like CFGAnalyzer, it never terminates on unambiguous
   grammars except by hitting its limits. *)

type result = {
  ambiguous : (int * int list) option;
      (** ambiguous nonterminal and the duplicated phrase *)
  bound_reached : int;
  elapsed : float;
}

let check ?(clock = Cex_session.Clock.system) ?(max_bound = 12)
    ?(time_limit = 30.0) ?deadline g =
  (* One deadline for the whole check, shared with every inner brute-force
     run: the per-bound searches stop exactly when the overall budget does,
     with no per-call remaining-time arithmetic. *)
  let deadline =
    match deadline with
    | Some d -> d
    | None -> Cex_session.Deadline.after clock time_limit
  in
  let started = Cex_session.Clock.now clock in
  let analysis = Analysis.make g in
  let interesting nt =
    Analysis.reachable analysis nt && Analysis.productive analysis nt
  in
  let found = ref None in
  let bound = ref 0 in
  while
    !found = None && !bound < max_bound
    && not (Cex_session.Deadline.expired deadline)
  do
    incr bound;
    let rec try_nonterminals nt =
      if nt < Grammar.n_nonterminals g && !found = None then begin
        if interesting nt then begin
          let r =
            Brute_force.search ~clock ~max_length:!bound ~deadline
              ~start_nonterminal:(Some nt) g
          in
          match r.Brute_force.ambiguous with
          | Some phrase -> found := Some (nt, phrase)
          | None -> ()
        end;
        try_nonterminals (nt + 1)
      end
    in
    (* Nonterminal 0 is the augmented START; skip it. *)
    try_nonterminals 1
  done;
  { ambiguous = !found;
    bound_reached = !bound;
    elapsed = Cex_session.Clock.now clock -. started }
