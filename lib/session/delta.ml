open Cfg

type fingerprint = {
  fp_grammar : Grammar.t;
  symbols_digest : string;
  prod_digests : string array;  (* per production index *)
  nt_digests : string array;  (* per nonterminal: digest of its digest list *)
}

let grammar fp = fp.fp_grammar

let production_text g p =
  let prod = Grammar.production g p in
  let b = Buffer.create 64 in
  Buffer.add_string b (Grammar.nonterminal_name g prod.Grammar.lhs);
  Buffer.add_string b " ::=";
  Array.iter
    (fun sym ->
      Buffer.add_char b ' ';
      Buffer.add_string b (Grammar.symbol_name g sym))
    prod.Grammar.rhs;
  (match prod.Grammar.prec_tag with
  | None -> ()
  | Some t ->
      Buffer.add_string b " %prec ";
      Buffer.add_string b (Grammar.terminal_name g t));
  Buffer.contents b

let symbols_digest g =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int (Grammar.n_terminals g));
  for t = 0 to Grammar.n_terminals g - 1 do
    Buffer.add_char b '\x00';
    Buffer.add_string b (Grammar.terminal_name g t);
    match Grammar.terminal_prec g t with
    | None -> ()
    | Some (level, assoc) ->
        Buffer.add_char b '\x01';
        Buffer.add_string b (string_of_int level);
        Buffer.add_string b
          (match assoc with
          | Grammar.Left -> "l"
          | Grammar.Right -> "r"
          | Grammar.Nonassoc -> "n")
  done;
  Buffer.add_char b '\x02';
  Buffer.add_string b (string_of_int (Grammar.n_nonterminals g));
  for nt = 0 to Grammar.n_nonterminals g - 1 do
    Buffer.add_char b '\x00';
    Buffer.add_string b (Grammar.nonterminal_name g nt)
  done;
  Buffer.add_char b '\x03';
  Buffer.add_string b (string_of_int (Grammar.start g));
  Digest.string (Buffer.contents b)

let fingerprint g =
  let n_prods = Grammar.n_productions g in
  let prod_digests =
    Array.init n_prods (fun p -> Digest.string (production_text g p))
  in
  let nt_digests =
    Array.init (Grammar.n_nonterminals g) (fun nt ->
        let b = Buffer.create 64 in
        List.iter
          (fun p -> Buffer.add_string b prod_digests.(p))
          (Grammar.productions_of g nt);
        Digest.string (Buffer.contents b))
  in
  { fp_grammar = g; symbols_digest = symbols_digest g; prod_digests;
    nt_digests }

let similarity base next =
  if not (String.equal base.symbols_digest next.symbols_digest) then 0.0
  else
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun d ->
        Hashtbl.replace counts d
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
      base.prod_digests;
    let shared = ref 0 in
    Array.iter
      (fun d ->
        match Hashtbl.find_opt counts d with
        | Some n when n > 0 ->
            incr shared;
            Hashtbl.replace counts d (n - 1)
        | _ -> ())
      next.prod_digests;
    let total = Array.length next.prod_digests in
    if total = 0 then 1.0 else float_of_int !shared /. float_of_int total

type diff = {
  compatible : bool;
  changed : bool array;
  unchanged : bool array;
  changed_nonterminals : int;
  unchanged_nonterminals : int;
  total_nonterminals : int;
  remap_production : int -> int option;
}

let count xs = Array.fold_left (fun n b -> if b then n + 1 else n) 0 xs

(* Pair each base production with the k-th occurrence of its digest among
   the same nonterminal's productions in [next], so duplicated rules map
   stably. *)
let build_remap ~base ~next =
  let gb = base.fp_grammar and gn = next.fp_grammar in
  let map = Array.make (Grammar.n_productions gb) None in
  for nt = 0 to Grammar.n_nonterminals gb - 1 do
    let next_prods = Array.of_list (Grammar.productions_of gn nt) in
    let used = Array.make (Array.length next_prods) false in
    List.iter
      (fun pb ->
        let d = base.prod_digests.(pb) in
        let found = ref false in
        Array.iteri
          (fun i pn ->
            if
              (not !found) && (not used.(i))
              && String.equal next.prod_digests.(pn) d
            then begin
              used.(i) <- true;
              found := true;
              map.(pb) <- Some pn
            end)
          next_prods)
      (Grammar.productions_of gb nt)
  done;
  fun p -> if p < 0 || p >= Array.length map then None else map.(p)

let diff ~base ~next =
  let gn = next.fp_grammar in
  let n_nt = Grammar.n_nonterminals gn in
  let compatible =
    String.equal base.symbols_digest next.symbols_digest
    && Grammar.n_nonterminals base.fp_grammar = n_nt
  in
  if not compatible then
    { compatible = false; changed = Array.make n_nt true;
      unchanged = Array.make n_nt false; changed_nonterminals = n_nt;
      unchanged_nonterminals = 0; total_nonterminals = n_nt;
      remap_production = (fun _ -> None) }
  else begin
    let changed =
      Array.init n_nt (fun nt ->
          not (String.equal base.nt_digests.(nt) next.nt_digests.(nt)))
    in
    (* Affected = reaches a changed nonterminal through rhs occurrences in
       [next]. Out-edges of unchanged nonterminals coincide in both
       grammars, so reverse reachability in [next] alone certifies the
       shared forward subgraph. *)
    let occurs_in = Array.make n_nt [] in
    for p = 0 to Grammar.n_productions gn - 1 do
      let prod = Grammar.production gn p in
      Array.iter
        (function
          | Symbol.Nonterminal b ->
              if not (List.mem prod.Grammar.lhs occurs_in.(b)) then
                occurs_in.(b) <- prod.Grammar.lhs :: occurs_in.(b)
          | Symbol.Terminal _ -> ())
        prod.Grammar.rhs
    done;
    let affected = Array.copy changed in
    let queue = Queue.create () in
    Array.iteri (fun nt c -> if c then Queue.add nt queue) changed;
    while not (Queue.is_empty queue) do
      let b = Queue.pop queue in
      List.iter
        (fun lhs ->
          if not affected.(lhs) then begin
            affected.(lhs) <- true;
            Queue.add lhs queue
          end)
        occurs_in.(b)
    done;
    let unchanged = Array.map not affected in
    { compatible = true; changed; unchanged;
      changed_nonterminals = count changed;
      unchanged_nonterminals = count unchanged;
      total_nonterminals = n_nt;
      remap_production = build_remap ~base ~next }
  end

let warm_analysis ~base ~diff g =
  if (not diff.compatible) || diff.unchanged_nonterminals = 0 then None
  else
    Some
      (Analysis.make_warm ~base ~unchanged:diff.unchanged
         ~remap_production:diff.remap_production g)
