(** Production-level content addressing and grammar deltas.

    The whole-spec digest used by the service cache ({!Cex_service.Cache}
    in the service layer) can only answer "is this exactly the grammar I
    already analyzed?". This module addresses grammars at the production
    level so the server can find the {e closest} cached session for an
    edited spec and decide which parts of its analysis survive the edit.

    A {!fingerprint} hashes the symbol tables once and every production
    individually; {!diff} aligns two compatible fingerprints and certifies,
    per nonterminal, whether its entire forward production subgraph is
    textually unchanged — exactly the precondition of
    {!Cfg.Analysis.make_warm}. *)

type fingerprint

val fingerprint : Cfg.Grammar.t -> fingerprint
val grammar : fingerprint -> Cfg.Grammar.t

val production_text : Cfg.Grammar.t -> int -> string
(** Canonical one-line rendering of a production — left-hand-side name,
    right-hand-side symbol names and any [%prec] tag — independent of
    symbol and production {e indices}, so textually identical rules digest
    equally across re-parses of an edited spec. *)

val similarity : fingerprint -> fingerprint -> float
(** Fraction of [next]'s productions (second argument) whose canonical
    digest also occurs in [base], counted as a multiset intersection; [1.0]
    means every production of [next] already exists in [base]. Incompatible
    symbol tables score [0.0]. Used to rank cached sessions as reuse
    bases. *)

type diff = {
  compatible : bool;
      (** identical terminal/nonterminal tables, precedence declarations
          and start symbol — the precondition for index-based reuse; when
          false every other field is vacuous *)
  changed : bool array;
      (** per [next]-nonterminal: its own production list differs *)
  unchanged : bool array;
      (** per [next]-nonterminal: no nonterminal reachable from it (itself
          included) is changed, i.e. its forward production subgraph is
          textually identical in both grammars *)
  changed_nonterminals : int;
  unchanged_nonterminals : int;
  total_nonterminals : int;
  remap_production : int -> int option;
      (** base production index -> the textually identical production's
          index in [next]; total on productions of unchanged nonterminals,
          best-effort (digest + occurrence matching) elsewhere *)
}

val diff : base:fingerprint -> next:fingerprint -> diff

val warm_analysis :
  base:Cfg.Analysis.t ->
  diff:diff ->
  Cfg.Grammar.t ->
  (Cfg.Analysis.t * Cfg.Analysis.warm_stats) option
(** Run {!Cfg.Analysis.make_warm} seeded from [base] under the certificate
    computed by [diff] (which must have been taken with [base]'s grammar as
    its [base] side and this grammar as [next]). [None] when the diff is
    incompatible or nothing is unchanged — callers fall back to the cold
    {!Cfg.Analysis.make}. *)
