type fake = {
  mutable time : float;
  mutable auto_advance : float;
}

type t =
  | System
  | Faked of fake

let system = System

(* bechamel's CLOCK_MONOTONIC stub returns nanoseconds as int64; every
   consumer of this module works in float seconds. *)
let monotonic_seconds () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let now = function
  | System -> monotonic_seconds ()
  | Faked f ->
    let t = f.time in
    f.time <- t +. f.auto_advance;
    t

module Fake = struct
  type t = fake

  let now f = f.time
  let advance f seconds = f.time <- f.time +. seconds
  let set f time = f.time <- time
  let set_auto_advance f seconds = f.auto_advance <- seconds
end

let fake ?(start = 0.0) ?(auto_advance = 0.0) () =
  let f = { time = start; auto_advance } in
  (Faked f, f)
