(* Shared domain-pool primitive for both fan-out levels: the service
   scheduler's grammar/conflict batches and the driver's intra-session
   conflict fan-out. Workers pull indices from an atomic counter, so the
   assignment of items to domains is dynamic but the result array is
   indexed — callers get deterministic output order for free. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Oversubscribing domains past the machine is strictly counterproductive
   for this workload: the searches allocate heavily, every minor
   collection is a stop-the-world sync across all live domains, and
   domains timesharing a core turn each sync into a scheduling round trip
   (measured: jobs 4 on one core runs ~1.5x slower than jobs 1). *)
let clamp_jobs jobs = max 1 (min jobs (default_jobs ()))

let tune_gc () =
  let g = Gc.get () in
  (* 8M words (64 MB on 64-bit) per domain. The counterexample searches
     allocate short-lived configurations at a rate that makes the default
     256k-word minor heap collect thousands of times per corpus run; the
     larger nursery cuts end-to-end wall time ~2x. A batch analysis also
     retains each session (automaton, lookaheads, memo tables) only briefly,
     so a laxer major-heap overhead trades peak memory for markedly fewer
     major slices — the slices otherwise land mid-measurement as
     multi-millisecond latency spikes. Respect explicitly larger settings
     from OCAMLRUNPARAM. *)
  let minor_target = 8 * 1024 * 1024 in
  let overhead_target = 400 in
  let tuned =
    { g with
      Gc.minor_heap_size = max g.Gc.minor_heap_size minor_target;
      Gc.space_overhead = max g.Gc.space_overhead overhead_target }
  in
  if tuned <> g then Gc.set tuned

let run ?(on_dequeue = fun (_ : int) -> ()) ~jobs n f =
  let jobs = clamp_jobs jobs in
  if n = 0 then [||]
  else begin
    on_dequeue n;
    if jobs <= 1 || n = 1 then
      Array.init n (fun i ->
          on_dequeue (n - i - 1);
          f i)
    else begin
      let next = Atomic.make 0 in
      let results = Array.make n None in
      let failure = Atomic.make None in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || Atomic.get failure <> None then continue := false
          else begin
            on_dequeue (n - i - 1);
            (try results.(i) <- Some (f i)
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt)));
               continue := false)
          end
        done
      in
      let domains =
        Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join domains;
      (match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* no failure => every slot filled *))
        results
    end
  end

