(** The one injectable time source of the analysis pipeline.

    Every layer that needs the time — the driver's per-conflict accounting,
    deadline checks inside the search loops, the baselines, the batch
    scheduler's stats — reads it through a [Clock.t] threaded down from the
    session, never from [Unix.gettimeofday] directly. Two consequences:

    - the production clock is {e monotonic} (CLOCK_MONOTONIC via bechamel's
      stub), so deadlines cannot fire early or late when the wall clock is
      stepped by NTP;
    - tests inject a {!fake} clock and drive simulated time by hand, making
      timeout behavior deterministic without real sleeps. *)

type t

val system : t
(** The monotonic system clock. Readings are seconds from an arbitrary
    origin: only differences are meaningful. *)

val now : t -> float
(** Current reading in seconds. On a fake clock this returns the simulated
    time and then advances it by the configured auto-advance step (0 by
    default), so a test can both freeze time and script "each clock read
    costs [s] seconds". *)

(** Handle for driving a fake clock from a test. Not domain-safe: fake
    clocks are for single-threaded deterministic tests. *)
module Fake : sig
  type t

  val now : t -> float
  (** Peek without advancing (unlike {!val:now} on the clock itself). *)

  val advance : t -> float -> unit
  val set : t -> float -> unit

  val set_auto_advance : t -> float -> unit
  (** Seconds added after every {!val:now} read through the clock. *)
end

val fake : ?start:float -> ?auto_advance:float -> unit -> t * Fake.t
(** A simulated clock starting at [start] (default 0) plus the handle that
    moves it. *)
