(** Monotonic deadlines: the single budget mechanism of the pipeline.

    A deadline is created once at the top of a run (batch scheduler or
    sequential driver) and passed {e down} — driver, lookahead-path Dijkstra,
    product-parser search, baselines — instead of each layer keeping its own
    start timestamp and clamping logic. Two enforcement flavors share the
    interface:

    - a {e wall deadline} ({!at}/{!after}): expires when its clock passes a
      fixed instant — the per-conflict time limit, and the sequential
      cumulative budget;
    - a {e work budget} ({!budget}): a mutex-guarded reservoir of seconds
      drained by {!consume} — the batch scheduler's cumulative budget, which
      must meter search time {e consumed} across worker domains rather than
      wall time, so that running conflicts in parallel does not shrink the
      effective budget.

    {!clamp} derives the per-conflict wall deadline from the cumulative
    deadline, subsuming the driver's old [clamp_to_budget] and the baselines'
    hand-rolled [remaining ()] closures. *)

type t

val never : t
(** Never expires; {!expired} is [false] and {!remaining} is [None]. *)

val at : Clock.t -> float -> t
(** Expires once the clock reading reaches the given instant. *)

val after : Clock.t -> float -> t
(** [after clock seconds] = [at clock (Clock.now clock +. seconds)]. *)

val budget : Clock.t -> float -> t
(** A consumable budget of [seconds], drained explicitly by {!consume};
    thread-safe. *)

val clock : t -> Clock.t option
(** The time source behind the deadline ([None] for {!never}) — lets callees
    measure elapsed time on the same clock that enforces their deadline. *)

val remaining : t -> float option
(** Seconds left ([None] = unbounded). May be negative once overshot. *)

val expired : t -> bool
(** [remaining <= 0]. A wall deadline expires {e at} the exact instant the
    clock reaches it (important for fake-clock tests). *)

val consume : t -> float -> unit
(** Drain seconds from a {!budget} deadline; a no-op on the other flavors,
    so callers can report consumed work unconditionally. *)

val clamp : t -> clock:Clock.t -> seconds:float -> t * bool
(** [clamp cumulative ~clock ~seconds] prepares the deadline for the next
    unit of work under a cumulative budget: the returned deadline expires
    after [min seconds (remaining cumulative)] on [clock], and the returned
    flag is [true] when the cumulative budget is already exhausted (the
    caller should skip the work entirely). *)

val poll_interval : int
(** How many loop iterations a search may run between deadline checks —
    one shared constant (a power of two) for every polling loop, replacing
    the scattered [land 255] / [land 1023] masks. Loops must also check the
    deadline on entry so an already-expired deadline does no work. *)

val poll_mask : int
(** [poll_interval - 1], for [iterations land poll_mask = 0] checks. *)
