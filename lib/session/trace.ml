type metric = {
  seconds : float;
  spans : int;
  counters : (string * int) list;
}

type metrics = (string * metric) list

type sink = {
  on_span : string -> float -> unit;
  on_count : string -> string -> int -> unit;
}

let null = { on_span = (fun _ _ -> ()); on_count = (fun _ _ _ -> ()) }
let make ~on_span ~on_count = { on_span; on_count }
let span sink stage seconds = sink.on_span stage seconds
let count sink stage counter n = sink.on_count stage counter n

let prefixed prefix sink =
  { on_span = (fun stage seconds -> sink.on_span (prefix ^ stage) seconds);
    on_count =
      (fun stage counter n -> sink.on_count (prefix ^ stage) counter n) }

let timed sink clock stage f =
  let t0 = Clock.now clock in
  let r = f () in
  span sink stage (Clock.now clock -. t0);
  r

let timed_alloc sink clock stage f =
  let t0 = Clock.now clock in
  let w0 = Gc.minor_words () in
  let r = f () in
  let words = Gc.minor_words () -. w0 in
  span sink stage (Clock.now clock -. t0);
  count sink stage "alloc_words" (int_of_float words);
  r

(* ------------------------------------------------------------------ *)

type entry = {
  mutable acc_seconds : float;
  mutable acc_spans : int;
  acc_counters : (string, int ref) Hashtbl.t;
}

type collector = {
  lock : Mutex.t;
  stages : (string, entry) Hashtbl.t;
}

let collector () = { lock = Mutex.create (); stages = Hashtbl.create 8 }

let entry_of c stage =
  match Hashtbl.find_opt c.stages stage with
  | Some e -> e
  | None ->
    let e =
      { acc_seconds = 0.0; acc_spans = 0; acc_counters = Hashtbl.create 4 }
    in
    Hashtbl.add c.stages stage e;
    e

let with_lock c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let collector_sink c =
  { on_span =
      (fun stage seconds ->
        with_lock c (fun () ->
            let e = entry_of c stage in
            e.acc_seconds <- e.acc_seconds +. seconds;
            e.acc_spans <- e.acc_spans + 1));
    on_count =
      (fun stage counter n ->
        with_lock c (fun () ->
            let e = entry_of c stage in
            match Hashtbl.find_opt e.acc_counters counter with
            | Some r -> r := !r + n
            | None -> Hashtbl.add e.acc_counters counter (ref n))) }

let absorb c (m : metrics) =
  with_lock c (fun () ->
      List.iter
        (fun (stage, metric) ->
          let e = entry_of c stage in
          e.acc_seconds <- e.acc_seconds +. metric.seconds;
          e.acc_spans <- e.acc_spans + metric.spans;
          List.iter
            (fun (name, n) ->
              match Hashtbl.find_opt e.acc_counters name with
              | Some r -> r := !r + n
              | None -> Hashtbl.add e.acc_counters name (ref n))
            metric.counters)
        m)

let replay_counters sink (m : metrics) =
  List.iter
    (fun (stage, metric) ->
      List.iter (fun (name, n) -> count sink stage name n) metric.counters)
    m

let metrics c =
  with_lock c (fun () ->
      Hashtbl.fold
        (fun stage e acc ->
          ( stage,
            { seconds = e.acc_seconds;
              spans = e.acc_spans;
              counters =
                Hashtbl.fold
                  (fun name r acc -> (name, !r) :: acc)
                  e.acc_counters []
                |> List.sort (fun (a, _) (b, _) -> String.compare a b) } )
          :: acc)
        c.stages []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let pp_metrics ppf (m : metrics) =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i (stage, e) ->
      if i > 0 then Fmt.cut ppf ();
      Fmt.pf ppf "stage %-16s %9.3f ms  spans %5d" stage (e.seconds *. 1e3)
        e.spans;
      List.iter (fun (name, n) -> Fmt.pf ppf "  %s %d" name n) e.counters)
    m;
  Fmt.pf ppf "@]"
