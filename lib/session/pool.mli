(** Work-stealing-free domain pool: [run ~jobs n f] evaluates [f i] for
    every [i < n] across at most [jobs] domains (the calling domain
    included) and returns the results indexed by [i] — deterministic output
    order regardless of which domain ran what.

    Workers pull indices from a shared atomic counter. The first exception
    raised by any item wins, stops all workers at their next dequeue, and is
    re-raised (with its backtrace) after every domain has been joined.

    [on_dequeue] is a depth gauge for stats: it is called with [n] before
    any work starts and with the number of items still queued after each
    dequeue. With [jobs <= 1] (or a single item) everything runs inline on
    the calling domain — no domains are spawned, exceptions propagate
    directly, and [on_dequeue] fires identically.

    [jobs] is clamped to {!clamp_jobs} — more domains than cores is
    strictly slower for this allocation-heavy workload (every minor
    collection is a stop-the-world sync across all live domains), so the
    pool never oversubscribes no matter what the caller asks for. *)

val run : ?on_dequeue:(int -> unit) -> jobs:int -> int -> (int -> 'a) -> 'a array

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], the whole machine. *)

val clamp_jobs : int -> int
(** [max 1 (min jobs (default_jobs ()))] — the effective worker count
    {!run} will use. Exposed so callers sizing per-worker structures agree
    with the pool. *)

val tune_gc : unit -> unit
(** Enlarge the per-domain minor heap (to 8M words) and relax the major
    heap's [space_overhead] (to 400) if the current settings are smaller.
    The conflict searches allocate short-lived configurations fast enough
    that the default 256k-word nursery collects thousands of times per
    corpus run, and an analysis retains each session only briefly, so the
    laxer overhead trades peak memory for markedly fewer major slices —
    which otherwise land mid-measurement as multi-millisecond latency
    spikes. Binaries call this once at startup (spawned domains inherit
    the settings); larger explicit [OCAMLRUNPARAM] settings are
    respected. *)
