type t =
  | Never
  | At of { clock : Clock.t; expires : float }
  | Budget of { clock : Clock.t; lock : Mutex.t; mutable left : float }

let poll_interval = 256
let poll_mask = poll_interval - 1

let never = Never
let at clock expires = At { clock; expires }
let after clock seconds = At { clock; expires = Clock.now clock +. seconds }

let budget clock seconds =
  Budget { clock; lock = Mutex.create (); left = seconds }

let clock = function
  | Never -> None
  | At { clock; _ } | Budget { clock; _ } -> Some clock

let remaining = function
  | Never -> None
  | At { clock; expires } -> Some (expires -. Clock.now clock)
  | Budget b ->
    Mutex.lock b.lock;
    let r = b.left in
    Mutex.unlock b.lock;
    Some r

let expired d =
  match remaining d with
  | None -> false
  | Some r -> r <= 0.0

let consume d seconds =
  match d with
  | Never | At _ -> ()
  | Budget b ->
    Mutex.lock b.lock;
    b.left <- b.left -. seconds;
    Mutex.unlock b.lock

let clamp d ~clock ~seconds =
  match remaining d with
  | None -> (after clock seconds, false)
  | Some r when r <= 0.0 -> (Never, true)
  | Some r -> (after clock (Float.min seconds r), false)
