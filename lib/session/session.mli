(** The unified analysis session: one record owning every per-grammar
    artifact of the pipeline — the grammar, its static {!Cfg.Analysis},
    the LR(0) automaton, LALR lookaheads, parse table, conflict list and
    the lint engine's static conflict classifications — plus the two
    cross-cutting facilities threaded through every layer: the injectable
    monotonic {!Clock} and the structured {!Trace} sink.

    A session is constructed {e exactly once} per grammar ({!create} is the
    only production call site of {!Automaton.Parse_table.build}) and passed
    down: the driver, the batch scheduler, the lint engine, the evaluation
    harness and both binaries all consume the same artifacts instead of
    re-deriving them. *)

open Automaton

type t

val create :
  ?clock:Clock.t -> ?trace:Trace.sink -> ?analysis:Cfg.Analysis.t ->
  Cfg.Grammar.t -> t
(** Build the automaton, parse table, conflicts and conflict
    classifications, emitting ["table_build"] and ["classify"] spans (and
    [states]/[conflicts] counters) into the trace. Defaults: the monotonic
    system clock, and a fresh private {!Trace.collector} whose snapshot
    {!metrics} returns; pass an explicit [trace] to aggregate elsewhere (in
    which case {!metrics} is empty). *)

val of_table : ?clock:Clock.t -> ?trace:Trace.sink -> Parse_table.t -> t
(** Wrap an already-built table (tests and tools); classifies conflicts but
    emits no build span. *)

val grammar : t -> Cfg.Grammar.t
val analysis : t -> Cfg.Analysis.t
val table : t -> Parse_table.t
val lalr : t -> Lalr.t
val lr0 : t -> Lr0.t

val conflicts : t -> Conflict.t list
(** Conflicts surviving precedence resolution, in automaton order. *)

val classification : t -> Conflict.t -> string
(** The lint engine's static classification, computed once at session
    construction for every conflict of the table; conflicts outside that
    list (e.g. precedence-resolved ones re-analyzed on demand) are
    classified on the fly. *)

val clock : t -> Clock.t
val trace : t -> Trace.sink

val metrics : t -> Trace.metrics
(** Snapshot of the session's private collector (empty when an external
    [trace] sink was injected). Cumulative across every analysis run
    through this session. *)
