(** The unified analysis session: one record owning every per-grammar
    artifact of the pipeline — the grammar, its static {!Cfg.Analysis},
    the LR(0) automaton, LALR lookaheads, parse table, conflict list and
    the lint engine's static conflict classifications — plus the two
    cross-cutting facilities threaded through every layer: the injectable
    monotonic {!Clock} and the structured {!Trace} sink.

    A session is constructed {e exactly once} per grammar ({!create} is the
    only production call site of {!Automaton.Parse_table.build}) and passed
    down: the driver, the batch scheduler, the lint engine, the evaluation
    harness and both binaries all consume the same artifacts instead of
    re-deriving them. *)

open Automaton

type t

(** Typed keys into the session's universal store of lazily-memoized search
    structures. Client modules (the driver, the searches) mint a key once at
    module initialization and use {!shared} to install/retrieve per-session
    values, so the session stays ignorant of their types. *)
module Store : sig
  type 'a key

  val key : unit -> 'a key
  (** Mint a fresh key. Two keys never alias, even at the same type. *)
end

val create :
  ?clock:Clock.t -> ?trace:Trace.sink -> ?analysis:Cfg.Analysis.t ->
  Cfg.Grammar.t -> t
(** Build the automaton, parse table, conflicts and conflict
    classifications, emitting ["table_build"] and ["classify"] spans (and
    [states]/[conflicts] counters) into the trace. Defaults: the monotonic
    system clock, and a fresh private {!Trace.collector} whose snapshot
    {!metrics} returns; pass an explicit [trace] to aggregate elsewhere (in
    which case {!metrics} is empty). *)

val of_table : ?clock:Clock.t -> ?trace:Trace.sink -> Parse_table.t -> t
(** Wrap an already-built table (tests and tools); classifies conflicts
    (emitting the same ["classify"] span as {!create}) but no build span. *)

val grammar : t -> Cfg.Grammar.t
val analysis : t -> Cfg.Analysis.t
val table : t -> Parse_table.t
val lalr : t -> Lalr.t
val lr0 : t -> Lr0.t

val conflicts : t -> Conflict.t list
(** Conflicts surviving precedence resolution, in automaton order. *)

val classification : t -> Conflict.t -> string
(** The lint engine's static classification, computed once at session
    construction for every conflict of the table; conflicts outside that
    list (e.g. precedence-resolved ones re-analyzed on demand) are
    classified on the fly. *)

val clock : t -> Clock.t
val trace : t -> Trace.sink

(** {1 Cross-conflict work sharing}

    All of the automaton-level structures below depend only on the session's
    immutable artifacts, so they are memoized on the session (mutex-guarded,
    first writer wins, immutable once installed) and shared by every conflict
    analyzed through it — sequentially or across domains. *)

val backward_reach : t -> state:int -> item_id:int -> int -> int -> bool
(** Memoized {!Automaton.Lr0.backward_reach}: the returned predicate tests
    whether a [(state, item id)] vertex can reach the target. One bitmap per
    distinct [(state, item_id)] target per session; conflicts on the same
    reduce item share it. *)

val shared : t -> 'a Store.key -> (unit -> 'a) -> 'a
(** [shared t key make]: the value installed under [key], forcing [make]
    under the session lock on first use. [make] must be cheap (allocate an
    empty table or a small record); expensive computation belongs outside,
    guarded by its own finer-grained locking. *)

(** {1 Metrics} *)

val has_private_collector : t -> bool
(** True when the session aggregates into its own private collector (no
    external [trace] sink was injected at construction). The parallel driver
    only buffers per-task metrics when this holds; with an external sink,
    tasks emit into it directly. *)

val absorb_metrics : t -> Trace.metrics -> unit
(** Merge a per-task metrics snapshot into the session's private collector.
    With an external sink, falls back to replaying only the counters. *)

val metrics : t -> Trace.metrics
(** Snapshot of the session's private collector (empty when an external
    [trace] sink was injected). Cumulative across every analysis run
    through this session. *)
