open Automaton

type t = {
  grammar : Cfg.Grammar.t;
  analysis : Cfg.Analysis.t;
  table : Parse_table.t;
  lalr : Lalr.t;
  lr0 : Lr0.t;
  conflicts : Conflict.t list;
  classifications : (Conflict.t * string) list;
  clock : Clock.t;
  trace : Trace.sink;
  collector : Trace.collector option;
}

let create ?(clock = Clock.system) ?trace ?analysis grammar =
  let collector, trace =
    match trace with
    | Some sink -> (None, sink)
    | None ->
      let c = Trace.collector () in
      (Some c, Trace.collector_sink c)
  in
  let t0 = Clock.now clock in
  let table = Parse_table.build ?analysis grammar in
  Trace.span trace "table_build" (Clock.now clock -. t0);
  let lalr = Parse_table.lalr table in
  let lr0 = Parse_table.lr0 table in
  let conflicts = Parse_table.conflicts table in
  Trace.count trace "table_build" "states" (Lr0.n_states lr0);
  Trace.count trace "table_build" "conflicts" (List.length conflicts);
  let t1 = Clock.now clock in
  let classifications =
    List.map (fun c -> (c, Cex_lint.Lint.classification lalr c)) conflicts
  in
  Trace.span trace "classify" (Clock.now clock -. t1);
  { grammar;
    analysis = Lalr.analysis lalr;
    table;
    lalr;
    lr0;
    conflicts;
    classifications;
    clock;
    trace;
    collector }

let of_table ?(clock = Clock.system) ?trace table =
  let collector, trace =
    match trace with
    | Some sink -> (None, sink)
    | None ->
      let c = Trace.collector () in
      (Some c, Trace.collector_sink c)
  in
  let lalr = Parse_table.lalr table in
  let conflicts = Parse_table.conflicts table in
  { grammar = Parse_table.grammar table;
    analysis = Lalr.analysis lalr;
    table;
    lalr;
    lr0 = Parse_table.lr0 table;
    conflicts;
    classifications =
      List.map (fun c -> (c, Cex_lint.Lint.classification lalr c)) conflicts;
    clock;
    trace;
    collector }

let grammar t = t.grammar
let analysis t = t.analysis
let table t = t.table
let lalr t = t.lalr
let lr0 t = t.lr0
let conflicts t = t.conflicts
let clock t = t.clock
let trace t = t.trace

let classification t conflict =
  let rec find = function
    | [] -> Cex_lint.Lint.classification t.lalr conflict
    | (c, code) :: rest ->
      if c == conflict || c = conflict then code else find rest
  in
  find t.classifications

let metrics t =
  match t.collector with
  | Some c -> Trace.metrics c
  | None -> []
