(** Structured trace sink: per-stage timings and counters threaded through
    every pipeline layer.

    A {!sink} is a pair of callbacks. Producers — session construction, the
    driver, the Dijkstra path search, the product-parser search — emit one
    {e span} per completed stage execution (stage name + seconds) and flat
    {e counters} (Dijkstra relaxations, product-search configurations
    explored, queue pushes, cache hits), always once per stage run, never
    inside a hot loop. Consumers choose the sink:

    - {!null} drops everything (zero overhead beyond a closure call);
    - a {!collector} accumulates cumulative seconds/spans/counters per
      stage, mutex-guarded so worker domains can share it, and freezes into
      {!metrics} — the ["metrics"] object of the JSON report and the
      [--trace] text section;
    - {!make} builds a custom sink; the bench harness records every span to
      compute per-stage medians. *)

type metric = {
  seconds : float;  (** cumulative seconds across spans *)
  spans : int;  (** completed stage executions *)
  counters : (string * int) list;  (** sorted by counter name *)
}

type metrics = (string * metric) list
(** Per-stage snapshot, sorted by stage name. *)

type sink

val null : sink
val make : on_span:(string -> float -> unit) -> on_count:(string -> string -> int -> unit) -> sink

val span : sink -> string -> float -> unit
(** [span sink stage seconds]: one completed execution of [stage]. *)

val count : sink -> string -> string -> int -> unit
(** [count sink stage counter n]: add [n] to a named counter of [stage]. *)

val prefixed : string -> sink -> sink
(** [prefixed p sink]: a sink that forwards every span and counter with [p]
    prepended to the stage name. The driver wraps the engine-specific stages
    this way (["product."] / ["srwalk."]) so per-engine medians never collide
    in bench JSON; engine code emits bare stage names (["search"],
    ["nonunifying"]) and stays namespace-agnostic. *)

val timed : sink -> Clock.t -> string -> (unit -> 'a) -> 'a
(** Run a thunk and emit its duration as a span. *)

val timed_alloc : sink -> Clock.t -> string -> (unit -> 'a) -> 'a
(** Like {!timed}, but additionally emits an ["alloc_words"] counter with
    the [Gc.minor_words] delta across the thunk — the measure the arena
    work in the searches is judged by. Reports render this counter as a
    float so [--zero-floats] normalizes it away alongside the timings. *)

(** {1 The accumulating collector} *)

type collector

val collector : unit -> collector
val collector_sink : collector -> sink

val metrics : collector -> metrics
(** Snapshot; safe to call while domains are still emitting. *)

val absorb : collector -> metrics -> unit
(** Merge a metrics snapshot into the collector: add seconds, spans, and
    counters stage by stage. Worker domains buffer into a local collector
    and absorb the result once, instead of contending on the shared lock
    from inside search loops. *)

val replay_counters : sink -> metrics -> unit
(** Re-emit only the counters of a snapshot into a sink (no spans). Used
    when memoized search work is installed in a session: the domain that
    computed the result replays its counters so totals stay deterministic
    regardless of which domain won the race. *)

val pp_metrics : Format.formatter -> metrics -> unit
(** Text rendering for [--trace]: one line per stage. *)
