(* Corpus-wide engine-equivalence transcript.

   Renders, for every conflict of every corpus grammar, everything the two
   searches produce: the shortest lookahead-sensitive path, the product-search
   outcome with its explored-configuration count, the unifying counterexample
   (form and both derivations), and the nonunifying counterexample. The
   transcript is fully deterministic: the product search runs under a
   configuration budget instead of a wall-clock limit, so the text depends
   only on the engine's exploration order — any change to search order, cost
   accounting, or counterexample construction shows up as a diff against
   test/equivalence.golden (captured from the seed engine). *)

open Cfg
open Automaton

let default_max_configs = 10_000

let pp_syms g ppf syms =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any " ") Fmt.string)
    (List.map (Grammar.symbol_name g) syms)

let pp_deriv g ppf = function
  | None -> Fmt.string ppf "-"
  | Some d -> Derivation.pp g ppf d

let add_conflict buf g lalr ~max_configs (c : Conflict.t) =
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  let kind = if Conflict.is_shift_reduce c then "SR" else "RR" in
  pf "-- conflict state=%d terminal=%s kind=%s reduce={%s} other={%s}\n"
    c.Conflict.state
    (Grammar.terminal_name g c.Conflict.terminal)
    kind
    (Item.to_string g (Conflict.reduce_item c))
    (Item.to_string g (Conflict.other_item c));
  let path =
    Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
      ~reduce_item:(Conflict.reduce_item c) ~terminal:c.Conflict.terminal
  in
  (match path with
  | None -> pf "path: none\n"
  | Some path ->
    pf "path: nodes=%d prefix=%s states=[%a]\n"
      (List.length path.Cex.Lookahead_path.nodes)
      (Fmt.str "%a" (pp_syms g) (Cex.Lookahead_path.prefix_symbols path))
      (Fmt.list ~sep:(Fmt.any " ") Fmt.int)
      (Cex.Lookahead_path.states_on_path path));
  (match path with
  | None -> ()
  | Some path ->
    (* No deadline: outcomes must be decided by the configuration budget,
       never by wall-clock time, or the transcript would be flaky. *)
    let outcome =
      Cex.Product_search.search ~max_configs lalr ~conflict:c
        ~path_states:(Cex.Lookahead_path.states_on_path path)
    in
    (match outcome with
    | Cex.Product_search.Unifying (u, stats) ->
      pf "search: unifying configs=%d\n"
        stats.Cex.Product_search.configs_explored;
      pf "u: nt=%s form=%s\n"
        (Grammar.nonterminal_name g u.Cex.Product_search.nonterminal)
        (Fmt.str "%a" (pp_syms g) u.Cex.Product_search.form);
      pf "u-d1: %s\n"
        (Derivation.to_string g u.Cex.Product_search.deriv1);
      pf "u-d2: %s\n"
        (Derivation.to_string g u.Cex.Product_search.deriv2)
    | Cex.Product_search.Timeout stats ->
      pf "search: budget configs=%d\n"
        stats.Cex.Product_search.configs_explored
    | Cex.Product_search.Exhausted stats ->
      pf "search: exhausted configs=%d\n"
        stats.Cex.Product_search.configs_explored));
  match Cex.Nonunifying.construct lalr c with
  | None -> pf "nu: none\n"
  | Some nu ->
    pf "nu: prefix=%s reduce=%s other=%s\n"
      (Fmt.str "%a" (pp_syms g) nu.Cex.Nonunifying.prefix)
      (Fmt.str "%a" (pp_syms g) nu.Cex.Nonunifying.reduce_continuation)
      (Fmt.str "%a" (pp_syms g) nu.Cex.Nonunifying.other_continuation);
    pf "nu-d1: %s\n"
      (Fmt.str "%a" (pp_deriv g) nu.Cex.Nonunifying.deriv1);
    pf "nu-d2: %s\n"
      (Fmt.str "%a" (pp_deriv g) nu.Cex.Nonunifying.deriv2)

let grammar_summary buf ~max_configs (entry : Corpus.entry) =
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  let g = Corpus.grammar entry in
  let session =
    Cex_session.Session.create ~trace:Cex_session.Trace.null g
  in
  let table = Cex_session.Session.table session in
  let lalr = Cex_session.Session.lalr session in
  let conflicts = Cex_session.Session.conflicts session in
  pf "== %s conflicts=%d states=%d\n" entry.Corpus.name
    (List.length conflicts)
    (Lr0.n_states (Parse_table.lr0 table));
  List.iter (add_conflict buf g lalr ~max_configs) conflicts

let summary ?(max_configs = default_max_configs) () =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf
    (Fmt.str "equivalence transcript v1 max_configs=%d\n" max_configs);
  List.iter (grammar_summary buf ~max_configs) (Corpus.all ());
  Buffer.contents buf
