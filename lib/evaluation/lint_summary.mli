(** Corpus-wide lint summary: run the {!Cex_lint.Lint} engine over every
    {!Corpus} entry and tabulate diagnostics and conflict classifications.
    Purely static — no counterexample search runs, so the whole corpus lints
    in well under a second and the output is byte-deterministic (the basis
    of the committed golden lint transcript). *)

open Automaton

type row = {
  entry : Corpus.entry;
  table : Parse_table.t;
  report : Cex_lint.Lint.report;
  errors : int;
  warnings : int;
  infos : int;
  conflicts : int;  (** unresolved automaton conflicts *)
  unclassified : int;  (** conflicts matching no static pattern *)
}

val run_row : Corpus.entry -> row
val run_rows : Corpus.entry list -> row list

val code_totals : row list -> (string * int) list
(** Diagnostic counts per rule code over all rows, in catalog order;
    codes that never fired are omitted. *)

val pp_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> row -> unit

val pp_table : Format.formatter -> row list -> unit
(** Per-grammar rows, a totals line, and the per-code tally. *)

val corpus_rows : unit -> row list
(** {!run_rows} over {!Corpus.all}. *)

val corpus_json : unit -> Cex_service.Json.t
(** The canonical [lrcex lint --corpus --json] document
    ({!Cex_service.Json_report.lint_to_json} over {!corpus_rows}); both the
    CLI and the golden-transcript tool render exactly this value. *)
