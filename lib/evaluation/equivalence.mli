(** Corpus-wide engine-equivalence transcript: a deterministic textual record
    of every search outcome and counterexample on every corpus grammar,
    compared against [test/equivalence.golden] (captured from the seed
    engine) to prove that engine optimisations change nothing observable. *)

val default_max_configs : int
(** Product-search configuration budget used by the committed golden file. *)

val summary : ?max_configs:int -> unit -> string
(** The full transcript. Deterministic: outcomes are bounded by the
    configuration budget, never by wall-clock time. *)
