open Automaton

type row = {
  entry : Corpus.entry;
  table : Parse_table.t;
  report : Cex_lint.Lint.report;
  errors : int;
  warnings : int;
  infos : int;
  conflicts : int;
  unclassified : int;
}

let run_row (entry : Corpus.entry) =
  let session = Cex_session.Session.create (Corpus.grammar entry) in
  let table = Cex_session.Session.table session in
  let report = Cex_lint.Lint.report table in
  let diags = report.Cex_lint.Lint.diagnostics in
  { entry;
    table;
    report;
    errors = Cex_lint.Diagnostic.count Cex_lint.Diagnostic.Error diags;
    warnings = Cex_lint.Diagnostic.count Cex_lint.Diagnostic.Warning diags;
    infos = Cex_lint.Diagnostic.count Cex_lint.Diagnostic.Info diags;
    conflicts = List.length report.Cex_lint.Lint.classifications;
    unclassified =
      List.length
        (List.filter
           (fun (_, code) -> code = Cex_lint.Lint.unclassified)
           report.Cex_lint.Lint.classifications) }

let run_rows entries = List.map run_row entries

let code_totals rows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun (d : Cex_lint.Diagnostic.t) ->
          let code = d.Cex_lint.Diagnostic.code in
          Hashtbl.replace tbl code
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl code)))
        r.report.Cex_lint.Lint.diagnostics)
    rows;
  List.filter_map
    (fun (rule : Cex_lint.Lint.rule) ->
      Option.map
        (fun n -> (rule.Cex_lint.Lint.code, n))
        (Hashtbl.find_opt tbl rule.Cex_lint.Lint.code))
    Cex_lint.Lint.rules

let classification_of_row r code =
  List.length
    (List.filter (fun (_, c) -> c = code) r.report.Cex_lint.Lint.classifications)

let pp_header ppf () =
  Fmt.pf ppf "%-12s | %4s %4s %4s | %5s %7s %4s %4s %7s@." "Grammar" "err"
    "warn" "info" "#conf" "d-else" "rr" "prec" "unclass";
  Fmt.pf ppf "%s@." (String.make 66 '-')

let pp_row ppf r =
  Fmt.pf ppf "%-12s | %4d %4d %4d | %5d %7d %4d %4d %7d@."
    r.entry.Corpus.name r.errors r.warnings r.infos r.conflicts
    (classification_of_row r "dangling-else")
    (classification_of_row r "rr-overlap")
    (classification_of_row r "prec-resolvable")
    r.unclassified

let pp_table ppf rows =
  pp_header ppf ();
  List.iter (pp_row ppf) rows;
  Fmt.pf ppf "%s@." (String.make 66 '-');
  let sum f = List.fold_left (fun n r -> n + f r) 0 rows in
  Fmt.pf ppf "%-12s | %4d %4d %4d | %5d %7d %4d %4d %7d@." "total"
    (sum (fun r -> r.errors))
    (sum (fun r -> r.warnings))
    (sum (fun r -> r.infos))
    (sum (fun r -> r.conflicts))
    (sum (fun r -> classification_of_row r "dangling-else"))
    (sum (fun r -> classification_of_row r "rr-overlap"))
    (sum (fun r -> classification_of_row r "prec-resolvable"))
    (sum (fun r -> r.unclassified));
  Fmt.pf ppf "diagnostic codes seen:@.";
  List.iter
    (fun (code, n) -> Fmt.pf ppf "  %-24s %4d@." code n)
    (code_totals rows)

let corpus_rows () = run_rows (Corpus.all ())

let corpus_json () =
  Cex_service.Json_report.lint_to_json
    (List.map
       (fun r -> (r.entry.Corpus.name, r.table, r.report))
       (corpus_rows ()))
