(* Corpus-wide product-vs-srwalk agreement check.

   Every conflict of every corpus grammar is decided twice — once by the
   product search, once by the SR-automaton walk — under the same
   configuration budget and no wall-clock deadline, so the comparison is
   fully deterministic. The two engines deliberately share move semantics
   and exploration order (see lib/srwalk/walk.mli), so any disagreement in
   outcome category is a bug in one of the implementations. Every unifying
   witness the walk produces is additionally re-checked by the independent
   validation oracle. *)

open Automaton

let default_max_configs = 10_000

type summary = {
  grammars : int;
  conflicts : int;
  pathless : int;  (** conflicts with no lookahead-sensitive path *)
  unifying : int;  (** conflicts both engines decided Ambiguous/Unifying *)
  exhausted : int;
  capped : int;  (** conflicts where both engines hit the budget *)
  problems : string list;  (** empty = full agreement, all witnesses valid *)
}

let outcome_name = function
  | `Unifying -> "unifying"
  | `Exhausted -> "exhausted"
  | `Capped -> "capped"

let product_category = function
  | Cex.Product_search.Unifying _ -> `Unifying
  | Cex.Product_search.Exhausted _ -> `Exhausted
  | Cex.Product_search.Timeout _ -> `Capped

let walk_category = function
  | Cex_srwalk.Walk.Ambiguous _ -> `Unifying
  | Cex_srwalk.Walk.Exhausted _ -> `Exhausted
  | Cex_srwalk.Walk.Timeout _ -> `Capped

let check_conflict ~max_configs g lalr sr oracle problems counts name
    (c : Conflict.t) =
  let problem fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  match
    Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
      ~reduce_item:(Conflict.reduce_item c) ~terminal:c.Conflict.terminal
  with
  | None ->
    let pathless, _, _, _ = counts in
    incr pathless
  | Some path ->
    let path_states = Cex.Lookahead_path.states_on_path path in
    (* No deadline on either side: outcomes must be decided by the
       configuration budget alone, or the comparison would be flaky. *)
    let p =
      Cex.Product_search.search ~max_configs lalr ~conflict:c ~path_states
    in
    let s =
      Cex_srwalk.Walk.search ~max_nodes:max_configs sr ~conflict:c
        ~path_states
    in
    let pc = product_category p and sc = walk_category s in
    if pc <> sc then
      problem "%s state %d on %s: product %s vs srwalk %s" name
        c.Conflict.state
        (Cfg.Grammar.terminal_name g c.Conflict.terminal)
        (outcome_name pc) (outcome_name sc)
    else begin
      let _, unifying, exhausted, capped = counts in
      (match pc with
      | `Unifying -> incr unifying
      | `Exhausted -> incr exhausted
      | `Capped -> incr capped);
      match s with
      | Cex_srwalk.Walk.Ambiguous (a, _) -> (
        let u =
          { Cex.Product_search.nonterminal = a.Cex_srwalk.Walk.nonterminal;
            form = a.Cex_srwalk.Walk.sentential_form;
            deriv1 = a.Cex_srwalk.Walk.deriv1;
            deriv2 = a.Cex_srwalk.Walk.deriv2 }
        in
        match Cex_validate.Oracle.check_unifying (Lazy.force oracle) u with
        | [] -> ()
        | codes ->
          problem "%s state %d on %s: oracle rejects the srwalk witness: %s"
            name c.Conflict.state
            (Cfg.Grammar.terminal_name g c.Conflict.terminal)
            (String.concat ", " codes))
      | Cex_srwalk.Walk.Timeout _ | Cex_srwalk.Walk.Exhausted _ -> ()
    end

let run ?(max_configs = default_max_configs) () =
  let problems = ref [] in
  let grammars = ref 0 in
  let conflicts = ref 0 in
  let pathless = ref 0 in
  let unifying = ref 0 in
  let exhausted = ref 0 in
  let capped = ref 0 in
  let counts = (pathless, unifying, exhausted, capped) in
  List.iter
    (fun (entry : Corpus.entry) ->
      incr grammars;
      let g = Corpus.grammar entry in
      let table = Parse_table.build g in
      let lalr = Parse_table.lalr table in
      let sr = Cex_srwalk.Sr_automaton.of_lalr lalr in
      let oracle = lazy (Cex_validate.Oracle.create table) in
      List.iter
        (fun c ->
          incr conflicts;
          check_conflict ~max_configs g lalr sr oracle problems counts
            entry.Corpus.name c)
        (Parse_table.conflicts table))
    (Corpus.all ());
  { grammars = !grammars;
    conflicts = !conflicts;
    pathless = !pathless;
    unifying = !unifying;
    exhausted = !exhausted;
    capped = !capped;
    problems = List.rev !problems }

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>%d grammars, %d conflicts: %d unifying, %d exhausted, %d capped, \
     %d pathless; %d problem%s@]"
    s.grammars s.conflicts s.unifying s.exhausted s.capped s.pathless
    (List.length s.problems)
    (if List.length s.problems = 1 then "" else "s")
