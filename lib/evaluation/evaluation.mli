(** Regeneration of the paper's evaluation (Table 1 and the section 7.2–7.4
    claims) over the {!Corpus}. Shared by [bench/main.exe] and
    [bin/table1.exe]. *)

type row = {
  entry : Corpus.entry;
  nonterms : int;
  prods : int;
  states : int;
  conflicts : int;
  unifying : int;
  nonunifying : int;  (** proven: no unifying counterexample exists *)
  timeouts : int;  (** timed out or skipped; nonunifying reported instead *)
  ambiguous_detected : bool;
  total_time : float;
  average_time : float option;  (** per counterexample found in time *)
  baseline_time : float option;
  misleading_naive : int;
}

val run_row :
  ?options:Cex.Driver.options ->
  ?with_baseline:bool ->
  ?baseline_budget:float ->
  ?jobs:int ->
  Corpus.entry ->
  row
(** [jobs > 1] fans the entry's conflicts out to a
    {!Cex_service.Scheduler} worker pool. *)

val run_rows :
  ?options:Cex.Driver.options ->
  ?with_baseline:bool ->
  ?baseline_budget:float ->
  ?jobs:int ->
  ?on_row:(row -> unit) ->
  Corpus.entry list ->
  row list
(** Whole-table runner. [jobs > 1] computes rows in parallel (each row's
    conflicts sequential, so per-row timings stay comparable); [on_row] is
    called as each row completes — from worker domains when parallel, so it
    must be thread-safe. Rows come back in input order. *)

val pp_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit

type effectiveness = {
  total_conflicts : int;
  with_counterexample : int;
  within_time_limit : int;
  grammars_with_misleading_naive : string list;
}

val effectiveness : row list -> effectiveness
val pp_effectiveness : Format.formatter -> effectiveness -> unit

type efficiency = {
  overall_average : float;
  stack_average : float;
  geometric_speedup : float option;
}

val efficiency : row list -> efficiency
val pp_efficiency : Format.formatter -> efficiency -> unit

val scalability : row list -> (string * int * float) list
(** (grammar, #states, avg s/conflict), sorted by #states. *)

val pp_scalability : Format.formatter -> (string * int * float) list -> unit

(** Engine-equivalence transcript (see {!Equivalence}). *)
module Equivalence : module type of Equivalence

(** Corpus-wide lint summary (see {!Lint_summary}). *)
module Lint_summary : module type of Lint_summary

(** Corpus-wide product-vs-srwalk agreement check (see {!Agreement}). *)
module Agreement : module type of Agreement
