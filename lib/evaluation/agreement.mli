(** Corpus-wide product-vs-srwalk agreement check.

    Decides every conflict of every corpus grammar with both engines under
    one configuration budget and no wall-clock deadline, so the run is
    fully deterministic. The engines share move semantics and exploration
    order by construction, so a differing outcome category, or a srwalk
    ambiguity witness the validation oracle rejects, is reported as a
    problem — the CI agreement gate ([tools/agreement.exe]) and
    [test/test_srwalk.ml] both fail on any. *)

type summary = {
  grammars : int;
  conflicts : int;
  pathless : int;  (** conflicts with no lookahead-sensitive path *)
  unifying : int;  (** conflicts both engines decided Ambiguous/Unifying *)
  exhausted : int;
  capped : int;  (** conflicts where both engines hit the budget *)
  problems : string list;  (** empty = full agreement, all witnesses valid *)
}

val default_max_configs : int

val run : ?max_configs:int -> unit -> summary
val pp_summary : Format.formatter -> summary -> unit
