open Cfg
open Automaton

(** One row of the paper's Table 1, measured on this machine. *)
type row = {
  entry : Corpus.entry;
  nonterms : int;
  prods : int;
  states : int;
  conflicts : int;
  unifying : int;
  nonunifying : int;
  timeouts : int;
  ambiguous_detected : bool;  (** at least one unifying counterexample *)
  total_time : float;
  average_time : float option;
  baseline_time : float option;
      (** our CFGAnalyzer substitute (see DESIGN.md), when requested *)
  misleading_naive : int;
      (** conflicts for which the PPG-style baseline's counterexample cannot
          exhibit the conflict (section 7.2) *)
}

let run_row ?(options = Cex.Driver.default_options) ?(with_baseline = false)
    ?(baseline_budget = 15.0) ?(jobs = 1) (entry : Corpus.entry) =
  let g = Corpus.grammar entry in
  let session = Cex_session.Session.create g in
  let table = Cex_session.Session.table session in
  let lalr = Cex_session.Session.lalr session in
  let report =
    if jobs <= 1 then Cex.Driver.analyze_session ~options session
    else Cex_service.Scheduler.analyze_session ~options ~jobs session
  in
  let analysis = Lalr.analysis lalr in
  let misleading_naive =
    List.length
      (List.filter
         (fun c ->
           match Baselines.Naive_path.find lalr c with
           | Some naive -> Baselines.Naive_path.misleading analysis naive
           | None -> false)
         (Parse_table.conflicts table))
  in
  let baseline_time =
    if not with_baseline then None
    else begin
      let r =
        Baselines.Bounded_checker.check ~max_bound:10
          ~time_limit:baseline_budget g
      in
      Some r.Baselines.Bounded_checker.elapsed
    end
  in
  let n_found = Cex.Driver.n_unifying report + Cex.Driver.n_nonunifying report in
  { entry;
    nonterms = Grammar.n_nonterminals g - 1;
    prods = Grammar.n_productions g;
    states = Lr0.n_states (Parse_table.lr0 table) + 1;
    conflicts = List.length (Parse_table.conflicts table);
    unifying = Cex.Driver.n_unifying report;
    nonunifying = Cex.Driver.n_nonunifying report;
    (* Table 1's "# time out" column lumps skipped searches (cumulative
       budget exhausted) in with genuine per-conflict timeouts, as the
       paper's tool does. *)
    timeouts = Cex.Driver.n_timeout report + Cex.Driver.n_skipped report;
    ambiguous_detected = Cex.Driver.n_unifying report > 0;
    total_time = report.Cex.Driver.total_elapsed;
    average_time =
      (if n_found = 0 then None
       else Some (report.Cex.Driver.total_elapsed /. float_of_int n_found));
    baseline_time;
    misleading_naive }

let run_rows ?options ?with_baseline ?baseline_budget ?(jobs = 1) ?on_row
    entries =
  let row entry =
    let r = run_row ?options ?with_baseline ?baseline_budget entry in
    Option.iter (fun f -> f r) on_row;
    r
  in
  if jobs <= 1 then List.map row entries
  else Cex_service.Scheduler.map ~jobs row entries

(* ------------------------------------------------------------------ *)

let pp_option_int ppf = function
  | Some v -> Fmt.pf ppf "%4d" v
  | None -> Fmt.pf ppf "   -"

let pp_header ppf () =
  Fmt.pf ppf
    "%-12s | %5s %5s %6s %5s | %4s | %5s %8s %5s | %9s %9s | %9s@."
    "Grammar" "#nts" "#prod" "#state" "#conf" "Amb?" "#unif" "#nonunif"
    "#t/o" "Total(s)" "Avg(s)" "paper#conf";
  Fmt.pf ppf "%s@." (String.make 110 '-')

let pp_row ppf r =
  Fmt.pf ppf
    "%-12s | %5d %5d %6d %5d | %4s | %5d %8d %5d | %9.3f %9s | %a%s@."
    r.entry.Corpus.name r.nonterms r.prods r.states r.conflicts
    (if r.ambiguous_detected then "yes"
     else if r.entry.Corpus.ambiguous then "yes*"
     else "no")
    r.unifying r.nonunifying r.timeouts r.total_time
    (match r.average_time with
    | Some a -> Fmt.str "%9.3f" a
    | None -> "      T/L")
    pp_option_int r.entry.Corpus.paper_conflicts
    (match r.baseline_time with
    | Some b -> Fmt.str "  (baseline %.1fs)" b
    | None -> "")

let pp_table ppf rows =
  pp_header ppf ();
  List.iter (pp_row ppf) rows

(* ------------------------------------------------------------------ *)
(* Section 7.2: effectiveness. *)

type effectiveness = {
  total_conflicts : int;
  with_counterexample : int;  (** always all of them *)
  within_time_limit : int;
  grammars_with_misleading_naive : string list;
}

let effectiveness rows =
  let total_conflicts = List.fold_left (fun n r -> n + r.conflicts) 0 rows in
  let within =
    List.fold_left (fun n r -> n + r.unifying + r.nonunifying) 0 rows
  in
  { total_conflicts;
    with_counterexample = total_conflicts;
    within_time_limit = within;
    grammars_with_misleading_naive =
      List.filter_map
        (fun r ->
          if r.misleading_naive > 0 then Some r.entry.Corpus.name else None)
        rows }

let pp_effectiveness ppf e =
  Fmt.pf ppf
    "Section 7.2 (effectiveness): %d conflicts, counterexample reported for \
     all; %d (%.0f%%) within the per-conflict time limit.@."
    e.total_conflicts e.within_time_limit
    (100.0 *. float_of_int e.within_time_limit
     /. float_of_int (max 1 e.total_conflicts));
  Fmt.pf ppf
    "PPG-style lookahead-insensitive baseline is misleading on %d grammars: \
     %a@."
    (List.length e.grammars_with_misleading_naive)
    Fmt.(list ~sep:(any ", ") string)
    e.grammars_with_misleading_naive

(* ------------------------------------------------------------------ *)
(* Section 7.3: efficiency. *)

type efficiency = {
  overall_average : float;  (** seconds per conflict, within time limit *)
  stack_average : float;  (** StackOverflow/StackExchange subset *)
  geometric_speedup : float option;
      (** vs the bounded-checker baseline, on rows where both ran *)
}

let efficiency rows =
  let avg filter =
    let rows = List.filter filter rows in
    let time = List.fold_left (fun t r -> t +. r.total_time) 0.0 rows in
    let n =
      List.fold_left (fun n r -> n + r.unifying + r.nonunifying) 0 rows
    in
    if n = 0 then 0.0 else time /. float_of_int n
  in
  let speedups =
    List.filter_map
      (fun r ->
        match r.baseline_time, r.average_time with
        | Some b, Some a when a > 0.0 && b > 0.0 -> Some (b /. a)
        | _, _ -> None)
      rows
  in
  let geometric_speedup =
    match speedups with
    | [] -> None
    | _ ->
      let log_sum = List.fold_left (fun s x -> s +. log x) 0.0 speedups in
      Some (exp (log_sum /. float_of_int (List.length speedups)))
  in
  { overall_average = avg (fun _ -> true);
    stack_average =
      avg (fun r -> r.entry.Corpus.category = Corpus.Stack);
    geometric_speedup }

let pp_efficiency ppf e =
  Fmt.pf ppf
    "Section 7.3 (efficiency): %.3f s/conflict overall; %.4f s/conflict on \
     the StackOverflow set%a@."
    e.overall_average e.stack_average
    (fun ppf -> function
      | Some s -> Fmt.pf ppf "; geometric-mean speedup %.1fx vs baseline" s
      | None -> ())
    e.geometric_speedup

(* ------------------------------------------------------------------ *)
(* Section 7.4: scalability — time per conflict against automaton size. *)

let scalability rows =
  rows
  |> List.filter (fun r -> r.average_time <> None)
  |> List.map (fun r ->
         (r.entry.Corpus.name, r.states, Option.get r.average_time))
  |> List.sort (fun (_, s1, _) (_, s2, _) -> Int.compare s1 s2)

let pp_scalability ppf series =
  Fmt.pf ppf "Section 7.4 (scalability): avg seconds/conflict by #states@.";
  List.iter
    (fun (name, states, avg) ->
      Fmt.pf ppf "  %-12s %5d states  %8.4f s/conflict@." name states avg)
    series

module Equivalence = Equivalence
module Lint_summary = Lint_summary
module Agreement = Agreement
