(** The grammar lint engine: rule-based static analysis over a grammar and
    its LALR(1) automaton.

    Rules fall into two groups (the full catalog is {!rules}):

    - {e grammar hygiene} — defects visible in the grammar and its static
      analyses alone: unreachable and unproductive nonterminals, useless
      productions, unused declared terminals, duplicate and overlapping
      productions, derivation cycles [A =>+ A], and the BV10
      nullable-injection shape (two alternatives identical modulo nullable
      nonterminals);
    - {e conflict classification} — every conflict surviving precedence
      resolution is matched against statically recognizable patterns: the
      dangling-else shift/reduce shape (the paper's section 2 running
      example), precedence/associativity-resolvable operator conflicts, and
      reduce/reduce conflicts between identical right-hand sides. Conflicts
      matching no pattern are classified {!unclassified}.

    Every rule is static: no counterexample search runs, so a lint pass
    costs one automaton construction. Diagnostics come back in a
    deterministic order (hygiene rules in catalog order, then conflicts in
    automaton order), which makes lint output suitable for golden-file
    comparison. *)

open Cfg
open Automaton

type group =
  | Hygiene
  | Conflicts

type rule = {
  code : string;  (** stable identifier, used for enable/disable *)
  group : group;
  default_severity : Diagnostic.severity;
      (** typical severity; individual diagnostics may escalate (e.g. an
          unproductive nonterminal that is also reachable) *)
  doc : string;  (** one-line catalog description *)
}

val rules : rule list
(** The registry, in catalog (and diagnostic-emission) order. *)

val find_rule : string -> rule option

val check_codes : string list -> (unit, string) result
(** Validate user-supplied rule codes; [Error] names the first unknown. *)

(** {1 Conflict classification} *)

val unclassified : string
(** ["unclassified"]: the conflict matches no known static pattern. *)

val classify : Lalr.t -> Conflict.t -> string option
(** The conflict-group rule code the conflict matches, if any, by pattern
    priority (dangling-else, then identical-rhs reduce/reduce, then
    precedence-resolvable). *)

val classification : Lalr.t -> Conflict.t -> string
(** {!classify}, with [None] mapped to {!unclassified}. *)

(** {1 Running the engine} *)

val run :
  ?enable:string list -> ?disable:string list -> Parse_table.t ->
  Diagnostic.t list
(** Run every rule ([enable = []] means all) except those in [disable].
    Unknown codes are ignored; validate with {!check_codes} first. *)

type report = {
  diagnostics : Diagnostic.t list;
  classifications : (Conflict.t * string) list;
      (** every automaton conflict with its classification code (a
          conflict-group rule code, or {!unclassified}) *)
}

val report :
  ?enable:string list -> ?disable:string list -> Parse_table.t -> report

val pp_report : Grammar.t -> Format.formatter -> report -> unit
(** Text renderer: one line per diagnostic, then one per conflict
    classification. *)
