open Cfg
open Automaton

type group =
  | Hygiene
  | Conflicts

type rule = {
  code : string;
  group : group;
  default_severity : Diagnostic.severity;
  doc : string;
}

(* Everything a rule may interrogate. All fields are precomputed by the
   parse-table build, so assembling a context is allocation only. *)
type context = {
  grammar : Grammar.t;
  analysis : Analysis.t;
  lalr : Lalr.t;
  lr0 : Lr0.t;
  sr_region : Bytes.t Lazy.t;
      (* the SR-automaton's forward-reachable (state, item) region; forced
         only by the sr-unreachable-conflict rule, and only on grammars
         that have conflicts *)
  conflicts : Conflict.t list;
  resolved : (Conflict.t * Parse_table.resolution) list;
  classifications : (Conflict.t * string) list;
      (* every conflict paired with its classification code, computed once;
         the conflict-group rules and [report] all read from here *)
}

let diag code severity location fmt =
  Fmt.kstr
    (fun message -> { Diagnostic.code; severity; message; location })
    fmt

(* Nonterminal 0 is the augmented START and production 0 the augmented start
   production; neither is the user's code, so rules skip both. *)
let user_nonterminals g f =
  let acc = ref [] in
  for nt = Grammar.n_nonterminals g - 1 downto 1 do
    match f nt with Some d -> acc := d :: !acc | None -> ()
  done;
  !acc

let user_productions g f =
  let acc = ref [] in
  for p = Grammar.n_productions g - 1 downto 1 do
    match f p with Some d -> acc := d :: !acc | None -> ()
  done;
  !acc

let prod_text g p = Fmt.str "%a" (Grammar.pp_production g) p

(* ------------------------------------------------------------------ *)
(* Grammar hygiene. *)

let unreachable_code = "unreachable-nonterminal"

let check_unreachable ctx =
  let g = ctx.grammar in
  user_nonterminals g (fun nt ->
      if Analysis.reachable ctx.analysis nt then None
      else
        Some
          (diag unreachable_code Diagnostic.Warning
             (Diagnostic.Nonterminal nt)
             "no derivation from the start symbol %s reaches it; its \
              productions are dead"
             (Grammar.nonterminal_name g (Grammar.start g))))

let unproductive_code = "unproductive-nonterminal"

let check_unproductive ctx =
  let g = ctx.grammar in
  user_nonterminals g (fun nt ->
      if Analysis.productive ctx.analysis nt then None
      else
        let reachable = Analysis.reachable ctx.analysis nt in
        let severity =
          if reachable then Diagnostic.Error else Diagnostic.Warning
        in
        Some
          (diag unproductive_code severity (Diagnostic.Nonterminal nt)
             "derives no terminal string%s"
             (if reachable then
                "; the parser can enter it but no parse can ever complete"
              else " (and is unreachable)")))

let useless_production_code = "useless-production"

let check_useless_production ctx =
  let g = ctx.grammar in
  user_productions g (fun p ->
      let prod = Grammar.production g p in
      (* Restrict to productive left-hand sides: a fully unproductive
         nonterminal is already reported wholesale by the rule above. *)
      if not (Analysis.productive ctx.analysis prod.Grammar.lhs) then None
      else
        let dead =
          Array.to_list prod.Grammar.rhs
          |> List.find_opt (function
               | Symbol.Terminal _ -> false
               | Symbol.Nonterminal nt ->
                 not (Analysis.productive ctx.analysis nt))
        in
        match dead with
        | Some (Symbol.Nonterminal nt) ->
          Some
            (diag useless_production_code Diagnostic.Warning
               (Diagnostic.Production p)
               "can never be reduced: %s in its right-hand side derives no \
                terminal string"
               (Grammar.nonterminal_name g nt))
        | _ -> None)

let unused_terminal_code = "unused-terminal"

let check_unused_terminal ctx =
  let g = ctx.grammar in
  let used = Array.make (Grammar.n_terminals g) false in
  used.(0) <- true;
  for p = 0 to Grammar.n_productions g - 1 do
    let prod = Grammar.production g p in
    Array.iter
      (function Symbol.Terminal t -> used.(t) <- true | _ -> ())
      prod.Grammar.rhs;
    Option.iter (fun t -> used.(t) <- true) prod.Grammar.prec_tag
  done;
  let acc = ref [] in
  for t = Grammar.n_terminals g - 1 downto 1 do
    if not used.(t) then
      acc :=
        diag unused_terminal_code Diagnostic.Warning (Diagnostic.Terminal t)
          "declared (via %%token or a precedence level) but used in no \
           production"
        :: !acc
  done;
  !acc

(* Structural right-hand-side key: symbol identity, not names. *)
let rhs_key rhs =
  String.concat ","
    (List.map
       (function
         | Symbol.Terminal t -> "t" ^ string_of_int t
         | Symbol.Nonterminal nt -> "n" ^ string_of_int nt)
       (Array.to_list rhs))

let duplicate_production_code = "duplicate-production"

let check_duplicate_production ctx =
  let g = ctx.grammar in
  let seen : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  user_productions g (fun p ->
      let prod = Grammar.production g p in
      let key = (prod.Grammar.lhs, rhs_key prod.Grammar.rhs) in
      match Hashtbl.find_opt seen key with
      | Some first ->
        Some
          (diag duplicate_production_code Diagnostic.Error
             (Diagnostic.Production p)
             "identical to production %d (%s): a guaranteed reduce/reduce \
              ambiguity"
             first
             (prod_text g (Grammar.production g first)))
      | None ->
        Hashtbl.add seen key p;
        None)

let overlapping_production_code = "overlapping-production"

let check_overlapping_production ctx =
  let g = ctx.grammar in
  (* All earlier productions sharing a right-hand side, by key; right-hand
     sides shorter than two symbols are excluded (epsilon alternatives of
     distinct optional nonterminals and unit chain productions [A ::= B] are
     idiomatic, not suspicious). *)
  let seen : (string, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  user_productions g (fun p ->
      let prod = Grammar.production g p in
      if Array.length prod.Grammar.rhs < 2 then None
      else begin
        let key = rhs_key prod.Grammar.rhs in
        let earlier = Option.value ~default:[] (Hashtbl.find_opt seen key) in
        Hashtbl.replace seen key ((p, prod.Grammar.lhs) :: earlier);
        match
          List.rev earlier
          |> List.find_opt (fun (_, lhs) -> lhs <> prod.Grammar.lhs)
        with
        | Some (first, first_lhs) ->
          Some
            (diag overlapping_production_code Diagnostic.Warning
               (Diagnostic.Production p)
               "same right-hand side as production %d of %s; under a shared \
                lookahead the parser cannot choose which to reduce"
               first
               (Grammar.nonterminal_name g first_lhs))
        | None -> None
      end)

let cyclic_code = "cyclic-nonterminal"

let check_cyclic ctx =
  let g = ctx.grammar in
  user_nonterminals g (fun nt ->
      if not (Analysis.cyclic ctx.analysis nt) then None
      else
        let name = Grammar.nonterminal_name g nt in
        Some
          (diag cyclic_code Diagnostic.Warning (Diagnostic.Nonterminal nt)
             "derives itself (%s =>+ %s): parse trees can nest unboundedly \
              and the unifying counterexample search may not terminate"
             name name))

let nullable_injection_code = "nullable-injection"

let erase_nullable analysis rhs =
  rhs_key
    (Array.of_list
       (List.filter
          (fun s -> not (Analysis.nullable_symbol analysis s))
          (Array.to_list rhs)))

let check_nullable_injection ctx =
  let g = ctx.grammar in
  (* Two distinct alternatives of one nonterminal that agree after erasing
     nullable nonterminals derive the same phrase whenever the erased
     nonterminals go to epsilon: the BV10 nullable-injection shape, a
     guaranteed ambiguity. Each production is reported against the earliest
     alternative sharing its erased form. *)
  let seen : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  for p = 1 to Grammar.n_productions g - 1 do
    let prod = Grammar.production g p in
    let erased = erase_nullable ctx.analysis prod.Grammar.rhs in
    if not (Hashtbl.mem seen (prod.Grammar.lhs, erased)) then
      Hashtbl.add seen (prod.Grammar.lhs, erased) p
  done;
  user_productions g (fun p ->
      let prod = Grammar.production g p in
      let erased = erase_nullable ctx.analysis prod.Grammar.rhs in
      match Hashtbl.find_opt seen (prod.Grammar.lhs, erased) with
      | Some first
        when first <> p
             && not
                  (String.equal
                     (rhs_key (Grammar.production g first).Grammar.rhs)
                     (rhs_key prod.Grammar.rhs)) ->
        Some
          (diag nullable_injection_code Diagnostic.Error
             (Diagnostic.Production p)
             "differs from production %d (%s) only by nullable nonterminals: \
              when they derive the empty string both alternatives parse the \
              same phrase (BV10 nullable injection)"
             first
             (prod_text g (Grammar.production g first)))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Conflict classification. *)

let unclassified = "unclassified"
let dangling_else_code = "dangling-else"
let prec_resolvable_code = "prec-resolvable"
let rr_overlap_code = "rr-overlap"

let rightmost_terminal (p : Grammar.production) =
  let rec go i =
    if i < 0 then None
    else
      match p.Grammar.rhs.(i) with
      | Symbol.Terminal t -> Some t
      | Symbol.Nonterminal _ -> go (i - 1)
  in
  go (Array.length p.Grammar.rhs - 1)

(* The paper's section 2 running example: the reduce item's whole right-hand
   side is a prefix of the shift item's production for the same nonterminal,
   and the conflict terminal both continues the longer production and (being
   in the reduce item's lookahead) follows the shorter one. *)
let is_dangling_else g (c : Conflict.t) =
  match c.Conflict.kind with
  | Conflict.Reduce_reduce _ -> false
  | Conflict.Shift_reduce { shift_item; reduce_item } ->
    let rp = Item.production g reduce_item in
    let sp = Item.production g shift_item in
    rp.Grammar.lhs = sp.Grammar.lhs
    && Array.length sp.Grammar.rhs > Array.length rp.Grammar.rhs
    && shift_item.Item.dot = Array.length rp.Grammar.rhs
    && (let shared = ref true in
        Array.iteri
          (fun i s ->
            if not (Symbol.equal s sp.Grammar.rhs.(i)) then shared := false)
          rp.Grammar.rhs;
        !shared)

(* Both reductions fire on an identical right-hand side: the parser's stack
   cannot distinguish them, whatever the lookahead. *)
let is_rr_overlap g (c : Conflict.t) =
  match c.Conflict.kind with
  | Conflict.Shift_reduce _ -> false
  | Conflict.Reduce_reduce { reduce1; reduce2; _ } ->
    let p1 = Item.production g reduce1 in
    let p2 = Item.production g reduce2 in
    String.equal (rhs_key p1.Grammar.rhs) (rhs_key p2.Grammar.rhs)

(* An operator-style shift/reduce conflict: the reduce production can carry a
   precedence (it has a rightmost terminal, or an explicit %prec tag), so
   yacc-style precedence/associativity declarations on it and the conflict
   terminal would settle the conflict silently. *)
let is_prec_resolvable g (c : Conflict.t) =
  match c.Conflict.kind with
  | Conflict.Reduce_reduce _ -> false
  | Conflict.Shift_reduce { reduce_item; _ } ->
    let rp = Item.production g reduce_item in
    rp.Grammar.prec_tag <> None || rightmost_terminal rp <> None

let classify lalr c =
  let g = Lalr.grammar lalr in
  if is_dangling_else g c then Some dangling_else_code
  else if is_rr_overlap g c then Some rr_overlap_code
  else if is_prec_resolvable g c then Some prec_resolvable_code
  else None

let classification lalr c =
  Option.value ~default:unclassified (classify lalr c)

let conflict_location (c : Conflict.t) =
  Diagnostic.Conflict_site
    { state = c.Conflict.state; terminal = c.Conflict.terminal }

let classified_conflicts ctx code =
  List.filter_map
    (fun (c, k) -> if String.equal k code then Some c else None)
    ctx.classifications

let check_dangling_else ctx =
  let g = ctx.grammar in
  List.map
    (fun (c : Conflict.t) ->
      let rp = Item.production g (Conflict.reduce_item c) in
      diag dangling_else_code Diagnostic.Warning (conflict_location c)
        "dangling-else shift/reduce pattern: %s is both a continuation of \
         the shifted production and a follower of the reduced one; prefer \
         the shift (innermost binding) or factor matched/unmatched %s forms"
        (Grammar.terminal_name g c.Conflict.terminal)
        (Grammar.nonterminal_name g rp.Grammar.lhs))
    (classified_conflicts ctx dangling_else_code)

let check_prec_resolvable ctx =
  let g = ctx.grammar in
  List.map
    (fun (c : Conflict.t) ->
      let rp = Item.production g (Conflict.reduce_item c) in
      let on = Grammar.terminal_name g c.Conflict.terminal in
      let hint =
        match Grammar.production_prec g rp with
        | Some _ ->
          Fmt.str "declare a precedence for %s (e.g. %%left %s)" on on
        | None -> (
          match rightmost_terminal rp with
          | Some t when t = c.Conflict.terminal ->
            Fmt.str "declare an associativity for %s (e.g. %%left %s)" on on
          | Some t ->
            Fmt.str "declare precedences for %s and %s"
              (Grammar.terminal_name g t)
              on
          | None -> Fmt.str "attach %%prec to the reduced production")
      in
      diag prec_resolvable_code Diagnostic.Warning (conflict_location c)
        "shift/reduce conflict resolvable by precedence/associativity: %s"
        hint)
    (classified_conflicts ctx prec_resolvable_code)

let check_rr_overlap ctx =
  let g = ctx.grammar in
  List.map
    (fun (c : Conflict.t) ->
      let p1 = Item.production g (Conflict.reduce_item c) in
      let p2 = Item.production g (Conflict.other_item c) in
      diag rr_overlap_code Diagnostic.Warning (conflict_location c)
        "reduce/reduce conflict between identical right-hand sides of %s \
         and %s; merge the nonterminals or factor the shared phrase out"
        (Grammar.nonterminal_name g p1.Grammar.lhs)
        (Grammar.nonterminal_name g p2.Grammar.lhs))
    (classified_conflicts ctx rr_overlap_code)

let precedence_resolved_code = "precedence-resolved"

(* Bison's -Wprecedence concern: precedence/associativity declarations settle
   shift/reduce decisions without a trace in the conflict report, and a wrong
   level silently parses the wrong tree. Surface each silent decision. *)
let check_precedence_resolved ctx =
  let g = ctx.grammar in
  List.map
    (fun ((c : Conflict.t), resolution) ->
      diag precedence_resolved_code Diagnostic.Info (conflict_location c)
        "shift/reduce decision on %s settled silently %s; lrcex analyze \
         --resolved shows the ambiguity it resolves"
        (Grammar.terminal_name g c.Conflict.terminal)
        (match resolution with
        | Parse_table.Resolved_shift -> "in favour of the shift"
        | Parse_table.Resolved_reduce -> "in favour of the reduction"
        | Parse_table.Resolved_error -> "as a syntax error (nonassociative)"))
    ctx.resolved

let check_unclassified ctx =
  List.map
    (fun (c : Conflict.t) ->
      diag unclassified Diagnostic.Info (conflict_location c)
        "%s conflict matches no static pattern; read its counterexample \
         (lrcex analyze)"
        (if Conflict.is_shift_reduce c then "shift/reduce"
         else "reduce/reduce"))
    (classified_conflicts ctx unclassified)

let sr_unreachable_conflict_code = "sr-unreachable-conflict"

(* A conflict both search engines can reason about must sit inside the
   SR-automaton's forward-reachable region: the start item reaches every
   item of every state of a well-formed table, so a hit here means the
   table (or a hand-built variant of it) is defective — the conflict can
   never actually arise in a parse, and any counterexample search for it
   explores a dead region. *)
let check_sr_unreachable_conflict ctx =
  let g = ctx.grammar in
  List.filter_map
    (fun (c : Conflict.t) ->
      let region = Lazy.force ctx.sr_region in
      let reaches item =
        Lr0.reach_mem ctx.lr0 region c.Conflict.state
          (Lr0.item_id ctx.lr0 item)
      in
      if reaches (Conflict.reduce_item c) && reaches (Conflict.other_item c)
      then None
      else
        Some
          (diag sr_unreachable_conflict_code Diagnostic.Warning
             (conflict_location c)
             "conflict on %s is outside the SR-automaton's reachable region: \
              no walk from the start item reaches its items, so the parser \
              can never be driven into this conflict"
             (Grammar.terminal_name g c.Conflict.terminal)))
    ctx.conflicts

let conflict_density_code = "conflict-density"

(* One grammar-wide advisory summarizing how concentrated the conflicts
   are: a handful of hot states usually traces back to one ambiguous
   construct, while conflicts smeared over many states suggest a structural
   problem (e.g. a missing precedence scheme). *)
let check_conflict_density ctx =
  match ctx.conflicts with
  | [] -> []
  | conflicts ->
    let n = List.length conflicts in
    let states =
      List.sort_uniq compare
        (List.map (fun (c : Conflict.t) -> c.Conflict.state) conflicts)
    in
    let n_states = Lr0.n_states ctx.lr0 in
    [ diag conflict_density_code Diagnostic.Info Diagnostic.Grammar_wide
        "%d conflict%s across %d of %d states (%.1f%% of states conflicted)"
        n
        (if n = 1 then "" else "s")
        (List.length states) n_states
        (100.0 *. float_of_int (List.length states) /. float_of_int n_states)
    ]

(* ------------------------------------------------------------------ *)
(* Registry. *)

let registry : (rule * (context -> Diagnostic.t list)) list =
  [ ( { code = unreachable_code; group = Hygiene;
        default_severity = Diagnostic.Warning;
        doc = "nonterminal unreachable from the start symbol" },
      check_unreachable );
    ( { code = unproductive_code; group = Hygiene;
        default_severity = Diagnostic.Error;
        doc = "nonterminal derives no terminal string" },
      check_unproductive );
    ( { code = useless_production_code; group = Hygiene;
        default_severity = Diagnostic.Warning;
        doc = "production mentions an unproductive nonterminal" },
      check_useless_production );
    ( { code = unused_terminal_code; group = Hygiene;
        default_severity = Diagnostic.Warning;
        doc = "terminal declared but used in no production" },
      check_unused_terminal );
    ( { code = duplicate_production_code; group = Hygiene;
        default_severity = Diagnostic.Error;
        doc = "production declared twice (guaranteed reduce/reduce)" },
      check_duplicate_production );
    ( { code = overlapping_production_code; group = Hygiene;
        default_severity = Diagnostic.Warning;
        doc = "identical right-hand sides under two nonterminals" },
      check_overlapping_production );
    ( { code = cyclic_code; group = Hygiene;
        default_severity = Diagnostic.Warning;
        doc = "nonterminal derives itself (A =>+ A)" },
      check_cyclic );
    ( { code = nullable_injection_code; group = Hygiene;
        default_severity = Diagnostic.Error;
        doc = "alternatives identical modulo nullable nonterminals (BV10)" },
      check_nullable_injection );
    ( { code = dangling_else_code; group = Conflicts;
        default_severity = Diagnostic.Warning;
        doc = "dangling-else shift/reduce pattern" },
      check_dangling_else );
    ( { code = rr_overlap_code; group = Conflicts;
        default_severity = Diagnostic.Warning;
        doc = "reduce/reduce between identical right-hand sides" },
      check_rr_overlap );
    ( { code = prec_resolvable_code; group = Conflicts;
        default_severity = Diagnostic.Warning;
        doc = "conflict resolvable by precedence/associativity" },
      check_prec_resolvable );
    ( { code = precedence_resolved_code; group = Conflicts;
        default_severity = Diagnostic.Info;
        doc = "shift/reduce decision settled silently by precedence" },
      check_precedence_resolved );
    ( { code = sr_unreachable_conflict_code; group = Conflicts;
        default_severity = Diagnostic.Warning;
        doc = "conflict outside the SR-automaton's reachable region" },
      check_sr_unreachable_conflict );
    ( { code = conflict_density_code; group = Conflicts;
        default_severity = Diagnostic.Info;
        doc = "grammar-wide conflict concentration summary" },
      check_conflict_density );
    ( { code = unclassified; group = Conflicts;
        default_severity = Diagnostic.Info;
        doc = "conflict matching no static pattern" },
      check_unclassified ) ]

let rules = List.map fst registry

let find_rule code = List.find_opt (fun r -> String.equal r.code code) rules

let check_codes codes =
  match List.find_opt (fun c -> find_rule c = None) codes with
  | None -> Ok ()
  | Some unknown ->
    Error
      (Fmt.str "unknown lint rule %S (known: %s)" unknown
         (String.concat ", " (List.map (fun r -> r.code) rules)))

let context table =
  let lalr = Parse_table.lalr table in
  let lr0 = Lalr.lr0 lalr in
  let conflicts = Parse_table.conflicts table in
  { grammar = Parse_table.grammar table;
    analysis = Lalr.analysis lalr;
    lalr;
    lr0;
    sr_region = lazy (Lr0.forward_reach lr0);
    conflicts;
    resolved = Parse_table.resolved_conflicts table;
    classifications =
      List.map (fun c -> (c, classification lalr c)) conflicts }

let enabled_p ?(enable = []) ?(disable = []) () code =
  (enable = [] || List.mem code enable) && not (List.mem code disable)

let run_ctx ?enable ?disable ctx =
  let keep = enabled_p ?enable ?disable () in
  List.concat_map
    (fun (r, check) -> if keep r.code then check ctx else [])
    registry

let run ?enable ?disable table = run_ctx ?enable ?disable (context table)

type report = {
  diagnostics : Diagnostic.t list;
  classifications : (Conflict.t * string) list;
}

let report ?enable ?disable table =
  let ctx = context table in
  { diagnostics = run_ctx ?enable ?disable ctx;
    classifications = ctx.classifications }

let pp_report g ppf r =
  let errors = Diagnostic.count Diagnostic.Error r.diagnostics in
  let warnings = Diagnostic.count Diagnostic.Warning r.diagnostics in
  let n = List.length r.diagnostics in
  if n = 0 then Fmt.pf ppf "no lint diagnostics@,"
  else
    Fmt.pf ppf "%d diagnostic%s (%d error%s, %d warning%s)@," n
      (if n = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s");
  List.iter (fun d -> Fmt.pf ppf "  %a@," (Diagnostic.pp g) d) r.diagnostics;
  List.iter
    (fun ((c : Conflict.t), code) ->
      Fmt.pf ppf "  conflict state %d on %s (%s): %s@," c.Conflict.state
        (Grammar.terminal_name g c.Conflict.terminal)
        (if Conflict.is_shift_reduce c then "shift/reduce"
         else "reduce/reduce")
        code)
    r.classifications
