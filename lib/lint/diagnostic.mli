(** Structured lint diagnostics: machine-readable findings over a grammar
    and its LALR(1) automaton, produced by the {!Lint} rule engine and
    rendered as text here or as JSON by [Cex_service.Json_report]. *)

open Cfg

type severity =
  | Error  (** a guaranteed defect (e.g. a certain ambiguity) *)
  | Warning  (** a likely defect, or a construct that degrades the tooling *)
  | Info  (** advisory; nothing is necessarily wrong *)

type location =
  | Grammar_wide
  | Nonterminal of int
  | Terminal of int
  | Production of int
  | Conflict_site of {
      state : int;
      terminal : int;
    }  (** an automaton conflict: the LR state and the conflict symbol *)

type t = {
  code : string;  (** stable rule code, e.g. ["duplicate-production"] *)
  severity : severity;
  message : string;
  location : location;
}

val severity_string : severity -> string
(** ["error"], ["warning"], or ["info"]. *)

val count : severity -> t list -> int
val has_errors : t list -> bool

val pp_location : Grammar.t -> Format.formatter -> location -> unit
val pp : Grammar.t -> Format.formatter -> t -> unit
(** [severity[code] location: message]. *)

val to_string : Grammar.t -> t -> string
