open Cfg

type severity =
  | Error
  | Warning
  | Info

type location =
  | Grammar_wide
  | Nonterminal of int
  | Terminal of int
  | Production of int
  | Conflict_site of {
      state : int;
      terminal : int;
    }

type t = {
  code : string;
  severity : severity;
  message : string;
  location : location;
}

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let count severity ds =
  List.length (List.filter (fun d -> d.severity = severity) ds)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let pp_location g ppf = function
  | Grammar_wide -> Fmt.string ppf "grammar"
  | Nonterminal nt ->
    Fmt.pf ppf "nonterminal %s" (Grammar.nonterminal_name g nt)
  | Terminal t -> Fmt.pf ppf "terminal %s" (Grammar.terminal_name g t)
  | Production p ->
    Fmt.pf ppf "production %d (%a)" p (Grammar.pp_production g)
      (Grammar.production g p)
  | Conflict_site { state; terminal } ->
    Fmt.pf ppf "state %d on %s" state (Grammar.terminal_name g terminal)

let pp g ppf d =
  Fmt.pf ppf "%s[%s] %a: %s" (severity_string d.severity) d.code
    (pp_location g) d.location d.message

let to_string g d = Fmt.str "%a" (pp g) d
