type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string ?(minify = false) t =
  let b = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_repr v)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          escape_string b k;
          Buffer.add_string b (if minify then ":" else ": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let keys = function
  | Obj fields -> List.map fst fields
  | _ -> []

let rec map_floats f = function
  | Float v -> Float (f v)
  | List items -> List (List.map (map_floats f) items)
  | Obj fields -> Obj (List.map (fun (k, v) -> (k, map_floats f v)) fields)
  | (Null | Bool _ | Int _ | String _) as t -> t
