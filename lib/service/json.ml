type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string ?(minify = false) t =
  let b = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_repr v)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          escape_string b k;
          Buffer.add_string b (if minify then ":" else ": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* A recursive-descent parser for the same subset the serializer emits. It
   accepts standard JSON (numbers, strings with the escapes we produce plus
   \uXXXX for the BMP, nested arrays/objects) and reports failures with a
   character offset. *)
exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape"
               else begin
                 let code =
                   try int_of_string ("0x" ^ String.sub s !pos 4)
                   with Failure _ -> fail "invalid \\u escape"
                 in
                 pos := !pos + 4;
                 (* Encode the scalar as UTF-8; surrogates are left as-is
                    bytes of their code unit, which round-trips our output
                    (we only ever emit \u00XX for control characters). *)
                 if code < 0x80 then Buffer.add_char b (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char b
                     (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                 end
               end
             | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage" else v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let keys = function
  | Obj fields -> List.map fst fields
  | _ -> []

let rec map_floats f = function
  | Float v -> Float (f v)
  | List items -> List (List.map (map_floats f) items)
  | Obj fields -> Obj (List.map (fun (k, v) -> (k, map_floats f v)) fields)
  | (Null | Bool _ | Int _ | String _) as t -> t
