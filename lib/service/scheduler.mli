(** Parallel conflict scheduler: the batch analysis service's execution
    engine.

    Conflict-driven counterexample search is embarrassingly parallel at the
    conflict level: once the session's LALR automaton is built, each
    [(state, item, terminal)] conflict search (paper sections 4 and 5) only
    reads the immutable {!Cex_session.Session.t}, so conflicts fan out
    safely across an OCaml 5 [Domain] worker pool. Whole grammars fan out
    the same way in batch mode, after a sequential session-build phase that
    goes through the content-addressed {!Cache}.

    Budget semantics: the cumulative timeout is a
    {!Cex_session.Deadline.budget} of {e search time consumed}, shared by
    every worker through the driver — before each conflict
    {!Cex.Driver.analyze_conflict} clamps its per-conflict deadline to the
    budget still unspent and consumes the conflict's elapsed time
    afterwards. Once the budget is exhausted, remaining conflicts skip the
    unifying search and degrade gracefully to nonunifying counterexamples.
    With [jobs = 1] this coincides with the sequential
    {!Cex.Driver.analyze_session}; with more workers it bounds total work
    rather than wall time, keeping outcomes independent of worker
    interleaving. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], the whole machine. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a worker pool of [jobs] domains
    (including the calling one). A worker's exception aborts the remaining
    items and is re-raised in the caller after the pool drains. *)

val analyze_session :
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?stats:Stats.t ->
  Cex_session.Session.t ->
  Cex.Driver.report
(** {!Cex.Driver.analyze_session} with the service defaults ([jobs]
    defaults to the whole machine) plus stats recording: conflict and
    conflict-task counts, queue depth, and a ["conflict_search"] stage with
    the summed per-conflict elapsed time. The fan-out itself — shared
    budget, deterministic report order, per-task crash conversion into
    {!Cex.Driver.Search_crashed} reports, per-task trace merging — is the
    driver's. *)

(** {1 The batch service} *)

type t
(** A service instance: options, worker count, clock, and the
    content-addressed session and report caches. One instance is meant to
    live for many {!analyze_batch} calls (that is what makes the caches
    pay). *)

val create :
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?clock:Cex_session.Clock.t ->
  unit ->
  t
(** [clock] (default the monotonic system clock) drives every deadline and
    stage timing of the service; inject a fake for deterministic timeout
    tests. [cache_shards] (default 1) splits the session cache into
    independently locked LRU shards addressed by digest hash — the server
    raises it so concurrent requests on different grammars do not contend
    on one cache lock; [cache_capacity] is the total across shards. *)

val jobs : t -> int
val options : t -> Cex.Driver.options
val clock : t -> Cex_session.Clock.t

val session_cache_counters : t -> Cache.counters
(** Aggregate over all shards. *)

val session_shard_counters : t -> Cache.counters list
(** Per shard, in shard-index order. *)

val report_cache_counters : t -> Cache.counters

val find_session : t -> string -> Cex_session.Session.t option
val store_session : t -> string -> Cex_session.Session.t -> unit
(** Direct session-cache access for layers (the analysis server) that
    build sessions through a different path — delta-aware warm
    construction — but share this instance's cache and counters. *)

val fold_sessions :
  (string -> Cex_session.Session.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
(** Fold over live cached sessions without touching recency or counters
    (used to rank delta-reuse candidates). *)

val find_report : t -> string -> Cex.Driver.report option
val store_report : t -> string -> Cex.Driver.report -> unit
(** Same direct access to the finished-report cache. *)

type batch_result = {
  name : string;  (** caller-supplied label (file name, corpus entry) *)
  digest : string;  (** content address, {!Cache.digest} *)
  report : Cex.Driver.report;
  from_cache : bool;
      (** the report was served from the report cache (or shares the
          analysis of an identical grammar earlier in the same batch) *)
}

val analyze_batch :
  t -> (string * Cfg.Grammar.t) list -> batch_result list * Stats.summary
(** Analyze many grammars in one run: sequential digest / cache-lookup /
    session-build phase, then one global conflict-level fan-out across all
    uncached grammars, each grammar metering its own cumulative budget.
    A worker exception while searching one conflict degrades to a
    {!Cex.Driver.Search_crashed} report for that conflict alone — the rest
    of the batch completes and keeps its results.
    Results are in input order; each fresh report carries its session's
    per-stage trace {!Cex.Driver.report.metrics} (cumulative for sessions
    reused from the cache, which also count a ["session"] [cache_hits]
    counter). *)

val analyze :
  t -> ?name:string -> Cfg.Grammar.t -> batch_result * Stats.summary
(** [analyze_batch] on a single grammar. *)
