(** Parallel conflict scheduler: the batch analysis service's execution
    engine.

    Conflict-driven counterexample search is embarrassingly parallel at the
    conflict level: once the session's LALR automaton is built, each
    [(state, item, terminal)] conflict search (paper sections 4 and 5) only
    reads the immutable {!Cex_session.Session.t}, so conflicts fan out
    safely across an OCaml 5 [Domain] worker pool. Whole grammars fan out
    the same way in batch mode, after a sequential session-build phase that
    goes through the content-addressed {!Cache}.

    Budget semantics: the cumulative timeout is a
    {!Cex_session.Deadline.budget} of {e search time consumed}, shared by
    every worker through the driver — before each conflict
    {!Cex.Driver.analyze_conflict} clamps its per-conflict deadline to the
    budget still unspent and consumes the conflict's elapsed time
    afterwards. Once the budget is exhausted, remaining conflicts skip the
    unifying search and degrade gracefully to nonunifying counterexamples.
    With [jobs = 1] this coincides with the sequential
    {!Cex.Driver.analyze_session}; with more workers it bounds total work
    rather than wall time, keeping outcomes independent of worker
    interleaving. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], the whole machine. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a worker pool of [jobs] domains
    (including the calling one). A worker's exception aborts the remaining
    items and is re-raised in the caller after the pool drains. *)

val analyze_session :
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?stats:Stats.t ->
  Cex_session.Session.t ->
  Cex.Driver.report
(** {!Cex.Driver.analyze_session} with the service defaults ([jobs]
    defaults to the whole machine) plus stats recording: conflict and
    conflict-task counts, queue depth, and a ["conflict_search"] stage with
    the summed per-conflict elapsed time. The fan-out itself — shared
    budget, deterministic report order, per-task crash conversion into
    {!Cex.Driver.Search_crashed} reports, per-task trace merging — is the
    driver's. *)

(** {1 The batch service} *)

type t
(** A service instance: options, worker count, clock, and the
    content-addressed session and report caches. One instance is meant to
    live for many {!analyze_batch} calls (that is what makes the caches
    pay). *)

val create :
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?clock:Cex_session.Clock.t ->
  unit ->
  t
(** [clock] (default the monotonic system clock) drives every deadline and
    stage timing of the service; inject a fake for deterministic timeout
    tests. [cache_shards] (default 1) splits the session cache into
    independently locked LRU shards addressed by digest hash — the server
    raises it so concurrent requests on different grammars do not contend
    on one cache lock; [cache_capacity] is the total across shards. *)

val jobs : t -> int
val options : t -> Cex.Driver.options
val clock : t -> Cex_session.Clock.t

val session_cache_counters : t -> Cache.counters
(** Aggregate over all shards. *)

val session_shard_counters : t -> Cache.counters list
(** Per shard, in shard-index order. *)

val report_cache_counters : t -> Cache.counters

val find_session : t -> string -> Cex_session.Session.t option
val store_session : t -> string -> Cex_session.Session.t -> unit
(** Direct session-cache access for layers (the analysis server) that
    build sessions through a different path — delta-aware warm
    construction — but share this instance's cache and counters. *)

val fold_sessions :
  (string -> Cex_session.Session.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
(** Fold over live cached sessions without touching recency or counters
    (used to rank delta-reuse candidates). *)

val find_report : t -> string -> Cex.Driver.report option
val store_report : t -> string -> Cex.Driver.report -> unit
(** Same direct access to the finished-report cache. *)

type batch_result = {
  name : string;  (** caller-supplied label (file name, corpus entry) *)
  digest : string;  (** content address, {!Cache.digest} *)
  report : Cex.Driver.report;
  from_cache : bool;
      (** the report was served from the report cache (or shares the
          analysis of an identical grammar earlier in the same window) *)
}

val default_window : int
(** Default in-flight window of {!analyze_batch_emit} (32). *)

val shard_of : digest:string -> shards:int -> int
(** Deterministic shard assignment: the integer value of the digest's
    first 8 hex digits modulo [shards]. Stable across processes, OCaml
    versions and machines, so independent runs partition a corpus into
    disjoint, covering shards. [shards <= 1] always yields shard 0. *)

val analyze_batch_emit :
  ?window:int ->
  ?shard:int * int ->
  t ->
  emit:(batch_result -> unit) ->
  (string * Cfg.Grammar.t) Seq.t ->
  Stats.summary
(** The streaming batch pipeline. Grammars are pulled lazily from the
    sequence in windows of [window] (default {!default_window}, clamped to
    ≥ 1): each window is prepared sequentially (digest, report-cache
    lookup, session build through the sharded cache), its conflicts fan
    out in one pool run, and its reports are assembled and handed to
    [emit] in input order — then released, so nothing outside the current
    window and the LRU caches pins a session or a report. Peak memory is a
    function of the window size and the cache capacity, never of the batch
    length; the observed window occupancy is
    {!Stats.summary.max_live_sessions}.

    Each grammar meters its own cumulative budget and its conflicts keep
    their session order, so per-grammar reports are byte-identical at any
    window size. An intra-window duplicate digest shares the (physically
    equal) report of its fresh twin in O(1); a cross-window duplicate is
    served from the report cache.

    [shard = (i, n)] analyzes only the grammars with
    [shard_of ~digest ~shards:n = i]; the others are skipped before any
    session is built and appear in no stats. A worker exception while
    searching one conflict degrades to a {!Cex.Driver.Search_crashed}
    report for that conflict alone — the rest of the batch completes. *)

val analyze_batch :
  ?window:int ->
  ?shard:int * int ->
  t ->
  (string * Cfg.Grammar.t) list ->
  batch_result list * Stats.summary
(** {!analyze_batch_emit} over a list, collecting the results in input
    order. Each fresh report carries its session's per-stage trace
    {!Cex.Driver.report.metrics} (cumulative for sessions reused from the
    cache, which also count a ["session"] [cache_hits] counter). *)

val analyze :
  t -> ?name:string -> Cfg.Grammar.t -> batch_result * Stats.summary
(** [analyze_batch] on a single grammar. *)

(** {1 Mergeable totals}

    The deterministic, additive slice of a batch run: summed outcome
    counts that per-shard summary records carry so separate shard
    processes can be merged and checked against an unsharded run. *)

type totals = {
  total_grammars : int;
  total_conflicts : int;
  total_unifying : int;
  total_nonunifying : int;
  total_timeouts : int;
  total_skipped : int;
  total_crashed : int;
  total_invalid : int;  (** counterexamples rejected by the oracle *)
  total_from_cache : int;
}

val zero_totals : totals
val add_totals : totals -> batch_result -> totals
