(** Parallel conflict scheduler: the batch analysis service's execution
    engine.

    Conflict-driven counterexample search is embarrassingly parallel at the
    conflict level: once the LALR automaton is built, each [(state, item,
    terminal)] conflict search (paper sections 4 and 5) only reads the
    immutable {!Automaton.Lalr.t}, so conflicts fan out safely across an
    OCaml 5 [Domain] worker pool. Whole grammars fan out the same way in
    batch mode, after a sequential table-build phase that goes through the
    content-addressed {!Cache}.

    Budget semantics: the cumulative timeout is a budget of {e search time
    consumed}. Before each conflict the per-conflict timeout is clamped to
    the budget still unspent ({!Cex.Driver.clamp_to_budget}); once the
    budget is exhausted remaining conflicts skip the unifying search and
    degrade gracefully to nonunifying counterexamples. With [jobs = 1] this
    coincides with the sequential {!Cex.Driver.analyze_table}; with more
    workers it bounds total work rather than wall time, keeping outcomes
    independent of worker interleaving. *)

open Automaton

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], the whole machine. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a worker pool of [jobs] domains
    (including the calling one). A worker's exception aborts the remaining
    items and is re-raised in the caller after the pool drains. *)

val analyze_table :
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?stats:Stats.t ->
  Parse_table.t ->
  Cex.Driver.report
(** Drop-in parallel replacement for {!Cex.Driver.analyze_table}: conflict
    reports come back in the table's conflict order regardless of worker
    interleaving. *)

(** {1 The batch service} *)

type t
(** A service instance: options, worker count, and the content-addressed
    table and report caches. One instance is meant to live for many
    {!analyze_batch} calls (that is what makes the caches pay). *)

val create :
  ?options:Cex.Driver.options ->
  ?jobs:int ->
  ?cache_capacity:int ->
  unit ->
  t

val jobs : t -> int
val table_cache_counters : t -> Cache.counters
val report_cache_counters : t -> Cache.counters

type batch_result = {
  name : string;  (** caller-supplied label (file name, corpus entry) *)
  digest : string;  (** content address, {!Cache.digest} *)
  report : Cex.Driver.report;
  from_cache : bool;
      (** the report was served from the report cache (or shares the
          analysis of an identical grammar earlier in the same batch) *)
}

val analyze_batch :
  t -> (string * Cfg.Grammar.t) list -> batch_result list * Stats.summary
(** Analyze many grammars in one run: sequential digest / cache-lookup /
    table-build phase, then one global conflict-level fan-out across all
    uncached grammars, each grammar metering its own cumulative budget.
    Results are in input order. *)

val analyze :
  t -> ?name:string -> Cfg.Grammar.t -> batch_result * Stats.summary
(** [analyze_batch] on a single grammar. *)
