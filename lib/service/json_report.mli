(** JSON serialization of analysis results for machine consumption
    ([lrcex --json], [lrcex batch --json]).

    Schema sketch (stable keys, see the golden test):

    {v
    { "schema_version": 1,
      "stats": { "jobs", "grammars", "conflicts", "wall_seconds",
                 "max_queue_depth", "stages": {...},
                 "cache": { "tables": {"hits","misses","evictions"},
                            "reports": {...} } },
      "grammars": [
        { "grammar", "digest", "from_cache",
          "summary": { "conflicts", "unifying", "nonunifying", "timeouts",
                       "total_elapsed" },
          "conflicts": [
            { "state", "terminal", "kind", "reduce_item", "other_item",
              "outcome", "elapsed", "configs_explored",
              "counterexample": null
                | { "type": "unifying", "nonterminal", "form",
                    "derivation_reduce", "derivation_other" }
                | { "type": "nonunifying", "prefix",
                    "reduce_continuation", "other_continuation" } } ] } ] }
    v} *)

val outcome_string : Cex.Driver.outcome -> string
(** ["found_unifying"], ["no_unifying_exists"], ["search_timeout"],
    ["skipped_search"]. *)

val conflict_to_json : Cfg.Grammar.t -> Cex.Driver.conflict_report -> Json.t

val report_to_json :
  ?name:string -> ?digest:string -> ?from_cache:bool -> Cex.Driver.report ->
  Json.t

val stats_to_json : Stats.summary -> Json.t

val batch_to_json :
  ?stats:Stats.summary -> Scheduler.batch_result list -> Json.t
(** The full service response: [stats] plus one report object per grammar. *)
