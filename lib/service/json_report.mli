(** JSON serialization of analysis results for machine consumption
    ([lrcex --json], [lrcex batch --json], [lrcex lint --json]).

    Schema sketch (stable keys, see the golden tests):

    {v
    { "schema_version": 5,
      "stats": { "jobs", "grammars", "conflicts", "wall_seconds",
                 "max_queue_depth", "stages": {...},
                 "cache": { "sessions": {"hits","misses","evictions"},
                            "reports": {...} } },
      "grammars": [
        { "grammar", "digest", "from_cache",
          "summary": { "conflicts", "unifying", "nonunifying", "timeouts",
                       "skipped", "crashed", "total_elapsed" },
          "metrics": { "<stage>": { "seconds", "spans",
                                    "counters": { "<name>": n, ... } } },
          "diagnostics": [ ... ],            // only with --lint
          "conflicts": [
            { "state", "terminal", "kind", "classification",
              "reduce_item", "other_item",
              "outcome", "engine", "elapsed", "configs_explored",
              "failure": null | "<exception and backtrace>",
              "validation": null              // oracle not run
                | { "status": "valid" }
                | { "status": "invalid", "failures": [ "<check>", ... ] },
              "counterexample": null
                | { "type": "unifying", "nonterminal", "form",
                    "derivation_reduce", "derivation_other" }
                | { "type": "nonunifying", "prefix",
                    "reduce_continuation", "other_continuation" } } ] } ] }
    v}

    The lint document ({!lint_to_json}) shares ["schema_version"] and the
    diagnostic object shape:

    {v
    { "schema_version": 5,
      "summary": { "grammars", "diagnostics", "errors", "warnings", "infos",
                   "conflicts", "unclassified_conflicts",
                   "codes": { "<rule-code>": count, ... } },
      "grammars": [
        { "grammar", "errors", "warnings",
          "diagnostics": [
            { "code", "severity", "message",
              "location": { "kind", ... } } ],
          "conflicts": [
            { "state", "terminal", "kind", "classification" } ] } ] }
    v} *)

val schema_version : int
(** Version 6: cache counter objects gain ["races"] (duplicate-build
    races), stats gain ["max_live_sessions"] (peak sessions pinned by the
    windowed batch pipeline), and the streaming NDJSON records
    ({!stream_grammar_to_json}, {!stream_summary_to_json}) exist. Version
    5: conflict objects carry ["engine"] (which search engine produced the
    report — ["product"] or ["srwalk"]; the race winner under
    [--engine race]), and engine stages in ["metrics"] are namespaced
    (["product.search"], ["srwalk.search"], ["product.nonunifying"], ...).
    Version 4 added ["failure"] and ["validation"], and split ["skipped"]
    and ["crashed"] out of ["timeouts"]. Version 3 added per-stage
    ["metrics"]; version 2 added conflict ["classification"], optional
    ["diagnostics"] arrays and the lint document. *)

val outcome_string : Cex.Driver.outcome -> string
(** ["found_unifying"], ["no_unifying_exists"], ["search_timeout"],
    ["skipped_search"], ["search_crashed"]. *)

val validation_to_json : Cex.Driver.validation -> Json.t
(** [null] when not validated, else
    [{ "status": "valid" | "invalid", "failures": [...] }]. *)

val diagnostic_to_json : Cfg.Grammar.t -> Cex_lint.Diagnostic.t -> Json.t
val diagnostics_to_json : Cfg.Grammar.t -> Cex_lint.Diagnostic.t list -> Json.t

val conflict_to_json : Cfg.Grammar.t -> Cex.Driver.conflict_report -> Json.t

val metrics_to_json : Cex_session.Trace.metrics -> Json.t
(** The per-stage ["metrics"] object: stage name to
    [{ "seconds", "spans", "counters" }]. *)

val report_to_json :
  ?name:string -> ?digest:string -> ?from_cache:bool ->
  ?diagnostics:Cex_lint.Diagnostic.t list -> Cex.Driver.report ->
  Json.t

val stats_to_json : Stats.summary -> Json.t

val batch_to_json :
  ?stats:Stats.summary -> ?lint:Cex_lint.Diagnostic.t list option list ->
  Scheduler.batch_result list -> Json.t
(** The full service response: [stats] plus one report object per grammar.
    [lint], when given, must align with the result list; [Some diags]
    entries embed a ["diagnostics"] array in that grammar's object. *)

(** {1 Streaming NDJSON records} ([lrcex batch --stream])

    One self-describing object per output line, distinguished by the
    leading ["record"] key: a ["grammar"] record per completed grammar the
    moment its window finishes, then exactly one final ["summary"] record. *)

val stream_grammar_to_json :
  ?diagnostics:Cex_lint.Diagnostic.t list -> Scheduler.batch_result -> Json.t
(** The {!batch_to_json} per-grammar object plus [("record", "grammar")]. *)

val totals_to_json : Scheduler.totals -> Json.t

val stream_summary_to_json :
  ?shard:int * int -> totals:Scheduler.totals -> Stats.summary -> Json.t
(** The final record: [{ "record": "summary", "schema_version", "shard":
    null | {"index","count"}, "totals": {...}, "stats": {...} }]. The
    ["totals"] object is the deterministic additive slice a shard merge
    sums; ["stats"] matches the non-streamed document's ["stats"] key
    byte-for-byte (after float zeroing). *)

val lint_to_json :
  (string * Automaton.Parse_table.t * Cex_lint.Lint.report) list -> Json.t
(** The [lrcex lint --json] document over named grammars. Fully
    deterministic (no timings), so its rendering doubles as the committed
    golden lint transcript. *)
