module Session = Cex_session.Session
module Clock = Cex_session.Clock
module Deadline = Cex_session.Deadline
module Trace = Cex_session.Trace

let default_jobs () = Cex_session.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Worker pool: the shared domain pool, with queue depths recorded into the
   run's stats. *)

let run_pool ?stats ~jobs n (f : int -> 'a) : 'a array =
  let on_dequeue =
    match stats with
    | Some st -> Some (fun depth -> Stats.note_queue_depth st depth)
    | None -> None
  in
  Cex_session.Pool.run ?on_dequeue ~jobs n f

let map ?(jobs = default_jobs ()) f xs =
  let arr = Array.of_list xs in
  Array.to_list (run_pool ~jobs (Array.length arr) (fun i -> f arr.(i)))

(* ------------------------------------------------------------------ *)

let search_seconds crs =
  Array.fold_left (fun t cr -> t +. cr.Cex.Driver.elapsed) 0.0 crs

(* A crash while searching one conflict must not abort the pool (which
   would lose every completed result of the batch): convert it into a
   structured per-conflict error report. The exception text and backtrace
   travel in the report's [failure] field, so they surface in the JSON
   document instead of killing the process. *)
let protected_conflict ~options ~deadline session conflict =
  try Cex.Driver.analyze_conflict ~options ~deadline session conflict
  with e ->
    let backtrace = Printexc.get_backtrace () in
    Cex.Driver.crashed_conflict_report session conflict e backtrace

let analyze_session ?(options = Cex.Driver.default_options)
    ?(jobs = default_jobs ()) ?stats session =
  let n = List.length (Session.conflicts session) in
  (* The conflict-level fan-out itself (shared budget, per-task crash
     conversion, deterministic report order, per-task trace merging) lives
     in [Driver.analyze_session]; this wrapper only records the service
     stats around it. *)
  (match stats with
  | Some st ->
    Stats.note_queue_depth st n;
    Stats.add_conflicts st n;
    Stats.add_conflict_tasks st n
  | None -> ());
  let report = Cex.Driver.analyze_session ~options ~jobs session in
  (match stats with
  | Some st ->
    Stats.add_stage st "conflict_search"
      (search_seconds (Array.of_list report.Cex.Driver.conflict_reports))
  | None -> ());
  report

(* ------------------------------------------------------------------ *)
(* The batch service. *)

type t = {
  options : Cex.Driver.options;
  jobs : int;
  clock : Clock.t;
  sessions : Session.t Cache.Sharded.t;
  reports : Cex.Driver.report Cache.t;
}

let create ?(options = Cex.Driver.default_options) ?(jobs = default_jobs ())
    ?(cache_capacity = 128) ?(cache_shards = 1) ?(clock = Clock.system) () =
  { options;
    jobs = max 1 jobs;
    clock;
    sessions = Cache.Sharded.create ~shards:cache_shards ~capacity:cache_capacity ();
    reports = Cache.create ~capacity:cache_capacity () }

let jobs t = t.jobs
let options t = t.options
let clock t = t.clock
let session_shard_counters t = Cache.Sharded.counters t.sessions
let session_cache_counters t = Cache.sum_counters (session_shard_counters t)
let report_cache_counters t = Cache.counters t.reports
let find_session t digest = Cache.Sharded.find t.sessions digest
let store_session t digest session = Cache.Sharded.set t.sessions digest session
let fold_sessions f t init = Cache.Sharded.fold f t.sessions init
let find_report t digest = Cache.find t.reports digest
let store_report t digest report = Cache.set t.reports digest report

type batch_result = {
  name : string;
  digest : string;
  report : Cex.Driver.report;
  from_cache : bool;
}

(* Phase-1 classification of a batch entry. *)
type fresh = {
  session : Session.t;
  deadline : Deadline.t;
  table_seconds : float;
  conflicts : Automaton.Conflict.t array;
  first_job : int;  (* offset into the flattened conflict-job array *)
}

type prepared =
  | Cached of Cex.Driver.report
  | Fresh of fresh
  | Duplicate of int  (* index of the identical fresh entry in this batch *)

let analyze_batch t entries =
  let stats = Stats.create ~clock:t.clock ~jobs:t.jobs () in
  Stats.add_grammars stats (List.length entries);
  (* Phase 1 (sequential): digest, report-cache lookup, session build. *)
  let seen_fresh : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next_job = ref 0 in
  let prepared =
    List.mapi
      (fun i (name, g) ->
        let digest = Cache.digest g in
        let prep =
          match Cache.find t.reports digest with
          | Some report -> Cached report
          | None -> (
            match Hashtbl.find_opt seen_fresh digest with
            | Some j -> Duplicate j
            | None ->
              let t0 = Clock.now t.clock in
              let session =
                match Cache.Sharded.find t.sessions digest with
                | Some s ->
                  Trace.count (Session.trace s) "session" "cache_hits" 1;
                  s
                | None ->
                  let s = Session.create ~clock:t.clock g in
                  Cache.Sharded.set t.sessions digest s;
                  s
              in
              let table_seconds = Clock.now t.clock -. t0 in
              Stats.add_stage stats "table_build" table_seconds;
              let conflicts = Array.of_list (Session.conflicts session) in
              Stats.add_conflicts stats (Array.length conflicts);
              Hashtbl.add seen_fresh digest i;
              let first_job = !next_job in
              next_job := !next_job + Array.length conflicts;
              Fresh
                { session;
                  deadline =
                    Deadline.budget t.clock
                      t.options.Cex.Driver.cumulative_timeout;
                  table_seconds;
                  conflicts;
                  first_job })
        in
        (name, digest, prep))
      entries
  in
  (* Phase 2: one conflict-level fan-out across every fresh grammar. *)
  let job_table = Array.make !next_job None in
  List.iter
    (fun (_, _, prep) ->
      match prep with
      | Fresh f ->
        Array.iteri
          (fun k c -> job_table.(f.first_job + k) <- Some (f, c))
          f.conflicts
      | Cached _ | Duplicate _ -> ())
    prepared;
  Stats.add_conflict_tasks stats (Array.length job_table);
  let crs =
    run_pool ~stats ~jobs:t.jobs (Array.length job_table) (fun i ->
        let f, conflict = Option.get job_table.(i) in
        protected_conflict ~options:t.options ~deadline:f.deadline f.session
          conflict)
  in
  Stats.add_stage stats "conflict_search" (search_seconds crs);
  (* Phase 3 (sequential): reassemble reports in input order and fill the
     report cache. *)
  let finish_fresh f =
    let conflict_reports =
      Array.to_list
        (Array.init (Array.length f.conflicts) (fun k ->
             crs.(f.first_job + k)))
    in
    { Cex.Driver.table = Session.table f.session;
      conflict_reports;
      total_elapsed =
        f.table_seconds
        +. List.fold_left
             (fun t cr -> t +. cr.Cex.Driver.elapsed)
             0.0 conflict_reports;
      metrics = Session.metrics f.session }
  in
  let results =
    List.map
      (fun (name, digest, prep) ->
        match prep with
        | Cached report -> { name; digest; report; from_cache = true }
        | Fresh f ->
          let report = finish_fresh f in
          Cache.set t.reports digest report;
          { name; digest; report; from_cache = false }
        | Duplicate j ->
          let _, _, prep_j = List.nth prepared j in
          let report =
            match prep_j with
            | Fresh f -> finish_fresh f
            | Cached _ | Duplicate _ -> assert false
          in
          { name; digest; report; from_cache = true })
      prepared
  in
  ( results,
    Stats.finish stats
      ~session_cache:(session_cache_counters t)
      ~session_shards:(session_shard_counters t)
      ~report_cache:(Cache.counters t.reports) )

let analyze t ?(name = "grammar") g =
  match analyze_batch t [ (name, g) ] with
  | [ r ], stats -> (r, stats)
  | _ -> assert false
