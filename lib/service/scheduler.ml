module Session = Cex_session.Session
module Clock = Cex_session.Clock
module Deadline = Cex_session.Deadline
module Trace = Cex_session.Trace

let default_jobs () = Cex_session.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Worker pool: the shared domain pool, with queue depths recorded into the
   run's stats. *)

let run_pool ?stats ~jobs n (f : int -> 'a) : 'a array =
  let on_dequeue =
    match stats with
    | Some st -> Some (fun depth -> Stats.note_queue_depth st depth)
    | None -> None
  in
  Cex_session.Pool.run ?on_dequeue ~jobs n f

let map ?(jobs = default_jobs ()) f xs =
  let arr = Array.of_list xs in
  Array.to_list (run_pool ~jobs (Array.length arr) (fun i -> f arr.(i)))

(* ------------------------------------------------------------------ *)

let search_seconds crs =
  Array.fold_left (fun t cr -> t +. cr.Cex.Driver.elapsed) 0.0 crs

(* A crash while searching one conflict must not abort the pool (which
   would lose every completed result of the batch): convert it into a
   structured per-conflict error report. The exception text and backtrace
   travel in the report's [failure] field, so they surface in the JSON
   document instead of killing the process. *)
let protected_conflict ~options ~deadline session conflict =
  try Cex.Driver.analyze_conflict ~options ~deadline session conflict
  with e ->
    let backtrace = Printexc.get_backtrace () in
    Cex.Driver.crashed_conflict_report session conflict e backtrace

let analyze_session ?(options = Cex.Driver.default_options)
    ?(jobs = default_jobs ()) ?stats session =
  let n = List.length (Session.conflicts session) in
  (* The conflict-level fan-out itself (shared budget, per-task crash
     conversion, deterministic report order, per-task trace merging) lives
     in [Driver.analyze_session]; this wrapper only records the service
     stats around it. *)
  (match stats with
  | Some st ->
    Stats.note_queue_depth st n;
    Stats.add_conflicts st n;
    Stats.add_conflict_tasks st n
  | None -> ());
  let report = Cex.Driver.analyze_session ~options ~jobs session in
  (match stats with
  | Some st ->
    Stats.add_stage st "conflict_search"
      (search_seconds (Array.of_list report.Cex.Driver.conflict_reports))
  | None -> ());
  report

(* ------------------------------------------------------------------ *)
(* The batch service. *)

type t = {
  options : Cex.Driver.options;
  jobs : int;
  clock : Clock.t;
  sessions : Session.t Cache.Sharded.t;
  reports : Cex.Driver.report Cache.t;
}

let create ?(options = Cex.Driver.default_options) ?(jobs = default_jobs ())
    ?(cache_capacity = 128) ?(cache_shards = 1) ?(clock = Clock.system) () =
  { options;
    jobs = max 1 jobs;
    clock;
    sessions = Cache.Sharded.create ~shards:cache_shards ~capacity:cache_capacity ();
    reports = Cache.create ~capacity:cache_capacity () }

let jobs t = t.jobs
let options t = t.options
let clock t = t.clock
let session_shard_counters t = Cache.Sharded.counters t.sessions
let session_cache_counters t = Cache.sum_counters (session_shard_counters t)
let report_cache_counters t = Cache.counters t.reports
let find_session t digest = Cache.Sharded.find t.sessions digest
let store_session t digest session = Cache.Sharded.set t.sessions digest session
let fold_sessions f t init = Cache.Sharded.fold f t.sessions init
let find_report t digest = Cache.find t.reports digest
let store_report t digest report = Cache.set t.reports digest report

type batch_result = {
  name : string;
  digest : string;
  report : Cex.Driver.report;
  from_cache : bool;
}

(* ------------------------------------------------------------------ *)
(* Deterministic sharding: a grammar belongs to shard
   [int(first 8 hex digits of its digest) mod n]. The digest is stable
   across processes and OCaml versions (unlike [Hashtbl.hash]), so any two
   runs over the same corpus partition it identically — `--shard 0/2` and
   `--shard 1/2` in separate processes are disjoint and covering. *)

let shard_of ~digest ~shards =
  if shards <= 1 then 0
  else
    let prefix = String.sub digest 0 (min 8 (String.length digest)) in
    int_of_string ("0x" ^ prefix) mod shards

(* ------------------------------------------------------------------ *)
(* The windowed batch pipeline.

   Grammars stream through a bounded in-flight window: each window of [w]
   entries is prepared sequentially (digest, report-cache lookup, session
   build through the sharded cache), its conflicts fan out in one pool run,
   and its reports are assembled, emitted, and released before the next
   window starts. Nothing outside the window and the two LRU caches pins a
   session or a report, so peak memory is a function of the window size and
   the cache capacity — never of the batch length. Per-grammar outcomes are
   independent of the window size (each grammar meters its own cumulative
   budget and conflicts keep their session order), so reports are
   byte-identical at any window. *)

let default_window = 32

(* Phase-1 classification of a window entry. *)
type fresh = {
  session : Session.t;
  deadline : Deadline.t;
  table_seconds : float;
  conflicts : Automaton.Conflict.t array;
  first_job : int;  (* offset into the window's flattened conflict jobs *)
}

type prepared =
  | Cached of Cex.Driver.report
  | Fresh of fresh
  | Duplicate of int  (* slot of the identical fresh entry in this window *)

let process_window t ~stats ~emit entries =
  Stats.add_grammars stats (List.length entries);
  (* Phase 1 (sequential): digest, report-cache lookup, session build.
     [seen_fresh] maps a digest to its window slot, so an intra-window
     duplicate is an O(1) array lookup later — never a list traversal. *)
  let seen_fresh : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next_job = ref 0 in
  let prepared =
    Array.of_list
      (List.mapi
         (fun slot (name, g, digest) ->
           let prep =
             match Cache.find t.reports digest with
             | Some report -> Cached report
             | None -> (
               match Hashtbl.find_opt seen_fresh digest with
               | Some j -> Duplicate j
               | None ->
                 let t0 = Clock.now t.clock in
                 let session =
                   match Cache.Sharded.find t.sessions digest with
                   | Some s ->
                     Trace.count (Session.trace s) "session" "cache_hits" 1;
                     s
                   | None ->
                     let s = Session.create ~clock:t.clock g in
                     Cache.Sharded.set t.sessions digest s;
                     s
                 in
                 let table_seconds = Clock.now t.clock -. t0 in
                 Stats.add_stage stats "table_build" table_seconds;
                 let conflicts = Array.of_list (Session.conflicts session) in
                 Stats.add_conflicts stats (Array.length conflicts);
                 Hashtbl.add seen_fresh digest slot;
                 let first_job = !next_job in
                 next_job := !next_job + Array.length conflicts;
                 Fresh
                   { session;
                     deadline =
                       Deadline.budget t.clock
                         t.options.Cex.Driver.cumulative_timeout;
                     table_seconds;
                     conflicts;
                     first_job })
           in
           (name, digest, prep))
         entries)
  in
  Stats.note_live_sessions stats (Hashtbl.length seen_fresh);
  (* Phase 2: one conflict-level fan-out across the window's fresh
     grammars. *)
  let job_table = Array.make !next_job None in
  Array.iter
    (fun (_, _, prep) ->
      match prep with
      | Fresh f ->
        Array.iteri
          (fun k c -> job_table.(f.first_job + k) <- Some (f, c))
          f.conflicts
      | Cached _ | Duplicate _ -> ())
    prepared;
  Stats.add_conflict_tasks stats (Array.length job_table);
  let crs =
    run_pool ~stats ~jobs:t.jobs (Array.length job_table) (fun i ->
        let f, conflict = Option.get job_table.(i) in
        protected_conflict ~options:t.options ~deadline:f.deadline f.session
          conflict)
  in
  Stats.add_stage stats "conflict_search" (search_seconds crs);
  (* Phase 3 (sequential): assemble each fresh report exactly once, fill
     the report cache, and emit in input order. Duplicates reuse the
     already-assembled (physically shared) report of their fresh twin. *)
  let finish_fresh f =
    let conflict_reports =
      Array.to_list
        (Array.init (Array.length f.conflicts) (fun k ->
             crs.(f.first_job + k)))
    in
    { Cex.Driver.table = Session.table f.session;
      conflict_reports;
      total_elapsed =
        f.table_seconds
        +. List.fold_left
             (fun t cr -> t +. cr.Cex.Driver.elapsed)
             0.0 conflict_reports;
      metrics = Session.metrics f.session }
  in
  let finished =
    Array.map
      (fun (_, digest, prep) ->
        match prep with
        | Fresh f ->
          let report = finish_fresh f in
          Cache.set t.reports digest report;
          Some report
        | Cached _ | Duplicate _ -> None)
      prepared
  in
  Array.iteri
    (fun slot (name, digest, prep) ->
      let result =
        match prep with
        | Cached report -> { name; digest; report; from_cache = true }
        | Fresh _ ->
          { name; digest; report = Option.get finished.(slot);
            from_cache = false }
        | Duplicate j ->
          { name; digest; report = Option.get finished.(j);
            from_cache = true }
      in
      emit result)
    prepared

let analyze_batch_emit ?(window = default_window) ?shard t ~emit entries =
  let window = max 1 window in
  (match shard with
  | Some (i, n) when n < 1 || i < 0 || i >= n ->
    invalid_arg
      (Fmt.str "Scheduler.analyze_batch_emit: invalid shard %d/%d" i n)
  | _ -> ());
  let stats = Stats.create ~clock:t.clock ~jobs:t.jobs () in
  let in_shard digest =
    match shard with
    | None -> true
    | Some (i, n) -> shard_of ~digest ~shards:n = i
  in
  (* Pull the next window of in-shard entries; grammars outside the shard
     are skipped without building anything. *)
  let rec fill acc k seq =
    if k = 0 then (List.rev acc, seq)
    else
      match Seq.uncons seq with
      | None -> (List.rev acc, Seq.empty)
      | Some ((name, g), rest) ->
        let digest = Cache.digest g in
        if in_shard digest then fill ((name, g, digest) :: acc) (k - 1) rest
        else fill acc k rest
  in
  let rec loop seq =
    match fill [] window seq with
    | [], _ -> ()
    | batch, rest ->
      process_window t ~stats ~emit batch;
      loop rest
  in
  loop entries;
  Stats.finish stats
    ~session_cache:(session_cache_counters t)
    ~session_shards:(session_shard_counters t)
    ~report_cache:(Cache.counters t.reports)

let analyze_batch ?window ?shard t entries =
  let acc = ref [] in
  let stats =
    analyze_batch_emit ?window ?shard t
      ~emit:(fun r -> acc := r :: !acc)
      (List.to_seq entries)
  in
  (List.rev !acc, stats)

let analyze t ?(name = "grammar") g =
  match analyze_batch t [ (name, g) ] with
  | [ r ], stats -> (r, stats)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Mergeable outcome totals: the deterministic, additive slice of a batch
   run. Per-shard summaries carry these so `tools/merge_shards.exe` can
   check that sharded runs add up to the unsharded run exactly. *)

type totals = {
  total_grammars : int;
  total_conflicts : int;
  total_unifying : int;
  total_nonunifying : int;
  total_timeouts : int;
  total_skipped : int;
  total_crashed : int;
  total_invalid : int;
  total_from_cache : int;
}

let zero_totals =
  { total_grammars = 0;
    total_conflicts = 0;
    total_unifying = 0;
    total_nonunifying = 0;
    total_timeouts = 0;
    total_skipped = 0;
    total_crashed = 0;
    total_invalid = 0;
    total_from_cache = 0 }

let add_totals acc (r : batch_result) =
  let report = r.report in
  let invalid =
    List.fold_left
      (fun n (cr : Cex.Driver.conflict_report) ->
        match cr.Cex.Driver.validation with
        | Cex.Driver.Validation_failed _ -> n + 1
        | Cex.Driver.Validated | Cex.Driver.Not_validated -> n)
      0 report.Cex.Driver.conflict_reports
  in
  { total_grammars = acc.total_grammars + 1;
    total_conflicts =
      acc.total_conflicts + List.length report.Cex.Driver.conflict_reports;
    total_unifying = acc.total_unifying + Cex.Driver.n_unifying report;
    total_nonunifying =
      acc.total_nonunifying + Cex.Driver.n_nonunifying report;
    total_timeouts = acc.total_timeouts + Cex.Driver.n_timeout report;
    total_skipped = acc.total_skipped + Cex.Driver.n_skipped report;
    total_crashed = acc.total_crashed + Cex.Driver.n_crashed report;
    total_invalid = acc.total_invalid + invalid;
    total_from_cache =
      acc.total_from_cache + if r.from_cache then 1 else 0 }
