(** Content-addressed memoization for the batch service.

    Values (built parse tables, finished conflict reports) are keyed by a
    digest of the grammar they were derived from, so two textually different
    files describing the same grammar share one cache slot, and re-analysis
    of an unchanged grammar is a pure lookup. Eviction is LRU over a fixed
    capacity. All operations are thread-safe: a single mutex guards the
    table, but builders run {e outside} it — a multi-millisecond session
    build must not stall every other request hashing to the same shard.
    The price is a benign duplicate-build race (two domains may build the
    same digest concurrently; the first insert wins and the loser's value
    is discarded), which is observable through {!counters.races}. *)

type 'a t

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  races : int;
      (** duplicate-build races: an insert found the key already present,
          meaning another domain built the same value between this
          domain's miss and its insert (the losing build is discarded in
          {!find_or_build}, overwritten by {!set}) *)
}

val digest : Cfg.Grammar.t -> string
(** Content address of a grammar: the MD5 (hex) of its canonical textual
    form ({!Cfg.Export.to_spec}), which covers symbols, productions and
    precedence declarations — everything the analysis depends on — while
    ignoring formatting of the original source. *)

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 128 entries. [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup, refreshing the entry's recency and counting a hit or a miss. *)

val find_or_build : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_build t key build] returns the cached value for [key], or runs
    [build] {e outside the lock}, stores its result (evicting the least
    recently used entry when full), and returns it. If another domain
    inserted [key] while [build] ran, the already-cached value is returned,
    the fresh build is discarded, and a race is counted — every caller of
    the same key sees one (physically) shared value. *)

val set : 'a t -> string -> 'a -> unit
(** Insert or replace without touching the hit/miss counters (used when the
    caller has already recorded the miss); eviction is still counted.
    Replacing a live entry counts a {!counters.races} — at the
    find/build/set call sites (batch scheduler, incremental server) a
    replacement means two domains built the same digest concurrently. *)

val counters : 'a t -> counters
val clear : 'a t -> unit
(** Drop all entries; counters are preserved. *)

val fold : (string -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over the live entries (unspecified order) without refreshing
    recency or touching the counters. The whole fold runs under the cache
    lock — do not call back into the same cache from [f]. *)

val pp_counters : Format.formatter -> counters -> unit

val zero_counters : counters
val sum_counters : counters list -> counters

(** A fixed array of independent caches addressed by key hash, so domains
    racing on different grammars contend on different locks and eviction
    pressure is localized. [capacity] is the total across shards (split
    evenly, each shard at least 1). *)
module Sharded : sig
  type 'a t

  val create : ?shards:int -> ?capacity:int -> unit -> 'a t
  (** Defaults: 1 shard, total capacity 128. [shards] clamped to ≥ 1. *)

  val shards : 'a t -> int
  val find : 'a t -> string -> 'a option
  val find_or_build : 'a t -> string -> (unit -> 'a) -> 'a
  val set : 'a t -> string -> 'a -> unit
  val length : 'a t -> int

  val counters : 'a t -> counters list
  (** Per shard, in shard-index order. *)

  val fold : (string -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  val clear : 'a t -> unit
end
