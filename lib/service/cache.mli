(** Content-addressed memoization for the batch service.

    Values (built parse tables, finished conflict reports) are keyed by a
    digest of the grammar they were derived from, so two textually different
    files describing the same grammar share one cache slot, and re-analysis
    of an unchanged grammar is a pure lookup. Eviction is LRU over a fixed
    capacity. All operations are thread-safe: a single mutex guards the
    table, and the builder passed to {!find_or_build} runs under it, so each
    digest is built at most once even when domains race. *)

type 'a t

type counters = {
  hits : int;
  misses : int;
  evictions : int;
}

val digest : Cfg.Grammar.t -> string
(** Content address of a grammar: the MD5 (hex) of its canonical textual
    form ({!Cfg.Export.to_spec}), which covers symbols, productions and
    precedence declarations — everything the analysis depends on — while
    ignoring formatting of the original source. *)

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 128 entries. [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup, refreshing the entry's recency and counting a hit or a miss. *)

val find_or_build : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_build t key build] returns the cached value for [key], or runs
    [build], stores its result (evicting the least recently used entry when
    full), and returns it. *)

val set : 'a t -> string -> 'a -> unit
(** Insert or replace without touching the hit/miss counters (used when the
    caller has already recorded the miss); eviction is still counted. *)

val counters : 'a t -> counters
val clear : 'a t -> unit
(** Drop all entries; counters are preserved. *)

val pp_counters : Format.formatter -> counters -> unit
