(** Operational metrics for a service run: per-stage cumulative timings,
    scheduler queue depth, and throughput counters. A collector is mutated
    concurrently by the worker domains (mutex-guarded) and frozen into an
    immutable {!summary} when the run completes. All wall-clock reads go
    through the injected {!Cex_session.Clock}. *)

type t

type summary = {
  jobs : int;  (** worker domains used *)
  grammars : int;
  conflicts : int;
  conflict_tasks : int;
      (** conflict-level work items dispatched to the domain pool — the
          two-level scheduler's unit of work (one per conflict of every
          freshly analyzed grammar; cached reports dispatch none) *)
  wall_seconds : float;  (** creation to {!finish} *)
  max_queue_depth : int;  (** largest pending-job backlog observed *)
  max_live_sessions : int;
      (** largest number of fresh sessions simultaneously pinned by the
          batch pipeline (outside the session cache) — bounded by the
          streaming window, never by the batch length *)
  stages : (string * float) list;
      (** cumulative seconds per pipeline stage, sorted by stage name
          (e.g. ["table_build"], ["conflict_search"]) *)
  session_cache : Cache.counters option;
      (** aggregate across shards, for backward-compatible consumers *)
  session_shards : Cache.counters list;
      (** per-shard breakdown, in shard-index order; empty when the run
          did not go through a sharded session cache *)
  report_cache : Cache.counters option;
}

val create : ?clock:Cex_session.Clock.t -> jobs:int -> unit -> t
(** Default clock: the monotonic system clock. *)

val add_stage : t -> string -> float -> unit
(** Accumulate [seconds] into the named stage. *)

val add_grammars : t -> int -> unit
val add_conflicts : t -> int -> unit
val add_conflict_tasks : t -> int -> unit

val note_queue_depth : t -> int -> unit
(** Record an observed backlog; the summary keeps the maximum. *)

val note_live_sessions : t -> int -> unit
(** Record the number of sessions currently pinned by the pipeline; the
    summary keeps the maximum. *)

val finish :
  ?session_cache:Cache.counters ->
  ?session_shards:Cache.counters list ->
  ?report_cache:Cache.counters ->
  t ->
  summary

val pp_summary : Format.formatter -> summary -> unit
