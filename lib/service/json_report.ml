open Cfg
open Automaton

let outcome_string = function
  | Cex.Driver.Found_unifying -> "found_unifying"
  | Cex.Driver.No_unifying_exists -> "no_unifying_exists"
  | Cex.Driver.Search_timeout -> "search_timeout"
  | Cex.Driver.Skipped_search -> "skipped_search"

let symbols g syms =
  Json.List (List.map (fun s -> Json.String (Grammar.symbol_name g s)) syms)

let item_string g item = Fmt.str "%a" (Item.pp g) item

let counterexample_to_json g = function
  | Cex.Driver.Unifying u ->
    Json.Obj
      [ ("type", Json.String "unifying");
        ( "nonterminal",
          Json.String
            (Grammar.nonterminal_name g u.Cex.Product_search.nonterminal) );
        ("form", symbols g u.Cex.Product_search.form);
        ( "derivation_reduce",
          Json.String (Derivation.to_string g u.Cex.Product_search.deriv1) );
        ( "derivation_other",
          Json.String (Derivation.to_string g u.Cex.Product_search.deriv2) ) ]
  | Cex.Driver.Nonunifying nu ->
    Json.Obj
      [ ("type", Json.String "nonunifying");
        ("prefix", symbols g nu.Cex.Nonunifying.prefix);
        ( "reduce_continuation",
          symbols g nu.Cex.Nonunifying.reduce_continuation );
        ("other_continuation", symbols g nu.Cex.Nonunifying.other_continuation)
      ]

let conflict_to_json g (cr : Cex.Driver.conflict_report) =
  let c = cr.Cex.Driver.conflict in
  Json.Obj
    [ ("state", Json.Int c.Conflict.state);
      ("terminal", Json.String (Grammar.terminal_name g c.Conflict.terminal));
      ( "kind",
        Json.String
          (if Conflict.is_shift_reduce c then "shift_reduce"
           else "reduce_reduce") );
      ("reduce_item", Json.String (item_string g (Conflict.reduce_item c)));
      ("other_item", Json.String (item_string g (Conflict.other_item c)));
      ("outcome", Json.String (outcome_string cr.Cex.Driver.outcome));
      ("elapsed", Json.Float cr.Cex.Driver.elapsed);
      ("configs_explored", Json.Int cr.Cex.Driver.configs_explored);
      ( "counterexample",
        match cr.Cex.Driver.counterexample with
        | Some cex -> counterexample_to_json g cex
        | None -> Json.Null ) ]

let report_to_json ?name ?digest ?from_cache (r : Cex.Driver.report) =
  let g = Cex.Driver.grammar r in
  let opt label value rest =
    match value with Some v -> (label, v) :: rest | None -> rest
  in
  Json.Obj
    (opt "grammar" (Option.map (fun n -> Json.String n) name)
       (opt "digest" (Option.map (fun d -> Json.String d) digest)
          (opt "from_cache" (Option.map (fun b -> Json.Bool b) from_cache)
             [ ( "summary",
                 Json.Obj
                   [ ( "conflicts",
                       Json.Int (List.length r.Cex.Driver.conflict_reports) );
                     ("unifying", Json.Int (Cex.Driver.n_unifying r));
                     ("nonunifying", Json.Int (Cex.Driver.n_nonunifying r));
                     ("timeouts", Json.Int (Cex.Driver.n_timeout r));
                     ("total_elapsed", Json.Float r.Cex.Driver.total_elapsed)
                   ] );
               ( "conflicts",
                 Json.List
                   (List.map (conflict_to_json g) r.Cex.Driver.conflict_reports)
               ) ])))

let counters_to_json (c : Cache.counters) =
  Json.Obj
    [ ("hits", Json.Int c.Cache.hits);
      ("misses", Json.Int c.Cache.misses);
      ("evictions", Json.Int c.Cache.evictions) ]

let stats_to_json (s : Stats.summary) =
  Json.Obj
    [ ("jobs", Json.Int s.Stats.jobs);
      ("grammars", Json.Int s.Stats.grammars);
      ("conflicts", Json.Int s.Stats.conflicts);
      ("wall_seconds", Json.Float s.Stats.wall_seconds);
      ("max_queue_depth", Json.Int s.Stats.max_queue_depth);
      ( "stages",
        Json.Obj
          (List.map (fun (name, secs) -> (name, Json.Float secs)) s.Stats.stages)
      );
      ( "cache",
        match s.Stats.table_cache, s.Stats.report_cache with
        | None, None -> Json.Null
        | tables, reports ->
          Json.Obj
            [ ( "tables",
                Option.fold ~none:Json.Null ~some:counters_to_json tables );
              ( "reports",
                Option.fold ~none:Json.Null ~some:counters_to_json reports )
            ] ) ]

let batch_to_json ?stats results =
  Json.Obj
    [ ("schema_version", Json.Int 1);
      ( "stats",
        Option.fold ~none:Json.Null ~some:stats_to_json stats );
      ( "grammars",
        Json.List
          (List.map
             (fun (r : Scheduler.batch_result) ->
               report_to_json ~name:r.Scheduler.name ~digest:r.Scheduler.digest
                 ~from_cache:r.Scheduler.from_cache r.Scheduler.report)
             results) ) ]
