open Cfg
open Automaton

let schema_version = 6

let outcome_string = function
  | Cex.Driver.Found_unifying -> "found_unifying"
  | Cex.Driver.No_unifying_exists -> "no_unifying_exists"
  | Cex.Driver.Search_timeout -> "search_timeout"
  | Cex.Driver.Skipped_search -> "skipped_search"
  | Cex.Driver.Search_crashed -> "search_crashed"

let validation_to_json = function
  | Cex.Driver.Not_validated -> Json.Null
  | Cex.Driver.Validated ->
    Json.Obj [ ("status", Json.String "valid") ]
  | Cex.Driver.Validation_failed checks ->
    Json.Obj
      [ ("status", Json.String "invalid");
        ("failures", Json.List (List.map (fun c -> Json.String c) checks)) ]

let symbols g syms =
  Json.List (List.map (fun s -> Json.String (Grammar.symbol_name g s)) syms)

let item_string g item = Fmt.str "%a" (Item.pp g) item

let location_to_json g = function
  | Cex_lint.Diagnostic.Grammar_wide -> Json.Obj [ ("kind", Json.String "grammar") ]
  | Cex_lint.Diagnostic.Nonterminal nt ->
    Json.Obj
      [ ("kind", Json.String "nonterminal");
        ("nonterminal", Json.String (Grammar.nonterminal_name g nt)) ]
  | Cex_lint.Diagnostic.Terminal t ->
    Json.Obj
      [ ("kind", Json.String "terminal");
        ("terminal", Json.String (Grammar.terminal_name g t)) ]
  | Cex_lint.Diagnostic.Production p ->
    Json.Obj
      [ ("kind", Json.String "production");
        ("production", Json.Int p);
        ( "text",
          Json.String
            (Fmt.str "%a" (Grammar.pp_production g) (Grammar.production g p)) )
      ]
  | Cex_lint.Diagnostic.Conflict_site { state; terminal } ->
    Json.Obj
      [ ("kind", Json.String "conflict");
        ("state", Json.Int state);
        ("terminal", Json.String (Grammar.terminal_name g terminal)) ]

let diagnostic_to_json g (d : Cex_lint.Diagnostic.t) =
  Json.Obj
    [ ("code", Json.String d.Cex_lint.Diagnostic.code);
      ( "severity",
        Json.String
          (Cex_lint.Diagnostic.severity_string d.Cex_lint.Diagnostic.severity)
      );
      ("message", Json.String d.Cex_lint.Diagnostic.message);
      ("location", location_to_json g d.Cex_lint.Diagnostic.location) ]

let diagnostics_to_json g diags =
  Json.List (List.map (diagnostic_to_json g) diags)

let counterexample_to_json g = function
  | Cex.Driver.Unifying u ->
    Json.Obj
      [ ("type", Json.String "unifying");
        ( "nonterminal",
          Json.String
            (Grammar.nonterminal_name g u.Cex.Product_search.nonterminal) );
        ("form", symbols g u.Cex.Product_search.form);
        ( "derivation_reduce",
          Json.String (Derivation.to_string g u.Cex.Product_search.deriv1) );
        ( "derivation_other",
          Json.String (Derivation.to_string g u.Cex.Product_search.deriv2) ) ]
  | Cex.Driver.Nonunifying nu ->
    Json.Obj
      [ ("type", Json.String "nonunifying");
        ("prefix", symbols g nu.Cex.Nonunifying.prefix);
        ( "reduce_continuation",
          symbols g nu.Cex.Nonunifying.reduce_continuation );
        ("other_continuation", symbols g nu.Cex.Nonunifying.other_continuation)
      ]

let metrics_to_json (m : Cex_session.Trace.metrics) =
  Json.Obj
    (List.map
       (fun (stage, metric) ->
         ( stage,
           Json.Obj
             [ ("seconds", Json.Float metric.Cex_session.Trace.seconds);
               ("spans", Json.Int metric.Cex_session.Trace.spans);
               ( "counters",
                 Json.Obj
                   (List.map
                      (fun (name, n) ->
                        (* Allocation deltas vary across runs and domains;
                           rendered as floats so [--zero-floats] normalizes
                           them with the timings. *)
                        if name = "alloc_words" then
                          (name, Json.Float (float_of_int n))
                        else (name, Json.Int n))
                      metric.Cex_session.Trace.counters) ) ] ))
       m)

let conflict_to_json g (cr : Cex.Driver.conflict_report) =
  let c = cr.Cex.Driver.conflict in
  Json.Obj
    [ ("state", Json.Int c.Conflict.state);
      ("terminal", Json.String (Grammar.terminal_name g c.Conflict.terminal));
      ( "kind",
        Json.String
          (if Conflict.is_shift_reduce c then "shift_reduce"
           else "reduce_reduce") );
      ("classification", Json.String cr.Cex.Driver.classification);
      ("reduce_item", Json.String (item_string g (Conflict.reduce_item c)));
      ("other_item", Json.String (item_string g (Conflict.other_item c)));
      ("outcome", Json.String (outcome_string cr.Cex.Driver.outcome));
      ("engine", Json.String cr.Cex.Driver.engine);
      ("elapsed", Json.Float cr.Cex.Driver.elapsed);
      ("configs_explored", Json.Int cr.Cex.Driver.configs_explored);
      ( "failure",
        match cr.Cex.Driver.failure with
        | Some f -> Json.String f
        | None -> Json.Null );
      ("validation", validation_to_json cr.Cex.Driver.validation);
      ( "counterexample",
        match cr.Cex.Driver.counterexample with
        | Some cex -> counterexample_to_json g cex
        | None -> Json.Null ) ]

let report_to_json ?name ?digest ?from_cache ?diagnostics
    (r : Cex.Driver.report) =
  let g = Cex.Driver.grammar r in
  let opt label value rest =
    match value with Some v -> (label, v) :: rest | None -> rest
  in
  Json.Obj
    (opt "grammar" (Option.map (fun n -> Json.String n) name)
       (opt "digest" (Option.map (fun d -> Json.String d) digest)
          (opt "from_cache" (Option.map (fun b -> Json.Bool b) from_cache)
             (( "summary",
                Json.Obj
                  [ ( "conflicts",
                      Json.Int (List.length r.Cex.Driver.conflict_reports) );
                    ("unifying", Json.Int (Cex.Driver.n_unifying r));
                    ("nonunifying", Json.Int (Cex.Driver.n_nonunifying r));
                    ("timeouts", Json.Int (Cex.Driver.n_timeout r));
                    ("skipped", Json.Int (Cex.Driver.n_skipped r));
                    ("crashed", Json.Int (Cex.Driver.n_crashed r));
                    ("total_elapsed", Json.Float r.Cex.Driver.total_elapsed) ]
              )
             :: ("metrics", metrics_to_json r.Cex.Driver.metrics)
             :: opt "diagnostics"
                  (Option.map (diagnostics_to_json g) diagnostics)
                  [ ( "conflicts",
                      Json.List
                        (List.map (conflict_to_json g)
                           r.Cex.Driver.conflict_reports) ) ]))))

let counters_to_json (c : Cache.counters) =
  Json.Obj
    [ ("hits", Json.Int c.Cache.hits);
      ("misses", Json.Int c.Cache.misses);
      ("evictions", Json.Int c.Cache.evictions);
      ("races", Json.Int c.Cache.races) ]

let stats_to_json (s : Stats.summary) =
  Json.Obj
    [ ("jobs", Json.Int s.Stats.jobs);
      ("grammars", Json.Int s.Stats.grammars);
      ("conflicts", Json.Int s.Stats.conflicts);
      ("conflict_tasks", Json.Int s.Stats.conflict_tasks);
      ("wall_seconds", Json.Float s.Stats.wall_seconds);
      ("max_queue_depth", Json.Int s.Stats.max_queue_depth);
      ("max_live_sessions", Json.Int s.Stats.max_live_sessions);
      ( "stages",
        Json.Obj
          (List.map (fun (name, secs) -> (name, Json.Float secs)) s.Stats.stages)
      );
      ( "cache",
        match s.Stats.session_cache, s.Stats.report_cache with
        | None, None -> Json.Null
        | sessions, reports ->
          Json.Obj
            [ ( "sessions",
                Option.fold ~none:Json.Null ~some:counters_to_json sessions );
              ( "session_shards",
                Json.List (List.map counters_to_json s.Stats.session_shards)
              );
              ( "reports",
                Option.fold ~none:Json.Null ~some:counters_to_json reports )
            ] ) ]

let batch_to_json ?stats ?lint results =
  let lint =
    match lint with
    | None -> List.map (fun _ -> None) results
    | Some l ->
      if List.length l <> List.length results then
        invalid_arg
          (Fmt.str
             "Json_report.batch_to_json: %d lint entries for %d results"
             (List.length l) (List.length results));
      l
  in
  Json.Obj
    [ ("schema_version", Json.Int schema_version);
      ( "stats",
        Option.fold ~none:Json.Null ~some:stats_to_json stats );
      ( "grammars",
        Json.List
          (List.map2
             (fun (r : Scheduler.batch_result) diagnostics ->
               report_to_json ~name:r.Scheduler.name ~digest:r.Scheduler.digest
                 ~from_cache:r.Scheduler.from_cache ?diagnostics
                 r.Scheduler.report)
             results lint) ) ]

(* ------------------------------------------------------------------ *)
(* Streaming NDJSON records (`lrcex batch --stream`): one self-describing
   object per line, distinguished by the leading "record" key — a "grammar"
   record per completed grammar (the batch_to_json per-grammar object, plus
   the tag), then exactly one final "summary" record carrying the mergeable
   outcome totals and the run's stats. *)

let stream_grammar_to_json ?diagnostics (r : Scheduler.batch_result) =
  match
    report_to_json ~name:r.Scheduler.name ~digest:r.Scheduler.digest
      ~from_cache:r.Scheduler.from_cache ?diagnostics r.Scheduler.report
  with
  | Json.Obj fields -> Json.Obj (("record", Json.String "grammar") :: fields)
  | json -> json

let totals_to_json (t : Scheduler.totals) =
  Json.Obj
    [ ("grammars", Json.Int t.Scheduler.total_grammars);
      ("conflicts", Json.Int t.Scheduler.total_conflicts);
      ("unifying", Json.Int t.Scheduler.total_unifying);
      ("nonunifying", Json.Int t.Scheduler.total_nonunifying);
      ("timeouts", Json.Int t.Scheduler.total_timeouts);
      ("skipped", Json.Int t.Scheduler.total_skipped);
      ("crashed", Json.Int t.Scheduler.total_crashed);
      ("invalid", Json.Int t.Scheduler.total_invalid);
      ("from_cache", Json.Int t.Scheduler.total_from_cache) ]

let stream_summary_to_json ?shard ~totals stats =
  Json.Obj
    [ ("record", Json.String "summary");
      ("schema_version", Json.Int schema_version);
      ( "shard",
        match shard with
        | None -> Json.Null
        | Some (i, n) ->
          Json.Obj [ ("index", Json.Int i); ("count", Json.Int n) ] );
      ("totals", totals_to_json totals);
      ("stats", stats_to_json stats) ]

(* The lint document: a grammar-by-grammar dump of diagnostics and conflict
   classifications. No timings appear anywhere, so rendering this document is
   byte-deterministic — the committed golden transcript relies on that. *)
let lint_to_json entries =
  let severity_total sev =
    List.fold_left
      (fun n (_, _, (rep : Cex_lint.Lint.report)) ->
        n + Cex_lint.Diagnostic.count sev rep.Cex_lint.Lint.diagnostics)
      0 entries
  in
  let code_totals =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (_, _, (rep : Cex_lint.Lint.report)) ->
        List.iter
          (fun (d : Cex_lint.Diagnostic.t) ->
            let code = d.Cex_lint.Diagnostic.code in
            Hashtbl.replace tbl code
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl code)))
          rep.Cex_lint.Lint.diagnostics)
      entries;
    (* catalog order keeps the summary stable *)
    List.filter_map
      (fun (r : Cex_lint.Lint.rule) ->
        Option.map
          (fun n -> (r.Cex_lint.Lint.code, Json.Int n))
          (Hashtbl.find_opt tbl r.Cex_lint.Lint.code))
      Cex_lint.Lint.rules
  in
  let n_conflicts =
    List.fold_left
      (fun n (_, _, (rep : Cex_lint.Lint.report)) ->
        n + List.length rep.Cex_lint.Lint.classifications)
      0 entries
  in
  let n_unclassified =
    List.fold_left
      (fun n (_, _, (rep : Cex_lint.Lint.report)) ->
        n
        + List.length
            (List.filter
               (fun (_, code) -> code = Cex_lint.Lint.unclassified)
               rep.Cex_lint.Lint.classifications))
      0 entries
  in
  let n_diagnostics =
    List.fold_left
      (fun n (_, _, (rep : Cex_lint.Lint.report)) ->
        n + List.length rep.Cex_lint.Lint.diagnostics)
      0 entries
  in
  let grammar_to_json (name, table, (rep : Cex_lint.Lint.report)) =
    let g = Parse_table.grammar table in
    Json.Obj
      [ ("grammar", Json.String name);
        ( "errors",
          Json.Int
            (Cex_lint.Diagnostic.count Cex_lint.Diagnostic.Error
               rep.Cex_lint.Lint.diagnostics) );
        ( "warnings",
          Json.Int
            (Cex_lint.Diagnostic.count Cex_lint.Diagnostic.Warning
               rep.Cex_lint.Lint.diagnostics) );
        ("diagnostics", diagnostics_to_json g rep.Cex_lint.Lint.diagnostics);
        ( "conflicts",
          Json.List
            (List.map
               (fun ((c : Conflict.t), code) ->
                 Json.Obj
                   [ ("state", Json.Int c.Conflict.state);
                     ( "terminal",
                       Json.String
                         (Grammar.terminal_name g c.Conflict.terminal) );
                     ( "kind",
                       Json.String
                         (if Conflict.is_shift_reduce c then "shift_reduce"
                          else "reduce_reduce") );
                     ("classification", Json.String code) ])
               rep.Cex_lint.Lint.classifications) ) ]
  in
  Json.Obj
    [ ("schema_version", Json.Int schema_version);
      ( "summary",
        Json.Obj
          [ ("grammars", Json.Int (List.length entries));
            ("diagnostics", Json.Int n_diagnostics);
            ("errors", Json.Int (severity_total Cex_lint.Diagnostic.Error));
            ("warnings", Json.Int (severity_total Cex_lint.Diagnostic.Warning));
            ("infos", Json.Int (severity_total Cex_lint.Diagnostic.Info));
            ("conflicts", Json.Int n_conflicts);
            ("unclassified_conflicts", Json.Int n_unclassified);
            ("codes", Json.Obj code_totals) ] );
      ("grammars", Json.List (List.map grammar_to_json entries)) ]
