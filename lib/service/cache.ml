type counters = {
  hits : int;
  misses : int;
  evictions : int;
  races : int;
}

type 'a entry = {
  value : 'a;
  mutable last_used : int;  (* tick of the most recent access *)
}

type 'a t = {
  lock : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable races : int;
}

let digest g = Digest.to_hex (Digest.string (Cfg.Export.to_spec g))

let create ?(capacity = 128) () =
  { lock = Mutex.create ();
    table = Hashtbl.create 64;
    capacity = max 1 capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    races = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let length t = with_lock t (fun () -> Hashtbl.length t.table)

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* Unlocked internals, composed under a single lock acquisition. *)

let find_unlocked t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    t.hits <- t.hits + 1;
    touch t entry;
    Some entry.value
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru_unlocked t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1
  | None -> ()

let add_unlocked t key value =
  if Hashtbl.length t.table >= t.capacity then evict_lru_unlocked t;
  let entry = { value; last_used = 0 } in
  touch t entry;
  Hashtbl.replace t.table key entry

let find t key = with_lock t (fun () -> find_unlocked t key)

(* The build runs outside the lock: a session build takes milliseconds and
   holding the shard lock across it would stall every same-shard request
   behind one builder. The price is a benign duplicate-build race — two
   domains may both miss and both build — resolved on insert: the re-check
   under the lock keeps the first value (so all callers share one
   physically-equal value) and counts the discarded build as a race. *)
let find_or_build t key build =
  match find t key with
  | Some v -> v
  | None -> (
    let v = build () in
    with_lock t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some entry ->
          t.races <- t.races + 1;
          touch t entry;
          entry.value
        | None ->
          add_unlocked t key v;
          v))

let set t key value =
  with_lock t (fun () ->
      if Hashtbl.mem t.table key then begin
        (* The find/build/set call sites only re-store a key after a miss,
           so a live entry here means another domain built the same digest
           concurrently: count the duplicate build. *)
        t.races <- t.races + 1;
        let entry = { value; last_used = 0 } in
        touch t entry;
        Hashtbl.replace t.table key entry
      end
      else add_unlocked t key value)

let counters t =
  with_lock t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        races = t.races })

let clear t = with_lock t (fun () -> Hashtbl.reset t.table)

let fold f t init =
  with_lock t (fun () ->
      Hashtbl.fold (fun key entry acc -> f key entry.value acc) t.table init)

let pp_counters ppf (c : counters) =
  Fmt.pf ppf "%d hits, %d misses, %d evictions, %d races" c.hits c.misses
    c.evictions c.races

let zero_counters = { hits = 0; misses = 0; evictions = 0; races = 0 }

let sum_counters cs =
  List.fold_left
    (fun (acc : counters) (c : counters) : counters ->
      { hits = acc.hits + c.hits;
        misses = acc.misses + c.misses;
        evictions = acc.evictions + c.evictions;
        races = acc.races + c.races })
    zero_counters cs

module Sharded = struct
  type 'a shard = 'a t
  type 'a t = 'a shard array

  let create ?(shards = 1) ?(capacity = 128) () =
    let shards = max 1 shards in
    let per_shard = max 1 ((capacity + shards - 1) / shards) in
    Array.init shards (fun _ -> create ~capacity:per_shard ())

  let shard_of t key = t.(Hashtbl.hash key mod Array.length t)
  let shards t = Array.length t
  let find t key = find (shard_of t key) key
  let find_or_build t key build = find_or_build (shard_of t key) key build
  let set t key value = set (shard_of t key) key value
  let length t = Array.fold_left (fun n s -> n + length s) 0 t
  let counters t = Array.to_list (Array.map counters t)

  let fold f t init =
    Array.fold_left (fun acc shard -> fold f shard acc) init t

  let clear t = Array.iter clear t
end
