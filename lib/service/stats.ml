type summary = {
  jobs : int;
  grammars : int;
  conflicts : int;
  conflict_tasks : int;
  wall_seconds : float;
  max_queue_depth : int;
  max_live_sessions : int;
  stages : (string * float) list;
  session_cache : Cache.counters option;
  session_shards : Cache.counters list;
  report_cache : Cache.counters option;
}

type t = {
  lock : Mutex.t;
  clock : Cex_session.Clock.t;
  started : float;
  jobs : int;
  mutable grammars : int;
  mutable conflicts : int;
  mutable conflict_tasks : int;
  mutable max_queue_depth : int;
  mutable max_live_sessions : int;
  stages : (string, float ref) Hashtbl.t;
}

let create ?(clock = Cex_session.Clock.system) ~jobs () =
  { lock = Mutex.create ();
    clock;
    started = Cex_session.Clock.now clock;
    jobs;
    grammars = 0;
    conflicts = 0;
    conflict_tasks = 0;
    max_queue_depth = 0;
    max_live_sessions = 0;
    stages = Hashtbl.create 8 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_stage t name seconds =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.stages name with
      | Some r -> r := !r +. seconds
      | None -> Hashtbl.add t.stages name (ref seconds))

let add_grammars t n = with_lock t (fun () -> t.grammars <- t.grammars + n)
let add_conflicts t n = with_lock t (fun () -> t.conflicts <- t.conflicts + n)

let add_conflict_tasks t n =
  with_lock t (fun () -> t.conflict_tasks <- t.conflict_tasks + n)

let note_queue_depth t depth =
  with_lock t (fun () ->
      if depth > t.max_queue_depth then t.max_queue_depth <- depth)

let note_live_sessions t n =
  with_lock t (fun () ->
      if n > t.max_live_sessions then t.max_live_sessions <- n)

let finish ?session_cache ?(session_shards = []) ?report_cache t =
  with_lock t (fun () ->
      { jobs = t.jobs;
        grammars = t.grammars;
        conflicts = t.conflicts;
        conflict_tasks = t.conflict_tasks;
        wall_seconds = Cex_session.Clock.now t.clock -. t.started;
        max_queue_depth = t.max_queue_depth;
        max_live_sessions = t.max_live_sessions;
        stages =
          Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.stages []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        session_cache;
        session_shards;
        report_cache })

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "@[<v>jobs: %d; grammars: %d; conflicts: %d; conflict tasks: %d; wall: \
     %.3fs; max queue depth: %d; max live sessions: %d"
    s.jobs s.grammars s.conflicts s.conflict_tasks s.wall_seconds
    s.max_queue_depth s.max_live_sessions;
  List.iter
    (fun (name, secs) -> Fmt.pf ppf "@,stage %-16s %.3fs" name secs)
    s.stages;
  (match s.session_cache with
  | Some c -> Fmt.pf ppf "@,session cache: %a" Cache.pp_counters c
  | None -> ());
  List.iteri
    (fun i c -> Fmt.pf ppf "@,  shard %d: %a" i Cache.pp_counters c)
    s.session_shards;
  (match s.report_cache with
  | Some c -> Fmt.pf ppf "@,report cache:  %a" Cache.pp_counters c
  | None -> ());
  Fmt.pf ppf "@]"
