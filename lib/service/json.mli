(** A minimal JSON tree and serializer, sufficient for the service's
    machine-readable reports. No external dependency: the container image
    pins the package set, so we do not assume yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render with two-space indentation ([minify:true] for one line).
    Non-finite floats render as [null]; object key order is preserved. *)

exception Parse_error of int * string
(** Character offset and message of the first syntax error. *)

val of_string : string -> t
(** Parse standard JSON (the subset {!to_string} emits, including [\uXXXX]
    escapes for the basic multilingual plane). Raises {!Parse_error}. *)

val of_string_opt : string -> t option
(** Like {!of_string}, but [None] on malformed input. *)

val member : string -> t -> t option
(** Field lookup on [Obj] nodes ([None] on other nodes). *)

val keys : t -> string list
(** Key list of an [Obj] node, in order ([[]] on other nodes). *)

val map_floats : (float -> float) -> t -> t
(** Rewrite every [Float] leaf (used by tests to zero volatile timings). *)
