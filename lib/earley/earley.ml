open Cfg

type t = {
  grammar : Grammar.t;
}

let make grammar = { grammar }

(* Saturating arithmetic: counts live in [0..cap], where [cap] stands for
   "cap or more". The counting equations are monotone, so iterating them
   from the all-zero chart converges to min(true count, cap) even for cyclic
   grammars with infinitely many trees. *)
let sat_add cap a b = min cap (a + b)
let sat_mul cap a b = min cap (a * b)

(* Dense chart over spans of the input. [nt_tab] holds, per nonterminal [m]
   and span [i..j), the number of derivation trees rooted at a production of
   [m] (plus the bare-leaf match). [seq_tab] holds, per right-hand-side
   position (production [p], offset [k], flattened via [pos_base]) and span,
   the number of ways the suffix of [p] starting at [k] derives the span.
   The "past the end" suffix (k = |rhs|) is the constant empty match and is
   not stored. Dense arrays rather than a hashtable: the batch oracle builds
   one chart per distinct sentential form, so per-cell constant factors
   dominate end-to-end validation time. *)
type chart = {
  parser : t;
  input : Symbol.t array;
  cap : int;
  n : int;
  pos_base : int array;
  nt_tab : int array;
  seq_tab : int array;
}

let nt_get c m i j = c.nt_tab.(((m * (c.n + 1)) + i) * (c.n + 1) + j)

let seq_get c pos i j = c.seq_tab.(((pos * (c.n + 1)) + i) * (c.n + 1) + j)

let leaf_matches c sym i j = j = i + 1 && Symbol.equal c.input.(i) sym

(* Suffix count for production [p] from offset [k] over span [i..j), reading
   the current chart. Loops over the split point of the first symbol; exits
   early once the count saturates. *)
let eval_seq c p k i j =
  let prod = Grammar.production c.parser.grammar p in
  let rhs = prod.Grammar.rhs in
  let last = k + 1 = Array.length rhs in
  let total = ref 0 in
  let m = ref i in
  while !m <= j && !total < c.cap do
    let first =
      match rhs.(k) with
      | Symbol.Terminal _ as sym -> if leaf_matches c sym i !m then 1 else 0
      | Symbol.Nonterminal nm -> nt_get c nm i !m
    in
    (if first > 0 then
       let rest =
         if last then if !m = j then 1 else 0
         else seq_get c (c.pos_base.(p) + k + 1) !m j
       in
       total := sat_add c.cap !total (sat_mul c.cap first rest));
    incr m
  done;
  !total

let eval_nt c nm i j =
  let rooted =
    List.fold_left
      (fun acc p ->
        if acc >= c.cap then acc
        else
          let rhs = (Grammar.production c.parser.grammar p).Grammar.rhs in
          let v =
            if Array.length rhs = 0 then if i = j then 1 else 0
            else seq_get c (c.pos_base.(p)) i j
          in
          sat_add c.cap acc v)
      0
      (Grammar.productions_of c.parser.grammar nm)
  in
  if leaf_matches c (Symbol.Nonterminal nm) i j then sat_add c.cap rooted 1
  else rooted

(* Build the full chart bottom-up by span length. A cell of span [i..j)
   depends only on cells of nested spans, which are strictly shorter except
   at the two degenerate split points (m = i, m = j) — those same-span
   dependencies form cycles only through nullable prefixes/suffixes and unit
   chains, so each span gets a small local fixpoint (values are monotone and
   bounded by [cap], and the suffix-before-nonterminal sweep order settles
   most spans in one pass). *)
let build_chart parser ~cap ~start:_ input =
  let g = parser.grammar in
  let n = Array.length input in
  let np = Grammar.n_productions g in
  let nnt = Grammar.n_nonterminals g in
  let pos_base = Array.make (np + 1) 0 in
  for p = 0 to np - 1 do
    pos_base.(p + 1) <-
      pos_base.(p) + Array.length (Grammar.production g p).Grammar.rhs
  done;
  let dim = n + 1 in
  let c =
    { parser;
      input;
      cap;
      n;
      pos_base;
      nt_tab = Array.make (nnt * dim * dim) 0;
      seq_tab = Array.make (pos_base.(np) * dim * dim) 0 }
  in
  for d = 0 to n do
    for i = 0 to n - d do
      let j = i + d in
      let changed = ref true in
      while !changed do
        changed := false;
        for p = 0 to np - 1 do
          let rhs = (Grammar.production g p).Grammar.rhs in
          for k = Array.length rhs - 1 downto 0 do
            let v = eval_seq c p k i j in
            let idx = (((pos_base.(p) + k) * dim) + i) * dim + j in
            if v > c.seq_tab.(idx) then begin
              c.seq_tab.(idx) <- v;
              changed := true
            end
          done
        done;
        for m = 0 to nnt - 1 do
          let v = eval_nt c m i j in
          let idx = ((m * dim) + i) * dim + j in
          if v > c.nt_tab.(idx) then begin
            c.nt_tab.(idx) <- v;
            changed := true
          end
        done
      done
    done
  done;
  c

let count_generic ~rooted_only parser ?(cap = 4) ~start input =
  let input = Array.of_list input in
  let n = Array.length input in
  (* One extra unit of headroom so that subtracting the trivial leaf
     derivation (rooted_only at a one-symbol input) is not masked by
     saturation. *)
  let c = build_chart parser ~cap:(cap + 1) ~start input in
  let result =
    match start with
    | Symbol.Terminal _ as sym ->
      if (not rooted_only) && leaf_matches c sym 0 n then 1 else 0
    | Symbol.Nonterminal nt ->
      let full = nt_get c nt 0 n in
      if rooted_only && leaf_matches c (Symbol.Nonterminal nt) 0 n then full - 1
      else full
  in
  min cap result

let count_trees parser ?cap ~start input =
  count_generic ~rooted_only:false parser ?cap ~start input

let count_rooted parser ?cap ~start input =
  count_generic ~rooted_only:true parser ?cap ~start input

let ambiguous_from parser ~start input =
  count_rooted parser ~cap:2 ~start input >= 2

let derives parser ~start input =
  count_rooted parser ~cap:1 ~start input >= 1
  || (match input with
     | [ sym ] -> Symbol.equal sym start
     | [] | _ :: _ :: _ -> false)

(* ------------------------------------------------------------------ *)
(* Bounded enumeration of derivation trees, used by tests and for an
   Elkhound-style display of multiple parses. The chart built above prunes
   the search to derivable configurations only. *)

let derivations parser ?(limit = 2) ?(max_nodes = 200) ~start input =
  let g = parser.grammar in
  let input = Array.of_list input in
  let chart = build_chart parser ~cap:1 ~start input in
  let derivable sym i j =
    leaf_matches chart sym i j
    ||
    match sym with
    | Symbol.Terminal _ -> false
    | Symbol.Nonterminal n -> nt_get chart n i j > 0
  in
  let results = ref [] in
  let n_results = ref 0 in
  let exception Done in
  (* [trees sym i j budget yield] enumerates (derivation, nodes used) for
     derivations of input[i..j) from [sym] using at most [budget] nodes. *)
  let rec trees sym i j budget yield =
    if budget > 0 && derivable sym i j then begin
      if leaf_matches chart sym i j then yield (Derivation.leaf sym, 1);
      match sym with
      | Symbol.Terminal _ -> ()
      | Symbol.Nonterminal nt ->
        List.iter
          (fun p ->
            let prod = Grammar.production g p in
            seq prod.Grammar.rhs 0 i j (budget - 1) (fun (children, used) ->
                yield (Derivation.node g p (List.rev children), used + 1)))
          (Grammar.productions_of g nt)
    end
  and seq rhs k i j budget yield =
    if k = Array.length rhs then begin
      if i = j then yield ([], 0)
    end
    else
      for m = i to j do
        if derivable rhs.(k) i m then
          trees rhs.(k) i m budget (fun (first, used) ->
              seq rhs (k + 1) m j (budget - used) (fun (rest, used') ->
                  yield (first :: rest, used + used')))
      done
  in
  (try
     trees start 0 (Array.length input) max_nodes (fun (d, _) ->
         (* Only rooted derivations (skip the trivial leaf at the root). *)
         match d with
         | Derivation.Leaf _ -> ()
         | Derivation.Node _ ->
           results := d :: !results;
           incr n_results;
           if !n_results >= limit then raise Done)
   with Done -> ());
  List.rev !results
