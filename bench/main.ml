(* The benchmark harness: regenerates every evaluation artifact of the paper
   (Table 1 and the section 7.2-7.4 claims; the paper's evaluation section
   has no figures), preceded by bechamel microbenchmarks of the pipeline
   stages and followed by ablation studies of the design choices called out
   in DESIGN.md.

   Set LRCEX_BENCH_QUICK=1 for a fast smoke run (reduced budgets). *)

open Cfg
open Automaton

let quick = Sys.getenv_opt "LRCEX_BENCH_QUICK" <> None

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test.make per pipeline stage, and one for
   the end-to-end Table 1 unit of work. *)

let conflict_and_path lalr c =
  let path =
    Option.get
      (Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
         ~reduce_item:(Conflict.reduce_item c) ~terminal:c.Conflict.terminal)
  in
  (c, path)

let microbenchmarks () =
  let open Bechamel in
  let figure1 = Corpus.grammar (Corpus.find "figure1") in
  let java = Spec_parser.grammar_of_string_exn Corpus.Java_grammars.base in
  let figure1_session = Cex_session.Session.create figure1 in
  let figure1_table = Cex_session.Session.table figure1_session in
  let figure1_lalr = Cex_session.Session.lalr figure1_session in
  let challenging =
    List.find
      (fun c ->
        Grammar.terminal_name figure1 c.Conflict.terminal = "DIGIT")
      (Parse_table.conflicts figure1_table)
  in
  let challenging, challenging_path = conflict_and_path figure1_lalr challenging in
  let earley = Earley.make figure1 in
  let challenging_form =
    [ "expr"; "?"; "ARR"; "["; "expr"; "]"; ":="; "num"; "DIGIT"; "DIGIT";
      "?"; "stmt"; "stmt" ]
    |> List.map (fun n -> Option.get (Grammar.find_symbol figure1 n))
  in
  let stmt =
    Symbol.Nonterminal (Option.get (Grammar.find_nonterminal figure1 "stmt"))
  in
  let tests =
    [ Test.make ~name:"session-build-figure1"
        (Staged.stage (fun () -> Cex_session.Session.create figure1));
      Test.make ~name:"session-build-java"
        (Staged.stage (fun () -> Cex_session.Session.create java));
      Test.make ~name:"lookahead-path-challenging"
        (Staged.stage (fun () ->
             Cex.Lookahead_path.find figure1_lalr
               ~conflict_state:challenging.Conflict.state
               ~reduce_item:(Conflict.reduce_item challenging)
               ~terminal:challenging.Conflict.terminal));
      Test.make ~name:"nonunifying-challenging"
        (Staged.stage (fun () ->
             Cex.Nonunifying.construct figure1_lalr challenging));
      Test.make ~name:"product-search-challenging"
        (Staged.stage (fun () ->
             Cex.Product_search.search figure1_lalr ~conflict:challenging
               ~path_states:(Cex.Lookahead_path.states_on_path challenging_path)));
      Test.make ~name:"earley-validate-challenging"
        (Staged.stage (fun () ->
             Earley.ambiguous_from earley ~start:stmt challenging_form));
      Test.make ~name:"analyze-figure1-end-to-end"
        (Staged.stage (fun () -> Cex.Driver.analyze figure1)) ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000
        ~quota:(Time.second (if quick then 0.25 else 1.0))
        ~stabilize:true ()
    in
    Benchmark.run cfg [ instance ] test
  in
  Fmt.pr "=== Microbenchmarks (bechamel, monotonic clock) ===@.";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = benchmark elt in
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Bechamel.Measure.run |]
          in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let name = Test.Elt.name elt in
          match Analyze.OLS.estimates result with
          | Some [ ns ] ->
            if ns > 1e6 then Fmt.pr "  %-40s %10.3f ms/run@." name (ns /. 1e6)
            else Fmt.pr "  %-40s %10.1f ns/run@." name ns
          | Some _ | None -> Fmt.pr "  %-40s (no estimate)@." name)
        (Test.elements test))
    tests;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Table 1. *)

let table1 () =
  let options =
    if quick then
      { Cex.Driver.default_options with
        Cex.Driver.per_conflict_timeout = 1.0;
        cumulative_timeout = 15.0 }
    else Cex.Driver.default_options
  in
  Fmt.pr
    "=== Table 1 (measured on this machine; 'paper#conf' column recalls the \
     paper's conflict count) ===@.";
  Fmt.pr "%a" Evaluation.pp_header ();
  let rows =
    List.map
      (fun entry ->
        let with_baseline =
          entry.Corpus.category = Corpus.Bv10 && not quick
        in
        let row =
          Evaluation.run_row ~options ~with_baseline ~baseline_budget:15.0
            entry
        in
        Fmt.pr "%a%!" Evaluation.pp_row row;
        row)
      (Corpus.all ())
  in
  Fmt.pr "@.";
  rows

(* ------------------------------------------------------------------ *)
(* Ablations. *)

let search_outcome ?costs ?extended lalr c =
  let path =
    Option.get
      (Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
         ~reduce_item:(Conflict.reduce_item c) ~terminal:c.Conflict.terminal)
  in
  Cex.Product_search.search ?costs ?extended
    ~deadline:
      (Cex_session.Deadline.after Cex_session.Clock.system
         (if quick then 1.0 else 5.0))
    lalr ~conflict:c
    ~path_states:(Cex.Lookahead_path.states_on_path path)

let pp_outcome ppf = function
  | Cex.Product_search.Unifying (_, st) ->
    Fmt.pf ppf "unifying in %d cfgs (%.3fs)"
      st.Cex.Product_search.configs_explored st.Cex.Product_search.elapsed
  | Cex.Product_search.Timeout st ->
    Fmt.pf ppf "TIMEOUT after %d cfgs" st.Cex.Product_search.configs_explored
  | Cex.Product_search.Exhausted st ->
    Fmt.pf ppf "exhausted after %d cfgs" st.Cex.Product_search.configs_explored

let ablation_costs () =
  Fmt.pr "=== Ablation: search cost constants ===@.";
  let variants =
    [ ("tuned (default)", Cex.Product_search.default_costs);
      ( "uniform",
        { Cex.Product_search.transition = 1;
          reverse_transition = 1;
          production_step = 1;
          duplicate_production = 1;
          reduction = 1;
          off_path = 1 } );
      ( "cheap productions",
        { Cex.Product_search.default_costs with
          Cex.Product_search.production_step = 2;
          duplicate_production = 6;
          reduction = 1 } ) ]
  in
  List.iter
    (fun name ->
      let g = Corpus.grammar (Corpus.find name) in
      let session = Cex_session.Session.create g in
      let lalr = Cex_session.Session.lalr session in
      List.iter
        (fun c ->
          Fmt.pr "  %s, conflict in state %d under %s:@." name
            c.Conflict.state
            (Grammar.terminal_name g c.Conflict.terminal);
          List.iter
            (fun (vname, costs) ->
              Fmt.pr "    %-22s %a@." vname pp_outcome
                (search_outcome ~costs lalr c))
            variants)
        (Cex_session.Session.conflicts session))
    [ "figure1"; "SQL.4" ];
  Fmt.pr "@."

let ablation_restriction () =
  Fmt.pr
    "=== Ablation: shortest-path restriction (section 6) vs extended \
     search ===@.";
  List.iter
    (fun name ->
      let g = Corpus.grammar (Corpus.find name) in
      let session = Cex_session.Session.create g in
      let lalr = Cex_session.Session.lalr session in
      List.iter
        (fun c ->
          Fmt.pr "  %-12s state %d under %-6s restricted: %a@." name
            c.Conflict.state
            (Grammar.terminal_name g c.Conflict.terminal)
            pp_outcome
            (search_outcome ~extended:false lalr c);
          Fmt.pr "  %-12s %24s extended:   %a@." name "" pp_outcome
            (search_outcome ~extended:true lalr c))
        (Cex_session.Session.conflicts session))
    [ "ambfailed01"; "figure7"; "figure3" ];
  Fmt.pr "@."

let baseline_comparison () =
  if quick then ()
  else begin
    Fmt.pr "=== Baseline: AMBER-style brute force (start-symbol search) ===@.";
    List.iter
      (fun name ->
        let g = Corpus.grammar (Corpus.find name) in
        let r = Baselines.Brute_force.search ~max_length:10 ~time_limit:10.0 g in
        Fmt.pr "  %-12s %s after %d forms (%.2fs)@." name
          (match r.Baselines.Brute_force.ambiguous with
          | Some _ -> "ambiguity found"
          | None ->
            if r.Baselines.Brute_force.exhausted then "exhausted bound"
            else "gave up")
          r.Baselines.Brute_force.forms_explored
          r.Baselines.Brute_force.elapsed)
      [ "figure1"; "figure3"; "stackovf10"; "SQL.3"; "C.2" ];
    Fmt.pr "@."
  end

(* ------------------------------------------------------------------ *)
(* The batch service: sequential-vs-parallel scheduler wall time on a
   multi-conflict corpus entry, and the content-addressed cache. *)

let scheduler_bench () =
  let name = "stackovf10" in
  let g = Corpus.grammar (Corpus.find name) in
  let session = Cex_session.Session.create g in
  let n_conflicts = List.length (Cex_session.Session.conflicts session) in
  Fmt.pr "=== Batch service: scheduler and cache (%s, %d conflicts) ===@."
    name n_conflicts;
  let time f =
    let t0 = Cex_session.Clock.now Cex_session.Clock.system in
    let r = f () in
    (r, Cex_session.Clock.now Cex_session.Clock.system -. t0)
  in
  (* One warmup run so major-heap state is comparable across both runs. *)
  ignore (Cex_service.Scheduler.analyze_session ~jobs:1 session);
  let sequential, t_seq =
    time (fun () -> Cex_service.Scheduler.analyze_session ~jobs:1 session)
  in
  let parallel, t_par =
    time (fun () -> Cex_service.Scheduler.analyze_session ~jobs:4 session)
  in
  let outcomes r =
    ( Cex.Driver.n_unifying r,
      Cex.Driver.n_nonunifying r,
      Cex.Driver.n_timeout r )
  in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "  sequential (1 worker):  %8.3f s@." t_seq;
  Fmt.pr "  parallel   (4 workers): %8.3f s   speedup %.2fx%s@." t_par
    (t_seq /. t_par)
    (if outcomes sequential = outcomes parallel then ""
     else "   OUTCOME MISMATCH");
  if cores < 4 then
    Fmt.pr
      "  (only %d core%s available: the pool clamps to the machine, so the \
       'parallel' run uses %d worker%s; expect >= 1.5x speedup on >= 4 \
       cores)@."
      cores
      (if cores = 1 then "" else "s")
      (min 4 cores)
      (if min 4 cores = 1 then "" else "s");
  (* Cache: a second analysis of the same grammar digest is a pure lookup. *)
  let service = Cex_service.Scheduler.create ~jobs:4 () in
  let (_ : Cex_service.Scheduler.batch_result * Cex_service.Stats.summary) =
    Cex_service.Scheduler.analyze service ~name g
  in
  let (cached, _), t_hit =
    time (fun () -> Cex_service.Scheduler.analyze service ~name g)
  in
  Fmt.pr "  report-cache hit:       %8.6f s   (served from cache: %b; %a)@."
    t_hit cached.Cex_service.Scheduler.from_cache Cex_service.Cache.pp_counters
    (Cex_service.Scheduler.report_cache_counters service);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* --json mode: a machine-readable per-stage timing harness for trend
   tracking and the CI regression gate. The workload is the full corpus under
   a fixed configuration budget (never a wall-clock limit), so the amount of
   work per stage is deterministic and medians are comparable across runs and
   machines of similar speed. *)

let median samples =
  match List.sort Float.compare samples with
  | [] -> 0.0
  | l ->
    let a = Array.of_list l in
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Nearest-rank 95th percentile: the tail the median hides — a stage whose
   median improves but whose p95 blows up has traded throughput for
   worst-case latency, which is exactly what the parallel fan-out must not
   do. *)
let p95 samples =
  match List.sort Float.compare samples with
  | [] -> 0.0
  | l ->
    let a = Array.of_list l in
    let n = Array.length a in
    let rank = int_of_float (Float.ceil (0.95 *. float_of_int n)) in
    a.(min (n - 1) (max 0 (rank - 1)))

(* ------------------------------------------------------------------ *)
(* The serve path: request latency for the three ways `lrcex serve` can
   satisfy an analyze request — cold (nothing cached), warm (exact-digest
   report-cache hit) and incremental (a one-production edit to a cached
   corpus grammar, served through the delta path). *)

(* stackovf10 with one production added to [atom] (empty parens): the
   symbol table is unchanged and every one of the 20 pre-existing conflicts
   keeps its item pair, so the delta path reuses all 20 unifying
   counterexamples after oracle re-validation instead of re-running the
   product searches (~20k configurations cold). The grammar is fully
   cyclic — e -> pre -> atom -> e — so no nonterminal's fixpoints survive
   the edit; the scenario measures pure conflict-level reuse. *)
let stackovf10_edited =
  {|
%start e
e : e + e
  | e - e
  | e * e
  | e / e
  | - e
  | pre
  ;
pre : atom
    | pre ^ atom
    ;
atom : ID
     | NUM
     | ( e )
     | ( )
     ;
|}

type serve_point = {
  serve_cold_ms : float;
  serve_warm_ms : float;
  serve_incremental_ms : float;
  serve_reuse : Cex_serve.Incremental.reuse option;
}

let serve_point () =
  let base = Corpus.grammar (Corpus.find "stackovf10") in
  let edited = Spec_parser.grammar_of_string_exn stackovf10_edited in
  let reps = if quick then 3 else 9 in
  let time_ms f =
    let t0 = Cex_session.Clock.now Cex_session.Clock.system in
    let r = f () in
    (r, (Cex_session.Clock.now Cex_session.Clock.system -. t0) *. 1000.0)
  in
  let fresh () =
    Cex_serve.Incremental.create (Cex_service.Scheduler.create ~jobs:1 ())
  in
  let sample f = List.init reps (fun _ -> f ()) in
  let cold =
    sample (fun () ->
        let t = fresh () in
        let (_, _, served), ms =
          time_ms (fun () -> Cex_serve.Incremental.analyze t edited)
        in
        assert (served = Cex_serve.Incremental.Cold);
        ms)
  in
  let warm_state = fresh () in
  ignore (Cex_serve.Incremental.analyze warm_state base);
  let warm =
    sample (fun () ->
        let (_, _, served), ms =
          time_ms (fun () -> Cex_serve.Incremental.analyze warm_state base)
        in
        assert (served = Cex_serve.Incremental.Report_cache);
        ms)
  in
  let last_reuse = ref None in
  let incremental =
    sample (fun () ->
        let t = fresh () in
        ignore (Cex_serve.Incremental.analyze t base);
        let (_, _, served), ms =
          time_ms (fun () -> Cex_serve.Incremental.analyze t edited)
        in
        (match served with
        | Cex_serve.Incremental.Delta r -> last_reuse := Some r
        | _ -> ());
        ms)
  in
  { serve_cold_ms = median cold;
    serve_warm_ms = median warm;
    serve_incremental_ms = median incremental;
    serve_reuse = !last_reuse }

let pp_serve_point ppf p =
  Fmt.pf ppf "  cold (no caches):        %10.3f ms/request@." p.serve_cold_ms;
  Fmt.pf ppf "  warm (report cache):     %10.3f ms/request@." p.serve_warm_ms;
  Fmt.pf ppf "  incremental (delta):     %10.3f ms/request   speedup %.2fx@."
    p.serve_incremental_ms
    (if p.serve_incremental_ms > 0.0 then
       p.serve_cold_ms /. p.serve_incremental_ms
     else 0.0);
  match p.serve_reuse with
  | None -> Fmt.pf ppf "  (delta path not taken!)@."
  | Some r ->
    Fmt.pf ppf
      "  reuse: %d/%d nonterminal fixpoints seeded, %d conflicts reused, %d \
       searched (similarity %.2f to %s)@."
      r.Cex_serve.Incremental.seeded_nonterminals r.total_nonterminals
      r.reused_conflicts r.searched_conflicts r.similarity
      (String.sub r.base_digest 0 12)

let serve_bench () =
  Fmt.pr
    "=== Serve: request latency, cold vs warm vs incremental (stackovf10 + \
     one-production edit) ===@.";
  pp_serve_point Fmt.stdout (serve_point ());
  Fmt.pr "@."

let serve_json p =
  let reuse =
    match p.serve_reuse with
    | None -> []
    | Some r ->
      [ ( "reuse",
          Cex_service.Json.Obj
            [ ("similarity", Cex_service.Json.Float r.Cex_serve.Incremental.similarity);
              ("seeded_nonterminals", Cex_service.Json.Int r.seeded_nonterminals);
              ("total_nonterminals", Cex_service.Json.Int r.total_nonterminals);
              ("reused_conflicts", Cex_service.Json.Int r.reused_conflicts);
              ("searched_conflicts", Cex_service.Json.Int r.searched_conflicts) ] ) ]
  in
  Cex_service.Json.Obj
    ([ ("grammar", Cex_service.Json.String "stackovf10");
       ("edit", Cex_service.Json.String "one production added to atom");
       ("cold_ms", Cex_service.Json.Float p.serve_cold_ms);
       ("warm_ms", Cex_service.Json.Float p.serve_warm_ms);
       ("incremental_ms", Cex_service.Json.Float p.serve_incremental_ms);
       ( "speedup_vs_cold",
         Cex_service.Json.Float
           (if p.serve_incremental_ms > 0.0 then
              p.serve_cold_ms /. p.serve_incremental_ms
            else 0.0) ) ]
    @ reuse)

let stage_json samples =
  let total = List.fold_left ( +. ) 0.0 samples in
  Cex_service.Json.Obj
    [ ("median_ms", Cex_service.Json.Float (median samples));
      ("p95_ms", Cex_service.Json.Float (p95 samples));
      ("total_ms", Cex_service.Json.Float total);
      ("samples", Cex_service.Json.Int (List.length samples)) ]

let stage_median doc stage =
  Option.bind (Cex_service.Json.member "stages" doc) (fun stages ->
      Option.bind (Cex_service.Json.member stage stages) (fun s ->
          match Cex_service.Json.member "median_ms" s with
          | Some (Cex_service.Json.Float f) -> Some f
          | Some (Cex_service.Json.Int i) -> Some (float_of_int i)
          | _ -> None))

let stage_names =
  [ "table_build"; "path_search"; "product.search"; "srwalk.search" ]

(* ------------------------------------------------------------------ *)
(* The conflict-level fan-out: end-to-end corpus wall time and the
   Java.5 single-grammar latency, sequential vs parallel. On a one-core
   machine the parallel run measures scheduler overhead on top of the
   single-thread wins (path memoization, pooled scratch structures, the
   bucket queue); on real cores it adds the domain-level speedup. *)

type parallel_point = {
  conflict_jobs : int;
  corpus_wall_seq_ms : float;
  corpus_wall_par_ms : float;
  java5_seq_ms : float;
  java5_par_ms : float;
}

let parallel_point ~options ~conflict_jobs =
  let time_ms f =
    let t0 = Cex_session.Clock.now Cex_session.Clock.system in
    f ();
    (Cex_session.Clock.now Cex_session.Clock.system -. t0) *. 1000.0
  in
  (* End-to-end: session build + every conflict search, full corpus. *)
  let corpus jobs =
    time_ms (fun () ->
        List.iter
          (fun entry ->
            let session = Cex_session.Session.create (Corpus.grammar entry) in
            ignore (Cex.Driver.analyze_session ~options ~jobs session))
          (Corpus.all ()))
  in
  let java5 jobs =
    let reps = if quick then 1 else 9 in
    let g = Corpus.grammar (Corpus.find "Java.5") in
    (* End-to-end single-grammar latency: session build included. Settle
       the major heap first — the corpus pass above leaves collection debt
       that would otherwise land as slices inside the latency samples. *)
    Gc.full_major ();
    median
      (List.init reps (fun _ ->
           time_ms (fun () ->
               let session = Cex_session.Session.create g in
               ignore (Cex.Driver.analyze_session ~options ~jobs session))))
  in
  { conflict_jobs;
    corpus_wall_seq_ms = corpus 1;
    corpus_wall_par_ms = corpus conflict_jobs;
    java5_seq_ms = java5 1;
    java5_par_ms = java5 conflict_jobs }

let parallel_json p =
  let speedup a b = if b > 0.0 then a /. b else 0.0 in
  Cex_service.Json.Obj
    [ ("conflict_jobs", Cex_service.Json.Int p.conflict_jobs);
      ("corpus_wall_jobs1_ms", Cex_service.Json.Float p.corpus_wall_seq_ms);
      ("corpus_wall_parallel_ms", Cex_service.Json.Float p.corpus_wall_par_ms);
      ( "corpus_speedup",
        Cex_service.Json.Float
          (speedup p.corpus_wall_seq_ms p.corpus_wall_par_ms) );
      ("java5_jobs1_ms", Cex_service.Json.Float p.java5_seq_ms);
      ("java5_parallel_ms", Cex_service.Json.Float p.java5_par_ms);
      ("java5_speedup", Cex_service.Json.Float (speedup p.java5_seq_ms p.java5_par_ms)) ]

(* ------------------------------------------------------------------ *)
(* The stress tier: streamed windowed-batch throughput over generated
   grammars — the grammars/s figure the 10k-grammar soak gate and capacity
   planning extrapolate from. Budgets are configuration counts (never wall
   clocks), so the per-grammar work is deterministic; only the wall time
   varies with the machine. *)

type stress_point = {
  stress_grammars : int;
  stress_window : int;
  stress_wall_ms : float;
  stress_grammars_per_second : float;
  stress_conflicts : int;
  stress_max_live_sessions : int;
}

let stress_point () =
  let n = if quick then 40 else 200 in
  let window = Cex_service.Scheduler.default_window in
  let options =
    { Cex.Driver.default_options with
      Cex.Driver.per_conflict_timeout = 1e12;
      cumulative_timeout = 1e12;
      max_configs = 2_000 }
  in
  let service =
    Cex_service.Scheduler.create ~options ~jobs:4 ~cache_capacity:64 ()
  in
  let emitted = ref 0 in
  let t0 = Cex_session.Clock.now Cex_session.Clock.system in
  let stats =
    Cex_service.Scheduler.analyze_batch_emit ~window service
      ~emit:(fun _ -> incr emitted)
      (Corpus.Stress.seq n)
  in
  let wall_ms =
    (Cex_session.Clock.now Cex_session.Clock.system -. t0) *. 1000.0
  in
  assert (!emitted = n);
  { stress_grammars = n;
    stress_window = window;
    stress_wall_ms = wall_ms;
    stress_grammars_per_second =
      (if wall_ms > 0.0 then float_of_int n /. (wall_ms /. 1000.0) else 0.0);
    stress_conflicts = stats.Cex_service.Stats.conflicts;
    stress_max_live_sessions = stats.Cex_service.Stats.max_live_sessions }

let stress_json p =
  Cex_service.Json.Obj
    [ ("grammars", Cex_service.Json.Int p.stress_grammars);
      ("window", Cex_service.Json.Int p.stress_window);
      ("max_configs", Cex_service.Json.Int 2_000);
      ("wall_ms", Cex_service.Json.Float p.stress_wall_ms);
      ( "grammars_per_second",
        Cex_service.Json.Float p.stress_grammars_per_second );
      ("conflicts", Cex_service.Json.Int p.stress_conflicts);
      ( "max_live_sessions",
        Cex_service.Json.Int p.stress_max_live_sessions ) ]

(* Sum of the baseline's per-stage totals: the closest thing schema-2
   baselines have to an end-to-end corpus wall time. *)
let baseline_total_ms doc =
  match Cex_service.Json.member "stages" doc with
  | Some (Cex_service.Json.Obj stages) ->
    List.fold_left
      (fun acc (_, s) ->
        match Cex_service.Json.member "total_ms" s with
        | Some (Cex_service.Json.Float f) -> acc +. f
        | Some (Cex_service.Json.Int i) -> acc +. float_of_int i
        | _ -> acc)
      0.0 stages
  | _ -> 0.0

(* Compare against a committed baseline (BENCH_3.json). Returns false iff
   some stage's median regressed by more than [threshold]x. *)
let compare_baseline ~threshold current file =
  match
    Cex_service.Json.of_string_opt
      (In_channel.with_open_text file In_channel.input_all)
  with
  | None ->
    Fmt.epr "warning: cannot parse baseline %s; skipping comparison@." file;
    true
  | Some base ->
    Fmt.pr "=== Regression check vs %s (threshold %.1fx) ===@." file threshold;
    let ok =
      List.fold_left
        (fun ok stage ->
          match stage_median base stage, stage_median current stage with
          | Some b, Some c when b > 0.0 ->
            let ratio = c /. b in
            let flag =
              if ratio > threshold then "  REGRESSION"
              else if ratio < 1.0 /. threshold then "  improved"
              else ""
            in
            Fmt.pr "  %-16s baseline %10.3f ms   current %10.3f ms   %5.2fx%s@."
              stage b c ratio flag;
            ok && ratio <= threshold
          | _, _ ->
            Fmt.pr "  %-16s (missing in baseline or current; skipped)@." stage;
            ok)
        true stage_names
    in
    (* End-to-end: the current parallel corpus wall vs the baseline's summed
       stage totals (informational — the hard gate is per-stage medians). *)
    (match
       ( baseline_total_ms base,
         Option.bind
           (Cex_service.Json.member "parallel" current)
           (Cex_service.Json.member "corpus_wall_parallel_ms") )
     with
    | b, Some (Cex_service.Json.Float c) when b > 0.0 && c > 0.0 ->
      Fmt.pr
        "  end-to-end corpus:  baseline stage total %10.3f ms   current wall \
         %10.3f ms   %.2fx faster@."
        b c (b /. c)
    | _ -> ());
    ok

let json_bench ~out ~baseline =
  let max_configs = 10_000 in
  (* Every span the pipeline emits — table build at session construction,
     then one path-search / product-search / nonunifying span per conflict
     from the driver — lands here through a custom recording sink; the
     medians below are computed from the raw per-span samples. *)
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let record stage ms =
    match Hashtbl.find_opt samples stage with
    | Some r -> r := ms :: !r
    | None -> Hashtbl.add samples stage (ref [ ms ])
  in
  let sink =
    Cex_session.Trace.make
      ~on_span:(fun stage seconds -> record stage (seconds *. 1000.0))
      ~on_count:(fun _ _ _ -> ())
  in
  (* Effectively infinite time budgets: the workload must be bounded by the
     configuration budget only, so the per-stage work is deterministic. *)
  let options =
    { Cex.Driver.default_options with
      Cex.Driver.per_conflict_timeout = 1e12;
      cumulative_timeout = 1e12;
      max_configs }
  in
  List.iter
    (fun entry ->
      let session =
        Cex_session.Session.create ~trace:sink (Corpus.grammar entry)
      in
      ignore (Cex.Driver.analyze_session ~options session))
    (Corpus.all ());
  (* A second corpus pass under the SR-automaton walk. Only its namespaced
     stages are recorded — the shared stages (table build, path search,
     classification) already have their samples from the product pass and
     would be double-counted otherwise. *)
  let srwalk_sink =
    Cex_session.Trace.make
      ~on_span:(fun stage seconds ->
        if String.starts_with ~prefix:"srwalk." stage then
          record stage (seconds *. 1000.0))
      ~on_count:(fun _ _ _ -> ())
  in
  let srwalk_options = { options with Cex.Driver.engine = Cex.Driver.Srwalk } in
  List.iter
    (fun entry ->
      let session =
        Cex_session.Session.create ~trace:srwalk_sink (Corpus.grammar entry)
      in
      ignore (Cex.Driver.analyze_session ~options:srwalk_options session))
    (Corpus.all ());
  (* A race pass: both engines per conflict on the worker pool under one
     budget. Wall time plus the adjudication counters — with two mirrored
     engines every race should be an agreed tie awarded to product. *)
  let race_counters : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let race_sink =
    Cex_session.Trace.make
      ~on_span:(fun _ _ -> ())
      ~on_count:(fun stage counter n ->
        if stage = "race" then
          Hashtbl.replace race_counters counter
            (n + Option.value ~default:0 (Hashtbl.find_opt race_counters counter)))
  in
  let race_options = { options with Cex.Driver.engine = Cex.Driver.Race } in
  let race_wall_ms =
    let t0 = Cex_session.Clock.now Cex_session.Clock.system in
    List.iter
      (fun entry ->
        let session =
          Cex_session.Session.create ~trace:race_sink (Corpus.grammar entry)
        in
        ignore (Cex.Driver.analyze_session ~options:race_options session))
      (Corpus.all ());
    (Cex_session.Clock.now Cex_session.Clock.system -. t0) *. 1000.0
  in
  let race_counter name =
    Option.value ~default:0 (Hashtbl.find_opt race_counters name)
  in
  let stage_samples stage =
    match Hashtbl.find_opt samples stage with Some r -> !r | None -> []
  in
  let recorded =
    Hashtbl.fold (fun stage _ acc -> stage :: acc) samples []
    |> List.sort String.compare
  in
  let serve = serve_point () in
  let stress = stress_point () in
  let conflict_jobs = 4 in
  let par = parallel_point ~options ~conflict_jobs in
  let doc =
    Cex_service.Json.Obj
      [ ("schema", Cex_service.Json.Int 5);
        ( "workload",
          Cex_service.Json.Obj
            [ ("corpus", Cex_service.Json.String "all");
              ("max_configs", Cex_service.Json.Int max_configs);
              ("conflict_jobs", Cex_service.Json.Int conflict_jobs) ] );
        ( "stages",
          Cex_service.Json.Obj
            (List.map
               (fun stage -> (stage, stage_json (stage_samples stage)))
               recorded) );
        ( "race",
          Cex_service.Json.Obj
            [ ("corpus_wall_ms", Cex_service.Json.Float race_wall_ms);
              ("agreed", Cex_service.Json.Int (race_counter "agreed"));
              ("disagreed", Cex_service.Json.Int (race_counter "disagreed"));
              ( "winner_product",
                Cex_service.Json.Int (race_counter "winner_product") );
              ( "winner_srwalk",
                Cex_service.Json.Int (race_counter "winner_srwalk") ) ] );
        ("parallel", parallel_json par);
        ("serve", serve_json serve);
        ("stress", stress_json stress) ]
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Cex_service.Json.to_string doc);
      output_char oc '\n');
  Fmt.pr "per-stage medians (ms): table_build %.3f, path_search %.3f, \
          product.search %.3f, srwalk.search %.3f@."
    (median (stage_samples "table_build"))
    (median (stage_samples "path_search"))
    (median (stage_samples "product.search"))
    (median (stage_samples "srwalk.search"));
  Fmt.pr "race: corpus wall %.1f ms, agreed %d, disagreed %d, winners \
          product %d / srwalk %d@."
    race_wall_ms (race_counter "agreed") (race_counter "disagreed")
    (race_counter "winner_product") (race_counter "winner_srwalk");
  Fmt.pr "corpus wall (ms): jobs 1 %.1f, jobs %d %.1f; Java.5 (ms): jobs 1 \
          %.1f, jobs %d %.1f@."
    par.corpus_wall_seq_ms conflict_jobs par.corpus_wall_par_ms
    par.java5_seq_ms conflict_jobs par.java5_par_ms;
  Fmt.pr "serve latency (ms): cold %.3f, warm %.3f, incremental %.3f@."
    serve.serve_cold_ms serve.serve_warm_ms serve.serve_incremental_ms;
  Fmt.pr "stress: %d grammars in %.1f ms = %.1f grammars/s (%d conflicts, \
          peak %d live sessions at window %d)@."
    stress.stress_grammars stress.stress_wall_ms
    stress.stress_grammars_per_second stress.stress_conflicts
    stress.stress_max_live_sessions stress.stress_window;
  Fmt.pr "wrote %s@." out;
  match baseline with
  | None -> true
  | Some file -> compare_baseline ~threshold:2.0 doc file

let find_flag_value name =
  let argv = Sys.argv in
  let result = ref None in
  Array.iteri
    (fun i a ->
      if a = name && i + 1 < Array.length argv then result := Some argv.(i + 1))
    argv;
  !result

let () =
  (* Same GC configuration as the shipped binary, so the numbers here are
     the numbers lrcex users get. *)
  Cex_session.Pool.tune_gc ();
  match find_flag_value "--json" with
  | Some out ->
    let ok = json_bench ~out ~baseline:(find_flag_value "--baseline") in
    exit (if ok then 0 else 1)
  | None ->
  Fmt.pr "lrcex benchmark harness%s@.@." (if quick then " (quick mode)" else "");
  microbenchmarks ();
  scheduler_bench ();
  serve_bench ();
  let rows = table1 () in
  Evaluation.pp_effectiveness Fmt.stdout (Evaluation.effectiveness rows);
  Evaluation.pp_efficiency Fmt.stdout (Evaluation.efficiency rows);
  Fmt.pr "@.";
  Evaluation.pp_scalability Fmt.stdout (Evaluation.scalability rows);
  Fmt.pr "@.";
  ablation_costs ();
  ablation_restriction ();
  baseline_comparison ();
  Fmt.pr "done.@."
