(* A guided tour of the paper's machinery on its running example (Fig. 1):
   the parser states (Fig. 2), the shortest lookahead-sensitive path
   (Fig. 5a), the nonunifying counterexample (section 4), the unifying one
   (section 5), and independent validation with the chart parser.

   Run with: dune exec examples/dangling_else.exe *)

open Cfg
open Automaton

let () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let session = Cex_session.Session.create g in
  let table = Cex_session.Session.table session in
  let lalr = Cex_session.Session.lalr session in
  let (_ : Lr0.t) = Parse_table.lr0 table in

  Fmt.pr "=== The grammar of Fig. 1 ===@.%a@." Grammar.pp g;

  (* The dangling-else conflict. *)
  let conflict =
    List.find
      (fun c -> Grammar.terminal_name g c.Conflict.terminal = "ELSE")
      (Parse_table.conflicts table)
  in
  Fmt.pr "=== The conflict ===@.@[<v>%a@]@.@." (Conflict.pp g) conflict;

  Fmt.pr "=== The conflict state (Fig. 2, state 10) ===@.%a@."
    (fun ppf () -> Lalr.pp_state lalr ppf conflict.Conflict.state)
    ();

  (* The shortest lookahead-sensitive path (Fig. 5a). Note how the precise
     lookahead set narrows from {$} to {ELSE} at the inner production step —
     this is what the naive shortest path gets wrong. *)
  let path =
    Option.get
      (Cex.Lookahead_path.find lalr ~conflict_state:conflict.Conflict.state
         ~reduce_item:(Conflict.reduce_item conflict)
         ~terminal:conflict.Conflict.terminal)
  in
  Fmt.pr "=== Shortest lookahead-sensitive path (Fig. 5a) ===@.%a@."
    (Cex.Lookahead_path.pp g) path;

  (* The nonunifying counterexample: two derivable forms sharing the prefix. *)
  (match Cex.Nonunifying.construct lalr conflict with
  | Some nu ->
    Fmt.pr "=== Nonunifying counterexample (section 4) ===@.%a@.@."
      (Cex.Nonunifying.pp g) nu
  | None -> assert false);

  (* The unifying counterexample via the product-parser search. *)
  (match
     Cex.Product_search.search lalr ~conflict
       ~path_states:(Cex.Lookahead_path.states_on_path path)
   with
  | Cex.Product_search.Unifying (u, stats) ->
    Fmt.pr "=== Unifying counterexample (section 5) ===@.";
    Fmt.pr "Found in %.3f s after %d configurations.@."
      stats.Cex.Product_search.elapsed stats.Cex.Product_search.configs_explored;
    Fmt.pr "Ambiguous nonterminal: %s@."
      (Grammar.nonterminal_name g u.Cex.Product_search.nonterminal);
    Fmt.pr "Example:   %a@."
      (Derivation.pp_frontier_with_dot g)
      u.Cex.Product_search.deriv1;
    Fmt.pr "Reduction: %a@." (Derivation.pp g) u.Cex.Product_search.deriv1;
    Fmt.pr "Shift:     %a@." (Derivation.pp g) u.Cex.Product_search.deriv2;

    (* Independent check with the chart parser: the form really has two
       distinct derivations. *)
    let earley = Earley.make g in
    let parses =
      Earley.count_rooted earley ~cap:10
        ~start:(Symbol.Nonterminal u.Cex.Product_search.nonterminal)
        u.Cex.Product_search.form
    in
    Fmt.pr "@.Chart-parser cross-check: %d distinct parses.@." parses
  | Cex.Product_search.Timeout _ | Cex.Product_search.Exhausted _ ->
    assert false);

  (* Finally: how a language designer actually fixes this — with the classic
     matched/unmatched factoring the conflict disappears. *)
  let fixed =
    {|
%start stmt
stmt : matched | unmatched ;
matched : IF expr THEN matched ELSE matched
        | expr ? stmt matched
        | ARR [ expr ] ':=' expr
        ;
unmatched : IF expr THEN stmt
          | IF expr THEN matched ELSE unmatched
          | expr ? stmt unmatched
          ;
expr : num | expr + expr ;
num : DIGIT | num DIGIT ;
|}
  in
  let fixed_table =
    Cex_session.Session.table
      (Cex_session.Session.create (Spec_parser.grammar_of_string_exn fixed))
  in
  Fmt.pr "@.=== After matched/unmatched factoring ===@.";
  Fmt.pr "dangling-else conflicts left: %d (the expression ones remain)@."
    (List.length
       (List.filter
          (fun c ->
            Grammar.terminal_name
              (Parse_table.grammar fixed_table)
              c.Conflict.terminal
            = "ELSE")
          (Parse_table.conflicts fixed_table)))
