(* Debugging a realistic grammar: the SQL.4 corpus grammar hides a dangling
   CASE..THEN..ELSE ambiguity inside a hundred-production SQL grammar. The
   counterexample pinpoints it instantly; the fix (an END terminator, as real
   SQL has) is then verified conflict-free.

   Run with: dune exec examples/sql_debugging.exe *)

open Cfg
open Automaton

let () =
  let entry = Corpus.find "SQL.4" in
  let g = Spec_parser.grammar_of_string_exn entry.Corpus.source in
  Fmt.pr "SQL.4: %d nonterminals, %d productions.@.@."
    (Grammar.n_nonterminals g - 1)
    (Grammar.n_productions g);

  let report = Cex.Driver.analyze g in
  print_string (Cex.Report.to_string report);

  (* The fix: terminate CASE expressions with END, as SQL does. *)
  let fixed_source =
    Corpus.Sql_grammars.base
    ^ {|
expr : CASE search_cond THEN expr END_CASE
     | CASE search_cond THEN expr ELSE expr END_CASE
     ;
|}
  in
  let fixed = Spec_parser.grammar_of_string_exn fixed_source in
  let fixed_table =
    Cex_session.Session.table (Cex_session.Session.create fixed)
  in
  Fmt.pr "@.After adding an END terminator to CASE: %d conflicts.@."
    (List.length (Parse_table.conflicts fixed_table));

  (* And the parser actually parses a CASE query now. *)
  let query =
    [ "SELECT"; "ID"; "FROM"; "ID"; "WHERE"; "ID"; "=";
      "CASE"; "ID"; "="; "NUM"; "THEN"; "NUM"; "ELSE"; "NUM"; "END_CASE";
      ";" ]
  in
  match Runner.parse_names fixed_table query with
  | Ok d ->
    Fmt.pr "parsed: %s@." (String.concat " " query);
    Fmt.pr "tree size: %d nodes@." (Derivation.size d)
  | Error e -> Fmt.pr "unexpected parse error: %a@." (Runner.pp_error fixed) e
