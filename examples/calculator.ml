(* The substrate is a complete LALR parser generator: this example builds a
   calculator, first without precedence (9 conflicts, all explained by
   counterexamples), then with precedence (conflict-free), and then actually
   parses and evaluates input with the table-driven runner.

   Run with: dune exec examples/calculator.exe
   or:       dune exec examples/calculator.exe -- 3 + 4 '*' 5 *)

open Cfg
open Automaton

let ambiguous_source =
  {|
%start e
e : e + e | e - e | e * e | e / e | ( e ) | NUM ;
|}

let resolved_source = "%left + -\n%left * /\n" ^ ambiguous_source

(* Evaluate a derivation tree; NUM leaves take their values from [nums]. *)
let rec eval g nums d =
  match d with
  | Derivation.Leaf (Symbol.Terminal _) -> (
    match !nums with
    | v :: rest ->
      nums := rest;
      v
    | [] -> assert false)
  | Derivation.Leaf (Symbol.Nonterminal _) -> assert false
  | Derivation.Node { children; _ } -> (
    match children with
    | [ only ] -> eval g nums only
    | [ Derivation.Leaf (Symbol.Terminal _); e; Derivation.Leaf (Symbol.Terminal _) ]
      ->
      (* ( e ) *)
      eval g nums e
    | [ l; Derivation.Leaf (Symbol.Terminal op); r ] -> (
      let lv = eval g nums l in
      let rv = eval g nums r in
      match Grammar.terminal_name g op with
      | "+" -> lv +. rv
      | "-" -> lv -. rv
      | "*" -> lv *. rv
      | "/" -> lv /. rv
      | _ -> assert false)
    | _ -> assert false)

let () =
  (* Without precedence: every conflict is a genuine ambiguity, and the tool
     says which and why. *)
  let ambiguous = Spec_parser.grammar_of_string_exn ambiguous_source in
  let report = Cex.Driver.analyze ambiguous in
  Fmt.pr "=== Without precedence declarations ===@.";
  Fmt.pr "%d conflicts; first counterexample:@."
    (List.length report.Cex.Driver.conflict_reports);
  (match report.Cex.Driver.conflict_reports with
  | cr :: _ ->
    Fmt.pr "%a@."
      (Cex.Report.pp_conflict_report (Cex.Driver.grammar report))
      cr
  | [] -> assert false);

  (* With precedence: clean, and the runner gives real parse trees. *)
  let g = Spec_parser.grammar_of_string_exn resolved_source in
  let table = Cex_session.Session.table (Cex_session.Session.create g) in
  Fmt.pr "@.=== With %%left declarations ===@.";
  Fmt.pr "conflicts: %d; precedence-resolved decisions: %d@.@."
    (List.length (Parse_table.conflicts table))
    (Parse_table.precedence_resolved table);

  let input =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as words) -> words
    | _ -> [ "1"; "+"; "2"; "*"; "3"; "-"; "4" ]
  in
  let tokens, values =
    List.map
      (fun w ->
        match float_of_string_opt w with
        | Some v -> ("NUM", Some v)
        | None -> (w, None))
      input
    |> List.split
  in
  let values = List.filter_map Fun.id values in
  match Runner.parse_names table tokens with
  | Error e -> Fmt.pr "parse error: %a@." (Runner.pp_error g) e
  | Ok d ->
    Fmt.pr "input:  %s@." (String.concat " " input);
    Fmt.pr "tree:   %a@." (Derivation.pp g) d;
    Fmt.pr "result: %g@." (eval g (ref values) d)
