(* lrcex: analyze a grammar's parsing conflicts and report counterexamples,
   in the manner of the paper's CUP extension. *)

let read_source = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let run path timeout cumulative extended show_states show_naive classify_lr1
    show_resolved =
  match Cfg.Spec_parser.grammar_of_string (read_source path) with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok g ->
    let options =
      { Cex.Driver.default_options with
        Cex.Driver.per_conflict_timeout = timeout;
        cumulative_timeout = cumulative;
        extended }
    in
    let table = Automaton.Parse_table.build g in
    if show_states then
      Fmt.pr "%a@." (fun ppf () -> Automaton.Lr0.pp ppf (Automaton.Parse_table.lr0 table)) ();
    let report = Cex.Driver.analyze_table ~options table in
    Fmt.pr "%s" (Cex.Report.to_string report);
    if classify_lr1 then begin
      let lalr_conflicts = Automaton.Parse_table.conflicts table in
      if lalr_conflicts <> [] then begin
        let lr1 = Automaton.Lr1.build g in
        let artifacts =
          Automaton.Lr1.merging_artifacts ~lalr_conflicts
            ~lr1_conflicts:(Automaton.Lr1.conflicts lr1)
        in
        Fmt.pr
          "@.[LR(1) classification] canonical LR(1): %d states; %d of %d conflicts are LALR merging artifacts@."
          (Automaton.Lr1.n_states lr1)
          (List.length artifacts) (List.length lalr_conflicts);
        List.iter
          (fun c ->
            Fmt.pr "@.@[<v>%a@]@.This conflict disappears under canonical LR(1): factor the grammar, no ambiguity here.@."
              (Automaton.Conflict.pp g) c)
          artifacts
      end
    end;
    if show_resolved then begin
      let lalr = Automaton.Parse_table.lalr table in
      let resolved = Automaton.Parse_table.resolved_conflicts table in
      if resolved <> [] then
        Fmt.pr
          "@.[precedence-resolved conflicts] %d shift/reduce decisions were settled silently; counterexamples for the ambiguities they resolve:@."
          (List.length resolved);
      List.iter
        (fun (c, resolution) ->
          let cr = Cex.Driver.analyze_conflict ~options lalr c in
          Fmt.pr "@.@[<v>%a@]@.(resolved: %s)@."
            (Cex.Report.pp_conflict_report g) cr
            (match resolution with
            | Automaton.Parse_table.Resolved_shift -> "in favour of the shift"
            | Automaton.Parse_table.Resolved_reduce ->
              "in favour of the reduction"
            | Automaton.Parse_table.Resolved_error ->
              "as a syntax error (nonassociative)"))
        resolved
    end;
    if show_naive then begin
      let lalr = Automaton.Parse_table.lalr table in
      let analysis = Automaton.Lalr.analysis lalr in
      List.iter
        (fun c ->
          match Baselines.Naive_path.find lalr c with
          | None -> ()
          | Some naive ->
            Fmt.pr "@.[naive baseline%s]@.%a@."
              (if Baselines.Naive_path.misleading analysis naive then
                 " - MISLEADING"
               else "")
              (Baselines.Naive_path.pp g) naive)
        (Automaton.Parse_table.conflicts table)
    end;
    if Automaton.Parse_table.conflicts table = [] then 0 else 2

open Cmdliner

let path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"GRAMMAR"
        ~doc:"Grammar file in the yacc-like format ('-' for stdin).")

let timeout_arg =
  Arg.(
    value & opt float 5.0
    & info [ "timeout" ]
        ~doc:"Per-conflict time limit (seconds) for the unifying search.")

let cumulative_arg =
  Arg.(
    value & opt float 120.0
    & info [ "cumulative-timeout" ]
        ~doc:"Cumulative budget (seconds) after which only nonunifying \
              counterexamples are constructed.")

let extended_arg =
  Arg.(
    value & flag
    & info [ "extended-search" ]
        ~doc:"Lift the shortest-path restriction (slower, more complete).")

let states_arg =
  Arg.(value & flag & info [ "states" ] ~doc:"Dump the LR(0) automaton first.")

let naive_arg =
  Arg.(
    value & flag
    & info [ "naive" ]
        ~doc:"Also print the lookahead-insensitive (PPG-style) baseline \
              counterexamples for comparison.")

let lr1_arg =
  Arg.(
    value & flag
    & info [ "lr1" ]
        ~doc:"Classify conflicts against the canonical LR(1) automaton: \
              conflicts that disappear there are LALR merging artifacts.")

let resolved_arg =
  Arg.(
    value & flag
    & info [ "resolved" ]
        ~doc:"Also analyze precedence-resolved shift/reduce decisions and \
              show the ambiguity each one silently settles.")

let cmd =
  let doc =
    "find counterexamples for LALR parsing conflicts (Isradisaikul & Myers, \
     PLDI 2015)"
  in
  Cmd.v
    (Cmd.info "lrcex" ~version:"1.0.0" ~doc)
    Term.(
      const run $ path_arg $ timeout_arg $ cumulative_arg $ extended_arg
      $ states_arg $ naive_arg $ lr1_arg $ resolved_arg)

let () = exit (Cmd.eval' cmd)
