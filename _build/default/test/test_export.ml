open Cfg
open Automaton

(* Round-trip: exporting to the spec dialect and reparsing preserves symbol
   counts, production count, precedence behaviour, and the conflict set
   signature — checked over the entire corpus. *)
let signature g table =
  ( Grammar.n_terminals g,
    Grammar.n_nonterminals g,
    Grammar.n_productions g,
    List.length (Parse_table.conflicts table),
    List.length (Parse_table.resolved_conflicts table),
    Lr0.n_states (Parse_table.lr0 table) )

let test_roundtrip_corpus () =
  List.iter
    (fun e ->
      let g = Corpus.grammar e in
      let exported = Export.to_spec g in
      match Spec_parser.grammar_of_string exported with
      | Error msg ->
        Alcotest.failf "%s: exported spec does not reparse: %s" e.Corpus.name
          msg
      | Ok g' ->
        let t = Parse_table.build g and t' = Parse_table.build g' in
        Alcotest.(check bool)
          (e.Corpus.name ^ " round-trips")
          true
          (signature g t = signature g' t'))
    (* Java-family entries are big; a sample keeps this test quick. *)
    (List.filter
       (fun e ->
         not (String.length e.Corpus.name >= 4 && String.sub e.Corpus.name 0 4 = "Java"))
       (Corpus.all ()))

let test_roundtrip_precedence () =
  let source = "%left '+' '-'\n%right POW\n%start e\ne : e '+' e %prec POW | N ;" in
  let g = Spec_parser.grammar_of_string_exn source in
  let g' = Spec_parser.grammar_of_string_exn (Export.to_spec g) in
  let t name = Option.get (Grammar.find_terminal g' name) in
  Alcotest.(check bool) "plus left level 0" true
    (Grammar.terminal_prec g' (t "+") = Some (0, Grammar.Left));
  Alcotest.(check bool) "pow right level 1" true
    (Grammar.terminal_prec g' (t "POW") = Some (1, Grammar.Right));
  (* The %prec tag survives. *)
  let tagged =
    List.exists
      (fun i -> (Grammar.production g' i).Grammar.prec_tag <> None)
      (List.init (Grammar.n_productions g') Fun.id)
  in
  Alcotest.(check bool) "%prec tag survives" true tagged

let test_menhir_shape () =
  let g = Corpus.grammar (Corpus.find "figure1") in
  let mly = Export.to_menhir g in
  let contains needle =
    let n = String.length needle and m = String.length mly in
    let rec go i = i + n <= m && (String.sub mly i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has %token lines" true (contains "%token IF");
  Alcotest.(check bool) "has start decl" true (contains "%start <unit> stmt");
  Alcotest.(check bool) "renames punctuation" true (contains "QUESTION");
  Alcotest.(check bool) "has unit actions" true (contains "{ () }");
  Alcotest.(check bool) "rule separator" true (contains "%%")

let prop_random_roundtrip =
  QCheck.Test.make ~name:"export/reparse round-trip on random grammars"
    ~count:100 (QCheck.make Test_analysis.gen_spec) (fun source ->
      let g = Spec_parser.grammar_of_string_exn source in
      match Spec_parser.grammar_of_string (Export.to_spec g) with
      | Error _ -> false
      | Ok g' ->
        let t = Parse_table.build g and t' = Parse_table.build g' in
        signature g t = signature g' t')

let suite =
  ( "export",
    [ Alcotest.test_case "corpus round-trip" `Quick test_roundtrip_corpus;
      Alcotest.test_case "precedence round-trip" `Quick
        test_roundtrip_precedence;
      Alcotest.test_case "menhir shape" `Quick test_menhir_shape;
      QCheck_alcotest.to_alcotest prop_random_roundtrip ] )
