open Cfg

let setup source =
  let g = Spec_parser.grammar_of_string_exn source in
  g, Earley.make g

let sym g name = Option.get (Grammar.find_symbol g name)
let syms g names = List.map (sym g) names
let nt g name = sym g name

let test_terminal_string () =
  let g, e = setup "s : A s B | C ;" in
  let count input = Earley.count_rooted e ~start:(nt g "s") (syms g input) in
  Alcotest.(check int) "C" 1 (count [ "C" ]);
  Alcotest.(check int) "A C B" 1 (count [ "A"; "C"; "B" ]);
  Alcotest.(check int) "A C" 0 (count [ "A"; "C" ]);
  Alcotest.(check int) "empty" 0 (count [])

let test_sentential_form () =
  let g, e = setup "s : A s B | C ;" in
  let count input = Earley.count_rooted e ~start:(nt g "s") (syms g input) in
  (* s matches as a leaf inside A _ B. *)
  Alcotest.(check int) "A s B" 1 (count [ "A"; "s"; "B" ]);
  Alcotest.(check int) "A A s B B" 1 (count [ "A"; "A"; "s"; "B"; "B" ])

let test_trivial_leaf () =
  let g, e = setup "s : A ;" in
  Alcotest.(check int) "trees of [s]" 1
    (Earley.count_trees e ~start:(nt g "s") (syms g [ "s" ]));
  Alcotest.(check int) "rooted of [s]" 0
    (Earley.count_rooted e ~start:(nt g "s") (syms g [ "s" ]))

let test_ambiguous_expr () =
  let g, e = setup Corpus.Paper_grammars.expr_plus in
  let amb input = Earley.ambiguous_from e ~start:(nt g "expr") (syms g input) in
  (* The paper's unifying counterexample for section 2.4. *)
  Alcotest.(check bool) "expr + expr + expr ambiguous" true
    (amb [ "expr"; "+"; "expr"; "+"; "expr" ]);
  Alcotest.(check bool) "expr + expr unambiguous" false
    (amb [ "expr"; "+"; "expr" ]);
  Alcotest.(check int) "exactly two parses" 2
    (Earley.count_rooted e ~cap:10 ~start:(nt g "expr")
       (syms g [ "expr"; "+"; "expr"; "+"; "expr" ]))

let test_dangling_else_ambiguity () =
  let g, e = setup Corpus.Paper_grammars.figure1 in
  let form =
    syms g
      [ "IF"; "expr"; "THEN"; "IF"; "expr"; "THEN"; "stmt"; "ELSE"; "stmt" ]
  in
  Alcotest.(check bool) "dangling else ambiguous" true
    (Earley.ambiguous_from e ~start:(nt g "stmt") form)

let test_challenging_counterexample () =
  (* Section 3.1's hand-found counterexample must have two derivations from
     stmt. *)
  let g, e = setup Corpus.Paper_grammars.figure1 in
  let form =
    syms g
      [ "expr"; "?"; "ARR"; "["; "expr"; "]"; ":="; "num"; "DIGIT"; "DIGIT";
        "?"; "stmt"; "stmt" ]
  in
  Alcotest.(check bool) "challenging conflict counterexample" true
    (Earley.ambiguous_from e ~start:(nt g "stmt") form)

let test_unambiguous_grammar () =
  let g, e = setup Corpus.Paper_grammars.figure3 in
  let amb input = Earley.ambiguous_from e ~start:(nt g "s") (syms g input) in
  Alcotest.(check bool) "a a b" false (amb [ "a"; "a"; "b" ]);
  Alcotest.(check bool) "a a a b" false (amb [ "a"; "a"; "a"; "b" ]);
  Alcotest.(check bool) "a" false (amb [ "a" ])

let test_cyclic_grammar_saturates () =
  (* A -> A | X has infinitely many trees for X; the count saturates. *)
  let g, e = setup "a_ : a_ | X ;" in
  Alcotest.(check int) "saturated" 4
    (Earley.count_rooted e ~cap:4 ~start:(nt g "a_") (syms g [ "X" ]))

let test_epsilon_handling () =
  let g, e = setup "s : opt A opt ; opt : B | ;" in
  let count input = Earley.count_rooted e ~start:(nt g "s") (syms g input) in
  Alcotest.(check int) "A alone" 1 (count [ "A" ]);
  Alcotest.(check int) "B A" 1 (count [ "B"; "A" ]);
  Alcotest.(check int) "B A B" 1 (count [ "B"; "A"; "B" ]);
  Alcotest.(check int) "B" 0 (count [ "B" ])

let test_epsilon_ambiguity () =
  (* Two nullable paths to the same string. *)
  let g, e = setup "s : opt1 A | opt2 A ; opt1 : ; opt2 : ;" in
  Alcotest.(check int) "two epsilon parses" 2
    (Earley.count_rooted e ~start:(nt g "s") (syms g [ "A" ]))

let test_derivations_enumeration () =
  let g, e = setup Corpus.Paper_grammars.expr_plus in
  let form = syms g [ "expr"; "+"; "expr"; "+"; "expr" ] in
  let ds = Earley.derivations e ~limit:5 ~start:(nt g "expr") form in
  Alcotest.(check int) "two trees" 2 (List.length ds);
  List.iter
    (fun d ->
      Alcotest.(check bool) "valid" true (Derivation.validate g d);
      Alcotest.(check bool) "frontier matches" true
        (List.for_all2 Symbol.equal (Derivation.leaves d) form))
    ds;
  match ds with
  | [ d1; d2 ] ->
    Alcotest.(check bool) "distinct" false (Derivation.equal d1 d2)
  | _ -> Alcotest.fail "expected two"

(* Cross-validation property: on random grammars, every sentence produced by
   a random bounded derivation is accepted by the chart parser. *)
let prop_random_derivations_accepted =
  QCheck.Test.make ~name:"chart parser accepts generated sentences" ~count:100
    QCheck.(pair (QCheck.make Test_analysis.gen_spec) (int_bound 1000))
    (fun (source, seed) ->
      let g = Spec_parser.grammar_of_string_exn source in
      let a = Analysis.make g in
      let e = Earley.make g in
      let rng = Random.State.make [| seed |] in
      let start = Grammar.start g in
      if not (Analysis.productive a start) then true
      else begin
        (* Generate a random sentential form by a few random expansions of the
           leftmost expandable nonterminal, then ground it out minimally. *)
        let rec expand form steps =
          if steps = 0 then form
          else
            let rec split prefix = function
              | [] -> None
              | Symbol.Nonterminal nt :: rest when Analysis.productive a nt ->
                Some (List.rev prefix, nt, rest)
              | sym :: rest -> split (sym :: prefix) rest
            in
            match split [] form with
            | None -> form
            | Some (before, nt, after) ->
              let prods = Grammar.productions_of g nt in
              let p = List.nth prods (Random.State.int rng (List.length prods)) in
              let rhs = Array.to_list (Grammar.production g p).Grammar.rhs in
              let ok =
                List.for_all
                  (function
                    | Symbol.Terminal _ -> true
                    | Symbol.Nonterminal n -> Analysis.productive a n)
                  rhs
              in
              if ok then expand (before @ rhs @ after) (steps - 1) else form
        in
        let form = expand [ Symbol.Nonterminal start ] 3 in
        let sentence =
          List.map (fun t -> Symbol.Terminal t) (Analysis.min_sentence a form)
        in
        List.length sentence > 12
        || Earley.derives e ~start:(Symbol.Nonterminal start) sentence
      end)

let suite =
  ( "earley",
    [ Alcotest.test_case "terminal strings" `Quick test_terminal_string;
      Alcotest.test_case "sentential forms" `Quick test_sentential_form;
      Alcotest.test_case "trivial leaf" `Quick test_trivial_leaf;
      Alcotest.test_case "ambiguous expr" `Quick test_ambiguous_expr;
      Alcotest.test_case "dangling else" `Quick test_dangling_else_ambiguity;
      Alcotest.test_case "challenging counterexample" `Quick
        test_challenging_counterexample;
      Alcotest.test_case "unambiguous grammar" `Quick test_unambiguous_grammar;
      Alcotest.test_case "cyclic grammar saturates" `Quick
        test_cyclic_grammar_saturates;
      Alcotest.test_case "epsilon handling" `Quick test_epsilon_handling;
      Alcotest.test_case "epsilon ambiguity" `Quick test_epsilon_ambiguity;
      Alcotest.test_case "derivation enumeration" `Quick
        test_derivations_enumeration;
      QCheck_alcotest.to_alcotest prop_random_derivations_accepted ] )
