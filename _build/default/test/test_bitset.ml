open Cfg

let check_elems msg expected s =
  Alcotest.(check (list int)) msg expected (Bitset.elements s)

let test_basic () =
  let s = Bitset.of_list [ 3; 1; 200; 3 ] in
  check_elems "of_list sorts and dedups" [ 1; 3; 200 ] s;
  Alcotest.(check bool) "mem 200" true (Bitset.mem s 200);
  Alcotest.(check bool) "mem 2" false (Bitset.mem s 2);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  check_elems "remove" [ 1; 3 ] (Bitset.remove s 200);
  check_elems "remove absent is id" [ 1; 3; 200 ] (Bitset.remove s 5)

let test_set_ops () =
  let a = Bitset.of_list [ 0; 5; 64; 65 ] in
  let b = Bitset.of_list [ 5; 64; 300 ] in
  check_elems "union" [ 0; 5; 64; 65; 300 ] (Bitset.union a b);
  check_elems "inter" [ 5; 64 ] (Bitset.inter a b);
  Alcotest.(check bool) "subset refl" true (Bitset.subset a a);
  Alcotest.(check bool) "subset" true (Bitset.subset (Bitset.of_list [ 5 ]) a);
  Alcotest.(check bool) "not subset" false (Bitset.subset b a);
  Alcotest.(check bool) "disjoint" true
    (Bitset.disjoint (Bitset.of_list [ 1 ]) (Bitset.of_list [ 2; 128 ]));
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b)

let test_equality_across_widths () =
  (* Sets differing only by trailing zero words must be equal, hash equal,
     and compare equal. *)
  let narrow = Bitset.singleton 1 in
  let wide = Bitset.remove (Bitset.of_list [ 1; 500 ]) 500 in
  Alcotest.(check bool) "equal" true (Bitset.equal narrow wide);
  Alcotest.(check int) "compare" 0 (Bitset.compare narrow wide);
  Alcotest.(check int) "hash" (Bitset.hash narrow) (Bitset.hash wide)

let test_compare_order () =
  let a = Bitset.of_list [ 1 ] in
  let b = Bitset.of_list [ 2 ] in
  let c = Bitset.of_list [ 1; 2 ] in
  Alcotest.(check bool) "a < b" true (Bitset.compare a b < 0);
  Alcotest.(check bool) "b < c" true (Bitset.compare b c < 0);
  Alcotest.(check bool) "antisym" true
    (Bitset.compare b a > 0 && Bitset.compare c b > 0)

let test_choose_fold () =
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose Bitset.empty);
  Alcotest.(check (option int))
    "choose smallest" (Some 7)
    (Bitset.choose (Bitset.of_list [ 9; 7; 100 ]));
  let sum = Bitset.fold ( + ) (Bitset.of_list [ 1; 2; 3 ]) 0 in
  Alcotest.(check int) "fold sum" 6 sum

let prop_union_mem =
  QCheck.Test.make ~name:"union membership" ~count:200
    QCheck.(pair (small_list (int_bound 400)) (small_list (int_bound 400)))
    (fun (xs, ys) ->
      let u = Bitset.union (Bitset.of_list xs) (Bitset.of_list ys) in
      List.for_all (Bitset.mem u) xs
      && List.for_all (Bitset.mem u) ys
      && Bitset.cardinal u
         = List.length
             (List.sort_uniq Int.compare (xs @ ys)))

let prop_inter_mem =
  QCheck.Test.make ~name:"inter membership" ~count:200
    QCheck.(pair (small_list (int_bound 200)) (small_list (int_bound 200)))
    (fun (xs, ys) ->
      let i = Bitset.inter (Bitset.of_list xs) (Bitset.of_list ys) in
      Bitset.fold (fun e ok -> ok && List.mem e xs && List.mem e ys) i true)

let prop_compare_total =
  QCheck.Test.make ~name:"compare is a total order consistent with equal"
    ~count:200
    QCheck.(pair (small_list (int_bound 150)) (small_list (int_bound 150)))
    (fun (xs, ys) ->
      let a = Bitset.of_list xs and b = Bitset.of_list ys in
      let c = Bitset.compare a b in
      Bitset.equal a b = (c = 0) && c = -Bitset.compare b a)

let suite =
  ( "bitset",
    [ Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "set ops" `Quick test_set_ops;
      Alcotest.test_case "equality across widths" `Quick
        test_equality_across_widths;
      Alcotest.test_case "compare order" `Quick test_compare_order;
      Alcotest.test_case "choose and fold" `Quick test_choose_fold;
      QCheck_alcotest.to_alcotest prop_union_mem;
      QCheck_alcotest.to_alcotest prop_inter_mem;
      QCheck_alcotest.to_alcotest prop_compare_total ] )
