open Cfg

(* The report for the section-2.4 conflict must match the paper's Fig. 11
   (modulo terminal spellings: we use '+' where CUP used PLUS). *)
let test_figure11 () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.expr_plus in
  let r = Cex.Driver.analyze g in
  match r.Cex.Driver.conflict_reports with
  | [ cr ] ->
    let text = Fmt.str "%a" (Cex.Report.pp_conflict_report g) cr in
    let dot = Derivation.dot_marker in
    let expected =
      String.concat "\n"
        [ "Warning : *** Shift/Reduce conflict found in state #4";
          "between reduction on expr ::= expr + expr " ^ dot;
          "and shift on expr ::= expr " ^ dot ^ " + expr";
          "under symbol +";
          "Ambiguity detected for nonterminal expr";
          "Example: expr + expr " ^ dot ^ " + expr";
          "Derivation using reduction:";
          "  expr ::= [expr ::= [expr + expr " ^ dot ^ "] + expr]";
          "Derivation using shift:";
          "  expr ::= [expr + expr ::= [expr " ^ dot ^ " + expr]]" ]
    in
    Alcotest.(check string) "figure 11" expected text
  | crs -> Alcotest.failf "expected 1 conflict report, got %d" (List.length crs)

let contains ~substring text =
  let n = String.length substring and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = substring || go (i + 1)) in
  n = 0 || go 0

let test_no_conflicts () =
  let g = Spec_parser.grammar_of_string_exn "s : A s B | C ;" in
  let r = Cex.Driver.analyze g in
  let text = Cex.Report.to_string r in
  Alcotest.(check bool) "mentions LALR(1)" true
    (contains ~substring:"LALR(1)" text)

let suite =
  ( "report",
    [ Alcotest.test_case "figure 11 format" `Quick test_figure11;
      Alcotest.test_case "no conflicts" `Quick test_no_conflicts ] )
