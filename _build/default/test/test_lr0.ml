open Cfg
open Automaton

let build source = Lr0.build (Spec_parser.grammar_of_string_exn source)

let find_state_with_items lr0 item_strings =
  let g = Lr0.grammar lr0 in
  let rec go s =
    if s >= Lr0.n_states lr0 then None
    else
      let st = Lr0.state lr0 s in
      let strings =
        Array.to_list st.Lr0.items |> List.map (Item.to_string g)
      in
      if List.for_all (fun i -> List.mem i strings) item_strings then Some s
      else go (s + 1)
  in
  go 0

(* State counts: the paper's Table 1 uses CUP, which adds an explicit
   end-of-input shift state; our automaton has exactly one state fewer. *)
let test_state_counts () =
  let check name expected =
    let lr0 = build (Corpus.find name).Corpus.source in
    Alcotest.(check int) name expected (Lr0.n_states lr0)
  in
  check "figure1" (24 - 1);
  check "figure3" (10 - 1);
  check "figure7" (16 - 1)

let test_figure2_state10 () =
  (* Figure 2's State 10 contains exactly the two dangling-else items. *)
  let lr0 = build Corpus.Paper_grammars.figure1 in
  match
    find_state_with_items lr0
      [ "stmt ::= IF expr THEN stmt \xe2\x80\xa2 ELSE stmt";
        "stmt ::= IF expr THEN stmt \xe2\x80\xa2" ]
  with
  | None -> Alcotest.fail "dangling-else state not found"
  | Some s ->
    let st = Lr0.state lr0 s in
    Alcotest.(check int) "exactly two items" 2 (Array.length st.Lr0.items)

let test_start_state_closure () =
  let lr0 = build Corpus.Paper_grammars.figure1 in
  let st = Lr0.state lr0 Lr0.start_state in
  (* Figure 2's State 0: START item + 4 stmt + 2 expr + 2 num items. *)
  Alcotest.(check int) "start state item count" 9 (Array.length st.Lr0.items);
  Alcotest.(check bool) "has start item" true (Lr0.has_item st Item.start)

let test_accessing_and_predecessors () =
  let lr0 = build Corpus.Paper_grammars.figure1 in
  let g = Lr0.grammar lr0 in
  Alcotest.(check bool) "start state has no accessing symbol" true
    ((Lr0.state lr0 0).Lr0.accessing = None);
  for s = 1 to Lr0.n_states lr0 - 1 do
    let st = Lr0.state lr0 s in
    (match st.Lr0.accessing with
    | None -> Alcotest.failf "state %d has no accessing symbol" s
    | Some sym ->
      (* Every predecessor really has a transition on the accessing symbol
         into this state. *)
      List.iter
        (fun p ->
          match Lr0.transition lr0 p sym with
          | Some target when target = s -> ()
          | Some target ->
            Alcotest.failf "predecessor %d of %d goes to %d on %s" p s target
              (Grammar.symbol_name g sym)
          | None ->
            Alcotest.failf "predecessor %d of %d has no %s transition" p s
              (Grammar.symbol_name g sym))
        st.Lr0.predecessors);
    (* All kernel items of a non-start state have the accessing symbol just
       before the dot. *)
    List.iter
      (fun item ->
        match Item.prev_symbol g item, st.Lr0.accessing with
        | Some before, Some acc ->
          Alcotest.(check bool) "kernel item matches accessing symbol" true
            (Symbol.equal before acc)
        | _ -> Alcotest.fail "kernel item without previous symbol")
      (Lr0.kernel_items lr0 s)
  done

let test_transitions_total_on_next_symbols () =
  let lr0 = build Corpus.Paper_grammars.figure7 in
  let g = Lr0.grammar lr0 in
  for s = 0 to Lr0.n_states lr0 - 1 do
    Array.iter
      (fun item ->
        match Item.next_symbol g item with
        | None -> ()
        | Some sym -> (
          match Lr0.transition lr0 s sym with
          | Some target ->
            let st' = Lr0.state lr0 target in
            Alcotest.(check bool) "advanced item present" true
              (Lr0.has_item st' (Item.advance item))
          | None -> Alcotest.failf "missing transition in state %d" s))
      (Lr0.state lr0 s).Lr0.items
  done

let test_items_with_next () =
  let lr0 = build Corpus.Paper_grammars.figure7 in
  let g = Lr0.grammar lr0 in
  let b = Option.get (Grammar.find_terminal g "b") in
  (* In the conflict state (after n a), two items expect b next. *)
  let conflict_state =
    Option.get
      (find_state_with_items lr0 [ "a_ ::= a \xe2\x80\xa2" ])
  in
  let items = Lr0.items_with_next lr0 conflict_state (Symbol.Terminal b) in
  Alcotest.(check int) "two b-shift items" 2 (List.length items)

let suite =
  ( "lr0",
    [ Alcotest.test_case "state counts vs paper" `Quick test_state_counts;
      Alcotest.test_case "figure2 state 10" `Quick test_figure2_state10;
      Alcotest.test_case "start state closure" `Quick test_start_state_closure;
      Alcotest.test_case "accessing symbols and predecessors" `Quick
        test_accessing_and_predecessors;
      Alcotest.test_case "transitions cover next symbols" `Quick
        test_transitions_total_on_next_symbols;
      Alcotest.test_case "items with next" `Quick test_items_with_next ] )
