open Cfg

let analysis source = Analysis.make (Spec_parser.grammar_of_string_exn source)

let nt a name =
  Option.get (Grammar.find_nonterminal (Analysis.grammar a) name)

let t a name = Option.get (Grammar.find_terminal (Analysis.grammar a) name)

let first_names a name =
  let g = Analysis.grammar a in
  List.sort String.compare
    (List.map (Grammar.terminal_name g)
       (Bitset.elements (Analysis.first a (nt a name))))

let test_nullable () =
  let a = analysis "s : a_ b_ ; a_ : X | ; b_ : a_ a_ ; c_ : Y c_ ; s : c_ ;" in
  Alcotest.(check bool) "a_ nullable" true (Analysis.nullable a (nt a "a_"));
  Alcotest.(check bool) "b_ nullable" true (Analysis.nullable a (nt a "b_"));
  Alcotest.(check bool) "s nullable" true (Analysis.nullable a (nt a "s"));
  Alcotest.(check bool) "c_ not nullable" false (Analysis.nullable a (nt a "c_"))

let test_first () =
  let a = analysis Corpus.Paper_grammars.figure1 in
  Alcotest.(check (list string)) "FIRST stmt" [ "ARR"; "DIGIT"; "IF" ]
    (first_names a "stmt");
  Alcotest.(check (list string)) "FIRST expr" [ "DIGIT" ] (first_names a "expr");
  Alcotest.(check (list string)) "FIRST num" [ "DIGIT" ] (first_names a "num")

let test_first_nullable_chain () =
  let a = analysis "s : a_ b_ Z ; a_ : X | ; b_ : Y | ;" in
  Alcotest.(check (list string)) "FIRST s" [ "X"; "Y"; "Z" ] (first_names a "s")

let test_follow_l () =
  (* followL cases from the paper: dot before the last symbol yields L; a
     terminal after the stepped symbol yields that terminal; a nonnullable
     nonterminal yields its FIRST; a nullable one chains. *)
  let a = analysis "s : A e f_ g_ B ; e : E ; f_ : F | ; g_ : G ;" in
  let g = Analysis.grammar a in
  let p =
    (* s : A e f_ g_ B *)
    Grammar.production g (List.hd (Grammar.productions_of g (nt a "s")))
  in
  let l = Bitset.singleton (t a "B") in
  let names s = List.map (Grammar.terminal_name g) (Bitset.elements s) in
  (* Stepping into e (dot=1): f_ is nullable, so FIRST(f_) + FIRST(g_). *)
  Alcotest.(check (list string)) "followL e" [ "F"; "G" ]
    (names (Analysis.follow_l a p ~dot:1 l));
  (* Stepping into f_ (dot=2): g_ is not nullable, FIRST(g_) only. *)
  Alcotest.(check (list string)) "followL f_" [ "G" ]
    (names (Analysis.follow_l a p ~dot:2 l));
  (* Stepping into g_ (dot=3): terminal B follows. *)
  Alcotest.(check (list string)) "followL g_" [ "B" ]
    (names (Analysis.follow_l a p ~dot:3 l));
  (* Dot before the last symbol (dot=4): the precise lookahead L itself. *)
  Alcotest.(check (list string)) "followL last" [ "B" ]
    (names (Analysis.follow_l a p ~dot:4 l))

let test_follow_l_nullable_tail () =
  let a = analysis "s : A e f_ ; e : E ; f_ : F | ;" in
  let g = Analysis.grammar a in
  let p = Grammar.production g (List.hd (Grammar.productions_of g (nt a "s"))) in
  let l = Bitset.singleton (t a "A") in
  let names s = List.map (Grammar.terminal_name g) (Bitset.elements s) in
  (* Stepping into e: f_ nullable and nothing else follows, so FIRST(f_) + L. *)
  Alcotest.(check (list string)) "followL with nullable tail" [ "A"; "F" ]
    (names (Analysis.follow_l a p ~dot:1 l))

let test_productive_reachable () =
  let a = analysis "s : X | bad ; bad : Y bad ; lost : Z ; s : W ;" in
  Alcotest.(check bool) "s productive" true (Analysis.productive a (nt a "s"));
  Alcotest.(check bool) "bad nonproductive" false
    (Analysis.productive a (nt a "bad"));
  Alcotest.(check bool) "lost unreachable" false
    (Analysis.reachable a (nt a "lost"));
  Alcotest.(check bool) "bad reachable" true (Analysis.reachable a (nt a "bad"))

let test_epsilon_derivation () =
  let a = analysis "s : a_ b_ ; a_ : | X ; b_ : a_ a_ | Y ;" in
  let g = Analysis.grammar a in
  let d = Analysis.epsilon_derivation a (nt a "s") in
  Alcotest.(check bool) "valid" true (Derivation.validate g d);
  Alcotest.(check int) "no leaves" 0 (List.length (Derivation.leaves d))

let test_front_derivation () =
  let a = analysis Corpus.Paper_grammars.figure1 in
  let g = Analysis.grammar a in
  (* A statement starting with DIGIT: the paper's completion for the
     challenging conflict needs exactly this. *)
  match Analysis.front_derivation a (nt a "stmt") (t a "DIGIT") with
  | None -> Alcotest.fail "stmt should derive DIGIT-first forms"
  | Some d ->
    Alcotest.(check bool) "valid" true (Derivation.validate g d);
    (match Derivation.leaves d with
    | Symbol.Terminal first :: _ ->
      Alcotest.(check string) "starts with DIGIT" "DIGIT"
        (Grammar.terminal_name g first)
    | _ -> Alcotest.fail "expected terminal-first frontier")

let test_front_none () =
  let a = analysis Corpus.Paper_grammars.figure1 in
  Alcotest.(check bool) "expr cannot start with IF" true
    (Analysis.front_derivation a (nt a "expr") (t a "IF") = None)

let test_min_sentence () =
  let a = analysis Corpus.Paper_grammars.figure1 in
  let g = Analysis.grammar a in
  let sentence =
    Analysis.min_sentence a [ Symbol.Nonterminal (nt a "expr") ]
  in
  Alcotest.(check (list string)) "min expr" [ "DIGIT" ]
    (List.map (Grammar.terminal_name g) sentence)

(* Random grammar generator shared with other property tests. *)
let gen_spec =
  let open QCheck.Gen in
  let nts = [ "s"; "a_"; "b_"; "c_" ] in
  let ts = [ "X"; "Y"; "Z" ] in
  let symbol = oneof [ oneofl nts; oneofl ts ] in
  let alt = list_size (int_bound 3) symbol in
  let rule lhs = map (fun alts -> (lhs, alts)) (list_size (int_range 1 3) alt) in
  let+ rules = flatten_l (List.map rule nts) in
  let buf = Buffer.create 128 in
  List.iter
    (fun (lhs, alts) ->
      Buffer.add_string buf lhs;
      Buffer.add_string buf " : ";
      Buffer.add_string buf (String.concat " | " (List.map (String.concat " ") alts));
      Buffer.add_string buf " ;\n")
    rules;
  Buffer.contents buf

let prop_first_sound =
  (* Every terminal reported in FIRST really begins some derivation: checked
     via the front_derivation witness, which validates structurally. *)
  QCheck.Test.make ~name:"FIRST sound via front witnesses" ~count:100
    (QCheck.make gen_spec) (fun source ->
      let a = analysis source in
      let g = Analysis.grammar a in
      let ok = ref true in
      for nt = 0 to Grammar.n_nonterminals g - 1 do
        Bitset.iter
          (fun t ->
            match Analysis.front_derivation a nt t with
            | None -> ok := false
            | Some d ->
              ok :=
                !ok && Derivation.validate g d
                && (match Derivation.leaves d with
                   | Symbol.Terminal t' :: _ -> t = t'
                   | _ -> false)
                && Symbol.equal (Derivation.root_symbol d)
                     (Symbol.Nonterminal nt))
          (Analysis.first a nt)
      done;
      !ok)

let prop_nullable_sound =
  QCheck.Test.make ~name:"nullable sound via epsilon witnesses" ~count:100
    (QCheck.make gen_spec) (fun source ->
      let a = analysis source in
      let g = Analysis.grammar a in
      let ok = ref true in
      for nt = 0 to Grammar.n_nonterminals g - 1 do
        if Analysis.nullable a nt then begin
          let d = Analysis.epsilon_derivation a nt in
          ok := !ok && Derivation.validate g d && Derivation.leaves d = []
        end
      done;
      !ok)

let suite =
  ( "analysis",
    [ Alcotest.test_case "nullable" `Quick test_nullable;
      Alcotest.test_case "first" `Quick test_first;
      Alcotest.test_case "first nullable chain" `Quick test_first_nullable_chain;
      Alcotest.test_case "followL cases" `Quick test_follow_l;
      Alcotest.test_case "followL nullable tail" `Quick
        test_follow_l_nullable_tail;
      Alcotest.test_case "productive and reachable" `Quick
        test_productive_reachable;
      Alcotest.test_case "epsilon derivation" `Quick test_epsilon_derivation;
      Alcotest.test_case "front derivation" `Quick test_front_derivation;
      Alcotest.test_case "front derivation absent" `Quick test_front_none;
      Alcotest.test_case "min sentence" `Quick test_min_sentence;
      QCheck_alcotest.to_alcotest prop_first_sound;
      QCheck_alcotest.to_alcotest prop_nullable_sound ] )
