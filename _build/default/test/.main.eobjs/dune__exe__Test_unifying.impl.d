test/test_unifying.ml: Alcotest Automaton Cex Cfg Conflict Corpus Derivation Earley Grammar Lalr List Option Parse_table QCheck QCheck_alcotest Spec_parser Symbol Test_analysis
