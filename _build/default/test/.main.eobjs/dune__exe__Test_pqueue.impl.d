test/test_pqueue.ml: Alcotest Cex Int List QCheck QCheck_alcotest
