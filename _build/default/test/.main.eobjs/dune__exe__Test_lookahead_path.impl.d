test/test_lookahead_path.ml: Alcotest Automaton Bitset Cex Cfg Conflict Corpus Grammar Item Lalr List Lr0 Option Parse_table Spec_parser
