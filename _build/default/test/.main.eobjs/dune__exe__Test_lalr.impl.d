test/test_lalr.ml: Alcotest Array Automaton Bitset Cfg Corpus Derivation Grammar Item Lalr List Lr0 Spec_parser String
