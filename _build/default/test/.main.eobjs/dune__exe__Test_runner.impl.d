test/test_runner.ml: Alcotest Analysis Automaton Cfg Corpus Derivation Grammar List Parse_table QCheck QCheck_alcotest Runner Spec_parser Symbol Test_analysis
