test/test_baselines.ml: Alcotest Automaton Baselines Cfg Conflict Corpus Earley Grammar Lalr List Parse_table QCheck QCheck_alcotest Spec_parser Symbol Test_analysis
