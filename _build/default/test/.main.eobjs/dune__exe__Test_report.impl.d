test/test_report.ml: Alcotest Cex Cfg Corpus Derivation Fmt List Spec_parser String
