test/test_export.ml: Alcotest Automaton Cfg Corpus Export Fun Grammar List Lr0 Option Parse_table QCheck QCheck_alcotest Spec_parser String Test_analysis
