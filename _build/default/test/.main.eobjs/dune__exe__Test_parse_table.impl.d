test/test_parse_table.ml: Alcotest Array Automaton Bitset Cex Cfg Conflict Corpus Derivation Fmt Grammar Item List Option Parse_table Runner Spec_parser String
