test/main.mli:
