test/test_analysis.ml: Alcotest Analysis Bitset Buffer Cfg Corpus Derivation Grammar List Option QCheck QCheck_alcotest Spec_parser String Symbol
