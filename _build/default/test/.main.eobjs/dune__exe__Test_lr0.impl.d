test/test_lr0.ml: Alcotest Array Automaton Cfg Corpus Grammar Item List Lr0 Option Spec_parser Symbol
