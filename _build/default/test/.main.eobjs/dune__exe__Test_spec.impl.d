test/test_spec.ml: Alcotest Array Cfg Corpus Grammar List Option Spec_lexer Spec_parser Symbol
