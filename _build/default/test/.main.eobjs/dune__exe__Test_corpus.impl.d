test/test_corpus.ml: Alcotest Automaton Cex Cfg Conflict Corpus Derivation Earley Fmt Grammar List Option Parse_table Spec_parser Symbol
