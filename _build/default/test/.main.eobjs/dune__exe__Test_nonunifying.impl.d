test/test_nonunifying.ml: Alcotest Automaton Cex Cfg Conflict Corpus Derivation Earley Fmt Grammar Lalr List Parse_table Spec_parser Symbol
