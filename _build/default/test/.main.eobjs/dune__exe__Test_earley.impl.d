test/test_earley.ml: Alcotest Analysis Array Cfg Corpus Derivation Earley Grammar List Option QCheck QCheck_alcotest Random Spec_parser Symbol Test_analysis
