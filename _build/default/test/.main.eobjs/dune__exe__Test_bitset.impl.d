test/test_bitset.ml: Alcotest Bitset Cfg Int List QCheck QCheck_alcotest
