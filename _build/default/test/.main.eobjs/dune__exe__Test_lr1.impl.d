test/test_lr1.ml: Alcotest Automaton Cfg Corpus List Lr0 Lr1 Parse_table QCheck QCheck_alcotest Spec_parser Test_analysis
