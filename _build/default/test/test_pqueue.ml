let drain q =
  let rec go q acc =
    match Cex.Pqueue.pop q with
    | None -> List.rev acc
    | Some (p, v, q') -> go q' ((p, v) :: acc)
  in
  go q []

let test_ordering () =
  let q =
    List.fold_left
      (fun q (p, v) -> Cex.Pqueue.add q p v)
      Cex.Pqueue.empty
      [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ]
  in
  Alcotest.(check (list string))
    "sorted by priority"
    [ "a"; "b"; "c"; "d"; "e" ]
    (List.map snd (drain q))

let test_fifo_ties () =
  let q =
    List.fold_left
      (fun q v -> Cex.Pqueue.add q 7 v)
      Cex.Pqueue.empty [ "first"; "second"; "third" ]
  in
  Alcotest.(check (list string))
    "equal priorities pop in insertion order"
    [ "first"; "second"; "third" ]
    (List.map snd (drain q))

let test_persistence () =
  let q1 = Cex.Pqueue.add Cex.Pqueue.empty 1 "x" in
  let q2 = Cex.Pqueue.add q1 0 "y" in
  (* Popping q2 must not affect q1. *)
  (match Cex.Pqueue.pop q2 with
  | Some (0, "y", _) -> ()
  | _ -> Alcotest.fail "expected y first from q2");
  match Cex.Pqueue.pop q1 with
  | Some (1, "x", rest) ->
    Alcotest.(check bool) "q1 had one element" true (Cex.Pqueue.is_empty rest)
  | _ -> Alcotest.fail "q1 disturbed by operations on q2"

let test_size () =
  let q = Cex.Pqueue.add (Cex.Pqueue.add Cex.Pqueue.empty 2 'a') 1 'b' in
  Alcotest.(check int) "size" 2 (Cex.Pqueue.size q);
  Alcotest.(check bool) "not empty" false (Cex.Pqueue.is_empty q)

let prop_heap_sort =
  QCheck.Test.make ~name:"pqueue drains in nondecreasing priority order"
    ~count:300
    QCheck.(small_list small_int)
    (fun priorities ->
      let q =
        List.fold_left
          (fun q p -> Cex.Pqueue.add q p p)
          Cex.Pqueue.empty priorities
      in
      let drained = List.map fst (drain q) in
      drained = List.sort Int.compare priorities)

let suite =
  ( "pqueue",
    [ Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
      Alcotest.test_case "persistence" `Quick test_persistence;
      Alcotest.test_case "size" `Quick test_size;
      QCheck_alcotest.to_alcotest prop_heap_sort ] )
