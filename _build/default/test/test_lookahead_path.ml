open Cfg
open Automaton

let setup source =
  let g = Spec_parser.grammar_of_string_exn source in
  let table = Parse_table.build g in
  Parse_table.lalr table, Parse_table.conflicts table

let find_conflict g conflicts ~reduce_lhs ~terminal =
  List.find
    (fun c ->
      let item = Conflict.reduce_item c in
      Grammar.nonterminal_name g (Item.production g item).Grammar.lhs
      = reduce_lhs
      && Grammar.terminal_name g c.Conflict.terminal = terminal)
    conflicts

let path_for lalr (c : Conflict.t) =
  match
    Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
      ~reduce_item:(Conflict.reduce_item c) ~terminal:c.Conflict.terminal
  with
  | Some p -> p
  | None -> Alcotest.fail "no lookahead-sensitive path"

let symbol_names g symbols = List.map (Grammar.symbol_name g) symbols

(* Figure 5(a): the shortest lookahead-sensitive path for the dangling-else
   conflict spells "IF expr THEN IF expr THEN stmt". *)
let test_dangling_else_prefix () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let g = Lalr.grammar lalr in
  let c = find_conflict g conflicts ~reduce_lhs:"stmt" ~terminal:"ELSE" in
  let path = path_for lalr c in
  Alcotest.(check (list string))
    "prefix"
    [ "IF"; "expr"; "THEN"; "IF"; "expr"; "THEN"; "stmt" ]
    (symbol_names g (Cex.Lookahead_path.prefix_symbols path))

(* The path's precise lookahead sets shrink as in Fig. 5(a): the inner if's
   items carry {ELSE}, not the outer {$}. *)
let test_dangling_else_lookaheads () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let g = Lalr.grammar lalr in
  let c = find_conflict g conflicts ~reduce_lhs:"stmt" ~terminal:"ELSE" in
  let path = path_for lalr c in
  let else_t = Option.get (Grammar.find_terminal g "ELSE") in
  let last = List.nth path.Cex.Lookahead_path.nodes
      (List.length path.Cex.Lookahead_path.nodes - 1)
  in
  Alcotest.(check bool) "ends at conflict item" true
    (Item.is_reduce g last.Cex.Lookahead_path.item);
  Alcotest.(check (list int))
    "final precise lookahead is exactly {ELSE}" [ else_t ]
    (Bitset.elements last.Cex.Lookahead_path.lookahead);
  (* The first node's precise lookahead is {$}. *)
  (match path.Cex.Lookahead_path.nodes with
  | first :: _ ->
    Alcotest.(check (list int)) "initial lookahead {$}" [ 0 ]
      (Bitset.elements first.Cex.Lookahead_path.lookahead)
  | [] -> Alcotest.fail "empty path")

(* The challenging conflict of section 3.1: the shortest lookahead-sensitive
   path gives "expr ? ARR [ expr ] := num". *)
let test_challenging_prefix () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let g = Lalr.grammar lalr in
  let c = find_conflict g conflicts ~reduce_lhs:"expr" ~terminal:"DIGIT" in
  let path = path_for lalr c in
  Alcotest.(check (list string))
    "prefix"
    [ "expr"; "?"; "ARR"; "["; "expr"; "]"; ":="; "num" ]
    (symbol_names g (Cex.Lookahead_path.prefix_symbols path))

(* The naive shortest path to the dangling-else state is "IF expr THEN stmt"
   (4 symbols), but it is lookahead-invalid; the lookahead-sensitive path is
   strictly longer. *)
let test_lookahead_sensitivity_matters () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let g = Lalr.grammar lalr in
  let c = find_conflict g conflicts ~reduce_lhs:"stmt" ~terminal:"ELSE" in
  let path = path_for lalr c in
  Alcotest.(check bool) "longer than the naive path" true
    (List.length (Cex.Lookahead_path.prefix_symbols path) > 4);
  ignore g

(* Path well-formedness on every conflict of every small corpus grammar:
   consecutive nodes connected by real edges, and the final precise lookahead
   contains the conflict terminal. *)
let test_path_well_formed () =
  List.iter
    (fun name ->
      let e = Corpus.find name in
      let lalr, conflicts = setup e.Corpus.source in
      let g = Lalr.grammar lalr in
      let lr0 = Lalr.lr0 lalr in
      List.iter
        (fun c ->
          let path = path_for lalr c in
          let rec check nodes steps =
            match nodes, steps with
            | _ :: [], [] -> ()
            | n1 :: (n2 :: _ as nodes'), step :: steps' ->
              (match step with
              | Cex.Lookahead_path.Transition sym ->
                Alcotest.(check (option int))
                  "transition target" (Some n2.Cex.Lookahead_path.state)
                  (Lr0.transition lr0 n1.Cex.Lookahead_path.state sym);
                Alcotest.(check bool) "item advanced" true
                  (Item.equal n2.Cex.Lookahead_path.item
                     (Item.advance n1.Cex.Lookahead_path.item));
                Alcotest.(check bool) "lookahead preserved" true
                  (Bitset.equal n1.Cex.Lookahead_path.lookahead
                     n2.Cex.Lookahead_path.lookahead)
              | Cex.Lookahead_path.Production p ->
                Alcotest.(check int) "same state" n1.Cex.Lookahead_path.state
                  n2.Cex.Lookahead_path.state;
                Alcotest.(check bool) "initial item of production" true
                  (Item.equal n2.Cex.Lookahead_path.item (Item.make p 0)));
              check nodes' steps'
            | _, _ -> Alcotest.fail "node/step length mismatch"
          in
          check path.Cex.Lookahead_path.nodes path.Cex.Lookahead_path.steps;
          let last =
            List.nth path.Cex.Lookahead_path.nodes
              (List.length path.Cex.Lookahead_path.nodes - 1)
          in
          Alcotest.(check bool) "terminal in final lookahead" true
            (Bitset.mem last.Cex.Lookahead_path.lookahead c.Conflict.terminal);
          ignore g)
        conflicts)
    [ "figure1"; "figure3"; "figure7" ]

let suite =
  ( "lookahead_path",
    [ Alcotest.test_case "dangling else prefix (Fig 5a)" `Quick
        test_dangling_else_prefix;
      Alcotest.test_case "dangling else precise lookaheads" `Quick
        test_dangling_else_lookaheads;
      Alcotest.test_case "challenging conflict prefix" `Quick
        test_challenging_prefix;
      Alcotest.test_case "lookahead sensitivity matters" `Quick
        test_lookahead_sensitivity_matters;
      Alcotest.test_case "paths well-formed on corpus" `Quick
        test_path_well_formed ] )
