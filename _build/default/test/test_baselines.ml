open Cfg
open Automaton

let setup source =
  let g = Spec_parser.grammar_of_string_exn source in
  let table = Parse_table.build g in
  g, Parse_table.lalr table, Parse_table.conflicts table

(* Section 7.2: PPG reports a misleading counterexample for the dangling
   else because its shortest path ignores lookaheads. Our reproduction: the
   naive path for the dangling-else conflict is the 4-symbol
   "IF expr THEN stmt", and its reduce continuation cannot start with ELSE. *)
let test_naive_dangling_else_misleading () =
  let g, lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let analysis = Lalr.analysis lalr in
  let c =
    List.find
      (fun c -> Grammar.terminal_name g c.Conflict.terminal = "ELSE")
      conflicts
  in
  match Baselines.Naive_path.find lalr c with
  | None -> Alcotest.fail "naive path not found"
  | Some naive ->
    Alcotest.(check (list string))
      "naive prefix is the short, invalid one"
      [ "IF"; "expr"; "THEN"; "stmt" ]
      (List.map (Grammar.symbol_name g) naive.Baselines.Naive_path.prefix);
    Alcotest.(check bool) "and it is misleading" true
      (Baselines.Naive_path.misleading analysis naive)

(* When the shortest path's own context admits the conflict terminal, the
   naive example happens to be fine: misleading must not be over-reported. *)
let test_naive_sometimes_fine () =
  let g, lalr, conflicts = setup "%start s\ns : e + C ;\ne : e + e | N ;" in
  let analysis = Lalr.analysis lalr in
  ignore g;
  match Baselines.Naive_path.find lalr (List.hd conflicts) with
  | None -> Alcotest.fail "naive path not found"
  | Some naive ->
    Alcotest.(check bool) "not misleading" false
      (Baselines.Naive_path.misleading analysis naive)

let test_brute_force_ambiguous () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.expr_plus in
  let r = Baselines.Brute_force.search ~max_length:8 g in
  match r.Baselines.Brute_force.ambiguous with
  | None -> Alcotest.fail "expr_plus is ambiguous"
  | Some sentence ->
    (* N + N + N is the shortest ambiguous sentence (length 5). *)
    Alcotest.(check int) "shortest ambiguous sentence" 5 (List.length sentence);
    (* Verified independently. *)
    let e = Earley.make g in
    Alcotest.(check bool) "earley agrees" true
      (Earley.ambiguous_from e
         ~start:(Symbol.Nonterminal (Grammar.start g))
         (List.map (fun t -> Symbol.Terminal t) sentence))

let test_brute_force_unambiguous () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure3 in
  let r = Baselines.Brute_force.search ~max_length:9 g in
  Alcotest.(check bool) "no ambiguity" true
    (r.Baselines.Brute_force.ambiguous = None);
  Alcotest.(check bool) "exhausted the bound" true
    r.Baselines.Brute_force.exhausted

let test_brute_force_figure1 () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let r = Baselines.Brute_force.search ~max_length:10 g in
  Alcotest.(check bool) "figure1 ambiguity found" true
    (r.Baselines.Brute_force.ambiguous <> None)

let test_bounded_checker () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let r = Baselines.Bounded_checker.check ~max_bound:10 g in
  (match r.Baselines.Bounded_checker.ambiguous with
  | None -> Alcotest.fail "figure1 is ambiguous"
  | Some (nt, phrase) ->
    (* The innermost ambiguous nonterminal (expr via num, or stmt). *)
    Alcotest.(check bool) "real nonterminal" true
      (nt > 0 && nt < Grammar.n_nonterminals g);
    Alcotest.(check bool) "nonempty phrase" true (phrase <> []));
  let g3 = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure3 in
  let r3 = Baselines.Bounded_checker.check ~max_bound:8 g3 in
  Alcotest.(check bool) "figure3 clean" true
    (r3.Baselines.Bounded_checker.ambiguous = None)

(* Agreement property: on random grammars, if brute force finds an ambiguous
   sentence, our product search finds a unifying counterexample for some
   conflict of the same grammar (soundness of the paper's claim that
   ambiguity manifests as conflicts), and vice versa the chart parser
   validates the brute-force witness. *)
let prop_brute_force_witness_valid =
  QCheck.Test.make ~name:"brute-force witnesses are chart-ambiguous" ~count:40
    (QCheck.make Test_analysis.gen_spec) (fun source ->
      let g = Spec_parser.grammar_of_string_exn source in
      let r = Baselines.Brute_force.search ~max_length:7 ~time_limit:2.0 g in
      match r.Baselines.Brute_force.ambiguous with
      | None -> true
      | Some sentence ->
        let e = Earley.make g in
        Earley.ambiguous_from e
          ~start:(Symbol.Nonterminal (Grammar.start g))
          (List.map (fun t -> Symbol.Terminal t) sentence))

let test_sampler_ambiguous () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.expr_plus in
  let r = Baselines.Sampler.search ~max_samples:500 ~max_len:12 g in
  match r.Baselines.Sampler.ambiguous with
  | None -> Alcotest.fail "sampler should find expr_plus ambiguous"
  | Some sentence ->
    let e = Earley.make g in
    Alcotest.(check bool) "witness verified" true
      (Earley.ambiguous_from e
         ~start:(Symbol.Nonterminal (Grammar.start g))
         (List.map (fun t -> Symbol.Terminal t) sentence))

let test_sampler_unambiguous () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure3 in
  let r = Baselines.Sampler.search ~max_samples:300 ~max_len:10 ~time_limit:3.0 g in
  Alcotest.(check bool) "no false positive" true
    (r.Baselines.Sampler.ambiguous = None);
  Alcotest.(check bool) "sampled something" true (r.Baselines.Sampler.samples > 0)

let test_sampler_deterministic_seed () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let run () =
    (Baselines.Sampler.search ~seed:7 ~max_samples:200 g).Baselines.Sampler.ambiguous
  in
  Alcotest.(check bool) "same seed, same witness" true (run () = run ())

let suite =
  ( "baselines",
    [ Alcotest.test_case "naive dangling else misleading" `Quick
        test_naive_dangling_else_misleading;
      Alcotest.test_case "naive sometimes fine" `Quick test_naive_sometimes_fine;
      Alcotest.test_case "brute force on ambiguous" `Quick
        test_brute_force_ambiguous;
      Alcotest.test_case "brute force on unambiguous" `Quick
        test_brute_force_unambiguous;
      Alcotest.test_case "brute force on figure1" `Quick
        test_brute_force_figure1;
      Alcotest.test_case "bounded checker" `Quick test_bounded_checker;
      Alcotest.test_case "sampler on ambiguous" `Quick test_sampler_ambiguous;
      Alcotest.test_case "sampler on unambiguous" `Quick
        test_sampler_unambiguous;
      Alcotest.test_case "sampler deterministic" `Quick
        test_sampler_deterministic_seed;
      QCheck_alcotest.to_alcotest prop_brute_force_witness_valid ] )
