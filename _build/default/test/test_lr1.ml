open Cfg
open Automaton

let setup source =
  let g = Spec_parser.grammar_of_string_exn source in
  let table = Parse_table.build g in
  g, table, Lr1.build g

(* The textbook LR(1)-but-not-LALR(1) grammar: merging the two states after
   'c' creates a reduce/reduce conflict that canonical LR(1) does not have. *)
let lr1_not_lalr = "s : A a_ D | B b_ D | A b_ E | B a_ E ; a_ : C ; b_ : C ;"

let test_lr1_resolves_merging () =
  let _, table, lr1 = setup lr1_not_lalr in
  let lalr_conflicts = Parse_table.conflicts table in
  Alcotest.(check int) "LALR sees a conflict" 1 (List.length lalr_conflicts);
  Alcotest.(check int) "canonical LR(1) does not" 0
    (List.length (Lr1.conflicts lr1));
  Alcotest.(check int) "classified as a merging artifact" 1
    (List.length
       (Lr1.merging_artifacts ~lalr_conflicts
          ~lr1_conflicts:(Lr1.conflicts lr1)))

let test_lr1_larger_than_lalr () =
  let _, table, lr1 = setup lr1_not_lalr in
  Alcotest.(check bool) "more LR(1) states" true
    (Lr1.n_states lr1 > Lr0.n_states (Parse_table.lr0 table))

(* figure3 is LR(2): its conflict persists in canonical LR(1). *)
let test_figure3_conflict_persists () =
  let _, table, lr1 = setup Corpus.Paper_grammars.figure3 in
  let lalr_conflicts = Parse_table.conflicts table in
  let lr1_conflicts = Lr1.conflicts lr1 in
  Alcotest.(check bool) "conflict persists" true (lr1_conflicts <> []);
  Alcotest.(check int) "no merging artifacts" 0
    (List.length (Lr1.merging_artifacts ~lalr_conflicts ~lr1_conflicts))

(* Ambiguous grammars keep their conflicts too. *)
let test_figure1_conflicts_persist () =
  let _, table, lr1 = setup Corpus.Paper_grammars.figure1 in
  Alcotest.(check int) "no artifacts on figure1" 0
    (List.length
       (Lr1.merging_artifacts
          ~lalr_conflicts:(Parse_table.conflicts table)
          ~lr1_conflicts:(Lr1.conflicts lr1)))

(* On LALR(1) grammars the canonical automaton is conflict-free and accepts
   the same kernels reachable from the start. *)
let test_clean_grammar () =
  let _, table, lr1 = setup "s : c_ c_ ; c_ : C c_ | D ;" in
  Alcotest.(check int) "LALR clean" 0 (List.length (Parse_table.conflicts table));
  Alcotest.(check int) "LR(1) clean" 0 (List.length (Lr1.conflicts lr1))

(* Property: canonical LR(1) never reports a conflict pair that LALR does not
   also report (LALR lookaheads are supersets), so artifacts = LALR \ LR1. *)
let prop_lr1_conflicts_subset =
  QCheck.Test.make ~name:"LR(1) conflict signatures are a subset of LALR's"
    ~count:60 (QCheck.make Test_analysis.gen_spec) (fun source ->
      let g = Spec_parser.grammar_of_string_exn source in
      let table = Parse_table.build g in
      let lr1 = Lr1.build g in
      let lalr_sigs =
        List.length
          (Lr1.merging_artifacts
             ~lalr_conflicts:(Lr1.conflicts lr1)
             ~lr1_conflicts:(Parse_table.conflicts table))
      in
      (* Reversing the roles: every LR(1) conflict must be "explained" by
         some LALR conflict. *)
      lalr_sigs = 0)

let suite =
  ( "lr1",
    [ Alcotest.test_case "resolves LALR merging" `Quick
        test_lr1_resolves_merging;
      Alcotest.test_case "LR(1) larger than LALR" `Quick
        test_lr1_larger_than_lalr;
      Alcotest.test_case "figure3 conflict persists" `Quick
        test_figure3_conflict_persists;
      Alcotest.test_case "figure1 conflicts persist" `Quick
        test_figure1_conflicts_persist;
      Alcotest.test_case "clean grammar" `Quick test_clean_grammar;
      QCheck_alcotest.to_alcotest prop_lr1_conflicts_subset ] )
