open Cfg
open Automaton

let build source =
  let g = Spec_parser.grammar_of_string_exn source in
  Lalr.build (Lr0.build g)

let la_names lalr s item =
  let g = Lalr.grammar lalr in
  Lalr.lookahead_item lalr s item
  |> Bitset.elements
  |> List.map (Grammar.terminal_name g)
  |> List.sort String.compare

let item_of lalr s rendered =
  let g = Lalr.grammar lalr in
  let st = Lr0.state (Lalr.lr0 lalr) s in
  let found =
    Array.to_list st.Lr0.items
    |> List.find_opt (fun i -> String.equal (Item.to_string g i) rendered)
  in
  match found with
  | Some i -> i
  | None -> Alcotest.failf "item %s not in state %d" rendered s

let state_with lalr rendered =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let rec go s =
    if s >= Lr0.n_states lr0 then Alcotest.failf "no state with %s" rendered
    else
      let st = Lr0.state lr0 s in
      if
        Array.exists
          (fun i -> String.equal (Item.to_string g i) rendered)
          st.Lr0.items
      then s
      else go (s + 1)
  in
  go 0

(* Figure 2, State 0: the closure items of the dangling-else grammar carry
   the lookahead sets shown in the paper. *)
let test_figure2_state0 () =
  let lalr = build Corpus.Paper_grammars.figure1 in
  let dot = Derivation.dot_marker in
  let check rendered expected =
    Alcotest.(check (list string))
      rendered expected
      (la_names lalr Lr0.start_state (item_of lalr 0 rendered))
  in
  check ("stmt ::= " ^ dot ^ " IF expr THEN stmt ELSE stmt") [ "$" ];
  check ("stmt ::= " ^ dot ^ " expr ? stmt stmt") [ "$" ];
  check ("expr ::= " ^ dot ^ " num") [ "+"; "?" ];
  check ("expr ::= " ^ dot ^ " expr + expr") [ "+"; "?" ];
  check ("num ::= " ^ dot ^ " DIGIT") [ "+"; "?"; "DIGIT" ];
  check ("num ::= " ^ dot ^ " num DIGIT") [ "+"; "?"; "DIGIT" ]

(* Figure 2, State 6 (reached on IF): expr items are followed by THEN or +. *)
let test_figure2_state6 () =
  let lalr = build Corpus.Paper_grammars.figure1 in
  let dot = Derivation.dot_marker in
  let rendered = "expr ::= " ^ dot ^ " num" in
  let s = state_with lalr ("stmt ::= IF " ^ dot ^ " expr THEN stmt ELSE stmt") in
  Alcotest.(check (list string))
    "expr lookahead after IF" [ "+"; "THEN" ]
    (la_names lalr s (item_of lalr s rendered))

(* The dangling-else reduce item can be followed by $ and ELSE (and the
   symbols that can follow a statement). *)
let test_dangling_else_lookahead () =
  let lalr = build Corpus.Paper_grammars.figure1 in
  let dot = Derivation.dot_marker in
  let rendered = "stmt ::= IF expr THEN stmt " ^ dot in
  let s = state_with lalr rendered in
  let names = la_names lalr s (item_of lalr s rendered) in
  Alcotest.(check bool) "contains $" true (List.mem "$" names);
  Alcotest.(check bool) "contains ELSE" true (List.mem "ELSE" names)

(* figure3 is LR(2): the x ::= a reduce item has lookahead containing 'a'
   (imprecisely), which is exactly why LALR(1) reports a conflict. *)
let test_figure3_imprecision () =
  let lalr = build Corpus.Paper_grammars.figure3 in
  let dot = Derivation.dot_marker in
  let rendered = "x ::= a " ^ dot in
  let s = state_with lalr rendered in
  let names = la_names lalr s (item_of lalr s rendered) in
  Alcotest.(check bool) "lookahead includes a" true (List.mem "a" names)

(* Dragon-book grammar 4.55 (S -> C C; C -> c C | d) is LALR(1): lookaheads
   of the C -> c C . kernels must merge to {c, d, $}. *)
let test_dragon_455 () =
  let lalr = build "s : c_ c_ ; c_ : C c_ | D ;" in
  let dot = Derivation.dot_marker in
  let rendered = "c_ ::= C c_ " ^ dot in
  let s = state_with lalr rendered in
  Alcotest.(check (list string))
    "merged lookaheads" [ "$"; "C"; "D" ]
    (la_names lalr s (item_of lalr s rendered))

(* Lookahead flow respects nullable suffixes. *)
let test_nullable_flow () =
  let lalr = build "s : a_ opt B ; a_ : A ; opt : C | ;" in
  let dot = Derivation.dot_marker in
  let rendered = "a_ ::= " ^ dot ^ " A" in
  let s = state_with lalr rendered in
  Alcotest.(check (list string))
    "lookahead skips nullable opt" [ "B"; "C" ]
    (la_names lalr s (item_of lalr s rendered))

let suite =
  ( "lalr",
    [ Alcotest.test_case "figure2 state 0 lookaheads" `Quick test_figure2_state0;
      Alcotest.test_case "figure2 state 6 lookaheads" `Quick test_figure2_state6;
      Alcotest.test_case "dangling else lookahead" `Quick
        test_dangling_else_lookahead;
      Alcotest.test_case "figure3 LALR imprecision" `Quick
        test_figure3_imprecision;
      Alcotest.test_case "dragon 4.55 merge" `Quick test_dragon_455;
      Alcotest.test_case "nullable lookahead flow" `Quick test_nullable_flow ] )
