open Cfg
open Automaton

let setup source =
  let g = Spec_parser.grammar_of_string_exn source in
  let table = Parse_table.build g in
  Parse_table.lalr table, Parse_table.conflicts table

let names g symbols = List.map (Grammar.symbol_name g) symbols

let construct lalr c =
  match Cex.Nonunifying.construct lalr c with
  | Some nu -> nu
  | None -> Alcotest.fail "nonunifying construction failed"

(* Section 3.2's nonunifying counterexample for the challenging conflict. *)
let test_challenging () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let g = Lalr.grammar lalr in
  let c =
    List.find
      (fun c -> Grammar.terminal_name g c.Conflict.terminal = "DIGIT")
      conflicts
  in
  let nu = construct lalr c in
  Alcotest.(check (list string))
    "prefix"
    [ "expr"; "?"; "ARR"; "["; "expr"; "]"; ":="; "num" ]
    (names g nu.Cex.Nonunifying.prefix);
  Alcotest.(check (list string))
    "reduce side" [ "DIGIT"; "?"; "stmt"; "stmt" ]
    (names g nu.Cex.Nonunifying.reduce_continuation);
  Alcotest.(check (list string))
    "shift side" [ "DIGIT"; "stmt" ]
    (names g nu.Cex.Nonunifying.other_continuation)

let test_figure3 () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure3 in
  let g = Lalr.grammar lalr in
  let nu = construct lalr (List.hd conflicts) in
  Alcotest.(check (list string)) "prefix" [ "a" ] (names g nu.Cex.Nonunifying.prefix);
  Alcotest.(check (list string)) "reduce side" [ "a" ]
    (names g nu.Cex.Nonunifying.reduce_continuation);
  Alcotest.(check (list string)) "shift side" [ "a"; "b" ]
    (names g nu.Cex.Nonunifying.other_continuation)

(* Both sentential forms of a nonunifying counterexample must actually be
   derivable from the start symbol — validated with the independent chart
   parser on all corpus conflicts. *)
let check_derivable source =
  let lalr, conflicts = setup source in
  let g = Lalr.grammar lalr in
  let earley = Earley.make g in
  let start = Symbol.Nonterminal (Grammar.start g) in
  List.iter
    (fun c ->
      let nu = construct lalr c in
      let form1 =
        nu.Cex.Nonunifying.prefix @ nu.Cex.Nonunifying.reduce_continuation
      in
      let form2 =
        nu.Cex.Nonunifying.prefix @ nu.Cex.Nonunifying.other_continuation
      in
      Alcotest.(check bool)
        (Fmt.str "reduce-side derivable: %a" (Grammar.pp_symbols g) form1)
        true
        (Earley.derives earley ~start form1);
      Alcotest.(check bool)
        (Fmt.str "other-side derivable: %a" (Grammar.pp_symbols g) form2)
        true
        (Earley.derives earley ~start form2);
      (* The conflict terminal heads the reduce-side continuation (unless the
         conflict is on end-of-input). *)
      match nu.Cex.Nonunifying.reduce_continuation with
      | Symbol.Terminal t :: _ ->
        Alcotest.(check int) "conflict terminal first" c.Conflict.terminal t
      | [] -> Alcotest.(check int) "eof conflict" 0 c.Conflict.terminal
      | Symbol.Nonterminal _ :: _ ->
        Alcotest.fail "reduce continuation must start with a terminal")
    conflicts

let test_derivable_figure1 () = check_derivable Corpus.Paper_grammars.figure1
let test_derivable_figure3 () = check_derivable Corpus.Paper_grammars.figure3
let test_derivable_figure7 () = check_derivable Corpus.Paper_grammars.figure7

(* Reduce/reduce conflicts get nonunifying counterexamples too. *)
let test_reduce_reduce () =
  let source = "s : a_ X | b_ X Y ; a_ : C ; b_ : C ;" in
  let lalr, conflicts = setup source in
  let g = Lalr.grammar lalr in
  let earley = Earley.make g in
  let start = Symbol.Nonterminal (Grammar.start g) in
  let nu = construct lalr (List.hd conflicts) in
  Alcotest.(check (list string)) "prefix" [ "C" ] (names g nu.Cex.Nonunifying.prefix);
  let form1 = nu.Cex.Nonunifying.prefix @ nu.Cex.Nonunifying.reduce_continuation in
  let form2 = nu.Cex.Nonunifying.prefix @ nu.Cex.Nonunifying.other_continuation in
  Alcotest.(check bool) "form1 derivable" true (Earley.derives earley ~start form1);
  Alcotest.(check bool) "form2 derivable" true (Earley.derives earley ~start form2);
  Alcotest.(check bool) "forms differ" true (form1 <> form2)

(* A conflict whose terminal is end-of-input: continuations may be empty. *)
let test_eof_conflict () =
  let source = "s : a_ | b_ ; a_ : C ; b_ : C ;" in
  let lalr, conflicts = setup source in
  let g = Lalr.grammar lalr in
  match conflicts with
  | [ c ] ->
    Alcotest.(check string) "conflict on $" "$"
      (Grammar.terminal_name g c.Conflict.terminal);
    let nu = construct lalr c in
    Alcotest.(check (list string)) "prefix" [ "C" ]
      (names g nu.Cex.Nonunifying.prefix);
    Alcotest.(check (list string)) "empty reduce continuation" []
      (names g nu.Cex.Nonunifying.reduce_continuation)
  | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs)

(* Derivation trees attached to nonunifying counterexamples: both validate,
   and their frontier equals prefix @ continuation with the conflict marker
   exactly at the end of the prefix. *)
let check_derivations source =
  let lalr, conflicts = setup source in
  let g = Lalr.grammar lalr in
  List.iter
    (fun c ->
      let nu = construct lalr c in
      let check_side deriv continuation =
        match deriv with
        | None -> Alcotest.fail "expected a derivation tree"
        | Some d ->
          Alcotest.(check bool) "valid" true (Derivation.validate g d);
          Alcotest.(check bool) "rooted at START" true
            (Symbol.equal (Derivation.root_symbol d) (Symbol.Nonterminal 0));
          Alcotest.(check (list string))
            "frontier = prefix @ continuation"
            (List.map (Grammar.symbol_name g)
               (nu.Cex.Nonunifying.prefix @ continuation))
            (List.map (Grammar.symbol_name g) (Derivation.leaves d));
          Alcotest.(check (option int))
            "conflict marker after the prefix"
            (Some (List.length nu.Cex.Nonunifying.prefix))
            (Derivation.frontier_dot_position d)
      in
      check_side nu.Cex.Nonunifying.deriv1 nu.Cex.Nonunifying.reduce_continuation;
      (* The shift-side marker sits mid-item but still right after the shared
         prefix. *)
      check_side nu.Cex.Nonunifying.deriv2 nu.Cex.Nonunifying.other_continuation)
    conflicts

let test_derivation_trees_figure1 () =
  check_derivations Corpus.Paper_grammars.figure1

let test_derivation_trees_figure3 () =
  check_derivations Corpus.Paper_grammars.figure3

let test_derivation_trees_rr () =
  check_derivations "s : A a_ D | A b_ E ; a_ : C ; b_ : C ;"

let suite =
  ( "nonunifying",
    [ Alcotest.test_case "challenging conflict (section 3.2)" `Quick
        test_challenging;
      Alcotest.test_case "figure3" `Quick test_figure3;
      Alcotest.test_case "derivable on figure1" `Quick test_derivable_figure1;
      Alcotest.test_case "derivable on figure3" `Quick test_derivable_figure3;
      Alcotest.test_case "derivable on figure7" `Quick test_derivable_figure7;
      Alcotest.test_case "reduce/reduce" `Quick test_reduce_reduce;
      Alcotest.test_case "eof conflict" `Quick test_eof_conflict;
      Alcotest.test_case "derivation trees (figure1)" `Quick
        test_derivation_trees_figure1;
      Alcotest.test_case "derivation trees (figure3)" `Quick
        test_derivation_trees_figure3;
      Alcotest.test_case "derivation trees (reduce/reduce)" `Quick
        test_derivation_trees_rr ] )
