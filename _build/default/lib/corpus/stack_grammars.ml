(** Reconstructions of the StackOverflow / StackExchange grammars from the
    paper's Table 1. The paper links twelve questions by developers who could
    not understand their parsers' conflicts; the exact grammars are not
    distributed with the paper, so each entry below reconstructs the conflict
    pattern the corresponding question exhibits (sizes are close to, but not
    exactly, Table 1's — see EXPERIMENTS.md). *)

(* math.stackexchange: "Determining ambiguity in context-free grammars" —
   the classic doubly-recursive expression grammar. *)
let stackexc01 =
  {|
%start e
e : e + e
  | e * e
  | ( e )
  | ID
  ;
|}

(* cstheory.stackexchange: "Resolving ambiguity in an LALR grammar with
   empty productions" — an optional prefix that needs two tokens of
   lookahead; the grammar is unambiguous but not LALR(1). *)
let stackexc02 =
  {|
%start s
s : header X Y
  | X Z
  | s ',' s_item
  ;
s_item : X ;
header : opt_mod ;
opt_mod : X
        |
        ;
|}

(* "Bison shift-reduce conflict for simple grammar" — right recursion that
   consumes pairs, needing LR(2); unambiguous. *)
let stackovf01 =
  {|
%start args
args : arg
     | args arg
     ;
arg : ID
    | ID ID ':'
    ;
|}

(* "Issue resolving a shift-reduce conflict in my grammar" — two
   undisambiguated binary operators; every conflict is a real ambiguity. *)
let stackovf02 =
  {|
%start e
e : e AND e
  | e OR e
  | ID
  ;
|}

(* "Bison complained conflicts: 1 shift/reduce" — the minimal ambiguous
   binary operator. *)
let stackovf03 =
  {|
%start e
e : e + e
  | NUM
  ;
|}

(* "How to resolve a shift-reduce conflict in unambiguous grammar" — a
   reduce/reduce conflict from two nonterminals that share a prefix and are
   distinguished only two tokens later; unambiguous, LR(2). *)
let stackovf04 =
  {|
%start s
s : stmt
  | s ';' stmt
  ;
stmt : lab C D
     | exp C E
     ;
lab : X ;
exp : X ;
|}

(* "Bison/yacc reduce-reduce conflict for a specific grammar" — a
   dangling-else in disguise: WHEN/DO with optional OTHERWISE. Ambiguous. *)
let stackovf05 =
  {|
%start s
s : WHEN cond DO s OTHERWISE s
  | WHEN cond DO s
  | act
  ;
cond : C
     | cond AND C
     ;
act : A ;
|}

(* "How to resolve this shift-reduce conflict in yacc" — two separate
   LR(2) spots, both unambiguous. *)
let stackovf06 =
  {|
%start s
s : t
  | s t
  ;
t : x
  | y
  | z
  | w
  ;
x : A ;
y : A A B ;
z : C ;
w : C C D ;
|}

(* "Why are there 3 parsing conflicts in my tiny grammar" — a dangling else
   combined with an undisambiguated operator. Ambiguous. *)
let stackovf07 =
  {|
%start s
s : IF e THEN s ELSE s
  | IF e THEN s
  | e
  ;
e : e + e
  | ID
  | ID e
  ;
|}

(* "Shift-reduce conflicts in a simple grammar" — many nonterminals that
   share the same one-token prefix, yielding a pile of reduce/reduce
   conflicts; unambiguous (LR(2)). *)
let stackovf08 =
  {|
%start s
s : item
  | s ';' item
  ;
item : k1 C T1
     | k2 C T2
     | k3 C T3
     | k4 C T4
     ;
k1 : X ;
k2 : X ;
k3 : X ;
k4 : X ;
|}

(* "Shift-reduce conflict" — an unambiguous instruction-stream grammar
   where a one-token unit shares its prefix with a three-token unit,
   needing LR(2). *)
let stackovf09 =
  {|
%start stream
stream : unit_
       | stream unit_
       ;
unit_ : opcode
      | macro
      ;
opcode : OP ;
macro : OP OP END ;
|}

(* "Why are these conflicts appearing in the following yacc grammar for
   XML" — undisambiguated expression forms over several operators plus a
   unary form; massively ambiguous. *)
let stackovf10 =
  {|
%start e
e : e + e
  | e - e
  | e * e
  | e / e
  | - e
  | pre
  ;
pre : atom
    | pre ^ atom
    ;
atom : ID
     | NUM
     | ( e )
     ;
|}
