(** Java grammars in the BV10 style, after the JLS (first edition) LALR(1)
    grammar that also underlies the CUP distribution's java grammar: a
    conflict-free base (the dangling else factored through
    [statement_no_short_if], as in the JLS) and five variants with injected
    conflicts, plus the two "java-ext" extension grammars whose conflicts
    defeat the search budget (Table 1's T/L rows). *)

let base =
  {|
%start compilation_unit

literal
  : INT_LIT
  | FLOAT_LIT
  | BOOL_LIT
  | CHAR_LIT
  | STRING_LIT
  | NULL_LIT
  ;

type_ : primitive_type
      | reference_type
      ;
primitive_type
  : numeric_type
  | BOOLEAN
  ;
numeric_type
  : integral_type
  | floating_point_type
  ;
integral_type
  : BYTE
  | SHORT
  | INT
  | LONG
  | CHAR
  ;
floating_point_type
  : FLOAT
  | DOUBLE
  ;
reference_type
  : class_or_interface_type
  | array_type
  ;
class_or_interface_type
  : name
  ;
class_type
  : class_or_interface_type
  ;
interface_type
  : class_or_interface_type
  ;
array_type
  : primitive_type dims
  | name dims
  ;

name
  : simple_name
  | qualified_name
  ;
simple_name
  : ID
  ;
qualified_name
  : name '.' ID
  ;

compilation_unit
  : package_declaration_opt import_declarations_opt type_declarations_opt
  ;
package_declaration_opt
  : package_declaration
  |
  ;
import_declarations_opt
  : import_declarations
  |
  ;
type_declarations_opt
  : type_declarations
  |
  ;
import_declarations
  : import_declaration
  | import_declarations import_declaration
  ;
type_declarations
  : type_declaration
  | type_declarations type_declaration
  ;
package_declaration
  : PACKAGE name ';'
  ;
import_declaration
  : single_type_import_declaration
  | type_import_on_demand_declaration
  ;
single_type_import_declaration
  : IMPORT name ';'
  ;
type_import_on_demand_declaration
  : IMPORT name '.' '*' ';'
  ;
type_declaration
  : class_declaration
  | interface_declaration
  | ';'
  ;

modifiers_opt
  : modifiers
  |
  ;
modifiers
  : modifier
  | modifiers modifier
  ;
modifier
  : PUBLIC
  | PROTECTED
  | PRIVATE
  | STATIC
  | ABSTRACT
  | FINAL
  | NATIVE
  | SYNCHRONIZED
  | TRANSIENT
  | VOLATILE
  ;

class_declaration
  : modifiers_opt CLASS ID super_opt interfaces_opt class_body
  ;
super_opt
  : EXTENDS class_type
  |
  ;
interfaces_opt
  : interfaces
  |
  ;
interfaces
  : IMPLEMENTS interface_type_list
  ;
interface_type_list
  : interface_type
  | interface_type_list ',' interface_type
  ;
class_body
  : '{' class_body_declarations_opt '}'
  ;
class_body_declarations_opt
  : class_body_declarations
  |
  ;
class_body_declarations
  : class_body_declaration
  | class_body_declarations class_body_declaration
  ;
class_body_declaration
  : class_member_declaration
  | static_initializer
  | constructor_declaration
  ;
class_member_declaration
  : field_declaration
  | method_declaration
  ;

field_declaration
  : modifiers_opt type_ variable_declarators ';'
  ;
variable_declarators
  : variable_declarator
  | variable_declarators ',' variable_declarator
  ;
variable_declarator
  : variable_declarator_id
  | variable_declarator_id '=' variable_initializer
  ;
variable_declarator_id
  : ID
  | variable_declarator_id '[' ']'
  ;
variable_initializer
  : expression
  | array_initializer
  ;

method_declaration
  : method_header method_body
  ;
method_header
  : modifiers_opt type_ method_declarator throws_opt
  | modifiers_opt VOID method_declarator throws_opt
  ;
method_declarator
  : ID '(' formal_parameter_list_opt ')'
  | method_declarator '[' ']'
  ;
formal_parameter_list_opt
  : formal_parameter_list
  |
  ;
formal_parameter_list
  : formal_parameter
  | formal_parameter_list ',' formal_parameter
  ;
formal_parameter
  : type_ variable_declarator_id
  ;
throws_opt
  : throws
  |
  ;
throws
  : THROWS class_type_list
  ;
class_type_list
  : class_type
  | class_type_list ',' class_type
  ;
method_body
  : block
  | ';'
  ;

static_initializer
  : STATIC block
  ;

constructor_declaration
  : modifiers_opt constructor_declarator throws_opt constructor_body
  ;
constructor_declarator
  : simple_name '(' formal_parameter_list_opt ')'
  ;
constructor_body
  : '{' explicit_constructor_invocation block_statements '}'
  | '{' explicit_constructor_invocation '}'
  | '{' block_statements '}'
  | '{' '}'
  ;
explicit_constructor_invocation
  : THIS '(' argument_list_opt ')' ';'
  | SUPER '(' argument_list_opt ')' ';'
  ;

interface_declaration
  : modifiers_opt INTERFACE ID extends_interfaces_opt interface_body
  ;
extends_interfaces_opt
  : extends_interfaces
  |
  ;
extends_interfaces
  : EXTENDS interface_type
  | extends_interfaces ',' interface_type
  ;
interface_body
  : '{' interface_member_declarations_opt '}'
  ;
interface_member_declarations_opt
  : interface_member_declarations
  |
  ;
interface_member_declarations
  : interface_member_declaration
  | interface_member_declarations interface_member_declaration
  ;
interface_member_declaration
  : constant_declaration
  | abstract_method_declaration
  ;
constant_declaration
  : field_declaration
  ;
abstract_method_declaration
  : method_header ';'
  ;

array_initializer
  : '{' variable_initializers ',' '}'
  | '{' variable_initializers '}'
  | '{' ',' '}'
  | '{' '}'
  ;
variable_initializers
  : variable_initializer
  | variable_initializers ',' variable_initializer
  ;

block
  : '{' block_statements_opt '}'
  ;
block_statements_opt
  : block_statements
  |
  ;
block_statements
  : block_statement
  | block_statements block_statement
  ;
block_statement
  : local_variable_declaration_statement
  | statement
  ;
local_variable_declaration_statement
  : local_variable_declaration ';'
  ;
local_variable_declaration
  : type_ variable_declarators
  ;

statement
  : statement_without_trailing_substatement
  | labeled_statement
  | if_then_statement
  | if_then_else_statement
  | while_statement
  | for_statement
  ;
statement_no_short_if
  : statement_without_trailing_substatement
  | labeled_statement_no_short_if
  | if_then_else_statement_no_short_if
  | while_statement_no_short_if
  | for_statement_no_short_if
  ;
statement_without_trailing_substatement
  : block
  | empty_statement
  | expression_statement
  | switch_statement
  | do_statement
  | break_statement
  | continue_statement
  | return_statement
  | synchronized_statement
  | throw_statement
  | try_statement
  ;
empty_statement
  : ';'
  ;
labeled_statement
  : ID ':' statement
  ;
labeled_statement_no_short_if
  : ID ':' statement_no_short_if
  ;
expression_statement
  : statement_expression ';'
  ;
statement_expression
  : assignment
  | preincrement_expression
  | predecrement_expression
  | postincrement_expression
  | postdecrement_expression
  | method_invocation
  | class_instance_creation_expression
  ;
if_then_statement
  : IF '(' expression ')' statement
  ;
if_then_else_statement
  : IF '(' expression ')' statement_no_short_if ELSE statement
  ;
if_then_else_statement_no_short_if
  : IF '(' expression ')' statement_no_short_if ELSE statement_no_short_if
  ;
switch_statement
  : SWITCH '(' expression ')' switch_block
  ;
switch_block
  : '{' switch_block_statement_groups switch_labels '}'
  | '{' switch_block_statement_groups '}'
  | '{' switch_labels '}'
  | '{' '}'
  ;
switch_block_statement_groups
  : switch_block_statement_group
  | switch_block_statement_groups switch_block_statement_group
  ;
switch_block_statement_group
  : switch_labels block_statements
  ;
switch_labels
  : switch_label
  | switch_labels switch_label
  ;
switch_label
  : CASE constant_expression ':'
  | DEFAULT ':'
  ;
while_statement
  : WHILE '(' expression ')' statement
  ;
while_statement_no_short_if
  : WHILE '(' expression ')' statement_no_short_if
  ;
do_statement
  : DO statement WHILE '(' expression ')' ';'
  ;
for_statement
  : FOR '(' for_init_opt ';' expression_opt ';' for_update_opt ')' statement
  ;
for_statement_no_short_if
  : FOR '(' for_init_opt ';' expression_opt ';' for_update_opt ')'
    statement_no_short_if
  ;
for_init_opt
  : for_init
  |
  ;
for_init
  : statement_expression_list
  | local_variable_declaration
  ;
for_update_opt
  : statement_expression_list
  |
  ;
statement_expression_list
  : statement_expression
  | statement_expression_list ',' statement_expression
  ;
expression_opt
  : expression
  |
  ;
break_statement
  : BREAK identifier_opt ';'
  ;
continue_statement
  : CONTINUE identifier_opt ';'
  ;
identifier_opt
  : ID
  |
  ;
return_statement
  : RETURN expression_opt ';'
  ;
throw_statement
  : THROW expression ';'
  ;
synchronized_statement
  : SYNCHRONIZED '(' expression ')' block
  ;
try_statement
  : TRY block catches
  | TRY block catches_opt finally_
  ;
catches_opt
  : catches
  |
  ;
catches
  : catch_clause
  | catches catch_clause
  ;
catch_clause
  : CATCH '(' formal_parameter ')' block
  ;
finally_
  : FINALLY block
  ;

primary
  : primary_no_new_array
  | array_creation_expression
  ;
primary_no_new_array
  : literal
  | THIS
  | '(' expression ')'
  | class_instance_creation_expression
  | field_access
  | method_invocation
  | array_access
  ;
class_instance_creation_expression
  : NEW class_type '(' argument_list_opt ')'
  ;
argument_list_opt
  : argument_list
  |
  ;
argument_list
  : expression
  | argument_list ',' expression
  ;
array_creation_expression
  : NEW primitive_type dim_exprs dims_opt
  | NEW class_or_interface_type dim_exprs dims_opt
  ;
dim_exprs
  : dim_expr
  | dim_exprs dim_expr
  ;
dim_expr
  : '[' expression ']'
  ;
dims_opt
  : dims
  |
  ;
dims
  : '[' ']'
  | dims '[' ']'
  ;
field_access
  : primary '.' ID
  | SUPER '.' ID
  ;
method_invocation
  : name '(' argument_list_opt ')'
  | primary '.' ID '(' argument_list_opt ')'
  | SUPER '.' ID '(' argument_list_opt ')'
  ;
array_access
  : name '[' expression ']'
  | primary_no_new_array '[' expression ']'
  ;

postfix_expression
  : primary
  | name
  | postincrement_expression
  | postdecrement_expression
  ;
postincrement_expression
  : postfix_expression INCR
  ;
postdecrement_expression
  : postfix_expression DECR
  ;
unary_expression
  : preincrement_expression
  | predecrement_expression
  | '+' unary_expression
  | '-' unary_expression
  | unary_expression_not_plus_minus
  ;
preincrement_expression
  : INCR unary_expression
  ;
predecrement_expression
  : DECR unary_expression
  ;
unary_expression_not_plus_minus
  : postfix_expression
  | '~' unary_expression
  | '!' unary_expression
  | cast_expression
  ;
cast_expression
  : '(' primitive_type dims_opt ')' unary_expression
  | '(' expression ')' unary_expression_not_plus_minus
  | '(' name dims ')' unary_expression_not_plus_minus
  ;
multiplicative_expression
  : unary_expression
  | multiplicative_expression '*' unary_expression
  | multiplicative_expression '/' unary_expression
  | multiplicative_expression '%' unary_expression
  ;
additive_expression
  : multiplicative_expression
  | additive_expression '+' multiplicative_expression
  | additive_expression '-' multiplicative_expression
  ;
shift_expression
  : additive_expression
  | shift_expression LSHIFT additive_expression
  | shift_expression RSHIFT additive_expression
  | shift_expression URSHIFT additive_expression
  ;
relational_expression
  : shift_expression
  | relational_expression '<' shift_expression
  | relational_expression '>' shift_expression
  | relational_expression '<=' shift_expression
  | relational_expression '>=' shift_expression
  | relational_expression INSTANCEOF reference_type
  ;
equality_expression
  : relational_expression
  | equality_expression '==' relational_expression
  | equality_expression '!=' relational_expression
  ;
and_expression
  : equality_expression
  | and_expression '&' equality_expression
  ;
exclusive_or_expression
  : and_expression
  | exclusive_or_expression '^' and_expression
  ;
inclusive_or_expression
  : exclusive_or_expression
  | inclusive_or_expression '|' exclusive_or_expression
  ;
conditional_and_expression
  : inclusive_or_expression
  | conditional_and_expression ANDAND inclusive_or_expression
  ;
conditional_or_expression
  : conditional_and_expression
  | conditional_or_expression OROR conditional_and_expression
  ;
conditional_expression
  : conditional_or_expression
  | conditional_or_expression '?' expression ':' conditional_expression
  ;
assignment_expression
  : conditional_expression
  | assignment
  ;
assignment
  : left_hand_side assignment_operator assignment_expression
  ;
left_hand_side
  : name
  | field_access
  | array_access
  ;
assignment_operator
  : '='
  | MULT_ASSIGN
  | DIV_ASSIGN
  | MOD_ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | LSHIFT_ASSIGN
  | RSHIFT_ASSIGN
  | URSHIFT_ASSIGN
  | AND_ASSIGN
  | XOR_ASSIGN
  | OR_ASSIGN
  ;
expression
  : assignment_expression
  ;
constant_expression
  : expression
  ;
|}

(* Java.1: an unfactored if-then-else added alongside the JLS factoring. *)
let java1 = base ^ {|
if_then_statement : IF '(' expression ')' statement ELSE statement ;
|}

(* Java.2: the empty statement made derivable from a nullable nonterminal.
   Statements appear everywhere, so this one injection floods the automaton
   with conflicts (720 here; the paper's Table 1 reports 1133 for its
   Java.2) and exercises the cumulative search budget. *)
let java2 = base ^ {|
empty_statement : nothing ;
nothing : ;
|}

(* Java.3: expression statements also allowed bare (duplicating the
   stratified statement_expression route). *)
let java3 = base ^ {|
statement_expression : name
                     | primary
                     ;
|}

(* Java.4: array dims conflated between declarator and type positions. *)
let java4 = base ^ {|
variable_declarator_id : ID dims ;
formal_parameter : type_ ID dims_opt ;
|}

(* Java.5: super constructor invocations admitted as ordinary statements. *)
let java5 = base ^ {|
statement_expression : explicit_constructor_invocation_expr ;
explicit_constructor_invocation_expr : SUPER '(' argument_list_opt ')' ;
|}

(* java-ext1: the base language extended with a pattern-matching construct
   whose ambiguity requires very deep derivations; both conflicts exceed the
   search budget (Table 1's java-ext1 row is T/L). *)
let java_ext1 = base ^ {|
statement : MATCH '(' expression ')' '{' match_arms '}' ;
match_arms : match_arm
           | match_arms match_arm
           ;
match_arm : pattern ARROW block_statements
          ;
pattern : literal
        | name
        | name '(' pattern_list ')'
        | pattern OROR_PAT pattern
        ;
pattern_list : pattern
             | pattern_list ',' pattern
             ;
match_arm : pattern ARROW block_statements match_arm ;
|}

(* java-ext2: a template/generics-flavoured extension where '<' is both a
   relational operator and a type-argument bracket — the classic C++-style
   conflict, far beyond the search budget. *)
let java_ext2 = base ^ {|
class_or_interface_type : name type_arguments ;
type_arguments : '<' type_argument_list '>' ;
type_argument_list : type_argument
                   | type_argument_list ',' type_argument
                   ;
type_argument : reference_type ;
relational_expression : relational_expression '<' shift_expression '>' shift_expression ;
|}
