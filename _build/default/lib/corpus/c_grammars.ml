(** ANSI C grammars in the BV10 style, after the classic public-domain yacc
    grammar (Jeff Lee, 1985): a conflict-free base (dangling else settled by
    precedence, typedef names pre-lexed as TYPE_NAME) and five variants with
    injected conflicts. *)

let base =
  {|
%nonassoc IF_PREC
%nonassoc ELSE
%start translation_unit

primary_expression
  : IDENTIFIER
  | CONSTANT
  | STRING_LITERAL
  | '(' expression ')'
  ;

postfix_expression
  : primary_expression
  | postfix_expression '[' expression ']'
  | postfix_expression '(' ')'
  | postfix_expression '(' argument_expression_list ')'
  | postfix_expression '.' IDENTIFIER
  | postfix_expression PTR_OP IDENTIFIER
  | postfix_expression INC_OP
  | postfix_expression DEC_OP
  ;

argument_expression_list
  : assignment_expression
  | argument_expression_list ',' assignment_expression
  ;

unary_expression
  : postfix_expression
  | INC_OP unary_expression
  | DEC_OP unary_expression
  | unary_operator cast_expression
  | SIZEOF unary_expression
  | SIZEOF '(' type_name ')'
  ;

unary_operator
  : '&'
  | '*'
  | '+'
  | '-'
  | '~'
  | '!'
  ;

cast_expression
  : unary_expression
  | '(' type_name ')' cast_expression
  ;

multiplicative_expression
  : cast_expression
  | multiplicative_expression '*' cast_expression
  | multiplicative_expression '/' cast_expression
  | multiplicative_expression '%' cast_expression
  ;

additive_expression
  : multiplicative_expression
  | additive_expression '+' multiplicative_expression
  | additive_expression '-' multiplicative_expression
  ;

shift_expression
  : additive_expression
  | shift_expression LEFT_OP additive_expression
  | shift_expression RIGHT_OP additive_expression
  ;

relational_expression
  : shift_expression
  | relational_expression '<' shift_expression
  | relational_expression '>' shift_expression
  | relational_expression LE_OP shift_expression
  | relational_expression GE_OP shift_expression
  ;

equality_expression
  : relational_expression
  | equality_expression EQ_OP relational_expression
  | equality_expression NE_OP relational_expression
  ;

and_expression
  : equality_expression
  | and_expression '&' equality_expression
  ;

exclusive_or_expression
  : and_expression
  | exclusive_or_expression '^' and_expression
  ;

inclusive_or_expression
  : exclusive_or_expression
  | inclusive_or_expression '|' exclusive_or_expression
  ;

logical_and_expression
  : inclusive_or_expression
  | logical_and_expression AND_OP inclusive_or_expression
  ;

logical_or_expression
  : logical_and_expression
  | logical_or_expression OR_OP logical_and_expression
  ;

conditional_expression
  : logical_or_expression
  | logical_or_expression '?' expression ':' conditional_expression
  ;

assignment_expression
  : conditional_expression
  | unary_expression assignment_operator assignment_expression
  ;

assignment_operator
  : '='
  | MUL_ASSIGN
  | DIV_ASSIGN
  | MOD_ASSIGN
  | ADD_ASSIGN
  | SUB_ASSIGN
  | LEFT_ASSIGN
  | RIGHT_ASSIGN
  | AND_ASSIGN
  | XOR_ASSIGN
  | OR_ASSIGN
  ;

expression
  : assignment_expression
  | expression ',' assignment_expression
  ;

constant_expression
  : conditional_expression
  ;

declaration
  : declaration_specifiers ';'
  | declaration_specifiers init_declarator_list ';'
  ;

declaration_specifiers
  : storage_class_specifier
  | storage_class_specifier declaration_specifiers
  | type_specifier
  | type_specifier declaration_specifiers
  | type_qualifier
  | type_qualifier declaration_specifiers
  ;

init_declarator_list
  : init_declarator
  | init_declarator_list ',' init_declarator
  ;

init_declarator
  : declarator
  | declarator '=' initializer
  ;

storage_class_specifier
  : TYPEDEF
  | EXTERN
  | STATIC
  | AUTO
  | REGISTER
  ;

type_specifier
  : VOID
  | CHAR
  | SHORT
  | INT
  | LONG
  | FLOAT
  | DOUBLE
  | SIGNED
  | UNSIGNED
  | struct_or_union_specifier
  | enum_specifier
  | TYPE_NAME
  ;

struct_or_union_specifier
  : struct_or_union IDENTIFIER '{' struct_declaration_list '}'
  | struct_or_union '{' struct_declaration_list '}'
  | struct_or_union IDENTIFIER
  ;

struct_or_union
  : STRUCT
  | UNION
  ;

struct_declaration_list
  : struct_declaration
  | struct_declaration_list struct_declaration
  ;

struct_declaration
  : specifier_qualifier_list struct_declarator_list ';'
  ;

specifier_qualifier_list
  : type_specifier specifier_qualifier_list
  | type_specifier
  | type_qualifier specifier_qualifier_list
  | type_qualifier
  ;

struct_declarator_list
  : struct_declarator
  | struct_declarator_list ',' struct_declarator
  ;

struct_declarator
  : declarator
  | ':' constant_expression
  | declarator ':' constant_expression
  ;

enum_specifier
  : ENUM '{' enumerator_list '}'
  | ENUM IDENTIFIER '{' enumerator_list '}'
  | ENUM IDENTIFIER
  ;

enumerator_list
  : enumerator
  | enumerator_list ',' enumerator
  ;

enumerator
  : IDENTIFIER
  | IDENTIFIER '=' constant_expression
  ;

type_qualifier
  : CONST
  | VOLATILE
  ;

declarator
  : pointer direct_declarator
  | direct_declarator
  ;

direct_declarator
  : IDENTIFIER
  | '(' declarator ')'
  | direct_declarator '[' constant_expression ']'
  | direct_declarator '[' ']'
  | direct_declarator '(' parameter_type_list ')'
  | direct_declarator '(' identifier_list ')'
  | direct_declarator '(' ')'
  ;

pointer
  : '*'
  | '*' type_qualifier_list
  | '*' pointer
  | '*' type_qualifier_list pointer
  ;

type_qualifier_list
  : type_qualifier
  | type_qualifier_list type_qualifier
  ;

parameter_type_list
  : parameter_list
  | parameter_list ',' ELLIPSIS
  ;

parameter_list
  : parameter_declaration
  | parameter_list ',' parameter_declaration
  ;

parameter_declaration
  : declaration_specifiers declarator
  | declaration_specifiers abstract_declarator
  | declaration_specifiers
  ;

identifier_list
  : IDENTIFIER
  | identifier_list ',' IDENTIFIER
  ;

type_name
  : specifier_qualifier_list
  | specifier_qualifier_list abstract_declarator
  ;

abstract_declarator
  : pointer
  | direct_abstract_declarator
  | pointer direct_abstract_declarator
  ;

direct_abstract_declarator
  : '(' abstract_declarator ')'
  | '[' ']'
  | '[' constant_expression ']'
  | direct_abstract_declarator '[' ']'
  | direct_abstract_declarator '[' constant_expression ']'
  | '(' ')'
  | '(' parameter_type_list ')'
  | direct_abstract_declarator '(' ')'
  | direct_abstract_declarator '(' parameter_type_list ')'
  ;

initializer
  : assignment_expression
  | '{' initializer_list '}'
  | '{' initializer_list ',' '}'
  ;

initializer_list
  : initializer
  | initializer_list ',' initializer
  ;

statement
  : labeled_statement
  | compound_statement
  | expression_statement
  | selection_statement
  | iteration_statement
  | jump_statement
  ;

labeled_statement
  : IDENTIFIER ':' statement
  | CASE constant_expression ':' statement
  | DEFAULT ':' statement
  ;

compound_statement
  : '{' '}'
  | '{' statement_list '}'
  | '{' declaration_list '}'
  | '{' declaration_list statement_list '}'
  ;

declaration_list
  : declaration
  | declaration_list declaration
  ;

statement_list
  : statement
  | statement_list statement
  ;

expression_statement
  : ';'
  | expression ';'
  ;

selection_statement
  : IF '(' expression ')' statement %prec IF_PREC
  | IF '(' expression ')' statement ELSE statement
  | SWITCH '(' expression ')' statement
  ;

iteration_statement
  : WHILE '(' expression ')' statement
  | DO statement WHILE '(' expression ')' ';'
  | FOR '(' expression_statement expression_statement ')' statement
  | FOR '(' expression_statement expression_statement expression ')' statement
  ;

jump_statement
  : GOTO IDENTIFIER ';'
  | CONTINUE ';'
  | BREAK ';'
  | RETURN ';'
  | RETURN expression ';'
  ;

translation_unit
  : external_declaration
  | translation_unit external_declaration
  ;

external_declaration
  : function_definition
  | declaration
  ;

function_definition
  : declaration_specifiers declarator declaration_list compound_statement
  | declaration_specifiers declarator compound_statement
  | declarator declaration_list compound_statement
  | declarator compound_statement
  ;
|}

(* C.1: the dangling else reactivated — an IF variant without the
   precedence annotation (BV10's most classic injection). *)
let c1 = base ^ {|
selection_statement : UNLESS '(' expression ')' statement
                    | UNLESS '(' expression ')' statement ELSE statement
                    ;
|}

(* C.2: a duplicated production under a fresh nonterminal deep in the
   expression layer — ambiguity surfaces only after a long unit chain (this
   was the 1.11h case for CFGAnalyzer in Table 1). *)
let c2 = base ^ {|
conditional_expression : ternary_expression ;
ternary_expression : logical_or_expression '?' expression ':' conditional_expression ;
|}

(* C.3: expression statements duplicated directly under statement. *)
let c3 = base ^ {|
statement : expression ';'
          | ';'
          ;
|}

(* C.4: identifiers admitted as type names — the classic sizeof(a)
   type/expression ambiguity. The unifying counterexample needs the full
   16-production unit chain from primary_expression up to expression, the
   paper's "long sequence of production steps" that defeats the time limit
   (Table 1 lists C.4 as the one BV10 grammar where the tool times out). *)
let c4 = base ^ {|
type_name : expression_like ;
expression_like : IDENTIFIER ;
|}

(* C.5: K&R-style old parameter declarations overlapping with the ANSI
   parameter list. *)
let c5 = base ^ {|
parameter_declaration : old_style_param ;
old_style_param : declaration_specifiers ;
|}
