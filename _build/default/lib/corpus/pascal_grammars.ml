(** Pascal grammars in the BV10 style: a conflict-free ISO-flavoured base
    plus five variants with injected conflicts. *)

let base =
  {|
%nonassoc THEN
%nonassoc ELSE
%start program_

program_ : PROGRAM ID program_params ';' block '.' ;
program_params : '(' id_list ')'
               |
               ;
id_list : id_list ',' ID
        | ID
        ;

block : label_part const_part type_part var_part proc_part compound_stmt ;

label_part : LABEL label_list ';'
           |
           ;
label_list : label_list ',' NUM
           | NUM
           ;

const_part : CONST const_defs
           |
           ;
const_defs : const_defs const_def
           | const_def
           ;
const_def : ID '=' constant ';' ;
constant : NUM
         | sign NUM
         | ID
         | sign ID
         | STRING
         ;
sign : '+'
     | '-'
     ;

type_part : TYPE type_defs
          |
          ;
type_defs : type_defs type_def
          | type_def
          ;
type_def : ID '=' type_denoter ';' ;
type_denoter : ID
             | new_type
             ;
new_type : '(' id_list ')'
         | constant DOTDOT constant
         | ARRAY '[' index_types ']' OF type_denoter
         | RECORD field_list END
         | SET OF type_denoter
         | FILE_ OF type_denoter
         | '^' ID
         | PACKED new_type
         ;
index_types : index_types ',' type_denoter
            | type_denoter
            ;
field_list : fixed_fields variant_part
           ;
fixed_fields : fixed_fields ';' field_decl
             | field_decl
             |
             ;
field_decl : id_list ':' type_denoter ;
variant_part : CASE ID ':' ID OF variants
             |
             ;
variants : variants ';' variant
         | variant
         ;
variant : case_labels ':' '(' field_list ')' ;
case_labels : case_labels ',' constant
            | constant
            ;

var_part : VAR var_decls
         |
         ;
var_decls : var_decls var_decl
          | var_decl
          ;
var_decl : id_list ':' type_denoter ';' ;

proc_part : proc_part proc_decl
          |
          ;
proc_decl : proc_heading ';' block ';'
          | func_heading ';' block ';'
          | proc_heading ';' FORWARD ';'
          | func_heading ';' FORWARD ';'
          ;
proc_heading : PROCEDURE ID formal_params ;
func_heading : FUNCTION ID formal_params ':' ID ;
formal_params : '(' param_sections ')'
              |
              ;
param_sections : param_sections ';' param_section
               | param_section
               ;
param_section : id_list ':' ID
              | VAR id_list ':' ID
              | proc_heading
              | func_heading
              ;

compound_stmt : BEGIN_ stmt_list END ;
stmt_list : stmt_list ';' statement
          | statement
          ;
statement : open_stmt
          | NUM ':' open_stmt
          ;
open_stmt : assignment
          | procedure_call
          | compound_stmt
          | IF expr THEN statement %prec THEN
          | IF expr THEN statement ELSE statement
          | CASE expr OF case_elements END
          | WHILE expr DO statement
          | REPEAT stmt_list UNTIL expr
          | FOR ID ':=' expr direction expr DO statement
          | WITH variable_list DO statement
          | GOTO NUM
          |
          ;
direction : TO
          | DOWNTO
          ;
case_elements : case_elements ';' case_element
              | case_element
              ;
case_element : case_labels ':' statement ;
assignment : variable ':=' expr ;
procedure_call : ID
               | ID '(' actual_params ')'
               ;
actual_params : actual_params ',' expr
              | expr
              ;
variable_list : variable_list ',' variable
              | variable
              ;
variable : ID
         | variable '[' expr_list ']'
         | variable '.' ID
         | variable '^'
         ;
expr_list : expr_list ',' expr
          | expr
          ;

expr : simple_expr
     | simple_expr relop simple_expr
     ;
relop : '='
      | '<>'
      | '<'
      | '>'
      | '<='
      | '>='
      | IN_
      ;
simple_expr : term
            | sign term
            | simple_expr addop term
            ;
addop : '+'
      | '-'
      | OR
      ;
term : factor
     | term mulop factor
     ;
mulop : '*'
      | '/'
      | DIV
      | MOD
      | AND
      ;
factor : NUM
       | STRING
       | NIL
       | variable
       | ID '(' actual_params ')'
       | '(' expr ')'
       | NOT factor
       | '[' set_members ']'
       ;
set_members : member_list
            |
            ;
member_list : member_list ',' member
            | member
            ;
member : expr
       | expr DOTDOT expr
       ;
|}

(* Pascal.1: an undisambiguated expression alternative threaded directly
   into the expression layer — expr-level recursion without the
   simple/term/factor stratification. *)
let pascal1 = base ^ {|
expr : expr AND expr ;
|}

(* Pascal.2: a WHEN/OTHERWISE conditional added without precedence — the
   dangling else reborn — plus a nullable statement label. *)
let pascal2 = base ^ {|
open_stmt : WHEN expr DO_ statement
          | WHEN expr DO_ statement OTHERWISE statement
          ;
|}

(* Pascal.3: a duplicated production under a fresh nonterminal — the classic
   reduce/reduce injection, in the variable layer. *)
let pascal3 = base ^ {|
factor : indexed ;
indexed : ID ;
|}

(* Pascal.4: bare constants admitted as types, overlapping with named
   types — a reduce/reduce injection at the type level. *)
let pascal4 = base ^ {|
new_type : constant ;
|}

(* Pascal.5: statement lists allowed to end in a semicolon — ambiguous
   against the base's empty statement. *)
let pascal5 = base ^ {|
stmt_list : stmt_list ';' ;
|}
