lib/corpus/paper_grammars.ml:
