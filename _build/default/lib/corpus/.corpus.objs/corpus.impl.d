lib/corpus/corpus.ml: C_grammars Cfg Fmt Java_grammars List Ours_grammars Paper_grammars Pascal_grammars Sql_grammars Stack_grammars String
