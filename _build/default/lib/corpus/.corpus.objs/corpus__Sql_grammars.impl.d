lib/corpus/sql_grammars.ml:
