lib/corpus/corpus.mli: C_grammars Cfg Java_grammars Ours_grammars Paper_grammars Pascal_grammars Sql_grammars Stack_grammars
