lib/corpus/java_grammars.ml:
