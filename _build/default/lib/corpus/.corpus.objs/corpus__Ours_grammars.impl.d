lib/corpus/ours_grammars.ml:
