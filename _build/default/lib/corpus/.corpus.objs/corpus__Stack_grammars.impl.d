lib/corpus/stack_grammars.ml:
