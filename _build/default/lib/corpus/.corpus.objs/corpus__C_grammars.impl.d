lib/corpus/c_grammars.ml:
