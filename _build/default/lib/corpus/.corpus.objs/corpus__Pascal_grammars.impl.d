lib/corpus/pascal_grammars.ml:
