(** The grammars that appear as figures in the paper itself. *)

(* Figure 1: the ambiguous statement grammar used as the running example
   (dangling else, expr '+' expr, and the "challenging" num/digit conflict). *)
let figure1 =
  {|
%start stmt
stmt : IF expr THEN stmt ELSE stmt
     | IF expr THEN stmt
     | expr ? stmt stmt
     | ARR [ expr ] ':=' expr
     ;
expr : num
     | expr + expr
     ;
num  : DIGIT
     | num DIGIT
     ;
|}

(* Figure 3: unambiguous but LR(2), so not LALR(1); its single shift/reduce
   conflict admits only a nonunifying counterexample. *)
let figure3 =
  {|
%start s
s : t
  | s t
  ;
t : x
  | y
  ;
x : a ;
y : a a b ;
|}

(* Figure 7: ambiguous grammar where the shortest lookahead-sensitive path is
   incompatible with one of the two shift items (extra 'n' needed). *)
let figure7 =
  {|
%start s
s : n_
  | n_ c
  ;
n_ : n n_ d
   | n n_ c
   | n a_ b
   | n b_
   ;
a_ : a ;
b_ : a b c
   | a b d
   ;
|}

(* Section 2.4: the expression grammar fragment whose '+' conflict is resolved
   by declaring '+' left-associative; kept both with and without the
   declaration. *)
let expr_plus =
  {|
%start expr
expr : expr + expr
     | NUM
     ;
|}

let expr_plus_resolved =
  {|
%left +
%start expr
expr : expr + expr
     | NUM
     ;
|}
