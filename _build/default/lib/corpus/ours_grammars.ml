(** The remaining grammars of Table 1's "our grammars" block: grammars that
    motivated the tool's development. The originals are not distributed with
    the paper; these reconstructions exhibit the same behaviours (ambiguity
    status, conflict character, search outcomes). *)

(* A small ambiguous grammar over {A, B, C, D}: list-splitting ambiguity. *)
let abcd =
  {|
%start s
s : x y ;
x : x A
  |
  ;
y : A y
  | b_
  ;
b_ : B
   | b_ B
   | C D
   ;
|}

(* SIMP: a small imperative teaching language. One dangling-else conflict,
   ambiguous. *)
let simp2 =
  {|
%start prog
prog : stmt_list ;
stmt_list : stmt_list ';' stmt
          | stmt
          ;
stmt : ID ':=' expr
     | IF bexpr THEN stmt
     | IF bexpr THEN stmt ELSE stmt
     | WHILE bexpr DO stmt OD
     | FOR ID ':=' expr TO expr DO stmt OD
     | SKIP
     | PRINT expr
     | READ ID
     | BEGIN stmt_list END
     ;
expr : expr '+' term
     | expr '-' term
     | term
     ;
term : term '*' factor
     | term '/' factor
     | term MOD factor
     | factor
     ;
factor : NUM
       | ID
       | ID '[' expr ']'
       | '(' expr ')'
       | '-' factor
       ;
bexpr : bexpr OR bterm
      | bterm
      ;
bterm : bterm AND bfactor
      | bfactor
      ;
bfactor : NOT bfactor
        | TRUE
        | FALSE
        | expr relop expr
        ;
relop : '='
      | '<'
      | '>'
      | '<='
      | '>='
      | '!='
      ;
|}

(* A subset of Xi (the Cornell CS 4120 language): procedures, statements
   with optional blocks, and an undisambiguated expression layer. Several
   ambiguous conflicts. *)
let xi =
  {|
%left EQ
%left '+' '-'
%left '*'
%left '[' ']'
%start program
program : uses func_defs ;
uses : uses USE ID
     |
     ;
func_defs : func_defs func_def
          | func_def
          ;
func_def : ID '(' params ')' ret_types block ;
params : param_list
       |
       ;
param_list : param_list ',' param
           | param
           ;
param : ID ':' type ;
ret_types : ':' type_list
          |
          ;
type_list : type_list ',' type
          | type
          ;
type : INT
     | BOOL
     | type '[' ']'
     ;
block : '{' stmts '}' ;
stmts : stmts stmt
      |
      ;
stmt : decl
     | ID '=' expr
     | IF expr stmt
     | IF expr stmt ELSE stmt
     | WHILE expr stmt
     | RETURN exprs ';'
     | block
     ;
decl : ID ':' type ;
exprs : expr_list
      |
      ;
expr_list : expr_list ',' expr
          | expr
          ;
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr EQ expr
     | '!' expr
     | ID
     | NUM
     | TRUE
     | FALSE
     | ID '(' exprs ')'
     | expr '[' expr ']'
     | '(' expr ')'
     ;
|}

(* eqn: the troff mathematical typesetting language, whose box-concatenation
   syntax interacts with infix operators. *)
let eqn =
  {|
%left CONCAT
%left FROM TO
%left OVER
%left SUB SUP
%left SQRT ROMAN ITALIC BOLD FAT SIZE
%start equation
equation : box_list ;
box_list : box_list box %prec CONCAT
         | box
         ;
box : box SUB box
    | box SUP box
    | box OVER box
    | box FROM box
    | box TO box
    | SQRT box
    | LEFT delim box_list RIGHT delim
    | '{' box_list '}'
    | font box
    | size box %prec SQRT
    | diacritic
    | primary
    ;
font : ROMAN
     | ITALIC
     | BOLD
     | FAT
     ;
size : SIZE NUM ;
diacritic : primary DOT
          | primary DOTDOT
          | primary HAT
          | primary TILDE
          | primary BAR
          | primary UNDER
          | primary VEC
          ;
primary : TEXT
        | NUM
        | IDENT
        | GREEK
        | special
        ;
special : SUM
        | INT_
        | PROD
        | UNION
        | INTER
        | LIM
        | INF
        | PARTIAL
        | PRIME
        ;
delim : '('
      | ')'
      | '['
      | ']'
      | '|'
      | CEILING
      | FLOOR
      | NOTHING
      ;
|}

(* An ambiguous grammar on which the unifying search fails: the unifying
   counterexample needs reverse transitions through states off the shortest
   lookahead-sensitive path, which the practical restriction of section 6
   forbids. The extended search (the paper's -extendedsearch) does find it.
   Found by random search against exactly this specification; compare the
   paper's ambfailed01, which illustrates the same tradeoff. *)
let ambfailed01 =
  {|
%start s
s : u ;
p : q ;
q : b_ ;
b_ : B ;
r : p C
  | D
  ;
u : D
  | r s u
  ;
|}
