(** SQL grammars in the style of the BV10 corpus (Basten & Vinju 2010): a
    correct base grammar plus variants with one injected conflict each.
    SQL.1 is a deliberately small subset (Table 1 lists it at 8 nonterminals);
    SQL.2–SQL.5 inject different conflict species into the full base. *)

(* A small SELECT-only subset, with an injected ambiguity in the boolean
   layer (AND/OR left undisambiguated). *)
let sql1 =
  {|
%start query
query : SELECT select_list FROM table_list where_clause ;
select_list : '*'
            | column_list
            ;
column_list : column_list ',' column
            | column
            ;
column : ID
       | ID '.' ID
       ;
table_list : table_list ',' table
           | table
           ;
table : ID ;
where_clause : WHERE condition
             |
             ;
condition : condition AND condition
          | column '=' value
          ;
value : NUM
      | STRING
      ;
|}

(* The full base grammar: statements, joins, expressions with precedence,
   DDL and DML. Conflict-free as written. *)
let base =
  {|
%left OR
%left AND
%right NOT
%nonassoc '=' '<>' '<' '>' '<=' '>='
%nonassoc LIKE BETWEEN IN_ IS
%left '+' '-'
%left '*' '/'
%start sql_list

sql_list : sql_list sql ';'
         | sql ';'
         ;
sql : select_stmt
    | insert_stmt
    | update_stmt
    | delete_stmt
    | create_stmt
    | drop_stmt
    ;

select_stmt : SELECT distinct_opt select_list FROM table_refs where_opt
              group_opt having_opt order_opt ;
distinct_opt : DISTINCT
             | ALL
             |
             ;
select_list : '*'
            | sel_items
            ;
sel_items : sel_items ',' sel_item
          | sel_item
          ;
sel_item : expr
         | expr AS ID
         ;
table_refs : table_refs ',' table_ref
           | table_ref
           ;
table_ref : ID
          | ID ID
          | table_ref JOIN ID ON search_cond
          | table_ref LEFT_ JOIN ID ON search_cond
          | '(' select_stmt ')' ID
          ;
where_opt : WHERE search_cond
          |
          ;
group_opt : GROUP BY column_list
          |
          ;
having_opt : HAVING search_cond
           |
           ;
order_opt : ORDER BY order_items
          |
          ;
order_items : order_items ',' order_item
            | order_item
            ;
order_item : column
           | column ASC
           | column DESC
           ;
column_list : column_list ',' column
            | column
            ;
column : ID
       | ID '.' ID
       ;

insert_stmt : INSERT INTO ID opt_columns VALUES '(' expr_list ')'
            | INSERT INTO ID opt_columns select_stmt
            ;
opt_columns : '(' column_list ')'
            |
            ;
update_stmt : UPDATE ID SET assignments where_opt ;
assignments : assignments ',' assignment
            | assignment
            ;
assignment : column '=' expr ;
delete_stmt : DELETE FROM ID where_opt ;

create_stmt : CREATE TABLE ID '(' col_defs ')' ;
col_defs : col_defs ',' col_def
         | col_def
         ;
col_def : ID type_name col_constraints ;
type_name : INT_T
          | CHAR_T '(' NUM ')'
          | VARCHAR_T '(' NUM ')'
          | FLOAT_T
          | DATE_T
          ;
col_constraints : col_constraints col_constraint
                |
                ;
col_constraint : NOT NULL_
               | PRIMARY KEY
               | UNIQUE
               | DEFAULT literal
               ;
drop_stmt : DROP TABLE ID ;

search_cond : search_cond OR search_cond
            | search_cond AND search_cond
            | NOT search_cond
            | predicate
            ;
predicate : expr '=' expr
          | expr '<>' expr
          | expr '<' expr
          | expr '>' expr
          | expr '<=' expr
          | expr '>=' expr
          | expr LIKE STRING
          | expr BETWEEN expr AND expr %prec BETWEEN
          | expr IN_ '(' expr_list ')'
          | expr IS NULL_
          | expr IS NOT NULL_ %prec IS
          | '(' search_cond ')'
          | EXISTS '(' select_stmt ')'
          ;
expr_list : expr_list ',' expr
          | expr
          ;
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr '/' expr
     | '(' expr ')'
     | column
     | literal
     | func_call
     ;
func_call : COUNT '(' '*' ')'
          | COUNT '(' expr ')'
          | SUM '(' expr ')'
          | AVG '(' expr ')'
          | MIN_ '(' expr ')'
          | MAX_ '(' expr ')'
          ;
literal : NUM
        | STRING
        | NULL_
        ;
|}

(* SQL.2: a nullable production injected after a keyword — "ALL" now parses
   both with and without the empty suffix (the BV10 nullable injection). *)
let sql2 = base ^ {|
distinct_opt : ALL row_opt ;
row_opt : ;
|}

(* SQL.3: duplicated production under a second nonterminal — a classic BV10
   reduce/reduce injection in the literal layer. *)
let sql3 = base ^ {|
expr : constant_value ;
constant_value : NUM ;
|}

(* SQL.4: a CASE expression without a terminating END keyword — a dangling
   ELSE in SQL clothing. *)
let sql4 = base ^ {|
%nonassoc CASE_BODY
expr : CASE search_cond THEN expr %prec CASE_BODY
     | CASE search_cond THEN expr ELSE expr %prec CASE_BODY
     ;
|}

(* SQL.5: a misfactored optional clause — WHERE may also be spelled via a
   filter chain, overlapping with the base where_opt. *)
let sql5 = base ^ {|
where_opt : filter_chain ;
filter_chain : WHERE search_cond
             | filter_chain AND search_cond
             ;
|}
