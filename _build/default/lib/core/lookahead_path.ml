open Cfg
open Automaton

type node = {
  state : int;
  item : Item.t;
  lookahead : Bitset.t;
}

type step =
  | Transition of Symbol.t
  | Production of int

type t = {
  nodes : node list;  (** visited vertices, start first *)
  steps : step list;  (** length [List.length nodes - 1] *)
}

let prefix_symbols path =
  List.filter_map
    (function
      | Transition sym -> Some sym
      | Production _ -> None)
    path.steps

let states_on_path path =
  List.sort_uniq Int.compare (List.map (fun n -> n.state) path.nodes)

let pp g ppf path =
  let rec go nodes steps =
    match nodes, steps with
    | [], _ -> ()
    | node :: nodes', steps ->
      Fmt.pf ppf "(%d, %a, %a)@." node.state (Item.pp g) node.item
        (Bitset.pp ~name:(Grammar.terminal_name g))
        node.lookahead;
      (match steps with
      | [] -> ()
      | step :: steps' ->
        (match step with
        | Transition sym -> Fmt.pf ppf "  --%s-->@." (Grammar.symbol_name g sym)
        | Production p ->
          Fmt.pf ppf "  --[prod %a]-->@." (Grammar.pp_production g)
            (Grammar.production g p));
        go nodes' steps')
  in
  go path.nodes path.steps

(* ------------------------------------------------------------------ *)

(* Backward reachability over (state, item) pairs, ignoring lookaheads: which
   vertices can reach the conflict item at all? This is the paper's section-6
   optimization: the forward Dijkstra then never expands vertices that cannot
   reach the target. *)
let backward_reachable lalr ~conflict_state ~target_item =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let reachable : (int * Item.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let visit state item =
    if not (Hashtbl.mem reachable (state, item)) then begin
      Hashtbl.add reachable (state, item) ();
      Queue.add (state, item) queue
    end
  in
  visit conflict_state target_item;
  while not (Queue.is_empty queue) do
    let state, item = Queue.pop queue in
    (* Reverse transition: the dot moved over the accessing symbol. *)
    if item.Item.dot > 0 then begin
      let prev = Item.retreat item in
      List.iter
        (fun pred ->
          if Lr0.has_item (Lr0.state lr0 pred) prev then visit pred prev)
        (Lr0.predecessors lr0 state)
    end
    else begin
      (* Reverse production step: any item of the same state with this item's
         left-hand side after the dot. *)
      let lhs = (Item.production g item).Grammar.lhs in
      List.iter
        (fun ctx -> visit state ctx)
        (Lr0.items_with_next lr0 state (Symbol.Nonterminal lhs))
    end
  done;
  fun state item -> Hashtbl.mem reachable (state, item)

module Vertex = struct
  type t = int * Item.t * Bitset.t

  let equal (s1, i1, l1) (s2, i2, l2) =
    s1 = s2 && Item.equal i1 i2 && Bitset.equal l1 l2

  let hash (s, i, l) = (s * 65599) + (Item.hash i * 31) + Bitset.hash l
end

module Vtbl = Hashtbl.Make (Vertex)

type search_entry = {
  vertex : Vertex.t;
  parent : (search_entry * step) option;
}

(* Shortest lookahead-sensitive path (paper section 4) from the start item
   with precise lookahead {$} to the conflict reduce item with the conflict
   terminal in its precise lookahead set. Transitions cost [transition_cost],
   production steps [production_cost]. *)
let find ?(transition_cost = 1) ?(production_cost = 0) lalr ~conflict_state
    ~reduce_item ~terminal =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let analysis = Lalr.analysis lalr in
  let relevant = backward_reachable lalr ~conflict_state ~target_item:reduce_item in
  let visited = Vtbl.create 1024 in
  let start_vertex = (Lr0.start_state, Item.start, Bitset.singleton 0) in
  let queue =
    ref (Pqueue.add Pqueue.empty 0 { vertex = start_vertex; parent = None })
  in
  let result = ref None in
  while !result = None && not (Pqueue.is_empty !queue) do
    match Pqueue.pop !queue with
    | None -> assert false
    | Some (cost, entry, rest) ->
      queue := rest;
      let ((state, item, lookahead) as vertex) = entry.vertex in
      if not (Vtbl.mem visited vertex) then begin
        Vtbl.add visited vertex ();
        if
          state = conflict_state
          && Item.equal item reduce_item
          && Bitset.mem lookahead terminal
        then result := Some entry
        else begin
          (* Transition edge. *)
          (match Item.next_symbol g item with
          | None -> ()
          | Some sym -> (
            match Lr0.transition lr0 state sym with
            | None -> ()
            | Some state' ->
              let item' = Item.advance item in
              if relevant state' item' then
                queue :=
                  Pqueue.add !queue (cost + transition_cost)
                    { vertex = (state', item', lookahead);
                      parent = Some (entry, Transition sym) }));
          (* Production step edges. *)
          match Item.next_symbol g item with
          | Some (Symbol.Nonterminal nt) ->
            let follow =
              Analysis.follow_l analysis (Item.production g item)
                ~dot:item.Item.dot lookahead
            in
            List.iter
              (fun p ->
                let item' = Item.make p 0 in
                if relevant state item' then
                  queue :=
                    Pqueue.add !queue (cost + production_cost)
                      { vertex = (state, item', follow);
                        parent = Some (entry, Production p) })
              (Grammar.productions_of g nt)
          | Some (Symbol.Terminal _) | None -> ()
        end
      end
  done;
  match !result with
  | None -> None
  | Some entry ->
    let rec unwind entry nodes steps =
      let state, item, lookahead = entry.vertex in
      let node = { state; item; lookahead } in
      match entry.parent with
      | None -> node :: nodes, steps
      | Some (parent, step) -> unwind parent (node :: nodes) (step :: steps)
    in
    let nodes, steps = unwind entry [] [] in
    Some { nodes; steps }
