(** Persistent min-priority queue (pairing heap) with integer priorities and
    FIFO tie-breaking, so search orders are deterministic. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val add : 'a t -> int -> 'a -> 'a t
val pop : 'a t -> (int * 'a * 'a t) option
(** Smallest priority first; among equal priorities, insertion order. *)
