open Cfg
open Automaton

type costs = {
  transition : int;
  reverse_transition : int;
  production_step : int;
  duplicate_production : int;
  reduction : int;
  off_path : int;
}

(* Tuned empirically (see bench/main.ml's ablation): making production steps
   markedly dearer than transitions and reductions free orders leaf-heavy
   completions first and shrinks explored configurations by 10-30x on the
   corpus without changing any outcome. *)
let default_costs =
  { transition = 1;
    reverse_transition = 1;
    production_step = 4;
    duplicate_production = 12;
    reduction = 0;
    off_path = 4 }

type entry = {
  state : int;
  item : Item.t;
}

(* A configuration of the outward search (paper, Fig. 8): one item sequence
   and one partial-derivation list per simulated parser copy. Invariants:

   - consecutive entries of a sequence are connected by a production step
     (same state, next item has dot 0 on a production of the symbol at the
     previous item's dot) or by a transition/goto (next item is the previous
     one advanced, in the successor state);
   - the first entries of both sequences are in the same state;
   - [derivs] holds one derivation per transition/goto edge, in order, and
     the two sides' derivation frontiers spell the same symbol string. *)
type config = {
  seq1 : entry list;
  derivs1 : Derivation.t list;
  seq2 : entry list;
  derivs2 : Derivation.t list;
  anchor1 : int;  (** index of the conflict item entry; -1 once reduced *)
  anchor2 : int;
  complete1 : bool;  (** stage 1 done: conflict reduce item reduced *)
  complete2 : bool;  (** stage 2 done: other conflict item's production reduced *)
  shifted_conflict : bool;
      (** the conflict terminal has been consumed by a forward transition *)
}

type stats = {
  configs_explored : int;
  elapsed : float;
}

type unifying = {
  nonterminal : int;
  form : Symbol.t list;
  deriv1 : Derivation.t;
  deriv2 : Derivation.t;
}

type outcome =
  | Unifying of unifying * stats
  | Timeout of stats
  | Exhausted of stats

(* ------------------------------------------------------------------ *)

module Key = struct
  type t = config

  let entry_equal e1 e2 = e1.state = e2.state && Item.equal e1.item e2.item

  let equal c1 c2 =
    c1.complete1 = c2.complete1 && c1.complete2 = c2.complete2
    && c1.shifted_conflict = c2.shifted_conflict
    && c1.anchor1 = c2.anchor1 && c1.anchor2 = c2.anchor2
    && List.length c1.seq1 = List.length c2.seq1
    && List.length c1.seq2 = List.length c2.seq2
    && List.for_all2 entry_equal c1.seq1 c2.seq1
    && List.for_all2 entry_equal c1.seq2 c2.seq2

  let hash c =
    let entry_hash acc e = (acc * 65599) + (e.state * 31) + Item.hash e.item in
    let h = List.fold_left entry_hash 17 c.seq1 in
    let h = List.fold_left entry_hash (h + 3) c.seq2 in
    (h * 4)
    + (if c.complete1 then 1 else 0)
    + (if c.complete2 then 2 else 0)
    + if c.shifted_conflict then 4 else 0
end

module Ktbl = Hashtbl.Make (Key)

let last_exn l = List.nth l (List.length l - 1)

let take n l = List.filteri (fun i _ -> i < n) l

let drop n l = List.filteri (fun i _ -> i >= n) l

(* ------------------------------------------------------------------ *)

type context = {
  lalr : Lalr.t;
  g : Grammar.t;
  analysis : Analysis.t;
  lr0 : Lr0.t;
  costs : costs;
  terminal : int;  (* the conflict terminal *)
  on_path : int -> bool;
  extended : bool;
  is_shift_reduce : bool;
  shift_dot : int option;  (* original dot of the shift item, for the marker *)
}

(* Can the expansion of [rhs] (of a production-step target) begin with the
   conflict terminal, or vanish entirely so that a later symbol provides it?
   Used to prune forward production steps before the conflict terminal has
   been consumed. *)
let can_lead_to ctx rhs t =
  let set, nullable = Analysis.first_of_seq ctx.analysis rhs ~from:0 in
  nullable || Bitset.mem set t

let lookahead_of ctx state item = Lalr.lookahead_item ctx.lalr state item

(* The terminal the product parser will consume next, if it is already
   determined by the other side's last item. *)
let next_terminal_hint ctx other_last =
  match Item.next_symbol ctx.g other_last.item with
  | Some (Symbol.Terminal t) -> Some t
  | Some (Symbol.Nonterminal _) | None -> None

(* ------------------------------------------------------------------ *)
(* Successor moves. Each returns (cost delta, new config). *)

let forward_transition ctx cfg =
  let l1 = last_exn cfg.seq1 and l2 = last_exn cfg.seq2 in
  match Item.next_symbol ctx.g l1.item, Item.next_symbol ctx.g l2.item with
  | Some z1, Some z2 when Symbol.equal z1 z2 ->
    let allowed =
      cfg.shifted_conflict
      || Symbol.equal z1 (Symbol.Terminal ctx.terminal)
    in
    if not allowed then []
    else begin
      match Lr0.transition ctx.lr0 l1.state z1, Lr0.transition ctx.lr0 l2.state z1 with
      | Some s1', Some s2' ->
        let leaf = Derivation.leaf z1 in
        [ ( ctx.costs.transition,
            { cfg with
              seq1 = cfg.seq1 @ [ { state = s1'; item = Item.advance l1.item } ];
              derivs1 = cfg.derivs1 @ [ leaf ];
              seq2 = cfg.seq2 @ [ { state = s2'; item = Item.advance l2.item } ];
              derivs2 = cfg.derivs2 @ [ leaf ];
              shifted_conflict = true } ) ]
      | None, _ | _, None -> []
    end
  | _, _ -> []

let forward_production_steps ctx cfg ~side =
  let seq = if side = 1 then cfg.seq1 else cfg.seq2 in
  let l = last_exn seq in
  (* If the other side already fixes the next terminal, only expansions that
     can start with it (or vanish) are worth taking. *)
  let other_hint =
    if not cfg.shifted_conflict then Some ctx.terminal
    else next_terminal_hint ctx (last_exn (if side = 1 then cfg.seq2 else cfg.seq1))
  in
  match Item.next_symbol ctx.g l.item with
  | Some (Symbol.Nonterminal nt) ->
    List.filter_map
      (fun p ->
        let item' = Item.make p 0 in
        let rhs = (Grammar.production ctx.g p).Grammar.rhs in
        if
          match other_hint with
          | Some t -> not (can_lead_to ctx rhs t)
          | None -> false
        then None
        else begin
          let entry' = { state = l.state; item = item' } in
          let duplicate =
            List.exists (fun e -> Key.entry_equal e entry') seq
          in
          let cost =
            if duplicate then ctx.costs.duplicate_production
            else ctx.costs.production_step
          in
          let cfg' =
            if side = 1 then { cfg with seq1 = cfg.seq1 @ [ entry' ] }
            else { cfg with seq2 = cfg.seq2 @ [ entry' ] }
          in
          Some (cost, cfg')
        end)
      (Grammar.productions_of ctx.g nt)
  | Some (Symbol.Terminal _) | None -> []

(* Reduction on one side (paper, Fig. 10(f)). *)
let reduction ctx cfg ~side =
  let seq, derivs, anchor =
    if side = 1 then cfg.seq1, cfg.derivs1, cfg.anchor1
    else cfg.seq2, cfg.derivs2, cfg.anchor2
  in
  let l = last_exn seq in
  if not (Item.is_reduce ctx.g l.item) then []
  else begin
    let prod = Item.production ctx.g l.item in
    let len_rhs = Array.length prod.Grammar.rhs in
    let len_seq = List.length seq in
    if len_seq < len_rhs + 2 then []
    else begin
      (* Respect the lookahead set: if the next terminal is already
         determined, the reduce item must admit it; before the conflict
         terminal is consumed, the conflict terminal itself must be
         admissible. *)
      let la = lookahead_of ctx l.state l.item in
      let other_last = last_exn (if side = 1 then cfg.seq2 else cfg.seq1) in
      let hint = next_terminal_hint ctx other_last in
      let ok =
        (match hint with Some t -> Bitset.mem la t | None -> true)
        && (cfg.shifted_conflict || Bitset.mem la ctx.terminal)
      in
      if not ok then []
      else begin
        let keep = len_seq - len_rhs - 1 in
        let kept = take keep seq in
        let ctx_entry = last_exn kept in
        (match Item.next_symbol ctx.g ctx_entry.item with
        | Some (Symbol.Nonterminal nt) when nt = prod.Grammar.lhs -> ()
        | _ -> assert false);
        match Lr0.transition ctx.lr0 ctx_entry.state
                (Symbol.Nonterminal prod.Grammar.lhs)
        with
        | None -> assert false
        | Some s' ->
          let n_derivs = List.length derivs in
          let children = drop (n_derivs - len_rhs) derivs in
          let completes_conflict = anchor >= 0 && anchor >= keep in
          let dot =
            if not completes_conflict then None
            else if side = 1 then Some len_rhs
            else
              match ctx.shift_dot with
              | Some d -> Some d
              | None -> Some len_rhs (* reduce/reduce second item *)
          in
          let node = Derivation.node ?dot ctx.g prod.Grammar.index children in
          let derivs' = take (n_derivs - len_rhs) derivs @ [ node ] in
          let seq' =
            kept @ [ { state = s'; item = Item.advance ctx_entry.item } ]
          in
          let anchor' = if completes_conflict then -1 else anchor in
          let cfg' =
            if side = 1 then
              { cfg with
                seq1 = seq'; derivs1 = derivs'; anchor1 = anchor';
                complete1 = cfg.complete1 || completes_conflict }
            else
              { cfg with
                seq2 = seq'; derivs2 = derivs'; anchor2 = anchor';
                complete2 = cfg.complete2 || completes_conflict }
          in
          [ (ctx.costs.reduction, cfg') ]
      end
    end
  end

(* How a side that ends in a reduce item must be prepared before the
   reduction of Fig. 10(f) can fire. With [m] entries and a right-hand side
   of length [l]:
   - [m = l + 1]: the dot chain is complete, only the context item is
     missing: reverse production step on this side (Fig. 10(d));
   - [m < l + 1]: more symbols are needed: reverse transitions (Fig. 10(c)),
     unblocked if necessary by a reverse production step on the other side
     (Fig. 10(e));
   - [m >= l + 2]: ready, no preparation. *)
type preparation =
  | No_preparation
  | Needs_context  (* m = l + 1 *)
  | Needs_symbols  (* m < l + 1 *)

let preparation ctx seq =
  let l = last_exn seq in
  if not (Item.is_reduce ctx.g l.item) then No_preparation
  else begin
    let len_rhs = Item.rhs_length ctx.g l.item in
    let m = List.length seq in
    if m >= len_rhs + 2 then No_preparation
    else if m = len_rhs + 1 then Needs_context
    else Needs_symbols
  end

(* Reverse transition (paper, Fig. 10(c)): prepend matching predecessor
   entries to both sequences. *)
let reverse_transitions ctx cfg =
  match cfg.seq1, cfg.seq2 with
  | f1 :: _, f2 :: _ when f1.item.Item.dot > 0 && f2.item.Item.dot > 0 ->
    assert (f1.state = f2.state);
    let head_state = Lr0.state ctx.lr0 f1.state in
    (match head_state.Lr0.accessing with
    | None -> []
    | Some z ->
      let p1 = Item.retreat f1.item and p2 = Item.retreat f2.item in
      List.filter_map
        (fun s0 ->
          let st0 = Lr0.state ctx.lr0 s0 in
          if not (Lr0.has_item st0 p1 && Lr0.has_item st0 p2) then None
          else if
            (* Stage-1 lookahead condition on the first parser's item. *)
            (not cfg.complete1)
            && not (Bitset.mem (lookahead_of ctx s0 p1) ctx.terminal)
          then None
          else begin
            let off_path = not (ctx.on_path s0) in
            if off_path && not ctx.extended then None
            else begin
              let cost =
                ctx.costs.reverse_transition
                + if off_path then ctx.costs.off_path else 0
              in
              let leaf = Derivation.leaf z in
              let bump a = if a < 0 then a else a + 1 in
              Some
                ( cost,
                  { cfg with
                    seq1 = { state = s0; item = p1 } :: cfg.seq1;
                    derivs1 = leaf :: cfg.derivs1;
                    seq2 = { state = s0; item = p2 } :: cfg.seq2;
                    derivs2 = leaf :: cfg.derivs2;
                    anchor1 = bump cfg.anchor1;
                    anchor2 = bump cfg.anchor2 } )
            end
          end)
        (Lr0.predecessors ctx.lr0 f1.state))
  | _, _ -> []

(* Reverse production step (paper, Fig. 10(d)/(e)): prepend a context item of
   the same state to whichever sequence starts with a dot-0 item. *)
let reverse_production_steps ctx cfg ~side =
  let seq = if side = 1 then cfg.seq1 else cfg.seq2 in
  match seq with
  | f :: _ when f.item.Item.dot = 0 ->
    let lhs = (Item.production ctx.g f.item).Grammar.lhs in
    (* Precise-lookahead pruning: while the conflict reduction is still
       pending on this side (stage 1, and stage 2 of reduce/reduce
       conflicts), the conflict terminal must be able to follow the reduced
       nonterminal in the prepended context, i.e. belong to the context
       item's followL. This is sound — the LALR lookahead used is an
       overapproximation — and prunes contexts that can never exhibit the
       conflict. *)
    let conflict_reduction_pending =
      if side = 1 then not cfg.complete1
      else (not ctx.is_shift_reduce) && not cfg.complete2
    in
    List.filter_map
      (fun ctx_item ->
        let follow =
          Analysis.follow_l ctx.analysis (Item.production ctx.g ctx_item)
            ~dot:ctx_item.Item.dot
            (lookahead_of ctx f.state ctx_item)
        in
        if conflict_reduction_pending && not (Bitset.mem follow ctx.terminal)
        then None
        else begin
          let entry = { state = f.state; item = ctx_item } in
          let bump a = if a < 0 then a else a + 1 in
          let duplicate = List.exists (fun e -> Key.entry_equal e entry) seq in
          let cost =
            if duplicate then ctx.costs.duplicate_production
            else ctx.costs.production_step
          in
          let cfg' =
            if side = 1 then
              { cfg with seq1 = entry :: cfg.seq1; anchor1 = bump cfg.anchor1 }
            else
              { cfg with seq2 = entry :: cfg.seq2; anchor2 = bump cfg.anchor2 }
          in
          Some (cost, cfg')
        end)
      (Lr0.items_with_next ctx.lr0 f.state (Symbol.Nonterminal lhs))
  | _ -> []

let successors ctx cfg =
  let moves = ref [] in
  let push l = moves := l @ !moves in
  push (forward_transition ctx cfg);
  push (forward_production_steps ctx cfg ~side:1);
  push (forward_production_steps ctx cfg ~side:2);
  push (reduction ctx cfg ~side:1);
  push (reduction ctx cfg ~side:2);
  let prep1 = preparation ctx cfg.seq1 and prep2 = preparation ctx cfg.seq2 in
  (match prep1 with
  | Needs_context -> push (reverse_production_steps ctx cfg ~side:1)
  | Needs_symbols | No_preparation -> ());
  (match prep2 with
  | Needs_context -> push (reverse_production_steps ctx cfg ~side:2)
  | Needs_symbols | No_preparation -> ());
  if prep1 = Needs_symbols || prep2 = Needs_symbols then begin
    match cfg.seq1, cfg.seq2 with
    | f1 :: _, f2 :: _ ->
      if f1.item.Item.dot > 0 && f2.item.Item.dot > 0 then
        push (reverse_transitions ctx cfg)
      else begin
        (* Unblock reverse transitions (Fig. 10(e)): undo the production step
           that created whichever front item has its dot at 0. *)
        if f1.item.Item.dot = 0 then
          push (reverse_production_steps ctx cfg ~side:1);
        if f2.item.Item.dot = 0 then
          push (reverse_production_steps ctx cfg ~side:2)
      end
    | _, _ -> assert false
  end;
  !moves

(* Success (paper, section 5.4): both sequences have become a single
   transition over the same nonterminal, and the two derivations of that
   nonterminal differ. *)
let success ctx cfg =
  if not (cfg.complete1 && cfg.complete2) then None
  else
    match cfg.seq1, cfg.seq2, cfg.derivs1, cfg.derivs2 with
    | [ a1; _b1 ], [ a2; _b2 ], [ d1 ], [ d2 ] -> (
      match Item.next_symbol ctx.g a1.item, Item.next_symbol ctx.g a2.item with
      | Some (Symbol.Nonterminal n1), Some (Symbol.Nonterminal n2)
        when n1 = n2 && not (Derivation.equal d1 d2) ->
        Some { nonterminal = n1; form = Derivation.leaves d1; deriv1 = d1;
               deriv2 = d2 }
      | _, _ -> None)
    | _, _, _, _ -> None

(* ------------------------------------------------------------------ *)

let search ?(costs = default_costs) ?(extended = false) ?(time_limit = 5.0)
    ?(max_configs = 400_000) lalr ~(conflict : Conflict.t) ~path_states =
  let started = Unix.gettimeofday () in
  let path_set = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace path_set s ()) path_states;
  let ctx =
    { lalr;
      g = Lalr.grammar lalr;
      analysis = Lalr.analysis lalr;
      lr0 = Lalr.lr0 lalr;
      costs;
      terminal = conflict.Conflict.terminal;
      on_path = (fun s -> Hashtbl.mem path_set s);
      extended;
      is_shift_reduce = Conflict.is_shift_reduce conflict;
      shift_dot =
        (match conflict.Conflict.kind with
        | Conflict.Shift_reduce { shift_item; _ } -> Some shift_item.Item.dot
        | Conflict.Reduce_reduce _ -> None) }
  in
  let initial =
    { seq1 =
        [ { state = conflict.Conflict.state; item = Conflict.reduce_item conflict } ];
      derivs1 = [];
      seq2 =
        [ { state = conflict.Conflict.state; item = Conflict.other_item conflict } ];
      derivs2 = [];
      anchor1 = 0;
      anchor2 = 0;
      complete1 = false;
      complete2 = false;
      shifted_conflict = false }
  in
  let visited = Ktbl.create 4096 in
  let queue = ref (Pqueue.add Pqueue.empty 0 initial) in
  let explored = ref 0 in
  let result = ref None in
  let give_up = ref None in
  while !result = None && !give_up = None do
    if Pqueue.is_empty !queue then give_up := Some `Exhausted
    else if !explored land 255 = 0 && Unix.gettimeofday () -. started > time_limit
    then give_up := Some `Timeout
    else if !explored > max_configs then give_up := Some `Timeout
    else begin
      match Pqueue.pop !queue with
      | None -> assert false
      | Some (cost, cfg, rest) ->
        queue := rest;
        if not (Ktbl.mem visited cfg) then begin
          Ktbl.add visited cfg ();
          incr explored;
          match success ctx cfg with
          | Some u -> result := Some u
          | None ->
            List.iter
              (fun (delta, cfg') ->
                if not (Ktbl.mem visited cfg') then
                  queue := Pqueue.add !queue (cost + delta) cfg')
              (successors ctx cfg)
        end
    end
  done;
  let stats =
    { configs_explored = !explored; elapsed = Unix.gettimeofday () -. started }
  in
  match !result, !give_up with
  | Some u, _ -> Unifying (u, stats)
  | None, Some `Timeout -> Timeout stats
  | None, Some `Exhausted -> Exhausted stats
  | None, None -> assert false
