(** Human-readable conflict reports in the style of CUP extended with
    counterexamples — the paper's Fig. 11. *)

open Cfg
open Automaton

val pp_conflict_header : Grammar.t -> Format.formatter -> Conflict.t -> unit
(** The first four lines of Fig. 11 (original to CUP). *)

val pp_unifying :
  Grammar.t -> label:string -> Format.formatter -> Product_search.unifying ->
  unit

val pp_counterexample :
  Grammar.t -> label:string -> Format.formatter -> Driver.counterexample -> unit

val pp_conflict_report :
  Grammar.t -> Format.formatter -> Driver.conflict_report -> unit

val pp_report : Format.formatter -> Driver.report -> unit
val to_string : Driver.report -> string
