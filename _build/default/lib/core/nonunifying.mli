(** Nonunifying counterexamples (paper, section 4): a pair of derivable
    sentential forms sharing a prefix up to the conflict point, one
    continuing with the conflict reduce item, the other with the shift item
    (or second reduce item).

    The prefix is the transition-symbol string of the shortest
    lookahead-sensitive path; the reduce-side continuation is the open
    production frames' suffixes expanded just enough to begin with the
    conflict terminal; the other side's frames are recovered by the backward
    walk of Fig. 5(b) along the same transition skeleton. *)

open Cfg
open Automaton

type t = {
  conflict : Conflict.t;
  path : Lookahead_path.t;
  prefix : Symbol.t list;  (** shared prefix, up to the conflict dot *)
  reduce_continuation : Symbol.t list;
      (** follows the dot in the reduce-item derivation; begins with the
          conflict terminal (empty if the conflict terminal is [$]) *)
  other_continuation : Symbol.t list;
      (** follows the dot in the shift-item (or second-reduce) derivation *)
  deriv1 : Derivation.t option;
      (** full derivation tree of the reduce side, rooted at START, with the
          conflict point marked *)
  deriv2 : Derivation.t option;  (** likewise for the other side *)
}

val construct : Lalr.t -> Conflict.t -> t option
(** [None] is not expected for genuine conflicts of the supplied automaton,
    but callers must tolerate it. *)

val expand_to_start_with :
  Analysis.t -> int -> Symbol.t list -> Symbol.t list option
(** [expand_to_start_with analysis t form]: cheapest leftmost expansion of
    [form] into a sentential form beginning with terminal [t] ([t = 0] asks
    for a nullable expansion and returns the empty form). Exposed for the
    unifying search and for tests. *)

val pp : Grammar.t -> Format.formatter -> t -> unit
