lib/core/report.mli: Automaton Cfg Conflict Driver Format Grammar Product_search
