lib/core/product_search.ml: Analysis Array Automaton Bitset Cfg Conflict Derivation Grammar Hashtbl Item Lalr List Lr0 Pqueue Symbol Unix
