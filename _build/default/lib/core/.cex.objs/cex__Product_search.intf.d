lib/core/product_search.mli: Automaton Cfg Conflict Derivation Lalr Symbol
