lib/core/nonunifying.ml: Analysis Array Automaton Bitset Cfg Conflict Derivation Fmt Grammar Hashtbl Item Lalr List Lookahead_path Lr0 Option Queue Symbol
