lib/core/pqueue.mli:
