lib/core/driver.ml: Automaton Conflict List Lookahead_path Nonunifying Parse_table Product_search Unix
