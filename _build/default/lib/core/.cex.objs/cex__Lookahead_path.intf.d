lib/core/lookahead_path.mli: Automaton Bitset Cfg Format Grammar Item Lalr Symbol
