lib/core/nonunifying.mli: Analysis Automaton Cfg Conflict Derivation Format Grammar Lalr Lookahead_path Symbol
