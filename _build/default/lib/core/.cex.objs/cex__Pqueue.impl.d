lib/core/pqueue.ml:
