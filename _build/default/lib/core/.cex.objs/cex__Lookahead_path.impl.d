lib/core/lookahead_path.ml: Analysis Automaton Bitset Cfg Fmt Grammar Hashtbl Int Item Lalr List Lr0 Pqueue Queue Symbol
