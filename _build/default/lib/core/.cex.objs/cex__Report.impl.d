lib/core/report.ml: Automaton Bitset Cfg Conflict Derivation Driver Fmt Grammar Item List Nonunifying Product_search
