lib/core/driver.mli: Automaton Cfg Conflict Lalr Nonunifying Parse_table Product_search
