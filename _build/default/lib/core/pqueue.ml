(* A persistent pairing heap keyed by integer priorities. Ties are broken by
   insertion order (FIFO), which keeps searches deterministic. *)

type 'a heap =
  | Empty
  | Node of int * int * 'a * 'a heap list  (* priority, seq, value, children *)

type 'a t = {
  heap : 'a heap;
  next_seq : int;
  size : int;
}

let empty = { heap = Empty; next_seq = 0; size = 0 }

let is_empty q = q.size = 0
let size q = q.size

let merge h1 h2 =
  match h1, h2 with
  | Empty, h | h, Empty -> h
  | Node (p1, s1, v1, c1), Node (p2, s2, v2, c2) ->
    if p1 < p2 || (p1 = p2 && s1 < s2) then Node (p1, s1, v1, h2 :: c1)
    else Node (p2, s2, v2, h1 :: c2)

let rec merge_pairs = function
  | [] -> Empty
  | [ h ] -> h
  | h1 :: h2 :: rest -> merge (merge h1 h2) (merge_pairs rest)

let add q priority value =
  { heap = merge q.heap (Node (priority, q.next_seq, value, []));
    next_seq = q.next_seq + 1;
    size = q.size + 1 }

let pop q =
  match q.heap with
  | Empty -> None
  | Node (priority, _, value, children) ->
    Some
      ( priority, value,
        { heap = merge_pairs children;
          next_seq = q.next_seq;
          size = q.size - 1 } )
