(** LALR(1) parse tables with yacc-style precedence resolution and per-pair
    conflict reporting. *)

open Cfg

type action =
  | Shift of int  (** target state *)
  | Reduce of int  (** production index *)
  | Accept
  | Error

type t

val build : ?analysis:Analysis.t -> Grammar.t -> t
(** Construct the LR(0) automaton, LALR lookaheads, and the table. *)

val build_from : Lalr.t -> t

val lalr : t -> Lalr.t
val lr0 : t -> Lr0.t
val grammar : t -> Grammar.t

val action : t -> int -> int -> action
(** [action t state terminal]. *)

val goto : t -> int -> int -> int option
(** [goto t state nonterminal]. *)

val conflicts : t -> Conflict.t list
(** Conflicts remaining after precedence resolution, in state order. *)

type resolution =
  | Resolved_shift
  | Resolved_reduce
  | Resolved_error  (** nonassociativity *)

val resolved_conflicts : t -> (Conflict.t * resolution) list
(** Shift/reduce pairs silently settled by precedence, with the decision
    taken. These often hide genuine ambiguities (deliberately, as with
    expression operators — or not); {!Cex} can be pointed at them to produce
    counterexamples for the ambiguity each resolution papered over. *)

val precedence_resolved : t -> int
(** Number of shift/reduce decisions silently settled by precedence. *)

val pp_action : Grammar.t -> Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit
