(** LR(0) production items: a production plus a dot position. *)

open Cfg

type t = private {
  prod : int;
  dot : int;
}

val make : int -> int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val production : Grammar.t -> t -> Grammar.production
val rhs_length : Grammar.t -> t -> int

val next_symbol : Grammar.t -> t -> Symbol.t option
(** The symbol immediately after the dot, if any. *)

val prev_symbol : Grammar.t -> t -> Symbol.t option
(** The symbol immediately before the dot, if any. *)

val is_reduce : Grammar.t -> t -> bool
(** Dot at the end of the right-hand side. *)

val is_initial : t -> bool
(** Dot at the start of the right-hand side (a closure item). *)

val advance : t -> t

val retreat : t -> t
(** @raise Invalid_argument when the dot is already at the start. *)

val start : t
(** [START ::= • s]: production 0 with the dot at 0. *)

val pp : Grammar.t -> Format.formatter -> t -> unit
val to_string : Grammar.t -> t -> string
