(** Table-driven LR parser: runs a {!Parse_table.t} on a terminal string and
    produces the derivation (parse tree) of the start symbol.

    Unresolved conflicts follow the table's defaults (shift over reduce,
    earlier production over later), so the runner is deterministic even for
    conflicted grammars. *)

open Cfg

type error = {
  position : int;  (** number of terminals consumed before the error *)
  state : int;
  terminal : int;  (** offending terminal (0 = end of input) *)
}

val pp_error : Grammar.t -> Format.formatter -> error -> unit

val parse : Parse_table.t -> int list -> (Derivation.t, error) result
(** Parse a sentence given as terminal indices (without the final [$]). *)

val parse_names : Parse_table.t -> string list -> (Derivation.t, error) result
(** Convenience wrapper resolving terminal names.
    @raise Invalid_argument on unknown terminal names. *)

val accepts : Parse_table.t -> int list -> bool
