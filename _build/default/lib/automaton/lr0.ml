open Cfg

type state = {
  id : int;
  items : Item.t array;
  accessing : Symbol.t option;
  goto_terminal : int array;
  goto_nonterminal : int array;
  mutable predecessors : int list;
}

type t = {
  grammar : Grammar.t;
  states : state array;
}

let grammar a = a.grammar
let n_states a = Array.length a.states
let state a i = a.states.(i)
let start_state = 0

let transition a s sym =
  let st = a.states.(s) in
  let target =
    match sym with
    | Symbol.Terminal t -> st.goto_terminal.(t)
    | Symbol.Nonterminal nt -> st.goto_nonterminal.(nt)
  in
  if target < 0 then None else Some target

let item_index st item =
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = Item.compare item st.items.(mid) in
      if c = 0 then Some mid
      else if c < 0 then search lo mid
      else search (mid + 1) hi
  in
  search 0 (Array.length st.items)

let has_item st item = item_index st item <> None

let items_with_next a s sym =
  let st = a.states.(s) in
  Array.to_list st.items
  |> List.filter (fun item ->
         match Item.next_symbol a.grammar item with
         | Some sym' -> Symbol.equal sym sym'
         | None -> false)

let reduce_items a s =
  let st = a.states.(s) in
  Array.to_list st.items
  |> List.filter (fun item -> Item.is_reduce a.grammar item)

(* Closure of a kernel: add the initial item of every production of a
   nonterminal that appears after a dot, transitively. *)
let closure g kernel =
  let seen : (Item.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let result = ref [] in
  let rec add item =
    if not (Hashtbl.mem seen item) then begin
      Hashtbl.add seen item ();
      result := item :: !result;
      match Item.next_symbol g item with
      | Some (Symbol.Nonterminal nt) ->
        List.iter (fun p -> add (Item.make p 0)) (Grammar.productions_of g nt)
      | Some (Symbol.Terminal _) | None -> ()
    end
  in
  List.iter add kernel;
  let items = Array.of_list !result in
  Array.sort Item.compare items;
  items

let build g =
  let n_t = Grammar.n_terminals g in
  let n_nt = Grammar.n_nonterminals g in
  let states : state array ref = ref [||] in
  let count = ref 0 in
  let by_kernel : (Item.t list, int) Hashtbl.t = Hashtbl.create 64 in
  let pending = Queue.create () in
  let intern kernel accessing =
    let kernel = List.sort Item.compare kernel in
    match Hashtbl.find_opt by_kernel kernel with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add by_kernel kernel id;
      let st =
        { id;
          items = closure g kernel;

          accessing;
          goto_terminal = Array.make n_t (-1);
          goto_nonterminal = Array.make n_nt (-1);
          predecessors = [] }
      in
      if Array.length !states <= id then begin
        let bigger =
          Array.make (max 16 (2 * (id + 1))) st
        in
        Array.blit !states 0 bigger 0 (Array.length !states);
        states := bigger
      end;
      !states.(id) <- st;
      Queue.add id pending;
      id
  in
  let (_ : int) = intern [ Item.start ] None in
  while not (Queue.is_empty pending) do
    let id = Queue.pop pending in
    let st = !states.(id) in
    (* Group items by their next symbol. *)
    let by_symbol : (Symbol.t, Item.t list ref) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    Array.iter
      (fun item ->
        match Item.next_symbol g item with
        | None -> ()
        | Some sym -> (
          match Hashtbl.find_opt by_symbol sym with
          | Some l -> l := item :: !l
          | None ->
            Hashtbl.add by_symbol sym (ref [ item ]);
            order := sym :: !order))
      st.items;
    List.iter
      (fun sym ->
        let sources = !(Hashtbl.find by_symbol sym) in
        let kernel = List.map Item.advance sources in
        let target = intern kernel (Some sym) in
        (match sym with
        | Symbol.Terminal t -> st.goto_terminal.(t) <- target
        | Symbol.Nonterminal nt -> st.goto_nonterminal.(nt) <- target);
        let tgt = !states.(target) in
        if not (List.mem id tgt.predecessors) then
          tgt.predecessors <- id :: tgt.predecessors)
      (List.rev !order)
  done;
  { grammar = g; states = Array.sub !states 0 !count }

let predecessors a s = a.states.(s).predecessors

let kernel_items a s =
  let st = a.states.(s) in
  Array.to_list st.items
  |> List.filter (fun item ->
         (not (Item.is_initial item)) || Item.equal item Item.start)

let pp_state a ppf s =
  let st = a.states.(s) in
  Fmt.pf ppf "State %d:@." s;
  Array.iter (fun item -> Fmt.pf ppf "  %a@." (Item.pp a.grammar) item) st.items

let pp ppf a =
  for s = 0 to n_states a - 1 do
    pp_state a ppf s
  done
