open Cfg

type error = {
  position : int;
  state : int;
  terminal : int;
}

let pp_error g ppf e =
  Fmt.pf ppf "syntax error at input position %d (state %d, next symbol %s)"
    e.position e.state (Grammar.terminal_name g e.terminal)

(* A classic table-driven LR driver. The stacks hold states and the
   derivations of the symbols shifted/reduced so far; on acceptance the single
   remaining derivation is the parse tree of the start symbol. *)
let parse table input =
  let g = Parse_table.grammar table in
  let rec drive states derivs input position =
    let state = List.hd states in
    let terminal, rest, position' =
      match input with
      | [] -> 0, [], position
      | t :: rest -> t, rest, position + 1
    in
    match Parse_table.action table state terminal with
    | Parse_table.Shift target ->
      drive (target :: states) (Derivation.leaf (Symbol.Terminal terminal) :: derivs)
        rest position'
    | Parse_table.Reduce prod ->
      let p = Grammar.production g prod in
      let n = Array.length p.Grammar.rhs in
      let rec pop k states derivs children =
        if k = 0 then states, derivs, children
        else
          match states, derivs with
          | _ :: states', d :: derivs' ->
            pop (k - 1) states' derivs' (d :: children)
          | _, _ -> assert false
      in
      let states, derivs, children = pop n states derivs [] in
      let node = Derivation.node g prod children in
      let state' = List.hd states in
      (match Parse_table.goto table state' p.Grammar.lhs with
      | Some target -> drive (target :: states) (node :: derivs) input position
      | None -> assert false)
    | Parse_table.Accept -> (
      match derivs with
      | [ d ] -> Ok d
      | _ -> assert false)
    | Parse_table.Error -> Result.Error { position; state; terminal }
  in
  drive [ Lr0.start_state ] [] input 0

let parse_names table names =
  let g = Parse_table.grammar table in
  let resolve name =
    match Grammar.find_terminal g name with
    | Some t -> t
    | None -> invalid_arg (Fmt.str "Runner.parse_names: unknown terminal %s" name)
  in
  parse table (List.map resolve names)

let accepts table input =
  match parse table input with
  | Ok _ -> true
  | Result.Error _ -> false
