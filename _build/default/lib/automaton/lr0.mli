(** Canonical LR(0) automaton.

    Each state is the closure of its kernel item set. As in every LR
    automaton, all edges into a state carry the same symbol, recorded as the
    state's [accessing] symbol; consequently reverse transitions from a state
    are exactly its [predecessors]. *)

open Cfg

type state = private {
  id : int;
  items : Item.t array;  (** kernel and closure items, sorted *)
  accessing : Symbol.t option;  (** [None] only for the start state *)
  goto_terminal : int array;  (** successor per terminal; -1 = none *)
  goto_nonterminal : int array;  (** successor per nonterminal; -1 = none *)
  mutable predecessors : int list;
}

type t

val build : Grammar.t -> t
val grammar : t -> Grammar.t
val n_states : t -> int
val state : t -> int -> state

val start_state : int
(** Always 0. *)

val transition : t -> int -> Symbol.t -> int option
val predecessors : t -> int -> int list

val item_index : state -> Item.t -> int option
(** Position of the item within the state's sorted [items] array. *)

val has_item : state -> Item.t -> bool

val items_with_next : t -> int -> Symbol.t -> Item.t list
(** Items of the state whose next symbol (after the dot) is the given symbol;
    used for shift items and for reverse production steps. *)

val reduce_items : t -> int -> Item.t list

val kernel_items : t -> int -> Item.t list
(** Items with the dot not at the start, plus the start item in state 0. *)

val pp_state : t -> Format.formatter -> int -> unit
val pp : Format.formatter -> t -> unit
