open Cfg

(* Canonical LR(1) automaton. Each state is a closed set of items with exact
   lookahead sets; unlike LALR, states with equal cores but different
   lookaheads are kept apart. Used to classify LALR conflicts: a conflict that
   disappears under canonical LR(1) is an artifact of LALR state merging. *)

type state = {
  id : int;
  items : (Item.t * Bitset.t) array;  (** sorted by item *)
  accessing : Symbol.t option;
}

type t = {
  grammar : Grammar.t;
  analysis : Analysis.t;
  states : state array;
  transitions : (int * Symbol.t, int) Hashtbl.t;
}

let grammar a = a.grammar
let n_states a = Array.length a.states
let state a i = a.states.(i)
let transition a s sym = Hashtbl.find_opt a.transitions (s, sym)

(* Closure with lookaheads: a fixpoint because closure items feed each
   other through followL. *)
let closure g analysis kernel =
  let la : (Item.t, Bitset.t) Hashtbl.t = Hashtbl.create 16 in
  let get item = Option.value ~default:Bitset.empty (Hashtbl.find_opt la item) in
  let queue = Queue.create () in
  let add item extra =
    let current = get item in
    let bigger = Bitset.union current extra in
    if not (Bitset.equal bigger current) then begin
      Hashtbl.replace la item bigger;
      Queue.add item queue
    end
  in
  List.iter (fun (item, l) -> add item l) kernel;
  while not (Queue.is_empty queue) do
    let item = Queue.pop queue in
    match Item.next_symbol g item with
    | Some (Symbol.Nonterminal nt) ->
      let follow =
        Analysis.follow_l analysis (Item.production g item) ~dot:item.Item.dot
          (get item)
      in
      List.iter (fun p -> add (Item.make p 0) follow) (Grammar.productions_of g nt)
    | Some (Symbol.Terminal _) | None -> ()
  done;
  let items =
    Hashtbl.fold (fun item l acc -> (item, l) :: acc) la []
    |> List.sort (fun (i1, _) (i2, _) -> Item.compare i1 i2)
  in
  Array.of_list items

(* A canonical key for interning states: items plus exact lookaheads. *)
let state_key items =
  Array.to_list items
  |> List.map (fun (item, l) -> (item.Item.prod, item.Item.dot, Bitset.elements l))

let build ?analysis g =
  let analysis =
    match analysis with
    | Some a -> a
    | None -> Analysis.make g
  in
  let states = ref [] in
  let count = ref 0 in
  let interned : (_, int) Hashtbl.t = Hashtbl.create 256 in
  let transitions = Hashtbl.create 256 in
  let pending = Queue.create () in
  let intern kernel accessing =
    let items = closure g analysis kernel in
    let key = state_key items in
    match Hashtbl.find_opt interned key with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add interned key id;
      states := { id; items; accessing } :: !states;
      Queue.add (id, items) pending;
      id
  in
  let (_ : int) =
    intern [ (Item.start, Bitset.singleton 0) ] None
  in
  while not (Queue.is_empty pending) do
    let id, items = Queue.pop pending in
    (* Group by next symbol. *)
    let by_symbol : (Symbol.t, (Item.t * Bitset.t) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let order = ref [] in
    Array.iter
      (fun (item, l) ->
        match Item.next_symbol g item with
        | None -> ()
        | Some sym -> (
          match Hashtbl.find_opt by_symbol sym with
          | Some group -> group := (Item.advance item, l) :: !group
          | None ->
            Hashtbl.add by_symbol sym (ref [ (Item.advance item, l) ]);
            order := sym :: !order))
      items;
    List.iter
      (fun sym ->
        let kernel = !(Hashtbl.find by_symbol sym) in
        let target = intern kernel (Some sym) in
        Hashtbl.replace transitions (id, sym) target)
      (List.rev !order)
  done;
  let states_arr = Array.make !count (List.hd !states) in
  List.iter (fun st -> states_arr.(st.id) <- st) !states;
  { grammar = g; analysis; states = states_arr; transitions }

(* Conflicts, with the same per-item-pair counting convention as
   {!Parse_table} (but no precedence resolution: canonical LR(1) is used for
   classification, not for table generation). *)
let conflicts a =
  let g = a.grammar in
  let result = ref [] in
  Array.iter
    (fun st ->
      let reduces =
        Array.to_list st.items
        |> List.filter (fun (item, _) -> Item.is_reduce g item)
      in
      (* reduce/reduce pairs *)
      let rec rr = function
        | [] -> ()
        | (item1, la1) :: rest ->
          List.iter
            (fun (item2, la2) ->
              let inter = Bitset.inter la1 la2 in
              if not (Bitset.is_empty inter) then
                result :=
                  Conflict.
                    { state = st.id;
                      terminal = Option.get (Bitset.choose inter);
                      kind =
                        Reduce_reduce
                          { reduce1 = item1; reduce2 = item2; terminals = inter } }
                  :: !result)
            rest;
          rr rest
      in
      rr reduces;
      (* shift/reduce pairs *)
      List.iter
        (fun (r_item, la) ->
          Array.iter
            (fun (s_item, _) ->
              match Item.next_symbol g s_item with
              | Some (Symbol.Terminal t) when Bitset.mem la t ->
                result :=
                  { Conflict.state = st.id; terminal = t;
                    kind =
                      Conflict.Shift_reduce
                        { shift_item = s_item; reduce_item = r_item } }
                  :: !result
              | Some _ | None -> ())
            st.items)
        reduces)
    a.states;
  List.rev !result

(* Signature of a conflict independent of state numbering, for comparing the
   LALR and canonical LR(1) conflict sets. *)
let conflict_signature (c : Conflict.t) =
  let item_sig (i : Item.t) = (i.Item.prod, i.Item.dot) in
  match c.Conflict.kind with
  | Conflict.Shift_reduce { shift_item; reduce_item } ->
    (0, item_sig reduce_item, item_sig shift_item)
  | Conflict.Reduce_reduce { reduce1; reduce2; _ } ->
    (* Normalize the pair order, and ignore the representative terminal: the
       canonical automaton may exhibit the same item-pair conflict under a
       smaller lookahead intersection. *)
    let s1 = item_sig reduce1 and s2 = item_sig reduce2 in
    if s1 <= s2 then (1, s1, s2) else (1, s2, s1)

(* LALR conflicts that no canonical LR(1) state exhibits: pure merging
   artifacts. The grammar may still fail to be LR(1) for other conflicts. *)
let merging_artifacts ~lalr_conflicts ~lr1_conflicts =
  let lr1_sigs = Hashtbl.create 16 in
  List.iter
    (fun c -> Hashtbl.replace lr1_sigs (conflict_signature c) ())
    lr1_conflicts;
  List.filter
    (fun c -> not (Hashtbl.mem lr1_sigs (conflict_signature c)))
    lalr_conflicts
