(** Canonical LR(1) automaton, used to {e classify} LALR conflicts: a
    conflict that no canonical LR(1) state exhibits is an artifact of LALR
    state merging (the grammar is LR(1) with respect to that conflict), so
    no unifying counterexample exists for it and factoring — not
    disambiguation — is the appropriate fix.

    This addresses the observation in the paper's related work (section 8)
    that Schmitz's tool must build LR(1) item pairs for precise reports on
    LALR(1) constructions. Canonical LR(1) is exponentially larger than LALR
    in the worst case; build it on demand only. *)

open Cfg

type state = private {
  id : int;
  items : (Item.t * Bitset.t) array;  (** sorted by item; exact lookaheads *)
  accessing : Symbol.t option;
}

type t

val build : ?analysis:Analysis.t -> Grammar.t -> t
val grammar : t -> Grammar.t
val n_states : t -> int
val state : t -> int -> state
val transition : t -> int -> Symbol.t -> int option

val conflicts : t -> Conflict.t list
(** Per-item-pair, like {!Parse_table.conflicts}, but with exact lookaheads
    and no precedence resolution; state numbers refer to LR(1) states. *)

val merging_artifacts :
  lalr_conflicts:Conflict.t list ->
  lr1_conflicts:Conflict.t list ->
  Conflict.t list
(** The LALR conflicts whose item-pair signature appears in no canonical
    LR(1) conflict. *)
