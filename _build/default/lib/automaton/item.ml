open Cfg

type t = {
  prod : int;
  dot : int;
}

let make prod dot = { prod; dot }

let equal a b = a.prod = b.prod && a.dot = b.dot

let compare a b =
  let c = Int.compare a.prod b.prod in
  if c <> 0 then c else Int.compare a.dot b.dot

let hash { prod; dot } = (prod * 31) + dot

let production g item = Grammar.production g item.prod

let rhs_length g item = Array.length (production g item).Grammar.rhs

let next_symbol g item =
  let p = production g item in
  if item.dot < Array.length p.Grammar.rhs then Some p.Grammar.rhs.(item.dot)
  else None

let prev_symbol g item =
  if item.dot = 0 then None
  else Some (production g item).Grammar.rhs.(item.dot - 1)

let is_reduce g item = item.dot = rhs_length g item

let is_initial item = item.dot = 0

let advance item = { item with dot = item.dot + 1 }

let retreat item =
  if item.dot = 0 then invalid_arg "Item.retreat: dot at start"
  else { item with dot = item.dot - 1 }

let start = { prod = 0; dot = 0 }

let pp g ppf item =
  let p = production g item in
  Fmt.pf ppf "%s ::=" (Grammar.nonterminal_name g p.Grammar.lhs);
  Array.iteri
    (fun i sym ->
      if i = item.dot then Fmt.pf ppf " %s" Derivation.dot_marker;
      Fmt.pf ppf " %s" (Grammar.symbol_name g sym))
    p.Grammar.rhs;
  if item.dot = Array.length p.Grammar.rhs then
    Fmt.pf ppf " %s" Derivation.dot_marker

let to_string g item = Fmt.str "%a" (pp g) item
