lib/automaton/runner.mli: Cfg Derivation Format Grammar Parse_table
