lib/automaton/lr1.ml: Analysis Array Bitset Cfg Conflict Grammar Hashtbl Item List Option Queue Symbol
