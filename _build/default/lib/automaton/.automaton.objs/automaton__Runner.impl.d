lib/automaton/runner.ml: Array Cfg Derivation Fmt Grammar List Lr0 Parse_table Result Symbol
