lib/automaton/lalr.mli: Analysis Bitset Cfg Format Grammar Item Lr0
