lib/automaton/conflict.ml: Bitset Cfg Fmt Grammar Item
