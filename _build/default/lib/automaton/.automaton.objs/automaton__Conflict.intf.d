lib/automaton/conflict.mli: Bitset Cfg Format Grammar Item
