lib/automaton/lr1.mli: Analysis Bitset Cfg Conflict Grammar Item Symbol
