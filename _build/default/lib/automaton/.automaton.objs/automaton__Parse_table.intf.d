lib/automaton/parse_table.mli: Analysis Cfg Conflict Format Grammar Lalr Lr0
