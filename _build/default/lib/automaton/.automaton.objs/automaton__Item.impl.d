lib/automaton/item.ml: Array Cfg Derivation Fmt Grammar Int
