lib/automaton/lr0.mli: Cfg Format Grammar Item Symbol
