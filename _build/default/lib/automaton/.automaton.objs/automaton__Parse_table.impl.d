lib/automaton/parse_table.ml: Array Bitset Cfg Conflict Fmt Grammar Item Lalr List Lr0 Symbol
