lib/automaton/item.mli: Cfg Format Grammar Symbol
