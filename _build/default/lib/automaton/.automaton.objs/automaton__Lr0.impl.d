lib/automaton/lr0.ml: Array Cfg Fmt Grammar Hashtbl Item List Queue Symbol
