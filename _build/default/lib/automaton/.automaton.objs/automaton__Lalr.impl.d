lib/automaton/lalr.ml: Analysis Array Bitset Cfg Fmt Grammar Item List Lr0 Queue Symbol
