(** SinBAD-style random ambiguity sampling (paper, section 8): expand random
    derivations from the start symbol and test each sampled sentence for
    multiple parses. *)

open Cfg

type result = {
  ambiguous : int list option;  (** a sampled ambiguous sentence (terminals) *)
  samples : int;
  elapsed : float;
}

val search :
  ?max_samples:int ->
  ?max_len:int ->
  ?time_limit:float ->
  ?seed:int ->
  Grammar.t ->
  result
