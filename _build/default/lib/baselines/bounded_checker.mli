(** CFGAnalyzer-style incremental bounded ambiguity detection: for growing
    length bounds, decide whether {e any} reachable nonterminal derives some
    phrase ambiguously, stopping at the first witness. See DESIGN.md for the
    substitution rationale (enumeration instead of SAT). *)

open Cfg

type result = {
  ambiguous : (int * int list) option;
      (** (nonterminal, phrase): the first ambiguity witness found *)
  bound_reached : int;  (** last length bound attempted *)
  elapsed : float;
}

val check : ?max_bound:int -> ?time_limit:float -> Grammar.t -> result
