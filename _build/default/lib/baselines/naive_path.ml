open Cfg
open Automaton

(* The PPG / CUP2 baseline (paper, sections 7.2 and 8): find the shortest
   path to the conflict state in the plain LR(0) automaton, ignoring
   lookahead sets entirely, and complete the open productions verbatim. The
   resulting "counterexamples" are frequently invalid: nothing guarantees the
   conflict terminal can follow the dot. *)

type t = {
  conflict : Conflict.t;
  prefix : Symbol.t list;
  reduce_continuation : Symbol.t list;
  other_continuation : Symbol.t list;
}

(* BFS over (state, item) vertices of the lookahead-insensitive graph. *)
let find lalr (conflict : Conflict.t) =
  let lr0 = Lalr.lr0 lalr in
  let g = Lalr.grammar lalr in
  let target = (conflict.Conflict.state, Conflict.reduce_item conflict) in
  let parents : (int * Item.t, ((int * Item.t) * Symbol.t option) option)
      Hashtbl.t =
    Hashtbl.create 256
  in
  let queue = Queue.create () in
  let visit key parent =
    if not (Hashtbl.mem parents key) then begin
      Hashtbl.add parents key parent;
      Queue.add key queue
    end
  in
  visit (Lr0.start_state, Item.start) None;
  while (not (Hashtbl.mem parents target)) && not (Queue.is_empty queue) do
    let ((state, item) as key) = Queue.pop queue in
    match Item.next_symbol g item with
    | None -> ()
    | Some sym ->
      (match Lr0.transition lr0 state sym with
      | Some state' -> visit (state', Item.advance item) (Some (key, Some sym))
      | None -> ());
      (match sym with
      | Symbol.Nonterminal nt ->
        List.iter
          (fun p -> visit (state, Item.make p 0) (Some (key, None)))
          (Grammar.productions_of g nt)
      | Symbol.Terminal _ -> ())
  done;
  if not (Hashtbl.mem parents target) then None
  else begin
    (* Reconstruct prefix symbols and the open production frames. *)
    let rec unwind key prefix frames =
      match Hashtbl.find parents key with
      | None -> prefix, frames
      | Some (parent, via) ->
        let prefix =
          match via with
          | Some sym -> sym :: prefix
          | None -> prefix
        in
        let frames =
          (* A production-step edge leaves the parent as an open frame. *)
          match via with
          | None -> snd parent :: frames
          | Some _ -> frames
        in
        unwind parent prefix frames
    in
    let prefix, frames_outer_first = unwind target [] [] in
    let continuation frames =
      List.concat_map
        (fun (item : Item.t) ->
          let rhs = (Item.production g item).Grammar.rhs in
          Array.to_list
            (Array.sub rhs (item.Item.dot + 1)
               (Array.length rhs - item.Item.dot - 1)))
        frames
    in
    (* Innermost first for the continuation. *)
    let frames = List.rev frames_outer_first in
    let reduce_continuation = continuation frames in
    let other_continuation =
      match conflict.Conflict.kind with
      | Conflict.Shift_reduce { shift_item; _ } ->
        let rhs = (Item.production g shift_item).Grammar.rhs in
        Array.to_list
          (Array.sub rhs shift_item.Item.dot
             (Array.length rhs - shift_item.Item.dot))
        (* Note: no backward walk either; the naive baseline just shows the
           shift item's remainder. *)
      | Conflict.Reduce_reduce _ -> reduce_continuation
    in
    Some { conflict; prefix; reduce_continuation; other_continuation }
  end

(* A naive counterexample is misleading when the conflict terminal cannot
   actually begin the continuation after the reduction — exactly the
   lookahead information the baseline ignored. *)
let misleading analysis t =
  let rec can_start form terminal =
    match form with
    | [] -> terminal = 0
    | Symbol.Terminal t' :: _ -> t' = terminal
    | Symbol.Nonterminal nt :: rest ->
      (terminal <> 0 && Bitset.mem (Analysis.first analysis nt) terminal)
      || (Analysis.nullable analysis nt && can_start rest terminal)
  in
  not (can_start t.reduce_continuation t.conflict.Conflict.terminal)

let pp g ppf t =
  let dot = Derivation.dot_marker in
  Fmt.pf ppf "@[<v>Example (using reduction):@,  %a %s %a@,"
    (Grammar.pp_symbols g) t.prefix dot (Grammar.pp_symbols g)
    t.reduce_continuation;
  Fmt.pf ppf "Example (using other action):@,  %a %s %a@]"
    (Grammar.pp_symbols g) t.prefix dot (Grammar.pp_symbols g)
    t.other_continuation
