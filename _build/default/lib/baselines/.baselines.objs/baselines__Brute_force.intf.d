lib/baselines/brute_force.mli: Cfg Grammar
