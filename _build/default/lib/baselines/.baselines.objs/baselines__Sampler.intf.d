lib/baselines/sampler.mli: Cfg Grammar
