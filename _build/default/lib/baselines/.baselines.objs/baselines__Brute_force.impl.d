lib/baselines/brute_force.ml: Analysis Array Cfg Grammar Hashtbl List Queue Symbol Unix
