lib/baselines/naive_path.ml: Analysis Array Automaton Bitset Cfg Conflict Derivation Fmt Grammar Hashtbl Item Lalr List Lr0 Queue Symbol
