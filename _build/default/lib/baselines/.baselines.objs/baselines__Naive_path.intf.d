lib/baselines/naive_path.mli: Analysis Automaton Cfg Conflict Format Grammar Lalr Symbol
