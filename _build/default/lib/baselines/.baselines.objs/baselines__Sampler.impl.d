lib/baselines/sampler.ml: Analysis Array Cfg Earley Grammar List Random Symbol Unix
