lib/baselines/bounded_checker.mli: Cfg Grammar
