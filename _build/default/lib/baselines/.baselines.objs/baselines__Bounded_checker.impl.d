lib/baselines/bounded_checker.ml: Analysis Brute_force Cfg Grammar Unix
