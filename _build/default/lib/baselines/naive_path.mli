(** The PPG / CUP2 baseline: lookahead-{e insensitive} shortest-path
    counterexamples. These are the "misleading counterexamples" of the
    paper's section 7.2 — the shortest path reaches the conflict state, but
    nothing guarantees the conflict terminal can follow, so the reported
    example often cannot trigger the conflict at all. *)

open Cfg
open Automaton

type t = {
  conflict : Conflict.t;
  prefix : Symbol.t list;
  reduce_continuation : Symbol.t list;
  other_continuation : Symbol.t list;
}

val find : Lalr.t -> Conflict.t -> t option

val misleading : Analysis.t -> t -> bool
(** True when the conflict terminal cannot begin the continuation after the
    dot — i.e. the "counterexample" can never exhibit the conflict. *)

val pp : Grammar.t -> Format.formatter -> t -> unit
