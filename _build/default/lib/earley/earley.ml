open Cfg

type t = {
  grammar : Grammar.t;
}

let make grammar = { grammar }

(* Keys of the counting chart. [Nt (n, i, j)] counts derivation trees of
   input[i..j) rooted at a production of nonterminal [n], plus the bare-leaf
   match. [Seq (p, k, i, j)] counts ways the suffix of production [p]
   starting at right-hand-side position [k] derives input[i..j). *)
type key =
  | Nt of int * int * int
  | Seq of int * int * int * int

(* Saturating arithmetic: counts live in [0..cap], where [cap] stands for
   "cap or more". The counting equations are monotone, so Kleene iteration
   from the all-zero chart converges to min(true count, cap) even for cyclic
   grammars with infinitely many trees. *)
let sat_add cap a b = min cap (a + b)
let sat_mul cap a b = min cap (a * b)

type chart = {
  parser : t;
  input : Symbol.t array;
  cap : int;
  table : (key, int) Hashtbl.t;
  mutable changed : bool;
}

let get c key = Option.value ~default:0 (Hashtbl.find_opt c.table key)

(* Store monotonically, and record mere key discovery as a change so the
   fixpoint loop revisits keys that currently evaluate to 0. *)
let set c key v =
  match Hashtbl.find_opt c.table key with
  | None ->
    Hashtbl.replace c.table key v;
    c.changed <- true
  | Some old when v > old ->
    Hashtbl.replace c.table key v;
    c.changed <- true
  | Some _ -> ()

let leaf_matches c sym i j = j = i + 1 && Symbol.equal c.input.(i) sym

(* One evaluation pass of the counting equations over a key, reading the
   current chart. *)
let rec eval c key =
  match key with
  | Seq (p, k, i, j) -> eval_seq c p k i j
  | Nt (n, i, j) ->
    let rooted =
      List.fold_left
        (fun acc p -> sat_add c.cap acc (eval_seq c p 0 i j))
        0
        (Grammar.productions_of c.parser.grammar n)
    in
    let total =
      if leaf_matches c (Symbol.Nonterminal n) i j then sat_add c.cap rooted 1
      else rooted
    in
    set c key total;
    total

and eval_seq c p k i j =
  let prod = Grammar.production c.parser.grammar p in
  let rhs = prod.Grammar.rhs in
  if k = Array.length rhs then if i = j then 1 else 0
  else begin
    let key = Seq (p, k, i, j) in
    let total = ref 0 in
    for m = i to j do
      let first =
        match rhs.(k) with
        | Symbol.Terminal _ as sym -> if leaf_matches c sym i m then 1 else 0
        | Symbol.Nonterminal n ->
          (* Read the chart rather than recursing: recursion through
             nonterminals could loop on cyclic grammars. The outer iteration
             re-evaluates until the chart is stable. *)
          let sub = Nt (n, i, m) in
          (* Make sure the key is discovered so the fixpoint loop visits it. *)
          if not (Hashtbl.mem c.table sub) then begin
            Hashtbl.replace c.table sub 0;
            c.changed <- true
          end;
          get c sub
      in
      if first > 0 then
        total :=
          sat_add c.cap !total (sat_mul c.cap first (eval_seq c p (k + 1) m j))
    done;
    set c key !total;
    !total
  end

(* Build the full chart for [input], including the root key, and iterate to
   the least fixpoint. *)
let build_chart parser ~cap ~start input =
  let n = Array.length input in
  let c = { parser; input; cap; table = Hashtbl.create 256; changed = true } in
  (match start with
  | Symbol.Terminal _ -> ()
  | Symbol.Nonterminal nt -> ignore (eval c (Nt (nt, 0, n))));
  while c.changed do
    c.changed <- false;
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) c.table [] in
    List.iter (fun k -> ignore (eval c k)) keys
  done;
  c

let count_generic ~rooted_only parser ?(cap = 4) ~start input =
  let input = Array.of_list input in
  let n = Array.length input in
  (* One extra unit of headroom so that subtracting the trivial leaf
     derivation (rooted_only at a one-symbol input) is not masked by
     saturation. *)
  let c = build_chart parser ~cap:(cap + 1) ~start input in
  let result =
    match start with
    | Symbol.Terminal _ as sym ->
      if (not rooted_only) && leaf_matches c sym 0 n then 1 else 0
    | Symbol.Nonterminal nt ->
      let full = get c (Nt (nt, 0, n)) in
      if rooted_only && leaf_matches c (Symbol.Nonterminal nt) 0 n then full - 1
      else full
  in
  min cap result

let count_trees parser ?cap ~start input =
  count_generic ~rooted_only:false parser ?cap ~start input

let count_rooted parser ?cap ~start input =
  count_generic ~rooted_only:true parser ?cap ~start input

let ambiguous_from parser ~start input =
  count_rooted parser ~cap:2 ~start input >= 2

let derives parser ~start input =
  count_rooted parser ~cap:1 ~start input >= 1
  || (match input with
     | [ sym ] -> Symbol.equal sym start
     | [] | _ :: _ :: _ -> false)

(* ------------------------------------------------------------------ *)
(* Bounded enumeration of derivation trees, used by tests and for an
   Elkhound-style display of multiple parses. The chart built above prunes
   the search to derivable configurations only. *)

let derivations parser ?(limit = 2) ?(max_nodes = 200) ~start input =
  let g = parser.grammar in
  let input = Array.of_list input in
  let chart = build_chart parser ~cap:1 ~start input in
  let derivable sym i j =
    leaf_matches chart sym i j
    ||
    match sym with
    | Symbol.Terminal _ -> false
    | Symbol.Nonterminal n -> get chart (Nt (n, i, j)) > 0
  in
  let results = ref [] in
  let n_results = ref 0 in
  let exception Done in
  (* [trees sym i j budget yield] enumerates (derivation, nodes used) for
     derivations of input[i..j) from [sym] using at most [budget] nodes. *)
  let rec trees sym i j budget yield =
    if budget > 0 && derivable sym i j then begin
      if leaf_matches chart sym i j then yield (Derivation.leaf sym, 1);
      match sym with
      | Symbol.Terminal _ -> ()
      | Symbol.Nonterminal nt ->
        List.iter
          (fun p ->
            let prod = Grammar.production g p in
            seq prod.Grammar.rhs 0 i j (budget - 1) (fun (children, used) ->
                yield (Derivation.node g p (List.rev children), used + 1)))
          (Grammar.productions_of g nt)
    end
  and seq rhs k i j budget yield =
    if k = Array.length rhs then begin
      if i = j then yield ([], 0)
    end
    else
      for m = i to j do
        if derivable rhs.(k) i m then
          trees rhs.(k) i m budget (fun (first, used) ->
              seq rhs (k + 1) m j (budget - used) (fun (rest, used') ->
                  yield (first :: rest, used + used')))
      done
  in
  (try
     trees start 0 (Array.length input) max_nodes (fun (d, _) ->
         (* Only rooted derivations (skip the trivial leaf at the root). *)
         match d with
         | Derivation.Leaf _ -> ()
         | Derivation.Node _ ->
           results := d :: !results;
           incr n_results;
           if !n_results >= limit then raise Done)
   with Done -> ());
  List.rev !results
