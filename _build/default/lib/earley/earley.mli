(** An independent chart parser over {e sentential forms}, used to validate
    counterexamples: it counts (with saturation) how many distinct derivation
    trees a grammar admits for a given string of symbols.

    Input symbols may be nonterminals; a nonterminal in the input matches
    itself as an unexpanded leaf, exactly the convention of the paper's
    counterexamples ("no more concrete than necessary"). Counting is the
    Kleene fixpoint of the tree-counting equations with saturating
    arithmetic, so cyclic grammars (infinitely many trees) simply saturate at
    the cap instead of diverging. *)

open Cfg

type t

val make : Grammar.t -> t

val count_trees : t -> ?cap:int -> start:Symbol.t -> Symbol.t list -> int
(** Number of derivation trees of the input from [start], including the
    trivial leaf tree when the input is [[start]] itself. Saturates at [cap]
    (default 4). *)

val count_rooted : t -> ?cap:int -> start:Symbol.t -> Symbol.t list -> int
(** Like {!count_trees} but counts only trees that apply at least one
    production at the root. *)

val ambiguous_from : t -> start:Symbol.t -> Symbol.t list -> bool
(** Does the sentential form have two or more distinct rooted derivations
    from [start]? This is the defining property of a unifying
    counterexample. *)

val derives : t -> start:Symbol.t -> Symbol.t list -> bool

val derivations :
  t -> ?limit:int -> ?max_nodes:int -> start:Symbol.t -> Symbol.t list ->
  Derivation.t list
(** Enumerate up to [limit] distinct rooted derivation trees with at most
    [max_nodes] nodes each (default 2 trees of 200 nodes). *)
