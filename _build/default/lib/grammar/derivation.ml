type t =
  | Leaf of Symbol.t
  | Node of {
      prod : int;
      lhs : int;
      children : t list;
      dot : int option;
    }

let leaf sym = Leaf sym

let node ?dot g prod children =
  let p = Grammar.production g prod in
  Node { prod; lhs = p.Grammar.lhs; children; dot }

let root_symbol = function
  | Leaf sym -> sym
  | Node { lhs; _ } -> Symbol.Nonterminal lhs

let rec leaves_acc d acc =
  match d with
  | Leaf sym -> sym :: acc
  | Node { children; _ } -> List.fold_right leaves_acc children acc

let leaves d = leaves_acc d []

let rec size = function
  | Leaf _ -> 1
  | Node { children; _ } -> List.fold_left (fun n c -> n + size c) 1 children

let rec validate g d =
  match d with
  | Leaf _ -> true
  | Node { prod; lhs; children; dot } ->
    let p = Grammar.production g prod in
    p.Grammar.lhs = lhs
    && List.length children = Array.length p.Grammar.rhs
    && (match dot with
       | None -> true
       | Some i -> i >= 0 && i <= List.length children)
    && List.for_all2
         (fun child sym -> Symbol.equal (root_symbol child) sym)
         children (Array.to_list p.Grammar.rhs)
    && List.for_all (validate g) children

let dot_marker = "\xe2\x80\xa2" (* U+2022 bullet, as in the paper's output *)

let rec pp g ppf d =
  match d with
  | Leaf sym -> Fmt.string ppf (Grammar.symbol_name g sym)
  | Node { lhs; children; dot; _ } ->
    let pieces =
      let printers = List.map (fun child ppf () -> pp g ppf child) children in
      match dot with
      | None -> printers
      | Some i ->
        let before = List.filteri (fun j _ -> j < i) printers in
        let after = List.filteri (fun j _ -> j >= i) printers in
        before @ ((fun ppf () -> Fmt.string ppf dot_marker) :: after)
    in
    Fmt.pf ppf "%s ::= [%a]" (Grammar.nonterminal_name g lhs)
      Fmt.(list ~sep:(any " ") (fun ppf pr -> pr ppf ()))
      pieces

let to_string g d = Fmt.str "%a" (pp g) d

(* Position of the (first) dot marker within the frontier, if any node
   carries one. *)
let frontier_dot_position d =
  let exception Found of int in
  let rec go offset d =
    match d with
    | Leaf _ -> offset + 1
    | Node { children; dot; _ } ->
      let rec walk i offset = function
        | [] ->
          (match dot with
          | Some j when j = i -> raise (Found offset)
          | Some _ | None -> offset)
        | child :: rest ->
          (match dot with
          | Some j when j = i -> raise (Found offset)
          | Some _ | None -> ());
          walk (i + 1) (go offset child) rest
      in
      walk 0 offset children
  in
  match go 0 d with
  | (_ : int) -> None
  | exception Found offset -> Some offset

let pp_frontier_with_dot g ppf d =
  let leaves = leaves d in
  let dot_at = frontier_dot_position d in
  let n = List.length leaves in
  List.iteri
    (fun i sym ->
      if dot_at = Some i then Fmt.pf ppf "%s " dot_marker;
      Fmt.string ppf (Grammar.symbol_name g sym);
      if i < n - 1 then Fmt.string ppf " ")
    leaves;
  if dot_at = Some n then Fmt.pf ppf " %s" dot_marker

let rec equal a b =
  match a, b with
  | Leaf x, Leaf y -> Symbol.equal x y
  | Node n1, Node n2 ->
    n1.prod = n2.prod
    && List.length n1.children = List.length n2.children
    && List.for_all2 equal n1.children n2.children
  | Leaf _, Node _ | Node _, Leaf _ -> false
