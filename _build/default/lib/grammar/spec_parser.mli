(** Parser for the yacc-like grammar description language.

    The format follows yacc conventions:
    {v
    %token ID NUM            // optional explicit terminal declarations
    %start stmt
    %left '+' '-'            // precedence, lowest first
    %left '*'
    stmt : IF expr THEN stmt ELSE stmt
         | IF expr THEN stmt
         ;
    expr : expr '+' expr %prec '+'
         |                       // empty alternative
         ;
    v}

    Any symbol appearing as a rule's left-hand side is a nonterminal; all
    other symbols are terminals. Without a [%start] directive the first rule's
    left-hand side is the start symbol. *)

exception Error of string

val parse : string -> Spec_ast.t
(** @raise Error on syntax errors (with a line number). *)

val parse_result : string -> (Spec_ast.t, string) result

val grammar_of_string : string -> (Grammar.t, string) result
(** Parse and elaborate in one step. *)

val grammar_of_string_exn : string -> Grammar.t
(** @raise Error on parse or elaboration errors. *)
