type token =
  | Ident of string
  | Lit of string
  | Colon
  | Bar
  | Semi
  | Directive of string
  | Eof

type lexeme = {
  token : token;
  line : int;
}

exception Error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '-'

(* Punctuation characters that may form bare terminal names. Structural
   characters [: | ; %] and quote characters are deliberately excluded. *)
let is_punct c = String.contains "+-*/=<>!?&^~@.,()[]{}" c

let token_to_string = function
  | Ident s -> s
  | Lit s -> Fmt.str "%S" s
  | Colon -> ":"
  | Bar -> "|"
  | Semi -> ";"
  | Directive d -> "%" ^ d
  | Eof -> "<eof>"

let tokenize source =
  let n = String.length source in
  let lexemes = ref [] in
  let line = ref 1 in
  let emit token = lexemes := { token; line = !line } :: !lexemes in
  let rec skip_block_comment i =
    if i + 1 >= n then errorf "line %d: unterminated comment" !line
    else if source.[i] = '\n' then begin
      incr line;
      skip_block_comment (i + 1)
    end
    else if source.[i] = '*' && source.[i + 1] = '/' then i + 2
    else skip_block_comment (i + 1)
  in
  let rec skip_line_comment i =
    if i >= n || source.[i] = '\n' then i else skip_line_comment (i + 1)
  in
  let scan_while p i =
    let rec go j = if j < n && p source.[j] then go (j + 1) else j in
    let j = go i in
    String.sub source i (j - i), j
  in
  let scan_quoted quote i =
    let rec go j =
      if j >= n || source.[j] = '\n' then
        errorf "line %d: unterminated %c-quoted literal" !line quote
      else if source.[j] = quote then j
      else go (j + 1)
    in
    let j = go i in
    String.sub source i (j - i), j + 1
  in
  let rec go i =
    if i >= n then emit Eof
    else
      let c = source.[i] in
      if c = '\n' then begin
        incr line;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && source.[i + 1] = '*' then
        go (skip_block_comment (i + 2))
      else if c = '/' && i + 1 < n && source.[i + 1] = '/' then
        go (skip_line_comment (i + 2))
      else if c = ':' then begin
        emit Colon;
        go (i + 1)
      end
      else if c = '|' then begin
        emit Bar;
        go (i + 1)
      end
      else if c = ';' then begin
        emit Semi;
        go (i + 1)
      end
      else if c = '%' then begin
        let name, j = scan_while is_ident_char (i + 1) in
        if name = "" then errorf "line %d: expected directive name after %%" !line;
        emit (Directive name);
        go j
      end
      else if c = '\'' || c = '"' then begin
        let body, j = scan_quoted c (i + 1) in
        if body = "" then errorf "line %d: empty literal" !line;
        emit (Lit body);
        go j
      end
      else if is_ident_start c then begin
        let name, j = scan_while is_ident_char i in
        emit (Ident name);
        go j
      end
      else if is_punct c then begin
        let name, j = scan_while is_punct i in
        emit (Lit name);
        go j
      end
      else errorf "line %d: unexpected character %C" !line c
  in
  go 0;
  List.rev !lexemes
