(** Context-free grammars, augmented and interned.

    A grammar is built from a {!Spec_ast.t} (either written programmatically or
    parsed from the yacc-like textual format by {!Spec_parser}). Construction
    augments the grammar with:

    - terminal 0, named ["$"], the end-of-input marker;
    - nonterminal 0, named ["START"], with the single production
      [START ::= s] (production 0) where [s] is the start symbol. *)

type assoc = Spec_ast.assoc =
  | Left
  | Right
  | Nonassoc

type production = private {
  index : int;  (** position in the production table; 0 is the start production *)
  lhs : int;  (** nonterminal index *)
  rhs : Symbol.t array;
  prec_tag : int option;  (** terminal index of an explicit [%prec] override *)
}

type t

val of_spec : Spec_ast.t -> (t, string) result

exception Invalid of string

val of_spec_exn : Spec_ast.t -> t
(** @raise Invalid on malformed specs (no rules, bad [%prec] tag, ...). *)

val n_terminals : t -> int
val n_nonterminals : t -> int
val n_productions : t -> int
val production : t -> int -> production
val productions_of : t -> int -> int list
(** Production indices with the given nonterminal as left-hand side, in
    declaration order. *)

val start : t -> int
(** The user's start nonterminal (not the augmented [START]). *)

val terminal_name : t -> int -> string
val nonterminal_name : t -> int -> string
val symbol_name : t -> Symbol.t -> string
val find_terminal : t -> string -> int option
val find_nonterminal : t -> string -> int option
val find_symbol : t -> string -> Symbol.t option
(** Nonterminals shadow terminals of the same name (cannot happen for grammars
    built by {!of_spec}, which rejects the overlap). *)

val terminal_prec : t -> int -> (int * assoc) option
(** Declared precedence level (higher binds tighter) and associativity. *)

val production_prec : t -> production -> (int * assoc) option
(** Effective precedence of a production: its [%prec] tag if any, otherwise
    that of the rightmost terminal of its right-hand side. *)

val pp_symbols : t -> Format.formatter -> Symbol.t list -> unit
val pp_production : t -> Format.formatter -> production -> unit
val pp : Format.formatter -> t -> unit
