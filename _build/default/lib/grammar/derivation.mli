(** Derivation (parse) trees over sentential forms.

    A derivation need not be complete: a {!Leaf} stands for any grammar symbol
    left unexpanded, so the frontier of a derivation is a sentential form, not
    necessarily a sentence. This is exactly what the paper's counterexamples
    are: derivations "no more concrete than necessary". *)

type t =
  | Leaf of Symbol.t  (** an unexpanded symbol *)
  | Node of {
      prod : int;  (** production applied at this node *)
      lhs : int;  (** cached left-hand side of [prod] *)
      children : t list;
      dot : int option;
          (** conflict-point marker: the paper's [•] is printed before the
              child at this index when rendering *)
    }

val leaf : Symbol.t -> t

val node : ?dot:int -> Grammar.t -> int -> t list -> t
(** [node g prod children] applies production [prod] of [g]. *)

val root_symbol : t -> Symbol.t

val leaves : t -> Symbol.t list
(** The frontier, left to right. An epsilon subtree contributes nothing. *)

val size : t -> int

val validate : Grammar.t -> t -> bool
(** Check that every node applies a real production of [g] to children whose
    root symbols spell its right-hand side. *)

val equal : t -> t -> bool
(** Structural equality of applied productions (ignores dot markers). *)

val dot_marker : string

val frontier_dot_position : t -> int option
(** Leaf offset at which the first dot marker falls, if any node carries
    one. *)

val pp_frontier_with_dot : Grammar.t -> Format.formatter -> t -> unit
(** Print the frontier with the dot marker inserted at its position, e.g.
    [expr + expr • + expr]. *)

val pp : Grammar.t -> Format.formatter -> t -> unit
(** Bracketed rendering in the paper's style:
    [expr ::= [expr ::= [expr + expr •] + expr]]. *)

val to_string : Grammar.t -> t -> string
