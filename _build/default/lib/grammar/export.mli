(** Grammar exporters. *)

val to_spec : Grammar.t -> string
(** Render back to the {!Spec_parser} dialect. Round-trips: reparsing the
    output yields a grammar with the same symbols, productions, precedence
    and conflicts (production numbering may differ). *)

val to_menhir : Grammar.t -> string
(** A Menhir [.mly] skeleton with [unit] semantic actions; punctuation
    terminals are renamed to spelled-out token names. *)
