(** Lexer for the yacc-like grammar description language.

    Lexical conventions:
    - identifiers: [[A-Za-z_][A-Za-z0-9_'-]*];
    - literals: ['...'] or ["..."] (the name is the quoted body), or a bare
      maximal run of punctuation characters ([+-*/=<>!?&^~@.,()[]{}]);
    - structural tokens: [:], [|], [;];
    - directives: [%name];
    - comments: [/* ... */] and [// ...]. *)

type token =
  | Ident of string
  | Lit of string
  | Colon
  | Bar
  | Semi
  | Directive of string
  | Eof

type lexeme = {
  token : token;
  line : int;
}

exception Error of string

val tokenize : string -> lexeme list
(** @raise Error on lexical errors; the resulting list always ends with
    an {!Eof} lexeme. *)

val token_to_string : token -> string

val is_ident_start : char -> bool
val is_ident_char : char -> bool
(** Character classes of the lexical syntax, exposed for the exporters. *)
