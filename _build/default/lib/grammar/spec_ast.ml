(** Abstract syntax for the yacc-like grammar description language, shared by
    the textual parser ({!Spec_parser}) and programmatic grammar builders. *)

type assoc =
  | Left
  | Right
  | Nonassoc

type alt = {
  symbols : string list;
  prec_tag : string option;  (** explicit [%prec TOKEN] override *)
}

type rule = {
  lhs : string;
  alts : alt list;
}

type t = {
  tokens : string list;  (** explicitly declared terminals (may be empty) *)
  prec_levels : (assoc * string list) list;
      (** precedence declarations, lowest precedence first *)
  start : string option;
  rules : rule list;
}

let alt ?prec_tag symbols = { symbols; prec_tag }

let rule lhs alts = { lhs; alts }

let make ?(tokens = []) ?(prec_levels = []) ?start rules =
  { tokens; prec_levels; start; rules }
