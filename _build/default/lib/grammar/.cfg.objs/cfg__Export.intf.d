lib/grammar/export.mli: Grammar
