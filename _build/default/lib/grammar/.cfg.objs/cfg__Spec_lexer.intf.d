lib/grammar/spec_lexer.mli:
