lib/grammar/symbol.mli:
