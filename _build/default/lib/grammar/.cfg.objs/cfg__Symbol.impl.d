lib/grammar/symbol.ml: Int
