lib/grammar/spec_parser.mli: Grammar Spec_ast
