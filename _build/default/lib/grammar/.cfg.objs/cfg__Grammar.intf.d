lib/grammar/grammar.mli: Format Spec_ast Symbol
