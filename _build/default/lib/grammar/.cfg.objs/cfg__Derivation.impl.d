lib/grammar/derivation.ml: Array Fmt Grammar List Symbol
