lib/grammar/analysis.mli: Bitset Derivation Grammar Symbol
