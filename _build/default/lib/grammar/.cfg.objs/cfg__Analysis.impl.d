lib/grammar/analysis.ml: Array Bitset Derivation Grammar List Symbol
