lib/grammar/spec_lexer.ml: Fmt List String
