lib/grammar/derivation.mli: Format Grammar Symbol
