lib/grammar/bitset.ml: Array Fmt Int List Sys
