lib/grammar/spec_parser.ml: Fmt Grammar List Spec_ast Spec_lexer
