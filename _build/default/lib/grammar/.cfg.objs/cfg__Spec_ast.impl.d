lib/grammar/spec_ast.ml:
