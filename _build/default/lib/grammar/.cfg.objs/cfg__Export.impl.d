lib/grammar/export.ml: Array Buffer Char Fmt Grammar Hashtbl Int List Spec_lexer String Symbol
