lib/grammar/grammar.ml: Array Fmt Hashtbl List Spec_ast String Symbol
