(** Immutable sets of small nonnegative integers, used for terminal
    (lookahead) sets throughout the library.

    Values are persistent: all operations return fresh sets and never mutate
    their arguments. Representation is canonical up to trailing zero words, and
    all observers treat missing high words as zeros, so structural sharing is
    safe. *)

type t

val empty : t

val create : capacity:int -> t
(** [create ~capacity] is an empty set preallocated for elements
    [< capacity]. Purely an allocation hint. *)

val singleton : int -> t
val of_list : int list -> t
val add : t -> int -> t
val remove : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val is_empty : t -> bool
val disjoint : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val elements : t -> int list
(** Elements in increasing order. *)

val cardinal : t -> int
val exists : (int -> bool) -> t -> bool
val choose : t -> int option
(** Smallest element, if any. *)

val hash : t -> int
val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
(** Print as [{a, b, c}], mapping elements through [name]. *)
