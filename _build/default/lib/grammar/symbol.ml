type t =
  | Terminal of int
  | Nonterminal of int

let equal a b =
  match a, b with
  | Terminal i, Terminal j | Nonterminal i, Nonterminal j -> i = j
  | Terminal _, Nonterminal _ | Nonterminal _, Terminal _ -> false

let compare a b =
  match a, b with
  | Terminal i, Terminal j | Nonterminal i, Nonterminal j -> Int.compare i j
  | Terminal _, Nonterminal _ -> -1
  | Nonterminal _, Terminal _ -> 1

let hash = function
  | Terminal i -> (2 * i) + 1
  | Nonterminal i -> 2 * i

let is_terminal = function Terminal _ -> true | Nonterminal _ -> false
let is_nonterminal = function Nonterminal _ -> true | Terminal _ -> false

let eof = Terminal 0
