(** Grammar symbols: interned terminals and nonterminals.

    Symbols carry indices into the name tables of the {!Grammar.t} they belong
    to. Terminal index 0 is always the end-of-input marker [$]; nonterminal
    index 0 is always the augmented start symbol. *)

type t =
  | Terminal of int
  | Nonterminal of int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_terminal : t -> bool
val is_nonterminal : t -> bool

val eof : t
(** The end-of-input terminal [$] (terminal index 0). *)
