type assoc = Spec_ast.assoc =
  | Left
  | Right
  | Nonassoc

type production = {
  index : int;
  lhs : int;
  rhs : Symbol.t array;
  prec_tag : int option;
}

type t = {
  terminal_names : string array;
  nonterminal_names : string array;
  productions : production array;
  productions_of : int list array;
  start : int;
  term_prec : (int * assoc) option array;
}

let eof_name = "$"
let start_name = "START"

let n_terminals g = Array.length g.terminal_names
let n_nonterminals g = Array.length g.nonterminal_names
let n_productions g = Array.length g.productions
let production g i = g.productions.(i)
let productions_of g nt = g.productions_of.(nt)
let start g = g.start
let terminal_name g t = g.terminal_names.(t)
let nonterminal_name g nt = g.nonterminal_names.(nt)

let symbol_name g = function
  | Symbol.Terminal t -> terminal_name g t
  | Symbol.Nonterminal nt -> nonterminal_name g nt

let terminal_prec g t = g.term_prec.(t)

let production_prec g p =
  match p.prec_tag with
  | Some t -> g.term_prec.(t)
  | None ->
    (* Default: precedence of the rightmost terminal in the right-hand side. *)
    let rec rightmost i =
      if i < 0 then None
      else
        match p.rhs.(i) with
        | Symbol.Terminal t -> g.term_prec.(t)
        | Symbol.Nonterminal _ -> rightmost (i - 1)
    in
    rightmost (Array.length p.rhs - 1)

let find_terminal g name =
  let rec go i =
    if i >= n_terminals g then None
    else if String.equal g.terminal_names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let find_nonterminal g name =
  let rec go i =
    if i >= n_nonterminals g then None
    else if String.equal g.nonterminal_names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let find_symbol g name =
  match find_nonterminal g name with
  | Some nt -> Some (Symbol.Nonterminal nt)
  | None -> (
    match find_terminal g name with
    | Some t -> Some (Symbol.Terminal t)
    | None -> None)

let pp_symbols g ppf symbols =
  Fmt.(list ~sep:(any " ") string) ppf (List.map (symbol_name g) symbols)

let pp_production g ppf p =
  Fmt.pf ppf "%s ::=%a" (nonterminal_name g p.lhs)
    (fun ppf rhs ->
      Array.iter (fun s -> Fmt.pf ppf " %s" (symbol_name g s)) rhs)
    p.rhs

let pp ppf g =
  Array.iter (fun p -> Fmt.pf ppf "%a@." (pp_production g) p) g.productions

(* ------------------------------------------------------------------ *)
(* Construction from a spec. *)

exception Invalid of string

let invalidf fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let of_spec_exn (spec : Spec_ast.t) =
  if spec.rules = [] then invalidf "grammar has no rules";
  (* Merge rules that share a left-hand side, preserving declaration order. *)
  let merged : (string, Spec_ast.alt list ref) Hashtbl.t = Hashtbl.create 16 in
  let lhs_order = ref [] in
  List.iter
    (fun (r : Spec_ast.rule) ->
      match Hashtbl.find_opt merged r.lhs with
      | Some alts -> alts := !alts @ r.alts
      | None ->
        Hashtbl.add merged r.lhs (ref r.alts);
        lhs_order := r.lhs :: !lhs_order)
    spec.rules;
  let lhs_order = List.rev !lhs_order in
  (* Nonterminal 0 is the augmented start symbol. *)
  let nonterminal_names =
    Array.of_list (start_name :: lhs_order)
  in
  let nt_index = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.replace nt_index n i) nonterminal_names;
  if Hashtbl.length nt_index <> Array.length nonterminal_names then
    invalidf "duplicate nonterminal (or a rule named %S)" start_name;
  (* Terminals: terminal 0 is eof; then declared tokens, precedence tokens and
     any rule symbol that is not a nonterminal, in order of appearance. *)
  let term_index = Hashtbl.create 16 in
  let term_order = ref [] in
  let declare_terminal name =
    if String.equal name eof_name then
      invalidf "the symbol %S is reserved for end of input" eof_name;
    if (not (Hashtbl.mem nt_index name)) && not (Hashtbl.mem term_index name)
    then begin
      Hashtbl.add term_index name (1 + List.length !term_order);
      term_order := name :: !term_order
    end
  in
  List.iter declare_terminal spec.tokens;
  List.iter (fun (_, names) -> List.iter declare_terminal names) spec.prec_levels;
  List.iter
    (fun lhs ->
      List.iter
        (fun (alt : Spec_ast.alt) -> List.iter declare_terminal alt.symbols)
        !(Hashtbl.find merged lhs))
    lhs_order;
  let terminal_names = Array.of_list (eof_name :: List.rev !term_order) in
  let term_prec = Array.make (Array.length terminal_names) None in
  List.iteri
    (fun level (assoc, names) ->
      List.iter
        (fun name ->
          let t = Hashtbl.find term_index name in
          if term_prec.(t) <> None then
            invalidf "terminal %s has two precedence declarations" name;
          term_prec.(t) <- Some (level, assoc))
        names)
    spec.prec_levels;
  let lookup_symbol name =
    match Hashtbl.find_opt nt_index name with
    | Some nt -> Symbol.Nonterminal nt
    | None -> Symbol.Terminal (Hashtbl.find term_index name)
  in
  let start_nt =
    match spec.start with
    | None -> (
      match lhs_order with
      | first :: _ -> Hashtbl.find nt_index first
      | [] -> assert false)
    | Some name -> (
      match Hashtbl.find_opt nt_index name with
      | Some nt -> nt
      | None -> invalidf "start symbol %s is not a nonterminal" name)
  in
  let productions = ref [] in
  let count = ref 0 in
  let add_production lhs rhs prec_tag =
    incr count;
    productions := { index = !count - 1; lhs; rhs; prec_tag } :: !productions
  in
  add_production 0 [| Symbol.Nonterminal start_nt |] None;
  List.iter
    (fun lhs_name ->
      let lhs = Hashtbl.find nt_index lhs_name in
      List.iter
        (fun (alt : Spec_ast.alt) ->
          let rhs = Array.of_list (List.map lookup_symbol alt.symbols) in
          let prec_tag =
            match alt.prec_tag with
            | None -> None
            | Some name -> (
              match Hashtbl.find_opt term_index name with
              | Some t -> Some t
              | None -> invalidf "%%prec tag %s is not a terminal" name)
          in
          add_production lhs rhs prec_tag)
        !(Hashtbl.find merged lhs_name))
    lhs_order;
  let productions = Array.of_list (List.rev !productions) in
  let productions_of = Array.make (Array.length nonterminal_names) [] in
  Array.iter
    (fun p -> productions_of.(p.lhs) <- p.index :: productions_of.(p.lhs))
    productions;
  Array.iteri (fun i l -> productions_of.(i) <- List.rev l) productions_of;
  { terminal_names; nonterminal_names; productions; productions_of;
    start = start_nt; term_prec }

let of_spec spec =
  match of_spec_exn spec with
  | g -> Ok g
  | exception Invalid msg -> Error msg
