(* Exporters: render a grammar back to the textual spec dialect (round-trips
   through Spec_parser) or to a Menhir .mly skeleton. *)

let is_ident name =
  String.length name > 0
  && Spec_lexer.is_ident_start name.[0]
  && String.for_all Spec_lexer.is_ident_char name

let spec_symbol_name g sym =
  let name = Grammar.symbol_name g sym in
  match sym with
  | Symbol.Nonterminal _ -> name
  | Symbol.Terminal _ -> if is_ident name then name else "'" ^ name ^ "'"

let spec_terminal_name g t = spec_symbol_name g (Symbol.Terminal t)

(* Reconstruct the %left/%right/%nonassoc declarations from the grammar's
   terminal precedence table, lowest level first. *)
let prec_declarations g =
  let by_level : (int, (Grammar.assoc * string list ref)) Hashtbl.t =
    Hashtbl.create 8
  in
  for t = 1 to Grammar.n_terminals g - 1 do
    match Grammar.terminal_prec g t with
    | None -> ()
    | Some (level, assoc) -> (
      match Hashtbl.find_opt by_level level with
      | Some (_, names) -> names := spec_terminal_name g t :: !names
      | None ->
        Hashtbl.add by_level level (assoc, ref [ spec_terminal_name g t ]))
  done;
  Hashtbl.fold (fun level entry acc -> (level, entry) :: acc) by_level []
  |> List.sort (fun (l1, _) (l2, _) -> Int.compare l1 l2)
  |> List.map (fun (_, (assoc, names)) -> (assoc, List.rev !names))

let assoc_directive = function
  | Grammar.Left -> "%left"
  | Grammar.Right -> "%right"
  | Grammar.Nonassoc -> "%nonassoc"

let to_spec g =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (assoc, names) ->
      Buffer.add_string buf
        (Fmt.str "%s %s\n" (assoc_directive assoc) (String.concat " " names)))
    (prec_declarations g);
  Buffer.add_string buf
    (Fmt.str "%%start %s\n" (Grammar.nonterminal_name g (Grammar.start g)));
  for nt = 1 to Grammar.n_nonterminals g - 1 do
    let prods = Grammar.productions_of g nt in
    Buffer.add_string buf (Grammar.nonterminal_name g nt);
    List.iteri
      (fun i p ->
        let prod = Grammar.production g p in
        Buffer.add_string buf (if i = 0 then " : " else "  | ");
        Array.iter
          (fun sym ->
            Buffer.add_string buf (spec_symbol_name g sym);
            Buffer.add_char buf ' ')
          prod.Grammar.rhs;
        (match prod.Grammar.prec_tag with
        | Some t ->
          Buffer.add_string buf (Fmt.str "%%prec %s " (spec_terminal_name g t))
        | None -> ());
        Buffer.add_char buf '\n')
      prods;
    Buffer.add_string buf "  ;\n"
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Menhir: terminals must be capitalized identifiers, nonterminals lowercase
   identifiers; punctuation gets a spelled-out name. *)

let punct_names =
  [ ('+', "PLUS"); ('-', "MINUS"); ('*', "STAR"); ('/', "SLASH");
    ('=', "EQUALS"); ('<', "LT"); ('>', "GT"); ('!', "BANG"); ('?', "QUESTION");
    ('&', "AMP"); ('^', "CARET"); ('~', "TILDE"); ('@', "AT"); ('.', "DOT");
    (',', "COMMA"); ('(', "LPAREN"); (')', "RPAREN"); ('[', "LBRACKET");
    (']', "RBRACKET"); ('{', "LBRACE"); ('}', "RBRACE"); (':', "COLON");
    (';', "SEMI"); ('%', "PERCENT"); ('|', "BAR"); ('\'', "QUOTE") ]

let menhir_terminal_name g t =
  let name = Grammar.terminal_name g t in
  if is_ident name then String.uppercase_ascii name
  else
    String.concat "_"
      (List.map
         (fun c ->
           match List.assoc_opt c punct_names with
           | Some n -> n
           | None -> Fmt.str "CHR%d" (Char.code c))
         (List.init (String.length name) (String.get name)))

let menhir_nonterminal_name g nt =
  String.uncapitalize_ascii (Grammar.nonterminal_name g nt)

let to_menhir g =
  let buf = Buffer.create 1024 in
  for t = 1 to Grammar.n_terminals g - 1 do
    Buffer.add_string buf (Fmt.str "%%token %s\n" (menhir_terminal_name g t))
  done;
  (* Precedence declarations with menhir terminal spellings. *)
  let by_level : (int, (Grammar.assoc * string list ref)) Hashtbl.t =
    Hashtbl.create 8
  in
  for t = 1 to Grammar.n_terminals g - 1 do
    match Grammar.terminal_prec g t with
    | None -> ()
    | Some (level, assoc) -> (
      match Hashtbl.find_opt by_level level with
      | Some (_, names) -> names := menhir_terminal_name g t :: !names
      | None ->
        Hashtbl.add by_level level (assoc, ref [ menhir_terminal_name g t ]))
  done;
  Hashtbl.fold (fun level entry acc -> (level, entry) :: acc) by_level []
  |> List.sort (fun (l1, _) (l2, _) -> Int.compare l1 l2)
  |> List.iter (fun (_, (assoc, names)) ->
         Buffer.add_string buf
           (Fmt.str "%s %s\n" (assoc_directive assoc)
              (String.concat " " (List.rev !names))));
  Buffer.add_string buf
    (Fmt.str "%%start <unit> %s\n%%%%\n\n"
       (menhir_nonterminal_name g (Grammar.start g)));
  for nt = 1 to Grammar.n_nonterminals g - 1 do
    Buffer.add_string buf (menhir_nonterminal_name g nt);
    Buffer.add_string buf ":\n";
    List.iter
      (fun p ->
        let prod = Grammar.production g p in
        Buffer.add_string buf "  | ";
        Array.iter
          (fun sym ->
            (match sym with
            | Symbol.Terminal t ->
              Buffer.add_string buf (menhir_terminal_name g t)
            | Symbol.Nonterminal n ->
              Buffer.add_string buf (menhir_nonterminal_name g n));
            Buffer.add_char buf ' ')
          prod.Grammar.rhs;
        (match prod.Grammar.prec_tag with
        | Some t ->
          Buffer.add_string buf (Fmt.str "%%prec %s " (menhir_terminal_name g t))
        | None -> ());
        Buffer.add_string buf "{ () }\n")
      (Grammar.productions_of g nt);
    Buffer.add_string buf "\n"
  done;
  Buffer.contents buf
