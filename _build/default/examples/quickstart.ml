(* Quickstart: define a grammar, find its conflicts, and get counterexamples.

   Run with: dune exec examples/quickstart.exe *)

let grammar_source =
  {|
%start stmt
stmt : IF expr THEN stmt ELSE stmt
     | IF expr THEN stmt
     | PRINT expr
     ;
expr : expr + expr
     | NUM
     ;
|}

let () =
  (* 1. Parse the grammar description. *)
  let grammar = Cfg.Spec_parser.grammar_of_string_exn grammar_source in

  (* 2. Analyze: builds the LALR(1) automaton, finds every conflict, and
     attaches a counterexample to each (unifying when the ambiguity is found
     within the time budget, nonunifying otherwise). *)
  let report = Cex.Driver.analyze grammar in

  (* 3. Print the CUP-style report (paper, Fig. 11). *)
  print_string (Cex.Report.to_string report);

  (* 4. The results are also available programmatically. *)
  List.iter
    (fun cr ->
      match cr.Cex.Driver.counterexample with
      | Some (Cex.Driver.Unifying u) ->
        Fmt.pr "@.[programmatic] nonterminal %s is ambiguous: %a@."
          (Cfg.Grammar.nonterminal_name grammar u.Cex.Product_search.nonterminal)
          (Cfg.Grammar.pp_symbols grammar)
          u.Cex.Product_search.form
      | Some (Cex.Driver.Nonunifying _) | None -> ())
    report.Cex.Driver.conflict_reports
