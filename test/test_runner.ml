open Cfg
open Automaton

let table source = Parse_table.build (Spec_parser.grammar_of_string_exn source)

let calculator =
  {|
%left + -
%left * /
%right POW
%start e
e : e + e | e - e | e * e | e / e | e POW e | N ;
|}

(* Interpret a calculator derivation, mapping every N to [value]. *)
let rec eval g value d =
  match d with
  | Derivation.Leaf (Symbol.Terminal _) -> value
  | Derivation.Leaf (Symbol.Nonterminal _) -> Alcotest.fail "unexpanded nonterminal"
  | Derivation.Node { children; _ } -> (
    match children with
    | [ only ] -> eval g value only
    | [ l; Derivation.Leaf (Symbol.Terminal op); r ] -> (
      let lv = eval g value l and rv = eval g value r in
      match Grammar.terminal_name g op with
      | "+" -> lv +. rv
      | "-" -> lv -. rv
      | "*" -> lv *. rv
      | "/" -> lv /. rv
      | "POW" -> lv ** rv
      | other -> Alcotest.failf "unexpected operator %s" other)
    | _ -> Alcotest.fail "unexpected derivation shape")

let parse_eval t input =
  let g = Parse_table.grammar t in
  match Runner.parse_names t input with
  | Ok d -> eval g 2.0 d
  | Error e -> Alcotest.failf "parse failed: %a" (Runner.pp_error g) e

let test_calculator_assoc_prec () =
  let t = table calculator in
  Alcotest.(check int) "fully disambiguated" 0
    (List.length (Parse_table.conflicts t));
  (* with N = 2: 2 - 2 - 2 = -2 (left assoc), 2 - 2 * 2 = -2 (prec),
     2 POW 2 POW 2 ... right assoc: 2^(2^2) = 16, (2^2)^2 = 16 too; use
     division instead: 2 / 2 / 2 = 0.5 left-assoc vs 2 right-assoc. *)
  Alcotest.(check (float 1e-9)) "left assoc minus" (-2.0)
    (parse_eval t [ "N"; "-"; "N"; "-"; "N" ]);
  Alcotest.(check (float 1e-9)) "precedence" (-2.0)
    (parse_eval t [ "N"; "-"; "N"; "*"; "N" ]);
  Alcotest.(check (float 1e-9)) "left assoc division" 0.5
    (parse_eval t [ "N"; "/"; "N"; "/"; "N" ])

let test_roundtrip_leaves () =
  let t = table Corpus.Paper_grammars.figure1 in
  let g = Parse_table.grammar t in
  let input = [ "IF"; "DIGIT"; "THEN"; "ARR"; "["; "DIGIT"; "]"; ":="; "DIGIT" ] in
  match Runner.parse_names t input with
  | Error e -> Alcotest.failf "parse failed: %a" (Runner.pp_error g) e
  | Ok d ->
    Alcotest.(check bool) "validates" true (Derivation.validate g d);
    let leaves =
      Derivation.leaves d |> List.map (Grammar.symbol_name g)
    in
    Alcotest.(check (list string)) "leaves = input" input leaves

let test_dangling_else_default_shift () =
  (* With the default shift resolution, ELSE binds to the innermost IF. *)
  let t = table Corpus.Paper_grammars.figure1 in
  let input =
    [ "IF"; "DIGIT"; "THEN"; "IF"; "DIGIT"; "THEN"; "ARR"; "["; "DIGIT"; "]";
      ":="; "DIGIT"; "ELSE"; "ARR"; "["; "DIGIT"; "]"; ":="; "DIGIT" ]
  in
  match Runner.parse_names t input with
  | Error _ -> Alcotest.fail "dangling else should parse with default shift"
  | Ok d -> (
    (* The outer stmt must be the two-armed IF...THEN (no ELSE), the inner one
       the IF...THEN...ELSE. *)
    match d with
    | Derivation.Node { children = [ _if; _e; _then; inner ]; _ } -> (
      match inner with
      | Derivation.Node { children; _ } ->
        Alcotest.(check int) "inner if has else" 6 (List.length children)
      | Derivation.Leaf _ -> Alcotest.fail "inner not a node")
    | _ -> Alcotest.fail "outer not an if-then")

let test_error_reporting () =
  let t = table "s : A s B | C ;" in
  (match Runner.parse_names t [ "A"; "C" ] with
  | Ok _ -> Alcotest.fail "should fail at eof"
  | Error e -> Alcotest.(check int) "eof error terminal" 0 e.Runner.terminal);
  match Runner.parse_names t [ "A"; "B" ] with
  | Ok _ -> Alcotest.fail "should fail at the second token"
  | Error e ->
    Alcotest.(check int) "error position (0-based)" 1 e.Runner.position;
    Alcotest.(check bool) "syntax errors are Unexpected_token" true
      (e.Runner.reason = Runner.Unexpected_token)

(* Degenerate inputs must come back as errors, never assertions: the oracle
   and the fuzzer replay automata on arbitrary generated token strings. *)
let test_invalid_tokens_rejected () =
  let t = table "s : A s B | C ;" in
  let n_terminals = Grammar.n_terminals (Parse_table.grammar t) in
  List.iter
    (fun (label, input) ->
      match Runner.parse t input with
      | Ok _ -> Alcotest.failf "%s should be rejected" label
      | Error e ->
        Alcotest.(check bool)
          (label ^ " rejected as Invalid_token")
          true
          (e.Runner.reason = Runner.Invalid_token))
    [ ("explicit EOF marker inside the input", [ 0 ]);
      ("EOF marker mid-input", [ 1; 0; 2 ]);
      ("out-of-range terminal", [ n_terminals ]);
      ("negative terminal", [ -1 ]) ]

let prop_accepts_min_sentences =
  QCheck.Test.make ~name:"runner accepts minimal sentences (conflict-free)"
    ~count:100 (QCheck.make Test_analysis.gen_spec) (fun source ->
      let g = Spec_parser.grammar_of_string_exn source in
      let a = Analysis.make g in
      let t = Parse_table.build ~analysis:a g in
      if Parse_table.conflicts t <> [] then true
      else if not (Analysis.productive a (Grammar.start g)) then true
      else begin
        let sentence =
          Analysis.min_sentence a [ Symbol.Nonterminal (Grammar.start g) ]
        in
        match Runner.parse t sentence with
        | Ok d -> Derivation.validate g d
        | Error _ -> false
      end)

let suite =
  ( "runner",
    [ Alcotest.test_case "calculator assoc and prec" `Quick
        test_calculator_assoc_prec;
      Alcotest.test_case "roundtrip leaves" `Quick test_roundtrip_leaves;
      Alcotest.test_case "dangling else default shift" `Quick
        test_dangling_else_default_shift;
      Alcotest.test_case "error reporting" `Quick test_error_reporting;
      Alcotest.test_case "invalid tokens rejected" `Quick
        test_invalid_tokens_rejected;
      QCheck_alcotest.to_alcotest prop_accepts_min_sentences ] )
