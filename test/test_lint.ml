(* The grammar lint engine: rule-by-rule unit tests on crafted grammars,
   conflict classification, enable/disable, JSON rendering, and the
   corpus-wide golden transcript. *)

open Cfg
open Automaton

let table_of source =
  match Spec_parser.grammar_of_string source with
  | Ok g -> Parse_table.build g
  | Error msg -> Alcotest.failf "grammar did not parse: %s" msg

let codes diags = List.map (fun d -> d.Cex_lint.Diagnostic.code) diags

let diags_with code diags =
  List.filter (fun d -> d.Cex_lint.Diagnostic.code = code) diags

let check_fires name code source =
  let diags = Cex_lint.Lint.run (table_of source) in
  Alcotest.(check bool) name true (diags_with code diags <> [])

let check_silent name code source =
  let diags = Cex_lint.Lint.run (table_of source) in
  Alcotest.(check (list string)) name [] (codes (diags_with code diags))

(* ------------------------------------------------------------------ *)
(* Hygiene rules. *)

let test_unreachable () =
  check_fires "unreachable fires" "unreachable-nonterminal"
    "%start a\na : X ;\nb : Y ;";
  check_silent "all reachable" "unreachable-nonterminal"
    "%start a\na : X b ;\nb : Y ;"

let test_unproductive () =
  let diags =
    Cex_lint.Lint.run (table_of "%start a\na : X | b ;\nb : Y b ;")
  in
  match diags_with "unproductive-nonterminal" diags with
  | [ d ] ->
    (* b is reachable, so the diagnostic escalates to error severity. *)
    Alcotest.(check string)
      "reachable unproductive is an error" "error"
      (Cex_lint.Diagnostic.severity_string d.Cex_lint.Diagnostic.severity)
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let test_unproductive_unreachable_warning () =
  (* Unreachable *and* unproductive: a dead definition, warning only. *)
  let diags =
    Cex_lint.Lint.run (table_of "%start a\na : X ;\nb : Y b ;")
  in
  match diags_with "unproductive-nonterminal" diags with
  | [ d ] ->
    Alcotest.(check string)
      "unreachable unproductive is a warning" "warning"
      (Cex_lint.Diagnostic.severity_string d.Cex_lint.Diagnostic.severity)
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let test_useless_production () =
  (* a itself is productive (via X) but its second alternative mentions the
     unproductive b, so that production can never be reduced. *)
  check_fires "useless production fires" "useless-production"
    "%start a\na : X | b Z ;\nb : Y b ;";
  check_silent "productive rhs" "useless-production" "%start a\na : X ;"

let test_unused_terminal () =
  check_fires "unused %token fires" "unused-terminal"
    "%token X NEVER\n%start a\na : X ;";
  check_silent "all terminals used" "unused-terminal"
    "%token X\n%start a\na : X ;";
  (* A terminal referenced only as a %prec tag is used, not dead. *)
  check_silent "%prec tag counts as a use" "unused-terminal"
    "%left UMINUS\n%start a\na : X %prec UMINUS ;"

let test_duplicate_production () =
  let diags =
    Cex_lint.Lint.run (table_of "%start a\na : X Y ;\na : X Y ;")
  in
  match diags_with "duplicate-production" diags with
  | [ d ] ->
    Alcotest.(check string)
      "duplicate is an error" "error"
      (Cex_lint.Diagnostic.severity_string d.Cex_lint.Diagnostic.severity)
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let test_overlapping_production () =
  check_fires "overlap across nonterminals fires" "overlapping-production"
    "%start s\ns : a | b ;\na : X Y ;\nb : X Y ;";
  (* Unit chains and epsilon alternatives are idiomatic, not overlap. *)
  check_silent "unit chains excluded" "overlapping-production"
    "%start s\ns : a | b ;\na : X ;\nb : X ;"

let test_cyclic () =
  check_fires "direct cycle fires" "cyclic-nonterminal" "%start a\na : a | X ;";
  check_fires "cycle through nullable sibling fires" "cyclic-nonterminal"
    "%start a\na : n a | X ;\nn : ;";
  check_silent "guarded recursion is no cycle" "cyclic-nonterminal"
    "%start a\na : X a | Y ;"

let test_nullable_injection () =
  (* The BV10 shape: two alternatives equal after erasing the nullable n. *)
  let diags =
    Cex_lint.Lint.run
      (table_of "%start a\na : X Y | X n Y ;\nn : | Z ;")
  in
  (match diags_with "nullable-injection" diags with
  | [ d ] ->
    Alcotest.(check string)
      "nullable injection is an error" "error"
      (Cex_lint.Diagnostic.severity_string d.Cex_lint.Diagnostic.severity)
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds));
  check_silent "no injection without nullable" "nullable-injection"
    "%start a\na : X Y | X Z Y ;"

let test_sql2_nullable_injection () =
  (* The corpus's SQL.2 BV10 grammar is the motivating instance. *)
  let table = Parse_table.build (Corpus.grammar (Corpus.find "SQL.2")) in
  let diags = Cex_lint.Lint.run table in
  Alcotest.(check bool)
    "SQL.2 triggers nullable-injection" true
    (diags_with "nullable-injection" diags <> [])

(* ------------------------------------------------------------------ *)
(* Conflict classification. *)

let dangling_else_source =
  "%start stmt\nstmt : IF expr THEN stmt | IF expr THEN stmt ELSE stmt | \
   OTHER ;\nexpr : E ;"

let test_classify_dangling_else () =
  let table = table_of dangling_else_source in
  let report = Cex_lint.Lint.report table in
  (match report.Cex_lint.Lint.classifications with
  | [ (c, code) ] ->
    Alcotest.(check string) "classified dangling-else" "dangling-else" code;
    Alcotest.(check bool) "shift/reduce" true (Conflict.is_shift_reduce c)
  | l -> Alcotest.failf "expected one conflict, got %d" (List.length l));
  Alcotest.(check bool)
    "dangling-else diagnostic emitted" true
    (diags_with "dangling-else" report.Cex_lint.Lint.diagnostics <> [])

let test_classify_prec_resolvable () =
  let table = table_of "%start e\ne : e PLUS e | N ;" in
  let report = Cex_lint.Lint.report table in
  Alcotest.(check bool) "has conflicts" true
    (report.Cex_lint.Lint.classifications <> []);
  List.iter
    (fun (_, code) ->
      Alcotest.(check string) "classified prec-resolvable" "prec-resolvable"
        code)
    report.Cex_lint.Lint.classifications

let test_classify_rr_overlap () =
  let table =
    table_of "%start s\ns : a T | b T ;\na : X Y ;\nb : X Y ;"
  in
  let report = Cex_lint.Lint.report table in
  Alcotest.(check bool)
    "an rr-overlap classification exists" true
    (List.exists
       (fun (_, code) -> code = "rr-overlap")
       report.Cex_lint.Lint.classifications)

let test_precedence_resolved_diagnostic () =
  let diags =
    Cex_lint.Lint.run (table_of "%left PLUS\n%start e\ne : e PLUS e | N ;")
  in
  Alcotest.(check bool)
    "silent precedence decision surfaced" true
    (diags_with "precedence-resolved" diags <> [])

let test_every_conflict_classified () =
  (* Acceptance: over the whole corpus, every conflict carries either a
     conflict-group rule code or "unclassified". *)
  let conflict_codes =
    List.filter_map
      (fun (r : Cex_lint.Lint.rule) ->
        if r.Cex_lint.Lint.group = Cex_lint.Lint.Conflicts then
          Some r.Cex_lint.Lint.code
        else None)
      Cex_lint.Lint.rules
  in
  List.iter
    (fun (row : Evaluation.Lint_summary.row) ->
      List.iter
        (fun (_, code) ->
          Alcotest.(check bool)
            (Fmt.str "%s: %s is a conflict code"
               row.Evaluation.Lint_summary.entry.Corpus.name code)
            true
            (List.mem code conflict_codes))
        row.Evaluation.Lint_summary.report.Cex_lint.Lint.classifications)
    (Evaluation.Lint_summary.corpus_rows ())

(* ------------------------------------------------------------------ *)
(* Engine plumbing. *)

let test_enable_disable () =
  let table = table_of dangling_else_source in
  let all = Cex_lint.Lint.run table in
  Alcotest.(check bool) "dangling-else fires" true
    (diags_with "dangling-else" all <> []);
  let disabled = Cex_lint.Lint.run ~disable:[ "dangling-else" ] table in
  Alcotest.(check (list string))
    "disable removes it" []
    (codes (diags_with "dangling-else" disabled));
  let only = Cex_lint.Lint.run ~enable:[ "dangling-else" ] table in
  Alcotest.(check (list string))
    "enable restricts to it" [ "dangling-else" ] (codes only)

let test_check_codes () =
  Alcotest.(check bool)
    "known codes pass" true
    (Cex_lint.Lint.check_codes [ "dangling-else"; "unused-terminal" ] = Ok ());
  match Cex_lint.Lint.check_codes [ "no-such-rule" ] with
  | Ok () -> Alcotest.fail "expected an error for an unknown code"
  | Error msg ->
    Alcotest.(check bool) "message names the code" true
      (String.length msg > 0)

let test_rule_catalog () =
  let n = List.length Cex_lint.Lint.rules in
  Alcotest.(check bool) "at least 8 registered rules" true (n >= 8);
  let distinct =
    List.sort_uniq String.compare
      (List.map (fun (r : Cex_lint.Lint.rule) -> r.Cex_lint.Lint.code)
         Cex_lint.Lint.rules)
  in
  Alcotest.(check int) "codes are unique" n (List.length distinct)

(* ------------------------------------------------------------------ *)
(* JSON and the corpus golden transcript. *)

let corpus_json_string () =
  Cex_service.Json.to_string (Evaluation.Lint_summary.corpus_json ()) ^ "\n"

let test_corpus_json_roundtrip () =
  let s = corpus_json_string () in
  let json = Cex_service.Json.of_string s in
  Alcotest.(check bool)
    "schema_version 6" true
    (Cex_service.Json.member "schema_version" json
    = Some (Cex_service.Json.Int 6));
  Alcotest.(check string)
    "serialization is a fixed point" s
    (Cex_service.Json.to_string json ^ "\n");
  (* Acceptance: at least 8 distinct rule codes fire over the corpus. *)
  match Option.bind
          (Cex_service.Json.member "summary" json)
          (Cex_service.Json.member "codes")
  with
  | Some codes ->
    Alcotest.(check bool)
      "at least 8 distinct codes over the corpus" true
      (List.length (Cex_service.Json.keys codes) >= 8)
  | None -> Alcotest.fail "summary.codes missing"

let test_corpus_golden () =
  let golden = In_channel.with_open_text "lint.golden" In_channel.input_all in
  Alcotest.(check bool)
    "lint transcript matches test/lint.golden \
     (dune exec tools/lint_golden.exe > test/lint.golden to regenerate)"
    true
    (String.equal golden (corpus_json_string ()))

let suite =
  ( "lint",
    [ Alcotest.test_case "unreachable nonterminal" `Quick test_unreachable;
      Alcotest.test_case "unproductive escalates when reachable" `Quick
        test_unproductive;
      Alcotest.test_case "unproductive+unreachable stays warning" `Quick
        test_unproductive_unreachable_warning;
      Alcotest.test_case "useless production" `Quick test_useless_production;
      Alcotest.test_case "unused terminal" `Quick test_unused_terminal;
      Alcotest.test_case "duplicate production" `Quick
        test_duplicate_production;
      Alcotest.test_case "overlapping production" `Quick
        test_overlapping_production;
      Alcotest.test_case "cyclic nonterminal" `Quick test_cyclic;
      Alcotest.test_case "nullable injection" `Quick test_nullable_injection;
      Alcotest.test_case "SQL.2 nullable injection" `Quick
        test_sql2_nullable_injection;
      Alcotest.test_case "classify dangling-else" `Quick
        test_classify_dangling_else;
      Alcotest.test_case "classify prec-resolvable" `Quick
        test_classify_prec_resolvable;
      Alcotest.test_case "classify rr-overlap" `Quick test_classify_rr_overlap;
      Alcotest.test_case "precedence-resolved diagnostic" `Quick
        test_precedence_resolved_diagnostic;
      Alcotest.test_case "every corpus conflict classified" `Slow
        test_every_conflict_classified;
      Alcotest.test_case "enable/disable" `Quick test_enable_disable;
      Alcotest.test_case "check_codes" `Quick test_check_codes;
      Alcotest.test_case "rule catalog" `Quick test_rule_catalog;
      Alcotest.test_case "corpus JSON round-trip" `Slow
        test_corpus_json_roundtrip;
      Alcotest.test_case "corpus golden transcript" `Slow test_corpus_golden ]
  )
