open Cfg
open Cex_session

(* The session layer: injectable clocks, monotonic deadlines and the trace
   collector. Every timeout here fires at an exact simulated instant on a
   fake clock — no real sleeps anywhere in this suite. *)

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Fake clock. *)

let test_fake_clock () =
  let clock, fake = Clock.fake ~start:5.0 () in
  Alcotest.check feq "starts at start" 5.0 (Clock.now clock);
  Alcotest.check feq "no auto-advance by default" 5.0 (Clock.now clock);
  Clock.Fake.advance fake 2.0;
  Alcotest.check feq "advance" 7.0 (Clock.now clock);
  Clock.Fake.set fake 100.0;
  Alcotest.check feq "set" 100.0 (Clock.Fake.now fake);
  Clock.Fake.set_auto_advance fake 3.0;
  Alcotest.check feq "read returns pre-advance time" 100.0 (Clock.now clock);
  Alcotest.check feq "then advances" 103.0 (Clock.Fake.now fake);
  Alcotest.check feq "peek does not advance" 103.0 (Clock.Fake.now fake)

(* ------------------------------------------------------------------ *)
(* Deadlines. *)

let test_deadline_never () =
  Alcotest.(check bool) "never expires" false (Deadline.expired Deadline.never);
  Alcotest.(check bool) "unbounded" true
    (Deadline.remaining Deadline.never = None);
  Alcotest.(check bool) "no clock" true
    (Deadline.clock Deadline.never = None);
  (* consume is a no-op, not an error. *)
  Deadline.consume Deadline.never 1e9;
  Alcotest.(check bool) "still unexpired" false
    (Deadline.expired Deadline.never)

let test_deadline_wall () =
  let clock, fake = Clock.fake ~start:10.0 () in
  let d = Deadline.at clock 15.0 in
  Alcotest.(check (option feq)) "remaining" (Some 5.0) (Deadline.remaining d);
  Alcotest.(check bool) "not yet" false (Deadline.expired d);
  Clock.Fake.set fake 14.999;
  Alcotest.(check bool) "just before the instant" false (Deadline.expired d);
  (* The satellite requirement: a wall deadline fires AT the exact simulated
     instant, not one poll later. *)
  Clock.Fake.set fake 15.0;
  Alcotest.(check bool) "expired at the exact instant" true
    (Deadline.expired d);
  Deadline.consume d 1e9;
  Clock.Fake.set fake 10.0;
  Alcotest.(check bool) "consume is a no-op on wall deadlines" false
    (Deadline.expired d);
  let d' = Deadline.after clock 5.0 in
  Clock.Fake.advance fake 5.0;
  Alcotest.(check bool) "after = at (now + seconds)" true
    (Deadline.expired d')

let test_deadline_budget () =
  let clock, _fake = Clock.fake () in
  let d = Deadline.budget clock 10.0 in
  Alcotest.(check bool) "fresh budget" false (Deadline.expired d);
  Deadline.consume d 4.0;
  Alcotest.(check (option feq)) "drained" (Some 6.0) (Deadline.remaining d);
  Deadline.consume d 6.0;
  Alcotest.(check bool) "exhausted at exactly zero" true (Deadline.expired d)

let test_deadline_clamp () =
  let clock, _fake = Clock.fake () in
  (* Unbounded cumulative budget: the per-conflict timeout stands alone. *)
  let d, exhausted = Deadline.clamp Deadline.never ~clock ~seconds:5.0 in
  Alcotest.(check bool) "never is not exhausted" false exhausted;
  Alcotest.(check (option feq)) "per-conflict limit" (Some 5.0)
    (Deadline.remaining d);
  (* A smaller cumulative remainder wins over the per-conflict timeout. *)
  let b = Deadline.budget clock 3.0 in
  let d, exhausted = Deadline.clamp b ~clock ~seconds:5.0 in
  Alcotest.(check bool) "budget not exhausted" false exhausted;
  Alcotest.(check (option feq)) "clamped to the remainder" (Some 3.0)
    (Deadline.remaining d);
  (* An exhausted cumulative budget tells the caller to skip the work. *)
  Deadline.consume b 3.0;
  let _, exhausted = Deadline.clamp b ~clock ~seconds:5.0 in
  Alcotest.(check bool) "exhausted budget reported" true exhausted

let test_poll_constants () =
  Alcotest.(check int) "mask = interval - 1"
    (Deadline.poll_interval - 1) Deadline.poll_mask;
  Alcotest.(check int) "interval is a power of two" 0
    (Deadline.poll_interval land Deadline.poll_mask)

(* ------------------------------------------------------------------ *)
(* Trace collector. *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_trace_collector () =
  let c = Trace.collector () in
  let sink = Trace.collector_sink c in
  Trace.span sink "alpha" 1.5;
  Trace.span sink "alpha" 1.5;
  Trace.count sink "alpha" "x" 2;
  Trace.count sink "alpha" "x" 3;
  Trace.span sink "beta" 0.25;
  Trace.count sink "beta" "y" 1;
  match Trace.metrics c with
  | [ ("alpha", a); ("beta", b) ] ->
    Alcotest.check feq "alpha seconds accumulate" 3.0 a.Trace.seconds;
    Alcotest.(check int) "alpha spans" 2 a.Trace.spans;
    Alcotest.(check (list (pair string int))) "alpha counters accumulate"
      [ ("x", 5) ] a.Trace.counters;
    Alcotest.(check int) "beta spans" 1 b.Trace.spans;
    Alcotest.(check (list (pair string int))) "beta counters"
      [ ("y", 1) ] b.Trace.counters;
    let rendered = Format.asprintf "%a" Trace.pp_metrics (Trace.metrics c) in
    Alcotest.(check bool) "pp mentions the stage" true
      (contains_substring rendered "alpha")
  | m -> Alcotest.failf "expected two sorted stages, got %d" (List.length m)

let test_trace_timed () =
  let c = Trace.collector () in
  let sink = Trace.collector_sink c in
  let clock, _fake = Clock.fake ~auto_advance:2.0 () in
  (* Two clock reads bracket the thunk: on this fake clock the span is
     exactly 2.0 simulated seconds. *)
  let r = Trace.timed sink clock "stage" (fun () -> 42) in
  Alcotest.(check int) "thunk result" 42 r;
  match Trace.metrics c with
  | [ ("stage", m) ] ->
    Alcotest.check feq "span duration on the fake clock" 2.0 m.Trace.seconds;
    Alcotest.(check int) "one span" 1 m.Trace.spans
  | _ -> Alcotest.fail "expected one stage"

let test_null_sink () =
  (* The null sink drops everything without error. *)
  Trace.span Trace.null "s" 1.0;
  Trace.count Trace.null "s" "c" 1;
  let clock, _ = Clock.fake () in
  Alcotest.(check int) "timed still runs the thunk" 7
    (Trace.timed Trace.null clock "s" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Session construction. *)

let figure1 () =
  Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1

let test_session_artifacts () =
  let session = Session.create (figure1 ()) in
  Alcotest.(check int) "three conflicts" 3
    (List.length (Session.conflicts session));
  List.iter
    (fun c ->
      Alcotest.(check bool) "every conflict classified" true
        (Session.classification session c <> ""))
    (Session.conflicts session);
  let stages = List.map fst (Session.metrics session) in
  Alcotest.(check bool) "table_build span recorded" true
    (List.mem "table_build" stages);
  Alcotest.(check bool) "classify span recorded" true
    (List.mem "classify" stages)

let test_session_external_sink () =
  let spans = ref [] in
  let sink =
    Trace.make
      ~on_span:(fun stage _ -> spans := stage :: !spans)
      ~on_count:(fun _ _ _ -> ())
  in
  let session = Session.create ~trace:sink (figure1 ()) in
  Alcotest.(check bool) "external sink received the build span" true
    (List.mem "table_build" !spans);
  Alcotest.(check int) "no private collector" 0
    (List.length (Session.metrics session))

(* ------------------------------------------------------------------ *)
(* Deterministic timeouts through the real search code. *)

(* An already-expired per-conflict deadline must not explore a single
   configuration: the entry check fires before the loop. With auto-advance
   3.0 and the deadline at instant 2.0 the reads are scripted — [started]
   reads 0.0, the entry check reads 3.0 (expired), the stats read 6.0 — so
   the reported elapsed time is exactly 6.0 simulated seconds. *)
let test_product_search_entry_check () =
  let g = figure1 () in
  let table = Automaton.Parse_table.build g in
  let lalr = Automaton.Parse_table.lalr table in
  let c = List.hd (Automaton.Parse_table.conflicts table) in
  let path =
    Option.get
      (Cex.Lookahead_path.find lalr ~conflict_state:c.Automaton.Conflict.state
         ~reduce_item:(Automaton.Conflict.reduce_item c)
         ~terminal:c.Automaton.Conflict.terminal)
  in
  let clock, _fake = Clock.fake ~auto_advance:3.0 () in
  match
    Cex.Product_search.search
      ~deadline:(Deadline.at clock 2.0)
      lalr ~conflict:c
      ~path_states:(Cex.Lookahead_path.states_on_path path)
  with
  | Cex.Product_search.Timeout stats ->
    Alcotest.(check int) "no configuration explored" 0
      stats.Cex.Product_search.configs_explored;
    Alcotest.check feq "elapsed at the exact simulated instant" 6.0
      stats.Cex.Product_search.elapsed
  | Cex.Product_search.Unifying _ | Cex.Product_search.Exhausted _ ->
    Alcotest.fail "expired deadline must time out"

(* The cumulative budget mid-batch: on a fake clock where every read costs
   10 simulated seconds, the first conflict blows through both its 5 s
   per-conflict deadline (Search_timeout) and the 15 s cumulative budget —
   so the driver must skip the remaining conflicts outright. No wall-clock
   time passes. *)
let test_cumulative_budget_mid_batch () =
  let clock, _fake = Clock.fake ~auto_advance:10.0 () in
  let session = Session.create ~clock (figure1 ()) in
  let options =
    { Cex.Driver.default_options with
      Cex.Driver.per_conflict_timeout = 5.0;
      cumulative_timeout = 15.0 }
  in
  let r = Cex.Driver.analyze_session ~options session in
  Alcotest.(check (list string))
    "first conflict times out, the rest are skipped"
    [ "search_timeout"; "skipped_search"; "skipped_search" ]
    (List.map
       (fun cr ->
         match cr.Cex.Driver.outcome with
         | Cex.Driver.Found_unifying -> "found_unifying"
         | Cex.Driver.No_unifying_exists -> "no_unifying_exists"
         | Cex.Driver.Search_timeout -> "search_timeout"
         | Cex.Driver.Skipped_search -> "skipped_search"
         | Cex.Driver.Search_crashed -> "search_crashed")
       r.Cex.Driver.conflict_reports);
  Alcotest.(check int) "one timeout" 1 (Cex.Driver.n_timeout r);
  Alcotest.(check int) "two skipped" 2 (Cex.Driver.n_skipped r);
  (* Even skipped conflicts carry a nonunifying counterexample. *)
  List.iter
    (fun cr ->
      Alcotest.(check bool) "nonunifying fallback attached" true
        (cr.Cex.Driver.counterexample <> None))
    r.Cex.Driver.conflict_reports

(* Control: the same driver and grammar on a frozen fake clock (no
   auto-advance) never times out — proof the timeouts above came from the
   simulated time, not from the machinery. *)
let test_frozen_clock_never_times_out () =
  let clock, _fake = Clock.fake () in
  let session = Session.create ~clock (figure1 ()) in
  let r = Cex.Driver.analyze_session session in
  Alcotest.(check int) "all unifying" 3 (Cex.Driver.n_unifying r);
  Alcotest.(check int) "no timeouts" 0 (Cex.Driver.n_timeout r);
  Alcotest.check feq "zero simulated elapsed time" 0.0
    r.Cex.Driver.total_elapsed

let suite =
  ( "session",
    [ Alcotest.test_case "fake clock" `Quick test_fake_clock;
      Alcotest.test_case "deadline: never" `Quick test_deadline_never;
      Alcotest.test_case "deadline: wall, exact instant" `Quick
        test_deadline_wall;
      Alcotest.test_case "deadline: consumable budget" `Quick
        test_deadline_budget;
      Alcotest.test_case "deadline: clamp" `Quick test_deadline_clamp;
      Alcotest.test_case "deadline: poll constants" `Quick
        test_poll_constants;
      Alcotest.test_case "trace: collector" `Quick test_trace_collector;
      Alcotest.test_case "trace: timed spans" `Quick test_trace_timed;
      Alcotest.test_case "trace: null sink" `Quick test_null_sink;
      Alcotest.test_case "session: artifacts" `Quick test_session_artifacts;
      Alcotest.test_case "session: external sink" `Quick
        test_session_external_sink;
      Alcotest.test_case "product search: entry check" `Quick
        test_product_search_entry_check;
      Alcotest.test_case "cumulative budget mid-batch" `Quick
        test_cumulative_budget_mid_batch;
      Alcotest.test_case "frozen clock control" `Quick
        test_frozen_clock_never_times_out ] )
