open Cfg
open Automaton

(* Budgets kept small: these tests check structural invariants, not timing. *)
let test_options =
  { Cex.Driver.default_options with
    Cex.Driver.per_conflict_timeout = 1.0;
    cumulative_timeout = 10.0 }

let test_all_parse () =
  List.iter
    (fun e ->
      match Spec_parser.grammar_of_string e.Corpus.source with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s does not parse: %s" e.Corpus.name msg)
    (Corpus.all ())

let test_bases_conflict_free () =
  List.iter
    (fun (name, source) ->
      let g = Spec_parser.grammar_of_string_exn source in
      let table = Parse_table.build g in
      Alcotest.(check int)
        (name ^ " base has no conflicts")
        0
        (List.length (Parse_table.conflicts table)))
    [ ("sql", Corpus.Sql_grammars.base);
      ("pascal", Corpus.Pascal_grammars.base);
      ("c", Corpus.C_grammars.base);
      ("java", Corpus.Java_grammars.base) ]

let test_every_entry_has_conflicts () =
  List.iter
    (fun e ->
      let g = Corpus.grammar e in
      let table = Parse_table.build g in
      Alcotest.(check bool)
        (e.Corpus.name ^ " has conflicts")
        true
        (Parse_table.conflicts table <> []))
    (Corpus.all ())

(* The central soundness check of the whole reproduction: every unifying
   counterexample reported on the corpus is confirmed ambiguous by the
   independent chart parser, and every counterexample is structurally
   valid. *)
let check_entry e =
  let g = Corpus.grammar e in
  let session = Cex_session.Session.create g in
  let report = Cex.Driver.analyze_session ~options:test_options session in
  let earley = Earley.make g in
  let unifying_found = ref false in
  List.iter
    (fun cr ->
      match cr.Cex.Driver.counterexample with
      | None -> Alcotest.failf "%s: conflict without counterexample" e.Corpus.name
      | Some (Cex.Driver.Unifying u) ->
        unifying_found := true;
        Alcotest.(check bool)
          (Fmt.str "%s: deriv1 valid" e.Corpus.name)
          true
          (Derivation.validate g u.Cex.Product_search.deriv1);
        Alcotest.(check bool)
          (Fmt.str "%s: deriv2 valid" e.Corpus.name)
          true
          (Derivation.validate g u.Cex.Product_search.deriv2);
        Alcotest.(check bool)
          (Fmt.str "%s: derivations distinct" e.Corpus.name)
          false
          (Derivation.equal u.Cex.Product_search.deriv1
             u.Cex.Product_search.deriv2);
        (* Chart validation is exponential-ish on long forms; skip monsters. *)
        if List.length u.Cex.Product_search.form <= 16 then
          Alcotest.(check bool)
            (Fmt.str "%s: chart-ambiguous (%a)" e.Corpus.name
               (Grammar.pp_symbols g) u.Cex.Product_search.form)
            true
            (Earley.ambiguous_from earley
               ~start:(Symbol.Nonterminal u.Cex.Product_search.nonterminal)
               u.Cex.Product_search.form)
      | Some (Cex.Driver.Nonunifying nu) ->
        (* Both sentential forms must be derivable from the start symbol. *)
        let start = Symbol.Nonterminal (Grammar.start g) in
        let form1 =
          nu.Cex.Nonunifying.prefix @ nu.Cex.Nonunifying.reduce_continuation
        in
        let form2 =
          nu.Cex.Nonunifying.prefix @ nu.Cex.Nonunifying.other_continuation
        in
        if List.length form1 <= 16 then
          Alcotest.(check bool)
            (Fmt.str "%s: reduce side derivable" e.Corpus.name)
            true
            (Earley.derives earley ~start form1);
        if List.length form2 <= 16 then
          Alcotest.(check bool)
            (Fmt.str "%s: other side derivable" e.Corpus.name)
            true
            (Earley.derives earley ~start form2))
    report.Cex.Driver.conflict_reports;
  (* Unambiguous grammars must never get a unifying counterexample; for
     ambiguous ones we expect at least one, except the known hard cases. *)
  if not e.Corpus.ambiguous then
    Alcotest.(check bool)
      (e.Corpus.name ^ ": no unifying counterexample on unambiguous grammar")
      false !unifying_found
  else if
    not (List.mem e.Corpus.name [ "ambfailed01"; "C.4"; "java-ext1"; "java-ext2" ])
  then
    Alcotest.(check bool)
      (e.Corpus.name ^ ": ambiguity detected")
      true !unifying_found

let entry_case e =
  Alcotest.test_case e.Corpus.name
    (if e.Corpus.category = Corpus.Bv10 then `Slow else `Quick)
    (fun () -> check_entry e)

(* ambfailed01's defining property: the restricted search misses the
   ambiguity, the extended search finds it. *)
let test_ambfailed01_extended () =
  let e = Corpus.find "ambfailed01" in
  let g = Corpus.grammar e in
  let table = Parse_table.build g in
  let lalr = Parse_table.lalr table in
  List.iter
    (fun c ->
      let path =
        Option.get
          (Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
             ~reduce_item:(Conflict.reduce_item c)
             ~terminal:c.Conflict.terminal)
      in
      let path_states = Cex.Lookahead_path.states_on_path path in
      (match Cex.Product_search.search lalr ~conflict:c ~path_states with
      | Cex.Product_search.Exhausted _ -> ()
      | Cex.Product_search.Unifying _ ->
        Alcotest.fail "restricted search should miss the ambiguity"
      | Cex.Product_search.Timeout _ ->
        Alcotest.fail "restricted search should exhaust");
      match
        Cex.Product_search.search ~extended:true lalr ~conflict:c ~path_states
      with
      | Cex.Product_search.Unifying (u, _) ->
        let earley = Earley.make g in
        Alcotest.(check bool) "extended counterexample is real" true
          (Earley.ambiguous_from earley
             ~start:(Symbol.Nonterminal u.Cex.Product_search.nonterminal)
             u.Cex.Product_search.form)
      | Cex.Product_search.Timeout _ | Cex.Product_search.Exhausted _ ->
        Alcotest.fail "extended search should find the ambiguity")
    (Parse_table.conflicts table)

(* C.4's defining property: the sizeof ambiguity requires so long a unit
   chain that the default budget times out. *)
let test_c4_times_out () =
  let e = Corpus.find "C.4" in
  let g = Corpus.grammar e in
  let report =
    Cex.Driver.analyze
      ~options:
        { test_options with Cex.Driver.per_conflict_timeout = 0.5 }
      g
  in
  ignore g;
  Alcotest.(check bool) "times out" true (Cex.Driver.n_timeout report > 0)

(* The stress tier is a pure function of the index: regeneration is
   byte-identical (the whole point of never committing the grammars), the
   bands cycle round-robin, and the ambiguous band really carries
   conflicts. *)
let test_stress_deterministic () =
  let digests n =
    List.map
      (fun (_, g) -> Cex_service.Cache.digest g)
      (List.of_seq (Corpus.Stress.seq n))
  in
  Alcotest.(check (list string))
    "two generations are byte-identical" (digests 24) (digests 24);
  List.iter
    (fun i ->
      let name, _ = Corpus.Stress.entry i in
      Alcotest.(check string) "name embeds band and index"
        (Printf.sprintf "stress-%s-%d" (Corpus.Stress.band_of i).Corpus.Stress.band_name i)
        name;
      (* the source renders back to the same grammar *)
      let g = Cfg.Spec_parser.grammar_of_string_exn (Corpus.Stress.source i) in
      Alcotest.(check string) "source round-trips to the same digest"
        (Cex_service.Cache.digest (snd (Corpus.Stress.entry i)))
        (Cex_service.Cache.digest g))
    [ 0; 1; 2; 3; 17 ];
  (* band 3 ("ambiguous") forces the binary-operator core *)
  let _, g = Corpus.Stress.entry 3 in
  let table = Cex_session.Session.table (Cex_session.Session.create g) in
  Alcotest.(check bool) "ambiguous band has conflicts" true
    (Automaton.Parse_table.conflicts table <> [])

let suite =
  ( "corpus",
    [ Alcotest.test_case "all entries parse" `Quick test_all_parse;
      Alcotest.test_case "stress tier deterministic" `Quick
        test_stress_deterministic;
      Alcotest.test_case "bases conflict-free" `Quick test_bases_conflict_free;
      Alcotest.test_case "every entry has conflicts" `Quick
        test_every_entry_has_conflicts;
      Alcotest.test_case "ambfailed01 restricted vs extended" `Quick
        test_ambfailed01_extended;
      Alcotest.test_case "C.4 times out" `Quick test_c4_times_out ]
    @ List.map entry_case
        (List.filter
           (fun e -> e.Corpus.name <> "Java.2" (* 720 conflicts: too slow here *))
           (Corpus.all ())) )
