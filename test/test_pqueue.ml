let drain q =
  let rec go q acc =
    match Cex.Pqueue.pop q with
    | None -> List.rev acc
    | Some (p, v, q') -> go q' ((p, v) :: acc)
  in
  go q []

let test_ordering () =
  let q =
    List.fold_left
      (fun q (p, v) -> Cex.Pqueue.add q p v)
      Cex.Pqueue.empty
      [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ]
  in
  Alcotest.(check (list string))
    "sorted by priority"
    [ "a"; "b"; "c"; "d"; "e" ]
    (List.map snd (drain q))

let test_fifo_ties () =
  let q =
    List.fold_left
      (fun q v -> Cex.Pqueue.add q 7 v)
      Cex.Pqueue.empty [ "first"; "second"; "third" ]
  in
  Alcotest.(check (list string))
    "equal priorities pop in insertion order"
    [ "first"; "second"; "third" ]
    (List.map snd (drain q))

let test_persistence () =
  let q1 = Cex.Pqueue.add Cex.Pqueue.empty 1 "x" in
  let q2 = Cex.Pqueue.add q1 0 "y" in
  (* Popping q2 must not affect q1. *)
  (match Cex.Pqueue.pop q2 with
  | Some (0, "y", _) -> ()
  | _ -> Alcotest.fail "expected y first from q2");
  match Cex.Pqueue.pop q1 with
  | Some (1, "x", rest) ->
    Alcotest.(check bool) "q1 had one element" true (Cex.Pqueue.is_empty rest)
  | _ -> Alcotest.fail "q1 disturbed by operations on q2"

let test_size () =
  let q = Cex.Pqueue.add (Cex.Pqueue.add Cex.Pqueue.empty 2 'a') 1 'b' in
  Alcotest.(check int) "size" 2 (Cex.Pqueue.size q);
  Alcotest.(check bool) "not empty" false (Cex.Pqueue.is_empty q)

let prop_heap_sort =
  QCheck.Test.make ~name:"pqueue drains in nondecreasing priority order"
    ~count:300
    QCheck.(small_list small_int)
    (fun priorities ->
      let q =
        List.fold_left
          (fun q p -> Cex.Pqueue.add q p p)
          Cex.Pqueue.empty priorities
      in
      let drained = List.map fst (drain q) in
      drained = List.sort Int.compare priorities)

(* The searches moved from the persistent Pqueue to the mutable
   Bucket_queue, whose observable contract is "identical pop order". The
   equivalence golden pins that for real searches; this property pins it
   for arbitrary interleavings of adds and pops. An operation [Some p]
   adds (p, serial number); [None] pops from both queues and demands the
   same (priority, value) pair. *)
let prop_bucket_matches_pqueue =
  QCheck.Test.make
    ~name:"bucket queue pops in the same order as pqueue" ~count:300
    QCheck.(small_list (option (int_bound 40)))
    (fun ops ->
      let bq = Cex.Bucket_queue.create () in
      let pq = ref Cex.Pqueue.empty in
      let serial = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some p ->
            incr serial;
            Cex.Bucket_queue.add bq p !serial;
            pq := Cex.Pqueue.add !pq p !serial;
            true
          | None -> (
            match (Cex.Bucket_queue.pop bq, Cex.Pqueue.pop !pq) with
            | None, None -> true
            | Some (bp, bv), Some (pp, pv, pq') ->
              pq := pq';
              bp = pp && bv = pv
            | _ -> false))
        ops
      && Cex.Bucket_queue.size bq = Cex.Pqueue.size !pq)

let suite =
  ( "pqueue",
    [ Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
      Alcotest.test_case "persistence" `Quick test_persistence;
      Alcotest.test_case "size" `Quick test_size;
      QCheck_alcotest.to_alcotest prop_heap_sort;
      QCheck_alcotest.to_alcotest prop_bucket_matches_pqueue ] )
