open Cfg

(* The driver's outcome classification and budget accounting. *)

let analyze ?options name =
  Cex.Driver.analyze ?options (Corpus.grammar (Corpus.find name))

let outcomes r =
  List.map (fun cr -> cr.Cex.Driver.outcome) r.Cex.Driver.conflict_reports

let has_counterexamples r =
  List.for_all
    (fun cr -> cr.Cex.Driver.counterexample <> None)
    r.Cex.Driver.conflict_reports

(* figure1: all three conflicts are ambiguities with fast unifying
   counterexamples. *)
let test_found_unifying () =
  let r = analyze "figure1" in
  Alcotest.(check (list bool))
    "all unifying"
    [ true; true; true ]
    (List.map (fun o -> o = Cex.Driver.Found_unifying) (outcomes r));
  Alcotest.(check int) "n_unifying" 3 (Cex.Driver.n_unifying r);
  Alcotest.(check int) "n_timeout" 0 (Cex.Driver.n_timeout r)

(* figure3 is LR(2): the conflict is not an ambiguity, the restricted search
   exhausts, and a nonunifying counterexample is attached. *)
let test_no_unifying_exists () =
  let r = analyze "figure3" in
  Alcotest.(check (list bool))
    "exhausted" [ true ]
    (List.map (fun o -> o = Cex.Driver.No_unifying_exists) (outcomes r));
  Alcotest.(check int) "n_nonunifying" 1 (Cex.Driver.n_nonunifying r);
  Alcotest.(check bool) "nonunifying attached" true (has_counterexamples r)

(* A zero configuration budget forces the unifying search to give up
   immediately (deterministically, unlike a zero time limit); the driver
   must degrade to nonunifying counterexamples. *)
let test_search_timeout () =
  let options =
    { Cex.Driver.default_options with Cex.Driver.max_configs = 0 }
  in
  let r = analyze ~options "figure1" in
  Alcotest.(check (list bool))
    "all timed out"
    [ true; true; true ]
    (List.map (fun o -> o = Cex.Driver.Search_timeout) (outcomes r));
  Alcotest.(check int) "counted as timeouts" 3 (Cex.Driver.n_timeout r);
  Alcotest.(check bool) "nonunifying fallback attached" true
    (has_counterexamples r)

(* An exhausted cumulative budget skips the unifying search outright. *)
let test_skipped_search () =
  let options =
    { Cex.Driver.default_options with Cex.Driver.cumulative_timeout = 0.0 }
  in
  let r = analyze ~options "figure1" in
  Alcotest.(check (list bool))
    "all skipped"
    [ true; true; true ]
    (List.map (fun o -> o = Cex.Driver.Skipped_search) (outcomes r));
  Alcotest.(check int) "counted as skipped" 3 (Cex.Driver.n_skipped r);
  Alcotest.(check int) "not counted as timeouts" 0 (Cex.Driver.n_timeout r);
  Alcotest.(check bool) "nonunifying fallback attached" true
    (has_counterexamples r)

(* The cumulative-budget clamp: C.4's single conflict times out even at the
   paper's 5 s limit, so without clamping the driver would spend the full
   per-conflict budget and overshoot a small cumulative budget by seconds.
   With the clamp the conflict gets only the remaining cumulative budget. *)
let test_cumulative_clamp () =
  let options =
    { Cex.Driver.default_options with
      Cex.Driver.per_conflict_timeout = 30.0;
      cumulative_timeout = 0.3 }
  in
  let g = Corpus.grammar (Corpus.find "C.4") in
  let now () = Cex_session.Clock.now Cex_session.Clock.system in
  let started = now () in
  let r = Cex.Driver.analyze ~options g in
  let wall = now () -. started in
  Alcotest.(check int) "one conflict" 1
    (List.length r.Cex.Driver.conflict_reports);
  Alcotest.(check (list bool))
    "timed out at the clamped limit" [ true ]
    (List.map (fun o -> o = Cex.Driver.Search_timeout) (outcomes r));
  (* Generous bound: table build + clamped search + nonunifying fallback.
     Without the clamp this takes > 30 s. *)
  Alcotest.(check bool)
    (Printf.sprintf "no overshoot (wall %.2fs)" wall)
    true (wall < 10.0)

(* Grammar with no conflicts: an empty, instant report. *)
let test_no_conflicts () =
  let g = Spec_parser.grammar_of_string_exn "s : A s B | C ;" in
  let r = Cex.Driver.analyze g in
  Alcotest.(check int) "no conflicts" 0
    (List.length r.Cex.Driver.conflict_reports);
  Alcotest.(check int) "no timeouts" 0 (Cex.Driver.n_timeout r)

let suite =
  ( "driver",
    [ Alcotest.test_case "found-unifying" `Quick test_found_unifying;
      Alcotest.test_case "no-unifying-exists" `Quick test_no_unifying_exists;
      Alcotest.test_case "search-timeout" `Quick test_search_timeout;
      Alcotest.test_case "skipped-search" `Quick test_skipped_search;
      Alcotest.test_case "cumulative-clamp" `Slow test_cumulative_clamp;
      Alcotest.test_case "no-conflicts" `Quick test_no_conflicts ] )
