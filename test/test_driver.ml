open Cfg

(* The driver's outcome classification and budget accounting. *)

let analyze ?options name =
  Cex.Driver.analyze ?options (Corpus.grammar (Corpus.find name))

let outcomes r =
  List.map (fun cr -> cr.Cex.Driver.outcome) r.Cex.Driver.conflict_reports

let has_counterexamples r =
  List.for_all
    (fun cr -> cr.Cex.Driver.counterexample <> None)
    r.Cex.Driver.conflict_reports

(* figure1: all three conflicts are ambiguities with fast unifying
   counterexamples. *)
let test_found_unifying () =
  let r = analyze "figure1" in
  Alcotest.(check (list bool))
    "all unifying"
    [ true; true; true ]
    (List.map (fun o -> o = Cex.Driver.Found_unifying) (outcomes r));
  Alcotest.(check int) "n_unifying" 3 (Cex.Driver.n_unifying r);
  Alcotest.(check int) "n_timeout" 0 (Cex.Driver.n_timeout r)

(* figure3 is LR(2): the conflict is not an ambiguity, the restricted search
   exhausts, and a nonunifying counterexample is attached. *)
let test_no_unifying_exists () =
  let r = analyze "figure3" in
  Alcotest.(check (list bool))
    "exhausted" [ true ]
    (List.map (fun o -> o = Cex.Driver.No_unifying_exists) (outcomes r));
  Alcotest.(check int) "n_nonunifying" 1 (Cex.Driver.n_nonunifying r);
  Alcotest.(check bool) "nonunifying attached" true (has_counterexamples r)

(* A zero configuration budget forces the unifying search to give up
   immediately (deterministically, unlike a zero time limit); the driver
   must degrade to nonunifying counterexamples. *)
let test_search_timeout () =
  let options =
    { Cex.Driver.default_options with Cex.Driver.max_configs = 0 }
  in
  let r = analyze ~options "figure1" in
  Alcotest.(check (list bool))
    "all timed out"
    [ true; true; true ]
    (List.map (fun o -> o = Cex.Driver.Search_timeout) (outcomes r));
  Alcotest.(check int) "counted as timeouts" 3 (Cex.Driver.n_timeout r);
  Alcotest.(check bool) "nonunifying fallback attached" true
    (has_counterexamples r)

(* An exhausted cumulative budget skips the unifying search outright. *)
let test_skipped_search () =
  let options =
    { Cex.Driver.default_options with Cex.Driver.cumulative_timeout = 0.0 }
  in
  let r = analyze ~options "figure1" in
  Alcotest.(check (list bool))
    "all skipped"
    [ true; true; true ]
    (List.map (fun o -> o = Cex.Driver.Skipped_search) (outcomes r));
  Alcotest.(check int) "counted as skipped" 3 (Cex.Driver.n_skipped r);
  Alcotest.(check int) "not counted as timeouts" 0 (Cex.Driver.n_timeout r);
  Alcotest.(check bool) "nonunifying fallback attached" true
    (has_counterexamples r)

(* The cumulative-budget clamp: C.4's single conflict times out even at the
   paper's 5 s limit, so without clamping the driver would spend the full
   per-conflict budget and overshoot a small cumulative budget by seconds.
   With the clamp the conflict gets only the remaining cumulative budget. *)
let test_cumulative_clamp () =
  let options =
    { Cex.Driver.default_options with
      Cex.Driver.per_conflict_timeout = 30.0;
      cumulative_timeout = 0.3 }
  in
  let g = Corpus.grammar (Corpus.find "C.4") in
  let now () = Cex_session.Clock.now Cex_session.Clock.system in
  let started = now () in
  let r = Cex.Driver.analyze ~options g in
  let wall = now () -. started in
  Alcotest.(check int) "one conflict" 1
    (List.length r.Cex.Driver.conflict_reports);
  Alcotest.(check (list bool))
    "timed out at the clamped limit" [ true ]
    (List.map (fun o -> o = Cex.Driver.Search_timeout) (outcomes r));
  (* Generous bound: table build + clamped search + nonunifying fallback.
     Without the clamp this takes > 30 s. *)
  Alcotest.(check bool)
    (Printf.sprintf "no overshoot (wall %.2fs)" wall)
    true (wall < 10.0)

(* ------------------------------------------------------------------ *)
(* Conflict-level fan-out: determinism and deadline behavior. *)

let zeroed_report name r =
  Cex_service.Json.to_string
    (Cex_service.Json.map_floats (fun _ -> 0.0)
       (Cex_service.Json_report.report_to_json ~name r))

(* stackovf10 has 20 conflicts, the widest fan-out in the corpus, with
   several conflicts sharing an LR state (so the path memo actually gets
   hits). The full JSON report — outcomes, counterexamples, report order,
   and every trace counter — must be byte-identical at [jobs = 1] and
   [jobs = 4] once timings are zeroed: the memoized path search emits its
   span and counters exactly once per distinct (state, item, terminal) key
   no matter which domain wins the install race. *)
let test_jobs_deterministic () =
  let g = Corpus.grammar (Corpus.find "stackovf10") in
  let run jobs =
    let session = Cex_session.Session.create g in
    zeroed_report "stackovf10" (Cex.Driver.analyze_session ~jobs session)
  in
  Alcotest.(check string) "jobs 1 = jobs 4 (zero-floated)" (run 1) (run 4)

(* A budget that is already expired when the fan-out starts: every task —
   including the ones a parallel pool never got to dequeue — must classify
   as [Skipped_search], independent of worker interleaving. The fake clock
   never advances, so this takes no wall time and cannot flake. *)
let test_expired_deadline_fanout () =
  let clock, _fake = Cex_session.Clock.fake ~start:100.0 () in
  let options =
    { Cex.Driver.default_options with Cex.Driver.cumulative_timeout = 0.0 }
  in
  let g = Corpus.grammar (Corpus.find "figure1") in
  let session = Cex_session.Session.create ~clock g in
  let r = Cex.Driver.analyze_session ~options ~jobs:4 session in
  Alcotest.(check (list bool))
    "all skipped at jobs 4"
    [ true; true; true ]
    (List.map (fun o -> o = Cex.Driver.Skipped_search) (outcomes r));
  Alcotest.(check bool) "nonunifying fallback attached" true
    (has_counterexamples r)

(* A budget that expires mid-run, on a fake clock (no real sleeps): every
   [Clock.now] advances time by 10 s against a 5 s cumulative budget, so the
   first conflict's search finds its per-conflict deadline already past on
   entry ([Search_timeout]) and drains the whole budget; the remaining
   conflicts see an exhausted budget and skip. *)
let test_budget_expires_mid_run () =
  let clock, _fake =
    Cex_session.Clock.fake ~start:0.0 ~auto_advance:10.0 ()
  in
  let options =
    { Cex.Driver.default_options with Cex.Driver.cumulative_timeout = 5.0 }
  in
  let g = Corpus.grammar (Corpus.find "figure1") in
  let session = Cex_session.Session.create ~clock g in
  let r = Cex.Driver.analyze_session ~options session in
  Alcotest.(check (list string))
    "timeout, then skips"
    [ "search_timeout"; "skipped_search"; "skipped_search" ]
    (List.map Cex_service.Json_report.outcome_string (outcomes r));
  Alcotest.(check bool) "nonunifying fallback attached" true
    (has_counterexamples r)

(* Re-analyzing the same session must reuse the memoized path searches (no
   new path_search spans) and reproduce the same conflict reports — the
   serve layer depends on this when it re-analyzes a cached session. *)
let test_memo_warm_reanalysis () =
  let stage_spans m stage =
    match List.assoc_opt stage m with
    | Some metric -> metric.Cex_session.Trace.spans
    | None -> 0
  in
  let g = Corpus.grammar (Corpus.find "figure1") in
  let session = Cex_session.Session.create g in
  let zeroed r =
    List.map
      (fun cr ->
        Cex_service.Json.to_string
          (Cex_service.Json.map_floats (fun _ -> 0.0)
             (Cex_service.Json_report.conflict_to_json g cr)))
      r.Cex.Driver.conflict_reports
  in
  let r1 = Cex.Driver.analyze_session session in
  let paths1 = stage_spans (Cex_session.Session.metrics session) "path_search" in
  let r2 = Cex.Driver.analyze_session ~jobs:4 session in
  let paths2 = stage_spans (Cex_session.Session.metrics session) "path_search" in
  Alcotest.(check bool) "first run searched paths" true (paths1 > 0);
  Alcotest.(check int) "second run is all memo hits" paths1 paths2;
  Alcotest.(check (list string))
    "identical conflict reports (zero-floated)" (zeroed r1) (zeroed r2)

(* Grammar with no conflicts: an empty, instant report. *)
let test_no_conflicts () =
  let g = Spec_parser.grammar_of_string_exn "s : A s B | C ;" in
  let r = Cex.Driver.analyze g in
  Alcotest.(check int) "no conflicts" 0
    (List.length r.Cex.Driver.conflict_reports);
  Alcotest.(check int) "no timeouts" 0 (Cex.Driver.n_timeout r)

let suite =
  ( "driver",
    [ Alcotest.test_case "found-unifying" `Quick test_found_unifying;
      Alcotest.test_case "no-unifying-exists" `Quick test_no_unifying_exists;
      Alcotest.test_case "search-timeout" `Quick test_search_timeout;
      Alcotest.test_case "skipped-search" `Quick test_skipped_search;
      Alcotest.test_case "cumulative-clamp" `Slow test_cumulative_clamp;
      Alcotest.test_case "jobs-deterministic" `Quick test_jobs_deterministic;
      Alcotest.test_case "expired-deadline-fanout" `Quick
        test_expired_deadline_fanout;
      Alcotest.test_case "budget-expires-mid-run" `Quick
        test_budget_expires_mid_run;
      Alcotest.test_case "memo-warm-reanalysis" `Quick
        test_memo_warm_reanalysis;
      Alcotest.test_case "no-conflicts" `Quick test_no_conflicts ] )
