open Cfg

(* The batch analysis service: scheduler determinism, content-addressed
   cache, and JSON reporting. *)

let dangling_else =
  {|
%start stmt
stmt : IF expr THEN stmt
     | IF expr THEN stmt ELSE stmt
     | OTHER
     ;
expr : ID ;
|}

(* ------------------------------------------------------------------ *)
(* Cache. *)

let check_counters label (expected : Cex_service.Cache.counters) actual =
  let quad (c : Cex_service.Cache.counters) =
    [ c.Cex_service.Cache.hits;
      c.Cex_service.Cache.misses;
      c.Cex_service.Cache.evictions;
      c.Cex_service.Cache.races ]
  in
  Alcotest.(check (list int)) label (quad expected) (quad actual)

let test_cache_counters () =
  let open Cex_service in
  let c : int Cache.t = Cache.create ~capacity:2 () in
  Alcotest.(check (option int)) "initial miss" None (Cache.find c "a");
  Alcotest.(check int) "built" 1 (Cache.find_or_build c "a" (fun () -> 1));
  Alcotest.(check int) "memoized, builder not rerun" 1
    (Cache.find_or_build c "a" (fun () -> 99));
  Alcotest.(check int) "second entry" 2
    (Cache.find_or_build c "b" (fun () -> 2));
  (* Capacity 2: inserting a third entry evicts the least recently used
     ("a": its last touch predates "b"'s insertion). *)
  Alcotest.(check int) "third entry evicts" 3
    (Cache.find_or_build c "c" (fun () -> 3));
  Alcotest.(check (option int)) "victim gone" None (Cache.find c "a");
  Alcotest.(check (option int)) "survivor intact" (Some 2) (Cache.find c "b");
  Alcotest.(check int) "length at capacity" 2 (Cache.length c);
  check_counters "hit/miss/eviction counters"
    { Cex_service.Cache.hits = 2; misses = 5; evictions = 1; races = 0 }
    (Cache.counters c)

let test_cache_digest () =
  let g1 = Spec_parser.grammar_of_string_exn dangling_else in
  (* Same grammar, different formatting: same content address. *)
  let reformatted =
    {|%start stmt
stmt : IF expr THEN stmt | IF expr THEN stmt ELSE stmt | OTHER ;
expr : ID ;|}
  in
  let g2 = Spec_parser.grammar_of_string_exn reformatted in
  let g3 = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  Alcotest.(check string)
    "digest ignores formatting" (Cex_service.Cache.digest g1)
    (Cex_service.Cache.digest g2);
  Alcotest.(check bool)
    "different grammars, different digests" false
    (Cex_service.Cache.digest g1 = Cex_service.Cache.digest g3)

(* Repeated analysis of the same grammar digest is served from the report
   cache (the acceptance criterion on cache counters). *)
let test_cache_hit_on_reanalysis () =
  let open Cex_service in
  let g = Spec_parser.grammar_of_string_exn dangling_else in
  let service = Scheduler.create ~jobs:1 () in
  let r1, _ = Scheduler.analyze service ~name:"first" g in
  let r2, _ = Scheduler.analyze service ~name:"second" g in
  Alcotest.(check bool) "first analysis is fresh" false
    r1.Scheduler.from_cache;
  Alcotest.(check bool) "re-analysis served from cache" true
    r2.Scheduler.from_cache;
  let counters = Scheduler.report_cache_counters service in
  Alcotest.(check int) "report cache hit recorded" 1
    counters.Cache.hits;
  Alcotest.(check bool) "same report value" true
    (r1.Scheduler.report == r2.Scheduler.report);
  check_counters "session cache: one build, no rebuild"
    { Cache.hits = 0; misses = 1; evictions = 0; races = 0 }
    (Scheduler.session_cache_counters service)

(* ------------------------------------------------------------------ *)
(* Scheduler determinism: conflict-level parallelism must not change any
   outcome or counterexample, nor the report order. *)

let normalized_batch ~jobs entries =
  let service = Cex_service.Scheduler.create ~jobs () in
  let results, _stats = Cex_service.Scheduler.analyze_batch service entries in
  Cex_service.Json.to_string
    (Cex_service.Json.map_floats
       (fun _ -> 0.0)
       (Cex_service.Json_report.batch_to_json results))

let test_determinism () =
  let entries =
    List.map
      (fun name -> (name, Corpus.grammar (Corpus.find name)))
      [ "figure1"; "SQL.1"; "SQL.2"; "SQL.3"; "SQL.4"; "SQL.5" ]
  in
  let sequential = normalized_batch ~jobs:1 entries in
  let parallel = normalized_batch ~jobs:4 entries in
  Alcotest.(check string)
    "jobs=1 and jobs=4 agree on every outcome and counterexample" sequential
    parallel

let test_scheduler_matches_driver () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let normalize r =
    Cex_service.Json.to_string
      (Cex_service.Json.map_floats
         (fun _ -> 0.0)
         (Cex_service.Json_report.report_to_json r))
  in
  (* Two independent sessions of the same grammar: the trace collectors are
     per-session, so the metrics objects (deterministic span and counter
     totals) must agree too. *)
  Alcotest.(check string)
    "parallel analyze_session equals the sequential driver"
    (normalize
       (Cex.Driver.analyze_session (Cex_session.Session.create g)))
    (normalize
       (Cex_service.Scheduler.analyze_session ~jobs:4
          (Cex_session.Session.create g)))

(* A worker crash mid-search becomes a structured Search_crashed report for
   that conflict instead of killing the whole batch; the injected trace sink
   raises from inside the product search, where only a conflict analysis
   (never session construction) can trigger it. *)
let test_crash_becomes_outcome () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let bomb =
    Cex_session.Trace.make
      ~on_span:(fun _ _ -> ())
      ~on_count:(fun stage _ _ ->
        if stage = "product.search" then failwith "injected crash")
  in
  let session = Cex_session.Session.create ~trace:bomb g in
  let report = Cex_service.Scheduler.analyze_session ~jobs:2 session in
  let n = List.length report.Cex.Driver.conflict_reports in
  Alcotest.(check bool) "figure1 has conflicts" true (n > 0);
  Alcotest.(check int) "every conflict crashed" n (Cex.Driver.n_crashed report);
  List.iter
    (fun (cr : Cex.Driver.conflict_report) ->
      Alcotest.(check bool) "outcome is Search_crashed" true
        (cr.Cex.Driver.outcome = Cex.Driver.Search_crashed);
      match cr.Cex.Driver.failure with
      | Some msg ->
        Alcotest.(check bool) "failure names the exception" true
          (contains ~sub:"injected crash" msg)
      | None -> Alcotest.fail "crashed report carries no failure")
    report.Cex.Driver.conflict_reports

let test_map_order_and_errors () =
  let doubled = Cex_service.Scheduler.map ~jobs:3 (fun x -> 2 * x)
      [ 5; 1; 4; 1; 3 ] in
  Alcotest.(check (list int)) "order preserved" [ 10; 2; 8; 2; 6 ] doubled;
  Alcotest.check_raises "worker exceptions surface in the caller"
    (Failure "boom")
    (fun () ->
      ignore
        (Cex_service.Scheduler.map ~jobs:2
           (fun x -> if x = 2 then failwith "boom" else x)
           [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* JSON. *)

let test_json_emitter () =
  let open Cex_service in
  let t =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\nd");
        ("n", Json.Int 3);
        ("f", Json.Float 0.25);
        ("bad", Json.Float Float.nan);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("empty", Json.Obj []) ]
  in
  Alcotest.(check string) "minified"
    {|{"s":"a\"b\\c\nd","n":3,"f":0.25,"bad":null,"l":[true,null],"empty":{}}|}
    (Json.to_string ~minify:true t)

let test_json_parser () =
  let open Cex_service in
  let t =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\nd\te");
        ("n", Json.Int 3);
        ("neg", Json.Int (-17));
        ("f", Json.Float 0.25);
        ("exp", Json.Float 1.5e3);
        ("l", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("empty_l", Json.List []);
        ("empty_o", Json.Obj []);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Int 2 ]) ]) ]
  in
  (* Round-trips through both renderings. *)
  let reparse s =
    match Json.of_string_opt s with
    | Some v -> v
    | None -> Alcotest.failf "parse failed on %s" s
  in
  Alcotest.(check bool) "round-trip minified" true
    (reparse (Json.to_string ~minify:true t) = t);
  Alcotest.(check bool) "round-trip indented" true
    (reparse (Json.to_string t) = t);
  Alcotest.(check bool) "unicode escape" true
    (reparse {|"a\u0041\u00e9"|} = Json.String "aA\xc3\xa9");
  (* Malformed inputs are rejected, not mangled. *)
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %s" bad)
        true
        (Json.of_string_opt bad = None))
    [ "{"; "[1,"; {|{"a" 1}|}; "tru"; {|"unterminated|}; "1 2"; "" ]

let golden =
  {|{
  "schema_version": 6,
  "stats": {
    "jobs": 1,
    "grammars": 1,
    "conflicts": 1,
    "conflict_tasks": 1,
    "wall_seconds": 0.0,
    "max_queue_depth": 1,
    "max_live_sessions": 1,
    "stages": {
      "conflict_search": 0.0,
      "table_build": 0.0
    },
    "cache": {
      "sessions": {
        "hits": 0,
        "misses": 1,
        "evictions": 0,
        "races": 0
      },
      "session_shards": [
        {
          "hits": 0,
          "misses": 1,
          "evictions": 0,
          "races": 0
        }
      ],
      "reports": {
        "hits": 0,
        "misses": 1,
        "evictions": 0,
        "races": 0
      }
    }
  },
  "grammars": [
    {
      "grammar": "dangling-else",
      "digest": "2a1de4b63d8cced128cb9455f89ded12",
      "from_cache": false,
      "summary": {
        "conflicts": 1,
        "unifying": 1,
        "nonunifying": 0,
        "timeouts": 0,
        "skipped": 0,
        "crashed": 0,
        "total_elapsed": 0.0
      },
      "metrics": {
        "classify": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {}
        },
        "path_search": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {
            "alloc_words": 0.0,
            "pops": 33,
            "relaxations": 33
          }
        },
        "product.search": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {
            "alloc_words": 0.0,
            "configs_explored": 135,
            "queue_pushes": 255
          }
        },
        "table_build": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {
            "conflicts": 1,
            "states": 10
          }
        }
      },
      "conflicts": [
        {
          "state": 7,
          "terminal": "ELSE",
          "kind": "shift_reduce",
          "classification": "dangling-else",
          "reduce_item": "stmt ::= IF expr THEN stmt •",
          "other_item": "stmt ::= IF expr THEN stmt • ELSE stmt",
          "outcome": "found_unifying",
          "engine": "product",
          "elapsed": 0.0,
          "configs_explored": 135,
          "failure": null,
          "validation": null,
          "counterexample": {
            "type": "unifying",
            "nonterminal": "stmt",
            "form": [
              "IF",
              "expr",
              "THEN",
              "IF",
              "expr",
              "THEN",
              "stmt",
              "ELSE",
              "stmt"
            ],
            "derivation_reduce": "stmt ::= [IF expr THEN stmt ::= [IF expr THEN stmt •] ELSE stmt]",
            "derivation_other": "stmt ::= [IF expr THEN stmt ::= [IF expr THEN stmt • ELSE stmt]]"
          }
        }
      ]
    }
  ]
}|}

(* The JSON report schema for the dangling-else grammar, with volatile
   timings zeroed. Guards the stability of every key the service exposes:
   conflict kind, outcome, elapsed, configs_explored, cache stats, ... *)
let test_json_golden () =
  let g = Spec_parser.grammar_of_string_exn dangling_else in
  let service = Cex_service.Scheduler.create ~jobs:1 () in
  let results, stats =
    Cex_service.Scheduler.analyze_batch service [ ("dangling-else", g) ]
  in
  let json =
    Cex_service.Json.to_string
      (Cex_service.Json.map_floats
         (fun _ -> 0.0)
         (Cex_service.Json_report.batch_to_json ~stats results))
  in
  Alcotest.(check string) "golden JSON report" golden json

(* ------------------------------------------------------------------ *)
(* The windowed streaming pipeline (PR: bounded-memory batch). *)

(* Filling a cache to exactly its capacity must evict nothing; the next
   insert evicts exactly the least recently used entry. *)
let test_lru_exact_capacity () =
  let open Cex_service in
  let c : int Cache.t = Cache.create ~capacity:3 () in
  List.iter (fun k -> Cache.set c k (Char.code k.[0])) [ "a"; "b"; "c" ];
  check_counters "full to the brim, no eviction"
    { Cache.hits = 0; misses = 0; evictions = 0; races = 0 }
    (Cache.counters c);
  Alcotest.(check int) "length equals capacity" 3 (Cache.length c);
  (* Touch "a": "b" becomes the LRU victim of the overflow insert. *)
  Alcotest.(check (option int)) "refresh a" (Some 97) (Cache.find c "a");
  Cache.set c "d" 100;
  Alcotest.(check (option int)) "victim is the LRU" None (Cache.find c "b");
  Alcotest.(check (option int)) "refreshed entry survives" (Some 97)
    (Cache.find c "a");
  Alcotest.(check int) "still at capacity" 3 (Cache.length c);
  Alcotest.(check int) "exactly one eviction" 1 (Cache.counters c).Cache.evictions

(* Sharded counters aggregate per shard and sum to the totals the
   scheduler reports. *)
let test_sharded_counter_aggregation () =
  let open Cex_service in
  let c : int Cache.Sharded.t = Cache.Sharded.create ~shards:4 ~capacity:16 () in
  let keys = List.init 12 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter (fun k -> ignore (Cache.Sharded.find_or_build c k (fun () -> 0))) keys;
  List.iter (fun k -> ignore (Cache.Sharded.find c k)) keys;
  ignore (Cache.Sharded.find c "absent");
  let per_shard = Cache.Sharded.counters c in
  Alcotest.(check int) "one counters record per shard" 4 (List.length per_shard);
  check_counters "shard totals add up"
    { Cache.hits = 12; misses = 13; evictions = 0; races = 0 }
    (Cache.sum_counters per_shard);
  Alcotest.(check int) "every build landed in some shard" 12
    (Cache.Sharded.length c)

(* find_or_build runs the builder outside the shard lock: a builder that
   re-enters the same cache must not deadlock, and a concurrent insert of
   the same key during the build is detected as a race (the first value
   wins, the losing build is discarded). *)
let test_build_outside_lock () =
  let open Cex_service in
  let c : int Cache.t = Cache.create ~capacity:8 () in
  let v =
    Cache.find_or_build c "k" (fun () ->
        (* would deadlock if the lock were held across the build *)
        Cache.set c "other" 7;
        (* another domain completes the same build first *)
        Cache.set c "k" 1;
        2)
  in
  Alcotest.(check int) "first insert wins" 1 v;
  Alcotest.(check (option int)) "cache keeps the winner" (Some 1)
    (Cache.find c "k");
  Alcotest.(check (option int)) "re-entrant insert landed" (Some 7)
    (Cache.find c "other");
  Alcotest.(check int) "duplicate build counted as a race" 1
    (Cache.counters c).Cache.races

(* shard_of: deterministic, in range, and the shards partition any corpus
   (disjoint by construction — it is a function — and covering). *)
let test_shard_partition () =
  let open Cex_service in
  let digests =
    List.init 64 (fun i ->
        Cache.digest (snd (Corpus.Stress.entry i)))
  in
  let n = 4 in
  let assignment = List.map (fun d -> Scheduler.shard_of ~digest:d ~shards:n) digests in
  List.iter
    (fun s ->
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < n))
    assignment;
  Alcotest.(check (list int)) "assignment is deterministic" assignment
    (List.map (fun d -> Scheduler.shard_of ~digest:d ~shards:n) digests);
  let population = List.init n (fun s ->
      List.length (List.filter (fun s' -> s' = s) assignment)) in
  Alcotest.(check int) "shards cover the corpus" (List.length digests)
    (List.fold_left ( + ) 0 population);
  Alcotest.(check bool) "no shard is empty over 64 grammars" true
    (List.for_all (fun p -> p > 0) population);
  List.iter
    (fun d ->
      Alcotest.(check int) "one shard degenerates to 0" 0
        (Scheduler.shard_of ~digest:d ~shards:1))
    digests

let stress_entries n = List.of_seq (Corpus.Stress.seq n)

(* Deterministic budgets: effectively-infinite wall clocks plus a config
   budget, so outcomes and counters are independent of machine speed (the
   fuzzer's recipe) — a precondition for the byte-identical window
   comparisons below. *)
let fast_options =
  { Cex.Driver.default_options with
    Cex.Driver.per_conflict_timeout = 3600.0;
    cumulative_timeout = 3600.0;
    max_configs = 2_000 }

(* The pipeline must release sessions as windows retire: the peak number of
   live (window-pinned) sessions is bounded by the window size however long
   the batch is. *)
let test_max_live_sessions_bounded () =
  let open Cex_service in
  let entries = stress_entries 12 in
  let service =
    Scheduler.create ~options:fast_options ~jobs:2 ~cache_capacity:4 ()
  in
  let _, stats = Scheduler.analyze_batch ~window:3 service entries in
  Alcotest.(check bool)
    (Printf.sprintf "peak live sessions %d bounded by window 3"
       stats.Stats.max_live_sessions)
    true
    (stats.Stats.max_live_sessions <= 3 && stats.Stats.max_live_sessions > 0)

let normalized_results results =
  Cex_service.Json.to_string
    (Cex_service.Json.map_floats
       (fun _ -> 0.0)
       (Cex_service.Json_report.batch_to_json results))

(* Streaming emission and windowing are invisible in the reports: any
   window size, streamed or collected, yields byte-identical grammar
   records in input order. *)
let test_stream_equals_batch () =
  let open Cex_service in
  let entries = stress_entries 10 in
  let collected w =
    let service = Scheduler.create ~options:fast_options ~jobs:2 () in
    let results, _ = Scheduler.analyze_batch ~window:w service entries in
    normalized_results results
  in
  let streamed w =
    let service = Scheduler.create ~options:fast_options ~jobs:2 () in
    let acc = ref [] in
    let _ =
      Scheduler.analyze_batch_emit ~window:w service
        ~emit:(fun r -> acc := r :: !acc)
        (List.to_seq entries)
    in
    normalized_results (List.rev !acc)
  in
  let reference = collected 32 in
  Alcotest.(check string) "window 1 = window 32" (collected 1) reference;
  Alcotest.(check string) "window 3 = window 32" (collected 3) reference;
  Alcotest.(check string) "streamed = collected" (streamed 4) reference

(* An intra-window duplicate digest shares its twin's report physically
   (no re-assembly, no second analysis). *)
let test_duplicate_shares_report () =
  let open Cex_service in
  let g = Spec_parser.grammar_of_string_exn dangling_else in
  let service = Scheduler.create ~jobs:1 () in
  match Scheduler.analyze_batch service [ ("one", g); ("two", g); ("three", g) ] with
  | [ r1; r2; r3 ], _ ->
    Alcotest.(check bool) "first is fresh" false r1.Scheduler.from_cache;
    Alcotest.(check bool) "twin served from the window" true
      r2.Scheduler.from_cache;
    Alcotest.(check bool) "reports physically shared (no re-assembly)" true
      (r1.Scheduler.report == r2.Scheduler.report
      && r1.Scheduler.report == r3.Scheduler.report);
    (* duplicates are recognised before the session cache is consulted:
       one build, no second lookup *)
    check_counters "single session build"
      { Cache.hits = 0; misses = 1; evictions = 0; races = 0 }
      (Scheduler.session_cache_counters service)
  | _ -> Alcotest.fail "expected three results"

(* Sharded runs partition the batch: together they analyze every grammar
   exactly once and their mergeable totals sum to the unsharded run's. *)
let test_shard_runs_partition () =
  let open Cex_service in
  let entries = stress_entries 12 in
  let run shard =
    let service = Scheduler.create ~options:fast_options ~jobs:2 () in
    fst (Scheduler.analyze_batch ?shard service entries)
  in
  let full = run None in
  let s0 = run (Some (0, 2)) and s1 = run (Some (1, 2)) in
  Alcotest.(check int) "shards cover the batch"
    (List.length full)
    (List.length s0 + List.length s1);
  let names rs = List.map (fun r -> r.Scheduler.name) rs in
  List.iter
    (fun n ->
      Alcotest.(check bool) "disjoint" false
        (List.mem n (names s0) && List.mem n (names s1)))
    (names full);
  let totals rs =
    let t = List.fold_left Scheduler.add_totals Scheduler.zero_totals rs in
    [ t.Scheduler.total_grammars; t.Scheduler.total_conflicts;
      t.Scheduler.total_unifying; t.Scheduler.total_nonunifying ]
  in
  Alcotest.(check (list int)) "merged totals equal the unsharded run"
    (totals full)
    (List.map2 ( + ) (totals s0) (totals s1))

let suite =
  ( "service",
    [ Alcotest.test_case "cache-counters" `Quick test_cache_counters;
      Alcotest.test_case "cache-digest" `Quick test_cache_digest;
      Alcotest.test_case "cache-hit-on-reanalysis" `Quick
        test_cache_hit_on_reanalysis;
      Alcotest.test_case "determinism-jobs-1-vs-4" `Slow test_determinism;
      Alcotest.test_case "scheduler-matches-driver" `Quick
        test_scheduler_matches_driver;
      Alcotest.test_case "crash-becomes-outcome" `Quick
        test_crash_becomes_outcome;
      Alcotest.test_case "map-order-and-errors" `Quick
        test_map_order_and_errors;
      Alcotest.test_case "json-emitter" `Quick test_json_emitter;
      Alcotest.test_case "json-parser" `Quick test_json_parser;
      Alcotest.test_case "json-golden" `Quick test_json_golden;
      Alcotest.test_case "lru-exact-capacity" `Quick test_lru_exact_capacity;
      Alcotest.test_case "sharded-counter-aggregation" `Quick
        test_sharded_counter_aggregation;
      Alcotest.test_case "build-outside-lock" `Quick test_build_outside_lock;
      Alcotest.test_case "shard-partition" `Quick test_shard_partition;
      Alcotest.test_case "max-live-sessions-bounded" `Quick
        test_max_live_sessions_bounded;
      Alcotest.test_case "stream-equals-batch" `Quick test_stream_equals_batch;
      Alcotest.test_case "duplicate-shares-report" `Quick
        test_duplicate_shares_report;
      Alcotest.test_case "shard-runs-partition" `Quick
        test_shard_runs_partition ] )
