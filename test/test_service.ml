open Cfg

(* The batch analysis service: scheduler determinism, content-addressed
   cache, and JSON reporting. *)

let dangling_else =
  {|
%start stmt
stmt : IF expr THEN stmt
     | IF expr THEN stmt ELSE stmt
     | OTHER
     ;
expr : ID ;
|}

(* ------------------------------------------------------------------ *)
(* Cache. *)

let check_counters label (expected : Cex_service.Cache.counters) actual =
  Alcotest.(check (triple int int int))
    label
    ( expected.Cex_service.Cache.hits,
      expected.Cex_service.Cache.misses,
      expected.Cex_service.Cache.evictions )
    ( actual.Cex_service.Cache.hits,
      actual.Cex_service.Cache.misses,
      actual.Cex_service.Cache.evictions )

let test_cache_counters () =
  let open Cex_service in
  let c : int Cache.t = Cache.create ~capacity:2 () in
  Alcotest.(check (option int)) "initial miss" None (Cache.find c "a");
  Alcotest.(check int) "built" 1 (Cache.find_or_build c "a" (fun () -> 1));
  Alcotest.(check int) "memoized, builder not rerun" 1
    (Cache.find_or_build c "a" (fun () -> 99));
  Alcotest.(check int) "second entry" 2
    (Cache.find_or_build c "b" (fun () -> 2));
  (* Capacity 2: inserting a third entry evicts the least recently used
     ("a": its last touch predates "b"'s insertion). *)
  Alcotest.(check int) "third entry evicts" 3
    (Cache.find_or_build c "c" (fun () -> 3));
  Alcotest.(check (option int)) "victim gone" None (Cache.find c "a");
  Alcotest.(check (option int)) "survivor intact" (Some 2) (Cache.find c "b");
  Alcotest.(check int) "length at capacity" 2 (Cache.length c);
  check_counters "hit/miss/eviction counters"
    { Cex_service.Cache.hits = 2; misses = 5; evictions = 1 }
    (Cache.counters c)

let test_cache_digest () =
  let g1 = Spec_parser.grammar_of_string_exn dangling_else in
  (* Same grammar, different formatting: same content address. *)
  let reformatted =
    {|%start stmt
stmt : IF expr THEN stmt | IF expr THEN stmt ELSE stmt | OTHER ;
expr : ID ;|}
  in
  let g2 = Spec_parser.grammar_of_string_exn reformatted in
  let g3 = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  Alcotest.(check string)
    "digest ignores formatting" (Cex_service.Cache.digest g1)
    (Cex_service.Cache.digest g2);
  Alcotest.(check bool)
    "different grammars, different digests" false
    (Cex_service.Cache.digest g1 = Cex_service.Cache.digest g3)

(* Repeated analysis of the same grammar digest is served from the report
   cache (the acceptance criterion on cache counters). *)
let test_cache_hit_on_reanalysis () =
  let open Cex_service in
  let g = Spec_parser.grammar_of_string_exn dangling_else in
  let service = Scheduler.create ~jobs:1 () in
  let r1, _ = Scheduler.analyze service ~name:"first" g in
  let r2, _ = Scheduler.analyze service ~name:"second" g in
  Alcotest.(check bool) "first analysis is fresh" false
    r1.Scheduler.from_cache;
  Alcotest.(check bool) "re-analysis served from cache" true
    r2.Scheduler.from_cache;
  let counters = Scheduler.report_cache_counters service in
  Alcotest.(check int) "report cache hit recorded" 1
    counters.Cache.hits;
  Alcotest.(check bool) "same report value" true
    (r1.Scheduler.report == r2.Scheduler.report);
  check_counters "session cache: one build, no rebuild"
    { Cache.hits = 0; misses = 1; evictions = 0 }
    (Scheduler.session_cache_counters service)

(* ------------------------------------------------------------------ *)
(* Scheduler determinism: conflict-level parallelism must not change any
   outcome or counterexample, nor the report order. *)

let normalized_batch ~jobs entries =
  let service = Cex_service.Scheduler.create ~jobs () in
  let results, _stats = Cex_service.Scheduler.analyze_batch service entries in
  Cex_service.Json.to_string
    (Cex_service.Json.map_floats
       (fun _ -> 0.0)
       (Cex_service.Json_report.batch_to_json results))

let test_determinism () =
  let entries =
    List.map
      (fun name -> (name, Corpus.grammar (Corpus.find name)))
      [ "figure1"; "SQL.1"; "SQL.2"; "SQL.3"; "SQL.4"; "SQL.5" ]
  in
  let sequential = normalized_batch ~jobs:1 entries in
  let parallel = normalized_batch ~jobs:4 entries in
  Alcotest.(check string)
    "jobs=1 and jobs=4 agree on every outcome and counterexample" sequential
    parallel

let test_scheduler_matches_driver () =
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let normalize r =
    Cex_service.Json.to_string
      (Cex_service.Json.map_floats
         (fun _ -> 0.0)
         (Cex_service.Json_report.report_to_json r))
  in
  (* Two independent sessions of the same grammar: the trace collectors are
     per-session, so the metrics objects (deterministic span and counter
     totals) must agree too. *)
  Alcotest.(check string)
    "parallel analyze_session equals the sequential driver"
    (normalize
       (Cex.Driver.analyze_session (Cex_session.Session.create g)))
    (normalize
       (Cex_service.Scheduler.analyze_session ~jobs:4
          (Cex_session.Session.create g)))

(* A worker crash mid-search becomes a structured Search_crashed report for
   that conflict instead of killing the whole batch; the injected trace sink
   raises from inside the product search, where only a conflict analysis
   (never session construction) can trigger it. *)
let test_crash_becomes_outcome () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let g = Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1 in
  let bomb =
    Cex_session.Trace.make
      ~on_span:(fun _ _ -> ())
      ~on_count:(fun stage _ _ ->
        if stage = "product.search" then failwith "injected crash")
  in
  let session = Cex_session.Session.create ~trace:bomb g in
  let report = Cex_service.Scheduler.analyze_session ~jobs:2 session in
  let n = List.length report.Cex.Driver.conflict_reports in
  Alcotest.(check bool) "figure1 has conflicts" true (n > 0);
  Alcotest.(check int) "every conflict crashed" n (Cex.Driver.n_crashed report);
  List.iter
    (fun (cr : Cex.Driver.conflict_report) ->
      Alcotest.(check bool) "outcome is Search_crashed" true
        (cr.Cex.Driver.outcome = Cex.Driver.Search_crashed);
      match cr.Cex.Driver.failure with
      | Some msg ->
        Alcotest.(check bool) "failure names the exception" true
          (contains ~sub:"injected crash" msg)
      | None -> Alcotest.fail "crashed report carries no failure")
    report.Cex.Driver.conflict_reports

let test_map_order_and_errors () =
  let doubled = Cex_service.Scheduler.map ~jobs:3 (fun x -> 2 * x)
      [ 5; 1; 4; 1; 3 ] in
  Alcotest.(check (list int)) "order preserved" [ 10; 2; 8; 2; 6 ] doubled;
  Alcotest.check_raises "worker exceptions surface in the caller"
    (Failure "boom")
    (fun () ->
      ignore
        (Cex_service.Scheduler.map ~jobs:2
           (fun x -> if x = 2 then failwith "boom" else x)
           [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* JSON. *)

let test_json_emitter () =
  let open Cex_service in
  let t =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\nd");
        ("n", Json.Int 3);
        ("f", Json.Float 0.25);
        ("bad", Json.Float Float.nan);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("empty", Json.Obj []) ]
  in
  Alcotest.(check string) "minified"
    {|{"s":"a\"b\\c\nd","n":3,"f":0.25,"bad":null,"l":[true,null],"empty":{}}|}
    (Json.to_string ~minify:true t)

let test_json_parser () =
  let open Cex_service in
  let t =
    Json.Obj
      [ ("s", Json.String "a\"b\\c\nd\te");
        ("n", Json.Int 3);
        ("neg", Json.Int (-17));
        ("f", Json.Float 0.25);
        ("exp", Json.Float 1.5e3);
        ("l", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("empty_l", Json.List []);
        ("empty_o", Json.Obj []);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Int 2 ]) ]) ]
  in
  (* Round-trips through both renderings. *)
  let reparse s =
    match Json.of_string_opt s with
    | Some v -> v
    | None -> Alcotest.failf "parse failed on %s" s
  in
  Alcotest.(check bool) "round-trip minified" true
    (reparse (Json.to_string ~minify:true t) = t);
  Alcotest.(check bool) "round-trip indented" true
    (reparse (Json.to_string t) = t);
  Alcotest.(check bool) "unicode escape" true
    (reparse {|"a\u0041\u00e9"|} = Json.String "aA\xc3\xa9");
  (* Malformed inputs are rejected, not mangled. *)
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %s" bad)
        true
        (Json.of_string_opt bad = None))
    [ "{"; "[1,"; {|{"a" 1}|}; "tru"; {|"unterminated|}; "1 2"; "" ]

let golden =
  {|{
  "schema_version": 5,
  "stats": {
    "jobs": 1,
    "grammars": 1,
    "conflicts": 1,
    "conflict_tasks": 1,
    "wall_seconds": 0.0,
    "max_queue_depth": 1,
    "stages": {
      "conflict_search": 0.0,
      "table_build": 0.0
    },
    "cache": {
      "sessions": {
        "hits": 0,
        "misses": 1,
        "evictions": 0
      },
      "session_shards": [
        {
          "hits": 0,
          "misses": 1,
          "evictions": 0
        }
      ],
      "reports": {
        "hits": 0,
        "misses": 1,
        "evictions": 0
      }
    }
  },
  "grammars": [
    {
      "grammar": "dangling-else",
      "digest": "2a1de4b63d8cced128cb9455f89ded12",
      "from_cache": false,
      "summary": {
        "conflicts": 1,
        "unifying": 1,
        "nonunifying": 0,
        "timeouts": 0,
        "skipped": 0,
        "crashed": 0,
        "total_elapsed": 0.0
      },
      "metrics": {
        "classify": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {}
        },
        "path_search": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {
            "alloc_words": 0.0,
            "pops": 33,
            "relaxations": 33
          }
        },
        "product.search": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {
            "alloc_words": 0.0,
            "configs_explored": 135,
            "queue_pushes": 255
          }
        },
        "table_build": {
          "seconds": 0.0,
          "spans": 1,
          "counters": {
            "conflicts": 1,
            "states": 10
          }
        }
      },
      "conflicts": [
        {
          "state": 7,
          "terminal": "ELSE",
          "kind": "shift_reduce",
          "classification": "dangling-else",
          "reduce_item": "stmt ::= IF expr THEN stmt •",
          "other_item": "stmt ::= IF expr THEN stmt • ELSE stmt",
          "outcome": "found_unifying",
          "engine": "product",
          "elapsed": 0.0,
          "configs_explored": 135,
          "failure": null,
          "validation": null,
          "counterexample": {
            "type": "unifying",
            "nonterminal": "stmt",
            "form": [
              "IF",
              "expr",
              "THEN",
              "IF",
              "expr",
              "THEN",
              "stmt",
              "ELSE",
              "stmt"
            ],
            "derivation_reduce": "stmt ::= [IF expr THEN stmt ::= [IF expr THEN stmt •] ELSE stmt]",
            "derivation_other": "stmt ::= [IF expr THEN stmt ::= [IF expr THEN stmt • ELSE stmt]]"
          }
        }
      ]
    }
  ]
}|}

(* The JSON report schema for the dangling-else grammar, with volatile
   timings zeroed. Guards the stability of every key the service exposes:
   conflict kind, outcome, elapsed, configs_explored, cache stats, ... *)
let test_json_golden () =
  let g = Spec_parser.grammar_of_string_exn dangling_else in
  let service = Cex_service.Scheduler.create ~jobs:1 () in
  let results, stats =
    Cex_service.Scheduler.analyze_batch service [ ("dangling-else", g) ]
  in
  let json =
    Cex_service.Json.to_string
      (Cex_service.Json.map_floats
         (fun _ -> 0.0)
         (Cex_service.Json_report.batch_to_json ~stats results))
  in
  Alcotest.(check string) "golden JSON report" golden json

let suite =
  ( "service",
    [ Alcotest.test_case "cache-counters" `Quick test_cache_counters;
      Alcotest.test_case "cache-digest" `Quick test_cache_digest;
      Alcotest.test_case "cache-hit-on-reanalysis" `Quick
        test_cache_hit_on_reanalysis;
      Alcotest.test_case "determinism-jobs-1-vs-4" `Slow test_determinism;
      Alcotest.test_case "scheduler-matches-driver" `Quick
        test_scheduler_matches_driver;
      Alcotest.test_case "crash-becomes-outcome" `Quick
        test_crash_becomes_outcome;
      Alcotest.test_case "map-order-and-errors" `Quick
        test_map_order_and_errors;
      Alcotest.test_case "json-emitter" `Quick test_json_emitter;
      Alcotest.test_case "json-parser" `Quick test_json_parser;
      Alcotest.test_case "json-golden" `Quick test_json_golden ] )
