(* Corpus-wide engine equivalence: the transcript of every search outcome and
   counterexample must be byte-identical to test/equivalence.golden, captured
   from the seed (pre-overhaul) engine. This pins search order, cost
   accounting, explored-configuration counts, and both counterexample
   constructions on all 800+ corpus conflicts.

   Regenerate (only for a change meant to alter outcomes):
     dune exec tools/equivalence.exe > test/equivalence.golden *)

let golden_file = "equivalence.golden"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* On mismatch, fail with the first differing line instead of dumping the
   whole 2 MB transcript. *)
let first_diff expected actual =
  let el = String.split_on_char '\n' expected in
  let al = String.split_on_char '\n' actual in
  let rec go i el al =
    match el, al with
    | [], [] -> None
    | e :: el', a :: al' ->
      if String.equal e a then go (i + 1) el' al'
      else Some (i, e, a)
    | e :: _, [] -> Some (i, e, "<missing line>")
    | [], a :: _ -> Some (i, "<missing line>", a)
  in
  go 1 el al

let test_equivalence () =
  let expected = read_file golden_file in
  let actual = Evaluation.Equivalence.summary () in
  match first_diff expected actual with
  | None -> ()
  | Some (line, e, a) ->
    Alcotest.failf
      "engine transcript diverges from the seed golden at line %d:@\n\
       golden: %s@\n\
       engine: %s"
      line e a

let suite =
  ( "equivalence",
    [ Alcotest.test_case "corpus-wide golden transcript" `Slow
        test_equivalence ] )
