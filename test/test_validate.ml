open Cfg
module Oracle = Cex_validate.Oracle
module Fuzz = Cex_validate.Fuzz

(* Budgets kept small: what matters here is the oracle's verdict, not how
   many unifying counterexamples the search finds before timing out. *)
let test_options =
  { Cex.Driver.default_options with
    Cex.Driver.per_conflict_timeout = 1.0;
    cumulative_timeout = 10.0 }

let analyzed source =
  let g = Spec_parser.grammar_of_string_exn source in
  let session = Cex_session.Session.create g in
  let report = Cex.Driver.analyze_session ~options:test_options session in
  (session, Oracle.of_session session, report)

(* ------------------------------------------------------------------ *)
(* Acceptance: the oracle validates everything the pipeline emits. The
   small corpus categories run here; the Bv10 monsters are covered by the
   corpus-wide `lrcex validate --corpus` CI gate. *)

let check_entry (e : Corpus.entry) =
  let session = Cex_session.Session.create (Corpus.grammar e) in
  let report = Cex.Driver.analyze_session ~options:test_options session in
  let report = Oracle.validate_report (Oracle.of_session session) report in
  List.iter
    (fun (cr : Cex.Driver.conflict_report) ->
      match cr.Cex.Driver.validation with
      | Cex.Driver.Validated -> ()
      | Cex.Driver.Not_validated ->
        Alcotest.failf "%s: state %d left unvalidated" e.Corpus.name
          cr.Cex.Driver.conflict.Automaton.Conflict.state
      | Cex.Driver.Validation_failed codes ->
        Alcotest.failf "%s: state %d rejected: %s" e.Corpus.name
          cr.Cex.Driver.conflict.Automaton.Conflict.state
          (String.concat ", " codes))
    report.Cex.Driver.conflict_reports;
  Alcotest.(check int)
    (e.Corpus.name ^ ": all counterexamples validated")
    (List.length report.Cex.Driver.conflict_reports)
    (Oracle.n_validated report)

let corpus_cases =
  List.filter_map
    (fun (e : Corpus.entry) ->
      if e.Corpus.category = Corpus.Bv10 then None
      else
        Some
          (Alcotest.test_case ("oracle accepts " ^ e.Corpus.name) `Quick
             (fun () -> check_entry e)))
    (Corpus.all ())

(* The validate stage must show up in the merged metrics, one span per
   conflict. *)
let test_metrics_merged () =
  let session, oracle, report = analyzed Corpus.Paper_grammars.figure1 in
  ignore session;
  let report = Oracle.validate_report oracle report in
  match List.assoc_opt "validate" report.Cex.Driver.metrics with
  | None -> Alcotest.fail "no validate stage in merged metrics"
  | Some m ->
    Alcotest.(check int) "one span per conflict"
      (List.length report.Cex.Driver.conflict_reports)
      m.Cex_session.Trace.spans

(* ------------------------------------------------------------------ *)
(* Rejection: hand-mutated counterexamples must each fail with the right
   verdict. figure1 (dangling else) yields a unifying counterexample whose
   derivations we can deform. *)

let unifying_counterexample () =
  let _, oracle, report = analyzed Corpus.Paper_grammars.figure1 in
  let u =
    List.find_map
      (fun (cr : Cex.Driver.conflict_report) ->
        match cr.Cex.Driver.counterexample with
        | Some (Cex.Driver.Unifying u) -> Some u
        | _ -> None)
      report.Cex.Driver.conflict_reports
  in
  match u with
  | Some u -> (oracle, u)
  | None -> Alcotest.fail "figure1 produced no unifying counterexample"

let check_rejects label expected_code failures =
  Alcotest.(check bool)
    (Fmt.str "%s rejected with %s (got: %s)" label expected_code
       (String.concat ", " failures))
    true
    (List.mem expected_code failures)

let test_reject_duplicated_tree () =
  let oracle, u = unifying_counterexample () in
  let mutated = { u with Cex.Product_search.deriv2 = u.Cex.Product_search.deriv1 } in
  check_rejects "duplicated tree" "derivations-identical"
    (Oracle.check_unifying oracle mutated)

let test_reject_truncated_frontier () =
  let oracle, u = unifying_counterexample () in
  let mutated =
    (* claim a shorter sentential form than the trees actually derive *)
    match List.rev u.Cex.Product_search.form with
    | [] -> Alcotest.fail "empty unifying form"
    | _ :: rev -> { u with Cex.Product_search.form = List.rev rev }
  in
  check_rejects "truncated frontier" "frontier-mismatch"
    (Oracle.check_unifying oracle mutated)

let test_reject_swapped_children () =
  let oracle, u = unifying_counterexample () in
  (* Reverse the children of the first real node: the production no longer
     matches its right-hand side, so the tree itself is invalid. *)
  let rec deform = function
    | Derivation.Leaf _ as l -> l
    | Derivation.Node ({ children; _ } as n) ->
      if List.length children > 1 then
        Derivation.Node { n with children = List.rev children }
      else Derivation.Node { n with children = List.map deform children }
  in
  let mutated =
    { u with Cex.Product_search.deriv1 = deform u.Cex.Product_search.deriv1 }
  in
  check_rejects "swapped children" "deriv1-invalid"
    (Oracle.check_unifying oracle mutated)

let test_reject_wrong_production () =
  let oracle, u = unifying_counterexample () in
  (* Relabel the root node with a different production (production 0 always
     exists: START ::= start): validation must catch the mismatch. *)
  let mutated_tree =
    match u.Cex.Product_search.deriv1 with
    | Derivation.Leaf _ -> Alcotest.fail "unifying derivation is a leaf"
    | Derivation.Node n ->
      Derivation.Node
        { n with prod = (if n.prod = 0 then 1 else 0) }
  in
  let mutated = { u with Cex.Product_search.deriv1 = mutated_tree } in
  check_rejects "wrong production" "deriv1-invalid"
    (Oracle.check_unifying oracle mutated)

let test_reject_wrong_root () =
  let oracle, u = unifying_counterexample () in
  let mutated =
    { u with
      Cex.Product_search.nonterminal = u.Cex.Product_search.nonterminal + 1 }
  in
  check_rejects "wrong root nonterminal" "root-mismatch"
    (Oracle.check_unifying oracle mutated)

(* Nonunifying mutations: figure3's conflict is provably nonunifying. *)
let nonunifying_counterexample () =
  let _, oracle, report = analyzed Corpus.Paper_grammars.figure3 in
  let nu =
    List.find_map
      (fun (cr : Cex.Driver.conflict_report) ->
        match cr.Cex.Driver.counterexample with
        | Some (Cex.Driver.Nonunifying nu) -> Some nu
        | _ -> None)
      report.Cex.Driver.conflict_reports
  in
  match nu with
  | Some nu -> (oracle, nu)
  | None -> Alcotest.fail "figure3 produced no nonunifying counterexample"

let test_reject_mutated_prefix () =
  let oracle, nu = nonunifying_counterexample () in
  match nu.Cex.Nonunifying.prefix with
  | [] -> Alcotest.fail "empty nonunifying prefix"
  | _ :: rest ->
    let mutated = { nu with Cex.Nonunifying.prefix = rest } in
    let failures = Oracle.check_nonunifying oracle mutated in
    Alcotest.(check bool)
      (Fmt.str "mutated prefix rejected (got: %s)"
         (String.concat ", " failures))
      true (failures <> [])

let test_reject_wrong_conflict_terminal () =
  let oracle, nu = nonunifying_counterexample () in
  let conflict = nu.Cex.Nonunifying.conflict in
  let mutated =
    { nu with
      Cex.Nonunifying.conflict =
        { conflict with
          Automaton.Conflict.terminal =
            conflict.Automaton.Conflict.terminal + 1 } }
  in
  check_rejects "wrong conflict terminal" "conflict-terminal-not-next"
    (Oracle.check_nonunifying oracle mutated)

(* Valid counterexamples sanity-check the failure-code plumbing: nothing
   fires on the originals. *)
let test_originals_pass () =
  let oracle, u = unifying_counterexample () in
  Alcotest.(check (list string)) "unifying passes" []
    (Oracle.check_unifying oracle u);
  let oracle, nu = nonunifying_counterexample () in
  Alcotest.(check (list string)) "nonunifying passes" []
    (Oracle.check_nonunifying oracle nu)

(* A report whose search crashed stays Not_validated; any other outcome
   without a counterexample is flagged. *)
let test_missing_counterexample () =
  let session, oracle, report = analyzed Corpus.Paper_grammars.figure1 in
  match report.Cex.Driver.conflict_reports with
  | [] -> Alcotest.fail "figure1 has conflicts"
  | cr :: _ ->
    let gutted = { cr with Cex.Driver.counterexample = None } in
    (match (Oracle.validate_conflict_report oracle gutted).Cex.Driver.validation with
    | Cex.Driver.Validation_failed [ "no-counterexample" ] -> ()
    | _ -> Alcotest.fail "missing counterexample not flagged");
    let crashed =
      Cex.Driver.crashed_conflict_report session gutted.Cex.Driver.conflict
        (Failure "boom") ""
    in
    (match (Oracle.validate_conflict_report oracle crashed).Cex.Driver.validation with
    | Cex.Driver.Not_validated -> ()
    | _ -> Alcotest.fail "crashed report must stay Not_validated")

(* ------------------------------------------------------------------ *)
(* Fuzzer: fixed seeds reproduce bit-identically, and the committed smoke
   range passes differentially. *)

let test_fuzz_deterministic () =
  List.iter
    (fun seed ->
      let a = Fuzz.run_seed seed and b = Fuzz.run_seed seed in
      Alcotest.(check bool)
        (Fmt.str "seed %d reproduces" seed)
        true (a = b))
    [ 1; 7; 42; 1234 ]

let test_fuzz_smoke_range () =
  let summary = Fuzz.run (List.init 20 (fun i -> i + 1)) in
  Alcotest.(check int) "20 seeds ran" 20 summary.Fuzz.seeds;
  Alcotest.(check bool) "some grammars have conflicts" true
    (summary.Fuzz.grammars_with_conflicts > 0);
  Alcotest.(check bool) "some unifying counterexamples found" true
    (summary.Fuzz.total_unifying > 0);
  List.iter
    (fun f -> Fmt.epr "%a@." Fuzz.pp_failure f)
    summary.Fuzz.failures;
  Alcotest.(check int) "no differential failures" 0
    (List.length summary.Fuzz.failures)

(* The shrinker only ever proposes structurally smaller specs that still
   fail; exercise it on a synthetic always-failing predicate via a spec
   that cannot elaborate (undefined start), which check_spec flags. *)
let test_shrink_preserves_failure () =
  let rng = Random.State.make [| 99 |] in
  let spec = Fuzz.gen_spec Fuzz.default_config rng in
  (* Force a failing spec: point start at an undefined nonterminal. *)
  let broken = { spec with Spec_ast.start = Some "UNDEFINED" } in
  let verdict = Fuzz.check_spec Fuzz.default_config broken in
  Alcotest.(check bool) "broken spec fails" true (verdict.Fuzz.problems <> []);
  let shrunk = Fuzz.shrink Fuzz.default_config broken in
  Alcotest.(check bool) "shrunk spec still fails" true
    ((Fuzz.check_spec Fuzz.default_config shrunk).Fuzz.problems <> [])

let suite =
  ( "validate",
    [ Alcotest.test_case "metrics merged" `Quick test_metrics_merged;
      Alcotest.test_case "originals pass" `Quick test_originals_pass;
      Alcotest.test_case "reject duplicated tree" `Quick
        test_reject_duplicated_tree;
      Alcotest.test_case "reject truncated frontier" `Quick
        test_reject_truncated_frontier;
      Alcotest.test_case "reject swapped children" `Quick
        test_reject_swapped_children;
      Alcotest.test_case "reject wrong production" `Quick
        test_reject_wrong_production;
      Alcotest.test_case "reject wrong root" `Quick test_reject_wrong_root;
      Alcotest.test_case "reject mutated prefix" `Quick
        test_reject_mutated_prefix;
      Alcotest.test_case "reject wrong conflict terminal" `Quick
        test_reject_wrong_conflict_terminal;
      Alcotest.test_case "missing counterexample flagged" `Quick
        test_missing_counterexample;
      Alcotest.test_case "fuzz deterministic" `Quick test_fuzz_deterministic;
      Alcotest.test_case "fuzz smoke range" `Slow test_fuzz_smoke_range;
      Alcotest.test_case "shrink preserves failure" `Quick
        test_shrink_preserves_failure ]
    @ corpus_cases )
