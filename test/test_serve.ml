(* The analysis server, driven in-process over socketpairs: the daemon loop
   runs in a spawned domain while the test plays one or more NDJSON clients
   against it. Timeout behavior runs on a fake clock — no real sleeps. *)

module Server = Cex_serve.Server
module Protocol = Cex_serve.Protocol
module Json = Cex_service.Json
module Clock = Cex_session.Clock

(* ------------------------------------------------------------------ *)
(* Harness. *)

type client = {
  fd : Unix.file_descr;
  ic : in_channel;
}

let with_server ?options ?clock ?(jobs = 1) ?(cache_shards = 2)
    ?(queue_limit = 64) ~clients f =
  let server =
    Server.create ?options ?clock ~jobs ~cache_shards ~queue_limit ()
  in
  let pairs =
    List.init clients (fun _ ->
        Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let daemon =
    Domain.spawn (fun () ->
        Server.serve_connections server (List.map fst pairs))
  in
  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, c) -> close_quietly c) pairs;
      Domain.join daemon)
    (fun () ->
      f server
        (List.map
           (fun (_, c) -> { fd = c; ic = Unix.in_channel_of_descr c })
           pairs))

let send client line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write client.fd b off (n - off)) in
  go 0

let recv client =
  match In_channel.input_line client.ic with
  | Some line -> Json.of_string line
  | None -> Alcotest.fail "server closed the connection unexpectedly"

let rpc client line =
  send client line;
  recv client

(* JSON path helpers. *)

let at path json =
  List.fold_left
    (fun j key -> match j with Some j -> Json.member key j | None -> None)
    (Some json) path

let string_at path json =
  match at path json with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail (Fmt.str "missing string at %s" (String.concat "." path))

let int_at path json =
  match at path json with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.fail (Fmt.str "missing int at %s" (String.concat "." path))

let bool_at path json =
  match at path json with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail (Fmt.str "missing bool at %s" (String.concat "." path))

let outcomes json =
  match at [ "result"; "conflicts" ] json with
  | Some (Json.List conflicts) ->
    List.map (fun c -> string_at [ "outcome" ] c) conflicts
  | _ -> Alcotest.fail "missing result.conflicts"

let check_ok id json =
  Alcotest.(check string) "id echoed" id (string_at [ "id" ] json);
  Alcotest.(check bool) "ok" true (bool_at [ "ok" ] json)

(* [id = None]: the request was too malformed to recover an id, so the
   response must carry a null one. *)
let check_error id code json =
  (match id, at [ "id" ] json with
  | Some id, Some (Json.String s) ->
    Alcotest.(check string) "id echoed" id s
  | None, Some Json.Null -> ()
  | _, _ -> Alcotest.fail "unexpected id in error response");
  Alcotest.(check bool) "not ok" false (bool_at [ "ok" ] json);
  Alcotest.(check string) "stable error code" code
    (string_at [ "error"; "code" ] json)

(* Grammars. *)

let dangling =
  "stmt : IF expr THEN stmt ELSE stmt | IF expr THEN stmt | OTHER ; expr : \
   ID ;"

(* One-production edit of [dangling]: a new alternative for stmt. *)
let dangling_edit =
  "stmt : IF expr THEN stmt ELSE stmt | IF expr THEN stmt | OTHER | OTHER \
   OTHER ; expr : ID ;"

let analyze_line ?(id = "a") ?(extra = "") spec =
  Fmt.str "{\"op\":\"analyze\",\"id\":%S,\"spec\":%S%s}" id spec extra

(* ------------------------------------------------------------------ *)

let test_request_response_golden () =
  with_server ~clients:1 (fun _server clients ->
      let c = List.hd clients in
      (* Byte-for-byte golden on the fixed-shape operations. *)
      send c {|{"op":"ping","id":"p1"}|};
      let line = Option.get (In_channel.input_line c.ic) in
      Alcotest.(check string) "ping golden"
        {|{"id":"p1","ok":true,"pong":true}|} line;
      let r = rpc c (analyze_line ~id:"a1" dangling) in
      check_ok "a1" r;
      Alcotest.(check string) "served cold" "cold" (string_at [ "served" ] r);
      Alcotest.(check string) "digest is the content address"
        (Cex_service.Cache.digest
           (Cfg.Spec_parser.grammar_of_string_exn dangling))
        (string_at [ "digest" ] r);
      Alcotest.(check int) "one conflict" 1
        (int_at [ "result"; "summary"; "conflicts" ] r);
      Alcotest.(check (list string)) "dangling else is unifying"
        [ "found_unifying" ] (outcomes r);
      Alcotest.(check string) "report echoes the name" "grammar"
        (string_at [ "result"; "grammar" ] r))

let test_concurrent_clients () =
  with_server ~clients:2 (fun _server clients ->
      let a = List.nth clients 0 and b = List.nth clients 1 in
      (* Interleave: both requests in flight before either response is
         read; each response must come back on its own connection with its
         own id. *)
      send a (analyze_line ~id:"from-a" dangling);
      send b {|{"op":"ping","id":"from-b"}|};
      let ra = recv a and rb = recv b in
      check_ok "from-a" ra;
      check_ok "from-b" rb;
      Alcotest.(check bool) "b got the pong" true (bool_at [ "pong" ] rb);
      Alcotest.(check string) "a got the analysis" "cold"
        (string_at [ "served" ] ra))

let test_deadline_expiry_mid_request () =
  (* Same simulated-time setup as the session suite: every clock read costs
     10 s, so with a 5 s per-conflict limit and a 15 s cumulative budget
     figure1's first conflict times out and the remaining two are skipped —
     all within one request, with zero real sleeping. *)
  let clock, _fake = Clock.fake ~auto_advance:10.0 () in
  with_server ~clock ~clients:1 (fun _server clients ->
      let c = List.hd clients in
      let r =
        rpc c
          (analyze_line ~id:"slow"
             ~extra:",\"timeout\":5.0,\"cumulative_timeout\":15.0"
             Corpus.Paper_grammars.figure1)
      in
      check_ok "slow" r;
      Alcotest.(check (list string))
        "budget expires mid-request, deterministically"
        [ "search_timeout"; "skipped_search"; "skipped_search" ]
        (outcomes r))

let test_cache_hit_on_identical_spec () =
  with_server ~clients:1 (fun _server clients ->
      let c = List.hd clients in
      let r1 = rpc c (analyze_line ~id:"first" dangling) in
      let r2 = rpc c (analyze_line ~id:"second" dangling) in
      check_ok "first" r1;
      check_ok "second" r2;
      Alcotest.(check string) "first is cold" "cold"
        (string_at [ "served" ] r1);
      Alcotest.(check string) "identical spec hits the report cache"
        "report_cache"
        (string_at [ "served" ] r2);
      Alcotest.(check string) "same digest" (string_at [ "digest" ] r1)
        (string_at [ "digest" ] r2);
      (* The stats operation exposes the per-shard counters. *)
      let s = rpc c {|{"op":"stats","id":"s"}|} in
      check_ok "s" s;
      Alcotest.(check int) "report cache hit recorded" 1
        (int_at [ "stats"; "cache"; "reports"; "hits" ] s);
      match at [ "stats"; "cache"; "session_shards" ] s with
      | Some (Json.List shards) ->
        Alcotest.(check int) "one counter block per shard" 2
          (List.length shards);
        Alcotest.(check int) "shard misses sum to the aggregate"
          (int_at [ "stats"; "cache"; "sessions"; "misses" ] s)
          (List.fold_left (fun n sh -> n + int_at [ "misses" ] sh) 0 shards)
      | _ -> Alcotest.fail "missing stats.cache.session_shards")

let test_delta_reuse_on_one_production_edit () =
  with_server ~clients:1 (fun _server clients ->
      let c = List.hd clients in
      let r1 = rpc c (analyze_line ~id:"base" dangling) in
      check_ok "base" r1;
      let r2 =
        rpc c
          (analyze_line ~id:"edited" ~extra:",\"cross_check\":true"
             dangling_edit)
      in
      check_ok "edited" r2;
      Alcotest.(check string) "served by delta reuse" "delta"
        (string_at [ "served" ] r2);
      Alcotest.(check string) "reused from the base session"
        (string_at [ "digest" ] r1)
        (string_at [ "reuse"; "base_digest" ] r2);
      Alcotest.(check bool) "warm start seeded nonterminals" true
        (int_at [ "reuse"; "seeded_nonterminals" ] r2 > 0);
      Alcotest.(check int) "the unchanged conflict's counterexample is reused"
        1
        (int_at [ "reuse"; "reused_conflicts" ] r2);
      (* Equivalence cross-check: the incremental result equals the
         from-scratch result (modulo timings), verified server-side. *)
      Alcotest.(check bool) "incremental equals from-scratch" true
        (bool_at [ "cross_check"; "equal" ] r2);
      (* The reuse ratio is also visible in the trace metrics. *)
      Alcotest.(check int) "delta stage counters in metrics" 1
        (int_at
           [ "result"; "metrics"; "delta"; "counters"; "reused_conflicts" ]
           r2);
      (* Reused counterexamples were re-validated by the oracle in the new
         session. *)
      match at [ "result"; "conflicts" ] r2 with
      | Some (Json.List conflicts) ->
        Alcotest.(check bool) "reused counterexample oracle-validated" true
          (List.exists
             (fun cj ->
               match at [ "validation"; "status" ] cj with
               | Some (Json.String "valid") -> true
               | _ -> false)
             conflicts)
      | _ -> Alcotest.fail "missing result.conflicts")

let test_malformed_input_hardening () =
  with_server ~clients:1 (fun _server clients ->
      let c = List.hd clients in
      check_error None "bad-json" (rpc c "this is not json");
      check_error None "bad-json" (rpc c "[1,2,3]");
      (* A recoverable id is echoed even on malformed requests. *)
      check_error (Some "m1") "bad-request"
        (rpc c {|{"op":"analyze","id":"m1"}|});
      check_error (Some "m2") "bad-request" (rpc c {|{"op":"frobnicate","id":"m2"}|});
      check_error (Some "m3") "parse-error"
        (rpc c {|{"op":"analyze","id":"m3","spec":"%% not a grammar %%"}|});
      (* The loop survived all of it. *)
      let r = rpc c (analyze_line ~id:"alive" dangling) in
      check_ok "alive" r)

let test_overload_backpressure () =
  with_server ~queue_limit:1 ~clients:1 (fun _server clients ->
      let c = List.hd clients in
      (* Three requests in one write: the server reads them in one chunk,
         queues the first and sheds the other two with [overloaded]. *)
      send c
        (String.concat "\n"
           [ {|{"op":"ping","id":"q1"}|};
             {|{"op":"ping","id":"q2"}|};
             {|{"op":"ping","id":"q3"}|} ]);
      let responses = List.init 3 (fun _ -> recv c) in
      let ok, shed =
        List.partition (fun r -> bool_at [ "ok" ] r) responses
      in
      Alcotest.(check int) "exactly one served" 1 (List.length ok);
      Alcotest.(check int) "two shed" 2 (List.length shed);
      List.iter
        (fun r ->
          Alcotest.(check string) "stable overload code" "overloaded"
            (string_at [ "error"; "code" ] r))
        shed)

let test_graceful_drain () =
  with_server ~clients:1 (fun server clients ->
      let c = List.hd clients in
      check_ok "work" (rpc c (analyze_line ~id:"work" dangling));
      let r = rpc c {|{"op":"shutdown","id":"bye"}|} in
      check_ok "bye" r;
      Alcotest.(check bool) "drain acknowledged" true
        (bool_at [ "draining" ] r);
      Alcotest.(check bool) "server reports draining" true
        (Server.draining server);
      (* The loop exits after the drain: the connection reaches EOF. *)
      Alcotest.(check bool) "connection closed after drain" true
        (In_channel.input_line c.ic = None))
  (* with_server joins the daemon domain: returning at all proves the loop
     terminated. *)

let test_shutting_down_rejects_new_work () =
  (* Queue a shutdown and an analyze in the same chunk: the shutdown flips
     the server into draining, the queued analyze behind it is answered
     with the stable [shutting-down] code instead of being dropped. *)
  with_server ~clients:1 (fun _server clients ->
      let c = List.hd clients in
      send c
        (String.concat "\n"
           [ {|{"op":"shutdown","id":"bye"}|};
             analyze_line ~id:"late" dangling ]);
      check_ok "bye" (recv c);
      check_error (Some "late") "shutting-down" (recv c))

let suite =
  ( "serve",
    [ Alcotest.test_case "request/response golden" `Quick
        test_request_response_golden;
      Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
      Alcotest.test_case "deadline expiry mid-request" `Quick
        test_deadline_expiry_mid_request;
      Alcotest.test_case "cache hit on identical spec" `Quick
        test_cache_hit_on_identical_spec;
      Alcotest.test_case "delta reuse on one-production edit" `Quick
        test_delta_reuse_on_one_production_edit;
      Alcotest.test_case "malformed input hardening" `Quick
        test_malformed_input_hardening;
      Alcotest.test_case "overload backpressure" `Quick
        test_overload_backpressure;
      Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
      Alcotest.test_case "drain rejects queued new work" `Quick
        test_shutting_down_rejects_new_work ] )
