let () =
  Alcotest.run "lrcex"
    [ Test_bitset.suite;
      Test_pqueue.suite;
      Test_spec.suite;
      Test_analysis.suite;
      Test_lr0.suite;
      Test_lalr.suite;
      Test_parse_table.suite;
      Test_lr1.suite;
      Test_runner.suite;
      Test_earley.suite;
      Test_lookahead_path.suite;
      Test_nonunifying.suite;
      Test_unifying.suite;
      Test_report.suite;
      Test_lint.suite;
      Test_driver.suite;
      Test_session.suite;
      Test_srwalk.suite;
      Test_service.suite;
      Test_serve.suite;
      Test_validate.suite;
      Test_baselines.suite;
      Test_corpus.suite;
      Test_export.suite;
      Test_equivalence.suite ]
