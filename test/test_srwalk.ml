open Cfg
open Cex_session

(* The SR-automaton walk engine: verdict agreement with the product search,
   deterministic deadline behaviour on a fake clock, and race-mode
   adjudication. The corpus-wide agreement check runs both engines on all
   800+ conflicts under a configuration budget — no wall-clock anywhere, so
   every test here is bit-deterministic. *)

let feq = Alcotest.float 1e-9

let figure1 () =
  Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1

let outcome_name = function
  | Cex.Driver.Found_unifying -> "found_unifying"
  | Cex.Driver.No_unifying_exists -> "no_unifying_exists"
  | Cex.Driver.Search_timeout -> "search_timeout"
  | Cex.Driver.Skipped_search -> "skipped_search"
  | Cex.Driver.Search_crashed -> "search_crashed"

let analyze ~engine g =
  let clock, _fake = Clock.fake () in
  let session = Session.create ~clock g in
  let options = { Cex.Driver.default_options with Cex.Driver.engine } in
  (session, Cex.Driver.analyze_session ~options session)

(* ------------------------------------------------------------------ *)
(* The walk as a selectable engine. *)

let test_srwalk_engine () =
  let session, r = analyze ~engine:Cex.Driver.Srwalk (figure1 ()) in
  Alcotest.(check int) "all three conflicts unifying" 3
    (Cex.Driver.n_unifying r);
  List.iter
    (fun (cr : Cex.Driver.conflict_report) ->
      Alcotest.(check string) "engine recorded" "srwalk"
        cr.Cex.Driver.engine)
    r.Cex.Driver.conflict_reports;
  (* The oracle must accept every walk-produced counterexample. *)
  let oracle = Cex_validate.Oracle.of_session session in
  let r = Cex_validate.Oracle.validate_report oracle r in
  Alcotest.(check int) "oracle accepts every witness" 0
    (Cex_validate.Oracle.n_invalid r);
  (* Stage spans are namespaced by engine. *)
  let stages = List.map fst (Session.metrics session) in
  Alcotest.(check bool) "srwalk.search span present" true
    (List.mem "srwalk.search" stages);
  Alcotest.(check bool) "no product span on a srwalk run" false
    (List.mem "product.search" stages)

let test_engines_agree () =
  let _, rp = analyze ~engine:Cex.Driver.Product (figure1 ()) in
  let _, rs = analyze ~engine:Cex.Driver.Srwalk (figure1 ()) in
  let verdicts r =
    List.map
      (fun (cr : Cex.Driver.conflict_report) ->
        (outcome_name cr.Cex.Driver.outcome, cr.Cex.Driver.configs_explored))
      r.Cex.Driver.conflict_reports
  in
  (* Same verdict AND same explored-configuration count on every conflict:
     the walk deliberately mirrors the product search's exploration order. *)
  Alcotest.(check (list (pair string int)))
    "verdicts and exploration counts coincide" (verdicts rp) (verdicts rs)

(* ------------------------------------------------------------------ *)
(* Deterministic deadline expiry, as for the product search: an expired
   per-conflict deadline must not explore a single node. With auto-advance
   3.0 and the deadline at instant 2.0 the reads are scripted — [started]
   reads 0.0, the entry check reads 3.0 (expired), the stats read 6.0. *)

let test_walk_entry_check () =
  let g = figure1 () in
  let table = Automaton.Parse_table.build g in
  let lalr = Automaton.Parse_table.lalr table in
  let sr = Cex_srwalk.Sr_automaton.of_lalr lalr in
  let c = List.hd (Automaton.Parse_table.conflicts table) in
  let path =
    Option.get
      (Cex.Lookahead_path.find lalr ~conflict_state:c.Automaton.Conflict.state
         ~reduce_item:(Automaton.Conflict.reduce_item c)
         ~terminal:c.Automaton.Conflict.terminal)
  in
  let clock, _fake = Clock.fake ~auto_advance:3.0 () in
  match
    Cex_srwalk.Walk.search
      ~deadline:(Deadline.at clock 2.0)
      sr ~conflict:c
      ~path_states:(Cex.Lookahead_path.states_on_path path)
  with
  | Cex_srwalk.Walk.Timeout stats ->
    Alcotest.(check int) "no node explored" 0
      stats.Cex_srwalk.Walk.nodes_explored;
    Alcotest.check feq "elapsed at the exact simulated instant" 6.0
      stats.Cex_srwalk.Walk.elapsed
  | Cex_srwalk.Walk.Ambiguous _ | Cex_srwalk.Walk.Exhausted _ ->
    Alcotest.fail "expired deadline must time out"

(* ------------------------------------------------------------------ *)
(* Race mode. *)

let race_fingerprint r =
  List.map
    (fun (cr : Cex.Driver.conflict_report) ->
      ( outcome_name cr.Cex.Driver.outcome,
        cr.Cex.Driver.engine,
        cr.Cex.Driver.configs_explored ))
    r.Cex.Driver.conflict_reports

let race_counters session =
  match List.assoc_opt "race" (Session.metrics session) with
  | None -> []
  | Some m -> m.Trace.counters

let test_race_determinism () =
  let session1, r1 = analyze ~engine:Cex.Driver.Race (figure1 ()) in
  let session2, r2 = analyze ~engine:Cex.Driver.Race (figure1 ()) in
  Alcotest.(check (list (triple string string int)))
    "two race runs on a fake clock are identical" (race_fingerprint r1)
    (race_fingerprint r2);
  Alcotest.(check (list (pair string int)))
    "race counters identical" (race_counters session1)
    (race_counters session2);
  Alcotest.(check int) "all conflicts decided" 3 (Cex.Driver.n_unifying r1);
  (* The engines mirror each other, so every race is an agreed tie and the
     deterministic tie-break awards it to the product engine. *)
  Alcotest.(check (option int)) "all agreed" (Some 3)
    (List.assoc_opt "agreed" (race_counters session1));
  Alcotest.(check (option int)) "ties go to product" (Some 3)
    (List.assoc_opt "winner_product" (race_counters session1));
  List.iter
    (fun (cr : Cex.Driver.conflict_report) ->
      Alcotest.(check string) "winning engine recorded" "product"
        cr.Cex.Driver.engine)
    r1.Cex.Driver.conflict_reports;
  (* Both engines actually ran: both namespaced stages are present. *)
  let stages = List.map fst (Session.metrics session1) in
  Alcotest.(check bool) "product.search span present" true
    (List.mem "product.search" stages);
  Alcotest.(check bool) "srwalk.search span present" true
    (List.mem "srwalk.search" stages)

(* ------------------------------------------------------------------ *)
(* Corpus-wide agreement: every conflict of every corpus grammar decided by
   both engines under one configuration budget — same verdict everywhere,
   and every srwalk witness passes the oracle. *)

let test_corpus_agreement () =
  let s = Evaluation.Agreement.run () in
  Alcotest.(check int) "whole corpus covered" 833
    s.Evaluation.Agreement.conflicts;
  List.iter
    (fun p -> Fmt.epr "agreement problem: %s@." p)
    s.Evaluation.Agreement.problems;
  Alcotest.(check int) "no divergence, no invalid witness" 0
    (List.length s.Evaluation.Agreement.problems)

let suite =
  ( "srwalk",
    [ Alcotest.test_case "srwalk engine on figure 1" `Quick
        test_srwalk_engine;
      Alcotest.test_case "engines agree conflict-by-conflict" `Quick
        test_engines_agree;
      Alcotest.test_case "walk: deadline entry check" `Quick
        test_walk_entry_check;
      Alcotest.test_case "race: deterministic on a fake clock" `Quick
        test_race_determinism;
      Alcotest.test_case "corpus-wide agreement" `Slow
        test_corpus_agreement ] )
