open Cfg
open Automaton

let setup source =
  let g = Spec_parser.grammar_of_string_exn source in
  let table = Parse_table.build g in
  Parse_table.lalr table, Parse_table.conflicts table

let names g symbols = List.map (Grammar.symbol_name g) symbols

let search ?extended lalr c =
  let path =
    Option.get
      (Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
         ~reduce_item:(Conflict.reduce_item c) ~terminal:c.Conflict.terminal)
  in
  Cex.Product_search.search ?extended lalr ~conflict:c
    ~path_states:(Cex.Lookahead_path.states_on_path path)

let expect_unifying ?extended lalr c =
  match search ?extended lalr c with
  | Cex.Product_search.Unifying (u, _) -> u
  | Cex.Product_search.Timeout _ -> Alcotest.fail "search timed out"
  | Cex.Product_search.Exhausted _ -> Alcotest.fail "search exhausted"

(* Independent validation of a unifying counterexample: two distinct
   derivations, both valid, with equal frontiers, and the chart parser agrees
   the form is ambiguous from the unifying nonterminal. *)
let validate g (u : Cex.Product_search.unifying) =
  let earley = Earley.make g in
  Alcotest.(check bool) "deriv1 valid" true
    (Derivation.validate g u.Cex.Product_search.deriv1);
  Alcotest.(check bool) "deriv2 valid" true
    (Derivation.validate g u.Cex.Product_search.deriv2);
  Alcotest.(check bool) "derivations distinct" false
    (Derivation.equal u.Cex.Product_search.deriv1 u.Cex.Product_search.deriv2);
  let root sym d = Symbol.equal (Derivation.root_symbol d) sym in
  let nt = Symbol.Nonterminal u.Cex.Product_search.nonterminal in
  Alcotest.(check bool) "deriv1 rooted at unifying nonterminal" true
    (root nt u.Cex.Product_search.deriv1);
  Alcotest.(check bool) "deriv2 rooted at unifying nonterminal" true
    (root nt u.Cex.Product_search.deriv2);
  Alcotest.(check bool) "frontiers equal" true
    (List.for_all2 Symbol.equal
       (Derivation.leaves u.Cex.Product_search.deriv1)
       (Derivation.leaves u.Cex.Product_search.deriv2));
  Alcotest.(check bool) "chart parser confirms ambiguity" true
    (Earley.ambiguous_from earley ~start:nt u.Cex.Product_search.form)

let test_expr_plus () =
  let lalr, conflicts = setup Corpus.Paper_grammars.expr_plus in
  let g = Lalr.grammar lalr in
  let u = expect_unifying lalr (List.hd conflicts) in
  Alcotest.(check string) "unifying nonterminal is expr (innermost)" "expr"
    (Grammar.nonterminal_name g u.Cex.Product_search.nonterminal);
  Alcotest.(check (list string))
    "example" [ "expr"; "+"; "expr"; "+"; "expr" ]
    (names g u.Cex.Product_search.form);
  validate g u

(* Figure 11's exact derivation strings. *)
let test_figure11_derivations () =
  let lalr, conflicts = setup Corpus.Paper_grammars.expr_plus in
  let g = Lalr.grammar lalr in
  let u = expect_unifying lalr (List.hd conflicts) in
  Alcotest.(check string) "derivation using reduction"
    "expr ::= [expr ::= [expr + expr \xe2\x80\xa2] + expr]"
    (Derivation.to_string g u.Cex.Product_search.deriv1);
  Alcotest.(check string) "derivation using shift"
    "expr ::= [expr + expr ::= [expr \xe2\x80\xa2 + expr]]"
    (Derivation.to_string g u.Cex.Product_search.deriv2)

let test_dangling_else () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let g = Lalr.grammar lalr in
  let c =
    List.find
      (fun c -> Grammar.terminal_name g c.Conflict.terminal = "ELSE")
      conflicts
  in
  let u = expect_unifying lalr c in
  Alcotest.(check (list string))
    "the classic counterexample"
    [ "IF"; "expr"; "THEN"; "IF"; "expr"; "THEN"; "stmt"; "ELSE"; "stmt" ]
    (names g u.Cex.Product_search.form);
  validate g u

(* Section 3.1's challenging conflict, including the exact counterexample the
   paper reports. *)
let test_challenging () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure1 in
  let g = Lalr.grammar lalr in
  let c =
    List.find
      (fun c -> Grammar.terminal_name g c.Conflict.terminal = "DIGIT")
      conflicts
  in
  let u = expect_unifying lalr c in
  Alcotest.(check (list string))
    "the paper's counterexample"
    [ "expr"; "?"; "ARR"; "["; "expr"; "]"; ":="; "num"; "DIGIT"; "DIGIT";
      "?"; "stmt"; "stmt" ]
    (names g u.Cex.Product_search.form);
  Alcotest.(check string) "unifying nonterminal" "stmt"
    (Grammar.nonterminal_name g u.Cex.Product_search.nonterminal);
  validate g u

(* Figure 7: the second shift item needs an extra 'n' before the conflict
   point — the search must not commit to the shortest path's productions. *)
let test_figure7_extra_n () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure7 in
  let g = Lalr.grammar lalr in
  let forms =
    List.map
      (fun c -> names g (expect_unifying lalr c).Cex.Product_search.form)
      conflicts
  in
  Alcotest.(check bool) "n a b c found" true
    (List.mem [ "n"; "a"; "b"; "c" ] forms);
  Alcotest.(check bool) "n n a b d c found" true
    (List.mem [ "n"; "n"; "a"; "b"; "d"; "c" ] forms);
  List.iter (fun c -> validate g (expect_unifying lalr c)) conflicts

(* figure3 is unambiguous: the search must exhaust, not diverge. *)
let test_figure3_exhausts () =
  let lalr, conflicts = setup Corpus.Paper_grammars.figure3 in
  match search lalr (List.hd conflicts) with
  | Cex.Product_search.Exhausted _ -> ()
  | Cex.Product_search.Unifying _ -> Alcotest.fail "figure3 is unambiguous"
  | Cex.Product_search.Timeout _ -> Alcotest.fail "expected quick exhaustion"

(* A classic reduce/reduce ambiguity gets a unifying counterexample with the
   second derivation using the second reduction. *)
let test_reduce_reduce_unifying () =
  let source = "s : a_ X | b_ X ; a_ : C ; b_ : C ;" in
  let lalr, conflicts = setup source in
  let g = Lalr.grammar lalr in
  match conflicts with
  | [ c ] ->
    Alcotest.(check bool) "is reduce/reduce" false (Conflict.is_shift_reduce c);
    let u = expect_unifying lalr c in
    Alcotest.(check (list string)) "example" [ "C"; "X" ]
      (names g u.Cex.Product_search.form);
    validate g u
  | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs)

(* Ambiguity through nullable productions. *)
let test_nullable_ambiguity () =
  let source = "s : opt1 A | opt2 A ; opt1 : ; opt2 : ;" in
  let lalr, conflicts = setup source in
  let g = Lalr.grammar lalr in
  match conflicts with
  | [ c ] ->
    let u = expect_unifying lalr c in
    validate g u;
    Alcotest.(check (list string)) "example" [ "A" ]
      (names g u.Cex.Product_search.form)
  | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs)

(* Driver-level behaviour: timeouts fall back to nonunifying counterexamples
   and the cumulative budget short-circuits remaining conflicts. *)
let test_driver_outcomes () =
  let r = Cex.Driver.analyze (Spec_parser.grammar_of_string_exn
                                Corpus.Paper_grammars.figure1) in
  Alcotest.(check int) "3 unifying" 3 (Cex.Driver.n_unifying r);
  Alcotest.(check int) "0 timeouts" 0 (Cex.Driver.n_timeout r);
  let r3 = Cex.Driver.analyze (Spec_parser.grammar_of_string_exn
                                 Corpus.Paper_grammars.figure3) in
  Alcotest.(check int) "figure3 nonunifying" 1 (Cex.Driver.n_nonunifying r3);
  List.iter
    (fun cr ->
      match cr.Cex.Driver.counterexample with
      | Some (Cex.Driver.Nonunifying _) -> ()
      | Some (Cex.Driver.Unifying _) | None ->
        Alcotest.fail "expected nonunifying fallback")
    r3.Cex.Driver.conflict_reports

let test_driver_cumulative_budget () =
  let options =
    { Cex.Driver.default_options with Cex.Driver.cumulative_timeout = -1.0 }
  in
  let r =
    Cex.Driver.analyze ~options
      (Spec_parser.grammar_of_string_exn Corpus.Paper_grammars.figure1)
  in
  Alcotest.(check int) "all searches skipped" 3
    (List.length
       (List.filter
          (fun cr -> cr.Cex.Driver.outcome = Cex.Driver.Skipped_search)
          r.Cex.Driver.conflict_reports));
  (* Nonunifying counterexamples still reported. *)
  List.iter
    (fun cr ->
      Alcotest.(check bool) "has counterexample" true
        (cr.Cex.Driver.counterexample <> None))
    r.Cex.Driver.conflict_reports

(* Soundness property: on random grammars, whenever the search reports a
   unifying counterexample, the chart parser confirms the ambiguity. *)
let prop_unifying_sound =
  QCheck.Test.make ~name:"unifying counterexamples are real ambiguities"
    ~count:60 (QCheck.make Test_analysis.gen_spec) (fun source ->
      let g = Spec_parser.grammar_of_string_exn source in
      let table = Parse_table.build g in
      let lalr = Parse_table.lalr table in
      let earley = Earley.make g in
      List.for_all
        (fun c ->
          match
            Cex.Lookahead_path.find lalr ~conflict_state:c.Conflict.state
              ~reduce_item:(Conflict.reduce_item c)
              ~terminal:c.Conflict.terminal
          with
          | None -> true
          | Some path -> (
            match
              Cex.Product_search.search
                ~deadline:
                  (Cex_session.Deadline.after Cex_session.Clock.system 0.5)
                ~max_configs:20_000 lalr ~conflict:c
                ~path_states:(Cex.Lookahead_path.states_on_path path)
            with
            | Cex.Product_search.Unifying (u, _) ->
              Derivation.validate g u.Cex.Product_search.deriv1
              && Derivation.validate g u.Cex.Product_search.deriv2
              && (not
                    (Derivation.equal u.Cex.Product_search.deriv1
                       u.Cex.Product_search.deriv2))
              && Earley.ambiguous_from earley
                   ~start:(Symbol.Nonterminal u.Cex.Product_search.nonterminal)
                   u.Cex.Product_search.form
            | Cex.Product_search.Timeout _ | Cex.Product_search.Exhausted _ ->
              true))
        (Parse_table.conflicts table))

let suite =
  ( "unifying",
    [ Alcotest.test_case "expr plus (section 2.4)" `Quick test_expr_plus;
      Alcotest.test_case "figure 11 derivations" `Quick
        test_figure11_derivations;
      Alcotest.test_case "dangling else" `Quick test_dangling_else;
      Alcotest.test_case "challenging conflict (section 3.1)" `Quick
        test_challenging;
      Alcotest.test_case "figure 7 extra n" `Quick test_figure7_extra_n;
      Alcotest.test_case "figure 3 exhausts" `Quick test_figure3_exhausts;
      Alcotest.test_case "reduce/reduce unifying" `Quick
        test_reduce_reduce_unifying;
      Alcotest.test_case "nullable ambiguity" `Quick test_nullable_ambiguity;
      Alcotest.test_case "driver outcomes" `Quick test_driver_outcomes;
      Alcotest.test_case "driver cumulative budget" `Quick
        test_driver_cumulative_budget;
      QCheck_alcotest.to_alcotest prop_unifying_sound ] )
