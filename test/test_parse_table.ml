open Cfg
open Automaton

let table source = Parse_table.build (Spec_parser.grammar_of_string_exn source)

let conflict_count source = List.length (Parse_table.conflicts (table source))

let test_paper_conflict_counts () =
  let check name =
    let e = Corpus.find name in
    Alcotest.(check int) name
      (Option.get e.Corpus.paper_conflicts)
      (conflict_count e.Corpus.source)
  in
  List.iter check [ "figure1"; "figure3"; "figure7" ]

let test_conflict_items_figure1 () =
  let t = table Corpus.Paper_grammars.figure1 in
  let g = Parse_table.grammar t in
  let descriptions =
    Parse_table.conflicts t
    |> List.map (fun c ->
           Fmt.str "%s/%s under %s"
             (Item.to_string g (Conflict.reduce_item c))
             (Item.to_string g (Conflict.other_item c))
             (Grammar.terminal_name g c.Conflict.terminal))
    |> List.sort String.compare
  in
  let dot = Derivation.dot_marker in
  Alcotest.(check (list string))
    "three conflicts"
    (List.sort String.compare
       [ "expr ::= num " ^ dot ^ "/num ::= num " ^ dot ^ " DIGIT under DIGIT";
         "expr ::= expr + expr " ^ dot ^ "/expr ::= expr " ^ dot
         ^ " + expr under +";
         "stmt ::= IF expr THEN stmt " ^ dot ^ "/stmt ::= IF expr THEN stmt "
         ^ dot ^ " ELSE stmt under ELSE" ])
    descriptions

let test_precedence_resolution () =
  Alcotest.(check int) "unresolved without %left" 1
    (conflict_count Corpus.Paper_grammars.expr_plus);
  let t = table Corpus.Paper_grammars.expr_plus_resolved in
  Alcotest.(check int) "resolved with %left" 0
    (List.length (Parse_table.conflicts t));
  Alcotest.(check bool) "resolution counted" true
    (Parse_table.precedence_resolved t > 0)

let test_reduce_reduce () =
  (* Classic reduce/reduce: two nonterminals deriving the same terminal. *)
  let t = table "s : a_ X | b_ X Y ; a_ : C ; b_ : C ;" in
  match Parse_table.conflicts t with
  | [ { Conflict.kind = Conflict.Reduce_reduce { terminals; _ }; _ } ] ->
    let g = Parse_table.grammar t in
    Alcotest.(check (list string))
      "conflict terminals" [ "X" ]
      (List.sort String.compare
         (List.map (Grammar.terminal_name g) (Bitset.elements terminals)))
  | cs -> Alcotest.failf "expected one reduce/reduce conflict, got %d" (List.length cs)

let test_nonassoc_resolution () =
  let t = table "%nonassoc EQ\n%start e\ne : e EQ e | N ;" in
  Alcotest.(check int) "nonassoc resolves conflict" 0
    (List.length (Parse_table.conflicts t));
  (* N EQ N parses; N EQ N EQ N must not. *)
  let ok input = Runner.parse_names t input in
  (match ok [ "N"; "EQ"; "N" ] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "N EQ N should parse");
  match ok [ "N"; "EQ"; "N"; "EQ"; "N" ] with
  | Ok _ -> Alcotest.fail "N EQ N EQ N should be rejected (nonassoc)"
  | Error _ -> ()

let test_resolved_conflicts_recorded () =
  let t = table "%left +\n%right POW\n%start e\ne : e + e | e POW e | N ;" in
  Alcotest.(check int) "no visible conflicts" 0
    (List.length (Parse_table.conflicts t));
  let resolved = Parse_table.resolved_conflicts t in
  (* + vs +, + vs POW, POW vs +, POW vs POW: four silent decisions. *)
  Alcotest.(check int) "four resolved pairs" 4 (List.length resolved);
  let g = Parse_table.grammar t in
  let find reduce_op shift_op =
    List.find_map
      (fun ((c : Conflict.t), resolution) ->
        match c.Conflict.kind with
        | Conflict.Shift_reduce { reduce_item; _ }
          when Array.exists
                 (fun sym -> Grammar.symbol_name g sym = reduce_op)
                 (Item.production g reduce_item).Grammar.rhs
               && Grammar.terminal_name g c.Conflict.terminal = shift_op ->
          Some resolution
        | Conflict.Shift_reduce _ | Conflict.Reduce_reduce _ -> None)
      resolved
  in
  Alcotest.(check bool) "+/+ resolved to reduce (left assoc)" true
    (find "+" "+" = Some Parse_table.Resolved_reduce);
  Alcotest.(check bool) "POW/POW resolved to shift (right assoc)" true
    (find "POW" "POW" = Some Parse_table.Resolved_shift);
  (* And each resolved pair still admits a unifying counterexample: the
     ambiguity is real, just settled. *)
  let session = Cex_session.Session.of_table t in
  List.iter
    (fun (c, _) ->
      match (Cex.Driver.analyze_conflict session c).Cex.Driver.outcome with
      | Cex.Driver.Found_unifying -> ()
      | _ -> Alcotest.fail "resolved conflict should be a real ambiguity")
    resolved

let test_nonassoc_resolution_recorded () =
  let t = table "%nonassoc EQ\n%start e\ne : e EQ e | N ;" in
  match Parse_table.resolved_conflicts t with
  | [ (_, Parse_table.Resolved_error) ] -> ()
  | _ -> Alcotest.fail "expected one nonassoc resolution"

let test_lalr1_grammar_clean () =
  (* Dragon 4.55 is LALR(1): no conflicts at all. *)
  Alcotest.(check int) "no conflicts" 0 (conflict_count "s : c_ c_ ; c_ : C c_ | D ;")

let test_accept_action () =
  let t = table "s : X ;" in
  (match Runner.parse_names t [ "X" ] with
  | Ok d ->
    Alcotest.(check bool) "derivation validates" true
      (Derivation.validate (Parse_table.grammar t) d)
  | Error _ -> Alcotest.fail "X should parse");
  match Runner.parse_names t [] with
  | Ok _ -> Alcotest.fail "empty input should fail"
  | Error e -> Alcotest.(check int) "error at position 0" 0 e.Runner.position

let suite =
  ( "parse_table",
    [ Alcotest.test_case "paper conflict counts" `Quick
        test_paper_conflict_counts;
      Alcotest.test_case "figure1 conflict items" `Quick
        test_conflict_items_figure1;
      Alcotest.test_case "precedence resolution" `Quick
        test_precedence_resolution;
      Alcotest.test_case "reduce/reduce" `Quick test_reduce_reduce;
      Alcotest.test_case "nonassoc" `Quick test_nonassoc_resolution;
      Alcotest.test_case "resolved conflicts recorded" `Quick
        test_resolved_conflicts_recorded;
      Alcotest.test_case "nonassoc resolution recorded" `Quick
        test_nonassoc_resolution_recorded;
      Alcotest.test_case "LALR(1) grammar is clean" `Quick
        test_lalr1_grammar_clean;
      Alcotest.test_case "accept and error" `Quick test_accept_action ] )
