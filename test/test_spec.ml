open Cfg

let parse_grammar source =
  match Spec_parser.grammar_of_string source with
  | Ok g -> g
  | Error msg -> Alcotest.failf "grammar did not parse: %s" msg

let test_lexer () =
  let lexemes = Spec_lexer.tokenize "a : b '+' ':=' /* c */ ; // x\n%left" in
  let tokens = List.map (fun l -> l.Spec_lexer.token) lexemes in
  Alcotest.(check (list string))
    "tokens"
    [ "a"; ":"; "b"; "\"+\""; "\":=\""; ";"; "%left"; "<eof>" ]
    (List.map Spec_lexer.token_to_string tokens)

let test_lexer_lines () =
  let lexemes = Spec_lexer.tokenize "a\nb\n\nc" in
  Alcotest.(check (list int))
    "line numbers" [ 1; 2; 4; 4 ]
    (List.map (fun l -> l.Spec_lexer.line) lexemes)

let test_lexer_errors () =
  let fails s =
    match Spec_lexer.tokenize s with
    | _ -> Alcotest.failf "expected lexer error on %S" s
    | exception Spec_lexer.Error _ -> ()
  in
  fails "a : 'unterminated";
  fails "/* unterminated";
  fails "`";
  fails "''"

let test_figure1_shape () =
  let g = parse_grammar Corpus.Paper_grammars.figure1 in
  (* Paper counts (Table 1): 3 nonterminals, 9 productions (including the
     augmented start production). We additionally have the START symbol. *)
  Alcotest.(check int) "nonterminals (incl START)" 4 (Grammar.n_nonterminals g);
  Alcotest.(check int) "productions" 9 (Grammar.n_productions g);
  Alcotest.(check string) "start" "stmt"
    (Grammar.nonterminal_name g (Grammar.start g));
  (* Terminals: $, IF, THEN, ELSE, ?, ARR, [, ], :=, +, DIGIT *)
  Alcotest.(check int) "terminals" 11 (Grammar.n_terminals g);
  let p0 = Grammar.production g 0 in
  Alcotest.(check int) "start production lhs" 0 p0.Grammar.lhs;
  Alcotest.(check int) "start production rhs" 1 (Array.length p0.Grammar.rhs)

let test_merge_repeated_lhs () =
  let g = parse_grammar "a : X ; b : Y ; a : Z ;" in
  Alcotest.(check int) "productions" 4 (Grammar.n_productions g);
  let of_a = Grammar.productions_of g 1 in
  Alcotest.(check int) "a has two alternatives" 2 (List.length of_a)

let test_empty_alternative () =
  let g = parse_grammar "a : X a | ;" in
  let alts = Grammar.productions_of g 1 in
  let empty =
    List.exists
      (fun p -> Array.length (Grammar.production g p).Grammar.rhs = 0)
      alts
  in
  Alcotest.(check bool) "has epsilon production" true empty

let test_precedence () =
  let g =
    parse_grammar
      "%left + -\n%left *\n%right POW\n%start e\ne : e + e | e * e | e POW e \
       %prec POW | N ;"
  in
  let t name =
    match Grammar.find_terminal g name with
    | Some t -> t
    | None -> Alcotest.failf "no terminal %s" name
  in
  Alcotest.(check bool) "plus level 0 left" true
    (Grammar.terminal_prec g (t "+") = Some (0, Grammar.Left));
  Alcotest.(check bool) "minus level 0" true
    (Grammar.terminal_prec g (t "-") = Some (0, Grammar.Left));
  Alcotest.(check bool) "star level 1" true
    (Grammar.terminal_prec g (t "*") = Some (1, Grammar.Left));
  Alcotest.(check bool) "pow right" true
    (Grammar.terminal_prec g (t "POW") = Some (2, Grammar.Right));
  Alcotest.(check bool) "N no prec" true
    (Grammar.terminal_prec g (t "N") = None);
  (* Production precedence: default = rightmost terminal. *)
  let prod_with_sym name =
    let sym = Option.get (Grammar.find_symbol g name) in
    let rec go i =
      let p = Grammar.production g i in
      if Array.exists (Symbol.equal sym) p.Grammar.rhs then p else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "e + e has + prec" true
    (Grammar.production_prec g (prod_with_sym "+") = Some (0, Grammar.Left))

let test_spec_errors () =
  let fails s =
    match Spec_parser.grammar_of_string s with
    | Ok _ -> Alcotest.failf "expected error on %S" s
    | Error _ -> ()
  in
  fails "";
  fails "a : X";
  (* missing ; *)
  fails "a : X ; %start b";
  (* start not a nonterminal *)
  fails "a : X %prec NOPE ; b : NOPE2 ;";
  (* %prec tag not a terminal: NOPE never appears elsewhere... it becomes a
     terminal actually; use a nonterminal as the tag instead *)
  fails "a : X %prec a ;";
  fails "%start a %start a\na : X ;";
  fails "%left X\n%right X\na : X ;";
  fails "a : X ; a : Y ; START : Z ;"

(* The error message, not just the failure, is the contract: the CLI
   surfaces it verbatim. *)
let fails_with substring s =
  match Spec_parser.grammar_of_string s with
  | Ok _ -> Alcotest.failf "expected error on %S" s
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    if not (contains msg substring) then
      Alcotest.failf "error for %S should mention %S, got %S" s substring msg

let test_duplicate_start_message () =
  fails_with "duplicate %start" "%start a\n%start a\na : X ;"

let test_duplicate_prec_message () =
  fails_with "duplicate %prec" "a : X %prec P %prec Q ;"

let test_symbols_after_prec_message () =
  fails_with "symbols after %prec" "a : X %prec P Y ;";
  fails_with "expected a terminal after %prec" "a : X %prec ;"

let test_prec_resolves_conflict () =
  (* Unary minus: without the %prec tag the reduce production's precedence
     defaults to MINUS (undeclared), so the PLUS lookahead conflicts; with
     %prec UMINUS the conflict is settled silently in favour of the
     reduction. *)
  let without =
    parse_grammar "%left PLUS\n%start e\ne : e PLUS e | MINUS e | N ;"
  in
  let with_prec =
    parse_grammar
      "%left PLUS\n%left UMINUS\n%start e\ne : e PLUS e | MINUS e %prec \
       UMINUS | N ;"
  in
  let t_without = Automaton.Parse_table.build without in
  let t_with = Automaton.Parse_table.build with_prec in
  Alcotest.(check bool)
    "unresolved conflict without %prec" true
    (Automaton.Parse_table.conflicts t_without <> []);
  Alcotest.(check (list int))
    "no conflicts with %prec" []
    (List.map
       (fun (c : Automaton.Conflict.t) -> c.Automaton.Conflict.state)
       (Automaton.Parse_table.conflicts t_with));
  Alcotest.(check bool)
    "precedence resolutions recorded" true
    (Automaton.Parse_table.precedence_resolved t_with
     > Automaton.Parse_table.precedence_resolved t_without);
  (* The silent decision is itself recorded, reduction chosen. *)
  Alcotest.(check bool)
    "a resolved_reduce entry exists" true
    (List.exists
       (fun (_, r) -> r = Automaton.Parse_table.Resolved_reduce)
       (Automaton.Parse_table.resolved_conflicts t_with))

let test_reserved_eof () =
  match Spec_parser.grammar_of_string "a : '$' ;" with
  | Ok _ -> Alcotest.fail "expected reserved-symbol error"
  | Error _ -> ()

let suite =
  ( "spec",
    [ Alcotest.test_case "lexer tokens" `Quick test_lexer;
      Alcotest.test_case "lexer line numbers" `Quick test_lexer_lines;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "figure1 shape" `Quick test_figure1_shape;
      Alcotest.test_case "merge repeated lhs" `Quick test_merge_repeated_lhs;
      Alcotest.test_case "empty alternative" `Quick test_empty_alternative;
      Alcotest.test_case "precedence" `Quick test_precedence;
      Alcotest.test_case "spec errors" `Quick test_spec_errors;
      Alcotest.test_case "duplicate %start message" `Quick
        test_duplicate_start_message;
      Alcotest.test_case "duplicate %prec message" `Quick
        test_duplicate_prec_message;
      Alcotest.test_case "symbols after %prec message" `Quick
        test_symbols_after_prec_message;
      Alcotest.test_case "%prec resolves a conflict" `Quick
        test_prec_resolves_conflict;
      Alcotest.test_case "reserved eof symbol" `Quick test_reserved_eof ] )
