(* Corpus srwalk-vs-product agreement gate (CI: nonzero exit on any
   divergence or oracle-rejected srwalk witness). Deterministic: both
   engines run under the same configuration budget and no wall-clock
   deadline, so the verdict depends only on the engines themselves. *)

let usage = "agreement [--max-configs N]"

let () =
  let max_configs = ref Evaluation.Agreement.default_max_configs in
  let args =
    [ ( "--max-configs",
        Arg.Set_int max_configs,
        "N  per-conflict configuration budget (default 10000)" ) ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let summary = Evaluation.Agreement.run ~max_configs:!max_configs () in
  Format.printf "%a@." Evaluation.Agreement.pp_summary summary;
  List.iter
    (fun p -> Format.printf "  %s@." p)
    summary.Evaluation.Agreement.problems;
  if summary.Evaluation.Agreement.problems <> [] then exit 1
