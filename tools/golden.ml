let dangling_else =
  {|
%start stmt
stmt : IF expr THEN stmt
     | IF expr THEN stmt ELSE stmt
     | OTHER
     ;
expr : ID ;
|}
let () =
  let g = Cfg.Spec_parser.grammar_of_string_exn dangling_else in
  let service = Cex_service.Scheduler.create ~jobs:1 () in
  let results, stats =
    Cex_service.Scheduler.analyze_batch service [ ("dangling-else", g) ]
  in
  print_string
    (Cex_service.Json.to_string
       (Cex_service.Json.map_floats (fun _ -> 0.0)
          (Cex_service.Json_report.batch_to_json ~stats results)))
